#!/usr/bin/env sh
# Measures gray-failure mitigation: consumer frame-fetch P99 latency for
# DYAD under fail-slow scenarios (faults=overload, faults=slow-disk) with
# the mdwf::health layer off vs on (phi-accrual detection, circuit-breaker
# failover, hedged fetches, backpressure) on the same seeds, plus the
# no-fault cost of leaving health enabled.
#
#   tools/bench_health.sh <mdwf_run-binary> [out.json]
#
# Every run must still deliver the complete frame set (mdwf_run exits 2
# otherwise, which fails this script): mitigation must never trade
# correctness for latency.
set -eu

RUN="${1:?usage: bench_health.sh <mdwf_run-binary> [out.json]}"
OUT="${2:-BENCH_pr4.json}"
ARGS="solution=dyad pairs=4 nodes=2 frames=32 reps=2 seed=7 output=csv"

# csv_field <csv> <column-name>
csv_field() {
    printf '%s\n' "$1" | awk -F, -v name="$2" '
        NR==1 { for (i = 1; i <= NF; i++) if ($i == name) col = i }
        NR==2 { print $col }'
}

RESULTS=""
for scenario in overload slow-disk; do
    off_csv="$("$RUN" $ARGS faults=$scenario health=0 hedge=0)"
    on_csv="$("$RUN" $ARGS faults=$scenario health=1 hedge=1)"
    off_p99="$(csv_field "$off_csv" fetch_p99_us)"
    on_p99="$(csv_field "$on_csv" fetch_p99_us)"
    off_mk="$(csv_field "$off_csv" makespan_s)"
    on_mk="$(csv_field "$on_csv" makespan_s)"
    hedges="$(csv_field "$on_csv" dyad_hedges)"
    wins="$(csv_field "$on_csv" dyad_hedge_wins)"
    cancels="$(csv_field "$on_csv" dyad_hedge_cancels)"
    trips="$(csv_field "$on_csv" dyad_breaker_trips)"
    consumed="$(csv_field "$on_csv" frames_consumed)"
    echo "  $scenario: fetch P99 ${off_p99}us -> ${on_p99}us," \
         "makespan ${off_mk}s -> ${on_mk}s" \
         "(${hedges} hedges, ${wins} wins, ${trips} breaker trips)" >&2
    RESULTS="$RESULTS $scenario $off_p99 $on_p99 $off_mk $on_mk \
$hedges $wins $cancels $trips $consumed"
done

# No-fault overhead of leaving health+hedge enabled (must be ~zero: without
# the failover path the layer is detection-only).
base_csv="$("$RUN" $ARGS faults=none)"
health_csv="$("$RUN" $ARGS faults=none health=1 hedge=1)"
base_mk="$(csv_field "$base_csv" makespan_s)"
health_mk="$(csv_field "$health_csv" makespan_s)"
echo "  no-fault makespan: health off ${base_mk}s, on ${health_mk}s" >&2

python3 - "$OUT" "$base_mk" "$health_mk" $RESULTS <<'EOF'
import json, sys
out, base_mk, health_mk = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])
vals = sys.argv[4:]
doc = {
    "bench": "health_gray_failure_mitigation",
    "workload": "mdwf_run solution=dyad pairs=4 nodes=2 frames=32 reps=2 "
                "seed=7, health=0 vs health=1 hedge=1",
    "no_fault_makespan_s": {"health_off": base_mk, "health_on": health_mk},
    "no_fault_overhead_pct":
        round(100.0 * (health_mk - base_mk) / base_mk, 3) if base_mk else None,
    "scenarios": {},
}
for i in range(0, len(vals), 10):
    (sc, off_p99, on_p99, off_mk, on_mk,
     hedges, wins, cancels, trips, consumed) = vals[i:i + 10]
    off_p99, on_p99 = float(off_p99), float(on_p99)
    doc["scenarios"][sc] = {
        "fetch_p99_us_health_off": off_p99,
        "fetch_p99_us_health_on": on_p99,
        "fetch_p99_speedup":
            round(off_p99 / on_p99, 2) if on_p99 else None,
        "makespan_s_health_off": float(off_mk),
        "makespan_s_health_on": float(on_mk),
        "hedges": int(hedges),
        "hedge_wins": int(wins),
        "hedge_cancels": int(cancels),
        "breaker_trips": int(trips),
        "frames_consumed": int(consumed),
    }
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
EOF
