#!/usr/bin/env sh
# Measures recovered-run overhead: the simulated-makespan cost of riding
# out a mid-run node crash plus nonzero bit-flip rates (faults=crash-flip,
# with checkpoints and end-to-end CRC32C verification on) versus the
# fault-free baseline, for each data-management solution.
#
#   tools/bench_resilience.sh <mdwf_run-binary> [out.json]
#
# Every faulted run must still deliver the complete checksum-verified frame
# set (mdwf_run exits 2 otherwise, which fails this script), so the numbers
# are the price of *successful* recovery, not of data loss.
set -eu

RUN="${1:?usage: bench_resilience.sh <mdwf_run-binary> [out.json]}"
OUT="${2:-BENCH_pr3.json}"
ARGS="pairs=2 nodes=2 frames=32 reps=3 seed=11 output=csv"
XFS_ARGS="pairs=2 nodes=1 frames=32 reps=3 seed=11 output=csv"

# csv_field <csv> <column-name>
csv_field() {
    printf '%s\n' "$1" | awk -F, -v name="$2" '
        NR==1 { for (i = 1; i <= NF; i++) if ($i == name) col = i }
        NR==2 { print $col }'
}

RESULTS=""
for sol in dyad xfs lustre; do
    if [ "$sol" = "xfs" ]; then args="$XFS_ARGS"; else args="$ARGS"; fi
    base_csv="$("$RUN" solution=$sol $args faults=none)"
    fault_csv="$("$RUN" solution=$sol $args faults=crash-flip)"
    base_s="$(csv_field "$base_csv" makespan_s)"
    fault_s="$(csv_field "$fault_csv" makespan_s)"
    recov="$(csv_field "$fault_csv" crash_recoveries)"
    reexec="$(csv_field "$fault_csv" frames_reexecuted)"
    refetch="$(csv_field "$fault_csv" integrity_refetches)"
    unrec="$(csv_field "$fault_csv" integrity_unrecovered)"
    consumed="$(csv_field "$fault_csv" frames_consumed)"
    echo "  $sol: fault-free ${base_s}s, crash-flip ${fault_s}s" \
         "(${recov} restarts, ${reexec} re-executed, ${refetch} re-fetches)" >&2
    RESULTS="$RESULTS $sol $base_s $fault_s $recov $reexec $refetch $unrec $consumed"
done

python3 - "$OUT" $RESULTS <<'EOF'
import json, sys
out = sys.argv[1]
vals = sys.argv[2:]
doc = {
    "bench": "resilience_recovery_overhead",
    "workload": "mdwf_run pairs=2 frames=32 reps=3 seed=11 "
                "faults=crash-flip (vs faults=none)",
    "expected_frames": 2 * 32 * 3,
    "solutions": {},
}
for i in range(0, len(vals), 8):
    (sol, base_s, fault_s, recov, reexec, refetch, unrec, consumed) = \
        vals[i:i + 8]
    base_s, fault_s = float(base_s), float(fault_s)
    doc["solutions"][sol] = {
        "fault_free_makespan_s": base_s,
        "crash_flip_makespan_s": fault_s,
        "recovered_run_overhead_pct":
            round(100.0 * (fault_s - base_s) / base_s, 2) if base_s else None,
        "crash_recoveries": int(recov),
        "frames_reexecuted": int(reexec),
        "integrity_refetches": int(refetch),
        "integrity_unrecovered": int(unrec),
        "frames_consumed": int(consumed),
    }
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
EOF
