#!/usr/bin/env sh
# Shim: this suite moved into the consolidated driver (tools/bench.sh resilience).
exec "$(dirname "$0")/bench.sh" resilience "$@"
