// mdwf_advise: batch solution advisor for DAG workloads.
//
// Sweeps workloads x solutions x fault scenarios through mdwf::sweep and
// emits one recommendation row per (workload, scenario): the solution with
// the lowest frame-fetch P99, the runner-up, the margin between them, and
// a confidence grade derived from how that margin compares to the winner's
// repetition spread.  The promoted successor of examples/solution_advisor
// (fixed MD pipelines) for imported/synthetic graphs.
//
//   mdwf_advise [config-file] [key=value ...]
//
// Keys:
//   workloads  = comma-separated workload references, each
//                wfcommons:<file> or synth:chain|fork-join|montage
//                (required; same syntax as mdwf_run's workload=)
//   solutions  = comma-separated candidates    (default dyad,lustre,stream;
//                                               xfs allowed, runs on 1 node)
//   scenarios  = comma-separated fault scenarios (default none; node-loss
//                                               family rejected: DAG runs
//                                               have no membership plane)
//   nodes      = <n>                            (default 2; xfs always 1)
//   reps       = <n>                            (default 3)
//   seed       = <n>                            (default 1)
//   threads    = <n>                            (sweep workers; results are
//                                               byte-identical for every
//                                               value; default 1)
//   dag_tasks / dag_width / dag_seed / dag_runtime / dag_bytes
//              = synthetic workload shape       (as in mdwf_run)
//   dag_chunk  = <bytes>                        (edge frame size, 32 MiB)
//   dag_scale  = <x>                            (task runtime multiplier)
//   out        = <path>                         (write the CSV there and a
//                                               human table to stdout;
//                                               default: CSV to stdout)
//
// CSV schema (one row per workload x scenario, input order):
//   workflow,scenario,tasks,edge_frames,recommendation,fetch_p99_us,
//   makespan_s,runner_up,runner_up_p99_us,margin_pct,confidence
//
// Confidence: the P99 margin to the runner-up, measured against the
// winner's own repetition spread (makespan stddev/mean).  A margin that
// dwarfs the spread is a stable regime ("high"); a margin inside the
// spread could flip on another seed ("low").
//
// Exit status: 0 on success; 1 on configuration errors or any failed
// sweep point (the point's error is reported on stderr).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "mdwf/common/format.hpp"
#include "mdwf/common/keyval.hpp"
#include "mdwf/common/suggest.hpp"
#include "mdwf/common/table.hpp"
#include "mdwf/fault/plan.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/wload/wload.hpp"
#include "mdwf/workflow/config.hpp"
#include "mdwf/workflow/dag_run.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace {

using namespace mdwf;

int fail(const std::string& msg) {
  std::fprintf(stderr, "mdwf_advise: %s\n", msg.c_str());
  return 1;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    std::string item = text.substr(start, end - start);
    // Trim surrounding spaces so "a, b" parses as expected.
    while (!item.empty() && item.front() == ' ') item.erase(item.begin());
    while (!item.empty() && item.back() == ' ') item.pop_back();
    if (!item.empty()) out.push_back(std::move(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

constexpr std::string_view kSolutionNames[] = {"dyad", "xfs", "lustre",
                                               "stream"};

workflow::Solution parse_solution(const std::string& name) {
  if (name == "dyad") return workflow::Solution::kDyad;
  if (name == "xfs") return workflow::Solution::kXfs;
  if (name == "lustre") return workflow::Solution::kLustre;
  if (name == "stream") return workflow::Solution::kStream;
  throw ConfigError("unknown solution '" + name + "'" +
                    did_you_mean(name, kSolutionNames));
}

// One candidate run: a (workload, scenario, solution) cell plus the
// resolved DAG (shared across the workload's cells — parsed once).
struct Cell {
  std::size_t workload = 0;
  std::size_t scenario = 0;
  std::size_t solution = 0;
};

struct Recommendation {
  std::string workflow;
  std::string scenario;
  std::uint64_t tasks = 0;
  std::uint64_t edge_frames = 0;
  std::string best;
  double best_p99 = 0.0;
  double best_makespan = 0.0;
  std::string runner_up;
  double runner_p99 = 0.0;
  double margin_pct = 0.0;
  std::string confidence;
};

}  // namespace

int main(int argc, char** argv) {
  KeyValueConfig cfg;
  try {
    const auto positional = cfg.parse_args(argc, argv);
    for (const auto& file : positional) {
      std::ifstream in(file);
      if (!in) return fail("cannot open config file '" + file + "'");
      cfg.parse_stream(in);
    }

    const std::string workloads_key = cfg.get_string("workloads", "");
    if (workloads_key.empty()) {
      throw ConfigError(
          "workloads is required: comma-separated wfcommons:<file> or "
          "synth:<topology> references");
    }
    const std::vector<std::string> workload_refs = split_list(workloads_key);
    const std::vector<std::string> solution_names =
        split_list(cfg.get_string("solutions", "dyad,lustre,stream"));
    const std::vector<std::string> scenarios =
        split_list(cfg.get_string("scenarios", "none"));
    if (workload_refs.empty()) throw ConfigError("workloads is empty");
    if (solution_names.empty()) throw ConfigError("solutions is empty");
    if (scenarios.empty()) throw ConfigError("scenarios is empty");
    if (solution_names.size() < 2) {
      throw ConfigError(
          "solutions needs at least two candidates to rank, got '" +
          solution_names[0] + "'");
    }

    std::vector<workflow::Solution> solutions;
    for (const auto& name : solution_names) {
      solutions.push_back(parse_solution(name));
    }
    for (const auto& s : scenarios) {
      // Validate scenario names up front (and reject the node-loss family:
      // recovery from a *permanent* loss needs the membership plane, which
      // DAG runs do not support — such a sweep cell would never complete).
      if (s == "none") continue;
      const auto& known = fault::scenario_names();
      if (std::find(known.begin(), known.end(), s) == known.end()) {
        throw ConfigError("unknown scenario '" + s + "'" +
                          did_you_mean(s, known));
      }
      if (s == "node-loss" || s == "loss-after-publish" ||
          s == "heal-after-declare") {
        throw ConfigError(
            "scenario '" + s +
            "' needs the membership plane, which DAG workloads do not "
            "support; pick a recoverable scenario (e.g. node-crash, "
            "broker-outage, bit-flip)");
      }
    }

    const std::uint32_t nodes =
        static_cast<std::uint32_t>(cfg.get_uint("nodes", 2));
    const std::uint32_t reps =
        static_cast<std::uint32_t>(cfg.get_uint("reps", 3));
    const std::uint64_t seed = cfg.get_uint("seed", 1);
    const std::uint32_t threads =
        static_cast<std::uint32_t>(cfg.get_uint("threads", 1));
    const std::string out_path = cfg.get_string("out", "");

    wload::WorkloadDefaults wd;
    wd.synth_tasks = cfg.get_uint("dag_tasks", wd.synth_tasks);
    wd.synth_width =
        static_cast<std::uint32_t>(cfg.get_uint("dag_width", wd.synth_width));
    wd.synth_seed = cfg.get_uint("dag_seed", wd.synth_seed);
    wd.synth_runtime_s = cfg.get_double("dag_runtime", wd.synth_runtime_s);
    wd.synth_output_bytes = cfg.get_double("dag_bytes", wd.synth_output_bytes);
    const Bytes chunk(cfg.get_uint("dag_chunk", Bytes::mib(32).count()));
    if (chunk.count() == 0) {
      throw ConfigError("dag_chunk must be a positive byte count");
    }
    const double scale = cfg.get_double("dag_scale", 1.0);
    if (scale <= 0.0) {
      throw ConfigError("dag_scale must be > 0, got " +
                        std::to_string(scale));
    }

    if (const auto unknown = cfg.unknown_keys(); !unknown.empty()) {
      constexpr std::string_view kKeys[] = {
          "workloads", "solutions", "scenarios", "nodes",     "reps",
          "seed",      "threads",   "dag_tasks", "dag_width", "dag_seed",
          "dag_runtime",            "dag_bytes", "dag_chunk", "dag_scale",
          "out"};
      std::string msg = "unknown key(s):";
      for (const auto& k : unknown) msg += " " + k + did_you_mean(k, kKeys);
      throw ConfigError(msg);
    }

    // Parse every workload once; all its sweep cells share the Dag.
    std::vector<std::shared_ptr<const wload::Dag>> dags;
    for (const auto& ref : workload_refs) {
      dags.push_back(
          std::make_shared<const wload::Dag>(wload::load_workload(ref, wd)));
    }

    // Grid in canonical (workload, scenario, solution) order: run_sweep
    // merges in this order whatever threads= is, so the CSV is
    // byte-identical for every thread count.
    std::vector<sweep::SweepPoint> grid;
    std::vector<Cell> cells;
    for (std::size_t w = 0; w < dags.size(); ++w) {
      for (std::size_t sc = 0; sc < scenarios.size(); ++sc) {
        for (std::size_t so = 0; so < solutions.size(); ++so) {
          workflow::EnsembleConfig config;
          config.solution = solutions[so];
          config.nodes =
              solutions[so] == workflow::Solution::kXfs ? 1 : nodes;
          config.repetitions = reps;
          config.base_seed = seed;
          config.dag = dags[w];
          config.dag_chunk = chunk;
          config.dag_runtime_scale = scale;
          if (scenarios[sc] != "none") {
            fault::ScenarioShape shape;
            shape.compute_nodes = config.nodes;
            shape.ost_count = config.testbed.lustre.ost_count;
            shape.seed = seed;
            config.testbed.faults =
                fault::make_scenario(scenarios[sc], shape);
            config.testbed.dyad.retry.enabled = true;
            config.testbed.dyad.retry.lustre_fallback = true;
            bool flips = false;
            bool crashes = false;
            for (const auto& wdw : config.testbed.faults.windows) {
              flips = flips || wdw.mode == fault::FaultMode::kBitFlip;
              crashes =
                  crashes || wdw.target == fault::FaultTarget::kNodeCrash;
            }
            config.testbed.integrity.enabled = flips || crashes;
          }
          grid.push_back({dags[w]->name + "/" + scenarios[sc] + "/" +
                              solution_names[so],
                          std::move(config)});
          cells.push_back({w, sc, so});
        }
      }
    }

    const sweep::SweepResult swept = sweep::run_sweep(std::move(grid),
                                                      threads);
    int exit_code = 0;
    for (const auto& p : swept.points) {
      if (p.failed()) {
        std::fprintf(stderr, "mdwf_advise: point '%s' failed: %s\n",
                     p.label.c_str(), p.error_text.c_str());
        exit_code = 1;
      }
    }
    if (exit_code != 0) return exit_code;

    // Rank each (workload, scenario) group by fetch P99, ascending; ties
    // break toward the earlier solutions= entry (stable order).
    std::vector<Recommendation> recs;
    const std::size_t per_group = solutions.size();
    for (std::size_t w = 0; w < dags.size(); ++w) {
      for (std::size_t sc = 0; sc < scenarios.size(); ++sc) {
        const std::size_t base = (w * scenarios.size() + sc) * per_group;
        std::vector<std::size_t> order(per_group);
        for (std::size_t i = 0; i < per_group; ++i) order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           const auto& ra = swept.points[base + a].result;
                           const auto& rb = swept.points[base + b].result;
                           return ra.cons_fetch_us.quantile(0.99) <
                                  rb.cons_fetch_us.quantile(0.99);
                         });
        const auto& best = swept.points[base + order[0]].result;
        const auto& runner = swept.points[base + order[1]].result;

        Recommendation rec;
        rec.workflow = dags[w]->name;
        rec.scenario = scenarios[sc];
        rec.tasks = dags[w]->tasks.size();
        rec.edge_frames =
            workflow::plan_dag(*dags[w], chunk, nodes).total_edge_frames;
        rec.best = solution_names[order[0]];
        rec.best_p99 = best.cons_fetch_us.quantile(0.99);
        rec.best_makespan = best.makespan_s.mean();
        rec.runner_up = solution_names[order[1]];
        rec.runner_p99 = runner.cons_fetch_us.quantile(0.99);
        rec.margin_pct =
            rec.best_p99 > 0.0
                ? 100.0 * (rec.runner_p99 - rec.best_p99) / rec.best_p99
                : 0.0;
        // Repetition spread of the winner, as a percentage of its mean
        // makespan: the noise floor the margin must clear.
        const double spread_pct =
            best.makespan_s.mean() > 0.0
                ? 100.0 * best.makespan_s.stddev() / best.makespan_s.mean()
                : 0.0;
        rec.confidence = rec.margin_pct >= 2.0 * spread_pct + 10.0 ? "high"
                         : rec.margin_pct >= spread_pct            ? "medium"
                                                                   : "low";
        recs.push_back(std::move(rec));
      }
    }

    std::string csv =
        "workflow,scenario,tasks,edge_frames,recommendation,fetch_p99_us,"
        "makespan_s,runner_up,runner_up_p99_us,margin_pct,confidence\n";
    for (const auto& rec : recs) {
      char row[512];
      std::snprintf(row, sizeof row,
                    "%s,%s,%llu,%llu,%s,%.3f,%.4f,%s,%.3f,%.1f,%s\n",
                    rec.workflow.c_str(), rec.scenario.c_str(),
                    static_cast<unsigned long long>(rec.tasks),
                    static_cast<unsigned long long>(rec.edge_frames),
                    rec.best.c_str(), rec.best_p99, rec.best_makespan,
                    rec.runner_up.c_str(), rec.runner_p99, rec.margin_pct,
                    rec.confidence.c_str());
      csv += row;
    }

    if (out_path.empty()) {
      std::fputs(csv.c_str(), stdout);
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) return fail("cannot write '" + out_path + "'");
      out << csv;
      out.close();

      TextTable t({"workflow", "scenario", "recommendation", "fetch P99",
                   "runner-up", "margin", "confidence"});
      for (const auto& rec : recs) {
        t.add_row({rec.workflow, rec.scenario, rec.best,
                   format_double(rec.best_p99, 1) + " us",
                   rec.runner_up, format_double(rec.margin_pct, 1) + "%",
                   rec.confidence});
      }
      std::printf("%zu workload(s) x %zu scenario(s) x %zu solution(s), "
                  "%u repetition(s) each\n\n%s\nCSV written to %s\n",
                  dags.size(), scenarios.size(), solutions.size(), reps,
                  t.render().c_str(), out_path.c_str());
    }
  } catch (const ConfigError& e) {
    return fail(e.what());
  } catch (const std::exception& e) {
    return fail(std::string("error: ") + e.what());
  }
  return 0;
}
