#!/usr/bin/env sh
# One driver for every benchmark suite:
#
#   tools/bench.sh trace      <mdwf_run-binary>           [out.json]
#   tools/bench.sh resilience <mdwf_run-binary>           [out.json]
#   tools/bench.sh health     <mdwf_run-binary>           [out.json]
#   tools/bench.sh scale      <scale_sweep-binary>        [threads] [out.json]
#   tools/bench.sh frontier   <solution_frontier-binary>  [threads] [out.json]
#   tools/bench.sh cotenant   <cotenant_sweep-binary>     [threads] [out.json]
#   tools/bench.sh membership <membership_sweep-binary>   [threads] [out.json]
#   tools/bench.sh perf       <mdwf_run-binary>           [out.json] [baseline.json]
#
# Shared across suites: CSV/summary field extraction, wall-clock best-of-N
# timing, byte-compare with a suite-labelled diagnostic, and the
# BENCH_*.json emission convention (pretty-printed JSON written to the out
# path AND echoed to stdout).
#
# `perf` is the regression gate: the pinned scale point (the BENCH_pr2
# trace-overhead workload, so the traced-throughput history stays
# comparable) run best-of-5 untraced and traced, events/sec written to
# BENCH_pr7.json.  When a baseline file exists, a >10% drop in either
# events/sec figure fails the script — except on single-hardware-thread
# hosts, where timing noise swamps the signal and the gate reports a clear
# skip notice instead (the JSON is still written).
set -eu

SUITES="trace resilience health scale frontier cotenant membership perf"
SUITE="${1:?usage: bench.sh <trace|resilience|health|scale|frontier|cotenant|membership|perf> ...}"
shift

# ---- shared helpers --------------------------------------------------------

# csv_field <csv-text> <column-name>: value from the first data row.
csv_field() {
    printf '%s\n' "$1" | awk -F, -v name="$2" '
        NR==1 { for (i = 1; i <= NF; i++) if ($i == name) col = i }
        NR==2 { print $col }'
}

# summary_field <key=value line> <key>
summary_field() {
    printf '%s\n' "$1" | tr ' ' '\n' | awk -F= -v k="$2" '$1==k{print $2}'
}

now_ns() { date +%s%N; }

# time_run <N> <binary> [args...]: best-of-N wall ms in WALL_MS, the run's
# stdout (last attempt) in RUN_OUT.
time_run() {
    n="$1"; shift
    WALL_MS=""
    i=0
    while [ "$i" -lt "$n" ]; do
        start="$(now_ns)"
        RUN_OUT="$("$@")"
        end="$(now_ns)"
        ms="$(( (end - start) / 1000000 ))"
        if [ -z "$WALL_MS" ] || [ "$ms" -lt "$WALL_MS" ]; then WALL_MS="$ms"; fi
        i=$((i + 1))
    done
}

# byte_compare <a> <b> <label>: the determinism contract check.
byte_compare() {
    cmp "$1" "$2" || {
        echo "bench.sh $SUITE: $3" >&2
        exit 1
    }
}

host_threads() {
    (nproc || sysctl -n hw.ncpu || echo 1) 2>/dev/null | head -n 1
}

# ---- suites ----------------------------------------------------------------

suite_trace() {
    RUN="${1:?usage: bench.sh trace <mdwf_run-binary> [out.json]}"
    OUT="${2:-BENCH_pr2.json}"
    ARGS="solution=dyad pairs=4 nodes=2 frames=64 reps=5 output=csv"
    TRACE_PATH="$(mktemp -u /tmp/mdwf_trace_overhead.XXXXXX.json)"

    echo "bench trace: $RUN $ARGS" >&2
    # The two untraced runs bracket the traced one so a noisy machine shows
    # up as disagreement between them rather than as phantom overhead.
    time_run 3 "$RUN" $ARGS
    base1_ms="$WALL_MS"
    events="$(csv_field "$RUN_OUT" sim_events)"
    [ -n "$events" ] || { echo "bench.sh trace: no sim_events column" >&2; exit 1; }
    echo "  untraced (a): ${base1_ms} ms (best of 3), ${events} sim events" >&2
    time_run 3 "$RUN" $ARGS "trace=$TRACE_PATH"
    traced_ms="$WALL_MS"
    echo "  traced: ${traced_ms} ms (best of 3)" >&2
    time_run 3 "$RUN" $ARGS
    base2_ms="$WALL_MS"
    echo "  untraced (b): ${base2_ms} ms (best of 3)" >&2
    rm -f "$TRACE_PATH" "$TRACE_PATH.metrics.csv"

    python3 - "$OUT" "$base1_ms" "$traced_ms" "$base2_ms" "$events" <<'EOF'
import json, sys
out, b1, tr, b2, ev = sys.argv[1], *map(int, sys.argv[2:6])
base = min(b1, b2)
doc = {
    "bench": "trace_overhead",
    "workload": "mdwf_run solution=dyad pairs=4 nodes=2 frames=64 reps=5",
    "sim_events": ev,
    "wall_ms": {"untraced_a": b1, "traced": tr, "untraced_b": b2},
    "events_per_sec": {
        "untraced": round(ev / (base / 1000.0)) if base else None,
        "traced": round(ev / (tr / 1000.0)) if tr else None,
    },
    "tracing_enabled_overhead_pct":
        round(100.0 * (tr - base) / base, 2) if base else None,
    "untraced_noise_pct":
        round(100.0 * abs(b1 - b2) / base, 2) if base else None,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
EOF
}

suite_resilience() {
    RUN="${1:?usage: bench.sh resilience <mdwf_run-binary> [out.json]}"
    OUT="${2:-BENCH_pr3.json}"
    ARGS="pairs=2 nodes=2 frames=32 reps=3 seed=11 output=csv"
    XFS_ARGS="pairs=2 nodes=1 frames=32 reps=3 seed=11 output=csv"

    RESULTS=""
    for sol in dyad xfs lustre; do
        if [ "$sol" = "xfs" ]; then args="$XFS_ARGS"; else args="$ARGS"; fi
        base_csv="$("$RUN" solution=$sol $args faults=none)"
        fault_csv="$("$RUN" solution=$sol $args faults=crash-flip)"
        base_s="$(csv_field "$base_csv" makespan_s)"
        fault_s="$(csv_field "$fault_csv" makespan_s)"
        recov="$(csv_field "$fault_csv" crash_recoveries)"
        reexec="$(csv_field "$fault_csv" frames_reexecuted)"
        refetch="$(csv_field "$fault_csv" integrity_refetches)"
        unrec="$(csv_field "$fault_csv" integrity_unrecovered)"
        consumed="$(csv_field "$fault_csv" frames_consumed)"
        echo "  $sol: fault-free ${base_s}s, crash-flip ${fault_s}s" \
             "(${recov} restarts, ${reexec} re-executed, ${refetch} re-fetches)" >&2
        RESULTS="$RESULTS $sol $base_s $fault_s $recov $reexec $refetch $unrec $consumed"
    done

    python3 - "$OUT" $RESULTS <<'EOF'
import json, sys
out = sys.argv[1]
vals = sys.argv[2:]
doc = {
    "bench": "resilience_recovery_overhead",
    "workload": "mdwf_run pairs=2 frames=32 reps=3 seed=11 "
                "faults=crash-flip (vs faults=none)",
    "expected_frames": 2 * 32 * 3,
    "solutions": {},
}
for i in range(0, len(vals), 8):
    (sol, base_s, fault_s, recov, reexec, refetch, unrec, consumed) = \
        vals[i:i + 8]
    base_s, fault_s = float(base_s), float(fault_s)
    doc["solutions"][sol] = {
        "fault_free_makespan_s": base_s,
        "crash_flip_makespan_s": fault_s,
        "recovered_run_overhead_pct":
            round(100.0 * (fault_s - base_s) / base_s, 2) if base_s else None,
        "crash_recoveries": int(recov),
        "frames_reexecuted": int(reexec),
        "integrity_refetches": int(refetch),
        "integrity_unrecovered": int(unrec),
        "frames_consumed": int(consumed),
    }
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
EOF
}

suite_health() {
    RUN="${1:?usage: bench.sh health <mdwf_run-binary> [out.json]}"
    OUT="${2:-BENCH_pr4.json}"
    ARGS="solution=dyad pairs=4 nodes=2 frames=32 reps=2 seed=7 output=csv"

    RESULTS=""
    for scenario in overload slow-disk; do
        off_csv="$("$RUN" $ARGS faults=$scenario health=0 hedge=0)"
        on_csv="$("$RUN" $ARGS faults=$scenario health=1 hedge=1)"
        off_p99="$(csv_field "$off_csv" fetch_p99_us)"
        on_p99="$(csv_field "$on_csv" fetch_p99_us)"
        off_mk="$(csv_field "$off_csv" makespan_s)"
        on_mk="$(csv_field "$on_csv" makespan_s)"
        hedges="$(csv_field "$on_csv" dyad_hedges)"
        wins="$(csv_field "$on_csv" dyad_hedge_wins)"
        cancels="$(csv_field "$on_csv" dyad_hedge_cancels)"
        trips="$(csv_field "$on_csv" dyad_breaker_trips)"
        consumed="$(csv_field "$on_csv" frames_consumed)"
        echo "  $scenario: fetch P99 ${off_p99}us -> ${on_p99}us," \
             "makespan ${off_mk}s -> ${on_mk}s" \
             "(${hedges} hedges, ${wins} wins, ${trips} breaker trips)" >&2
        RESULTS="$RESULTS $scenario $off_p99 $on_p99 $off_mk $on_mk \
$hedges $wins $cancels $trips $consumed"
    done

    # No-fault overhead of leaving health+hedge enabled (must be ~zero:
    # without the failover path the layer is detection-only).
    base_csv="$("$RUN" $ARGS faults=none)"
    health_csv="$("$RUN" $ARGS faults=none health=1 hedge=1)"
    base_mk="$(csv_field "$base_csv" makespan_s)"
    health_mk="$(csv_field "$health_csv" makespan_s)"
    echo "  no-fault makespan: health off ${base_mk}s, on ${health_mk}s" >&2

    python3 - "$OUT" "$base_mk" "$health_mk" $RESULTS <<'EOF'
import json, sys
out, base_mk, health_mk = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])
vals = sys.argv[4:]
doc = {
    "bench": "health_gray_failure_mitigation",
    "workload": "mdwf_run solution=dyad pairs=4 nodes=2 frames=32 reps=2 "
                "seed=7, health=0 vs health=1 hedge=1",
    "no_fault_makespan_s": {"health_off": base_mk, "health_on": health_mk},
    "no_fault_overhead_pct":
        round(100.0 * (health_mk - base_mk) / base_mk, 3) if base_mk else None,
    "scenarios": {},
}
for i in range(0, len(vals), 10):
    (sc, off_p99, on_p99, off_mk, on_mk,
     hedges, wins, cancels, trips, consumed) = vals[i:i + 10]
    off_p99, on_p99 = float(off_p99), float(on_p99)
    doc["scenarios"][sc] = {
        "fetch_p99_us_health_off": off_p99,
        "fetch_p99_us_health_on": on_p99,
        "fetch_p99_speedup":
            round(off_p99 / on_p99, 2) if on_p99 else None,
        "makespan_s_health_off": float(off_mk),
        "makespan_s_health_on": float(on_mk),
        "hedges": int(hedges),
        "hedge_wins": int(wins),
        "hedge_cancels": int(cancels),
        "breaker_trips": int(trips),
        "frames_consumed": int(consumed),
    }
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
EOF
}

suite_scale() {
    BIN="${1:?usage: bench.sh scale <scale_sweep-binary> [threads] [out.json]}"
    THREADS="${2:-4}"
    OUT="${3:-BENCH_pr5.json}"
    ARGS="pairs=64 frames=16 reps=3"

    TMP="$(mktemp -d)"
    trap 'rm -rf "$TMP"' EXIT

    echo "scale_sweep threads=1 ($ARGS)..." >&2
    S1="$("$BIN" $ARGS threads=1 out="$TMP/serial.csv" | tail -n 1)"
    echo "  $S1" >&2
    echo "scale_sweep threads=$THREADS ($ARGS)..." >&2
    SN="$("$BIN" $ARGS threads="$THREADS" out="$TMP/parallel.csv" | tail -n 1)"
    echo "  $SN" >&2

    byte_compare "$TMP/serial.csv" "$TMP/parallel.csv" \
        "merged CSVs differ between thread counts"
    echo "  merged CSVs byte-identical across thread counts" >&2

    WALL1="$(summary_field "$S1" wall_s)"
    WALLN="$(summary_field "$SN" wall_s)"
    EVENTS="$(summary_field "$S1" sim_events)"
    EPS1="$(summary_field "$S1" events_per_s)"
    EPSN="$(summary_field "$SN" events_per_s)"
    POINTS="$(summary_field "$S1" points)"

    # Prefer the binary's own hardware_concurrency report (summary field
    # host_threads=, present since PR 6); fall back to the OS view.
    CORES="$(summary_field "$S1" host_threads)"
    [ -n "$CORES" ] || CORES="$(host_threads)"

    if [ "$CORES" -le 1 ]; then
        echo "bench.sh scale: single hardware thread: speedup marked invalid" >&2
    fi

    python3 - "$OUT" "$THREADS" "$POINTS" "$EVENTS" \
        "$WALL1" "$WALLN" "$EPS1" "$EPSN" "$CORES" <<'EOF'
import json, sys
out, threads, points, events, wall1, walln, eps1, epsn, cores = sys.argv[1:10]
doc = {
    "bench": "scale_sweep_parallel_runner",
    "workload": "scale_sweep pairs=64 frames=16 reps=3 "
                "(DYAD+Lustre grid, STMV, incl. 120-node Corona points)",
    # Speedup is bounded by the host: a 1-core box shows ~1.0x (thread
    # overhead may even push it below); the CI `scale` job measures on a
    # multi-core runner.
    "host_hardware_threads": int(cores),
    "grid_points": int(points),
    "sim_events": int(events),
    "serial": {"wall_s": float(wall1), "events_per_s": float(eps1)},
    "parallel": {
        "threads": int(threads),
        "wall_s": float(walln),
        "events_per_s": float(epsn),
    },
    "speedup": round(float(wall1) / float(walln), 2)
               if float(walln) > 0 else None,
    # A 1-core host can only measure thread overhead: the serial/parallel
    # wall ratio says nothing about the runner's scaling there.
    "speedup_valid": int(cores) > 1,
    "merged_output_byte_identical": True,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
EOF
}

suite_cotenant() {
    BIN="${1:?usage: bench.sh cotenant <cotenant_sweep-binary> [threads] [out.json]}"
    THREADS="${2:-4}"
    OUT="${3:-BENCH_pr8.json}"

    TMP="$(mktemp -d)"
    trap 'rm -rf "$TMP"' EXIT

    echo "cotenant_sweep threads=1..." >&2
    S1="$("$BIN" threads=1 out="$TMP/serial.csv" | tail -n 1)"
    echo "  $S1" >&2
    echo "cotenant_sweep threads=$THREADS..." >&2
    SN="$("$BIN" threads="$THREADS" out="$TMP/parallel.csv" | tail -n 1)"
    echo "  $SN" >&2

    byte_compare "$TMP/serial.csv" "$TMP/parallel.csv" \
        "merged CSVs differ between thread counts"
    echo "  merged CSVs byte-identical across thread counts" >&2

    OVERHEAD="$(summary_field "$S1" solo_overhead_pct)"
    IMPROVE="$(summary_field "$S1" improvement)"
    P99OFF="$(summary_field "$S1" p99_off)"
    P99ON="$(summary_field "$S1" p99_on)"
    WORST="$(summary_field "$S1" worst_intensity)"

    # Gates: the isolation machinery must at least halve the victim's fetch
    # P99 under the heaviest storm, and a solo tenant must pay <= 2% (it
    # actually pays exactly 0: the solo path IS the classic runner).
    GATE_FAIL=0
    awk -v x="$IMPROVE" 'BEGIN { exit !(x + 0 >= 2.0) }' || {
        echo "bench.sh cotenant: FAILED improvement ${IMPROVE}x < 2x" >&2
        GATE_FAIL=1
    }
    awk -v x="$OVERHEAD" 'BEGIN { v = x + 0; if (v < 0) v = -v; exit !(v <= 2.0) }' || {
        echo "bench.sh cotenant: FAILED solo overhead ${OVERHEAD}% > 2%" >&2
        GATE_FAIL=1
    }

    python3 - "$OUT" "$THREADS" "$WORST" "$P99OFF" "$P99ON" "$IMPROVE" \
        "$OVERHEAD" "$TMP/serial.csv" <<'EOF'
import json, sys
out, threads, worst, p99_off, p99_on, improve, overhead, csv = sys.argv[1:9]
cells = []
with open(csv) as f:
    header = f.readline().strip().split(",")
    for line in f:
        row = dict(zip(header, line.strip().split(",")))
        cells.append({
            "noise_intensity": int(row["intensity"]),
            "isolation": row["isolation"],
            "victim_fetch_p99_us": float(row["victim_p99_us"]),
            "victim_makespan_s": float(row["victim_makespan_s"]),
            "noise_sheds": int(row["noise_sheds"]),
            "slo_escalations": int(row["slo_escalations"]),
            "slo_fallback_frames": int(row["slo_fallback"]),
        })
doc = {
    "bench": "cotenant_isolation_frontier",
    "workload": "DYAD victim (2 pairs, 2 nodes, 4 frames, reps=2) sharing "
                "one testbed with a KVS noise storm at intensity "
                "0/16/64/128; isolation = fair-share quotas + SLO guard",
    "metric": "victim consumer frame-fetch P99 (us)",
    "frontier": cells,
    "worst_noise_intensity": int(worst),
    "victim_p99_us_isolation_off": float(p99_off),
    "victim_p99_us_isolation_on": float(p99_on),
    "isolation_improvement_x": float(improve),
    "solo_overhead_pct": float(overhead),
    "gates": {
        "isolation_improvement_x >= 2": float(improve) >= 2.0,
        "abs(solo_overhead_pct) <= 2": abs(float(overhead)) <= 2.0,
    },
    "merged_output_byte_identical": True,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
EOF
    return "$GATE_FAIL"
}

suite_frontier() {
    BIN="${1:?usage: bench.sh frontier <solution_frontier-binary> [threads] [out.json]}"
    THREADS="${2:-4}"
    OUT="${3:-BENCH_pr6.json}"

    TMP="$(mktemp -d)"
    trap 'rm -rf "$TMP"' EXIT

    echo "solution_frontier threads=1..." >&2
    "$BIN" threads=1 out="$TMP/serial.csv" > "$TMP/serial.txt"
    tail -n 1 "$TMP/serial.txt" >&2
    echo "solution_frontier threads=$THREADS..." >&2
    "$BIN" threads="$THREADS" out="$TMP/parallel.csv" > "$TMP/parallel.txt"
    tail -n 1 "$TMP/parallel.txt" >&2

    byte_compare "$TMP/serial.csv" "$TMP/parallel.csv" \
        "CSVs differ between thread counts"
    echo "  CSVs byte-identical across thread counts" >&2

    python3 - "$OUT" "$TMP/serial.txt" <<'EOF'
import json, sys

out, txt = sys.argv[1], sys.argv[2]
regimes, summary = [], {}
with open(txt) as f:
    for line in f:
        if line.startswith("frontier: "):
            fields = dict(kv.split("=", 1) for kv in line.split()[1:])
            regimes.append({
                "model": fields["model"],
                "pairs": int(fields["pairs"]),
                "consumer_lag": float(fields["lag"]),
                "faults": fields["faults"],
                "stream_fetch_p99_us": float(fields["stream_p99_us"]),
                "dyad_fetch_p99_us": float(fields["dyad_p99_us"]),
                "staging_demand_mib": float(fields["staging_demand_mib"]),
                "winner": fields["winner"],
            })
        elif line.startswith("solution_frontier: "):
            summary = dict(kv.split("=", 1) for kv in line.split()[1:])

wins = [r for r in regimes if r["winner"] == "stream"]
losses = [r for r in regimes if r["winner"] == "dyad"]
doc = {
    "bench": "solution_frontier_stream_vs_dyad",
    "workload": "frame size (JAC/STMV) x consumer count (pairs) x consumer "
                "lag (analytics=) x fault scenario, 4 solutions, reps=2",
    "metric": "consumer frame-fetch latency P99 (us)",
    "grid_points": int(summary.get("points", 0)),
    "errors": int(summary.get("errors", 0)),
    "sim_events": int(summary.get("sim_events", 0)),
    "stream_wins": len(wins),
    "stream_losses": len(losses),
    # The crossover: staged delivery wins while every frame stays resident
    # in the staging buffer and inside the credit window; once a lagging
    # consumer (analytics > 1 frame period) holds credits past
    #   pairs x credits x frame_bytes > buffer_capacity   (buffer-bound) or
    #   consumer_lag x frame_period > credits x frame_period (credit-bound)
    # puts overflow to the Lustre spill path and the consumer pays up to one
    # arrival-timeout of blindness plus a Lustre round trip per frame --
    # behind DYAD, whose producer is never throttled and whose KVS entry is
    # long visible by the time the lagging consumer asks.
    "crossover": {
        "credits_per_prefix": 4,
        "buffer_capacity_mib": 128.0,
        "arrival_timeout_ms": 40.0,
        "buffer_bound": "pairs * credits * frame_bytes > buffer_capacity",
        "credit_bound": "consumer_lag > credits (frames of producer headroom)",
        "stream_wins_when": "frames fit the staging buffer and the consumer "
                            "keeps pace: staged fetch dodges DYAD's KVS "
                            "visibility wait (and its lossy-link retries)",
        "stream_loses_when": "a lagging consumer exhausts credits or buffer "
                             "and puts spill to Lustre",
    },
    "example_win": min(wins, key=lambda r: r["stream_fetch_p99_us"]),
    "example_loss": max(losses,
                        key=lambda r: r["stream_fetch_p99_us"]
                        - r["dyad_fetch_p99_us"]) if losses else None,
    "regimes": regimes,
    "csv_byte_identical_across_threads": True,
}
assert doc["errors"] == 0, "frontier points failed"
assert doc["stream_wins"] >= 1 and doc["stream_losses"] >= 1, \
    "grid no longer brackets the crossover"
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps({k: v for k, v in doc.items() if k != "regimes"}, indent=2))
EOF
}

suite_membership() {
    BIN="${1:?usage: bench.sh membership <membership_sweep-binary> [threads] [out.json]}"
    THREADS="${2:-$(host_threads)}"
    OUT="${3:-BENCH_pr9.json}"

    TMP="$(mktemp -d)"
    trap 'rm -rf "$TMP"' EXIT

    echo "membership_sweep threads=1..." >&2
    "$BIN" threads=1 out="$TMP/serial.csv" > "$TMP/serial.txt"
    tail -n 1 "$TMP/serial.txt" >&2
    echo "membership_sweep threads=$THREADS..." >&2
    "$BIN" threads="$THREADS" out="$TMP/parallel.csv" > "$TMP/parallel.txt"
    tail -n 1 "$TMP/parallel.txt" >&2

    byte_compare "$TMP/serial.csv" "$TMP/parallel.csv" \
        "CSVs differ between thread counts"
    echo "  CSVs byte-identical across thread counts" >&2

    python3 - "$OUT" "$TMP/serial.txt" <<'EOF'
import json, sys

out, txt = sys.argv[1], sys.argv[2]
points, summary = [], {}
with open(txt) as f:
    for line in f:
        if line.startswith("frontier: "):
            fields = dict(kv.split("=", 1) for kv in line.split()[1:])
            points.append({
                "silence_ceiling_ms": int(fields["ceiling_ms"]),
                "scenario": fields["scenario"],
                "detect_ms": float(fields["detect_ms"]),
                "mttr_s": float(fields["mttr_s"]),
                "declares": int(fields["declares"]),
                "migrations": int(fields["migrations"]),
                "stale_epoch_rejects": int(fields["stale_rejects"]),
                "frames_lost": int(fields["frames_lost"]),
            })
        elif line.startswith("membership_sweep: "):
            summary = dict(kv.split("=", 1) for kv in line.split()[1:])

loss = [p for p in points if p["scenario"] == "node-loss"]
heal = [p for p in points if p["scenario"] == "heal-after-declare"]
doc = {
    "bench": "membership_mttr_vs_detection",
    "workload": "dyad nodes=2 pairs=2 frames=8 reps=2; declare-dead silence "
                "ceiling sweep (confirm window = ceiling/4) under node-loss "
                "(a node really dies) and heal-after-declare (1.2 s one-way "
                "partition, the node is fine)",
    "metric": "MTTR (makespan minus plane-on fault-free makespan, s) vs "
              "detection latency (declare_latency mean, ms)",
    "grid_points": int(summary.get("points", 0)),
    "errors": int(summary.get("errors", 0)),
    "sim_events": int(summary.get("sim_events", 0)),
    "no_fault_overhead_pct": float(summary.get("overhead_pct", 0.0)),
    "all_frames_delivered": summary.get("all_delivered") == "1",
    # The tension the sweep exists to show: under real loss an eager policy
    # minimizes MTTR (detection IS dead time); under a transient partition
    # the same eagerness declares a healthy node dead -- terminal by design,
    # so it pays a spurious fence + migration -- while a confirm window
    # longer than the partition rides it out for free.
    "tradeoff": {
        "node_loss_fastest_mttr_s": min(p["mttr_s"] for p in loss),
        "node_loss_slowest_mttr_s": max(p["mttr_s"] for p in loss),
        "spurious_declares_eager": max(p["declares"] for p in heal),
        "spurious_declares_conservative":
            min(p["declares"] for p in heal),
    },
    "frontier": points,
    "csv_byte_identical_across_threads": True,
}
assert doc["errors"] == 0, "membership sweep points failed"
assert doc["all_frames_delivered"], "a faulted point lost frames"
assert abs(doc["no_fault_overhead_pct"]) <= 2.0, \
    "idle membership plane costs more than the 2% gate"
assert any(p["declares"] > 0 for p in heal) and \
       any(p["declares"] == 0 for p in heal), \
    "ceiling sweep no longer brackets the spurious-declare crossover"
assert all(p["stale_epoch_rejects"] > 0
           for p in heal if p["declares"] > 0), \
    "a spurious declare produced no fenced zombie publish"
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps({k: v for k, v in doc.items() if k != "frontier"},
                 indent=2))
EOF
}

suite_perf() {
    RUN="${1:?usage: bench.sh perf <mdwf_run-binary> [out.json] [baseline.json]}"
    OUT="${2:-BENCH_pr7.json}"
    BASELINE="${3:-}"
    # Default baseline: the committed history for this gate, if present.
    [ -n "$BASELINE" ] || { [ -f "BENCH_pr7.json" ] && BASELINE="BENCH_pr7.json" || true; }
    # Keep the BENCH_pr2 pinned point so the traced-throughput history
    # stays directly comparable across PRs.
    ARGS="solution=dyad pairs=4 nodes=2 frames=64 reps=5 output=csv"
    TRACE_PATH="$(mktemp -u /tmp/mdwf_perf_gate.XXXXXX.json)"
    N=5
    CORES="$(host_threads)"

    # Read the baseline BEFORE overwriting OUT (they may be the same file).
    BASE_UNTRACED=""
    BASE_TRACED=""
    if [ -n "$BASELINE" ] && [ -f "$BASELINE" ]; then
        BASE_UNTRACED="$(python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); print(d["events_per_sec"]["untraced"] or "")' "$BASELINE" 2>/dev/null || true)"
        BASE_TRACED="$(python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); print(d["events_per_sec"]["traced"] or "")' "$BASELINE" 2>/dev/null || true)"
    fi

    echo "bench perf: $RUN $ARGS (best of $N)" >&2
    time_run "$N" "$RUN" $ARGS
    untraced_ms="$WALL_MS"
    events="$(csv_field "$RUN_OUT" sim_events)"
    [ -n "$events" ] || { echo "bench.sh perf: no sim_events column" >&2; exit 1; }
    echo "  untraced: ${untraced_ms} ms, ${events} sim events" >&2
    time_run "$N" "$RUN" $ARGS "trace=$TRACE_PATH"
    traced_ms="$WALL_MS"
    echo "  traced: ${traced_ms} ms" >&2
    rm -f "$TRACE_PATH" "$TRACE_PATH.metrics.csv"

    python3 - "$OUT" "$untraced_ms" "$traced_ms" "$events" "$N" "$CORES" \
        "$BASE_UNTRACED" "$BASE_TRACED" <<'EOF'
import json, sys
out = sys.argv[1]
untraced_ms, traced_ms, events, best_of, cores = map(int, sys.argv[2:7])
base_untraced = int(sys.argv[7]) if sys.argv[7] else None
base_traced = int(sys.argv[8]) if sys.argv[8] else None

untraced_eps = round(events / (untraced_ms / 1000.0)) if untraced_ms else None
traced_eps = round(events / (traced_ms / 1000.0)) if traced_ms else None

def drop_pct(now, base):
    if now is None or not base:
        return None
    return round(100.0 * (base - now) / base, 2)

doc = {
    "bench": "kernel_perf_gate",
    "workload": "mdwf_run solution=dyad pairs=4 nodes=2 frames=64 reps=5",
    "best_of": best_of,
    "host_hardware_threads": cores,
    "sim_events": events,
    "wall_ms": {"untraced": untraced_ms, "traced": traced_ms},
    "events_per_sec": {"untraced": untraced_eps, "traced": traced_eps},
    "tracing_enabled_overhead_pct":
        round(100.0 * (traced_ms - untraced_ms) / untraced_ms, 2)
        if untraced_ms else None,
    "baseline": {
        "events_per_sec": {"untraced": base_untraced, "traced": base_traced},
        "untraced_drop_pct": drop_pct(untraced_eps, base_untraced),
        "traced_drop_pct": drop_pct(traced_eps, base_traced),
    },
    "gate": {"max_drop_pct": 10.0, "gated": cores > 1},
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))

if cores <= 1:
    print("bench.sh perf: NOTICE: single hardware thread; measurements "
          "recorded but the >10% regression gate is SKIPPED on this host",
          file=sys.stderr)
    sys.exit(0)
worst = max((d for d in (doc["baseline"]["untraced_drop_pct"],
                         doc["baseline"]["traced_drop_pct"])
             if d is not None), default=None)
if worst is None:
    print("bench.sh perf: no baseline; gate records history only",
          file=sys.stderr)
elif worst > 10.0:
    print(f"bench.sh perf: FAIL: events/sec dropped {worst}% vs baseline "
          "(>10% gate)", file=sys.stderr)
    sys.exit(1)
else:
    print(f"bench.sh perf: OK: worst drop vs baseline {worst}% (gate 10%)",
          file=sys.stderr)
EOF
}

# ---- dispatch --------------------------------------------------------------

case "$SUITE" in
    trace)      suite_trace "$@" ;;
    resilience) suite_resilience "$@" ;;
    health)     suite_health "$@" ;;
    scale)      suite_scale "$@" ;;
    frontier)   suite_frontier "$@" ;;
    cotenant)   suite_cotenant "$@" ;;
    membership) suite_membership "$@" ;;
    perf)       suite_perf "$@" ;;
    *)
        # Same diagnostic shape as the C++ config binding (common/suggest):
        # name the bad input, list every valid choice, and point at the
        # nearest one when a typo is within two edits.
        HINT="$(awk -v bad="$SUITE" -v all="$SUITES" '
            function min3(a, b, c) {
                m = a; if (b < m) m = b; if (c < m) m = c; return m
            }
            function dist(s, t,    n, m, i, j, c, d) {
                n = length(s); m = length(t)
                for (i = 0; i <= n; i++) d[i, 0] = i
                for (j = 0; j <= m; j++) d[0, j] = j
                for (i = 1; i <= n; i++)
                    for (j = 1; j <= m; j++) {
                        c = substr(s, i, 1) == substr(t, j, 1) ? 0 : 1
                        d[i, j] = min3(d[i-1, j] + 1, d[i, j-1] + 1,
                                       d[i-1, j-1] + c)
                    }
                return d[n, m]
            }
            BEGIN {
                split(all, names, " ")
                best = ""; bestd = 3
                for (k in names) {
                    dd = dist(bad, names[k])
                    if (dd < bestd) { bestd = dd; best = names[k] }
                }
                if (best != "") printf " (did you mean %s?)", best
            }')"
        echo "bench.sh: unknown suite '$SUITE'$HINT" >&2
        echo "valid suites: $SUITES" >&2
        exit 2
        ;;
esac
