#!/usr/bin/env sh
# Measures the parallel replica runner: runs the paper-scale grid
# (bench/scale_sweep) serially and with N worker threads, byte-compares the
# merged CSVs (the runner's determinism contract), and reports DES
# throughput plus the wall-clock speedup as BENCH_pr5.json.
#
#   tools/bench_scale.sh <scale_sweep-binary> [threads] [out.json]
#
# Exits nonzero if either run fails or the CSVs differ by a single byte.
set -eu

BIN="${1:?usage: bench_scale.sh <scale_sweep-binary> [threads] [out.json]}"
THREADS="${2:-4}"
OUT="${3:-BENCH_pr5.json}"
ARGS="pairs=64 frames=16 reps=3"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# summary_field <summary-line> <key>
summary_field() {
    printf '%s\n' "$1" | tr ' ' '\n' | awk -F= -v k="$2" '$1==k{print $2}'
}

echo "scale_sweep threads=1 ($ARGS)..." >&2
S1="$("$BIN" $ARGS threads=1 out="$TMP/serial.csv" | tail -n 1)"
echo "  $S1" >&2
echo "scale_sweep threads=$THREADS ($ARGS)..." >&2
SN="$("$BIN" $ARGS threads="$THREADS" out="$TMP/parallel.csv" | tail -n 1)"
echo "  $SN" >&2

cmp "$TMP/serial.csv" "$TMP/parallel.csv" || {
    echo "bench_scale: merged CSVs differ between thread counts" >&2
    exit 1
}
echo "  merged CSVs byte-identical across thread counts" >&2

WALL1="$(summary_field "$S1" wall_s)"
WALLN="$(summary_field "$SN" wall_s)"
EVENTS="$(summary_field "$S1" sim_events)"
EPS1="$(summary_field "$S1" events_per_s)"
EPSN="$(summary_field "$SN" events_per_s)"
POINTS="$(summary_field "$S1" points)"

# Prefer the binary's own hardware_concurrency report (summary field
# host_threads=, present since PR 6); fall back to the OS view.
CORES="$(summary_field "$S1" host_threads)"
[ -n "$CORES" ] ||
    CORES="$( (nproc || sysctl -n hw.ncpu || echo 1) 2>/dev/null | head -n 1)"

if [ "$CORES" -le 1 ]; then
    echo "bench_scale: single hardware thread: speedup marked invalid" >&2
fi

python3 - "$OUT" "$THREADS" "$POINTS" "$EVENTS" \
    "$WALL1" "$WALLN" "$EPS1" "$EPSN" "$CORES" <<'EOF'
import json, sys
out, threads, points, events, wall1, walln, eps1, epsn, cores = sys.argv[1:10]
doc = {
    "bench": "scale_sweep_parallel_runner",
    "workload": "scale_sweep pairs=64 frames=16 reps=3 "
                "(DYAD+Lustre grid, STMV, incl. 120-node Corona points)",
    # Speedup is bounded by the host: a 1-core box shows ~1.0x (thread
    # overhead may even push it below); the CI `scale` job measures on a
    # multi-core runner.
    "host_hardware_threads": int(cores),
    "grid_points": int(points),
    "sim_events": int(events),
    "serial": {"wall_s": float(wall1), "events_per_s": float(eps1)},
    "parallel": {
        "threads": int(threads),
        "wall_s": float(walln),
        "events_per_s": float(epsn),
    },
    "speedup": round(float(wall1) / float(walln), 2)
               if float(walln) > 0 else None,
    # A 1-core host can only measure thread overhead: the serial/parallel
    # wall ratio says nothing about the runner's scaling there.
    "speedup_valid": int(cores) > 1,
    "merged_output_byte_identical": True,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
EOF
