#!/usr/bin/env sh
# Measures the wall-clock cost of the mdwf::obs tracing layer.
#
#   tools/bench_trace_overhead.sh <mdwf_run-binary> [out.json]
#
# Runs the fig5-style cross-node DYAD workload three ways -- tracing
# compiled in but disabled (the shipping default), tracing enabled, and
# again disabled -- and emits a BENCH json with wall times, simulated
# events/sec, and the disabled-vs-enabled overhead.  The two disabled
# runs bracket the traced one so a noisy machine shows up as disagreement
# between them rather than as phantom overhead.
set -eu

RUN="${1:?usage: bench_trace_overhead.sh <mdwf_run-binary> [out.json]}"
OUT="${2:-BENCH_pr2.json}"
ARGS="solution=dyad pairs=4 nodes=2 frames=64 reps=5 output=csv"
TRACE_PATH="$(mktemp -u /tmp/mdwf_trace_overhead.XXXXXX.json)"

now_ns() { date +%s%N; }

# time_run <label> [extra args...] -> sets WALL_MS (best of 3, to shrug off
# frequency-scaling drift) and SIM_EVENTS
time_run() {
    label="$1"; shift
    WALL_MS=""
    for _attempt in 1 2 3; do
        start="$(now_ns)"
        csv="$("$RUN" $ARGS "$@")"
        end="$(now_ns)"
        ms="$(( (end - start) / 1000000 ))"
        if [ -z "$WALL_MS" ] || [ "$ms" -lt "$WALL_MS" ]; then WALL_MS="$ms"; fi
    done
    SIM_EVENTS="$(printf '%s\n' "$csv" | awk -F, '
        NR==1 { for (i = 1; i <= NF; i++) if ($i == "sim_events") col = i }
        NR==2 { print $col }')"
    [ -n "$SIM_EVENTS" ] || { echo "bench_trace_overhead: no sim_events column" >&2; exit 1; }
    echo "  $label: ${WALL_MS} ms (best of 3), ${SIM_EVENTS} sim events" >&2
}

echo "bench_trace_overhead: $RUN $ARGS" >&2
time_run "untraced (a)";            base1_ms="$WALL_MS"; events="$SIM_EVENTS"
time_run "traced" "trace=$TRACE_PATH"; traced_ms="$WALL_MS"
time_run "untraced";                base2_ms="$WALL_MS"

rm -f "$TRACE_PATH" "$TRACE_PATH.metrics.csv"

# Overhead of the *disabled* hooks cannot be isolated at runtime (they are
# always compiled in), so the headline number is enabled-vs-disabled; the
# two untraced runs measure machine noise.
python3 - "$OUT" "$base1_ms" "$traced_ms" "$base2_ms" "$events" <<'EOF'
import json, sys
out, b1, tr, b2, ev = sys.argv[1], *map(int, sys.argv[2:6])
base = min(b1, b2)
doc = {
    "bench": "trace_overhead",
    "workload": "mdwf_run solution=dyad pairs=4 nodes=2 frames=64 reps=5",
    "sim_events": ev,
    "wall_ms": {"untraced_a": b1, "traced": tr, "untraced_b": b2},
    "events_per_sec": {
        "untraced": round(ev / (base / 1000.0)) if base else None,
        "traced": round(ev / (tr / 1000.0)) if tr else None,
    },
    "tracing_enabled_overhead_pct":
        round(100.0 * (tr - base) / base, 2) if base else None,
    "untraced_noise_pct":
        round(100.0 * abs(b1 - b2) / base, 2) if base else None,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
EOF
