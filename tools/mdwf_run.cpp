// mdwf_run: command-line driver for arbitrary workflow experiments.
//
//   mdwf_run [config-file] [key=value ...]
//
// Keys (all optional):
//   solution   = dyad | xfs | lustre        (default dyad)
//   pairs      = <n>                        (default 4)
//   nodes      = <n>                        (default 2; 1 for xfs)
//   model      = JAC | ApoA1 | "F1 ATPase" | STMV   (default JAC)
//   stride     = <steps>                    (default: the model's Table II stride)
//   frames     = <n>                        (default 64)
//   reps       = <n>                        (default 5)
//   seed       = <n>                        (default 1)
//   interference = 0|1                      (Lustre OST background load)
//   push       = 0|1                        (DYAD push-mode routing)
//   jitter     = <sigma>                    (MD rate variability, default 0.01)
//   faults     = <scenario>                 (fault injection: none, broker-blip,
//                                            broker-outage, slow-nvme,
//                                            flaky-fabric, partition, ost-storm)
//   retry      = 0|1                        (DYAD recovery protocol: RPC
//                                            timeout+retry and Lustre failover;
//                                            default 1 when faults are injected)
//   output     = table | csv                (default table)
//   tree       = 0|1                        (print the consumer call tree)
//
// Example:
//   mdwf_run solution=lustre pairs=16 model=STMV frames=32 output=csv
//   mdwf_run solution=dyad faults=broker-outage retry=1
#include <cstdio>
#include <fstream>
#include <string>

#include "mdwf/common/format.hpp"
#include "mdwf/common/keyval.hpp"
#include "mdwf/common/table.hpp"
#include "mdwf/fault/plan.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace {

using namespace mdwf;

int fail(const std::string& msg) {
  std::fprintf(stderr, "mdwf_run: %s\n", msg.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  KeyValueConfig cfg;
  std::vector<std::string> positional;
  try {
    positional = cfg.parse_args(argc, argv);
    for (const auto& file : positional) {
      std::ifstream in(file);
      if (!in) return fail("cannot open config file '" + file + "'");
      cfg.parse_stream(in);
    }

    workflow::EnsembleConfig config;
    const std::string solution = cfg.get_string("solution", "dyad");
    if (solution == "dyad") {
      config.solution = workflow::Solution::kDyad;
    } else if (solution == "xfs") {
      config.solution = workflow::Solution::kXfs;
    } else if (solution == "lustre") {
      config.solution = workflow::Solution::kLustre;
    } else {
      return fail("unknown solution '" + solution + "'");
    }

    const std::string model_name = cfg.get_string("model", "JAC");
    const auto model = md::find_model(model_name);
    if (!model.has_value()) return fail("unknown model '" + model_name + "'");

    config.pairs = static_cast<std::uint32_t>(cfg.get_uint("pairs", 4));
    const std::uint32_t default_nodes =
        config.solution == workflow::Solution::kXfs ? 1 : 2;
    config.nodes =
        static_cast<std::uint32_t>(cfg.get_uint("nodes", default_nodes));
    config.workload.model = *model;
    config.workload.stride = cfg.get_uint("stride", model->stride);
    config.workload.frames = cfg.get_uint("frames", 64);
    config.workload.step_jitter_sigma = cfg.get_double("jitter", 0.01);
    config.repetitions =
        static_cast<std::uint32_t>(cfg.get_uint("reps", 5));
    config.base_seed = cfg.get_uint("seed", 1);
    config.lustre_interference = cfg.get_bool("interference", false);
    config.testbed.dyad.push_mode = cfg.get_bool("push", false);
    config.workload.compress = cfg.get_bool("compress", false);
    if (cfg.get_bool("colocate", false)) {
      config.placement = workflow::Placement::kColocated;
    }

    const std::string faults = cfg.get_string("faults", "none");
    if (faults != "none") {
      fault::ScenarioShape shape;
      shape.compute_nodes = config.nodes;
      shape.ost_count = config.testbed.lustre.ost_count;
      shape.seed = config.base_seed;
      config.testbed.faults = fault::make_scenario(faults, shape);
    }
    // Recovery protocol defaults on under injected faults (a retry-less DYAD
    // consumer deadlocks through a broker outage); retry=0 reproduces that.
    const bool retry = cfg.get_bool("retry", faults != "none");
    config.testbed.dyad.retry.enabled = retry;
    config.testbed.dyad.retry.lustre_fallback = retry;
    const std::string output = cfg.get_string("output", "table");
    const bool print_tree = cfg.get_bool("tree", false);

    if (const auto unknown = cfg.unknown_keys(); !unknown.empty()) {
      std::string msg = "unknown key(s):";
      for (const auto& k : unknown) msg += " " + k;
      return fail(msg);
    }

    const auto r = workflow::run_ensemble(config);

    if (output == "csv") {
      std::printf(
          "solution,model,pairs,nodes,stride,frames,reps,"
          "prod_move_us,prod_idle_us,cons_move_us,cons_idle_us,makespan_s\n");
      std::printf("%s,%s,%u,%u,%llu,%llu,%u,%.3f,%.3f,%.3f,%.3f,%.4f\n",
                  solution.c_str(), model_name.c_str(), config.pairs,
                  config.nodes,
                  static_cast<unsigned long long>(config.workload.stride),
                  static_cast<unsigned long long>(config.workload.frames),
                  config.repetitions, r.prod_movement_us.mean(),
                  r.prod_idle_us.mean(), r.cons_movement_us.mean(),
                  r.cons_idle_us.mean(), r.makespan_s.mean());
    } else if (output == "table") {
      TextTable t({"metric", "movement", "idle", "total"});
      auto row = [&](const char* name, const Samples& move,
                     const Samples& idle) {
        t.add_row({name,
                   format_double(move.mean(), 1) + " +/- " +
                       format_double(move.stddev(), 1) + " us",
                   format_double(idle.mean(), 1) + " +/- " +
                       format_double(idle.stddev(), 1) + " us",
                   format_double(move.mean() + idle.mean(), 1) + " us"});
      };
      row("production/frame", r.prod_movement_us, r.prod_idle_us);
      row("consumption/frame", r.cons_movement_us, r.cons_idle_us);
      std::printf("%s, %s, %u pair(s), %u node(s), stride %llu, %llu "
                  "frames, %u repetition(s)\n\n%s\nmakespan %.3f +/- %.3f s\n",
                  solution.c_str(), model_name.c_str(), config.pairs,
                  config.nodes,
                  static_cast<unsigned long long>(config.workload.stride),
                  static_cast<unsigned long long>(config.workload.frames),
                  config.repetitions, t.render().c_str(), r.makespan_s.mean(),
                  r.makespan_s.stddev());
      if (config.solution == workflow::Solution::kDyad) {
        std::printf("dyad: %llu warm hits, %llu kvs waits, %llu retries\n",
                    static_cast<unsigned long long>(r.dyad_warm_hits),
                    static_cast<unsigned long long>(r.dyad_kvs_waits),
                    static_cast<unsigned long long>(r.dyad_kvs_retries));
        if (retry) {
          std::printf(
              "recovery: %llu retry attempts, %llu failover reads, "
              "%llu republishes\n",
              static_cast<unsigned long long>(r.dyad_recovery_retries),
              static_cast<unsigned long long>(r.dyad_failovers),
              static_cast<unsigned long long>(r.dyad_republishes));
        }
      }
    } else {
      return fail("unknown output '" + output + "'");
    }

    if (print_tree) {
      const auto agg = r.thicket.filter("role", "consumer").aggregate();
      std::printf("\nconsumer call tree:\n%s", agg.render().c_str());
    }
  } catch (const ConfigError& e) {
    return fail(e.what());
  } catch (const std::exception& e) {
    return fail(std::string("error: ") + e.what());
  }
  return 0;
}
