// mdwf_run: command-line driver for arbitrary workflow experiments.
//
//   mdwf_run [config-file] [key=value ...]
//
// Keys (all optional):
//   solution   = dyad | xfs | lustre | stream   (default dyad)
//   pairs      = <n>                        (default 4)
//   nodes      = <n>                        (default 2; 1 for xfs)
//   model      = JAC | ApoA1 | "F1 ATPase" | STMV   (default JAC)
//   stride     = <steps>                    (default: the model's Table II stride)
//   frames     = <n>                        (default 64)
//   reps       = <n>                        (default 5)
//   seed       = <n>                        (default 1)
//   threads    = <n>                        (worker threads fanning the seeded
//                                            repetitions; 0 = all hardware
//                                            threads; results are byte-identical
//                                            for every value; default 1)
//   interference = 0|1                      (Lustre OST background load)
//   push       = 0|1                        (DYAD push-mode routing)
//   jitter     = <sigma>                    (MD rate variability, default 0.01)
//   faults     = <scenario>                 (fault injection: none, broker-blip,
//                                            broker-outage, slow-nvme,
//                                            flaky-fabric, partition, ost-storm,
//                                            node-crash, rank-kill, bit-flip,
//                                            crash-flip, crash:<n>, slow-disk,
//                                            lossy-link, overload, node-loss,
//                                            loss-after-publish,
//                                            heal-after-declare)
//   retry      = 0|1                        (DYAD recovery protocol: RPC
//                                            timeout+retry and Lustre failover;
//                                            default 1 when faults are injected)
//   health     = 0|1                        (gray-failure mitigation: phi-accrual
//                                            failure detector, circuit breaker
//                                            over the KVS, bounded server
//                                            admission queues; default 0)
//   hedge      = 0|1                        (race a delayed Lustre-replica read
//                                            against slow cold fetches; implies
//                                            health=1; default 0)
//   integrity  = 0|1                        (end-to-end CRC32C frame checksums;
//                                            default 1 under bit-flip or crash
//                                            scenarios, else 0)
//   membership = 0|1                        (membership plane: heartbeats,
//                                            declare-dead policy, checkpoint-
//                                            driven rank migration off a
//                                            permanently lost node, incarnation
//                                            fencing of zombies; required for
//                                            node-loss/loss-after-publish to
//                                            complete; default 0)
//   checkpoint = <n>                        (persist per-rank progress every n
//                                            frames; 0 disables; default: every
//                                            frame when crash windows are
//                                            planned)
//   trace      = <path>                     (export a Chrome trace-event JSON of
//                                            the first repetition, plus a
//                                            <path>.metrics.csv of the resource
//                                            samples; open in ui.perfetto.dev)
//   output     = table | csv                (default table)
//   tree       = 0|1                        (print the consumer call tree)
//
// DAG workload mode (mdwf::wload, DESIGN.md Sec. 13) — when workload= is
// present the fixed producer/consumer pipeline is replaced by a
// dependency-driven task graph; pairs/frames/model/stride are ignored and
// the run's frame total is the DAG's edge-frame count:
//   workload   = wfcommons:<file> | synth:chain|fork-join|montage
//   dag_tasks  = <n>      synthetic task count            (default 8)
//   dag_width  = <n>      synthetic fan-out width         (default 4)
//   dag_seed   = <n>      synthetic shape seed            (default 1)
//   dag_runtime= <s>      synthetic median task runtime   (default 2.0)
//   dag_bytes  = <n>      synthetic median output bytes   (default 64 MiB)
//   dag_chunk  = <n>      edge frame size in bytes        (default 32 MiB)
//   dag_scale  = <x>      task runtime multiplier         (default 1.0)
//
// Co-tenant mode (multi-tenant co-scheduling, DESIGN.md Sec. 11) — when
// tenants= is present the driver places every tenant on its own node slice
// of ONE shared testbed instead of running a single ensemble:
//   tenants    = comma-separated descriptors, each
//                [<name>@]<solution>/<pairs>/<nodes>[/<faults>[/<weight>]]
//                or [<name>@]noise[/<intensity>[/<weight>]]
//   slo        = 0|1                        (per-tenant SLO guard: stagger ->
//                                            shrink credits -> Lustre fallback)
//   slo_target_us = <us>                    (fetch-P99 target, default 6000)
//   quota      = 0|1                        (weighted fair-share quotas on the
//                                            shared KVS/MDS/OSTs; default 1)
//
// Example:
//   mdwf_run solution=lustre pairs=16 model=STMV frames=32 output=csv
//   mdwf_run solution=dyad faults=broker-outage trace=run.json
//   mdwf_run solution=dyad faults=crash-flip checkpoint=1 trace=crash.json
//   mdwf_run tenants=victim@dyad/4/2,noise/64 slo=1 output=csv
//
// Exit status: 0 on success; 1 on configuration/runtime errors; 2 when the
// run lost data (unrecovered checksum failures, or fewer frames consumed
// than pairs*frames*reps).
#include <cstdio>
#include <fstream>
#include <string>

#include "mdwf/common/format.hpp"
#include "mdwf/common/keyval.hpp"
#include "mdwf/common/table.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/tenant/tenant.hpp"
#include "mdwf/wload/wload.hpp"
#include "mdwf/workflow/config.hpp"
#include "mdwf/workflow/dag_run.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace {

using namespace mdwf;

int fail(const std::string& msg) {
  std::fprintf(stderr, "mdwf_run: %s\n", msg.c_str());
  return 1;
}

// Driver defaults layered under the key=value overrides: a small standard
// experiment rather than the library's single-pair defaults.
workflow::EnsembleConfig driver_defaults() {
  workflow::EnsembleConfig d;
  d.pairs = 4;
  d.nodes = 2;
  d.workload.frames = 64;
  d.repetitions = 5;
  return d;
}

// Co-tenant mode: N tenants on one shared testbed (tenants= present).
int run_cotenant(const KeyValueConfig& cfg, const std::string& output) {
  const tenant::MultiTenantConfig mc =
      tenant::parse_multi_tenant(cfg, driver_defaults());
  const tenant::MultiTenantResult r = tenant::run_multi_tenant(mc);

  if (output == "csv") {
    std::fputs(r.to_csv().c_str(), stdout);
  } else if (output == "table") {
    TextTable t({"tenant", "solution", "pairs", "nodes", "makespan_s",
                 "fetch_p99_us", "frames_consumed", "quota_sheds",
                 "slo_transitions"});
    for (const auto& tr : r.tenants) {
      const bool noise = tr.spec.kind == tenant::TenantKind::kNoise;
      const auto& c = tr.result.counters;
      const std::uint64_t quota_sheds = c.get("quota_kvs_sheds") +
                                        c.get("quota_mds_sheds") +
                                        c.get("quota_ost_sheds");
      t.add_row({tr.spec.name,
                 noise ? "noise"
                       : std::string(workflow::to_string(tr.spec.solution)),
                 std::to_string(noise ? 0 : tr.spec.pairs),
                 std::to_string(tr.spec.nodes),
                 noise ? "-" : format_double(tr.result.makespan_s.mean(), 3),
                 noise ? "-"
                       : format_double(tr.result.cons_fetch_us.quantile(0.99),
                                       1),
                 std::to_string(c.get("frames_consumed")),
                 std::to_string(quota_sheds),
                 std::to_string(c.get("slo_escalations") +
                                c.get("slo_deescalations"))});
    }
    std::printf("%zu tenant(s), %u node(s) shared testbed, %u "
                "repetition(s)\n\n%s\nshared counters:\n",
                mc.tenants.size(), tenant::total_nodes(mc), mc.repetitions,
                t.render().c_str());
    for (const auto& [name, value] : r.shared) {
      if (value == 0) continue;
      std::printf("  %-24s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
    if (!mc.trace_path.empty()) {
      std::printf("\ntrace written to %s (+ %s)\n", mc.trace_path.c_str(),
                  obs::TraceSink::metrics_csv_path(mc.trace_path).c_str());
    }
  } else {
    return fail("unknown output '" + output + "'");
  }

  // Per-tenant data-loss audit: the diagnostic names the tenant so a failed
  // co-tenant chaos run is attributable from its stderr line alone.
  int exit_code = 0;
  for (const auto& tr : r.tenants) {
    if (tr.spec.kind != tenant::TenantKind::kWorkflow) continue;
    const std::uint64_t expected = static_cast<std::uint64_t>(tr.spec.pairs) *
                                   tr.spec.workload.frames * mc.repetitions;
    const std::uint64_t consumed = tr.result.counters.get("frames_consumed");
    if (consumed < expected) {
      std::fprintf(stderr,
                   "mdwf_run: FAILED: tenant '%s' incomplete: %llu of %llu "
                   "frames consumed (tenant=%s faults=%s seed=%llu)\n",
                   tr.spec.name.c_str(),
                   static_cast<unsigned long long>(consumed),
                   static_cast<unsigned long long>(expected),
                   tr.spec.name.c_str(), tr.spec.faults.c_str(),
                   static_cast<unsigned long long>(mc.base_seed));
      exit_code = 2;
    }
  }
  if (r.shared.get("integrity_unrecovered") > 0) {
    // The ledger is shared, so name the tenants whose plans can corrupt.
    std::string suspects;
    for (const auto& tr : r.tenants) {
      if (tr.spec.faults == "none" || tr.spec.faults.empty()) continue;
      if (!suspects.empty()) suspects += ",";
      suspects += tr.spec.name + "(" + tr.spec.faults + ")";
    }
    if (suspects.empty()) suspects = "none-declared";
    std::fprintf(stderr,
                 "mdwf_run: FAILED: %llu frame read(s) failed checksum "
                 "verification beyond recovery (suspect tenants=%s "
                 "seed=%llu)\n",
                 static_cast<unsigned long long>(
                     r.shared.get("integrity_unrecovered")),
                 suspects.c_str(),
                 static_cast<unsigned long long>(mc.base_seed));
    exit_code = 2;
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  KeyValueConfig cfg;
  std::vector<std::string> positional;
  try {
    positional = cfg.parse_args(argc, argv);
    for (const auto& file : positional) {
      std::ifstream in(file);
      if (!in) return fail("cannot open config file '" + file + "'");
      cfg.parse_stream(in);
    }

    // Driver-only keys, read before parsing: parse_ensemble_config fails
    // fast on any key nobody consumed.
    const std::string output = cfg.get_string("output", "table");
    const bool print_tree = cfg.get_bool("tree", false);

    if (cfg.has("tenants")) return run_cotenant(cfg, output);

    const workflow::EnsembleConfig config =
        workflow::parse_ensemble_config(cfg, driver_defaults());
    const std::string solution = cfg.get_string("solution", "dyad");
    const std::string model_name(config.workload.model.name);

    // DAG runs report the graph's own shape: the classic pairs/frames keys
    // do not apply, and completeness is counted in edge-frames (the model
    // column carries the workflow name, pairs the task count, stride 0).
    const bool dag_mode = config.dag != nullptr;
    const std::uint64_t frames_per_rep =
        dag_mode ? workflow::plan_dag(*config.dag, config.dag_chunk,
                                      config.nodes)
                       .total_edge_frames
                 : static_cast<std::uint64_t>(config.pairs) *
                       config.workload.frames;
    const std::string workload_name = dag_mode ? config.dag->name
                                               : model_name;
    const std::uint32_t width =
        dag_mode ? static_cast<std::uint32_t>(config.dag->tasks.size())
                 : config.pairs;
    const std::uint64_t shown_stride = dag_mode ? 0 : config.workload.stride;

    // Parallel replica runner: honors threads= with byte-identical results.
    const auto r = sweep::run_ensemble(config);

    if (output == "csv") {
      std::printf(
          "solution,model,pairs,nodes,stride,frames,reps,"
          "prod_move_us,prod_idle_us,cons_move_us,cons_idle_us,makespan_s,"
          "fetch_p99_us");
      for (const auto& [name, value] : r.counters) std::printf(",%s",
                                                               name.c_str());
      std::printf("\n");
      std::printf("%s,%s,%u,%u,%llu,%llu,%u,%.3f,%.3f,%.3f,%.3f,%.4f,%.3f",
                  solution.c_str(), workload_name.c_str(), width,
                  config.nodes,
                  static_cast<unsigned long long>(shown_stride),
                  static_cast<unsigned long long>(
                      dag_mode ? frames_per_rep : config.workload.frames),
                  config.repetitions, r.prod_movement_us.mean(),
                  r.prod_idle_us.mean(), r.cons_movement_us.mean(),
                  r.cons_idle_us.mean(), r.makespan_s.mean(),
                  r.cons_fetch_us.quantile(0.99));
      for (const auto& [name, value] : r.counters) {
        std::printf(",%llu", static_cast<unsigned long long>(value));
      }
      std::printf("\n");
    } else if (output == "table") {
      TextTable t({"metric", "movement", "idle", "total"});
      auto row = [&](const char* name, const Samples& move,
                     const Samples& idle) {
        t.add_row({name,
                   format_double(move.mean(), 1) + " +/- " +
                       format_double(move.stddev(), 1) + " us",
                   format_double(idle.mean(), 1) + " +/- " +
                       format_double(idle.stddev(), 1) + " us",
                   format_double(move.mean() + idle.mean(), 1) + " us"});
      };
      row("production/frame", r.prod_movement_us, r.prod_idle_us);
      row("consumption/frame", r.cons_movement_us, r.cons_idle_us);
      if (dag_mode) {
        std::printf("%s, workflow '%s', %u task(s), %u node(s), %llu "
                    "edge-frame(s), %u repetition(s)\n\n%s\nmakespan %.3f "
                    "+/- %.3f s\n",
                    solution.c_str(), workload_name.c_str(), width,
                    config.nodes,
                    static_cast<unsigned long long>(frames_per_rep),
                    config.repetitions, t.render().c_str(),
                    r.makespan_s.mean(), r.makespan_s.stddev());
      } else {
        std::printf("%s, %s, %u pair(s), %u node(s), stride %llu, %llu "
                    "frames, %u repetition(s)\n\n%s\nmakespan %.3f +/- %.3f "
                    "s\n",
                    solution.c_str(), model_name.c_str(), config.pairs,
                    config.nodes,
                    static_cast<unsigned long long>(config.workload.stride),
                    static_cast<unsigned long long>(config.workload.frames),
                    config.repetitions, t.render().c_str(),
                    r.makespan_s.mean(), r.makespan_s.stddev());
      }
      std::printf("frame-fetch P99 %.1f us (P50 %.1f us, %zu samples)\n",
                  r.cons_fetch_us.quantile(0.99),
                  r.cons_fetch_us.quantile(0.50), r.cons_fetch_us.count());
      std::printf("\ncounters:\n");
      for (const auto& [name, value] : r.counters) {
        std::printf("  %-24s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
      if (!config.trace_path.empty()) {
        std::printf("\ntrace written to %s (+ %s)\n",
                    config.trace_path.c_str(),
                    obs::TraceSink::metrics_csv_path(config.trace_path)
                        .c_str());
      }
    } else {
      return fail("unknown output '" + output + "'");
    }

    if (print_tree) {
      const auto agg = r.thicket.filter("role", "consumer").aggregate();
      std::printf("\nconsumer call tree:\n%s", agg.render().c_str());
    }

    // A run that lost data is a failed run, whatever the tables say: every
    // frame must reach its consumer checksum-clean.  One line on stderr,
    // exit 2, so scripted sweeps and CI notice.  (frames_per_rep is the
    // DAG's edge-frame total in workload mode, pairs*frames otherwise.)
    const std::uint64_t expected = frames_per_rep * config.repetitions;
    // Diagnostics carry the active fault scenario and base seed so a failed
    // chaos/CI run is reproducible from its stderr line alone.
    const std::string scenario = cfg.get_string("faults", "none");
    if (r.counters.get("integrity_unrecovered") > 0) {
      std::fprintf(stderr,
                   "mdwf_run: FAILED: %llu frame read(s) failed checksum "
                   "verification beyond recovery (faults=%s seed=%llu)\n",
                   static_cast<unsigned long long>(r.counters.get("integrity_unrecovered")),
                   scenario.c_str(),
                   static_cast<unsigned long long>(config.base_seed));
      return 2;
    }
    if (r.counters.get("frames_consumed") < expected) {
      std::fprintf(stderr,
                   "mdwf_run: FAILED: ensemble incomplete: %llu of %llu "
                   "frames consumed (unrecovered fault?) (faults=%s "
                   "seed=%llu)\n",
                   static_cast<unsigned long long>(r.counters.get("frames_consumed")),
                   static_cast<unsigned long long>(expected), scenario.c_str(),
                   static_cast<unsigned long long>(config.base_seed));
      return 2;
    }
  } catch (const ConfigError& e) {
    return fail(e.what());
  } catch (const std::exception& e) {
    return fail(std::string("error: ") + e.what());
  }
  return 0;
}
