#!/usr/bin/env sh
# Runs the four-solution frontier sweep (bench/solution_frontier) serially
# and with N worker threads, byte-compares the CSVs (the determinism
# contract), and distills the "frontier:" regime lines into BENCH_pr6.json:
# where the streaming data plane beats DYAD's consumer fetch P99, where it
# loses, and the crossover parameters that separate the two.
#
#   tools/bench_frontier.sh <solution_frontier-binary> [threads] [out.json]
#
# Exits nonzero if either run fails, the CSVs differ by a single byte, or
# the grid no longer brackets the crossover (all-win or all-lose).
set -eu

BIN="${1:?usage: bench_frontier.sh <solution_frontier-binary> [threads] [out.json]}"
THREADS="${2:-4}"
OUT="${3:-BENCH_pr6.json}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "solution_frontier threads=1..." >&2
"$BIN" threads=1 out="$TMP/serial.csv" > "$TMP/serial.txt"
tail -n 1 "$TMP/serial.txt" >&2
echo "solution_frontier threads=$THREADS..." >&2
"$BIN" threads="$THREADS" out="$TMP/parallel.csv" > "$TMP/parallel.txt"
tail -n 1 "$TMP/parallel.txt" >&2

cmp "$TMP/serial.csv" "$TMP/parallel.csv" || {
    echo "bench_frontier: CSVs differ between thread counts" >&2
    exit 1
}
echo "  CSVs byte-identical across thread counts" >&2

python3 - "$OUT" "$TMP/serial.txt" <<'EOF'
import json, sys

out, txt = sys.argv[1], sys.argv[2]
regimes, summary = [], {}
with open(txt) as f:
    for line in f:
        if line.startswith("frontier: "):
            fields = dict(kv.split("=", 1) for kv in line.split()[1:])
            regimes.append({
                "model": fields["model"],
                "pairs": int(fields["pairs"]),
                "consumer_lag": float(fields["lag"]),
                "faults": fields["faults"],
                "stream_fetch_p99_us": float(fields["stream_p99_us"]),
                "dyad_fetch_p99_us": float(fields["dyad_p99_us"]),
                "staging_demand_mib": float(fields["staging_demand_mib"]),
                "winner": fields["winner"],
            })
        elif line.startswith("solution_frontier: "):
            summary = dict(kv.split("=", 1) for kv in line.split()[1:])

wins = [r for r in regimes if r["winner"] == "stream"]
losses = [r for r in regimes if r["winner"] == "dyad"]
doc = {
    "bench": "solution_frontier_stream_vs_dyad",
    "workload": "frame size (JAC/STMV) x consumer count (pairs) x consumer "
                "lag (analytics=) x fault scenario, 4 solutions, reps=2",
    "metric": "consumer frame-fetch latency P99 (us)",
    "grid_points": int(summary.get("points", 0)),
    "errors": int(summary.get("errors", 0)),
    "sim_events": int(summary.get("sim_events", 0)),
    "stream_wins": len(wins),
    "stream_losses": len(losses),
    # The crossover: staged delivery wins while every frame stays resident
    # in the staging buffer and inside the credit window; once a lagging
    # consumer (analytics > 1 frame period) holds credits past
    #   pairs x credits x frame_bytes > buffer_capacity   (buffer-bound) or
    #   consumer_lag x frame_period > credits x frame_period (credit-bound)
    # puts overflow to the Lustre spill path and the consumer pays up to one
    # arrival-timeout of blindness plus a Lustre round trip per frame --
    # behind DYAD, whose producer is never throttled and whose KVS entry is
    # long visible by the time the lagging consumer asks.
    "crossover": {
        "credits_per_prefix": 4,
        "buffer_capacity_mib": 128.0,
        "arrival_timeout_ms": 40.0,
        "buffer_bound": "pairs * credits * frame_bytes > buffer_capacity",
        "credit_bound": "consumer_lag > credits (frames of producer headroom)",
        "stream_wins_when": "frames fit the staging buffer and the consumer "
                            "keeps pace: staged fetch dodges DYAD's KVS "
                            "visibility wait (and its lossy-link retries)",
        "stream_loses_when": "a lagging consumer exhausts credits or buffer "
                             "and puts spill to Lustre",
    },
    "example_win": min(wins, key=lambda r: r["stream_fetch_p99_us"]),
    "example_loss": max(losses,
                        key=lambda r: r["stream_fetch_p99_us"]
                        - r["dyad_fetch_p99_us"]) if losses else None,
    "regimes": regimes,
    "csv_byte_identical_across_threads": True,
}
assert doc["errors"] == 0, "frontier points failed"
assert doc["stream_wins"] >= 1 and doc["stream_losses"] >= 1, \
    "grid no longer brackets the crossover"
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps({k: v for k, v in doc.items() if k != "regimes"}, indent=2))
EOF
