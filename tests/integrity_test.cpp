// PR-3 crash-consistency and end-to-end integrity tests: CRC32C
// known-answer vectors, the corruption ledger, power-loss semantics in the
// storage stack (page cache, LocalFs, Lustre), workflow checkpoints, the
// config bindings, and the acceptance scenario — a seeded ensemble with a
// mid-run node crash plus nonzero bit-flip rates must deliver the complete
// checksum-verified frame set for all three data-management solutions.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "mdwf/common/crc32c.hpp"
#include "mdwf/common/keyval.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/fault/injector.hpp"
#include "mdwf/fault/plan.hpp"
#include "mdwf/fs/local_fs.hpp"
#include "mdwf/fs/lustre.hpp"
#include "mdwf/integrity/ledger.hpp"
#include "mdwf/workflow/checkpoint.hpp"
#include "mdwf/workflow/config.hpp"
#include "mdwf/workflow/ensemble.hpp"
#include "mdwf/workflow/testbed.hpp"

namespace mdwf {
namespace {

using namespace mdwf::literals;
using sim::Simulation;
using sim::Task;

// --- CRC32C known-answer vectors (RFC 3720 Appendix B.4) --------------------

std::vector<std::byte> filled(std::size_t n, std::uint8_t v) {
  return std::vector<std::byte>(n, std::byte{v});
}

TEST(Crc32cTest, Rfc3720KnownAnswers) {
  EXPECT_EQ(crc32c(filled(32, 0x00)), 0x8A9136AAu);
  EXPECT_EQ(crc32c(filled(32, 0xFF)), 0x62A8AB43u);

  std::vector<std::byte> ascending(32);
  for (std::size_t i = 0; i < 32; ++i) ascending[i] = std::byte(i);
  EXPECT_EQ(crc32c(ascending), 0x46DD794Eu);

  std::vector<std::byte> descending(32);
  for (std::size_t i = 0; i < 32; ++i) descending[i] = std::byte(31 - i);
  EXPECT_EQ(crc32c(descending), 0x113FDB5Cu);
}

TEST(Crc32cTest, IncrementalChunkingMatchesOneShot) {
  // Chained seeds must compose: crc(a ++ b) == crc(b, crc(a)) at every
  // split point of every known-answer vector.
  std::vector<std::byte> data(32);
  for (std::size_t i = 0; i < 32; ++i) data[i] = std::byte(i);
  const std::uint32_t whole = crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t head =
        crc32c(std::span<const std::byte>(data.data(), split));
    const std::uint32_t full = crc32c(
        std::span<const std::byte>(data.data() + split, data.size() - split),
        head);
    EXPECT_EQ(full, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, ChunkedLargeBufferMatchesOneShot) {
  std::vector<std::byte> data(300 * 1024);
  std::uint8_t x = 7;
  for (auto& b : data) {
    x = static_cast<std::uint8_t>(x * 31 + 11);
    b = std::byte(x);
  }
  const std::uint32_t whole = crc32c(data);
  std::uint32_t chunked = 0;
  constexpr std::size_t kChunk = 64 * 1024;
  for (std::size_t off = 0; off < data.size(); off += kChunk) {
    const std::size_t n = std::min(kChunk, data.size() - off);
    chunked = crc32c(std::span<const std::byte>(data.data() + off, n), chunked);
  }
  EXPECT_EQ(chunked, whole);
}

// --- Integrity ledger --------------------------------------------------------

TEST(LedgerTest, TagsAreDeterministicAndDistinctFromCorruptTags) {
  const auto t1 = integrity::Ledger::tag("pair0/frame1", Bytes::kib(644));
  const auto t2 = integrity::Ledger::tag("pair0/frame1", Bytes::kib(644));
  EXPECT_EQ(t1, t2);
  EXPECT_NE(t1, integrity::Ledger::tag("pair0/frame2", Bytes::kib(644)));
  EXPECT_NE(t1, integrity::Ledger::tag("pair0/frame1", Bytes::kib(645)));
  EXPECT_NE(t1,
            integrity::Ledger::corrupt_tag("pair0/frame1", Bytes::kib(644)));
}

TEST(LedgerTest, DeviceRateOneCorruptsEveryStore) {
  Simulation sim;
  integrity::IntegrityParams p;
  p.enabled = true;
  p.device_flip_p = 1.0;
  integrity::Ledger ledger(sim, p);
  const std::string loc = integrity::Ledger::ssd_location(0);
  ledger.store("f", loc, 0);
  EXPECT_TRUE(ledger.corrupt("f", loc));
  // The copy on another node is a different replica.
  EXPECT_FALSE(ledger.corrupt("f", integrity::Ledger::ssd_location(1)));
  ledger.drop("f", loc);
  EXPECT_FALSE(ledger.corrupt("f", loc));
}

TEST(LedgerTest, RateZeroStaysCleanAndWindowsRaiseIt) {
  Simulation sim;
  integrity::IntegrityParams p;
  p.enabled = true;
  integrity::Ledger ledger(sim, p);
  const std::string loc = integrity::Ledger::ssd_location(3);
  for (int i = 0; i < 64; ++i) ledger.store("f" + std::to_string(i), loc, 3);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(ledger.corrupt("f" + std::to_string(i), loc));
  }
  EXPECT_FALSE(ledger.flip_link(0, 3));

  // A bit-flip window raises the effective rate to max(baseline, window).
  ledger.set_ssd_rate(3, 1.0);
  ledger.store("w", loc, 3);
  EXPECT_TRUE(ledger.corrupt("w", loc));
  ledger.set_ssd_rate(3, 0.0);
  ledger.store("x", loc, 3);
  EXPECT_FALSE(ledger.corrupt("x", loc));

  ledger.set_link_rate(0, 1.0);
  EXPECT_TRUE(ledger.flip_link(0, 3));   // either endpoint's window counts
  EXPECT_TRUE(ledger.flip_lustre_read(0));
}

TEST(LedgerTest, SameSeedSameCorruptionHistory) {
  integrity::IntegrityParams p;
  p.enabled = true;
  p.device_flip_p = 0.3;
  p.link_flip_p = 0.3;
  auto history = [&](std::uint64_t seed) {
    Simulation sim;
    integrity::IntegrityParams q = p;
    q.seed = seed;
    integrity::Ledger ledger(sim, q);
    std::string h;
    for (int i = 0; i < 200; ++i) {
      ledger.store("f" + std::to_string(i),
                   integrity::Ledger::ssd_location(0), 0);
      h += ledger.corrupt("f" + std::to_string(i),
                          integrity::Ledger::ssd_location(0))
               ? 'X'
               : '.';
      h += ledger.flip_link(0, 1) ? 'X' : '.';
    }
    return h;
  };
  EXPECT_EQ(history(5), history(5));
  EXPECT_NE(history(5), history(6));
}

// --- Power-loss semantics in the storage stack ------------------------------

struct LocalFsFixture {
  Simulation sim;
  storage::BlockDevice device;
  storage::PageCache cache;
  fs::LocalFs lfs;

  LocalFsFixture()
      : device(sim,
               storage::BlockDeviceParams{.read_bandwidth_bps = 1e9,
                                          .write_bandwidth_bps = 1e9,
                                          .op_latency = 10_us,
                                          .queue_depth = 8,
                                          .capacity = Bytes::mib(64)},
               "nvme"),
        cache(sim,
              storage::PageCacheParams{.capacity = Bytes::mib(8),
                                       .page_size = Bytes::kib(256),
                                       .memcpy_bps = 8e9},
              device),
        lfs(sim, fs::LocalFsParams{}, device, cache) {}
};

TEST(CrashConsistencyTest, PageCacheCrashDropsDirtyPages) {
  LocalFsFixture f;
  f.sim.spawn([](LocalFsFixture& fx) -> Task<void> {
    co_await fx.cache.write(1, Bytes::zero(), Bytes::kib(512));
    EXPECT_GT(fx.cache.dirty_pages(), 0u);
    const std::size_t lost = fx.cache.crash_drop_dirty();
    EXPECT_GT(lost, 0u);
    EXPECT_EQ(fx.cache.dirty_pages(), 0u);
    EXPECT_EQ(fx.cache.resident_pages(), 0u);  // reboot starts cold
    EXPECT_EQ(fx.cache.dirty_dropped(), lost);
  }(f));
  f.sim.run_to_quiescence();
}

TEST(CrashConsistencyTest, UnsyncedWritesAreTornBackAtCrash) {
  LocalFsFixture f;
  f.sim.spawn([](LocalFsFixture& fx) -> Task<void> {
    const fs::InodeId ino = co_await fx.lfs.create("torn");
    co_await fx.lfs.write(ino, Bytes::zero(), Bytes::kib(512));
    EXPECT_EQ(fx.lfs.size(ino), Bytes::kib(512));
    EXPECT_EQ(fx.lfs.durable_size(ino), Bytes::zero());

    fx.cache.crash_drop_dirty();
    const std::size_t torn = fx.lfs.crash();
    EXPECT_EQ(torn, 1u);
    EXPECT_EQ(fx.lfs.torn_files(), 1u);
    // The file still exists (create was journaled) but the un-synced data
    // is gone.
    EXPECT_TRUE(fx.lfs.exists("torn"));
    EXPECT_EQ(fx.lfs.size(ino), Bytes::zero());
  }(f));
  f.sim.run_to_quiescence();
}

TEST(CrashConsistencyTest, FsyncMakesDataSurviveCrash) {
  LocalFsFixture f;
  f.sim.spawn([](LocalFsFixture& fx) -> Task<void> {
    const fs::InodeId ino = co_await fx.lfs.create("safe");
    co_await fx.lfs.write(ino, Bytes::zero(), Bytes::kib(512));
    co_await fx.lfs.fsync(ino);
    EXPECT_EQ(fx.lfs.durable_size(ino), Bytes::kib(512));

    // Post-fsync appends are volatile again.
    co_await fx.lfs.write(ino, Bytes::kib(512), Bytes::kib(256));
    fx.cache.crash_drop_dirty();
    EXPECT_EQ(fx.lfs.crash(), 1u);
    EXPECT_EQ(fx.lfs.size(ino), Bytes::kib(512));  // torn to the barrier
  }(f));
  f.sim.run_to_quiescence();
}

TEST(CrashConsistencyTest, LustreCloseAfterWriteIsDurableOpenIsNot) {
  workflow::TestbedParams tp;
  tp.compute_nodes = 1;
  workflow::Testbed tb(tp);
  auto& sim = tb.simulation();
  sim.spawn([](workflow::Testbed& t) -> Task<void> {
    fs::LustreClient client(t.simulation(), t.lustre(), net::NodeId{0});
    // Committed: create/write/close(wrote) journals the size on the MDS.
    const auto h1 = co_await client.create("committed");
    co_await client.write(h1, Bytes::zero(), Bytes::mib(2));
    co_await client.close(h1, /*wrote=*/true);
    // Torn: still open for write when the client dies.
    const auto h2 = co_await client.create("open");
    co_await client.write(h2, Bytes::zero(), Bytes::mib(2));

    const std::size_t torn = t.lustre().client_crash(net::NodeId{0});
    EXPECT_GE(torn, 1u);
    EXPECT_GE(t.lustre().torn_writes(), 1u);
    EXPECT_EQ(co_await client.stat("committed"), Bytes::mib(2));
    const auto open_size = co_await client.stat("open");
    EXPECT_TRUE(open_size.has_value());
    if (open_size.has_value()) EXPECT_LT(*open_size, Bytes::mib(2));
  }(tb));
  sim.run_to_quiescence();
}

// --- Checkpoint --------------------------------------------------------------

TEST(CheckpointTest, PersistsAtIntervalAndRestores) {
  LocalFsFixture f;
  workflow::CheckpointParams params;
  params.interval = 4;
  workflow::Checkpoint ckpt(f.sim, f.lfs, "ckpt/rank0", params);
  f.sim.spawn([](LocalFsFixture& fx, workflow::Checkpoint& c) -> Task<void> {
    co_await c.persist(1);  // off-interval: skipped
    EXPECT_EQ(c.durable(), 0u);
    co_await c.persist(4);
    EXPECT_EQ(c.durable(), 4u);
    co_await c.persist(8);
    EXPECT_EQ(c.durable(), 8u);
    EXPECT_EQ(c.persists(), 2u);
    EXPECT_TRUE(fx.lfs.exists("ckpt/rank0"));
    EXPECT_EQ(c.restore(), 8u);
    EXPECT_EQ(c.restores(), 1u);
  }(f, ckpt));
  f.sim.run_to_quiescence();
}

TEST(CheckpointTest, RecordRacingACrashIsLost) {
  LocalFsFixture f;
  fault::CrashMonitor monitor(f.sim);
  workflow::CheckpointParams params;
  // A big record makes each persist take several simulated milliseconds, so
  // the racing crash below deterministically lands inside the second one.
  params.record_size = Bytes::mib(4);
  workflow::Checkpoint ckpt(f.sim, f.lfs, "ckpt/rank0", params, &monitor, 0);
  f.sim.spawn([](workflow::Checkpoint& c) -> Task<void> {
    co_await c.persist(1);
    EXPECT_EQ(c.durable(), 1u);
    // Epoch bumps while this record's write+fsync barrier is in flight:
    // whatever the fsync claimed, the record is not counted.
    co_await c.persist(2);
  }(ckpt));
  f.sim.spawn([](Simulation& s, fault::CrashMonitor& m) -> Task<void> {
    co_await s.delay(Duration::milliseconds(6));
    m.begin_crash(0, /*power_loss=*/false);
    m.end_crash(0);
  }(f.sim, monitor));
  f.sim.run_to_quiescence();
  EXPECT_EQ(ckpt.durable(), 1u);
  EXPECT_EQ(ckpt.restore(), 1u);
}

TEST(CheckpointTest, ModeResolution) {
  workflow::CheckpointParams p;
  EXPECT_FALSE(p.resolve_enabled(false));  // auto, healthy plan
  EXPECT_TRUE(p.resolve_enabled(true));    // auto, crash windows
  p.mode = workflow::CheckpointParams::Mode::kOff;
  EXPECT_FALSE(p.resolve_enabled(true));
  p.mode = workflow::CheckpointParams::Mode::kOn;
  EXPECT_TRUE(p.resolve_enabled(false));
}

// --- Config bindings ---------------------------------------------------------

TEST(IntegrityConfigTest, CrashAndFlipScenariosEnableIntegrityByDefault) {
  for (const char* scenario : {"bit-flip", "node-crash", "crash-flip"}) {
    KeyValueConfig cfg;
    cfg.set("faults", scenario);
    const auto c = workflow::parse_ensemble_config(cfg);
    EXPECT_TRUE(c.testbed.integrity.enabled) << scenario;
  }
  KeyValueConfig healthy;
  EXPECT_FALSE(workflow::parse_ensemble_config(healthy)
                   .testbed.integrity.enabled);
  KeyValueConfig off;
  off.set("faults", "crash-flip");
  off.set("integrity", "0");
  EXPECT_FALSE(workflow::parse_ensemble_config(off).testbed.integrity.enabled);
  KeyValueConfig forced;
  forced.set("integrity", "1");
  EXPECT_TRUE(workflow::parse_ensemble_config(forced).testbed.integrity.enabled);
}

TEST(IntegrityConfigTest, CheckpointKeyBindsModeAndInterval) {
  KeyValueConfig def;
  EXPECT_EQ(workflow::parse_ensemble_config(def).checkpoint.mode,
            workflow::CheckpointParams::Mode::kAuto);
  KeyValueConfig off;
  off.set("checkpoint", "0");
  EXPECT_EQ(workflow::parse_ensemble_config(off).checkpoint.mode,
            workflow::CheckpointParams::Mode::kOff);
  KeyValueConfig every4;
  every4.set("checkpoint", "4");
  const auto c = workflow::parse_ensemble_config(every4);
  EXPECT_EQ(c.checkpoint.mode, workflow::CheckpointParams::Mode::kOn);
  EXPECT_EQ(c.checkpoint.interval, 4u);
}

// --- Acceptance: crash + bit-flip ensembles complete verified ---------------

workflow::EnsembleConfig crash_flip_config(workflow::Solution s,
                                           std::uint32_t nodes) {
  workflow::EnsembleConfig c;
  c.solution = s;
  c.pairs = 2;
  c.nodes = nodes;
  c.workload.frames = 24;
  c.repetitions = 1;
  c.base_seed = 11;
  fault::ScenarioShape shape;
  shape.compute_nodes = nodes;
  shape.ost_count = c.testbed.lustre.ost_count;
  shape.seed = c.base_seed;
  c.testbed.faults = fault::make_scenario("crash-flip", shape);
  c.testbed.integrity.enabled = true;
  c.testbed.dyad.retry.enabled = true;
  c.testbed.dyad.retry.lustre_fallback = true;
  return c;
}

void expect_complete_and_verified(const workflow::EnsembleResult& r,
                                  const workflow::EnsembleConfig& c) {
  const std::uint64_t expected =
      static_cast<std::uint64_t>(c.pairs) * c.workload.frames * c.repetitions;
  EXPECT_EQ(r.counters.get("frames_consumed"), expected);
  EXPECT_EQ(r.counters.get("frames_produced"), expected);
  EXPECT_EQ(r.counters.get("integrity_unrecovered"), 0u);
  // The crash actually happened and was recovered from.
  EXPECT_GE(r.counters.get("crash_windows"), 1u);
  EXPECT_GE(r.counters.get("crash_recoveries"), 1u);
  EXPECT_GE(r.counters.get("checkpoint_persists"), 1u);
  EXPECT_GE(r.counters.get("checkpoint_restores"), 1u);
  // Every consumed frame was checksum-verified at least once.
  EXPECT_GE(r.counters.get("integrity_verified") + r.counters.get("integrity_failures"), expected);
}

TEST(CrashFlipAcceptanceTest, DyadCompletesVerified) {
  const auto cfg = crash_flip_config(workflow::Solution::kDyad, 2);
  expect_complete_and_verified(run_ensemble(cfg), cfg);
}

TEST(CrashFlipAcceptanceTest, XfsCompletesVerified) {
  const auto cfg = crash_flip_config(workflow::Solution::kXfs, 1);
  expect_complete_and_verified(run_ensemble(cfg), cfg);
}

TEST(CrashFlipAcceptanceTest, LustreCompletesVerified) {
  const auto cfg = crash_flip_config(workflow::Solution::kLustre, 2);
  expect_complete_and_verified(run_ensemble(cfg), cfg);
}

TEST(CrashFlipAcceptanceTest, RecoveredRunMatchesFaultFreeFrameSet) {
  // Same workload, healthy cluster: the recovered run must deliver exactly
  // the same (complete) frame set, only later.
  auto faulty = crash_flip_config(workflow::Solution::kDyad, 2);
  auto healthy = faulty;
  healthy.testbed.faults = {};
  healthy.testbed.integrity.enabled = false;
  const auto fr = run_ensemble(faulty);
  const auto hr = run_ensemble(healthy);
  EXPECT_EQ(fr.counters.get("frames_consumed"), hr.counters.get("frames_consumed"));
  EXPECT_GE(fr.makespan_s.mean(), hr.makespan_s.mean());
}

// --- Determinism under crash + corruption -----------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CrashDeterminismTest, SameSeedCrashRunIsByteIdentical) {
  auto cfg = crash_flip_config(workflow::Solution::kDyad, 2);
  cfg.workload.frames = 16;
  cfg.trace_path = "integrity_determinism_a.json";
  const auto a = run_ensemble(cfg);
  cfg.trace_path = "integrity_determinism_b.json";
  const auto b = run_ensemble(cfg);

  for (const auto& [name, value] : a.counters) {
    EXPECT_EQ(value, b.counters.get(name)) << "counter " << name;
  }
  EXPECT_EQ(a.makespan_s.mean(), b.makespan_s.mean());

  const std::string ta = slurp("integrity_determinism_a.json");
  const std::string tb = slurp("integrity_determinism_b.json");
  ASSERT_FALSE(ta.empty());
  EXPECT_EQ(ta, tb);  // byte-identical Chrome trace
  std::remove("integrity_determinism_a.json");
  std::remove("integrity_determinism_b.json");
  std::remove(
      obs::TraceSink::metrics_csv_path("integrity_determinism_a.json").c_str());
  std::remove(
      obs::TraceSink::metrics_csv_path("integrity_determinism_b.json").c_str());
}

}  // namespace
}  // namespace mdwf
