// Tests for runtime steering: monitor, channel, latch, and steered
// producer/consumer pairs over the DYAD and Lustre connectors.
#include <gtest/gtest.h>

#include "mdwf/workflow/steering.hpp"

namespace mdwf::workflow {
namespace {

using namespace mdwf::literals;

// --- ThresholdMonitor ---------------------------------------------------------

TEST(ThresholdMonitorTest, QuietSignalNeverTriggers) {
  ThresholdMonitor m(3.0, 2, 4);
  const auto cv = make_event_cv(7, SIZE_MAX);
  for (std::uint64_t f = 0; f < 200; ++f) {
    EXPECT_EQ(m.observe(cv(f)), SteeringCommand::kContinue) << "frame " << f;
  }
}

TEST(ThresholdMonitorTest, StepEventTriggersAfterPatience) {
  ThresholdMonitor m(3.0, 2, 4);
  const auto cv = make_event_cv(7, 10);
  std::uint64_t fired_at = 0;
  for (std::uint64_t f = 0; f < 20; ++f) {
    if (m.observe(cv(f)) == SteeringCommand::kTerminate) {
      fired_at = f;
      break;
    }
  }
  // Event at frame 10, patience 2 -> fires at frame 11.
  EXPECT_EQ(fired_at, 11u);
}

TEST(ThresholdMonitorTest, SingleSpikeWithPatienceTwoIsIgnored) {
  ThresholdMonitor m(3.0, 2, 4);
  const auto cv = make_event_cv(9, SIZE_MAX);
  for (std::uint64_t f = 0; f < 8; ++f) (void)m.observe(cv(f));
  EXPECT_EQ(m.observe(cv(8) + 100.0), SteeringCommand::kContinue);  // strike 1
  EXPECT_EQ(m.observe(cv(9)), SteeringCommand::kContinue);          // reset
  EXPECT_EQ(m.observe(cv(10) + 100.0), SteeringCommand::kContinue);
}

// --- ProgressLatch ---------------------------------------------------------------

TEST(ProgressLatchTest, WaitersWakeOnAdvanceAndFinish) {
  sim::Simulation sim;
  ProgressLatch latch(sim);
  std::vector<int> log;
  sim.spawn([](ProgressLatch& l, std::vector<int>& lg) -> sim::Task<void> {
    EXPECT_TRUE(co_await l.wait_for(2));
    lg.push_back(1);
    EXPECT_FALSE(co_await l.wait_for(5));  // finished first
    lg.push_back(2);
  }(latch, log));
  sim.spawn([](sim::Simulation& s, ProgressLatch& l) -> sim::Task<void> {
    co_await s.delay(1_ms);
    l.advance();
    co_await s.delay(1_ms);
    l.advance();
    co_await s.delay(1_ms);
    l.finish();
  }(sim, latch));
  sim.run_to_quiescence();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_EQ(latch.produced(), 2u);
  EXPECT_TRUE(latch.finished());
}

// --- Steered pairs ------------------------------------------------------------------

struct SteeredFixture {
  TestbedParams tp;
  WorkloadConfig workload;

  SteeredFixture() {
    tp.compute_nodes = 2;
    workload.model = md::kJac;
    workload.stride = md::kJac.stride;
    workload.frames = 24;
    workload.start_stagger = 0.0;
  }

  SteeredPairResult run(std::uint64_t event_frame, bool extend_on_quiet,
                        std::uint64_t extension) {
    Testbed tb(tp);
    auto& sim = tb.simulation();
    perf::Recorder prec(sim, "p"), crec(sim, "c");
    SteeringChannel channel(sim, tb.network(), net::NodeId{1}, net::NodeId{0});
    ProgressLatch progress(sim);
    DyadConnector prod(*tb.node(0).dyad, prec);
    DyadConnector cons(*tb.node(1).dyad, crec);
    SteeredPairResult result;
    sim.spawn(run_steered_producer(sim, prod, prec, workload, 0, Rng(3),
                                   channel, progress, extension, result));
    sim.spawn(run_steered_consumer(sim, cons, crec, workload, 0,
                                   make_event_cv(5, event_frame),
                                   ThresholdMonitor(3.0, 2, 4), channel,
                                   progress, extend_on_quiet, result));
    sim.run_to_quiescence();
    return result;
  }
};

TEST(SteeringTest, QuietTrajectoryRunsToPlan) {
  SteeredFixture f;
  const auto r = f.run(SIZE_MAX, /*extend_on_quiet=*/false, 0);
  EXPECT_EQ(r.frames_produced, 24u);
  EXPECT_EQ(r.frames_consumed, 24u);
  EXPECT_FALSE(r.terminated_early);
  EXPECT_EQ(r.commands, 0u);
}

TEST(SteeringTest, EventTerminatesTrajectoryEarly) {
  SteeredFixture f;
  const auto r = f.run(/*event_frame=*/8, false, 0);
  EXPECT_TRUE(r.terminated_early);
  // Monitor fires at frame 9; the producer is a few frames ahead of the
  // consumer (DYAD pipelines) but stops well short of the 24-frame plan.
  EXPECT_LT(r.frames_produced, 20u);
  EXPECT_GE(r.frames_produced, 9u);
  // The consumer drained everything that was produced.
  EXPECT_EQ(r.frames_consumed, r.frames_produced);
  EXPECT_EQ(r.commands, 1u);
}

TEST(SteeringTest, QuietTrajectoryCanExtend) {
  SteeredFixture f;
  const auto r = f.run(SIZE_MAX, /*extend_on_quiet=*/true, 8);
  EXPECT_TRUE(r.extended);
  EXPECT_FALSE(r.terminated_early);
  // The kExtend command races the end of the planned production; the
  // producer honours it for every frame it had not yet finished.
  EXPECT_GT(r.frames_produced, 24u);
  EXPECT_LE(r.frames_produced, 32u);
  EXPECT_EQ(r.frames_consumed, r.frames_produced);
}

TEST(SteeringTest, WorksOverCoarseGrainedConnector) {
  // Steering is connector-agnostic; with Lustre + barrier sync the consumer
  // is never ahead, so termination lag is at most one frame.
  TestbedParams tp;
  tp.compute_nodes = 2;
  WorkloadConfig workload;
  workload.model = md::kJac;
  workload.stride = md::kJac.stride;
  workload.frames = 16;
  workload.start_stagger = 0.0;

  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  SteeringChannel channel(sim, tb.network(), net::NodeId{1}, net::NodeId{0});
  ProgressLatch progress(sim);
  ExplicitSync sync(sim);
  LustreConnector prod(sim, tb.lustre(), net::NodeId{0}, sync, prec);
  LustreConnector cons(sim, tb.lustre(), net::NodeId{1}, sync, crec);
  SteeredPairResult result;
  sim.spawn(run_steered_producer(sim, prod, prec, workload, 0, Rng(3),
                                 channel, progress, 0, result));
  sim.spawn(run_steered_consumer(sim, cons, crec, workload, 0,
                                 make_event_cv(5, 6),
                                 ThresholdMonitor(3.0, 2, 4), channel,
                                 progress, false, result));
  sim.run_to_quiescence();
  EXPECT_TRUE(result.terminated_early);
  // Fires at frame 7; serialized execution keeps the producer at most one
  // frame ahead of the consumer (plus the in-flight command).
  EXPECT_LE(result.frames_produced, 10u);
  EXPECT_EQ(result.frames_consumed, result.frames_produced);
}

TEST(SteeringTest, DeterministicOutcomes) {
  SteeredFixture f;
  const auto a = f.run(8, false, 0);
  const auto b = f.run(8, false, 0);
  EXPECT_EQ(a.frames_produced, b.frames_produced);
  EXPECT_EQ(a.frames_consumed, b.frames_consumed);
}

}  // namespace
}  // namespace mdwf::workflow
