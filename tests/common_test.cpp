// Unit tests for mdwf/common: time/byte types, RNG, CRC, stats, tables.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "mdwf/common/bytes.hpp"
#include "mdwf/common/crc32c.hpp"
#include "mdwf/common/format.hpp"
#include "mdwf/common/rng.hpp"
#include "mdwf/common/stats.hpp"
#include "mdwf/common/suggest.hpp"
#include "mdwf/common/table.hpp"
#include "mdwf/common/time.hpp"

namespace mdwf {
namespace {

using namespace mdwf::literals;

TEST(DurationTest, LiteralsAndArithmetic) {
  EXPECT_EQ((1_s).ns(), 1'000'000'000);
  EXPECT_EQ((3_ms).ns(), 3'000'000);
  EXPECT_EQ((7_us).ns(), 7'000);
  EXPECT_EQ((42_ns).ns(), 42);
  EXPECT_EQ((1_s + 500_ms).ns(), 1'500'000'000);
  EXPECT_EQ((1_s - 1_ms).ns(), 999'000'000);
  EXPECT_EQ((2_us * 3).ns(), 6'000);
  EXPECT_EQ((10_us / 4).ns(), 2'500);
  EXPECT_EQ(1_s / 1_ms, 1000);
  EXPECT_LT(1_us, 1_ms);
}

TEST(DurationTest, FromSecondsRounds) {
  EXPECT_EQ(Duration::seconds(0.82).ns(), 820'000'000);
  EXPECT_EQ(Duration::seconds(0.00093).ns(), 930'000);
  EXPECT_EQ(Duration::seconds(0.0).ns(), 0);
}

TEST(DurationTest, ScalingByDouble) {
  EXPECT_EQ((1_s * 0.5).ns(), 500'000'000);
  EXPECT_EQ((100_ns * 1.4).ns(), 140);
}

TEST(TimePointTest, Arithmetic) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + 5_ms;
  EXPECT_EQ((t1 - t0).ns(), (5_ms).ns());
  EXPECT_EQ((t1 - 2_ms).ns(), (3_ms).ns());
  EXPECT_LT(t0, t1);
}

TEST(BytesTest, LiteralsAndArithmetic) {
  EXPECT_EQ((1_KiB).count(), 1024u);
  EXPECT_EQ((2_MiB).count(), 2u * 1024 * 1024);
  EXPECT_EQ((1_GiB).count(), 1024u * 1024 * 1024);
  EXPECT_EQ((1_MiB + 1_KiB).count(), 1049600u);
  EXPECT_EQ((1_MiB / 1_KiB), 1024u);
  EXPECT_EQ(min(3_KiB, 2_KiB), 2_KiB);
  EXPECT_EQ(max(3_KiB, 2_KiB), 3_KiB);
}

TEST(BytesTest, JacFrameSizeMatchesPaper) {
  // Table I: JAC frame is 644.21 KiB at 28 bytes/atom for 23,558 atoms.
  const Bytes frame = Bytes(23558u * 28u);
  EXPECT_NEAR(frame.to_kib(), 644.21, 0.2);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 16; ++i) vals.insert(r.next_u64());
  EXPECT_GT(vals.size(), 10u);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  // Bound of 1 always yields 0.
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng r(123);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng r(321);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.02);
}

TEST(RngTest, ForkIndependentAndDeterministic) {
  Rng a(77);
  Rng c1 = a.fork("interference");
  Rng c2 = a.fork("interference");
  Rng c3 = a.fork("jitter");
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
  Rng c1b = Rng(77).fork("interference");
  c1b.next_u64();
  EXPECT_EQ(c1.next_u64(), c1b.next_u64());
  EXPECT_NE(c1.next_u64(), c3.next_u64());
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  unsigned char zeros[32] = {};
  EXPECT_EQ(crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  unsigned char ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(crc32c(ones, sizeof(ones)), 0x62A8AB43u);
  const char* s = "123456789";
  EXPECT_EQ(crc32c(s, 9), 0xE3069283u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32c(data.data(), data.size());
  const std::uint32_t part1 = crc32c(data.data(), 10);
  const std::uint32_t part2 = crc32c(data.data() + 10, data.size() - 10, part1);
  EXPECT_EQ(whole, part2);
}

TEST(RunningStatsTest, Basics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  Rng r(5);
  RunningStats a, b, combined;
  for (int i = 0; i < 500; ++i) {
    const double x = r.normal(0, 1);
    combined.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SamplesTest, QuantilesAndSummary) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.quantile(0.9), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SamplesTest, EmptyIsZero) {
  Samples s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.median(), 0.0);
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(format_bytes(Bytes(23558u * 28u)), "644.16 KiB");
  EXPECT_EQ(format_bytes(12_B), "12 B");
  EXPECT_EQ(format_bytes(Bytes::mib(2) + Bytes::kib(512)), "2.50 MiB");
}

TEST(FormatTest, Duration) {
  EXPECT_EQ(format_duration(1500_ns), "1.500 us");
  EXPECT_EQ(format_duration(820_ms), "820.000 ms");
  EXPECT_EQ(format_duration(3_ns), "3 ns");
  EXPECT_EQ(format_duration(2_s), "2.000 s");
}

TEST(SuggestTest, EditDistanceCountsInsertDeleteSubstitute) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("membership", "membershp"), 1u);
}

TEST(SuggestTest, DidYouMeanOffersOnlyCloseCandidates) {
  const std::vector<std::string> names = {"node-loss", "overload",
                                          "lossy-link"};
  EXPECT_EQ(did_you_mean("node-los", names), " (did you mean 'node-loss'?)");
  EXPECT_EQ(did_you_mean("overlaod", names), " (did you mean 'overload'?)");
  // Beyond 2 edits the hint is noise: stay silent.
  EXPECT_EQ(did_you_mean("zzzzzz", names), "");
  EXPECT_EQ(did_you_mean("anything", std::vector<std::string>{}), "");
}

TEST(TableTest, RendersAligned) {
  TextTable t({"Name", "Atoms"});
  t.add_row({"JAC", "23558"});
  t.add_row({"STMV", "1066628"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Name | "), std::string::npos);
  EXPECT_NE(out.find("JAC"), std::string::npos);
  EXPECT_NE(out.find("1066628"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|------"), std::string::npos);
}

}  // namespace
}  // namespace mdwf
