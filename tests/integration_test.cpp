// Cross-module integration tests: whole-stack scenarios through the
// testbed, exercising DYAD + KVS + filesystems + network + measurement
// together, including conservation laws and regression cases.
#include <gtest/gtest.h>

#include "mdwf/workflow/ensemble.hpp"

namespace mdwf::workflow {
namespace {

using namespace mdwf::literals;

EnsembleConfig base(Solution s, std::uint32_t pairs, std::uint32_t nodes,
                    std::uint64_t frames = 16) {
  EnsembleConfig c;
  c.solution = s;
  c.pairs = pairs;
  c.nodes = nodes;
  c.workload.model = md::kJac;
  c.workload.stride = md::kJac.stride;
  c.workload.frames = frames;
  c.repetitions = 1;
  return c;
}

// Byte conservation: every frame a DYAD consumer pulls crosses the fabric
// exactly once (RDMA), and every one a Lustre pair exchanges crosses twice
// (producer flush + consumer read).
TEST(IntegrationTest, DyadMovesEveryFrameAcrossFabricOnce) {
  TestbedParams tp;
  tp.compute_nodes = 2;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  const std::uint64_t frames = 12;
  const Bytes frame = md::kJac.frame_bytes();

  perf::Recorder prec(sim, "p"), crec(sim, "c");
  sim.spawn([](Testbed& t, perf::Recorder& pr, perf::Recorder& cr,
               std::uint64_t n, Bytes fb) -> sim::Task<void> {
    dyad::DyadProducer producer(*t.node(0).dyad, pr);
    dyad::DyadConsumer consumer(*t.node(1).dyad, cr);
    for (std::uint64_t f = 0; f < n; ++f) {
      co_await producer.produce(frame_path(0, f), fb);
      co_await consumer.consume(frame_path(0, f), fb);
    }
  }(tb, prec, crec, frames, frame));
  sim.run_to_quiescence();

  // Node 0 tx carried the payloads (plus control messages).
  const Bytes tx = tb.network().tx(net::NodeId{0}).total_requested();
  EXPECT_GE(tx, frame * frames);
  EXPECT_LE(tx, frame * frames + Bytes::kib(64));
  EXPECT_EQ(tb.node(0).dyad->remote_reads_served(), frames);
  // Every produce committed metadata; every consume looked it up.
  EXPECT_EQ(tb.kvs().commits(), frames);
  EXPECT_GE(tb.kvs().lookups(), frames);
}

TEST(IntegrationTest, LustreMovesEveryByteThroughOsts) {
  auto cfg = base(Solution::kLustre, 2, 2, 8);
  // Count device traffic on a dedicated testbed run.
  TestbedParams tp = cfg.testbed;
  tp.compute_nodes = 2;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  const Bytes frame = md::kJac.frame_bytes();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  ExplicitSync sync(sim);
  LustreConnector prod(sim, tb.lustre(), net::NodeId{0}, sync, prec);
  LustreConnector cons(sim, tb.lustre(), net::NodeId{1}, sync, crec);
  sim.spawn([](Connector& p, Connector& c, Bytes fb) -> sim::Task<void> {
    for (std::uint64_t f = 0; f < 8; ++f) {
      co_await p.put(frame_path(0, f), fb);
      co_await c.get(frame_path(0, f), fb);
      c.acknowledge();
      co_await p.producer_sync();
    }
  }(prod, cons, frame));
  sim.run_to_quiescence();

  Bytes written = Bytes::zero(), read = Bytes::zero();
  for (std::uint32_t i = 0; i < tb.lustre().ost_count(); ++i) {
    written += tb.lustre().ost_device(i).bytes_written();
    read += tb.lustre().ost_device(i).bytes_read();
  }
  EXPECT_EQ(written, frame * 8);
  EXPECT_EQ(read, frame * 8);
}

// DYAD pipelines: the producer is never blocked by a slow consumer, so its
// makespan is production-bound while coarse-grained solutions serialize.
TEST(IntegrationTest, DyadMakespanIsProductionBound) {
  const auto dyad = run_ensemble(base(Solution::kDyad, 1, 2));
  const auto lustre = run_ensemble(base(Solution::kLustre, 1, 2));
  const double production_s =
      16 * md::kJac.frame_period_seconds();  // 16 frames at ~0.82 s
  // DYAD: production plus one trailing consumption (plus start stagger of
  // up to one period).
  EXPECT_LT(dyad.makespan_s.mean(), production_s * 1.35);
  // Coarse sync: producer and consumer alternate -> ~2x.
  EXPECT_GT(lustre.makespan_s.mean(), production_s * 1.8);
}

// Regression: on a single node, a consumer opening the file between the
// producer's create() and its first write must block on the flock rather
// than read a partial frame (this was a real TOCTOU in an early version).
TEST(IntegrationTest, WarmPathNeverReadsPartialFrames) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto cfg = base(Solution::kDyad, 4, 1, 8);
    cfg.base_seed = seed;
    // Stress the race window: no stagger, minimal jitter, so producers and
    // consumers collide at frame boundaries.
    cfg.workload.start_stagger = 0.0;
    cfg.workload.step_jitter_sigma = 0.0;
    EXPECT_NO_THROW((void)run_ensemble(cfg)) << "seed " << seed;
  }
}

// The paper's placement rule: with N nodes, producers occupy the first
// N/2 and consumers the rest; node-local filesystems never see a rank from
// the other side.
TEST(IntegrationTest, PlacementSplitsProducersAndConsumers) {
  auto cfg = base(Solution::kDyad, 8, 4, 4);
  const auto r = run_ensemble(cfg);
  // All staged copies live on consumer nodes: warm hits would mean a
  // producer-side consumer existed.
  EXPECT_EQ(r.counters.get("dyad_warm_hits"), 0u);
  EXPECT_EQ(r.thicket.filter("role", "producer").size(), 8u);
}

// End-to-end determinism including the Thicket contents.
TEST(IntegrationTest, FullStackDeterminism) {
  const auto run = [] {
    auto cfg = base(Solution::kDyad, 2, 2, 8);
    cfg.repetitions = 2;
    const auto r = run_ensemble(cfg);
    perf::StatTree agg = r.thicket.aggregate();
    return std::make_tuple(
        r.makespan_s.values(),
        agg.mean_category_us("consume", perf::Category::kMovement),
        agg.mean_category_us("consume", perf::Category::kIdle));
  };
  EXPECT_EQ(run(), run());
}

// Interference only perturbs Lustre-visible components and stays seeded.
TEST(IntegrationTest, InterferenceIsSeededAndLustreOnly) {
  auto cfg = base(Solution::kLustre, 2, 2, 8);
  cfg.lustre_interference = true;
  const auto a = run_ensemble(cfg);
  const auto b = run_ensemble(cfg);
  EXPECT_EQ(a.cons_movement_us.values(), b.cons_movement_us.values());

  auto dyad_cfg = base(Solution::kDyad, 2, 2, 8);
  const auto clean = run_ensemble(dyad_cfg);
  dyad_cfg.lustre_interference = true;  // OSTs are idle for DYAD anyway
  const auto noisy = run_ensemble(dyad_cfg);
  EXPECT_EQ(clean.cons_movement_us.values(), noisy.cons_movement_us.values());
}

// KVS traffic accounting across a whole ensemble.
TEST(IntegrationTest, KvsSeesOneCommitPerFrame) {
  TestbedParams tp;
  tp.compute_nodes = 2;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p");
  sim.spawn([](Testbed& t, perf::Recorder& r) -> sim::Task<void> {
    dyad::DyadProducer producer(*t.node(0).dyad, r);
    for (std::uint64_t f = 0; f < 10; ++f) {
      co_await producer.produce(frame_path(0, f), Bytes::kib(16));
    }
  }(tb, prec));
  sim.run_to_quiescence();
  EXPECT_EQ(tb.kvs().commits(), 10u);
  // The final commit's visibility delay may still be pending; advance past
  // it before counting.
  sim.run_until(sim.now() + 10_ms);
  EXPECT_EQ(tb.kvs().visible_entries(), 10u);
}

}  // namespace
}  // namespace mdwf::workflow
