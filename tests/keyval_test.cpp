// Tests for the key=value configuration parser.
#include <gtest/gtest.h>

#include <sstream>

#include "mdwf/common/keyval.hpp"

namespace mdwf {
namespace {

TEST(KeyValTest, ParsesArgs) {
  const char* argv[] = {"prog", "pairs=4", "--model=STMV", "positional",
                        "frames = 12"};
  KeyValueConfig cfg;
  const auto positional = cfg.parse_args(5, argv);
  EXPECT_EQ(positional, (std::vector<std::string>{"positional"}));
  EXPECT_EQ(cfg.get_uint("pairs", 0), 4u);
  EXPECT_EQ(cfg.get_string("model", ""), "STMV");
  EXPECT_EQ(cfg.get_uint("frames", 0), 12u);
}

TEST(KeyValTest, ParsesStreamWithCommentsAndBlanks) {
  std::istringstream in(R"(
# experiment config
solution = lustre
pairs = 16   # inline comment
jitter = 0.02
push = yes
)");
  KeyValueConfig cfg;
  cfg.parse_stream(in);
  EXPECT_EQ(cfg.get_string("solution", ""), "lustre");
  EXPECT_EQ(cfg.get_int("pairs", 0), 16);
  EXPECT_DOUBLE_EQ(cfg.get_double("jitter", 0), 0.02);
  EXPECT_TRUE(cfg.get_bool("push", false));
}

TEST(KeyValTest, MalformedLineReportsNumber) {
  std::istringstream in("a = 1\nnot a pair\n");
  KeyValueConfig cfg;
  try {
    cfg.parse_stream(in);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(KeyValTest, LaterAssignmentsOverride) {
  const char* argv[] = {"prog", "x=1", "x=2"};
  KeyValueConfig cfg;
  (void)cfg.parse_args(3, argv);
  EXPECT_EQ(cfg.get_int("x", 0), 2);
}

TEST(KeyValTest, FallbacksWhenAbsent) {
  KeyValueConfig cfg;
  EXPECT_EQ(cfg.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(cfg.get_int("missing", -3), -3);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(cfg.get_bool("missing", true));
}

TEST(KeyValTest, TypeErrorsThrow) {
  KeyValueConfig cfg;
  cfg.set("n", "abc");
  cfg.set("b", "maybe");
  cfg.set("d", "1.2.3");
  cfg.set("neg", "-4");
  EXPECT_THROW((void)cfg.get_int("n", 0), ConfigError);
  EXPECT_THROW((void)cfg.get_bool("b", false), ConfigError);
  EXPECT_THROW((void)cfg.get_double("d", 0), ConfigError);
  EXPECT_THROW((void)cfg.get_uint("neg", 0), ConfigError);
  EXPECT_EQ(cfg.get_int("neg", 0), -4);
}

TEST(KeyValTest, BooleanSpellings) {
  KeyValueConfig cfg;
  for (const char* t : {"1", "true", "YES", "On"}) {
    cfg.set("k", t);
    EXPECT_TRUE(cfg.get_bool("k", false)) << t;
  }
  for (const char* f : {"0", "False", "no", "OFF"}) {
    cfg.set("k", f);
    EXPECT_FALSE(cfg.get_bool("k", true)) << f;
  }
}

TEST(KeyValTest, UnknownKeysTracksUnaccessed) {
  KeyValueConfig cfg;
  cfg.set("used", "1");
  cfg.set("typo", "2");
  (void)cfg.get_int("used", 0);
  const auto unknown = cfg.unknown_keys();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

}  // namespace
}  // namespace mdwf
