// Property-based tests: randomized stress against invariants and reference
// models, parameterized over seeds.
#include <gtest/gtest.h>

#include <deque>
#include <list>
#include <map>
#include <vector>

#include "mdwf/common/rng.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/fs/file_lock.hpp"
#include "mdwf/fs/lustre.hpp"
#include "mdwf/md/frame.hpp"
#include "mdwf/net/fair_share.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/perf/thicket.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/storage/page_cache.hpp"

namespace mdwf {
namespace {

using namespace mdwf::literals;
using sim::Simulation;
using sim::Task;

class Seeded : public ::testing::TestWithParam<std::uint64_t> {};

// --- Kernel stress: random agents over every primitive ------------------------

TEST_P(Seeded, KernelSurvivesRandomAgentSoup) {
  Simulation sim;
  Rng rng(GetParam());
  sim::Semaphore sem(sim, 3);
  sim::Queue<int> queue(sim, 8);
  sim::Barrier barrier(sim, 4);
  int sem_holders = 0;
  int peak_holders = 0;
  std::uint64_t queue_puts = 0;
  std::uint64_t queue_gets = 0;

  // 4 barrier-synchronized agents doing random mixes; 8 queue producers and
  // 8 consumers with matched counts so everything drains.
  std::vector<Task<void>> tasks;
  for (int a = 0; a < 4; ++a) {
    tasks.push_back([](Simulation& s, Rng r, sim::Semaphore& sm,
                       sim::Barrier& b, int& held, int& peak) -> Task<void> {
      for (int round = 0; round < 20; ++round) {
        co_await s.delay(Duration::microseconds(
            static_cast<std::int64_t>(r.next_below(500))));
        co_await sm.acquire();
        ++held;
        peak = std::max(peak, held);
        co_await s.delay(Duration::microseconds(
            static_cast<std::int64_t>(1 + r.next_below(50))));
        --held;
        sm.release();
        co_await b.arrive_and_wait();
      }
    }(sim, rng.fork("agent" + std::to_string(a)), sem, barrier, sem_holders,
      peak_holders));
  }
  for (int p = 0; p < 8; ++p) {
    tasks.push_back([](Simulation& s, Rng r, sim::Queue<int>& q,
                       std::uint64_t& puts) -> Task<void> {
      for (int i = 0; i < 25; ++i) {
        co_await s.delay(Duration::microseconds(
            static_cast<std::int64_t>(r.next_below(300))));
        co_await q.put(i);
        ++puts;
      }
    }(sim, rng.fork("prod" + std::to_string(p)), queue, queue_puts));
    tasks.push_back([](Simulation& s, Rng r, sim::Queue<int>& q,
                       std::uint64_t& gets) -> Task<void> {
      for (int i = 0; i < 25; ++i) {
        co_await s.delay(Duration::microseconds(
            static_cast<std::int64_t>(r.next_below(300))));
        (void)co_await q.get();
        ++gets;
      }
    }(sim, rng.fork("cons" + std::to_string(p)), queue, queue_gets));
  }
  sim.spawn(all(sim, std::move(tasks)));
  ASSERT_NO_THROW(sim.run_to_quiescence());
  EXPECT_EQ(sem.available(), 3);
  EXPECT_LE(peak_holders, 3);
  EXPECT_EQ(queue_puts, 200u);
  EXPECT_EQ(queue_gets, 200u);
  EXPECT_EQ(queue.size(), 0u);
}

// --- PageCache vs a reference LRU model ----------------------------------------

struct ReferenceLru {
  std::size_t capacity;
  std::list<std::uint64_t> order;  // front = MRU
  std::map<std::uint64_t, bool> dirty;

  // Mirrors PageCache: bounded clean-first victim scan from the LRU end.
  static constexpr int kScanLimit = 128;

  void touch(std::uint64_t key, bool make_dirty) {
    auto it = std::find(order.begin(), order.end(), key);
    if (it != order.end()) {
      order.erase(it);
      order.push_front(key);
      if (make_dirty) dirty[key] = true;
      return;
    }
    if (order.size() >= capacity) evict();
    order.push_front(key);
    dirty[key] = make_dirty;
  }

  void evict() {
    auto victim = std::prev(order.end());
    int scanned = 0;
    for (auto it = std::prev(order.end());; --it) {
      if (!dirty[*it]) {
        victim = it;
        break;
      }
      if (++scanned >= kScanLimit || it == order.begin()) break;
    }
    dirty.erase(*victim);
    order.erase(victim);
  }

  bool resident(std::uint64_t key) const { return dirty.contains(key); }
};

TEST_P(Seeded, PageCacheMatchesReferenceLru) {
  Simulation sim;
  storage::BlockDevice dev(sim, storage::BlockDeviceParams{}, "d");
  storage::PageCacheParams pcp;
  pcp.capacity = Bytes::kib(256) * 16;  // 16 pages
  pcp.page_size = Bytes::kib(256);
  storage::PageCache cache(sim, pcp, dev);
  ReferenceLru ref{16, {}, {}};
  Rng rng(GetParam());

  sim.spawn([](storage::PageCache& c, ReferenceLru& r, Rng rg) -> Task<void> {
    for (int op = 0; op < 600; ++op) {
      const std::uint64_t file = 1 + rg.next_below(6);
      const std::uint64_t page = rg.next_below(8);
      const Bytes offset = Bytes::kib(256) * page;
      const bool is_write = rg.bernoulli(0.5);
      if (is_write) {
        co_await c.write(file, offset, Bytes::kib(256));
      } else {
        co_await c.read(file, offset, Bytes::kib(256));
      }
      r.touch((file << 32) | page, is_write);
      EXPECT_EQ(c.resident(file, offset, Bytes::kib(256)),
                r.resident((file << 32) | page))
          << "op " << op;
    }
    EXPECT_EQ(c.resident_pages(), r.order.size());
  }(cache, ref, rng));
  sim.run_to_quiescence();
}

// --- FileLock: exclusion invariant + no starvation -------------------------------

TEST_P(Seeded, FileLockExclusionHoldsUnderRandomLoad) {
  Simulation sim;
  fs::FileLock lock(sim);
  Rng rng(GetParam());
  int readers = 0, writers = 0;
  bool violated = false;
  std::vector<Task<void>> tasks;
  for (int a = 0; a < 12; ++a) {
    const bool writer = a % 3 == 0;
    tasks.push_back([](Simulation& s, fs::FileLock& l, Rng r, bool w,
                       int& rd, int& wr, bool& bad) -> Task<void> {
      for (int i = 0; i < 15; ++i) {
        co_await s.delay(Duration::microseconds(
            static_cast<std::int64_t>(r.next_below(200))));
        if (w) {
          co_await l.lock_exclusive();
          ++wr;
          if (rd != 0 || wr != 1) bad = true;
          co_await s.delay(Duration::microseconds(
              static_cast<std::int64_t>(1 + r.next_below(20))));
          --wr;
          l.unlock_exclusive();
        } else {
          co_await l.lock_shared();
          ++rd;
          if (wr != 0) bad = true;
          co_await s.delay(Duration::microseconds(
              static_cast<std::int64_t>(1 + r.next_below(20))));
          --rd;
          l.unlock_shared();
        }
      }
    }(sim, lock, rng.fork("locker" + std::to_string(a)), writer, readers,
      writers, violated));
  }
  sim.spawn(all(sim, std::move(tasks)));
  ASSERT_NO_THROW(sim.run_to_quiescence());  // no starvation: all finish
  EXPECT_FALSE(violated);
  EXPECT_FALSE(lock.exclusive_held());
  EXPECT_EQ(lock.shared_holders(), 0u);
}

// --- FairShareChannel: lower bounds and conservation -------------------------------

TEST_P(Seeded, FairShareRespectsPhysicalBounds) {
  Simulation sim;
  const double capacity = 1.5e9;
  net::FairShareChannel ch(sim, capacity);
  Rng rng(GetParam());
  struct FlowLog {
    TimePoint start, end;
    std::uint64_t bytes;
  };
  auto logs = std::make_shared<std::vector<FlowLog>>();
  std::vector<Task<void>> tasks;
  std::uint64_t total = 0;
  for (int i = 0; i < 24; ++i) {
    const std::uint64_t bytes = 100'000 + rng.next_below(30'000'000);
    const auto start_us = static_cast<std::int64_t>(rng.next_below(40'000));
    total += bytes;
    tasks.push_back([](Simulation& s, net::FairShareChannel& c,
                       std::shared_ptr<std::vector<FlowLog>> lg,
                       std::uint64_t n, std::int64_t at) -> Task<void> {
      co_await s.delay(Duration::microseconds(at));
      const TimePoint t0 = s.now();
      co_await c.transfer(Bytes(n));
      lg->push_back(FlowLog{t0, s.now(), n});
    }(sim, ch, logs, bytes, start_us));
  }
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  ASSERT_EQ(logs->size(), 24u);
  for (const auto& f : *logs) {
    // No flow can beat the raw capacity.
    const double min_secs = static_cast<double>(f.bytes) / capacity;
    EXPECT_GE((f.end - f.start).to_seconds(), min_secs - 1e-9);
  }
  // Aggregate work conservation.
  const double makespan = sim.now().to_seconds();
  EXPECT_GE(makespan, static_cast<double>(total) / capacity - 0.04);
  EXPECT_EQ(ch.total_completed(), Bytes(total));
}

// --- Lustre striping: byte placement matches the analytic layout -------------------

TEST_P(Seeded, StripingPlacesBytesPerLayout) {
  Simulation sim;
  net::NetworkParams np;
  np.latency = Duration::zero();
  net::Network network(sim, np, 8);
  Rng rng(GetParam());
  fs::LustreParams lp;
  lp.ost_count = 4;
  lp.stripe_count = 1 + static_cast<std::uint32_t>(rng.next_below(4));
  lp.client_writeback = false;  // synchronous so counters settle per write
  fs::LustreServers servers(sim, lp, network, net::NodeId{3},
                            {net::NodeId{4}, net::NodeId{5}, net::NodeId{6},
                             net::NodeId{7}});
  const std::uint64_t len = 1 + rng.next_below(24'000'000);

  sim.spawn([](Simulation& s, fs::LustreServers& sv, std::uint64_t n,
               std::uint32_t stripes) -> Task<void> {
    fs::LustreClient client(s, sv, net::NodeId{0});
    auto h = co_await client.create("file");
    co_await client.write(h, Bytes::zero(), Bytes(n));
    // Reference layout: 1 MiB stripes round-robin over `stripes` OSTs
    // starting at the file's first assigned OST.
    std::vector<std::uint64_t> expect(sv.ost_count(), 0);
    const std::uint64_t stripe = 1024 * 1024;
    for (std::uint64_t pos = 0; pos < n;) {
      const std::uint64_t chunk = std::min(stripe - pos % stripe, n - pos);
      expect[(pos / stripe) % stripes] += chunk;
      pos += chunk;
    }
    for (std::uint32_t i = 0; i < sv.ost_count(); ++i) {
      // OST assignment for file 1 starts at OST 0 (round-robin from zero).
      EXPECT_EQ(sv.ost_device(i).bytes_written().count(),
                i < stripes ? expect[i] : 0u)
          << "ost " << i << " n=" << n << " stripes=" << stripes;
    }
  }(sim, servers, len, lp.stripe_count));
  sim.run_to_quiescence();
}

// --- Frame codec: arbitrary corruption never passes ---------------------------------

TEST_P(Seeded, FrameCodecRejectsRandomCorruption) {
  Rng rng(GetParam());
  md::Frame f = md::synthesize_frame("fuzz", 200 + rng.next_below(800),
                                     rng.next_below(50), GetParam());
  auto buf = f.serialize();
  for (int trial = 0; trial < 50; ++trial) {
    auto copy = buf;
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t k = 0; k < flips; ++k) {
      copy[rng.next_below(copy.size())] ^=
          std::byte{static_cast<unsigned char>(1 + rng.next_below(255))};
    }
    if (copy == buf) continue;  // flips cancelled out
    EXPECT_THROW((void)md::Frame::deserialize(copy), md::FrameError);
  }
}

// --- Thicket aggregation is order-insensitive ----------------------------------------

TEST_P(Seeded, ThicketAggregationOrderInsensitive) {
  Rng rng(GetParam());
  std::vector<perf::CallTree> trees;
  for (int t = 0; t < 6; ++t) {
    Simulation sim;
    perf::Recorder rec(sim, "r");
    sim.spawn([](Simulation& s, perf::Recorder& r, Rng rg) -> Task<void> {
      perf::ScopedRegion outer(r, "consume");
      for (int i = 0; i < 3; ++i) {
        perf::ScopedRegion inner(r, "read", perf::Category::kMovement);
        co_await s.delay(Duration::microseconds(
            static_cast<std::int64_t>(1 + rg.next_below(5000))));
      }
    }(sim, rec, rng.fork("t" + std::to_string(t))));
    sim.run_to_quiescence();
    trees.push_back(rec.snapshot());
  }
  perf::Thicket fwd, rev;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    fwd.add({}, trees[i].clone());
    rev.add({}, trees[trees.size() - 1 - i].clone());
  }
  const auto fwd_agg = fwd.aggregate();
  const auto rev_agg = rev.aggregate();
  const auto* a = fwd_agg.find("consume/read");
  const auto* b = rev_agg.find("consume/read");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NEAR(a->inclusive_us.mean(), b->inclusive_us.mean(), 1e-9);
  EXPECT_NEAR(a->inclusive_us.stddev(), b->inclusive_us.stddev(), 1e-6);
  EXPECT_DOUBLE_EQ(a->max_single_us.max(), b->max_single_us.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Seeded,
                         ::testing::Values(1, 7, 42, 123, 999, 31337));

}  // namespace
}  // namespace mdwf
