// Tests for the mdwf::fault subsystem: deterministic fault plans, the
// injector's resource hooks, and DYAD's retry/failover recovery protocol.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "mdwf/common/time.hpp"
#include "mdwf/dyad/dyad.hpp"
#include "mdwf/fault/injector.hpp"
#include "mdwf/fault/plan.hpp"
#include "mdwf/kvs/kvs.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/storage/block_device.hpp"
#include "mdwf/workflow/ensemble.hpp"
#include "mdwf/workflow/testbed.hpp"

namespace mdwf::fault {
namespace {

using namespace mdwf::literals;
using dyad::DyadConsumer;
using dyad::DyadProducer;
using sim::Task;
using workflow::Testbed;
using workflow::TestbedParams;

FaultWindow window(FaultTarget target, std::uint32_t index, FaultMode mode,
                   TimePoint start, Duration duration, double severity) {
  return FaultWindow{target, index, mode, start, duration, severity};
}

// --- Plans and scenarios ----------------------------------------------------

TEST(FaultPlanTest, HorizonIsLatestWindowEnd) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.horizon(), TimePoint::origin());
  plan.windows.push_back(window(FaultTarget::kKvsBroker, 0, FaultMode::kStall,
                                TimePoint::origin() + 10_ms, 30_ms, 1.0));
  plan.windows.push_back(window(FaultTarget::kNodeSsd, 1, FaultMode::kDegrade,
                                TimePoint::origin() + 5_ms, 100_ms, 0.5));
  EXPECT_EQ(plan.horizon(), TimePoint::origin() + 105_ms);
}

TEST(FaultPlanTest, FaultClockIsDeterministic) {
  FaultProcess process;
  process.target = FaultTarget::kLustreOst;
  process.target_pool = 8;
  process.mean_interarrival = 50_ms;
  const TimePoint from = TimePoint::origin();
  const TimePoint horizon = TimePoint::origin() + 2_s;

  FaultPlan a, b, c;
  FaultClock(Rng(7)).materialize(process, from, horizon, a);
  FaultClock(Rng(7)).materialize(process, from, horizon, b);
  FaultClock(Rng(8)).materialize(process, from, horizon, c);

  ASSERT_FALSE(a.windows.empty());
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].index, b.windows[i].index);
    EXPECT_EQ(a.windows[i].start, b.windows[i].start);
    EXPECT_EQ(a.windows[i].duration, b.windows[i].duration);
    EXPECT_EQ(a.windows[i].severity, b.windows[i].severity);
  }
  // A different seed produces a different episode sequence.
  bool differs = a.windows.size() != c.windows.size();
  for (std::size_t i = 0; !differs && i < a.windows.size(); ++i) {
    differs = a.windows[i].start != c.windows[i].start;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, EveryNamedScenarioBuilds) {
  ScenarioShape shape;
  shape.compute_nodes = 4;
  for (const auto& name : scenario_names()) {
    const FaultPlan plan = make_scenario(name, shape);
    if (name == "none") {
      EXPECT_TRUE(plan.empty());
    } else {
      EXPECT_FALSE(plan.empty()) << name;
    }
  }
  EXPECT_THROW(make_scenario("cosmic-rays", shape), std::invalid_argument);

  const FaultPlan outage = make_scenario("broker-outage", shape);
  ASSERT_EQ(outage.windows.size(), 1u);
  EXPECT_EQ(outage.windows[0].target, FaultTarget::kKvsBroker);
  EXPECT_EQ(outage.windows[0].mode, FaultMode::kOutage);
}

// --- Injector: block devices ------------------------------------------------

TEST(FaultInjectorTest, DegradedDeviceSlowsDown) {
  auto timed_write = [](double severity) {
    sim::Simulation sim;
    storage::BlockDevice dev(sim, {});
    FaultPlan plan;
    if (severity > 0.0) {
      plan.windows.push_back(window(FaultTarget::kNodeSsd, 0,
                                    FaultMode::kDegrade, TimePoint::origin(),
                                    10_s, severity));
    }
    FaultInjector inj(sim, plan);
    inj.attach_node_ssd(0, dev);
    inj.arm();
    Duration took;
    sim.spawn([](sim::Simulation& s, storage::BlockDevice& d,
                 Duration& out) -> Task<void> {
      co_await s.delay(1_ms);  // after the window begins
      const TimePoint t0 = s.now();
      co_await d.write(Bytes::mib(64));
      out = s.now() - t0;
    }(sim, dev, took));
    sim.run_to_quiescence();
    return took;
  };
  const Duration healthy = timed_write(0.0);
  const Duration degraded = timed_write(0.7);
  // 70% capacity loss -> at least 3x slower.
  EXPECT_GT(degraded, healthy * 3);
}

TEST(FaultInjectorTest, OfflineDeviceQueuesOpsUntilWindowEnds) {
  sim::Simulation sim;
  storage::BlockDevice dev(sim, {});
  FaultPlan plan;
  plan.windows.push_back(window(FaultTarget::kNodeSsd, 0, FaultMode::kOffline,
                                TimePoint::origin() + 1_ms, 49_ms, 1.0));
  FaultInjector inj(sim, plan);
  inj.attach_node_ssd(0, dev);
  inj.arm();
  TimePoint done;
  sim.spawn([](sim::Simulation& s, storage::BlockDevice& d,
               TimePoint& out) -> Task<void> {
    co_await s.delay(10_ms);
    EXPECT_TRUE(d.offline());
    co_await d.read(Bytes::kib(4));
    out = s.now();
  }(sim, dev, done));
  sim.run_to_quiescence();
  EXPECT_FALSE(dev.offline());
  EXPECT_GE(done, TimePoint::origin() + 50_ms);
  EXPECT_LT(done, TimePoint::origin() + 51_ms);
}

TEST(FaultInjectorTest, IoErrorWindowFailsOps) {
  sim::Simulation sim;
  storage::BlockDevice dev(sim, {});
  FaultPlan plan;
  plan.seed = 99;
  plan.windows.push_back(window(FaultTarget::kNodeSsd, 0, FaultMode::kIoError,
                                TimePoint::origin(), 10_ms, 1.0));
  FaultInjector inj(sim, plan);
  inj.attach_node_ssd(0, dev);
  inj.arm();
  sim.spawn([](sim::Simulation& s, storage::BlockDevice& d) -> Task<void> {
    co_await s.delay(1_ms);
    bool threw = false;
    try {
      co_await d.read(Bytes::kib(4));
    } catch (const storage::IoError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    // After the window the device is healthy again.
    co_await s.delay(20_ms);
    co_await d.read(Bytes::kib(4));
  }(sim, dev));
  sim.run_to_quiescence();
  EXPECT_EQ(dev.io_errors(), 1u);
  EXPECT_EQ(dev.reads_completed(), 1u);
}

// --- Injector: network ------------------------------------------------------

TEST(FaultInjectorTest, PartitionedLinkFailsFast) {
  sim::Simulation sim;
  net::Network network(sim, {}, 3);
  FaultPlan plan;
  plan.windows.push_back(window(FaultTarget::kNodeLink, 1, FaultMode::kOffline,
                                TimePoint::origin() + 1_ms, 10_ms, 1.0));
  FaultInjector inj(sim, plan);
  inj.attach_network(network);
  inj.arm();
  sim.spawn([](sim::Simulation& s, net::Network& n) -> Task<void> {
    co_await s.delay(2_ms);
    EXPECT_TRUE(n.link_down(net::NodeId{1}));
    bool threw = false;
    try {
      co_await n.transfer(net::NodeId{0}, net::NodeId{1}, Bytes::kib(64));
    } catch (const net::NetError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    // Unaffected links keep working, and the victim recovers.
    co_await n.transfer(net::NodeId{0}, net::NodeId{2}, Bytes::kib(64));
    co_await s.delay(20_ms);
    co_await n.transfer(net::NodeId{0}, net::NodeId{1}, Bytes::kib(64));
  }(sim, network));
  sim.run_to_quiescence();
  EXPECT_FALSE(network.link_down(net::NodeId{1}));
}

TEST(FaultInjectorTest, LinkDegradationSlowsTransfers) {
  auto timed_transfer = [](double severity) {
    sim::Simulation sim;
    net::Network network(sim, {}, 2);
    FaultPlan plan;
    if (severity > 0.0) {
      plan.windows.push_back(window(FaultTarget::kNodeLink, 1,
                                    FaultMode::kDegrade, TimePoint::origin(),
                                    10_s, severity));
    }
    FaultInjector inj(sim, plan);
    inj.attach_network(network);
    inj.arm();
    Duration took;
    sim.spawn([](sim::Simulation& s, net::Network& n,
                 Duration& out) -> Task<void> {
      co_await s.delay(1_ms);
      const TimePoint t0 = s.now();
      co_await n.transfer(net::NodeId{0}, net::NodeId{1}, Bytes::mib(256));
      out = s.now() - t0;
    }(sim, network, took));
    sim.run_to_quiescence();
    return took;
  };
  EXPECT_GT(timed_transfer(0.5), timed_transfer(0.0) * 1.8);
}

// --- Injector: KVS broker ---------------------------------------------------

TEST(FaultInjectorTest, BrokerStallDefersService) {
  sim::Simulation sim;
  net::Network network(sim, {}, 2);
  kvs::KvsServer server(sim, {}, network, net::NodeId{1});
  kvs::KvsClient client(sim, server, net::NodeId{0});
  FaultPlan plan;
  plan.windows.push_back(window(FaultTarget::kKvsBroker, 0, FaultMode::kStall,
                                TimePoint::origin() + 1_ms, 19_ms, 1.0));
  FaultInjector inj(sim, plan);
  inj.attach_kvs(server);
  inj.arm();
  TimePoint done;
  sim.spawn([](sim::Simulation& s, kvs::KvsClient& c,
               TimePoint& out) -> Task<void> {
    co_await s.delay(5_ms);
    co_await c.lookup("key");
    out = s.now();
  }(sim, client, done));
  sim.run_to_quiescence();
  // The lookup arrived mid-stall and was serviced only after the window.
  EXPECT_GE(done, TimePoint::origin() + 20_ms);
  EXPECT_LT(done, TimePoint::origin() + 21_ms);
}

TEST(FaultInjectorTest, BrokerOutageLosesPendingCommitsAndNotifies) {
  sim::Simulation sim;
  net::Network network(sim, {}, 2);
  kvs::KvsParams kp;
  kp.visibility_delay = 50_ms;
  kvs::KvsServer server(sim, kp, network, net::NodeId{1});
  kvs::KvsClient client(sim, server, net::NodeId{0});
  std::vector<std::string> reported;
  server.add_recovery_listener(
      [&reported](const std::vector<std::string>& lost) { reported = lost; });
  FaultPlan plan;
  plan.windows.push_back(window(FaultTarget::kKvsBroker, 0, FaultMode::kOutage,
                                TimePoint::origin() + 10_ms, 40_ms, 1.0));
  FaultInjector inj(sim, plan);
  inj.attach_kvs(server);
  inj.arm();
  sim.spawn([](kvs::KvsClient& c) -> Task<void> {
    // Applied at ~t0, visible at ~50 ms: the 10 ms outage wipes it.
    co_await c.commit("doomed", "v");
  }(client));
  sim.spawn([](sim::Simulation& s, kvs::KvsClient& c) -> Task<void> {
    co_await s.delay(200_ms);
    const auto found = co_await c.lookup("doomed");
    EXPECT_FALSE(found.has_value());
  }(sim, client));
  sim.run_to_quiescence();
  EXPECT_EQ(server.lost_commits(), 1u);
  ASSERT_EQ(reported.size(), 1u);
  EXPECT_EQ(reported[0], "doomed");
}

// --- DYAD recovery protocol -------------------------------------------------

// Two-node testbed with a long commit-to-visibility delay and a broker
// outage that swallows the producer's first metadata publish.
TestbedParams outage_params(bool retry_enabled) {
  TestbedParams tp;
  tp.compute_nodes = 2;
  tp.kvs.visibility_delay = 50_ms;
  tp.dyad.retry.enabled = retry_enabled;
  tp.dyad.retry.lustre_fallback = retry_enabled;
  tp.dyad.retry.timeout = 60_ms;
  tp.dyad.retry.max_attempts = 8;
  tp.faults.windows.push_back(window(FaultTarget::kKvsBroker, 0,
                                     FaultMode::kOutage,
                                     TimePoint::origin() + 10_ms, 90_ms, 1.0));
  return tp;
}

TEST(DyadRecoveryTest, RetryCompletesThroughBrokerOutage) {
  Testbed tb(outage_params(true));
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  DyadProducer producer(*tb.node(0).dyad, prec);
  DyadConsumer consumer(*tb.node(1).dyad, crec);
  sim.spawn([](DyadProducer& p) -> Task<void> {
    co_await p.produce("pair0/frame0", Bytes::kib(644));
  }(producer),
            "producer0");
  sim.spawn([](DyadConsumer& c) -> Task<void> {
    co_await c.consume("pair0/frame0", Bytes::kib(644));
  }(consumer),
            "consumer0");
  sim.run_to_quiescence();

  // The first publish was lost to the outage; the producer re-published on
  // recovery and the consumer got the data after bounded retries.
  EXPECT_EQ(tb.kvs().lost_commits(), 1u);
  EXPECT_EQ(tb.node(0).dyad->republishes(), 1u);
  EXPECT_GE(consumer.recovery_retries(), 1u);
  EXPECT_EQ(consumer.failovers(), 0u);
  // Recovery shows up in the call tree as dyad_retry backoff under fetch.
  EXPECT_NE(crec.tree().find("dyad_consume/dyad_fetch/dyad_retry"), nullptr);
  EXPECT_NE(crec.tree().find("dyad_consume/dyad_get_data"), nullptr);
}

TEST(DyadRecoveryTest, WithoutRetryBrokerOutageDeadlocksConsumer) {
  auto tb = std::make_unique<Testbed>(outage_params(false));
  auto& sim = tb->simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  DyadProducer producer(*tb->node(0).dyad, prec);
  DyadConsumer consumer(*tb->node(1).dyad, crec);
  sim.spawn([](DyadProducer& p) -> Task<void> {
    co_await p.produce("pair0/frame0", Bytes::kib(644));
  }(producer),
            "producer0");
  sim.spawn([](DyadConsumer& c) -> Task<void> {
    co_await c.consume("pair0/frame0", Bytes::kib(644));
  }(consumer),
            "consumer0");
  // The metadata is gone and nothing will ever re-publish it: the consumer
  // blocks forever on a KVS watch, and the deadlock report names it.
  try {
    sim.run_to_quiescence();
    FAIL() << "expected a deadlock";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 process(es)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("consumer0"), std::string::npos) << msg;
  }
  // Tear the testbed down while the recorders are alive: destroying the
  // simulation unwinds the blocked consumer's still-open regions.
  tb.reset();
}

TEST(DyadRecoveryTest, FailoverReadsLustreWhenOwnerUnreachable) {
  TestbedParams tp;
  tp.compute_nodes = 2;
  tp.dyad.retry.enabled = true;
  tp.dyad.retry.lustre_fallback = true;
  tp.dyad.retry.max_attempts = 2;
  // The producer node drops off the fabric after publishing (metadata is
  // visible, the write-through replica is on Lustre) and stays down.
  tp.faults.windows.push_back(window(FaultTarget::kNodeLink, 0,
                                     FaultMode::kOffline,
                                     TimePoint::origin() + 20_ms, 10_s, 1.0));
  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  DyadProducer producer(*tb.node(0).dyad, prec);
  DyadConsumer consumer(*tb.node(1).dyad, crec);
  sim.spawn([](DyadProducer& p) -> Task<void> {
    co_await p.produce("pair0/frame0", Bytes::kib(644));
  }(producer));
  sim.spawn([](sim::Simulation& s, DyadConsumer& c) -> Task<void> {
    co_await s.delay(30_ms);  // owner is already unreachable
    co_await c.consume("pair0/frame0", Bytes::kib(644));
  }(sim, consumer));
  sim.run_to_quiescence();

  EXPECT_GE(consumer.recovery_retries(), 2u);
  EXPECT_EQ(consumer.failovers(), 1u);
  EXPECT_NE(crec.tree().find("dyad_consume/dyad_retry"), nullptr);
  EXPECT_NE(crec.tree().find("dyad_consume/dyad_failover_read"), nullptr);
  // The frame never staged locally: it was consumed from the Lustre stream.
  EXPECT_FALSE(tb.node(1).local_fs->exists("dyad_cache/pair0/frame0"));
}

// Ablation switches compose with the recovery protocol.
TEST(DyadRecoveryTest, PushModeSurvivesBrokerOutage) {
  TestbedParams tp = outage_params(true);
  tp.dyad.push_mode = true;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  tb.dyad_domain().subscribe("pair0/", net::NodeId{1});
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  DyadProducer producer(*tb.node(0).dyad, prec);
  DyadConsumer consumer(*tb.node(1).dyad, crec);
  sim.spawn([](DyadProducer& p) -> Task<void> {
    co_await p.produce("pair0/frame0", Bytes::kib(644));
  }(producer));
  sim.spawn([](DyadConsumer& c) -> Task<void> {
    co_await c.consume("pair0/frame0", Bytes::kib(644));
  }(consumer));
  sim.run_to_quiescence();
  // Either the pushed copy arrived first (warm path) or the consumer pulled
  // after the republish; both complete without deadlock.
  EXPECT_EQ(consumer.warm_hits() + consumer.failovers() +
                (crec.tree().find("dyad_consume/dyad_get_data") ? 1u : 0u),
            1u);
  EXPECT_EQ(tb.kvs().lost_commits(), 1u);
}

TEST(DyadRecoveryTest, SkipConsumerStagingSurvivesBrokerOutage) {
  TestbedParams tp = outage_params(true);
  tp.dyad.skip_consumer_staging = true;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  DyadProducer producer(*tb.node(0).dyad, prec);
  DyadConsumer consumer(*tb.node(1).dyad, crec);
  sim.spawn([](DyadProducer& p) -> Task<void> {
    co_await p.produce("pair0/frame0", Bytes::kib(644));
  }(producer));
  sim.spawn([](DyadConsumer& c) -> Task<void> {
    co_await c.consume("pair0/frame0", Bytes::kib(644));
  }(consumer));
  sim.run_to_quiescence();
  EXPECT_GE(consumer.recovery_retries(), 1u);
  EXPECT_NE(crec.tree().find("dyad_consume/dyad_get_data"), nullptr);
  EXPECT_EQ(crec.tree().find("dyad_consume/dyad_cons_store"), nullptr);
  EXPECT_FALSE(tb.node(1).local_fs->exists("dyad_cache/pair0/frame0"));
}

// --- Bit-reproducibility under fault injection ------------------------------

std::pair<std::uint64_t, std::string> run_faulted_workflow() {
  ScenarioShape shape;
  shape.compute_nodes = 2;
  shape.start = TimePoint::origin() + 10_ms;
  TestbedParams tp;
  tp.compute_nodes = 2;
  tp.kvs.visibility_delay = 50_ms;
  tp.dyad.retry.enabled = true;
  tp.dyad.retry.lustre_fallback = true;
  tp.faults = make_scenario("broker-outage", shape);
  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  DyadProducer producer(*tb.node(0).dyad, prec);
  DyadConsumer consumer(*tb.node(1).dyad, crec);
  sim.spawn([](sim::Simulation& s, DyadProducer& p) -> Task<void> {
    for (std::uint64_t f = 0; f < 4; ++f) {
      co_await p.produce(workflow::frame_path(0, f), Bytes::kib(644));
      co_await s.delay(20_ms);
    }
  }(sim, producer));
  sim.spawn([](DyadConsumer& c) -> Task<void> {
    for (std::uint64_t f = 0; f < 4; ++f) {
      co_await c.consume(workflow::frame_path(0, f), Bytes::kib(644));
    }
  }(consumer));
  const std::uint64_t events = sim.run_to_quiescence();
  return {events, crec.tree().render()};
}

TEST(FaultDeterminismTest, SameSeedSamePlanIsBitIdentical) {
  const auto a = run_faulted_workflow();
  const auto b = run_faulted_workflow();
  EXPECT_EQ(a.first, b.first);    // same event count
  EXPECT_EQ(a.second, b.second);  // identical recorder output
}

}  // namespace
}  // namespace mdwf::fault
