// Additional kernel and task-type edge cases.
#include <gtest/gtest.h>

#include <vector>

#include "mdwf/common/time.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/sim/simulation.hpp"

namespace mdwf::sim {
namespace {

using namespace mdwf::literals;

TEST(TaskTest, MoveTransfersOwnership) {
  Simulation sim;
  auto make = [](Simulation& s) -> Task<int> {
    co_await s.delay(1_us);
    co_return 5;
  };
  Task<int> a = make(sim);
  EXPECT_TRUE(a.valid());
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): post-move test
  EXPECT_TRUE(b.valid());
  Task<int> c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
  int out = 0;
  sim.spawn([](Task<int> t, int& o) -> Task<void> {
    o = co_await std::move(t);
  }(std::move(c), out));
  sim.run_to_quiescence();
  EXPECT_EQ(out, 5);
}

TEST(TaskTest, DroppingUnstartedTaskIsClean) {
  Simulation sim;
  bool ran = false;
  {
    auto t = [](Simulation& s, bool& r) -> Task<void> {
      r = true;
      co_await s.delay(1_us);
    }(sim, ran);
    EXPECT_TRUE(t.valid());
    // Never awaited/spawned: destroyed lazily-unstarted here.
  }
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(TaskTest, ValueTypesMoveThroughTasks) {
  Simulation sim;
  auto make = [](Simulation& s) -> Task<std::vector<int>> {
    co_await s.delay(1_us);
    co_return std::vector<int>{1, 2, 3};
  };
  std::vector<int> out;
  sim.spawn([](Simulation& s, auto mk, std::vector<int>& o) -> Task<void> {
    o = co_await mk(s);
  }(sim, make, out));
  sim.run_to_quiescence();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationExtraTest, CallAtAbsoluteTimeOrdersWithDelays) {
  Simulation sim;
  std::vector<int> log;
  sim.call_at(TimePoint::origin() + 5_us, [&] { log.push_back(2); });
  sim.call_at(TimePoint::origin() + 1_us, [&] { log.push_back(1); });
  sim.spawn([](Simulation& s, std::vector<int>& l) -> Task<void> {
    co_await s.delay(3_us);
    l.push_back(10);
  }(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 10, 2}));
}

TEST(SimulationExtraTest, CancelAfterFireIsHarmless) {
  Simulation sim;
  int fired = 0;
  const TimerId id = sim.call_after(1_us, [&] { ++fired; });
  sim.run();
  sim.cancel(id);  // already fired: no effect, no crash
  sim.call_after(1_us, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationExtraTest, YieldRunsAfterQueuedSameTimeEvents) {
  Simulation sim;
  std::vector<int> log;
  sim.spawn([](Simulation& s, std::vector<int>& l) -> Task<void> {
    l.push_back(1);
    co_await s.yield();
    l.push_back(3);
  }(sim, log));
  sim.spawn([](std::vector<int>& l) -> Task<void> {
    l.push_back(2);
    co_return;
  }(log));
  sim.run_to_quiescence();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationExtraTest, RunUntilExactBoundaryIncludesEvents) {
  Simulation sim;
  int fired = 0;
  sim.call_at(TimePoint::origin() + 10_us, [&] { ++fired; });
  sim.run_until(TimePoint::origin() + 10_us);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 10_us);
}

TEST(SimulationExtraTest, EventsFiredCounts) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.call_after(Duration(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(SimulationExtraTest, SpawnFromInsideProcess) {
  Simulation sim;
  std::vector<int> log;
  sim.spawn([](Simulation& s, std::vector<int>& l) -> Task<void> {
    l.push_back(1);
    s.spawn([](Simulation& s2, std::vector<int>& l2) -> Task<void> {
      co_await s2.delay(1_us);
      l2.push_back(2);
    }(s, l));
    co_await s.delay(2_us);
    l.push_back(3);
  }(sim, log));
  sim.run_to_quiescence();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(SemaphoreExtraTest, GuardMoveTransfersRelease) {
  Simulation sim;
  Semaphore sem(sim, 1);
  sim.spawn([](Simulation& s, Semaphore& sm) -> Task<void> {
    co_await sm.acquire();
    SemaphoreGuard a(sm);
    {
      SemaphoreGuard b(std::move(a));
      co_await s.delay(1_us);
      // b releases here; a must not double-release.
    }
    EXPECT_EQ(sm.available(), 1);
  }(sim, sem));
  sim.run_to_quiescence();
  EXPECT_EQ(sem.available(), 1);
}

TEST(QueueExtraTest, TryGetDrainsInOrder) {
  Simulation sim;
  Queue<int> q(sim);
  EXPECT_FALSE(q.try_get().has_value());
  EXPECT_TRUE(q.try_put(1));
  EXPECT_TRUE(q.try_put(2));
  EXPECT_EQ(q.try_get(), 1);
  EXPECT_EQ(q.try_get(), 2);
  EXPECT_FALSE(q.try_get().has_value());
}

TEST(QueueExtraTest, TryGetAdmitsBlockedPutter) {
  Simulation sim;
  Queue<int> q(sim, 1);
  TimePoint unblocked;
  sim.spawn([](Simulation& s, Queue<int>& qq, TimePoint& t) -> Task<void> {
    co_await qq.put(1);
    co_await qq.put(2);  // blocks (capacity 1)
    t = s.now();
  }(sim, q, unblocked));
  sim.spawn([](Simulation& s, Queue<int>& qq) -> Task<void> {
    co_await s.delay(5_us);
    EXPECT_EQ(qq.try_get(), 1);  // frees a slot; putter resumes
    co_await s.delay(5_us);
    EXPECT_EQ(qq.try_get(), 2);
  }(sim, q));
  sim.run_to_quiescence();
  EXPECT_EQ(unblocked, TimePoint::origin() + 5_us);
}

}  // namespace
}  // namespace mdwf::sim
