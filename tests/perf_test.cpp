// Unit tests for the Caliper-like recorder and Thicket-like analysis layer.
#include <gtest/gtest.h>

#include "mdwf/common/time.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/perf/thicket.hpp"
#include "mdwf/sim/primitives.hpp"

namespace mdwf::perf {
namespace {

using namespace mdwf::literals;
using sim::Simulation;
using sim::Task;

Task<void> instrumented_consume(Simulation& sim, Recorder& rec) {
  ScopedRegion consume(rec, "dyad_consume", Category::kOther);
  {
    ScopedRegion fetch(rec, "dyad_fetch", Category::kIdle);
    co_await sim.delay(2_ms);
  }
  {
    ScopedRegion get(rec, "dyad_get_data", Category::kMovement);
    co_await sim.delay(3_ms);
  }
  {
    ScopedRegion rd(rec, "read_single_buf", Category::kMovement);
    co_await sim.delay(1_ms);
  }
}

TEST(RecorderTest, BuildsTreeWithInclusiveTimes) {
  Simulation sim;
  Recorder rec(sim, "consumer0");
  sim.spawn(instrumented_consume(sim, rec));
  sim.run_to_quiescence();

  EXPECT_EQ(rec.open_regions(), 0u);
  const auto& tree = rec.tree();
  const CallNode* consume = tree.find("dyad_consume");
  ASSERT_NE(consume, nullptr);
  EXPECT_EQ(consume->count, 1u);
  EXPECT_EQ(consume->inclusive, 6_ms);
  const CallNode* fetch = tree.find("dyad_consume/dyad_fetch");
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(fetch->inclusive, 2_ms);
  EXPECT_EQ(fetch->category, Category::kIdle);
  // Exclusive time of the parent is zero: all time is in children.
  EXPECT_EQ(consume->exclusive(), 0_ms);
}

TEST(RecorderTest, RepeatedRegionsAccumulate) {
  Simulation sim;
  Recorder rec(sim, "p");
  sim.spawn([](Simulation& s, Recorder& r) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      ScopedRegion w(r, "write", Category::kMovement);
      co_await s.delay(2_us);
    }
  }(sim, rec));
  sim.run_to_quiescence();
  const CallNode* w = rec.tree().find("write");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->count, 5u);
  EXPECT_EQ(w->inclusive, 10_us);
}

TEST(RecorderTest, SiblingProcessesDoNotInterfere) {
  Simulation sim;
  Recorder ra(sim, "a"), rb(sim, "b");
  sim.spawn([](Simulation& s, Recorder& r) -> Task<void> {
    ScopedRegion x(r, "x");
    co_await s.delay(1_ms);
  }(sim, ra));
  sim.spawn([](Simulation& s, Recorder& r) -> Task<void> {
    ScopedRegion y(r, "y");
    co_await s.delay(2_ms);
  }(sim, rb));
  sim.run_to_quiescence();
  EXPECT_NE(ra.tree().find("x"), nullptr);
  EXPECT_EQ(ra.tree().find("y"), nullptr);
  EXPECT_EQ(rb.tree().find("y")->inclusive, 2_ms);
}

TEST(CallTreeTest, CategoryTimeSumsWithoutDoubleCounting) {
  Simulation sim;
  Recorder rec(sim, "c");
  sim.spawn(instrumented_consume(sim, rec));
  sim.run_to_quiescence();
  const CallTree& t = rec.tree();
  EXPECT_EQ(t.category_time("dyad_consume", Category::kMovement), 4_ms);
  EXPECT_EQ(t.category_time("dyad_consume", Category::kIdle), 2_ms);
  EXPECT_EQ(t.category_time("", Category::kMovement), 4_ms);
}

TEST(CallTreeTest, MergeAccumulates) {
  Simulation sim;
  Recorder a(sim, "a"), b(sim, "b");
  sim.spawn(instrumented_consume(sim, a));
  sim.spawn(instrumented_consume(sim, b));
  sim.run_to_quiescence();
  CallTree merged = a.snapshot();
  merged.merge(b.tree());
  EXPECT_EQ(merged.find("dyad_consume")->inclusive, 12_ms);
  EXPECT_EQ(merged.find("dyad_consume")->count, 2u);
}

TEST(CallTreeTest, RenderContainsNodesAndCategories) {
  Simulation sim;
  Recorder rec(sim, "c");
  sim.spawn(instrumented_consume(sim, rec));
  sim.run_to_quiescence();
  const std::string s = rec.tree().render();
  EXPECT_NE(s.find("dyad_consume"), std::string::npos);
  EXPECT_NE(s.find("dyad_fetch"), std::string::npos);
  EXPECT_NE(s.find("[idle]"), std::string::npos);
  EXPECT_NE(s.find("[movement]"), std::string::npos);
}

TEST(QueryTest, PathMatching) {
  auto match = [](std::string_view pat, std::string_view path) {
    const auto p = split_query(pat);
    const auto q = split_query(path);
    return path_matches(p, q);
  };
  EXPECT_TRUE(match("a/b", "a/b"));
  EXPECT_FALSE(match("a/b", "a"));
  EXPECT_FALSE(match("a", "a/b"));
  EXPECT_TRUE(match("a/*", "a/b"));
  EXPECT_FALSE(match("a/*", "a/b/c"));
  EXPECT_TRUE(match("**/c", "a/b/c"));
  EXPECT_TRUE(match("**/c", "c"));
  EXPECT_TRUE(match("a/**", "a"));
  EXPECT_TRUE(match("a/**", "a/b/c/d"));
  EXPECT_TRUE(match("a/**/d", "a/b/c/d"));
  EXPECT_FALSE(match("a/**/d", "a/b/c"));
  EXPECT_TRUE(match("**", ""));
}

TEST(ThicketTest, AggregateAcrossRunsComputesStats) {
  Thicket th;
  for (int rep = 0; rep < 4; ++rep) {
    Simulation sim;
    Recorder rec(sim, "c");
    // Vary the fetch time across "runs": 2ms, 4ms, 6ms, 8ms.
    sim.spawn([](Simulation& s, Recorder& r, int k) -> Task<void> {
      ScopedRegion consume(r, "dyad_consume");
      ScopedRegion fetch(r, "dyad_fetch", Category::kIdle);
      co_await s.delay(Duration::milliseconds(2 * (k + 1)));
    }(sim, rec, rep));
    sim.run_to_quiescence();
    th.add({{"rep", std::to_string(rep)}, {"solution", "dyad"}},
           rec.snapshot());
  }
  EXPECT_EQ(th.size(), 4u);
  StatTree agg = th.aggregate();
  const StatNode* fetch = agg.find("dyad_consume/dyad_fetch");
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(fetch->inclusive_us.count(), 4u);
  EXPECT_DOUBLE_EQ(fetch->inclusive_us.mean(), 5000.0);
  EXPECT_NEAR(fetch->inclusive_us.stddev(), 2581.99, 0.01);
}

TEST(ThicketTest, FilterByMetadata) {
  Thicket th;
  for (int i = 0; i < 6; ++i) {
    Simulation sim;
    Recorder rec(sim, "p");
    sim.spawn([](Simulation& s, Recorder& r) -> Task<void> {
      ScopedRegion w(r, "write", Category::kMovement);
      co_await s.delay(1_ms);
    }(sim, rec));
    sim.run_to_quiescence();
    th.add({{"solution", i % 2 ? "dyad" : "lustre"}}, rec.snapshot());
  }
  EXPECT_EQ(th.filter("solution", "dyad").size(), 3u);
  EXPECT_EQ(th.filter("solution", "lustre").size(), 3u);
  EXPECT_EQ(th.filter("solution", "xfs").size(), 0u);
}

TEST(ThicketTest, QueryFindsNodesAnywhere) {
  Thicket th;
  Simulation sim;
  Recorder rec(sim, "c");
  sim.spawn(instrumented_consume(sim, rec));
  sim.run_to_quiescence();
  th.add({}, rec.snapshot());
  StatTree agg;
  const auto hits = th.query("**/read_single_buf", agg);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, "dyad_consume/read_single_buf");
  EXPECT_DOUBLE_EQ(hits[0].second->inclusive_us.mean(), 1000.0);
}

TEST(StatTreeTest, MeanCategoryUs) {
  Thicket th;
  for (int rep = 0; rep < 2; ++rep) {
    Simulation sim;
    Recorder rec(sim, "c");
    sim.spawn(instrumented_consume(sim, rec));
    sim.run_to_quiescence();
    th.add({}, rec.snapshot());
  }
  StatTree agg = th.aggregate();
  EXPECT_DOUBLE_EQ(agg.mean_category_us("dyad_consume", Category::kMovement),
                   4000.0);
  EXPECT_DOUBLE_EQ(agg.mean_category_us("", Category::kIdle), 2000.0);
}

}  // namespace
}  // namespace mdwf::perf
