// Unit tests for the discrete-event simulation kernel and its primitives.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "mdwf/common/time.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::sim {
namespace {

using namespace mdwf::literals;

Task<void> record_after(Simulation& sim, Duration d, std::vector<int>& log,
                        int id) {
  co_await sim.delay(d);
  log.push_back(id);
}

TEST(SimulationTest, ClockStartsAtOrigin) {
  Simulation sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(SimulationTest, DelayAdvancesClock) {
  Simulation sim;
  std::vector<int> log;
  sim.spawn(record_after(sim, 5_ms, log, 1));
  sim.run_to_quiescence();
  EXPECT_EQ(sim.now(), TimePoint::origin() + 5_ms);
  EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> log;
  sim.spawn(record_after(sim, 30_us, log, 3));
  sim.spawn(record_after(sim, 10_us, log, 1));
  sim.spawn(record_after(sim, 20_us, log, 2));
  sim.run_to_quiescence();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, SameTimestampIsFifo) {
  Simulation sim;
  std::vector<int> log;
  for (int i = 0; i < 8; ++i) sim.spawn(record_after(sim, 1_ms, log, i));
  sim.run_to_quiescence();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SimulationTest, SequentialDelaysAccumulate) {
  Simulation sim;
  TimePoint end;
  sim.spawn([](Simulation& s, TimePoint& out) -> Task<void> {
    co_await s.delay(1_ms);
    co_await s.delay(2_ms);
    co_await s.delay(3_ms);
    out = s.now();
  }(sim, end));
  sim.run_to_quiescence();
  EXPECT_EQ(end, TimePoint::origin() + 6_ms);
}

TEST(SimulationTest, NestedTaskAwaitPropagatesValue) {
  Simulation sim;
  int result = 0;
  auto inner = [](Simulation& s) -> Task<int> {
    co_await s.delay(2_us);
    co_return 41;
  };
  sim.spawn([](Simulation& s, auto make_inner, int& out) -> Task<void> {
    const int v = co_await make_inner(s);
    out = v + 1;
  }(sim, inner, result));
  sim.run_to_quiescence();
  EXPECT_EQ(result, 42);
}

TEST(SimulationTest, DeeplyNestedAwaitsDoNotOverflowStack) {
  Simulation sim;
  // Recursion depth beyond native stack frames would tolerate if coroutine
  // chaining consumed real stack.
  struct Helper {
    static Task<int> countdown(Simulation& s, int n) {
      if (n == 0) co_return 0;
      co_await s.delay(1_ns);
      const int v = co_await countdown(s, n - 1);
      co_return v + 1;
    }
  };
  int result = -1;
  sim.spawn([](Simulation& s, int& out) -> Task<void> {
    out = co_await Helper::countdown(s, 50000);
  }(sim, result));
  sim.run_to_quiescence();
  EXPECT_EQ(result, 50000);
}

TEST(SimulationTest, ExceptionInProcessSurfacesFromRun) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.delay(1_us);
    throw std::runtime_error("boom");
  }(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(SimulationTest, ExceptionPropagatesThroughNestedTask) {
  Simulation sim;
  bool caught = false;
  auto thrower = [](Simulation& s) -> Task<void> {
    co_await s.delay(1_us);
    throw std::runtime_error("inner");
  };
  sim.spawn([](Simulation& s, auto mk, bool& c) -> Task<void> {
    try {
      co_await mk(s);
    } catch (const std::runtime_error& e) {
      c = std::string(e.what()) == "inner";
    }
  }(sim, thrower, caught));
  sim.run_to_quiescence();
  EXPECT_TRUE(caught);
}

TEST(SimulationTest, RunUntilStopsAtLimit) {
  Simulation sim;
  std::vector<int> log;
  sim.spawn(record_after(sim, 10_ms, log, 1));
  sim.spawn(record_after(sim, 20_ms, log, 2));
  sim.run_until(TimePoint::origin() + 15_ms);
  EXPECT_EQ(log, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), TimePoint::origin() + 15_ms);
  sim.run_to_quiescence();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(SimulationTest, TimerCallbackAndCancel) {
  Simulation sim;
  int fired = 0;
  sim.call_after(1_ms, [&] { ++fired; });
  const TimerId cancelled = sim.call_after(2_ms, [&] { fired += 100; });
  sim.cancel(cancelled);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, DestructionWithSuspendedProcessesIsClean) {
  // A process blocked forever must be destroyed without leaks or crashes
  // when the simulation goes out of scope (ASAN-checked implicitly).
  Simulation sim;
  auto ev = std::make_unique<Event>(sim);
  sim.spawn([](Event& e) -> Task<void> { co_await e.wait(); }(*ev));
  sim.run();
  EXPECT_TRUE(sim.deadlocked());
  EXPECT_EQ(sim.live_processes(), 1u);
}

TEST(SimulationTest, RunToQuiescenceThrowsOnDeadlock) {
  Simulation sim;
  auto ev = std::make_unique<Event>(sim);
  sim.spawn([](Event& e) -> Task<void> { co_await e.wait(); }(*ev));
  EXPECT_THROW(sim.run_to_quiescence(), std::runtime_error);
}

TEST(SimulationTest, MaxEventsGuardTrips) {
  Simulation sim;
  sim.set_max_events(100);
  sim.spawn([](Simulation& s) -> Task<void> {
    for (;;) co_await s.delay(1_ns);
  }(sim));
  EXPECT_DEATH(sim.run(), "event budget");
}

// --- Event ------------------------------------------------------------------

TEST(EventTest, TriggerWakesAllWaiters) {
  Simulation sim;
  Event ev(sim);
  std::vector<int> log;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Event& e, std::vector<int>& l, int id) -> Task<void> {
      co_await e.wait();
      l.push_back(id);
    }(ev, log, i));
  }
  sim.spawn([](Simulation& s, Event& e) -> Task<void> {
    co_await s.delay(5_us);
    e.trigger();
  }(sim, ev));
  sim.run_to_quiescence();
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 5_us);
}

TEST(EventTest, WaitAfterTriggerIsImmediate) {
  Simulation sim;
  Event ev(sim);
  ev.trigger();
  TimePoint waited;
  sim.spawn([](Simulation& s, Event& e, TimePoint& out) -> Task<void> {
    co_await s.delay(3_us);
    co_await e.wait();  // must not block
    out = s.now();
  }(sim, ev, waited));
  sim.run_to_quiescence();
  EXPECT_EQ(waited, TimePoint::origin() + 3_us);
}

TEST(EventTest, TriggerIsIdempotent) {
  Simulation sim;
  Event ev(sim);
  int wakes = 0;
  sim.spawn([](Event& e, int& w) -> Task<void> {
    co_await e.wait();
    ++w;
  }(ev, wakes));
  ev.trigger();
  ev.trigger();
  sim.run_to_quiescence();
  EXPECT_EQ(wakes, 1);
}

// --- Semaphore ---------------------------------------------------------------

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  int active = 0;
  int peak = 0;
  std::vector<Task<void>> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back([](Simulation& s, Semaphore& sm, int& act,
                       int& pk) -> Task<void> {
      co_await sm.acquire();
      SemaphoreGuard g(sm);
      ++act;
      pk = std::max(pk, act);
      co_await s.delay(1_ms);
      --act;
    }(sim, sem, active, peak));
  }
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  // 6 holders, 2 at a time, 1 ms each -> 3 ms.
  EXPECT_EQ(sim.now(), TimePoint::origin() + 3_ms);
}

TEST(SemaphoreTest, FifoHandoff) {
  Simulation sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  std::vector<Task<void>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([](Simulation& s, Semaphore& sm, std::vector<int>& ord,
                       int id) -> Task<void> {
      // Stagger arrival so the wait queue order is known.
      co_await s.delay(Duration::microseconds(id + 1));
      co_await sm.acquire();
      ord.push_back(id);
      co_await s.delay(1_ms);
      sm.release();
    }(sim, sem, order, i));
  }
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SemaphoreTest, ReleaseWithoutWaitersRestoresCount) {
  Simulation sim;
  Semaphore sem(sim, 0);
  sem.release(3);
  EXPECT_EQ(sem.available(), 3);
}

// --- Queue --------------------------------------------------------------------

TEST(QueueTest, FifoDelivery) {
  Simulation sim;
  Queue<int> q(sim);
  std::vector<int> got;
  sim.spawn([](Queue<int>& qq, std::vector<int>& g) -> Task<void> {
    for (int i = 0; i < 3; ++i) g.push_back(co_await qq.get());
  }(q, got));
  sim.spawn([](Simulation& s, Queue<int>& qq) -> Task<void> {
    co_await s.delay(1_us);
    co_await qq.put(10);
    co_await qq.put(20);
    co_await s.delay(1_us);
    co_await qq.put(30);
  }(sim, q));
  sim.run_to_quiescence();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(QueueTest, GetBlocksUntilPut) {
  Simulation sim;
  Queue<int> q(sim);
  TimePoint got_at;
  sim.spawn([](Simulation& s, Queue<int>& qq, TimePoint& t) -> Task<void> {
    (void)co_await qq.get();
    t = s.now();
  }(sim, q, got_at));
  sim.spawn([](Simulation& s, Queue<int>& qq) -> Task<void> {
    co_await s.delay(7_ms);
    co_await qq.put(1);
  }(sim, q));
  sim.run_to_quiescence();
  EXPECT_EQ(got_at, TimePoint::origin() + 7_ms);
}

TEST(QueueTest, BoundedPutBlocksUntilSpace) {
  Simulation sim;
  Queue<int> q(sim, 1);
  TimePoint second_put_done;
  sim.spawn([](Simulation& s, Queue<int>& qq, TimePoint& t) -> Task<void> {
    co_await qq.put(1);
    co_await qq.put(2);  // blocks: capacity 1
    t = s.now();
  }(sim, q, second_put_done));
  sim.spawn([](Simulation& s, Queue<int>& qq) -> Task<void> {
    co_await s.delay(4_ms);
    EXPECT_EQ(co_await qq.get(), 1);
    EXPECT_EQ(co_await qq.get(), 2);
  }(sim, q));
  sim.run_to_quiescence();
  EXPECT_EQ(second_put_done, TimePoint::origin() + 4_ms);
}

TEST(QueueTest, TryPutRespectsCapacity) {
  Simulation sim;
  Queue<int> q(sim, 2);
  EXPECT_TRUE(q.try_put(1));
  EXPECT_TRUE(q.try_put(2));
  EXPECT_FALSE(q.try_put(3));
  EXPECT_EQ(q.size(), 2u);
}

// --- Barrier -------------------------------------------------------------------

TEST(BarrierTest, ReleasesWhenAllArrive) {
  Simulation sim;
  Barrier b(sim, 3);
  std::vector<TimePoint> released(3);
  std::vector<Task<void>> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.push_back([](Simulation& s, Barrier& bar, TimePoint& out,
                       int id) -> Task<void> {
      co_await s.delay(Duration::milliseconds(id * 10));
      co_await bar.arrive_and_wait();
      out = s.now();
    }(sim, b, released[i], i));
  }
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  // Everyone released at the time of the slowest arriver.
  for (const auto& t : released) {
    EXPECT_EQ(t, TimePoint::origin() + 20_ms);
  }
}

TEST(BarrierTest, IsReusableAcrossGenerations) {
  Simulation sim;
  Barrier b(sim, 2);
  std::vector<int> log;
  auto worker = [](Simulation& s, Barrier& bar, std::vector<int>& l, int id,
                   Duration pace) -> Task<void> {
    for (int round = 0; round < 3; ++round) {
      co_await s.delay(pace);
      co_await bar.arrive_and_wait();
      if (id == 0) l.push_back(round);
    }
  };
  sim.spawn(worker(sim, b, log, 0, 1_ms));
  sim.spawn(worker(sim, b, log, 1, 5_ms));
  sim.run_to_quiescence();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.now(), TimePoint::origin() + 15_ms);
}

TEST(BarrierTest, SingleParticipantNeverBlocks) {
  Simulation sim;
  Barrier b(sim, 1);
  bool done = false;
  sim.spawn([](Barrier& bar, bool& d) -> Task<void> {
    co_await bar.arrive_and_wait();
    d = true;
  }(b, done));
  sim.run_to_quiescence();
  EXPECT_TRUE(done);
}

// --- WaitGroup -------------------------------------------------------------------

TEST(WaitGroupTest, WaitsForAllDone) {
  Simulation sim;
  WaitGroup wg(sim);
  wg.add(3);
  TimePoint released;
  sim.spawn([](Simulation& s, WaitGroup& w, TimePoint& out) -> Task<void> {
    co_await w.wait();
    out = s.now();
  }(sim, wg, released));
  for (int i = 1; i <= 3; ++i) {
    sim.spawn([](Simulation& s, WaitGroup& w, int id) -> Task<void> {
      co_await s.delay(Duration::milliseconds(id));
      w.done();
    }(sim, wg, i));
  }
  sim.run_to_quiescence();
  EXPECT_EQ(released, TimePoint::origin() + 3_ms);
}

TEST(WaitGroupTest, WaitOnZeroPendingIsImmediate) {
  Simulation sim;
  WaitGroup wg(sim);
  bool done = false;
  sim.spawn([](WaitGroup& w, bool& d) -> Task<void> {
    co_await w.wait();
    d = true;
  }(wg, done));
  sim.run_to_quiescence();
  EXPECT_TRUE(done);
}

// --- all() -----------------------------------------------------------------------

TEST(AllTest, CompletesAtSlowestChild) {
  Simulation sim;
  std::vector<Task<void>> tasks;
  for (int i = 1; i <= 4; ++i) {
    tasks.push_back([](Simulation& s, int id) -> Task<void> {
      co_await s.delay(Duration::milliseconds(id * 10));
    }(sim, i));
  }
  TimePoint done_at;
  sim.spawn([](Simulation& s, std::vector<Task<void>> ts,
               TimePoint& out) -> Task<void> {
    co_await all(s, std::move(ts));
    out = s.now();
  }(sim, std::move(tasks), done_at));
  sim.run_to_quiescence();
  EXPECT_EQ(done_at, TimePoint::origin() + 40_ms);
}

TEST(AllTest, PropagatesChildException) {
  Simulation sim;
  std::vector<Task<void>> tasks;
  tasks.push_back([](Simulation& s) -> Task<void> {
    co_await s.delay(1_ms);
  }(sim));
  tasks.push_back([](Simulation& s) -> Task<void> {
    co_await s.delay(2_ms);
    throw std::runtime_error("child failed");
  }(sim));
  bool caught = false;
  sim.spawn([](Simulation& s, std::vector<Task<void>> ts,
               bool& c) -> Task<void> {
    try {
      co_await all(s, std::move(ts));
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(sim, std::move(tasks), caught));
  sim.run_to_quiescence();
  EXPECT_TRUE(caught);
}

TEST(AllTest, EmptyVectorCompletesImmediately) {
  Simulation sim;
  bool done = false;
  sim.spawn([](Simulation& s, bool& d) -> Task<void> {
    co_await all(s, {});
    d = true;
  }(sim, done));
  sim.run_to_quiescence();
  EXPECT_TRUE(done);
}

// --- Determinism ------------------------------------------------------------------

TEST(DeterminismTest, IdenticalRunsProduceIdenticalTraces) {
  auto run_once = [] {
    Simulation sim;
    Queue<int> q(sim);
    Semaphore sem(sim, 2);
    std::vector<std::pair<std::int64_t, int>> trace;
    for (int i = 0; i < 5; ++i) {
      sim.spawn([](Simulation& s, Queue<int>& qq, Semaphore& sm,
                   std::vector<std::pair<std::int64_t, int>>& tr,
                   int id) -> Task<void> {
        co_await sm.acquire();
        co_await s.delay(Duration::microseconds(id * 3 + 1));
        sm.release();
        co_await qq.put(id);
        tr.emplace_back(s.now().ns(), id);
      }(sim, q, sem, trace, i));
    }
    sim.spawn([](Queue<int>& qq,
                 std::vector<std::pair<std::int64_t, int>>& tr) -> Task<void> {
      for (int i = 0; i < 5; ++i) {
        const int v = co_await qq.get();
        tr.emplace_back(-1, v);
      }
    }(q, trace));
    sim.run_to_quiescence();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mdwf::sim
