// PR-6 streaming data plane tests: the pub/sub staging path (direct put
// into the subscriber's buffer), the KVS subscription handshake cold
// start, credit back-pressure and the spill overflow, duplicate-delivery
// dedup, power-loss semantics, the config binding (fail-fast unknown keys
// with suggestions, solution=stream), the connector factory across all
// four named solutions, the cross-thread determinism contract, and the
// acceptance gate: every named fault scenario completes with zero data
// loss under solution=stream.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mdwf/common/keyval.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/stream/stream.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/workflow/config.hpp"
#include "mdwf/workflow/connector.hpp"
#include "mdwf/workflow/ensemble.hpp"
#include "mdwf/workflow/testbed.hpp"

namespace mdwf::stream {
namespace {

using namespace mdwf::literals;
using sim::Task;
using workflow::EnsembleConfig;
using workflow::Solution;
using workflow::Testbed;
using workflow::TestbedParams;

TestbedParams two_node_params() {
  TestbedParams p;
  p.compute_nodes = 2;
  return p;
}

TEST(StreamTest, PathPrefixAndHandshakeKeys) {
  EXPECT_EQ(path_prefix("pair0007/frame00012"), "pair0007/");
  EXPECT_EQ(path_prefix("flat"), "flat");
  EXPECT_EQ(sub_key("pair0/"), "stream.sub/pair0/");
  EXPECT_EQ(pub_key("pair0/"), "stream.pub/pair0/");
}

TEST(StreamTest, DirectPutIsStagedHitWithNoSpill) {
  Testbed tb(two_node_params());
  auto& sim = tb.simulation();
  // Static route, as the ensemble wires it: consumer on node 1.
  tb.stream_domain().subscribe("pair0/", net::NodeId{1});
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  sim.spawn([](Testbed& t, perf::Recorder& pr, perf::Recorder& cr)
                -> Task<void> {
    StreamPublisher pub(*t.node(0).stream, pr);
    StreamSubscriber sub(*t.node(1).stream, cr);
    co_await pub.publish("pair0/frame0", Bytes::kib(644));
    co_await sub.fetch("pair0/frame0", Bytes::kib(644));
  }(tb, prec, crec));
  sim.run_to_quiescence();
  EXPECT_EQ(tb.node(0).stream->puts(), 1u);
  EXPECT_EQ(tb.node(1).stream->staged_hits(), 1u);
  EXPECT_EQ(tb.node(0).stream->spills(), 0u);
  // Drained: the reservation is released and the dedup set remembers it.
  EXPECT_EQ(tb.node(1).stream->staged_bytes().count(), 0u);
  EXPECT_FALSE(tb.node(1).stream->staged("pair0/frame0"));
}

TEST(StreamTest, ColdStartResolvesSubscriberThroughKvs) {
  // No static route: the subscriber announces its prefix on the KVS and
  // the publisher's bounded handshake finds it.
  Testbed tb(two_node_params());
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  sim.spawn([](Testbed& t, perf::Recorder& r) -> Task<void> {
    StreamSubscriber sub(*t.node(1).stream, r);
    co_await sub.fetch("pair0/frame0", Bytes::kib(644));
  }(tb, crec));
  sim.spawn([](Testbed& t, perf::Recorder& r) -> Task<void> {
    // Give the subscription announcement time to commit and turn visible.
    co_await t.simulation().delay(20_ms);
    StreamPublisher pub(*t.node(0).stream, r);
    co_await pub.publish("pair0/frame0", Bytes::kib(644));
  }(tb, prec));
  sim.run_to_quiescence();
  EXPECT_EQ(tb.node(1).stream->staged_hits(), 1u);
  EXPECT_EQ(tb.node(0).stream->spills(), 0u);
}

TEST(StreamTest, UnresolvedSubscriberSpillsAndConsumerRefetches) {
  // Publisher first (nobody subscribed): the put degrades to the spill
  // replica; the late consumer is satisfied from it transparently.
  Testbed tb(two_node_params());
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  sim.spawn([](Testbed& t, perf::Recorder& pr, perf::Recorder& cr)
                -> Task<void> {
    StreamPublisher pub(*t.node(0).stream, pr);
    co_await pub.publish("pair0/frame0", Bytes::kib(644));
    EXPECT_EQ(t.node(0).stream->spills(), 1u);
    StreamSubscriber sub(*t.node(1).stream, cr);
    co_await sub.fetch("pair0/frame0", Bytes::kib(644));
  }(tb, prec, crec));
  sim.run_to_quiescence();
  EXPECT_EQ(tb.node(1).stream->staged_hits(), 0u);
  EXPECT_EQ(tb.node(1).stream->spill_reads(), 1u);
}

TEST(StreamTest, ExhaustedCreditWindowBackpressuresThenSpills) {
  TestbedParams tp = two_node_params();
  tp.stream.credits = 2;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  tb.stream_domain().subscribe("pair0/", net::NodeId{1});
  perf::Recorder prec(sim, "p");
  sim.spawn([](Testbed& t, perf::Recorder& r) -> Task<void> {
    StreamPublisher pub(*t.node(0).stream, r);
    // Nobody drains: the third put exhausts the 2-credit window, waits
    // out the bounded back-pressure, and overflows to the spill.
    for (int f = 0; f < 3; ++f) {
      co_await pub.publish("pair0/frame" + std::to_string(f),
                           Bytes::kib(644));
    }
  }(tb, prec));
  sim.run_to_quiescence();
  EXPECT_EQ(tb.node(1).stream->staged_bytes(), Bytes::kib(2 * 644));
  EXPECT_EQ(tb.node(0).stream->credit_waits(), 1u);
  EXPECT_EQ(tb.node(0).stream->backpressure_stalls(), 1u);
  EXPECT_EQ(tb.node(0).stream->spills(), 1u);
}

TEST(StreamTest, FullBufferBackpressuresThenSpills) {
  TestbedParams tp = two_node_params();
  tp.stream.buffer_capacity = Bytes::mib(1);
  Testbed tb(tp);
  auto& sim = tb.simulation();
  tb.stream_domain().subscribe("pair0/", net::NodeId{1});
  perf::Recorder prec(sim, "p");
  sim.spawn([](Testbed& t, perf::Recorder& r) -> Task<void> {
    StreamPublisher pub(*t.node(0).stream, r);
    // Two 644 KiB frames against a 1 MiB buffer: the second cannot
    // reserve staging space even though a credit is free.
    co_await pub.publish("pair0/frame0", Bytes::kib(644));
    co_await pub.publish("pair0/frame1", Bytes::kib(644));
  }(tb, prec));
  sim.run_to_quiescence();
  EXPECT_EQ(tb.node(1).stream->staged_bytes(), Bytes::kib(644));
  EXPECT_EQ(tb.node(0).stream->spills(), 1u);
  EXPECT_EQ(tb.node(0).stream->backpressure_stalls(), 1u);
}

TEST(StreamTest, DuplicateDeliveryIsDropped) {
  Testbed tb(two_node_params());
  auto& sim = tb.simulation();
  tb.stream_domain().subscribe("pair0/", net::NodeId{1});
  perf::Recorder prec(sim, "p");
  sim.spawn([](Testbed& t, perf::Recorder& r) -> Task<void> {
    StreamPublisher pub(*t.node(0).stream, r);
    co_await pub.publish("pair0/frame0", Bytes::kib(644));
    // A retransmitted put of the same frame must not double-stage.
    co_await pub.publish("pair0/frame0", Bytes::kib(644));
  }(tb, prec));
  sim.run_to_quiescence();
  EXPECT_EQ(tb.node(1).stream->dup_drops(), 1u);
  EXPECT_EQ(tb.node(1).stream->staged_bytes(), Bytes::kib(644));
}

TEST(StreamTest, PowerLossDropsStagedStateAndCountsIt) {
  Testbed tb(two_node_params());
  auto& sim = tb.simulation();
  tb.stream_domain().subscribe("pair0/", net::NodeId{1});
  perf::Recorder prec(sim, "p");
  sim.spawn([](Testbed& t, perf::Recorder& r) -> Task<void> {
    StreamPublisher pub(*t.node(0).stream, r);
    co_await pub.publish("pair0/frame0", Bytes::kib(644));
  }(tb, prec));
  sim.run_to_quiescence();
  ASSERT_TRUE(tb.node(1).stream->staged("pair0/frame0"));
  tb.node(1).stream->on_power_loss();
  EXPECT_FALSE(tb.node(1).stream->staged("pair0/frame0"));
  EXPECT_EQ(tb.node(1).stream->staged_bytes().count(), 0u);
  EXPECT_EQ(tb.node(1).stream->crash_drops(), 1u);
}

// --- Config binding ---------------------------------------------------------

TEST(StreamConfigTest, StreamSolutionParsesAndKeepsSplitPlacement) {
  KeyValueConfig cfg;
  cfg.set("solution", "stream");
  cfg.set("pairs", "2");
  EnsembleConfig defaults;
  defaults.nodes = 2;
  const EnsembleConfig c = workflow::parse_ensemble_config(cfg, defaults);
  EXPECT_EQ(c.solution, Solution::kStream);
  EXPECT_EQ(c.nodes, 2u);
}

TEST(StreamConfigTest, UnknownKeyFailsFastWithSuggestion) {
  KeyValueConfig cfg;
  cfg.set("solution", "dyad");
  cfg.set("framse", "8");
  try {
    (void)workflow::parse_ensemble_config(cfg, EnsembleConfig{});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("framse"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("did you mean 'frames'"),
              std::string::npos);
  }
}

TEST(StreamConfigTest, UnknownSolutionNameSuggestsStream) {
  KeyValueConfig cfg;
  cfg.set("solution", "strem");
  try {
    (void)workflow::parse_ensemble_config(cfg, EnsembleConfig{});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'stream'"),
              std::string::npos);
  }
}

TEST(StreamConfigTest, AnalyticsScaleParsesAndRejectsNonPositive) {
  KeyValueConfig cfg;
  cfg.set("solution", "dyad");
  cfg.set("analytics", "2.5");
  const EnsembleConfig c =
      workflow::parse_ensemble_config(cfg, EnsembleConfig{});
  EXPECT_DOUBLE_EQ(c.workload.analytics_scale, 2.5);

  KeyValueConfig bad;
  bad.set("analytics", "0");
  EXPECT_THROW(
      (void)workflow::parse_ensemble_config(bad, EnsembleConfig{}),
      ConfigError);
}

// --- Connector factory & determinism across every named solution ------------

struct SolutionCase {
  Solution solution;
  const char* name;
};

class AllSolutionsTest : public ::testing::TestWithParam<SolutionCase> {};

INSTANTIATE_TEST_SUITE_P(
    Solutions, AllSolutionsTest,
    ::testing::Values(SolutionCase{Solution::kDyad, "dyad"},
                      SolutionCase{Solution::kXfs, "xfs"},
                      SolutionCase{Solution::kLustre, "lustre"},
                      SolutionCase{Solution::kStream, "stream"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST_P(AllSolutionsTest, FactoryBuildsWorkingConnectorPair) {
  const SolutionCase sc = GetParam();
  TestbedParams tp;
  tp.compute_nodes = sc.solution == Solution::kXfs ? 1u : 2u;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  const std::uint32_t cnode = tp.compute_nodes - 1;
  if (sc.solution == Solution::kStream) {
    tb.stream_domain().subscribe("pair0/", net::NodeId{cnode});
  }
  workflow::ExplicitSync sync(sim);
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  auto producer = workflow::make_connector(
      {.testbed = &tb, .solution = sc.solution, .node = 0, .sync = &sync,
       .recorder = &prec});
  auto consumer = workflow::make_connector(
      {.testbed = &tb, .solution = sc.solution, .node = cnode, .sync = &sync,
       .recorder = &crec});
  ASSERT_NE(producer, nullptr);
  ASSERT_NE(consumer, nullptr);
  bool consumed = false;
  sim.spawn([](workflow::Connector& p, workflow::Connector& c,
               bool& done) -> Task<void> {
    co_await p.put("pair0/frame0", Bytes::kib(644), 0);
    co_await c.get("pair0/frame0", Bytes::kib(644), 0);
    c.acknowledge(0);
    // Manual-sync solutions block here until the consumer acknowledged;
    // DYAD and stream return immediately.
    co_await p.producer_sync(0);
    done = true;
  }(*producer, *consumer, consumed));
  sim.run_to_quiescence();
  EXPECT_TRUE(consumed) << workflow::to_string(sc.solution);
}

TEST_P(AllSolutionsTest, MergedEnsembleOutputByteIdenticalAcrossThreads) {
  const SolutionCase sc = GetParam();
  for (const std::uint64_t seed : {7ull, 1234ull}) {
    // Tiny 2-rank ensemble (one producer/consumer pair).
    EnsembleConfig c;
    c.solution = sc.solution;
    c.pairs = 1;
    c.nodes = sc.solution == Solution::kXfs ? 1 : 2;
    c.workload.frames = 6;
    c.repetitions = 3;
    c.base_seed = seed;
    const sweep::SweepResult one =
        sweep::run_sweep({{sc.name, c}, {std::string(sc.name) + "2", c}}, 1);
    const sweep::SweepResult four =
        sweep::run_sweep({{sc.name, c}, {std::string(sc.name) + "2", c}}, 4);
    EXPECT_EQ(one.to_csv(), four.to_csv())
        << sc.name << " seed " << seed;
  }
}

// --- Acceptance: every named fault scenario, zero data loss -----------------

class StreamFaultScenarioTest : public ::testing::TestWithParam<const char*> {
};

INSTANTIATE_TEST_SUITE_P(Scenarios, StreamFaultScenarioTest,
                         ::testing::Values("node-crash", "rank-kill",
                                           "bit-flip", "slow-disk",
                                           "lossy-link", "overload"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST_P(StreamFaultScenarioTest, CompletesWithZeroDataLoss) {
  // Built through the shared config binding, exactly as mdwf_run would:
  // faults= arms retries, integrity, and checkpointing per the cross-key
  // rules (and durable spill-before-stage when crash windows are planned).
  KeyValueConfig cfg;
  cfg.set("solution", "stream");
  cfg.set("pairs", "2");
  cfg.set("frames", "8");
  cfg.set("reps", "2");
  cfg.set("faults", GetParam());
  EnsembleConfig defaults;
  defaults.nodes = 2;
  const EnsembleConfig c = workflow::parse_ensemble_config(cfg, defaults);
  const workflow::EnsembleResult r = workflow::run_ensemble(c);
  EXPECT_EQ(r.counters.get("frames_consumed"), 2u * 8u * 2u) << GetParam();
  EXPECT_EQ(r.counters.get("integrity_unrecovered"), 0u) << GetParam();
  // And deterministically: the parallel runner merges to the same bytes.
  const sweep::SweepResult one = sweep::run_sweep({{GetParam(), c}}, 1);
  const sweep::SweepResult four = sweep::run_sweep({{GetParam(), c}}, 4);
  EXPECT_EQ(one.to_csv(), four.to_csv()) << GetParam();
}

}  // namespace
}  // namespace mdwf::stream
