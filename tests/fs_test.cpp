// Unit and property tests for the filesystem layer: extent allocator, file
// locks, the XFS-like local filesystem, and the Lustre model.
#include <gtest/gtest.h>

#include <vector>

#include "mdwf/common/rng.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/fs/extent_allocator.hpp"
#include "mdwf/fs/file_lock.hpp"
#include "mdwf/fs/interference.hpp"
#include "mdwf/fs/local_fs.hpp"
#include "mdwf/fs/lustre.hpp"
#include "mdwf/sim/primitives.hpp"

namespace mdwf::fs {
namespace {

using namespace mdwf::literals;
using sim::Simulation;
using sim::Task;

// --- ExtentAllocator ---------------------------------------------------------

TEST(ExtentAllocatorTest, AllocatesContiguouslyWhenPossible) {
  ExtentAllocator a(Bytes(1000));
  const auto e1 = a.allocate(Bytes(100));
  ASSERT_EQ(e1.size(), 1u);
  EXPECT_EQ(e1[0], (Extent{0, 100}));
  const auto e2 = a.allocate(Bytes(200));
  ASSERT_EQ(e2.size(), 1u);
  EXPECT_EQ(e2[0], (Extent{100, 200}));
  EXPECT_EQ(a.free_bytes(), Bytes(700));
  EXPECT_TRUE(a.invariants_hold());
}

TEST(ExtentAllocatorTest, ReleaseCoalesces) {
  ExtentAllocator a(Bytes(1000));
  const auto e1 = a.allocate(Bytes(100));
  const auto e2 = a.allocate(Bytes(100));
  const auto e3 = a.allocate(Bytes(100));
  a.release(e1);
  a.release(e3);
  EXPECT_EQ(a.free_extent_count(), 2u);  // [0,100) and [200,1000)
  a.release(e2);                         // bridges the gap
  EXPECT_EQ(a.free_extent_count(), 1u);
  EXPECT_EQ(a.free_bytes(), Bytes(1000));
  EXPECT_TRUE(a.invariants_hold());
}

TEST(ExtentAllocatorTest, FragmentedAllocationSpansExtents) {
  ExtentAllocator a(Bytes(300));
  const auto e1 = a.allocate(Bytes(100));
  const auto e2 = a.allocate(Bytes(100));
  const auto e3 = a.allocate(Bytes(100));
  a.release(e1);
  a.release(e3);
  (void)e2;
  // 200 bytes free but split 100+100: allocation must span both.
  const auto big = a.allocate(Bytes(150));
  EXPECT_EQ(big.size(), 2u);
  EXPECT_EQ(a.free_bytes(), Bytes(50));
  EXPECT_TRUE(a.invariants_hold());
}

TEST(ExtentAllocatorTest, ExhaustionThrowsAndRollsBack) {
  ExtentAllocator a(Bytes(100));
  (void)a.allocate(Bytes(60));
  EXPECT_THROW((void)a.allocate(Bytes(50)), std::bad_alloc);
  EXPECT_EQ(a.free_bytes(), Bytes(40));
  EXPECT_TRUE(a.invariants_hold());
}

TEST(ExtentAllocatorTest, LargestFreeExtentTracksFragmentation) {
  ExtentAllocator a(Bytes(1000));
  const auto e1 = a.allocate(Bytes(400));
  (void)a.allocate(Bytes(200));
  a.release(e1);
  EXPECT_EQ(a.largest_free_extent(), Bytes(400));
}

// Property: random alloc/release sequences preserve invariants and
// conservation.
class ExtentAllocatorProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExtentAllocatorProperty, RandomOpsPreserveInvariants) {
  Rng rng(GetParam());
  ExtentAllocator a(Bytes(1 << 20));
  std::vector<std::vector<Extent>> live;
  Bytes live_bytes = Bytes::zero();
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.bernoulli(0.55)) {
      const Bytes want(1 + rng.next_below(8192));
      if (want <= a.free_bytes()) {
        live.push_back(a.allocate(want));
        live_bytes += want;
      }
    } else {
      const auto idx = rng.next_below(live.size());
      Bytes freed = Bytes::zero();
      for (const auto& e : live[idx]) freed += Bytes(e.length);
      a.release(live[idx]);
      live_bytes -= freed;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_TRUE(a.invariants_hold());
    ASSERT_EQ(a.free_bytes() + live_bytes, Bytes(1 << 20));
  }
  for (const auto& ext : live) a.release(ext);
  EXPECT_EQ(a.free_bytes(), Bytes(1 << 20));
  EXPECT_EQ(a.free_extent_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentAllocatorProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- FileLock -----------------------------------------------------------------

TEST(FileLockTest, SharedHoldersCoexist) {
  Simulation sim;
  FileLock lock(sim);
  int concurrent = 0, peak = 0;
  std::vector<Task<void>> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.push_back([](Simulation& s, FileLock& l, int& c, int& p) -> Task<void> {
      co_await l.lock_shared();
      ++c;
      p = std::max(p, c);
      co_await s.delay(1_ms);
      --c;
      l.unlock_shared();
    }(sim, lock, concurrent, peak));
  }
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  EXPECT_EQ(peak, 3);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 1_ms);
}

TEST(FileLockTest, ExclusiveExcludesReaders) {
  Simulation sim;
  FileLock lock(sim);
  TimePoint reader_got;
  sim.spawn([](Simulation& s, FileLock& l) -> Task<void> {
    co_await l.lock_exclusive();
    co_await s.delay(5_ms);
    l.unlock_exclusive();
  }(sim, lock));
  sim.spawn([](Simulation& s, FileLock& l, TimePoint& t) -> Task<void> {
    co_await s.delay(1_ms);  // arrive while writer holds
    co_await l.lock_shared();
    t = s.now();
    l.unlock_shared();
  }(sim, lock, reader_got));
  sim.run_to_quiescence();
  EXPECT_EQ(reader_got, TimePoint::origin() + 5_ms);
}

TEST(FileLockTest, QueuedWriterBlocksLaterReaders) {
  Simulation sim;
  FileLock lock(sim);
  std::vector<int> order;
  // Reader A holds; writer W queues; reader B arrives later and must wait
  // for W (no writer starvation).
  sim.spawn([](Simulation& s, FileLock& l, std::vector<int>& o) -> Task<void> {
    co_await l.lock_shared();
    o.push_back(0);
    co_await s.delay(4_ms);
    l.unlock_shared();
  }(sim, lock, order));
  sim.spawn([](Simulation& s, FileLock& l, std::vector<int>& o) -> Task<void> {
    co_await s.delay(1_ms);
    co_await l.lock_exclusive();
    o.push_back(1);
    co_await s.delay(2_ms);
    l.unlock_exclusive();
  }(sim, lock, order));
  sim.spawn([](Simulation& s, FileLock& l, std::vector<int>& o) -> Task<void> {
    co_await s.delay(2_ms);
    co_await l.lock_shared();
    o.push_back(2);
    l.unlock_shared();
  }(sim, lock, order));
  sim.run_to_quiescence();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(FileLockTest, TryLockVariants) {
  Simulation sim;
  FileLock lock(sim);
  EXPECT_TRUE(lock.try_lock_exclusive());
  EXPECT_FALSE(lock.try_lock_shared());
  EXPECT_FALSE(lock.try_lock_exclusive());
  lock.unlock_exclusive();
  EXPECT_TRUE(lock.try_lock_shared());
  EXPECT_TRUE(lock.try_lock_shared());
  EXPECT_FALSE(lock.try_lock_exclusive());
  lock.unlock_shared();
  lock.unlock_shared();
  EXPECT_TRUE(lock.try_lock_exclusive());
}

// --- LocalFs -------------------------------------------------------------------

struct LocalFsFixture {
  Simulation sim;
  storage::BlockDevice device;
  storage::PageCache cache;
  LocalFs fs;

  LocalFsFixture()
      : device(sim,
               storage::BlockDeviceParams{.read_bandwidth_bps = 1e9,
                                          .write_bandwidth_bps = 1e9,
                                          .op_latency = 10_us,
                                          .queue_depth = 8,
                                          .capacity = Bytes::mib(64)},
               "nvme"),
        cache(sim,
              storage::PageCacheParams{.capacity = Bytes::mib(8),
                                       .page_size = Bytes::kib(256),
                                       .memcpy_bps = 8e9},
              device),
        fs(sim, LocalFsParams{}, device, cache) {}
};

TEST(LocalFsTest, CreateWriteReadRoundTrip) {
  LocalFsFixture f;
  f.sim.spawn([](LocalFsFixture& fx) -> Task<void> {
    const InodeId ino = co_await fx.fs.create("pair0/frame000");
    co_await fx.fs.write(ino, Bytes::zero(), Bytes::kib(644));
    EXPECT_EQ(fx.fs.size(ino), Bytes::kib(644));
    co_await fx.fs.read(ino, Bytes::zero(), Bytes::kib(644));
    EXPECT_TRUE(fx.fs.exists("pair0/frame000"));
    EXPECT_EQ(fx.fs.stat("pair0/frame000"), Bytes::kib(644));
  }(f));
  f.sim.run_to_quiescence();
}

TEST(LocalFsTest, CreateDuplicateThrows) {
  LocalFsFixture f;
  f.sim.spawn([](LocalFsFixture& fx) -> Task<void> {
    (void)co_await fx.fs.create("a");
    bool threw = false;
    try {
      (void)co_await fx.fs.create("a");
    } catch (const FsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
  f.sim.run_to_quiescence();
}

TEST(LocalFsTest, OpenMissingThrows) {
  LocalFsFixture f;
  f.sim.spawn([](LocalFsFixture& fx) -> Task<void> {
    bool threw = false;
    try {
      (void)co_await fx.fs.open("nope");
    } catch (const FsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
  f.sim.run_to_quiescence();
}

TEST(LocalFsTest, ReadPastEofThrows) {
  LocalFsFixture f;
  f.sim.spawn([](LocalFsFixture& fx) -> Task<void> {
    const InodeId ino = co_await fx.fs.create("short");
    co_await fx.fs.write(ino, Bytes::zero(), Bytes(100));
    bool threw = false;
    try {
      co_await fx.fs.read(ino, Bytes(50), Bytes(100));
    } catch (const FsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
  f.sim.run_to_quiescence();
}

TEST(LocalFsTest, UnlinkReleasesSpaceAndCache) {
  LocalFsFixture f;
  f.sim.spawn([](LocalFsFixture& fx) -> Task<void> {
    const Bytes before = fx.fs.free_bytes();
    const InodeId ino = co_await fx.fs.create("tmp");
    co_await fx.fs.write(ino, Bytes::zero(), Bytes::mib(1));
    EXPECT_LT(fx.fs.free_bytes(), before);
    co_await fx.fs.unlink("tmp");
    EXPECT_EQ(fx.fs.free_bytes(), before);
    EXPECT_FALSE(fx.fs.exists("tmp"));
    EXPECT_EQ(fx.cache.resident_pages(), 0u);
  }(f));
  f.sim.run_to_quiescence();
}

TEST(LocalFsTest, ListByPrefix) {
  LocalFsFixture f;
  f.sim.spawn([](LocalFsFixture& fx) -> Task<void> {
    (void)co_await fx.fs.create("pair0/frame000");
    (void)co_await fx.fs.create("pair0/frame001");
    (void)co_await fx.fs.create("pair1/frame000");
    const auto pair0 = fx.fs.list("pair0/");
    EXPECT_EQ(pair0.size(), 2u);
    EXPECT_EQ(fx.fs.list("pair").size(), 3u);
    EXPECT_TRUE(fx.fs.list("zzz").empty());
  }(f));
  f.sim.run_to_quiescence();
}

TEST(LocalFsTest, JournalCommitsOnMetadataOps) {
  LocalFsFixture f;
  f.sim.spawn([](LocalFsFixture& fx) -> Task<void> {
    const auto before = fx.fs.journal_commits();
    const InodeId ino = co_await fx.fs.create("j");      // +1
    co_await fx.fs.write(ino, Bytes::zero(), Bytes(10));  // +1 (extend)
    co_await fx.fs.write(ino, Bytes::zero(), Bytes(10));  // +0 (no extend)
    co_await fx.fs.unlink("j");                           // +1
    EXPECT_EQ(fx.fs.journal_commits() - before, 3u);
  }(f));
  f.sim.run_to_quiescence();
}

TEST(LocalFsTest, BufferedWriteFasterThanDeviceWrite) {
  LocalFsFixture f;
  Duration write_time;
  f.sim.spawn([](LocalFsFixture& fx, Duration& out) -> Task<void> {
    const InodeId ino = co_await fx.fs.create("fast");
    const TimePoint t0 = fx.sim.now();
    co_await fx.fs.write(ino, Bytes::zero(), Bytes::mib(1));
    out = fx.sim.now() - t0;
  }(f, write_time));
  f.sim.run_to_quiescence();
  // 1 MiB at 8 GB/s memcpy ~= 131 us (+ journal+alloc); raw device would be
  // ~1 ms.  Assert we are well under device speed.
  EXPECT_LT(write_time, 500_us);
  EXPECT_GT(write_time, 100_us);
}

TEST(LocalFsTest, FsyncFlushesDirtyPages) {
  LocalFsFixture f;
  f.sim.spawn([](LocalFsFixture& fx) -> Task<void> {
    const InodeId ino = co_await fx.fs.create("d");
    co_await fx.fs.write(ino, Bytes::zero(), Bytes::kib(512));
    const auto written_before = fx.device.bytes_written().count();
    co_await fx.fs.fsync(ino);
    EXPECT_GT(fx.device.bytes_written().count(), written_before);
    EXPECT_EQ(fx.cache.dirty_pages(), 0u);
  }(f));
  f.sim.run_to_quiescence();
}

TEST(LocalFsTest, PerFileLocksAreIndependent) {
  LocalFsFixture f;
  f.sim.spawn([](LocalFsFixture& fx) -> Task<void> {
    const InodeId a = co_await fx.fs.create("a");
    const InodeId b = co_await fx.fs.create("b");
    EXPECT_TRUE(fx.fs.lock(a).try_lock_exclusive());
    EXPECT_TRUE(fx.fs.lock(b).try_lock_exclusive());
    fx.fs.lock(a).unlock_exclusive();
    fx.fs.lock(b).unlock_exclusive();
  }(f));
  f.sim.run_to_quiescence();
}

// --- Lustre ---------------------------------------------------------------------

struct LustreFixture {
  Simulation sim;
  net::Network network;
  LustreServers servers;

  static net::NetworkParams net_params() {
    net::NetworkParams p;
    p.nic_bandwidth_bps = 3.2e9;
    p.latency = 2_us;
    return p;
  }
  static LustreParams lustre_params() {
    LustreParams p;
    p.ost_count = 4;
    return p;
  }
  // Nodes 0..1 compute, 2 MDS, 3..6 OSTs.
  LustreFixture()
      : network(sim, net_params(), 7),
        servers(sim, lustre_params(), network, net::NodeId{2},
                {net::NodeId{3}, net::NodeId{4}, net::NodeId{5},
                 net::NodeId{6}}) {}
};

TEST(LustreTest, CreateWriteReadAcrossNodes) {
  LustreFixture f;
  f.sim.spawn([](LustreFixture& fx) -> Task<void> {
    LustreClient writer(fx.sim, fx.servers, net::NodeId{0});
    LustreClient reader(fx.sim, fx.servers, net::NodeId{1});
    auto h = co_await writer.create("frames/f0");
    co_await writer.write(h, Bytes::zero(), Bytes::kib(644));
    co_await writer.close(h, /*wrote=*/true);
    auto h2 = co_await reader.open("frames/f0");
    co_await reader.read(h2, Bytes::zero(), Bytes::kib(644));
    const auto sz = co_await reader.stat("frames/f0");
    EXPECT_EQ(sz, Bytes::kib(644));
  }(f));
  f.sim.run_to_quiescence();
}

TEST(LustreTest, WriteTouchesOstDevice) {
  // Client write-back caching defers the flush, but every byte must still
  // land on an OST device by quiescence.
  LustreFixture f;
  f.sim.spawn([](LustreFixture& fx) -> Task<void> {
    LustreClient c(fx.sim, fx.servers, net::NodeId{0});
    auto h = co_await c.create("x");
    co_await c.write(h, Bytes::zero(), Bytes::mib(2));
  }(f));
  f.sim.run_to_quiescence();
  Bytes total = Bytes::zero();
  for (std::uint32_t i = 0; i < f.servers.ost_count(); ++i) {
    total += f.servers.ost_device(i).bytes_written();
  }
  EXPECT_EQ(total, Bytes::mib(2));
}

TEST(LustreTest, BufferedWriteReturnsBeforeFlush) {
  LustreFixture f;
  Duration write_time;
  f.sim.spawn([](LustreFixture& fx, Duration& out) -> Task<void> {
    LustreClient c(fx.sim, fx.servers, net::NodeId{0});
    auto h = co_await c.create("wb");
    const TimePoint t0 = fx.sim.now();
    co_await c.write(h, Bytes::zero(), Bytes::mib(16));
    out = fx.sim.now() - t0;
  }(f, write_time));
  f.sim.run_to_quiescence();
  // 16 MiB at 5 GB/s client cache ~= 3.4 ms; a synchronous OST round-trip
  // would be far slower than the copy alone.
  EXPECT_LT(write_time, 4_ms);
}

TEST(LustreTest, WriteBeyondGrantIsSynchronous) {
  LustreFixture f;
  Duration write_time;
  f.sim.spawn([](LustreFixture& fx, Duration& out) -> Task<void> {
    LustreClient c(fx.sim, fx.servers, net::NodeId{0});
    auto h = co_await c.create("big");
    const TimePoint t0 = fx.sim.now();
    co_await c.write(h, Bytes::zero(), Bytes::mib(64));  // > 32 MiB grant
    out = fx.sim.now() - t0;
    // The OSTs saw the data before write returned.
    Bytes total = Bytes::zero();
    for (std::uint32_t i = 0; i < fx.servers.ost_count(); ++i) {
      total += fx.servers.ost_device(i).bytes_written();
    }
    EXPECT_EQ(total, Bytes::mib(64));
  }(f, write_time));
  f.sim.run_to_quiescence();
  EXPECT_GT(write_time, 20_ms);  // 64 MiB over ~3 GB/s paths
}

TEST(LustreTest, FilesDistributeRoundRobinAcrossOsts) {
  LustreFixture f;
  f.sim.spawn([](LustreFixture& fx) -> Task<void> {
    LustreClient c(fx.sim, fx.servers, net::NodeId{0});
    for (int i = 0; i < 8; ++i) {
      auto h = co_await c.create("f" + std::to_string(i));
      co_await c.write(h, Bytes::zero(), Bytes::mib(1));
    }
  }(f));
  f.sim.run_to_quiescence();
  // 8 single-stripe files over 4 OSTs -> 2 MiB each once flushed.
  for (std::uint32_t i = 0; i < f.servers.ost_count(); ++i) {
    EXPECT_EQ(f.servers.ost_device(i).bytes_written(), Bytes::mib(2));
  }
}

TEST(LustreTest, StripingSplitsLargeFileAcrossOsts) {
  Simulation sim;
  net::Network network(sim, LustreFixture::net_params(), 7);
  LustreParams striped = LustreFixture::lustre_params();
  striped.stripe_count = 4;
  LustreServers servers(sim, striped, network, net::NodeId{2},
                        {net::NodeId{3}, net::NodeId{4}, net::NodeId{5},
                         net::NodeId{6}});
  sim.spawn([](Simulation& s, LustreServers& sv) -> Task<void> {
    LustreClient c(s, sv, net::NodeId{0});
    auto h = co_await c.create("big");
    co_await c.write(h, Bytes::zero(), Bytes::mib(8));
  }(sim, servers));
  sim.run_to_quiescence();
  for (std::uint32_t i = 0; i < servers.ost_count(); ++i) {
    EXPECT_EQ(servers.ost_device(i).bytes_written(), Bytes::mib(2));
  }
}

TEST(LustreTest, ReadPastEofThrows) {
  LustreFixture f;
  f.sim.spawn([](LustreFixture& fx) -> Task<void> {
    LustreClient c(fx.sim, fx.servers, net::NodeId{0});
    auto h = co_await c.create("eof");
    co_await c.write(h, Bytes::zero(), Bytes(100));
    bool threw = false;
    try {
      co_await c.read(h, Bytes(50), Bytes(100));
    } catch (const FsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
  f.sim.run_to_quiescence();
}

TEST(LustreTest, OpenMissingThrows) {
  LustreFixture f;
  f.sim.spawn([](LustreFixture& fx) -> Task<void> {
    LustreClient c(fx.sim, fx.servers, net::NodeId{0});
    bool threw = false;
    try {
      (void)co_await c.open("ghost");
    } catch (const FsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    EXPECT_FALSE(co_await c.exists("ghost"));
  }(f));
  f.sim.run_to_quiescence();
}

TEST(LustreTest, PutIsSlowerThanLocalBufferedWrite) {
  // The core contrast of the paper: a Lustre frame put (create + write +
  // publishing close) pays MDS RPCs even when the data itself is buffered.
  LustreFixture f;
  Duration lustre_time;
  f.sim.spawn([](LustreFixture& fx, Duration& out) -> Task<void> {
    LustreClient c(fx.sim, fx.servers, net::NodeId{0});
    const TimePoint t0 = fx.sim.now();
    auto h = co_await c.create("slow");
    co_await c.write(h, Bytes::zero(), Bytes::kib(644));
    co_await c.close(h, true);
    out = fx.sim.now() - t0;
  }(f, lustre_time));
  f.sim.run_to_quiescence();
  EXPECT_GT(lustre_time, 500_us);  // local buffered write is ~100-200 us
}

TEST(LustreTest, UnlinkRemovesFile) {
  LustreFixture f;
  f.sim.spawn([](LustreFixture& fx) -> Task<void> {
    LustreClient c(fx.sim, fx.servers, net::NodeId{0});
    (void)co_await c.create("gone");
    co_await c.unlink("gone");
    EXPECT_FALSE(co_await c.exists("gone"));
  }(f));
  f.sim.run_to_quiescence();
}

TEST(LustreTest, MdsQueueingSerializesBeyondConcurrency) {
  Simulation sim;
  net::NetworkParams np;
  np.latency = Duration::zero();
  np.control_message_size = Bytes(0);
  net::Network network(sim, np, 10);
  LustreParams lp;
  lp.ost_count = 1;
  lp.mds_concurrency = 1;
  lp.mds_service = 1_ms;
  lp.client_rpc_cpu = Duration::zero();
  LustreServers servers(sim, lp, network, net::NodeId{8}, {net::NodeId{9}});
  std::vector<Task<void>> tasks;
  for (std::uint32_t i = 0; i < 4; ++i) {
    tasks.push_back([](Simulation& s, LustreServers& sv,
                       std::uint32_t node) -> Task<void> {
      LustreClient c(s, sv, net::NodeId{node});
      (void)co_await c.create("n" + std::to_string(node));
    }(sim, servers, i));
  }
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  // 4 creates, MDS concurrency 1, 1 ms service -> 4 ms.
  EXPECT_EQ(sim.now(), TimePoint::origin() + 4_ms);
  EXPECT_EQ(servers.mds_requests(), 4u);
}

// --- Interference ------------------------------------------------------------------

TEST(InterferenceTest, EpisodesApplyAndClearLoad) {
  LustreFixture f;
  InterferenceParams ip;
  ip.mean_interarrival = 10_ms;
  const TimePoint horizon = TimePoint::origin() + 1_s;
  f.sim.spawn(run_ost_interference(f.sim, f.servers, ip, Rng(42), horizon));
  f.sim.run_to_quiescence();
  // After the horizon all episodes eventually expire; devices return to
  // full speed.  Verify by timing a read.
  Duration t_read;
  f.sim.spawn([](LustreFixture& fx, Duration& out) -> Task<void> {
    LustreClient c(fx.sim, fx.servers, net::NodeId{0});
    auto h = co_await c.create("post");
    co_await c.write(h, Bytes::zero(), Bytes::mib(1));
    const TimePoint t0 = fx.sim.now();
    co_await c.read(h, Bytes::zero(), Bytes::mib(1));
    out = fx.sim.now() - t0;
  }(f, t_read));
  f.sim.run_to_quiescence();
  EXPECT_LT(t_read, 2_ms);
}

TEST(InterferenceTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    LustreFixture f;
    InterferenceParams ip;
    ip.mean_interarrival = 5_ms;
    f.sim.spawn(run_ost_interference(f.sim, f.servers, ip, Rng(7),
                                     TimePoint::origin() + 200_ms));
    Duration io_time;
    f.sim.spawn([](LustreFixture& fx, Duration& out) -> Task<void> {
      LustreClient c(fx.sim, fx.servers, net::NodeId{0});
      auto h = co_await c.create("f");
      const TimePoint t0 = fx.sim.now();
      for (int i = 0; i < 20; ++i) {
        co_await c.write(h, Bytes::mib(1) * static_cast<std::uint64_t>(i),
                         Bytes::mib(1));
      }
      out = fx.sim.now() - t0;
    }(f, io_time));
    f.sim.run_to_quiescence();
    return io_time;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mdwf::fs
