// Unit tests for the block device and page cache models.
#include <gtest/gtest.h>

#include <vector>

#include "mdwf/common/time.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/storage/block_device.hpp"
#include "mdwf/storage/page_cache.hpp"

namespace mdwf::storage {
namespace {

using namespace mdwf::literals;
using sim::Simulation;
using sim::Task;

BlockDeviceParams test_device_params() {
  BlockDeviceParams p;
  p.read_bandwidth_bps = 1e9;
  p.write_bandwidth_bps = 1e9;
  p.op_latency = 10_us;
  p.queue_depth = 2;
  return p;
}

TEST(BlockDeviceTest, ReadPaysLatencyPlusBandwidth) {
  Simulation sim;
  BlockDevice dev(sim, test_device_params());
  TimePoint done;
  sim.spawn([](Simulation& s, BlockDevice& d, TimePoint& t) -> Task<void> {
    co_await d.read(Bytes(1'000'000));
    t = s.now();
  }(sim, dev, done));
  sim.run_to_quiescence();
  EXPECT_EQ(done, TimePoint::origin() + 10_us + 1_ms);
  EXPECT_EQ(dev.reads_completed(), 1u);
}

TEST(BlockDeviceTest, QueueDepthSerializesExcessOps) {
  Simulation sim;
  auto p = test_device_params();
  p.queue_depth = 1;
  p.op_latency = 1_ms;
  BlockDevice dev(sim, p);
  // Three zero-byte ops with QD=1 and 1ms latency each -> 3 ms total.
  std::vector<Task<void>> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.push_back([](BlockDevice& d) -> Task<void> {
      co_await d.write(Bytes::zero());
    }(dev));
  }
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  EXPECT_EQ(sim.now(), TimePoint::origin() + 3_ms);
  EXPECT_EQ(dev.writes_completed(), 3u);
}

TEST(BlockDeviceTest, ReadsAndWritesUseSeparateChannels) {
  Simulation sim;
  auto p = test_device_params();
  p.op_latency = Duration::zero();
  BlockDevice dev(sim, p);
  std::vector<Task<void>> tasks;
  tasks.push_back([](BlockDevice& d) -> Task<void> {
    co_await d.read(Bytes(100'000'000));
  }(dev));
  tasks.push_back([](BlockDevice& d) -> Task<void> {
    co_await d.write(Bytes(100'000'000));
  }(dev));
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  // Full duplex: both complete in 100 ms, not 200 ms.
  EXPECT_NEAR(sim.now().to_seconds(), 0.1, 1e-6);
}

TEST(BlockDeviceTest, BackgroundLoadSlowsDevice) {
  Simulation sim;
  auto p = test_device_params();
  p.op_latency = Duration::zero();
  BlockDevice dev(sim, p);
  dev.set_background_load(0.75);
  sim.spawn([](BlockDevice& d) -> Task<void> {
    co_await d.read(Bytes(100'000'000));
  }(dev));
  sim.run_to_quiescence();
  EXPECT_NEAR(sim.now().to_seconds(), 0.4, 1e-6);
}

PageCacheParams test_cache_params() {
  PageCacheParams p;
  p.capacity = Bytes::kib(1024);  // 4 pages of 256 KiB
  p.page_size = Bytes::kib(256);
  p.memcpy_bps = 1e9;
  return p;
}

TEST(PageCacheTest, BufferedWriteCostsMemcpyOnly) {
  Simulation sim;
  BlockDevice dev(sim, test_device_params());
  PageCache cache(sim, test_cache_params(), dev);
  TimePoint done;
  sim.spawn([](Simulation& s, PageCache& c, TimePoint& t) -> Task<void> {
    co_await c.write(1, Bytes::zero(), Bytes::kib(256));
    t = s.now();
  }(sim, cache, done));
  sim.run_to_quiescence();
  // 256 KiB at 1 GB/s memcpy, no device IO.
  EXPECT_NEAR((done - TimePoint::origin()).to_seconds(), 262144.0 / 1e9, 1e-9);
  EXPECT_EQ(dev.writes_completed(), 0u);
  EXPECT_EQ(cache.dirty_pages(), 1u);
}

TEST(PageCacheTest, ReadHitAvoidsDevice) {
  Simulation sim;
  BlockDevice dev(sim, test_device_params());
  PageCache cache(sim, test_cache_params(), dev);
  sim.spawn([](PageCache& c, BlockDevice& d) -> Task<void> {
    co_await c.write(1, Bytes::zero(), Bytes::kib(256));
    const auto before = d.reads_completed();
    co_await c.read(1, Bytes::zero(), Bytes::kib(256));
    EXPECT_EQ(d.reads_completed(), before);
    EXPECT_GE(c.hits(), 1u);
  }(cache, dev));
  sim.run_to_quiescence();
}

TEST(PageCacheTest, ReadMissFetchesFromDevice) {
  Simulation sim;
  BlockDevice dev(sim, test_device_params());
  PageCache cache(sim, test_cache_params(), dev);
  sim.spawn([](PageCache& c, BlockDevice& d) -> Task<void> {
    co_await c.read(9, Bytes::zero(), Bytes::kib(512));
    EXPECT_EQ(d.reads_completed(), 1u);  // coalesced into one device read
    EXPECT_EQ(d.bytes_read(), Bytes::kib(512));
  }(cache, dev));
  sim.run_to_quiescence();
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PageCacheTest, EvictionWritesBackDirtyPagesAsynchronously) {
  Simulation sim;
  BlockDevice dev(sim, test_device_params());
  PageCache cache(sim, test_cache_params(), dev);  // 4-page capacity
  sim.spawn([](PageCache& c) -> Task<void> {
    // Dirty 4 pages, then touch a 5th: a dirty page must be evicted and its
    // write-back queued (asynchronously, as the kernel flusher would).
    for (std::uint64_t f = 1; f <= 4; ++f) {
      co_await c.write(f, Bytes::zero(), Bytes::kib(256));
    }
    EXPECT_EQ(c.dirty_pages(), 4u);
    co_await c.write(5, Bytes::zero(), Bytes::kib(256));
    EXPECT_EQ(c.resident_pages(), 4u);
  }(cache));
  sim.run_to_quiescence();
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(dev.writes_completed(), 1u);
  EXPECT_EQ(dev.bytes_written(), Bytes::kib(256));
}

TEST(PageCacheTest, EvictionPrefersCleanVictims) {
  Simulation sim;
  BlockDevice dev(sim, test_device_params());
  PageCache cache(sim, test_cache_params(), dev);  // 4-page capacity
  sim.spawn([](PageCache& c, BlockDevice& d) -> Task<void> {
    co_await c.write(1, Bytes::zero(), Bytes::kib(256));  // dirty, oldest
    co_await c.read(2, Bytes::zero(), Bytes::kib(256));   // clean
    co_await c.write(3, Bytes::zero(), Bytes::kib(256));  // dirty
    co_await c.read(4, Bytes::zero(), Bytes::kib(256));   // clean
    const auto writes_before = d.writes_completed();
    co_await c.write(5, Bytes::zero(), Bytes::kib(256));
    // A clean page was the victim: no write-back traffic queued.
    EXPECT_EQ(d.writes_completed(), writes_before);
    EXPECT_EQ(c.dirty_pages(), 3u);  // files 1, 3, 5 still dirty
  }(cache, dev));
  sim.run_to_quiescence();
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(PageCacheTest, FlushWritesAllDirtyPagesOfFile) {
  Simulation sim;
  BlockDevice dev(sim, test_device_params());
  PageCache cache(sim, test_cache_params(), dev);
  sim.spawn([](PageCache& c, BlockDevice& d) -> Task<void> {
    co_await c.write(1, Bytes::zero(), Bytes::kib(512));  // 2 dirty pages
    co_await c.write(2, Bytes::zero(), Bytes::kib(256));  // other file
    co_await c.flush(1);
    EXPECT_EQ(d.bytes_written(), Bytes::kib(512));
    EXPECT_EQ(c.dirty_pages(), 1u);  // file 2 still dirty
    // Flushing again is a no-op.
    co_await c.flush(1);
    EXPECT_EQ(d.bytes_written(), Bytes::kib(512));
  }(cache, dev));
  sim.run_to_quiescence();
}

TEST(PageCacheTest, DropDiscardsWithoutWriteback) {
  Simulation sim;
  BlockDevice dev(sim, test_device_params());
  PageCache cache(sim, test_cache_params(), dev);
  sim.spawn([](PageCache& c, BlockDevice& d) -> Task<void> {
    co_await c.write(1, Bytes::zero(), Bytes::kib(512));
    c.drop(1);
    EXPECT_EQ(c.resident_pages(), 0u);
    EXPECT_EQ(c.dirty_pages(), 0u);
    EXPECT_EQ(d.writes_completed(), 0u);
  }(cache, dev));
  sim.run_to_quiescence();
}

TEST(PageCacheTest, ResidencyQuery) {
  Simulation sim;
  BlockDevice dev(sim, test_device_params());
  PageCache cache(sim, test_cache_params(), dev);
  sim.spawn([](PageCache& c) -> Task<void> {
    EXPECT_FALSE(c.resident(3, Bytes::zero(), Bytes::kib(256)));
    co_await c.write(3, Bytes::zero(), Bytes::kib(256));
    EXPECT_TRUE(c.resident(3, Bytes::zero(), Bytes::kib(256)));
    EXPECT_FALSE(c.resident(3, Bytes::zero(), Bytes::kib(512)));
  }(cache));
  sim.run_to_quiescence();
}

TEST(PageCacheTest, PartialPageWriteDirtiesWholePage) {
  Simulation sim;
  BlockDevice dev(sim, test_device_params());
  PageCache cache(sim, test_cache_params(), dev);
  sim.spawn([](PageCache& c) -> Task<void> {
    co_await c.write(1, Bytes(100), Bytes(50));
    EXPECT_EQ(c.dirty_pages(), 1u);
    EXPECT_TRUE(c.resident(1, Bytes(100), Bytes(50)));
  }(cache));
  sim.run_to_quiescence();
}

}  // namespace
}  // namespace mdwf::storage
