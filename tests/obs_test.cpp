// mdwf::obs: counter map semantics, Chrome-trace export (golden file),
// determinism of traced ensemble runs, and fault-window annotations.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "mdwf/common/keyval.hpp"
#include "mdwf/fault/plan.hpp"
#include "mdwf/obs/counters.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/workflow/config.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace mdwf {
namespace {

// --- Minimal JSON validity checker -----------------------------------------
// Recursive-descent scan; accepts exactly the subset the exporter emits
// (objects, arrays, strings with escapes, numbers, literals).  Returns true
// iff the whole input is one well-formed value.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- CounterMap -------------------------------------------------------------

TEST(CounterMapTest, InsertionOrderAndAccess) {
  obs::CounterMap c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.get("missing"), 0u);
  c.add("b", 2);
  c.add("a", 1);
  c.add("b", 3);
  c.set("z", 9);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.get("b"), 5u);
  EXPECT_EQ(c.get("a"), 1u);
  EXPECT_EQ(c.get("z"), 9u);
  EXPECT_TRUE(c.contains("a"));
  EXPECT_FALSE(c.contains("q"));
  // Iteration follows first-insertion order, not name order.
  std::string order;
  for (const auto& [name, value] : c) order += name;
  EXPECT_EQ(order, "baz");
}

TEST(CounterMapTest, MergeAndCsv) {
  obs::CounterMap a;
  a.add("x", 1);
  a.add("y", 2);
  obs::CounterMap b;
  b.add("y", 10);
  b.add("w", 4);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 1u);
  EXPECT_EQ(a.get("y"), 12u);
  EXPECT_EQ(a.get("w"), 4u);
  EXPECT_EQ(a.to_csv(), "counter,value\nx,1\ny,12\nw,4\n");
}

// --- TraceSink export -------------------------------------------------------

TEST(TraceSinkTest, GoldenChromeJson) {
  obs::TraceSink sink;
  const obs::TrackId rank = sink.track("node0", "producer0");
  const obs::TrackId nvme = sink.track("node0", "nvme");
  const obs::SpanId compute = sink.span_id(rank, "md_compute", "compute");
  const obs::CounterId inflight = sink.counter_id(nvme, "nvme.inflight");
  const obs::InstantId frames = sink.instant_series(rank, "f=");
  sink.span(compute, TimePoint::origin() + Duration::microseconds(1),
            Duration::microseconds(2));
  sink.counter(inflight, TimePoint::origin() + Duration::nanoseconds(1500), 3);
  sink.instant(frames, TimePoint::origin() + Duration::microseconds(4), 0);

  EXPECT_EQ(sink.event_count(), 3u);
  EXPECT_EQ(sink.span_count(), 1u);
  EXPECT_EQ(sink.counter_samples(), 1u);

  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"node0\"}},\n"
      "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"sort_index\":0}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"producer0\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"sort_index\":0}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"name\":\"nvme\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"sort_index\":1}},\n"
      "{\"ph\":\"X\",\"name\":\"md_compute\",\"cat\":\"compute\","
      "\"pid\":0,\"tid\":0,\"ts\":1.000,\"dur\":2.000},\n"
      "{\"ph\":\"C\",\"name\":\"nvme.inflight\",\"pid\":0,\"tid\":1,"
      "\"ts\":1.500,\"args\":{\"value\":3}},\n"
      "{\"ph\":\"i\",\"name\":\"f=0\",\"pid\":0,\"tid\":0,\"ts\":4.000,"
      "\"s\":\"t\"}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(sink.chrome_json(), expected);
  EXPECT_TRUE(JsonChecker(expected).valid());

  // The metrics CSV leads with a strippable interned-table stats comment.
  EXPECT_EQ(sink.metrics_csv(),
            "# interned names=4 tracks=2 handles=3 records=3\n"
            "ts_us,process,track,counter,value\n"
            "1.500,node0,nvme,nvme.inflight,3\n");
}

TEST(TraceSinkTest, EventsSortedByTimestampStable) {
  obs::TraceSink sink;
  const obs::TrackId t = sink.track("p", "t");
  sink.instant(sink.instant_id(t, "late"),
               TimePoint::origin() + Duration::microseconds(9));
  sink.instant(sink.instant_id(t, "early"),
               TimePoint::origin() + Duration::microseconds(1));
  sink.instant(sink.instant_id(t, "early2"),
               TimePoint::origin() + Duration::microseconds(1));
  const std::string json = sink.chrome_json();
  const auto early = json.find("early");
  const auto early2 = json.find("early2");
  const auto late = json.find("late");
  EXPECT_LT(early, early2);
  EXPECT_LT(early2, late);
}

TEST(TraceSinkTest, EscapesStrings) {
  obs::TraceSink sink;
  const obs::TrackId t = sink.track("p\"q", "a\\b");
  sink.instant(sink.instant_id(t, "x\ny"), TimePoint::origin());
  const std::string json = sink.chrome_json();
  EXPECT_NE(json.find("p\\\"q"), std::string::npos);
  EXPECT_NE(json.find("a\\\\b"), std::string::npos);
  EXPECT_NE(json.find("x\\ny"), std::string::npos);
  EXPECT_TRUE(JsonChecker(json).valid());
}

TEST(TraceSinkTest, HandleInterningDedupesSeries) {
  obs::TraceSink sink;
  const obs::TrackId t = sink.track("node0", "nvme");
  const obs::CounterId a = sink.counter_id(t, "nvme.inflight");
  const obs::CounterId b = sink.counter_id(t, "nvme.inflight");
  EXPECT_EQ(a.v, b.v);
  const obs::SpanId s1 = sink.span_id(t, "flush", "movement");
  const obs::SpanId s2 = sink.span_id(t, "flush", "movement");
  EXPECT_EQ(s1.v, s2.v);
  // Same name, different category: a distinct series.
  const obs::SpanId s3 = sink.span_id(t, "flush", "idle");
  EXPECT_NE(s1.v, s3.v);
  EXPECT_EQ(sink.interned_handles(), 3u);
}

TEST(TraceSinkTest, CounterRegistrationRejectsChromeKeyCollision) {
  obs::TraceSink sink;
  const obs::TrackId nvme = sink.track("node0", "nvme");
  const obs::TrackId cache = sink.track("node0", "pagecache");
  (void)sink.counter_id(nvme, "inflight");
  // Same process (pid), different lane: Chrome would merge the two series
  // under pid+name, so registration must refuse.
  EXPECT_THROW((void)sink.counter_id(cache, "inflight"), std::logic_error);
  // Same name in a *different* process is a distinct Chrome key.
  const obs::TrackId other = sink.track("node1", "nvme");
  EXPECT_NO_THROW((void)sink.counter_id(other, "inflight"));
}

TEST(TraceSinkTest, InstantSeriesMaterializesPayloadSuffix) {
  obs::TraceSink sink;
  const obs::TrackId t = sink.track("node0", "producer0");
  const obs::InstantId frames = sink.instant_series(t, "f=");
  for (std::int64_t f = 0; f < 3; ++f) {
    sink.instant(frames, TimePoint::origin() + Duration::microseconds(f + 1),
                 f);
  }
  const std::string json = sink.chrome_json();
  EXPECT_NE(json.find("\"name\":\"f=0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"f=1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"f=2\""), std::string::npos);
  EXPECT_TRUE(JsonChecker(json).valid());
}

TEST(TraceSinkTest, ScopedSpanEmitsOnDestruction) {
  obs::TraceSink sink;
  const obs::TrackId t = sink.track("node0", "producer0");
  const obs::SpanId region = sink.span_id(t, "io_burst", "movement");
  TimePoint clock = TimePoint::origin() + Duration::microseconds(10);
  {
    obs::ScopedSpan guard(&sink, region, &clock);
    clock = clock + Duration::microseconds(5);
  }
  EXPECT_EQ(sink.span_count(), 1u);
  const std::string json = sink.chrome_json();
  EXPECT_NE(json.find("\"name\":\"io_burst\",\"cat\":\"movement\","
                      "\"pid\":0,\"tid\":0,\"ts\":10.000,\"dur\":5.000"),
            std::string::npos);

  // Moved-from guards are inert; close() is idempotent.
  obs::ScopedSpan a(&sink, region, &clock);
  obs::ScopedSpan b(std::move(a));
  b.close();
  b.close();
  EXPECT_EQ(sink.span_count(), 2u);

  // A null-sink guard emits nothing.
  { obs::ScopedSpan inert; }
  { obs::ScopedSpan inert2(nullptr, obs::SpanId{}, nullptr); }
  EXPECT_EQ(sink.span_count(), 2u);
}

// --- Traced ensemble runs ---------------------------------------------------

workflow::EnsembleConfig tiny_config() {
  workflow::EnsembleConfig config;
  config.solution = workflow::Solution::kDyad;
  config.pairs = 1;
  config.nodes = 1;
  config.workload.frames = 4;
  config.repetitions = 2;
  config.base_seed = 7;
  return config;
}

TEST(ObsEnsembleTest, TraceExportIsValidAndComplete) {
  auto config = tiny_config();
  config.trace_path = testing::TempDir() + "obs_trace_run.json";
  const auto r = workflow::run_ensemble(config);

  const std::string json = read_file(config.trace_path);
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_GT(r.counters.get("trace_events"), 0u);

  // Rank spans, resource counter samples, and lane metadata all present.
  EXPECT_NE(json.find("\"md_compute\""), std::string::npos);
  EXPECT_NE(json.find("\"dyad_consume\""), std::string::npos);
  EXPECT_NE(json.find("\"nvme.inflight\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.live_processes\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"producer0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"consumer0\""), std::string::npos);

  const std::string csv =
      read_file(obs::TraceSink::metrics_csv_path(config.trace_path));
  EXPECT_EQ(csv.rfind("# interned ", 0), 0u);
  EXPECT_NE(csv.find("\nts_us,process,track,counter,value\n"),
            std::string::npos);
  EXPECT_NE(csv.find("nvme.inflight"), std::string::npos);
}

TEST(ObsEnsembleTest, SameSeedTracesAreByteIdentical) {
  auto config = tiny_config();
  config.trace_path = testing::TempDir() + "obs_trace_a.json";
  workflow::run_ensemble(config);
  auto config2 = tiny_config();
  config2.trace_path = testing::TempDir() + "obs_trace_b.json";
  workflow::run_ensemble(config2);

  EXPECT_EQ(read_file(config.trace_path), read_file(config2.trace_path));
  EXPECT_EQ(read_file(obs::TraceSink::metrics_csv_path(config.trace_path)),
            read_file(obs::TraceSink::metrics_csv_path(config2.trace_path)));
}

TEST(ObsEnsembleTest, FaultWindowsAnnotateTheTrace) {
  auto config = tiny_config();
  config.workload.frames = 8;
  config.repetitions = 1;
  fault::ScenarioShape shape;
  shape.compute_nodes = config.nodes;
  shape.seed = config.base_seed;
  config.testbed.faults = fault::make_scenario("broker-outage", shape);
  config.testbed.dyad.retry.enabled = true;
  config.testbed.dyad.retry.lustre_fallback = true;
  config.trace_path = testing::TempDir() + "obs_trace_fault.json";
  const auto r = workflow::run_ensemble(config);

  const std::string json = read_file(config.trace_path);
  EXPECT_TRUE(JsonChecker(json).valid());
  // The injected broker outage appears as a "fault"-category span on the
  // faults process's kvs lane.
  EXPECT_NE(json.find("\"name\":\"faults\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"outage"), std::string::npos);
  EXPECT_GT(r.counters.get("fault_windows_applied"), 0u);
}

TEST(ObsEnsembleTest, UntracedRunRecordsNoTraceEvents) {
  const auto r = workflow::run_ensemble(tiny_config());
  EXPECT_EQ(r.counters.get("trace_events"), 0u);
  EXPECT_GT(r.counters.get("sim_events"), 0u);
}

// --- EnsembleResult counter round-trip --------------------------------------

TEST(ObsEnsembleTest, CounterMapRoundTrip) {
  auto config = tiny_config();
  const auto r = workflow::run_ensemble(config);
  // Protocol counters land in the map under their registration names, and
  // unregistered names read as zero rather than throwing.
  EXPECT_GT(r.counters.get("dyad_warm_hits") + r.counters.get("dyad_kvs_waits") +
                r.counters.get("dyad_kvs_retries"),
            0u);
  EXPECT_EQ(r.counters.get("no_such_counter"), 0u);
  // Infrastructure counters fire on every DYAD run.
  EXPECT_GT(r.counters.get("kvs_commits"), 0u);
  EXPECT_GT(r.counters.get("cache_misses"), 0u);

  // CSV round-trip: every registered counter appears, in order, with its
  // value.
  const std::string csv = r.counters.to_csv();
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);
  EXPECT_EQ(line, "counter,value");
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    const auto comma = line.find(',');
    ASSERT_NE(comma, std::string::npos);
    EXPECT_EQ(std::to_string(r.counters.get(line.substr(0, comma))),
              line.substr(comma + 1));
    ++rows;
  }
  EXPECT_EQ(rows, r.counters.size());
}

// --- parse_ensemble_config --------------------------------------------------

TEST(ParseEnsembleConfigTest, AppliesDefaultsAndOverrides) {
  KeyValueConfig cfg;
  cfg.set("solution", "lustre");
  cfg.set("pairs", "8");
  cfg.set("frames", "32");
  cfg.set("trace", "/tmp/t.json");
  workflow::EnsembleConfig defaults;
  defaults.pairs = 4;
  defaults.nodes = 2;
  defaults.repetitions = 5;
  const auto config = workflow::parse_ensemble_config(cfg, defaults);
  EXPECT_EQ(config.solution, workflow::Solution::kLustre);
  EXPECT_EQ(config.pairs, 8u);
  EXPECT_EQ(config.nodes, 2u);
  EXPECT_EQ(config.workload.frames, 32u);
  EXPECT_EQ(config.repetitions, 5u);
  EXPECT_EQ(config.trace_path, "/tmp/t.json");
  EXPECT_TRUE(cfg.unknown_keys().empty());
}

TEST(ParseEnsembleConfigTest, XfsDefaultsToOneNodeAndModelResetsStride) {
  KeyValueConfig cfg;
  cfg.set("solution", "xfs");
  cfg.set("model", "STMV");
  workflow::EnsembleConfig defaults;
  defaults.nodes = 4;
  const auto config = workflow::parse_ensemble_config(cfg, defaults);
  EXPECT_EQ(config.nodes, 1u);
  EXPECT_EQ(config.workload.model.name, "STMV");
  EXPECT_EQ(config.workload.stride, config.workload.model.stride);
}

TEST(ParseEnsembleConfigTest, FaultsEnableRetryAndRejectUnknown) {
  KeyValueConfig cfg;
  cfg.set("faults", "broker-blip");
  const auto config = workflow::parse_ensemble_config(cfg, {});
  EXPECT_FALSE(config.testbed.faults.empty());
  EXPECT_TRUE(config.testbed.dyad.retry.enabled);
  EXPECT_TRUE(config.testbed.dyad.retry.lustre_fallback);

  KeyValueConfig bad;
  bad.set("solution", "nfs");
  EXPECT_THROW(workflow::parse_ensemble_config(bad, {}), ConfigError);
  KeyValueConfig bad2;
  bad2.set("faults", "meteor-strike");
  EXPECT_THROW(workflow::parse_ensemble_config(bad2, {}), ConfigError);
}

}  // namespace
}  // namespace mdwf
