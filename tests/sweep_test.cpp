// mdwf::sweep — the deterministic parallel replica runner.
//
// The load-bearing property is the determinism contract: for the same
// (grid, seeds), the merged output is byte-identical no matter how many
// worker threads execute the repetitions.  These tests pin it on plain
// ensembles, on a cancellation-heavy configuration (hedged reads under
// overload cancel timers constantly), and on grids where a replica throws.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "mdwf/fault/plan.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/workflow/config.hpp"

namespace mdwf::sweep {
namespace {

using workflow::EnsembleConfig;
using workflow::EnsembleResult;
using workflow::Placement;
using workflow::Solution;

EnsembleConfig small_config(Solution s, std::uint32_t pairs,
                            std::uint32_t nodes, std::uint32_t reps = 3) {
  EnsembleConfig c;
  c.solution = s;
  c.pairs = pairs;
  c.nodes = nodes;
  c.workload.frames = 8;
  c.repetitions = reps;
  c.base_seed = 7;
  return c;
}

// Hedged DYAD reads under an overloaded KVS: every fetch arms hedge and
// health timers and most are cancelled — the heaviest cancel() traffic any
// configuration produces.
EnsembleConfig cancellation_heavy_config() {
  EnsembleConfig c = small_config(Solution::kDyad, 2, 2);
  c.testbed.dyad.retry.enabled = true;
  c.testbed.dyad.retry.lustre_fallback = true;
  c.testbed.dyad.health.enabled = true;
  c.testbed.dyad.health.hedge.enabled = true;
  c.testbed.faults =
      fault::make_scenario("overload", {.compute_nodes = c.nodes});
  return c;
}

// Retry-less DYAD through a broker outage: the first frame's metadata commit
// is still awaiting visibility (long visibility delay) when the broker dies
// and loses pending commits, so the consumer blocks forever on its KVS watch
// and the repetition dies with a deadlock error.
EnsembleConfig poisoned_config() {
  EnsembleConfig c = small_config(Solution::kDyad, 1, 2, 4);
  c.testbed.dyad.retry.enabled = false;
  c.testbed.dyad.retry.lustre_fallback = false;
  c.workload.start_stagger = 0.0;  // first publish lands at ~0.82 s
  c.testbed.kvs.visibility_delay = Duration::seconds_i(5);
  c.testbed.faults.windows.push_back(fault::FaultWindow{
      fault::FaultTarget::kKvsBroker, 0, fault::FaultMode::kOutage,
      TimePoint::origin() + Duration::seconds_i(3),
      Duration::milliseconds(250), 1.0});
  return c;
}

// Byte-level equality of two ensemble results: every sample vector (exact
// doubles, exact order), every counter (name and value, registration
// order), and every thicket record (metadata plus the rendered call tree).
void expect_identical(const EnsembleResult& a, const EnsembleResult& b) {
  EXPECT_EQ(a.prod_movement_us.values(), b.prod_movement_us.values());
  EXPECT_EQ(a.prod_idle_us.values(), b.prod_idle_us.values());
  EXPECT_EQ(a.cons_movement_us.values(), b.cons_movement_us.values());
  EXPECT_EQ(a.cons_idle_us.values(), b.cons_idle_us.values());
  EXPECT_EQ(a.makespan_s.values(), b.makespan_s.values());
  EXPECT_EQ(a.cons_fetch_us.values(), b.cons_fetch_us.values());
  EXPECT_EQ(a.counters.items(), b.counters.items());
  ASSERT_EQ(a.thicket.size(), b.thicket.size());
  for (std::size_t i = 0; i < a.thicket.size(); ++i) {
    EXPECT_EQ(a.thicket.records()[i].meta, b.thicket.records()[i].meta);
    EXPECT_EQ(a.thicket.records()[i].tree.render(),
              b.thicket.records()[i].tree.render());
  }
}

std::vector<SweepPoint> standard_grid() {
  return {
      {"dyad", small_config(Solution::kDyad, 2, 2)},
      {"xfs", small_config(Solution::kXfs, 2, 1)},
      {"lustre", small_config(Solution::kLustre, 1, 2)},
  };
}

TEST(SweepTest, ResolveThreadsHonorsExplicitAndAuto) {
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(5), 5u);
  EXPECT_GE(resolve_threads(0), 1u);  // 0 = hardware concurrency
}

TEST(SweepTest, ThreadsKeyParses) {
  KeyValueConfig cfg;
  cfg.set("threads", "6");
  const EnsembleConfig parsed =
      workflow::parse_ensemble_config(cfg, EnsembleConfig{});
  EXPECT_EQ(parsed.threads, 6u);
  EXPECT_EQ(EnsembleConfig{}.threads, 1u);  // serial by default
}

TEST(SweepTest, RunEnsembleMatchesSerialLibraryByteForByte) {
  EnsembleConfig cfg = small_config(Solution::kDyad, 2, 2);
  const EnsembleResult serial = workflow::run_ensemble(cfg);
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    cfg.threads = threads;
    expect_identical(serial, sweep::run_ensemble(cfg));
  }
}

TEST(SweepTest, MergedCsvByteIdenticalAcrossThreadCounts) {
  const SweepResult one = run_sweep(standard_grid(), 1);
  const SweepResult two = run_sweep(standard_grid(), 2);
  const SweepResult eight = run_sweep(standard_grid(), 8);
  EXPECT_EQ(one.errors, 0u);
  EXPECT_EQ(one.to_csv(), two.to_csv());
  EXPECT_EQ(one.to_csv(), eight.to_csv());
  EXPECT_EQ(one.total_sim_events, two.total_sim_events);
  EXPECT_EQ(one.total_sim_events, eight.total_sim_events);
  ASSERT_EQ(one.points.size(), eight.points.size());
  for (std::size_t p = 0; p < one.points.size(); ++p) {
    expect_identical(one.points[p].result, two.points[p].result);
    expect_identical(one.points[p].result, eight.points[p].result);
  }
}

TEST(SweepTest, CancellationHeavyRunsStayDeterministic) {
  EnsembleConfig cfg = cancellation_heavy_config();
  const EnsembleResult serial = workflow::run_ensemble(cfg);
  // The scenario must actually exercise the cancel path.
  EXPECT_GT(serial.counters.get("dyad_hedges"), 0u);
  EXPECT_GT(serial.counters.get("dyad_hedge_cancels") + serial.counters.get("dyad_hedge_wins"), 0u);
  cfg.threads = 8;
  expect_identical(serial, sweep::run_ensemble(cfg));
}

TEST(SweepTest, ReplicaExceptionRethrownCanonically) {
  EnsembleConfig cfg = poisoned_config();
  std::string serial_what;
  try {
    workflow::run_ensemble(cfg);
    FAIL() << "expected the serial run to deadlock";
  } catch (const std::runtime_error& e) {
    serial_what = e.what();
    EXPECT_NE(serial_what.find("deadlock"), std::string::npos) << serial_what;
  }
  // The parallel runner reports the canonically-first failure with the same
  // message, regardless of which worker hit it first.
  cfg.threads = 8;
  try {
    sweep::run_ensemble(cfg);
    FAIL() << "expected the parallel run to rethrow the replica error";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(serial_what, std::string(e.what()));
  }
}

TEST(SweepTest, PoisonedPointDoesNotSpoilTheGrid) {
  const auto make_grid = [] {
    return std::vector<SweepPoint>{
        {"bad", poisoned_config()},
        {"good", small_config(Solution::kDyad, 1, 2)},
    };
  };
  const SweepResult one = run_sweep(make_grid(), 1);
  const SweepResult eight = run_sweep(make_grid(), 8);
  for (const SweepResult* r : {&one, &eight}) {
    ASSERT_EQ(r->points.size(), 2u);
    EXPECT_EQ(r->errors, 1u);
    EXPECT_TRUE(r->points[0].failed());
    EXPECT_NE(r->points[0].error_text.find("deadlock"), std::string::npos);
    EXPECT_FALSE(r->points[1].failed());
    EXPECT_GT(r->points[1].result.counters.get("frames_consumed"), 0u);
  }
  EXPECT_EQ(one.to_csv(), eight.to_csv());
  EXPECT_EQ(one.points[0].error_text, eight.points[0].error_text);
  expect_identical(one.points[1].result, eight.points[1].result);
}

}  // namespace
}  // namespace mdwf::sweep
