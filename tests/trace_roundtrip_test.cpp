// Round-trip oracle for the binary event log: the TraceSink records
// fixed-width records and materializes Chrome JSON / metrics CSV after the
// run; this file pins that pipeline to the PR-2 emitters' byte-level output.
//
// The oracle below is an independent reimplementation of the PR-2 eager
// formatter — names resolved and strings built at call time, snprintf/
// to_string per field, stable sort at export — deliberately sharing no code
// with the production fragment-precomputation + custom-integer-formatter
// path.  Randomized emitter sequences through both must agree to the byte.
//
// The second half checks the end-to-end contract on real workloads: traced
// ensemble runs are byte-deterministic per (solution, fault scenario, seed)
// across repeated runs — virtual timestamps only, no wall-clock leakage.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mdwf/common/keyval.hpp"
#include "mdwf/common/rng.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/workflow/config.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace mdwf {
namespace {

using namespace mdwf::literals;

// --- The PR-2 emitter oracle ----------------------------------------------

class LegacySink {
 public:
  std::uint32_t track(const std::string& process, const std::string& thread) {
    for (std::uint32_t i = 0; i < lanes_.size(); ++i) {
      if (lanes_[i].process == process && lanes_[i].thread == thread) {
        return i;
      }
    }
    std::uint32_t pid = 0;
    for (; pid < procs_.size(); ++pid) {
      if (procs_[pid] == process) break;
    }
    if (pid == procs_.size()) procs_.push_back(process);
    std::uint32_t tid = 0;
    for (const Lane& l : lanes_) {
      if (l.process == process) ++tid;
    }
    lanes_.push_back(Lane{process, thread, pid, tid});
    return static_cast<std::uint32_t>(lanes_.size() - 1);
  }

  void span(std::uint32_t lane, const std::string& name,
            const std::string& cat, TimePoint start, Duration dur) {
    Event e;
    e.ts_ns = (start - TimePoint::origin()).ns();
    e.json = "{\"ph\":\"X\",\"name\":" + escape(name) + ",\"cat\":" +
             escape(cat) + pid_tid(lane) + ",\"ts\":" + us(e.ts_ns) +
             ",\"dur\":" + us(dur.ns()) + "}";
    events_.push_back(std::move(e));
  }

  void instant(std::uint32_t lane, const std::string& name, TimePoint at) {
    Event e;
    e.ts_ns = (at - TimePoint::origin()).ns();
    e.json = "{\"ph\":\"i\",\"name\":" + escape(name) + pid_tid(lane) +
             ",\"ts\":" + us(e.ts_ns) + ",\"s\":\"t\"}";
    events_.push_back(std::move(e));
  }

  void counter(std::uint32_t lane, const std::string& name, TimePoint at,
               std::int64_t value) {
    Event e;
    e.ts_ns = (at - TimePoint::origin()).ns();
    e.json = "{\"ph\":\"C\",\"name\":" + escape(name) + pid_tid(lane) +
             ",\"ts\":" + us(e.ts_ns) + ",\"args\":{\"value\":" +
             std::to_string(value) + "}}";
    e.csv = us(e.ts_ns) + "," + lanes_[lane].process + "," +
            lanes_[lane].thread + "," + name + "," + std::to_string(value) +
            "\n";
    events_.push_back(std::move(e));
  }

  std::string chrome_json() const {
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&] {
      if (!first) out += ",\n";
      first = false;
    };
    for (std::uint32_t pid = 0; pid < procs_.size(); ++pid) {
      sep();
      out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":" +
             escape(procs_[pid]) + "}}";
      sep();
      out += "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":0,\"args\":{\"sort_index\":" +
             std::to_string(pid) + "}}";
      for (const Lane& l : lanes_) {
        if (l.pid != pid) continue;
        sep();
        out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
               std::to_string(pid) + ",\"tid\":" + std::to_string(l.tid) +
               ",\"args\":{\"name\":" + escape(l.thread) + "}}";
        sep();
        out += "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":" +
               std::to_string(pid) + ",\"tid\":" + std::to_string(l.tid) +
               ",\"args\":{\"sort_index\":" + std::to_string(l.tid) + "}}";
      }
    }
    for (const Event* e : sorted()) {
      sep();
      out += e->json;
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
  }

  std::string metrics_csv() const {
    std::string out = "ts_us,process,track,counter,value\n";
    for (const Event* e : sorted()) out += e->csv;
    return out;
  }

 private:
  struct Lane {
    std::string process;
    std::string thread;
    std::uint32_t pid;
    std::uint32_t tid;
  };
  struct Event {
    std::int64_t ts_ns = 0;
    std::string json;
    std::string csv;  // empty for non-counter events
  };

  std::string pid_tid(std::uint32_t lane) const {
    return ",\"pid\":" + std::to_string(lanes_[lane].pid) + ",\"tid\":" +
           std::to_string(lanes_[lane].tid);
  }

  static std::string us(std::int64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    return buf;
  }

  static std::string escape(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  std::vector<const Event*> sorted() const {
    std::vector<const Event*> order;
    order.reserve(events_.size());
    for (const Event& e : events_) order.push_back(&e);
    std::stable_sort(order.begin(), order.end(),
                     [](const Event* a, const Event* b) {
                       return a->ts_ns < b->ts_ns;
                     });
    return order;
  }

  std::vector<std::string> procs_;
  std::vector<Lane> lanes_;
  std::vector<Event> events_;
};

std::string strip_comments(const std::string& csv) {
  std::istringstream in(csv);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') continue;
    out += line;
    out += '\n';
  }
  return out;
}

TEST(TraceRoundTripTest, RandomizedSequencesMatchLegacyEmitterByteForByte) {
  // Names exercise the escape path (quotes, backslashes, control chars).
  const std::vector<std::string> span_names = {"md_compute", "fs \"write\"",
                                               "tab\there", "new\nline"};
  const std::vector<std::string> categories = {"compute", "io\\path"};
  const std::vector<std::string> instant_names = {"marker", "ckpt"};

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(4000 + seed);
    obs::TraceSink sink;
    LegacySink legacy;

    // Wiring phase: a few processes, a few lanes each; every handle kind
    // registered per lane.  Counter names are suffixed per-process to
    // respect the Chrome pid+name keying the new API enforces.
    struct LaneHandles {
      obs::TrackId track;
      std::uint32_t legacy;
      std::vector<obs::SpanId> spans;
      std::vector<obs::InstantId> instants;
      obs::InstantId series;
      obs::CounterId counter;
      std::string counter_name;
    };
    std::vector<LaneHandles> lanes;
    const std::size_t nproc = 1 + rng.next_below(3);
    for (std::size_t p = 0; p < nproc; ++p) {
      const std::string process = "proc" + std::to_string(p);
      const std::size_t nthread = 1 + rng.next_below(3);
      for (std::size_t t = 0; t < nthread; ++t) {
        const std::string thread = "lane" + std::to_string(t);
        LaneHandles lh;
        lh.track = sink.track(process, thread);
        lh.legacy = legacy.track(process, thread);
        for (const std::string& n : span_names) {
          for (const std::string& c : categories) {
            lh.spans.push_back(sink.span_id(lh.track, n, c));
          }
        }
        for (const std::string& n : instant_names) {
          lh.instants.push_back(sink.instant_id(lh.track, n));
        }
        lh.series = sink.instant_series(lh.track, "f=");
        lh.counter_name = "lane" + std::to_string(t) + ".inflight";
        lh.counter = sink.counter_id(lh.track, lh.counter_name);
        lanes.push_back(std::move(lh));
      }
    }

    // Emission phase: virtual clock only ever moves forward; span starts
    // may predate the current instant (they are recorded at close), which
    // is exactly what exercises the stable sort.
    std::int64_t now_ns = 0;
    const std::uint64_t events = 300 + rng.next_below(300);
    for (std::uint64_t i = 0; i < events; ++i) {
      now_ns += static_cast<std::int64_t>(rng.next_below(2000));
      const LaneHandles& lh = lanes[rng.next_below(lanes.size())];
      const TimePoint at = TimePoint::origin() + Duration(now_ns);
      switch (rng.next_below(4)) {
        case 0: {
          const std::size_t pick = rng.next_below(lh.spans.size());
          // Duration clamped so the start never predates the time origin.
          const auto dur = Duration(static_cast<std::int64_t>(
              rng.next_below(static_cast<std::uint64_t>(now_ns) + 1)));
          const TimePoint start = at - dur;
          sink.span(lh.spans[pick], start, dur);
          legacy.span(lh.legacy, span_names[pick / categories.size()],
                      categories[pick % categories.size()], start, dur);
          break;
        }
        case 1: {
          const std::size_t pick = rng.next_below(lh.instants.size());
          sink.instant(lh.instants[pick], at);
          legacy.instant(lh.legacy, instant_names[pick], at);
          break;
        }
        case 2: {
          const auto frame =
              static_cast<std::int64_t>(rng.next_below(1000000));
          sink.instant(lh.series, at, frame);
          legacy.instant(lh.legacy, "f=" + std::to_string(frame), at);
          break;
        }
        default: {
          const auto value =
              static_cast<std::int64_t>(rng.next_below(1 << 20)) - 1000;
          sink.counter(lh.counter, at, value);
          legacy.counter(lh.legacy, lh.counter_name, at, value);
          break;
        }
      }
    }

    EXPECT_EQ(sink.chrome_json(), legacy.chrome_json()) << "seed " << seed;
    EXPECT_EQ(strip_comments(sink.metrics_csv()), legacy.metrics_csv())
        << "seed " << seed;
  }
}

// --- Traced workloads are byte-deterministic per seed ----------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TraceRoundTripTest, TracedEnsemblesAreByteDeterministicPerSeed) {
  for (const std::string solution : {"dyad", "xfs", "lustre", "stream"}) {
    for (const std::string faults : {"none", "crash-flip"}) {
      for (const std::string seed : {"1", "7"}) {
        KeyValueConfig kv;
        kv.set("solution", solution);
        kv.set("nodes", solution == "xfs" ? "1" : "2");
        kv.set("pairs", "1");
        kv.set("frames", "4");
        kv.set("reps", "1");
        kv.set("seed", seed);
        kv.set("faults", faults);
        const std::string tag =
            solution + "_" + faults + "_" + seed + ".json";
        auto config = workflow::parse_ensemble_config(kv);
        config.trace_path = testing::TempDir() + "rt_a_" + tag;
        workflow::run_ensemble(config);
        config.trace_path = testing::TempDir() + "rt_b_" + tag;
        workflow::run_ensemble(config);
        EXPECT_EQ(read_file(testing::TempDir() + "rt_a_" + tag),
                  read_file(testing::TempDir() + "rt_b_" + tag))
            << tag;
        EXPECT_EQ(read_file(obs::TraceSink::metrics_csv_path(
                      testing::TempDir() + "rt_a_" + tag)),
                  read_file(obs::TraceSink::metrics_csv_path(
                      testing::TempDir() + "rt_b_" + tag)))
            << tag;
      }
    }
  }
}

}  // namespace
}  // namespace mdwf
