// Tests for DYAD push-mode (dynamic data routing to subscribers).
#include <gtest/gtest.h>

#include "mdwf/common/time.hpp"
#include "mdwf/md/models.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/workflow/ensemble.hpp"
#include "mdwf/workflow/testbed.hpp"

namespace mdwf::dyad {
namespace {

using namespace mdwf::literals;
using sim::Task;
using workflow::Testbed;
using workflow::TestbedParams;

TestbedParams push_params() {
  TestbedParams p;
  p.compute_nodes = 2;
  p.dyad.push_mode = true;
  return p;
}

TEST(DyadPushTest, SubscriptionRouting) {
  Testbed tb(push_params());
  tb.dyad_domain().subscribe("pair0000/", net::NodeId{1});
  tb.dyad_domain().subscribe("pair0001/", net::NodeId{0});
  EXPECT_EQ(tb.dyad_domain().subscriber_for("pair0000/frame00001"),
            net::NodeId{1});
  EXPECT_EQ(tb.dyad_domain().subscriber_for("pair0001/frame00009"),
            net::NodeId{0});
  EXPECT_FALSE(tb.dyad_domain().subscriber_for("pair0002/frame00000")
                   .has_value());
  // Longest prefix wins.
  tb.dyad_domain().subscribe("pair0000/frame00001", net::NodeId{0});
  EXPECT_EQ(tb.dyad_domain().subscriber_for("pair0000/frame00001"),
            net::NodeId{0});
}

TEST(DyadPushTest, ProducedFilesArriveAtSubscriber) {
  Testbed tb(push_params());
  tb.dyad_domain().subscribe("pair0000/", net::NodeId{1});
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p");
  sim.spawn([](Testbed& t, perf::Recorder& r) -> Task<void> {
    DyadProducer producer(*t.node(0).dyad, r);
    for (std::uint64_t f = 0; f < 4; ++f) {
      co_await producer.produce(workflow::frame_path(0, f),
                                md::kJac.frame_bytes());
    }
  }(tb, prec));
  sim.run_to_quiescence();
  EXPECT_EQ(tb.node(0).dyad->pushes_sent(), 4u);
  for (std::uint64_t f = 0; f < 4; ++f) {
    EXPECT_TRUE(tb.node(1).local_fs->exists(
        "dyad_cache/" + workflow::frame_path(0, f)));
  }
}

TEST(DyadPushTest, ConsumerTakesWarmPathOnPushedData) {
  Testbed tb(push_params());
  tb.dyad_domain().subscribe("pair0000/", net::NodeId{1});
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  sim.spawn([](Testbed& t, perf::Recorder& pr, perf::Recorder& cr)
                -> Task<void> {
    DyadProducer producer(*t.node(0).dyad, pr);
    DyadConsumer consumer(*t.node(1).dyad, cr);
    co_await producer.produce("pair0000/frame00000", md::kJac.frame_bytes());
    co_await t.simulation().delay(20_ms);  // let the push land
    co_await consumer.consume("pair0000/frame00000", md::kJac.frame_bytes());
    EXPECT_EQ(consumer.warm_hits(), 1u);
  }(tb, prec, crec));
  sim.run_to_quiescence();
  // No pull happened: the broker never served a remote read.
  EXPECT_EQ(tb.node(0).dyad->remote_reads_served(), 0u);
  EXPECT_EQ(crec.tree().find("dyad_consume/dyad_get_data"), nullptr);
}

TEST(DyadPushTest, EagerConsumerStillGetsDataDuringPushRace) {
  // Consumer asks before and during the push; whichever path wins, the
  // frame arrives exactly once and nothing deadlocks or throws.
  Testbed tb(push_params());
  tb.dyad_domain().subscribe("pair0000/", net::NodeId{1});
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  sim.spawn([](Testbed& t, perf::Recorder& pr, perf::Recorder& cr)
                -> Task<void> {
    DyadProducer producer(*t.node(0).dyad, pr);
    DyadConsumer consumer(*t.node(1).dyad, cr);
    std::vector<Task<void>> both;
    both.push_back([](DyadConsumer& c) -> Task<void> {
      co_await c.consume("pair0000/frame00000", md::kJac.frame_bytes());
    }(consumer));
    both.push_back([](Testbed& tt, DyadProducer& p) -> Task<void> {
      co_await tt.simulation().delay(5_ms);
      co_await p.produce("pair0000/frame00000", md::kJac.frame_bytes());
    }(t, producer));
    co_await sim::all(t.simulation(), std::move(both));
  }(tb, prec, crec));
  EXPECT_NO_THROW(sim.run_to_quiescence());
}

TEST(DyadPushTest, EnsembleWithPushModeReducesConsumerMovement) {
  auto base = [](bool push) {
    workflow::EnsembleConfig c;
    c.solution = workflow::Solution::kDyad;
    c.pairs = 2;
    c.nodes = 2;
    c.workload.model = md::kStmv;  // large frames make the pull visible
    c.workload.stride = md::kStmv.stride;
    c.workload.frames = 8;
    c.repetitions = 2;
    c.testbed.dyad.push_mode = push;
    return c;
  };
  const auto pull = run_ensemble(base(false));
  const auto push = run_ensemble(base(true));
  // Push overlaps the transfer with MD compute: the consumer's measured
  // movement collapses to the local staged read.
  EXPECT_LT(push.cons_movement_us.mean(), 0.5 * pull.cons_movement_us.mean());
  EXPECT_GT(push.counters.get("dyad_warm_hits"), 0u);
}

}  // namespace
}  // namespace mdwf::dyad
