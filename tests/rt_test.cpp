// Tests for the real-thread, real-filesystem backend.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "mdwf/rt/file_channel.hpp"
#include "mdwf/rt/pipeline.hpp"

namespace mdwf::rt {
namespace {

namespace fs = std::filesystem;

fs::path test_dir(const std::string& name) {
  return fs::temp_directory_path() / ("mdwf_rt_test_" + name);
}

TEST(FileChannelTest, PutThenGetRoundTripsFrame) {
  FileChannel ch(test_dir("roundtrip"), SyncProtocol::kEventful);
  const md::Frame frame = md::synthesize_frame("JAC", 500, 7, 3);
  ch.put("f0", frame);
  const auto got = ch.get("f0");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);
  EXPECT_EQ(ch.stats().frames, 1u);
  EXPECT_GT(ch.stats().bytes, 500u * 28u);
}

TEST(FileChannelTest, GetBlocksUntilPut) {
  FileChannel ch(test_dir("blocking"), SyncProtocol::kEventful);
  const md::Frame frame = md::synthesize_frame("X", 10, 0, 1);
  std::optional<md::Frame> got;
  std::thread consumer([&] { got = ch.get("later"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ch.put("later", frame);
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);
  EXPECT_GE(ch.stats().consumer_wait, std::chrono::milliseconds(20));
}

TEST(FileChannelTest, CoarsePollingAlsoDelivers) {
  FileChannel ch(test_dir("polling"), SyncProtocol::kCoarse,
                 std::chrono::milliseconds(1));
  const md::Frame frame = md::synthesize_frame("X", 10, 0, 2);
  std::optional<md::Frame> got;
  std::thread consumer([&] { got = ch.get("poll"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.put("poll", frame);
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);
}

TEST(FileChannelTest, CloseUnblocksWaiters) {
  FileChannel ch(test_dir("close"), SyncProtocol::kEventful);
  std::optional<md::Frame> got = md::synthesize_frame("X", 1, 0, 1);
  std::thread consumer([&] { got = ch.get("never"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  consumer.join();
  EXPECT_FALSE(got.has_value());
}

TEST(FileChannelTest, NestedNamesCreateDirectories) {
  FileChannel ch(test_dir("nested"), SyncProtocol::kEventful);
  const md::Frame frame = md::synthesize_frame("X", 32, 0, 9);
  ch.put("pair0/frame00000", frame);
  const auto got = ch.get("pair0/frame00000");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->atoms.size(), 32u);
}

TEST(FileChannelTest, ManyFramesInOrder) {
  FileChannel ch(test_dir("many"), SyncProtocol::kEventful);
  std::thread producer([&] {
    for (int f = 0; f < 20; ++f) {
      ch.put("f" + std::to_string(f), md::synthesize_frame("X", 64, f, 5));
    }
  });
  for (int f = 0; f < 20; ++f) {
    const auto got = ch.get("f" + std::to_string(f));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->index, static_cast<std::uint64_t>(f));
  }
  producer.join();
  EXPECT_EQ(ch.stats().frames, 20u);
}

TEST(PipelineTest, RunsToCompletionAndAnalyzesEveryFrame) {
  PipelineConfig config;
  config.lj.particle_count = 125;
  config.stride = 5;
  config.frames = 8;
  config.staging_dir = test_dir("pipeline");
  const auto result = run_insitu_pipeline(config);
  EXPECT_EQ(result.series.size(), 8u);
  for (const auto& a : result.series) {
    EXPECT_GT(a.largest_eigenvalue, 0.0);
    EXPECT_GT(a.radius_of_gyration, 0.0);
  }
  EXPECT_EQ(result.channel.frames, 8u);
  EXPECT_EQ(result.md_steps, 40u);
  EXPECT_GT(result.final_temperature, 0.0);
}

TEST(PipelineTest, CoarseAndEventfulProduceIdenticalAnalytics) {
  PipelineConfig config;
  config.lj.particle_count = 125;
  config.stride = 4;
  config.frames = 6;
  config.staging_dir = test_dir("proto_a");
  const auto a = run_insitu_pipeline(config);
  config.protocol = SyncProtocol::kCoarse;
  config.poll_interval = std::chrono::milliseconds(1);
  config.staging_dir = test_dir("proto_b");
  const auto b = run_insitu_pipeline(config);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    // Same deterministic trajectory regardless of transport sync.
    EXPECT_DOUBLE_EQ(a.series[i].largest_eigenvalue,
                     b.series[i].largest_eigenvalue);
  }
}

}  // namespace
}  // namespace mdwf::rt
