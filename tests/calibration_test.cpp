// Calibration regression suite: pins the model's agreement with the paper's
// published numbers (EXPERIMENTS.md) as toleranced assertions, so a future
// change to the testbed parameters or the DES kernel that silently drifts
// the headline ratios fails CI instead of quietly invalidating the tables.
//
// Pinned here:
//   * Table I  — serialized frame sizes, exact by construction
//                (28 B/atom payload + fixed header/CRC).
//   * Fig. 5   — single-node DYAD vs XFS, JAC: DYAD production 1.4-1.5x
//                slower (measured 192 vs 131 us/frame).
//   * Fig. 6   — two-node DYAD vs Lustre, JAC: DYAD consumer movement 6-8x
//                faster (paper 6.9x, measured 7.4x).
//
// The ensembles run fewer repetitions than the bench binaries (3 vs 10) but
// the full 128 frames, so the per-frame steady-state means match the
// EXPERIMENTS.md capture closely.
#include <gtest/gtest.h>

#include <string>

#include "mdwf/md/frame.hpp"
#include "mdwf/md/models.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace mdwf {
namespace {

using workflow::EnsembleConfig;
using workflow::EnsembleResult;
using workflow::Solution;

// --- Table I: molecular models and frame sizes ----------------------------

// Serialized layout (md/frame.hpp): magic u32 + version u16 + reserved u16 +
// name(u8 len + bytes) + index u64 + count u64 + atoms*28 + crc32c u32.
constexpr std::uint64_t kFixedOverhead = 4 + 2 + 2 + 1 + 8 + 8 + 4;

std::uint64_t expected_serialized_bytes(const md::MolecularModel& m) {
  return m.atoms * md::kBytesPerAtom + kFixedOverhead + m.name.size();
}

TEST(CalibrationTest, TableIAtomCountsAndLayout) {
  EXPECT_EQ(md::kBytesPerAtom, 28u);  // u32 id + 3 x f64 position
  EXPECT_EQ(md::kJac.atoms, 23'558u);
  EXPECT_EQ(md::kApoA1.atoms, 92'224u);
  EXPECT_EQ(md::kF1Atpase.atoms, 327'506u);
  EXPECT_EQ(md::kStmv.atoms, 1'066'628u);
}

TEST(CalibrationTest, TableISerializedSizesExact) {
  for (const auto& model : md::kAllModels) {
    const md::Frame f = md::synthesize_frame(std::string(model.name),
                                             model.atoms, /*index=*/0,
                                             /*seed=*/1);
    const std::uint64_t expected = expected_serialized_bytes(model);
    EXPECT_EQ(f.serialized_size().count(), expected) << model.name;
    EXPECT_EQ(f.serialize().size(), expected) << model.name;
  }
}

TEST(CalibrationTest, TableIFrameSizesMatchPaper) {
  // Paper Table I reports JAC 644.21 KiB / ApoA1 2.46 MiB / F1 ATPase
  // 8.75 MiB / STMV 28.48 MiB.  Our serialized sizes (payload + header/CRC)
  // reproduce them to the table's printed precision (JAC differs in the
  // last digit: 644.20 vs 644.21 KiB — the paper rounds the raw payload).
  EXPECT_NEAR(Bytes(expected_serialized_bytes(md::kJac)).to_kib(), 644.21,
              0.02);
  EXPECT_NEAR(Bytes(expected_serialized_bytes(md::kApoA1)).to_mib(), 2.46,
              0.005);
  EXPECT_NEAR(Bytes(expected_serialized_bytes(md::kF1Atpase)).to_mib(), 8.75,
              0.005);
  EXPECT_NEAR(Bytes(expected_serialized_bytes(md::kStmv)).to_mib(), 28.48,
              0.005);
}

TEST(CalibrationTest, TableIIFramePeriods) {
  // Table II strides give every model a ~0.82 s frame period (F1 ATPase
  // 0.79 s, as the paper's own steps/s rounding implies).
  EXPECT_NEAR(md::kJac.frame_period_seconds(), 0.82, 0.005);
  EXPECT_NEAR(md::kApoA1.frame_period_seconds(), 0.82, 0.005);
  EXPECT_NEAR(md::kF1Atpase.frame_period_seconds(), 0.79, 0.005);
  EXPECT_NEAR(md::kStmv.frame_period_seconds(), 0.82, 0.005);
}

// --- Figure ratio bands ---------------------------------------------------

EnsembleConfig figure_config(Solution s, std::uint32_t pairs,
                             std::uint32_t nodes) {
  EnsembleConfig c;
  c.solution = s;
  c.pairs = pairs;
  c.nodes = nodes;
  if (s == Solution::kXfs) c.placement = workflow::Placement::kColocated;
  c.workload.model = md::kJac;
  c.workload.stride = md::kJac.stride;
  c.workload.frames = 128;
  c.repetitions = 3;
  c.base_seed = 1;
  return c;
}

double prod_total_us(const EnsembleResult& r) {
  return r.prod_movement_us.mean() + r.prod_idle_us.mean();
}

TEST(CalibrationTest, Fig5DyadProductionSlowdownVsXfs) {
  // Paper Fig. 5(a): DYAD production ~1.4x slower than XFS on one node
  // (global namespace management).  EXPERIMENTS.md capture: 1.5x
  // (192 vs 131 us/frame).  Pin the ratio band and the absolute scale.
  const EnsembleResult dyad =
      workflow::run_ensemble(figure_config(Solution::kDyad, 4, 1));
  const EnsembleResult xfs =
      workflow::run_ensemble(figure_config(Solution::kXfs, 4, 1));
  const double ratio = prod_total_us(dyad) / prod_total_us(xfs);
  EXPECT_GE(ratio, 1.35) << "DYAD " << prod_total_us(dyad) << " us vs XFS "
                         << prod_total_us(xfs) << " us";
  EXPECT_LE(ratio, 1.60) << "DYAD " << prod_total_us(dyad) << " us vs XFS "
                         << prod_total_us(xfs) << " us";
  EXPECT_NEAR(prod_total_us(dyad), 192.0, 20.0);  // us/frame
  EXPECT_NEAR(prod_total_us(xfs), 131.0, 15.0);   // us/frame
  // Fig. 5(a): production idle is insignificant for both solutions.
  EXPECT_LT(dyad.prod_idle_us.mean(), 0.05 * prod_total_us(dyad));
  EXPECT_LT(xfs.prod_idle_us.mean(), 0.05 * prod_total_us(xfs));
}

TEST(CalibrationTest, Fig6DyadConsumerMovementSpeedupVsLustre) {
  // Paper Fig. 6(b): DYAD consumer movement 6.9x faster than Lustre for JAC
  // at 8 pairs on two nodes.  EXPERIMENTS.md capture: 7.4x.  Band 6-8x.
  const EnsembleResult dyad =
      workflow::run_ensemble(figure_config(Solution::kDyad, 8, 2));
  const EnsembleResult lustre =
      workflow::run_ensemble(figure_config(Solution::kLustre, 8, 2));
  const double ratio =
      lustre.cons_movement_us.mean() / dyad.cons_movement_us.mean();
  EXPECT_GE(ratio, 6.0) << "Lustre " << lustre.cons_movement_us.mean()
                        << " us vs DYAD " << dyad.cons_movement_us.mean()
                        << " us";
  EXPECT_LE(ratio, 8.0) << "Lustre " << lustre.cons_movement_us.mean()
                        << " us vs DYAD " << dyad.cons_movement_us.mean()
                        << " us";
  // Paper Fig. 6(a): DYAD producer movement 7.5x faster (measured 6.4x).
  const double prod_ratio =
      lustre.prod_movement_us.mean() / dyad.prod_movement_us.mean();
  EXPECT_GE(prod_ratio, 5.5);
  EXPECT_LE(prod_ratio, 7.5);
}

}  // namespace
}  // namespace mdwf
