// mdwf::tenant — multi-tenant co-scheduling invariants.
//
// Pins the four load-bearing properties of co-tenant runs: the solo
// contract (one tenant, quotas idle == the classic runner bit-for-bit),
// thread-count byte-identity of the merged CSV, fault isolation (chaos in
// tenant A never recovers or re-executes anything in healthy tenant B),
// and quota conservation/bounding (admits == releases, weighted shares
// floor at one slot, a noise storm sheds instead of starving the victim).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "mdwf/common/keyval.hpp"
#include "mdwf/health/quota.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/tenant/tenant.hpp"
#include "mdwf/workflow/config.hpp"

namespace mdwf::tenant {
namespace {

using workflow::EnsembleConfig;
using workflow::Placement;
using workflow::Solution;

TenantSpec small_tenant(const std::string& name, Solution s,
                        std::uint32_t pairs, std::uint32_t nodes,
                        std::uint64_t frames = 8) {
  TenantSpec t;
  t.name = name;
  t.solution = s;
  t.pairs = pairs;
  t.nodes = nodes;
  t.workload.frames = frames;
  if (s == Solution::kXfs) t.placement = Placement::kColocated;
  return t;
}

TenantSpec noise_tenant(const std::string& name, std::uint32_t intensity) {
  TenantSpec t;
  t.name = name;
  t.kind = TenantKind::kNoise;
  t.nodes = 1;
  t.noise.intensity = intensity;
  return t;
}

MultiTenantConfig small_multi(std::vector<TenantSpec> tenants,
                              std::uint32_t reps = 3) {
  MultiTenantConfig c;
  c.tenants = std::move(tenants);
  c.repetitions = reps;
  c.base_seed = 7;
  return c;
}

// --- Solo contract -------------------------------------------------------

// A single-tenant config reproduces sweep::run_ensemble exactly: same
// samples, same counters.  This is what makes the solo overhead zero — the
// co-tenant path IS the classic path when nobody shares the testbed.
TEST(TenantSolo, MatchesClassicRunnerBitForBit) {
  EnsembleConfig classic;
  classic.solution = Solution::kDyad;
  classic.pairs = 2;
  classic.nodes = 2;
  classic.workload.frames = 8;
  classic.repetitions = 3;
  classic.base_seed = 7;
  const auto want = sweep::run_ensemble(classic);

  auto mc = small_multi({small_tenant("solo", Solution::kDyad, 2, 2)});
  const auto got = run_multi_tenant(mc);
  ASSERT_EQ(got.tenants.size(), 1u);
  const auto& r = got.tenants[0].result;

  EXPECT_EQ(want.makespan_s.values(), r.makespan_s.values());
  EXPECT_EQ(want.cons_fetch_us.values(), r.cons_fetch_us.values());
  EXPECT_EQ(want.prod_movement_us.values(), r.prod_movement_us.values());
  EXPECT_EQ(want.prod_idle_us.values(), r.prod_idle_us.values());
  EXPECT_EQ(want.cons_movement_us.values(), r.cons_movement_us.values());
  EXPECT_EQ(want.cons_idle_us.values(), r.cons_idle_us.values());
  // Counters split across the tenant row and the shared-service row
  // (KVS/Lustre/fabric totals are counted once); their sum is the classic
  // single-ensemble value, exactly.
  for (const auto& [name, value] : want.counters) {
    EXPECT_EQ(value, r.counters.get(name) + got.shared.get(name)) << name;
  }
  // The tenant-only counters exist and stayed idle.
  EXPECT_EQ(r.counters.get("slo_escalations"), 0u);
  EXPECT_EQ(r.counters.get("quota_kvs_sheds"), 0u);
}

// --- Thread-count determinism --------------------------------------------

// The merged CSV is the byte-compare surface: crash chaos in one tenant,
// SLO guard on it, a lustre neighbor, and a noise storm — folded across
// 1, 2, and 8 worker threads — must serialize identically.
TEST(TenantDeterminism, CsvByteIdenticalAcrossThreadCounts) {
  auto victim = small_tenant("victim", Solution::kDyad, 2, 2, 4);
  victim.faults = "crash:0";
  victim.slo = true;
  victim.slo_params.fetch_p99_target_us = 500.0;  // breach early
  victim.slo_params.min_samples = 4;
  victim.slo_params.holdoff = Duration::milliseconds(50);
  auto mc = small_multi({victim, small_tenant("peer", Solution::kLustre, 1, 2, 4),
                         noise_tenant("storm", 8)});
  mc.threads = 1;
  const std::string csv1 = run_multi_tenant(mc).to_csv();
  mc.threads = 2;
  const std::string csv2 = run_multi_tenant(mc).to_csv();
  mc.threads = 8;
  const std::string csv8 = run_multi_tenant(mc).to_csv();
  EXPECT_EQ(csv1, csv2);
  EXPECT_EQ(csv1, csv8);
  // And the run was not vacuous: the crash fired and the guard moved.
  ASSERT_NE(csv1.find("victim"), std::string::npos);
}

// --- Fault isolation -----------------------------------------------------

// Chaos scoped to tenant A must be invisible to tenant B's recovery
// machinery: B consumes every frame with zero crash recoveries and zero
// re-executions, and nothing in the run loses data.
TEST(TenantIsolation, CrashInOneTenantLeavesNeighborUntouched) {
  auto chaotic = small_tenant("chaotic", Solution::kDyad, 2, 2, 8);
  chaotic.faults = "crash:0";
  auto mc = small_multi(
      {chaotic, small_tenant("healthy", Solution::kDyad, 2, 2, 8)});
  const auto r = run_multi_tenant(mc);
  ASSERT_EQ(r.tenants.size(), 2u);
  const auto& a = r.tenants[0].result.counters;
  const auto& b = r.tenants[1].result.counters;

  const std::uint64_t expected = 2ull * 8ull * mc.repetitions;
  EXPECT_EQ(a.get("frames_consumed"), expected);
  EXPECT_EQ(b.get("frames_consumed"), expected);
  // The crash actually happened — to A, and only to A.
  EXPECT_GT(a.get("crash_recoveries"), 0u);
  EXPECT_EQ(b.get("crash_recoveries"), 0u);
  EXPECT_EQ(b.get("frames_reexecuted"), 0u);
  EXPECT_EQ(b.get("checkpoint_restores"), 0u);
  EXPECT_EQ(r.shared.get("integrity_unrecovered"), 0u);
}

// A tenant scenario targeting a node outside the tenant's own slice is a
// config error, not silent chaos in a neighbor.
TEST(TenantIsolation, ScenarioBeyondSliceIsRejected) {
  auto bad = small_tenant("bad", Solution::kDyad, 2, 2);
  bad.faults = "crash:5";  // node 5 of a 2-node tenant
  auto mc = small_multi({bad, small_tenant("peer", Solution::kDyad, 2, 2)});
  EXPECT_THROW(run_multi_tenant(mc), ConfigError);
}

// --- Quotas --------------------------------------------------------------

TEST(TenantQuotaUnit, WeightedBoundsFloorAtOneSlot) {
  health::QuotaParams qp;
  qp.enabled = true;
  qp.kvs_queue = 24;
  qp.mds_queue = 16;
  qp.ost_queue = 48;
  health::TenantQuota q(qp);
  const std::uint32_t big = q.add_tenant("big", 3.0);
  const std::uint32_t small = q.add_tenant("small", 1.0);
  const std::uint32_t tiny = q.add_tenant("tiny", 0.01);
  q.map_nodes(0, 2, big);
  q.map_nodes(2, 1, small);
  q.map_nodes(3, 1, tiny);

  // 24 slots at weights 3 : 1 : 0.01 — shares round, never below one.
  EXPECT_EQ(q.bound(health::QuotaResource::kKvs, big), 18u);
  EXPECT_EQ(q.bound(health::QuotaResource::kKvs, small), 6u);
  EXPECT_EQ(q.bound(health::QuotaResource::kKvs, tiny), 1u);

  EXPECT_EQ(q.tenant_of(net::NodeId{1}), big);
  EXPECT_EQ(q.tenant_of(net::NodeId{3}), tiny);
  // Unmapped nodes (servers) are never quota-limited.
  EXPECT_EQ(q.tenant_of(net::NodeId{17}), health::TenantQuota::kUnmapped);
  EXPECT_FALSE(q.at_bound(health::QuotaResource::kKvs, net::NodeId{17}));

  // tiny's single slot: free, taken, free again; admits pair with releases.
  const net::NodeId tn{3};
  EXPECT_FALSE(q.at_bound(health::QuotaResource::kKvs, tn));
  q.admit(health::QuotaResource::kKvs, tn);
  EXPECT_TRUE(q.at_bound(health::QuotaResource::kKvs, tn));
  q.release(health::QuotaResource::kKvs, tn);
  EXPECT_FALSE(q.at_bound(health::QuotaResource::kKvs, tn));
  EXPECT_EQ(q.admits(health::QuotaResource::kKvs, tiny), 1u);
  EXPECT_EQ(q.releases(health::QuotaResource::kKvs, tiny), 1u);
  EXPECT_EQ(q.in_flight(health::QuotaResource::kKvs, tiny), 0);
}

// A KVS metadata storm next to a DYAD victim: with quotas armed the storm
// sheds (bounded to its share) while the victim still consumes every frame,
// and every tenant's admission accounting balances.
TEST(TenantQuotaRun, NoiseStormShedsWhileVictimCompletes) {
  auto mc = small_multi({small_tenant("victim", Solution::kDyad, 2, 2, 4),
                         noise_tenant("storm", 32)},
                        /*reps=*/1);
  const auto r = run_multi_tenant(mc);
  const auto& victim = r.tenants[0].result.counters;
  const auto& storm = r.tenants[1].result.counters;

  EXPECT_EQ(victim.get("frames_consumed"), 2ull * 4ull);
  EXPECT_GT(storm.get("noise_ops"), 0u);
  EXPECT_GT(storm.get("noise_sheds"), 0u);
  // Conservation: every admitted request was released (RAII pairing); the
  // runner also asserts in_flight == 0 at end of every repetition.
  for (const auto& tr : r.tenants) {
    EXPECT_EQ(tr.result.counters.get("quota_admits"),
              tr.result.counters.get("quota_releases"))
        << tr.spec.name;
  }
}

// Quotas protect the victim: its fetch P99 under the same storm is strictly
// better with fair-share admission than without.
TEST(TenantQuotaRun, QuotaImprovesVictimTailUnderStorm) {
  auto mc = small_multi({small_tenant("victim", Solution::kDyad, 2, 2, 4),
                         noise_tenant("storm", 32)},
                        /*reps=*/1);
  mc.quota = false;
  const double p99_open = run_multi_tenant(mc)
                              .tenants[0]
                              .result.cons_fetch_us.quantile(0.99);
  mc.quota = true;
  const double p99_fair = run_multi_tenant(mc)
                              .tenants[0]
                              .result.cons_fetch_us.quantile(0.99);
  EXPECT_LT(p99_fair, p99_open);
}

// --- SLO guard -----------------------------------------------------------

// An unreachable P99 target under a noisy neighbor forces the guard up the
// ladder: escalations and staggered frames are counted, and degradation is
// graceful — the victim still consumes everything.
TEST(TenantSlo, GuardEscalatesAndVictimStillCompletes) {
  auto victim = small_tenant("victim", Solution::kDyad, 2, 2, 8);
  victim.slo = true;
  victim.slo_params.fetch_p99_target_us = 300.0;
  // Trust the window early and escalate fast, so the ladder moves while
  // frames are still being produced (16 fetch samples total in this run).
  victim.slo_params.min_samples = 4;
  victim.slo_params.holdoff = Duration::milliseconds(50);
  auto mc = small_multi({victim, noise_tenant("storm", 16)}, /*reps=*/1);
  const auto r = run_multi_tenant(mc);
  const auto& c = r.tenants[0].result.counters;
  EXPECT_GT(c.get("slo_escalations"), 0u);
  EXPECT_GT(c.get("slo_staggered_frames"), 0u);
  EXPECT_EQ(c.get("frames_consumed"), 2ull * 8ull);
}

// --- key=value binding ---------------------------------------------------

TEST(TenantParse, DescriptorGrammar) {
  KeyValueConfig cfg;
  cfg.set("tenants", "victim@dyad/4/2/crash:0/2.5,noise/16/0.5,xfs");
  cfg.set("slo", "1");
  cfg.set("slo_target_us", "4000");
  cfg.set("frames", "4");
  cfg.set("reps", "2");
  const auto mc = parse_multi_tenant(cfg, workflow::EnsembleConfig{});
  ASSERT_EQ(mc.tenants.size(), 3u);

  const auto& v = mc.tenants[0];
  EXPECT_EQ(v.name, "victim");
  EXPECT_EQ(v.kind, TenantKind::kWorkflow);
  EXPECT_EQ(v.solution, Solution::kDyad);
  EXPECT_EQ(v.pairs, 4u);
  EXPECT_EQ(v.nodes, 2u);
  EXPECT_EQ(v.faults, "crash:0");
  EXPECT_DOUBLE_EQ(v.weight, 2.5);
  EXPECT_TRUE(v.slo);
  EXPECT_DOUBLE_EQ(v.slo_params.fetch_p99_target_us, 4000.0);
  EXPECT_EQ(v.workload.frames, 4u);

  const auto& n = mc.tenants[1];
  EXPECT_EQ(n.name, "t1");  // default name by index
  EXPECT_EQ(n.kind, TenantKind::kNoise);
  EXPECT_EQ(n.nodes, 1u);
  EXPECT_EQ(n.noise.intensity, 16u);
  EXPECT_DOUBLE_EQ(n.weight, 0.5);

  const auto& x = mc.tenants[2];
  EXPECT_EQ(x.solution, Solution::kXfs);
  EXPECT_EQ(x.nodes, 1u);  // xfs defaults to one (colocated) node
  EXPECT_EQ(x.placement, Placement::kColocated);

  EXPECT_EQ(mc.repetitions, 2u);
  // Crash windows in any tenant default end-to-end integrity on, as in the
  // classic binding.
  EXPECT_TRUE(mc.testbed.integrity.enabled);
}

TEST(TenantParse, RejectsMalformedDescriptors) {
  const workflow::EnsembleConfig d{};
  auto parse = [&](const char* tenants) {
    KeyValueConfig cfg;
    cfg.set("tenants", tenants);
    return parse_multi_tenant(cfg, d);
  };
  EXPECT_THROW(parse(""), ConfigError);
  EXPECT_THROW(parse("frisbee/2/2"), ConfigError);      // unknown solution
  EXPECT_THROW(parse("dyad/two/2"), ConfigError);       // not a number
  EXPECT_THROW(parse("dyad/2/2/none/0"), ConfigError);  // weight must be > 0
  EXPECT_THROW(parse("a@dyad/2/2,a@lustre/2/2"), ConfigError);  // dup name
  EXPECT_THROW(parse("dyad/2/2/crash:9"), ConfigError);  // beyond slice
  EXPECT_THROW(parse("noise/16/1/9"), ConfigError);      // too many fields

  // Global faults= would chaos every tenant ambiguously; each tenant
  // declares its own scenario instead.
  KeyValueConfig cfg;
  cfg.set("tenants", "dyad/2/2");
  cfg.set("faults", "bit-flip");
  EXPECT_THROW(parse_multi_tenant(cfg, d), ConfigError);
}

}  // namespace
}  // namespace mdwf::tenant
