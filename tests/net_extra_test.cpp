// Additional network-model tests: RDMA put, control sizing, mid-transfer
// re-rating, and multi-segment bottlenecks.
#include <gtest/gtest.h>

#include "mdwf/common/time.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/sim/primitives.hpp"

namespace mdwf::net {
namespace {

using namespace mdwf::literals;
using sim::Simulation;
using sim::Task;

TEST(NetworkExtraTest, RdmaPutStreamsThenAcks) {
  Simulation sim;
  NetworkParams p;
  p.nic_bandwidth_bps = 1e9;
  p.latency = 5_us;
  p.control_message_size = Bytes(0);
  Network net(sim, p, 2);
  TimePoint done;
  sim.spawn([](Simulation& s, Network& n, TimePoint& t) -> Task<void> {
    co_await n.rdma_put(NodeId{0}, NodeId{1}, Bytes(1'000'000));
    t = s.now();
  }(sim, net, done));
  sim.run_to_quiescence();
  // payload latency 5us + 1ms stream + ack latency 5us.
  EXPECT_EQ(done, TimePoint::origin() + 10_us + 1_ms);
}

TEST(NetworkExtraTest, ControlMessageSizeCharged) {
  Simulation sim;
  NetworkParams p;
  p.nic_bandwidth_bps = 1e6;  // 1 MB/s: control bytes visible
  p.latency = Duration::zero();
  p.control_message_size = Bytes(1000);
  Network net(sim, p, 2);
  sim.spawn([](Simulation& s, Network& n) -> Task<void> {
    const TimePoint t0 = s.now();
    co_await n.send_control(NodeId{0}, NodeId{1});
    EXPECT_EQ(s.now() - t0, 1_ms);  // 1000 B at 1 MB/s
  }(sim, net));
  sim.run_to_quiescence();
}

TEST(NetworkExtraTest, BackgroundLoadChangeMidTransferReRates) {
  Simulation sim;
  FairShareChannel ch(sim, 1e9);
  TimePoint done;
  sim.spawn([](Simulation& s, FairShareChannel& c, TimePoint& t) -> Task<void> {
    co_await c.transfer(Bytes(100'000'000));
    t = s.now();
  }(sim, ch, done));
  sim.call_after(50_ms, [&ch] { ch.set_background_load(0.5); });
  sim.run_to_quiescence();
  // 50 MB at full rate (50 ms), then 50 MB at half rate (100 ms).
  EXPECT_EQ(done, TimePoint::origin() + 150_ms);
}

TEST(NetworkExtraTest, SlowestSegmentGatesTransfer) {
  Simulation sim;
  NetworkParams p;
  p.nic_bandwidth_bps = 2e9;
  p.bisection_bandwidth_bps = 0.5e9;  // core is 4x slower than NICs
  p.latency = Duration::zero();
  Network net(sim, p, 2);
  sim.spawn([](Simulation& s, Network& n) -> Task<void> {
    const TimePoint t0 = s.now();
    co_await n.transfer(NodeId{0}, NodeId{1}, Bytes(100'000'000));
    EXPECT_NEAR((s.now() - t0).to_seconds(), 0.2, 1e-6);  // core-bound
  }(sim, net));
  sim.run_to_quiescence();
}

TEST(NetworkExtraTest, DuplexDirectionsAreIndependent) {
  Simulation sim;
  NetworkParams p;
  p.nic_bandwidth_bps = 1e9;
  p.latency = Duration::zero();
  Network net(sim, p, 2);
  std::vector<Task<void>> both;
  both.push_back([](Network& n) -> Task<void> {
    co_await n.transfer(NodeId{0}, NodeId{1}, Bytes(100'000'000));
  }(net));
  both.push_back([](Network& n) -> Task<void> {
    co_await n.transfer(NodeId{1}, NodeId{0}, Bytes(100'000'000));
  }(net));
  sim.spawn(all(sim, std::move(both)));
  sim.run_to_quiescence();
  // Opposite directions use distinct tx/rx channels: full overlap.
  EXPECT_NEAR(sim.now().to_seconds(), 0.1, 1e-6);
}

TEST(NetworkExtraTest, TotalsTrackEveryTransfer) {
  Simulation sim;
  NetworkParams p;
  p.latency = Duration::zero();
  p.control_message_size = Bytes(256);
  Network net(sim, p, 3);
  sim.spawn([](Network& n) -> Task<void> {
    co_await n.transfer(NodeId{0}, NodeId{1}, Bytes(1000));
    co_await n.transfer(NodeId{0}, NodeId{2}, Bytes(2000));
    co_await n.send_control(NodeId{0}, NodeId{1});
  }(net));
  sim.run_to_quiescence();
  EXPECT_EQ(net.tx(NodeId{0}).total_requested(), Bytes(3256));
  EXPECT_EQ(net.rx(NodeId{1}).total_requested(), Bytes(1256));
  EXPECT_EQ(net.rx(NodeId{2}).total_requested(), Bytes(2000));
}

TEST(NetworkExtraTest, FlowCountIsLiveDuringTransfer) {
  Simulation sim;
  NetworkParams p;
  p.nic_bandwidth_bps = 1e6;
  p.latency = Duration::zero();
  Network net(sim, p, 2);
  sim.spawn([](Network& n) -> Task<void> {
    co_await n.transfer(NodeId{0}, NodeId{1}, Bytes(10'000));
  }(net));
  sim.spawn([](Simulation& s, Network& n) -> Task<void> {
    co_await s.delay(1_ms);
    EXPECT_EQ(n.tx(NodeId{0}).active_flows(), 1u);
    EXPECT_EQ(n.rx(NodeId{1}).active_flows(), 1u);
  }(sim, net));
  sim.run_to_quiescence();
  EXPECT_EQ(net.tx(NodeId{0}).active_flows(), 0u);
}

}  // namespace
}  // namespace mdwf::net
