// Integration tests for the workflow layer: connectors, producer/consumer
// tasks, and the ensemble runner across all three data-management solutions.
#include <gtest/gtest.h>

#include "mdwf/workflow/ensemble.hpp"

namespace mdwf::workflow {
namespace {

using namespace mdwf::literals;

WorkloadConfig small_workload(md::MolecularModel model = md::kJac,
                              std::uint64_t frames = 8) {
  WorkloadConfig w;
  w.model = model;
  w.stride = model.stride;
  w.frames = frames;
  return w;
}

EnsembleConfig quick_config(Solution s, std::uint32_t pairs,
                            std::uint32_t nodes) {
  EnsembleConfig c;
  c.solution = s;
  c.pairs = pairs;
  c.nodes = nodes;
  c.workload = small_workload();
  c.repetitions = 2;
  return c;
}

TEST(EnsembleTest, DyadSingleNodeRuns) {
  const auto r = run_ensemble(quick_config(Solution::kDyad, 2, 1));
  EXPECT_EQ(r.prod_movement_us.count(), 2u);  // one sample per repetition
  EXPECT_GT(r.mean_production_us(), 0.0);
  EXPECT_GT(r.mean_consumption_us(), 0.0);
  // Warm path dominates on a single node: all but the first frame per pair.
  EXPECT_GT(r.counters.get("dyad_warm_hits"), 0u);
}

TEST(EnsembleTest, XfsSingleNodeRuns) {
  const auto r = run_ensemble(quick_config(Solution::kXfs, 2, 1));
  EXPECT_GT(r.mean_production_us(), 0.0);
  // Coarse-grained sync: consumption is dominated by idle (~one frame
  // period = 0.82 s).
  EXPECT_GT(r.cons_idle_us.mean(), 500'000.0);
}

TEST(EnsembleTest, LustreTwoNodesRuns) {
  const auto r = run_ensemble(quick_config(Solution::kLustre, 2, 2));
  EXPECT_GT(r.mean_production_us(), 0.0);
  EXPECT_GT(r.cons_idle_us.mean(), 500'000.0);
}

TEST(EnsembleTest, DyadTwoNodesRuns) {
  const auto r = run_ensemble(quick_config(Solution::kDyad, 2, 2));
  EXPECT_GT(r.mean_production_us(), 0.0);
  // Remote path: no warm hits, every frame moves via RDMA.
  EXPECT_EQ(r.counters.get("dyad_warm_hits"), 0u);
}

TEST(EnsembleTest, XfsAcrossNodesIsRejected) {
  EXPECT_DEATH((void)run_ensemble(quick_config(Solution::kXfs, 2, 2)),
               "XFS cannot move data between nodes");
}

TEST(EnsembleTest, DyadConsumptionFarFasterThanXfs) {
  // The paper's headline single-node finding (Fig. 5): DYAD production is
  // modestly slower (metadata), consumption is orders of magnitude faster.
  // Enough frames to amortize the first-frame cold-path wait.
  auto cfg = quick_config(Solution::kDyad, 1, 1);
  cfg.workload.frames = 32;
  const auto dyad = run_ensemble(cfg);
  cfg.solution = Solution::kXfs;
  const auto xfs = run_ensemble(cfg);
  EXPECT_GT(dyad.mean_production_us(), xfs.mean_production_us());
  EXPECT_LT(dyad.mean_production_us(), 3.0 * xfs.mean_production_us());
  EXPECT_GT(xfs.mean_consumption_us() / dyad.mean_consumption_us(), 20.0);
}

TEST(EnsembleTest, ResultsAreReproducible) {
  const auto a = run_ensemble(quick_config(Solution::kDyad, 2, 2));
  const auto b = run_ensemble(quick_config(Solution::kDyad, 2, 2));
  EXPECT_EQ(a.prod_movement_us.values(), b.prod_movement_us.values());
  EXPECT_EQ(a.cons_movement_us.values(), b.cons_movement_us.values());
  EXPECT_EQ(a.cons_idle_us.values(), b.cons_idle_us.values());
  EXPECT_EQ(a.makespan_s.values(), b.makespan_s.values());
}

TEST(EnsembleTest, DifferentSeedsChangeJitterButNotScale) {
  auto c1 = quick_config(Solution::kDyad, 1, 2);
  auto c2 = c1;
  c2.base_seed = 999;
  const auto a = run_ensemble(c1);
  const auto b = run_ensemble(c2);
  EXPECT_NE(a.makespan_s.values(), b.makespan_s.values());
  EXPECT_NEAR(a.makespan_s.mean(), b.makespan_s.mean(),
              0.2 * a.makespan_s.mean());
}

TEST(EnsembleTest, ThicketCarriesTaggedTrees) {
  const auto r = run_ensemble(quick_config(Solution::kDyad, 2, 2));
  // 2 reps x 2 pairs x 2 roles.
  EXPECT_EQ(r.thicket.size(), 8u);
  EXPECT_EQ(r.thicket.filter("role", "consumer").size(), 4u);
  perf::StatTree agg = r.thicket.filter("role", "consumer").aggregate();
  EXPECT_NE(agg.find("consume/dyad_consume/dyad_get_data"), nullptr);
}

TEST(EnsembleTest, MakespanReflectsSerialization) {
  // Coarse-grained sync serializes producer and consumer: the Lustre/XFS
  // makespan approaches 2x the DYAD (pipelined) makespan.
  auto cfg_dyad = quick_config(Solution::kDyad, 1, 2);
  auto cfg_lustre = quick_config(Solution::kLustre, 1, 2);
  const auto dyad = run_ensemble(cfg_dyad);
  const auto lustre = run_ensemble(cfg_lustre);
  EXPECT_GT(lustre.makespan_s.mean(), 1.6 * dyad.makespan_s.mean());
}

TEST(EnsembleTest, FramePathFormatting) {
  EXPECT_EQ(frame_path(3, 17), "pair0003/frame00017");
}

TEST(WorkloadTest, DerivedTimes) {
  const WorkloadConfig w = small_workload();
  EXPECT_NEAR(w.frame_compute().to_seconds(), 0.82, 0.01);
  EXPECT_NEAR(w.serialize_time().to_micros(),
              659'624.0 / 4.0e9 * 1e6, 1.0);
}

TEST(TestbedTest, TopologyLayout) {
  TestbedParams p;
  p.compute_nodes = 4;
  Testbed tb(p);
  EXPECT_EQ(tb.kvs_node(), net::NodeId{4});
  EXPECT_EQ(tb.mds_node(), net::NodeId{5});
  EXPECT_EQ(tb.network().node_count(), 4u + 2u + p.lustre.ost_count);
  EXPECT_EQ(tb.dyad_domain().size(), 4u);
}

}  // namespace
}  // namespace mdwf::workflow
