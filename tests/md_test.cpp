// Unit tests for molecular models, the frame format, the LJ engine, and the
// in-situ analytics.
#include <gtest/gtest.h>

#include <cmath>

#include "mdwf/md/analytics.hpp"
#include "mdwf/md/frame.hpp"
#include "mdwf/md/lj_engine.hpp"
#include "mdwf/md/models.hpp"

namespace mdwf::md {
namespace {

// --- Models (paper Tables I and II) -----------------------------------------

TEST(ModelsTest, FrameSizesMatchTableI) {
  EXPECT_NEAR(kJac.frame_bytes().to_kib(), 644.21, 0.3);
  EXPECT_NEAR(kApoA1.frame_bytes().to_mib(), 2.46, 0.01);
  EXPECT_NEAR(kF1Atpase.frame_bytes().to_mib(), 8.75, 0.01);
  EXPECT_NEAR(kStmv.frame_bytes().to_mib(), 28.48, 0.01);
}

TEST(ModelsTest, AtomCountsMatchTableI) {
  EXPECT_EQ(kJac.atoms, 23'558u);
  EXPECT_EQ(kApoA1.atoms, 92'224u);
  EXPECT_EQ(kF1Atpase.atoms, 327'506u);
  EXPECT_EQ(kStmv.atoms, 1'066'628u);
}

TEST(ModelsTest, MsPerStepMatchesTableII) {
  EXPECT_NEAR(kJac.ms_per_step(), 0.93, 0.01);
  EXPECT_NEAR(kApoA1.ms_per_step(), 2.79, 0.01);
  EXPECT_NEAR(kF1Atpase.ms_per_step(), 8.64, 0.01);
  EXPECT_NEAR(kStmv.ms_per_step(), 29.29, 0.01);
}

TEST(ModelsTest, FramePeriodsAreEqualAcrossModels) {
  // Table II: strides are chosen so every model emits at ~0.82 s.
  for (const auto& m : kAllModels) {
    EXPECT_NEAR(m.frame_period_seconds(), 0.82, 0.03) << m.name;
  }
}

TEST(ModelsTest, StmvToJacDataRatioMatchesPaper) {
  // Paper Sec. IV-E: STMV moves 45.3x more data than JAC.
  const double ratio =
      static_cast<double>(kStmv.frame_bytes().count()) /
      static_cast<double>(kJac.frame_bytes().count());
  EXPECT_NEAR(ratio, 45.3, 0.1);
}

TEST(ModelsTest, FindModelByName) {
  ASSERT_TRUE(find_model("JAC").has_value());
  EXPECT_EQ(find_model("JAC")->atoms, kJac.atoms);
  ASSERT_TRUE(find_model("F1 ATPase").has_value());
  EXPECT_FALSE(find_model("unknown").has_value());
}

// --- Frame serialization -----------------------------------------------------

TEST(FrameTest, RoundTripPreservesEverything) {
  Frame f = synthesize_frame("JAC", 1000, 42, 7);
  const auto buf = f.serialize();
  EXPECT_EQ(Bytes(buf.size()), f.serialized_size());
  const Frame g = Frame::deserialize(buf);
  EXPECT_EQ(f, g);
}

TEST(FrameTest, SerializedSizeTracksTableISizes) {
  const Frame f = synthesize_frame("JAC", kJac.atoms, 0, 1);
  // Header+trailer overhead is ~31 bytes on top of 28 B/atom.
  const auto payload = kJac.frame_bytes().count();
  EXPECT_GE(f.serialized_size().count(), payload);
  EXPECT_LE(f.serialized_size().count(), payload + 64);
}

TEST(FrameTest, CorruptionIsDetected) {
  Frame f = synthesize_frame("STMV", 100, 1, 2);
  auto buf = f.serialize();
  buf[40] ^= std::byte{0x01};
  EXPECT_THROW((void)Frame::deserialize(buf), FrameError);
}

TEST(FrameTest, TruncationIsDetected) {
  Frame f = synthesize_frame("JAC", 100, 1, 2);
  auto buf = f.serialize();
  buf.resize(buf.size() - 10);
  EXPECT_THROW((void)Frame::deserialize(buf), FrameError);
}

TEST(FrameTest, EmptyFrameRoundTrips) {
  Frame f;
  f.model = "empty";
  f.index = 0;
  const Frame g = Frame::deserialize(f.serialize());
  EXPECT_EQ(f, g);
}

TEST(FrameTest, SynthesisIsDeterministic) {
  const Frame a = synthesize_frame("JAC", 500, 3, 11);
  const Frame b = synthesize_frame("JAC", 500, 3, 11);
  const Frame c = synthesize_frame("JAC", 500, 4, 11);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// --- LJ engine ------------------------------------------------------------------

LjParams small_params() {
  LjParams p;
  p.particle_count = 125;
  p.density = 0.7;
  p.dt = 0.004;
  p.initial_temperature = 0.9;
  p.seed = 99;
  return p;
}

TEST(LjEngineTest, CellListMatchesBruteForce) {
  LjEngine engine(small_params());
  engine.step(20);
  EXPECT_LT(engine.force_error_vs_bruteforce(), 1e-9);
}

TEST(LjEngineTest, EnergyConservationNve) {
  LjEngine engine(small_params());
  engine.step(50);  // settle from the lattice start
  const double e0 = engine.total_energy();
  engine.step(500);
  const double e1 = engine.total_energy();
  // NVE drift should be a small fraction of the kinetic energy scale.
  EXPECT_NEAR(e1, e0, 0.02 * std::abs(engine.kinetic_energy()) + 0.05);
}

TEST(LjEngineTest, MomentumConservation) {
  LjEngine engine(small_params());
  engine.step(300);
  const Vec3 p = engine.total_momentum();
  EXPECT_NEAR(p.x, 0.0, 1e-8);
  EXPECT_NEAR(p.y, 0.0, 1e-8);
  EXPECT_NEAR(p.z, 0.0, 1e-8);
}

TEST(LjEngineTest, ThermostatDrivesTemperature) {
  LjParams p = small_params();
  p.thermostat_tau = 0.05;
  p.target_temperature = 1.4;
  p.initial_temperature = 0.7;
  LjEngine engine(p);
  engine.step(2000);
  EXPECT_NEAR(engine.temperature(), 1.4, 0.25);
}

TEST(LjEngineTest, DeterministicTrajectories) {
  LjEngine a(small_params());
  LjEngine b(small_params());
  a.step(100);
  b.step(100);
  EXPECT_EQ(a.positions()[17].x, b.positions()[17].x);
  EXPECT_EQ(a.total_energy(), b.total_energy());
}

TEST(LjEngineTest, PositionsStayInBox) {
  LjEngine engine(small_params());
  engine.step(500);
  for (const auto& r : engine.positions()) {
    EXPECT_GE(r.x, 0.0);
    EXPECT_LT(r.x, engine.box_edge());
    EXPECT_GE(r.y, 0.0);
    EXPECT_LT(r.y, engine.box_edge());
    EXPECT_GE(r.z, 0.0);
    EXPECT_LT(r.z, engine.box_edge());
  }
}

TEST(LjEngineTest, SnapshotProducesValidFrame) {
  LjEngine engine(small_params());
  engine.step(10);
  const Frame f = engine.snapshot("LJ", 3);
  EXPECT_EQ(f.atoms.size(), 125u);
  EXPECT_EQ(f.index, 3u);
  const Frame g = Frame::deserialize(f.serialize());
  EXPECT_EQ(f, g);
}

// --- Analytics --------------------------------------------------------------------

TEST(AnalyticsTest, EigenvaluesOfDiagonalMatrix) {
  const auto ev = eigenvalues_sym3(Sym3{.xx = 3, .yy = 1, .zz = 2});
  EXPECT_NEAR(ev[0], 3.0, 1e-12);
  EXPECT_NEAR(ev[1], 2.0, 1e-12);
  EXPECT_NEAR(ev[2], 1.0, 1e-12);
}

TEST(AnalyticsTest, EigenvaluesOfKnownSymmetricMatrix) {
  // [[2,1,0],[1,2,0],[0,0,5]] has eigenvalues 5, 3, 1.
  const auto ev = eigenvalues_sym3(Sym3{.xx = 2, .xy = 1, .yy = 2, .zz = 5});
  EXPECT_NEAR(ev[0], 5.0, 1e-9);
  EXPECT_NEAR(ev[1], 3.0, 1e-9);
  EXPECT_NEAR(ev[2], 1.0, 1e-9);
}

TEST(AnalyticsTest, EigenvalueSumEqualsTrace) {
  const Frame f = synthesize_frame("JAC", 2000, 0, 5);
  const Sym3 g = gyration_tensor(f);
  const auto ev = eigenvalues_sym3(g);
  EXPECT_NEAR(ev[0] + ev[1] + ev[2], g.xx + g.yy + g.zz, 1e-6);
  EXPECT_GE(ev[0], ev[1]);
  EXPECT_GE(ev[1], ev[2]);
  EXPECT_GE(ev[2], -1e-9);  // gyration tensor is PSD
}

TEST(AnalyticsTest, LinearChainIsHighlyAnisotropic) {
  Frame f;
  f.model = "chain";
  for (int i = 0; i < 100; ++i) {
    f.atoms.push_back(Atom{static_cast<std::uint32_t>(i),
                           static_cast<double>(i), 0.0, 0.0});
  }
  const auto a = analyze_frame(f);
  // All variance along one axis: largest eigenvalue ~= Rg^2.
  EXPECT_NEAR(a.largest_eigenvalue, a.radius_of_gyration * a.radius_of_gyration,
              1e-9);
  EXPECT_GT(a.asphericity, 0.9 * a.largest_eigenvalue);
}

TEST(AnalyticsTest, CompactSphereIsNearlyIsotropic) {
  const Frame f = synthesize_frame("iso", 20000, 0, 3);
  const auto ev = eigenvalues_sym3(gyration_tensor(f));
  // Uniform box: eigenvalues within a few percent of each other.
  EXPECT_LT((ev[0] - ev[2]) / ev[0], 0.05);
}

TEST(AnalyticsTest, SubrangeSelectsHelix) {
  Frame f = synthesize_frame("helices", 1000, 0, 9);
  const Sym3 whole = gyration_tensor(f);
  const Sym3 first_half = gyration_tensor(f, 0, 500);
  EXPECT_NE(whole.xx, first_half.xx);
}

}  // namespace
}  // namespace mdwf::md
