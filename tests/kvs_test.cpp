// Unit tests for the Flux-style KVS model.
#include <gtest/gtest.h>

#include "mdwf/common/time.hpp"
#include "mdwf/kvs/kvs.hpp"
#include "mdwf/sim/primitives.hpp"

namespace mdwf::kvs {
namespace {

using namespace mdwf::literals;
using sim::Simulation;
using sim::Task;

struct KvsFixture {
  Simulation sim;
  net::Network network;
  KvsServer server;

  static net::NetworkParams net_params() {
    net::NetworkParams p;
    p.latency = 2_us;
    p.control_message_size = Bytes(256);
    return p;
  }
  static KvsParams kvs_params() {
    KvsParams p;
    p.commit_service = 300_us;
    p.lookup_service = 250_us;
    p.visibility_delay = 2_ms;
    return p;
  }
  // Nodes 0,1 = clients, 2 = broker.
  KvsFixture() : network(sim, net_params(), 3),
                 server(sim, kvs_params(), network, net::NodeId{2}) {}
};

TEST(KvsTest, CommitThenLookupAfterVisibilityDelay) {
  KvsFixture f;
  f.sim.spawn([](KvsFixture& fx) -> Task<void> {
    KvsClient writer(fx.sim, fx.server, net::NodeId{0});
    KvsClient reader(fx.sim, fx.server, net::NodeId{1});
    co_await writer.commit("dyad/pair0/frame0", "0:659624");
    // Immediately after commit the value is not yet visible.
    auto miss = co_await reader.lookup("dyad/pair0/frame0");
    EXPECT_FALSE(miss.has_value());
    co_await fx.sim.delay(3_ms);
    auto hit = co_await reader.lookup("dyad/pair0/frame0");
    EXPECT_TRUE(hit.has_value());
    if (hit.has_value()) {
      EXPECT_EQ(hit->data, "0:659624");
      EXPECT_EQ(hit->version, 1u);
    }
  }(f));
  f.sim.run_to_quiescence();
}

TEST(KvsTest, LookupOfAbsentKeyIsEmpty) {
  KvsFixture f;
  f.sim.spawn([](KvsFixture& fx) -> Task<void> {
    KvsClient c(fx.sim, fx.server, net::NodeId{0});
    auto v = co_await c.lookup("nope");
    EXPECT_FALSE(v.has_value());
  }(f));
  f.sim.run_to_quiescence();
}

TEST(KvsTest, WaitForBlocksUntilVisible) {
  KvsFixture f;
  TimePoint got_at;
  Duration idle;
  f.sim.spawn([](KvsFixture& fx, TimePoint& t, Duration& idle_out) -> Task<void> {
    KvsClient reader(fx.sim, fx.server, net::NodeId{1});
    const auto v = co_await reader.wait_for("k", &idle_out);
    EXPECT_EQ(v.data, "v");
    t = fx.sim.now();
  }(f, got_at, idle));
  f.sim.spawn([](KvsFixture& fx) -> Task<void> {
    KvsClient writer(fx.sim, fx.server, net::NodeId{0});
    co_await fx.sim.delay(50_ms);
    co_await writer.commit("k", "v");
  }(f));
  f.sim.run_to_quiescence();
  // Reader wakes at commit time + visibility delay, then pays one more
  // lookup round-trip.
  EXPECT_GT(got_at, TimePoint::origin() + 52_ms);
  EXPECT_LT(got_at, TimePoint::origin() + 54_ms);
  EXPECT_GT(idle, 49_ms);
}

TEST(KvsTest, WatchAfterCommitButBeforeVisibilityWakesAtVisibility) {
  KvsFixture f;
  TimePoint woke_at;
  TimePoint commit_done;
  f.sim.spawn([](KvsFixture& fx, TimePoint& c, TimePoint& w) -> Task<void> {
    KvsClient writer(fx.sim, fx.server, net::NodeId{0});
    co_await writer.commit("k", "v");
    c = fx.sim.now();
    KvsClient reader(fx.sim, fx.server, net::NodeId{1});
    co_await reader.watch_until_visible("k");
    w = fx.sim.now();
  }(f, commit_done, woke_at));
  f.sim.run_to_quiescence();
  // Visibility is measured from when the broker applied the commit, which is
  // one reply-latency before commit() returned; allow that slack.
  EXPECT_GE(woke_at, commit_done + 1900_us);
  EXPECT_LE(woke_at, commit_done + 2_ms);
}

TEST(KvsTest, WatchOnVisibleKeyReturnsImmediately) {
  KvsFixture f;
  f.sim.spawn([](KvsFixture& fx) -> Task<void> {
    KvsClient c(fx.sim, fx.server, net::NodeId{0});
    co_await c.commit("k", "v");
    co_await fx.sim.delay(5_ms);
    const TimePoint t0 = fx.sim.now();
    co_await c.watch_until_visible("k");
    EXPECT_EQ(fx.sim.now(), t0);
  }(f));
  f.sim.run_to_quiescence();
}

TEST(KvsTest, MultipleWatchersAllWake) {
  KvsFixture f;
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    f.sim.spawn([](KvsFixture& fx, int& w) -> Task<void> {
      KvsClient c(fx.sim, fx.server, net::NodeId{1});
      co_await c.watch_until_visible("shared");
      ++w;
    }(f, woken));
  }
  f.sim.spawn([](KvsFixture& fx) -> Task<void> {
    KvsClient c(fx.sim, fx.server, net::NodeId{0});
    co_await fx.sim.delay(1_ms);
    co_await c.commit("shared", "x");
  }(f));
  f.sim.run_to_quiescence();
  EXPECT_EQ(woken, 3);
}

TEST(KvsTest, VersionsIncrementOnRecommit) {
  KvsFixture f;
  f.sim.spawn([](KvsFixture& fx) -> Task<void> {
    KvsClient c(fx.sim, fx.server, net::NodeId{0});
    co_await c.commit("k", "v1");
    co_await c.commit("k", "v2");
    co_await fx.sim.delay(5_ms);
    const auto v = co_await c.lookup("k");
    EXPECT_TRUE(v.has_value());
    if (v.has_value()) {
      EXPECT_EQ(v->data, "v2");
      EXPECT_EQ(v->version, 2u);
    }
  }(f));
  f.sim.run_to_quiescence();
}

TEST(KvsTest, ServerConcurrencyQueuesRequests) {
  Simulation sim;
  net::NetworkParams np;
  np.latency = Duration::zero();
  np.control_message_size = Bytes(0);
  net::Network network(sim, np, 3);
  KvsParams kp;
  kp.server_concurrency = 1;
  kp.lookup_service = 1_ms;
  KvsServer server(sim, kp, network, net::NodeId{2});
  std::vector<Task<void>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([](Simulation& s, KvsServer& sv) -> Task<void> {
      KvsClient c(s, sv, net::NodeId{0});
      (void)co_await c.lookup("x");
    }(sim, server));
  }
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  EXPECT_EQ(sim.now(), TimePoint::origin() + 4_ms);
  EXPECT_EQ(server.lookups(), 4u);
}

TEST(KvsTest, CountersTrackOperations) {
  KvsFixture f;
  f.sim.spawn([](KvsFixture& fx) -> Task<void> {
    KvsClient c(fx.sim, fx.server, net::NodeId{0});
    co_await c.commit("a", "1");
    co_await c.commit("b", "2");
    (void)co_await c.lookup("a");
    co_await fx.sim.delay(5_ms);
    EXPECT_EQ(fx.server.visible_entries(), 2u);
  }(f));
  f.sim.run_to_quiescence();
  EXPECT_EQ(f.server.commits(), 2u);
  EXPECT_EQ(f.server.lookups(), 1u);
}

}  // namespace
}  // namespace mdwf::kvs
