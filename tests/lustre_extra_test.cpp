// Deeper Lustre-model tests: RPC chunking, in-flight windowing, client
// cache behaviour, and MDS interference.
#include <gtest/gtest.h>

#include "mdwf/common/time.hpp"
#include "mdwf/fs/interference.hpp"
#include "mdwf/fs/lustre.hpp"
#include "mdwf/sim/primitives.hpp"

namespace mdwf::fs {
namespace {

using namespace mdwf::literals;
using sim::Simulation;
using sim::Task;

struct Cluster {
  Simulation sim;
  net::Network network;
  LustreParams params;
  LustreServers servers;

  static net::NetworkParams net_params() {
    net::NetworkParams p;
    p.latency = 2_us;
    return p;
  }
  explicit Cluster(LustreParams lp = make_params())
      : network(sim, net_params(), 3 + lp.ost_count),
        params(lp),
        servers(sim, lp, network, net::NodeId{2}, ost_nodes(lp.ost_count)) {}

  static LustreParams make_params() {
    LustreParams p;
    p.ost_count = 2;
    return p;
  }
  static std::vector<net::NodeId> ost_nodes(std::uint32_t n) {
    std::vector<net::NodeId> out;
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(net::NodeId{3 + i});
    return out;
  }
};

TEST(LustreRpcTest, LargeWriteSplitsIntoMaxRpcChunks) {
  LustreParams lp = Cluster::make_params();
  lp.client_writeback = false;
  lp.max_rpc_size = Bytes::mib(4);
  Cluster c(lp);
  c.sim.spawn([](Cluster& cl) -> Task<void> {
    LustreClient client(cl.sim, cl.servers, net::NodeId{0});
    auto h = co_await client.create("big");
    const auto ops_before = cl.servers.ost_device(0).writes_completed();
    // 10 MiB on a single-stripe file -> ceil(10/4) = 3 brw RPCs = 3 device
    // writes on one OST.
    co_await client.write(h, Bytes::zero(), Bytes::mib(10));
    EXPECT_EQ(cl.servers.ost_device(0).writes_completed() - ops_before, 3u);
    EXPECT_EQ(cl.servers.ost_device(0).bytes_written(), Bytes::mib(10));
  }(c));
  c.sim.run_to_quiescence();
}

TEST(LustreRpcTest, RpcsInFlightWindowLimitsConcurrency) {
  // With a window of 1 the chunks serialize; with 8 they pipeline.  The
  // serialized run must be measurably slower.
  auto timed_write = [](std::int64_t window) {
    LustreParams lp = Cluster::make_params();
    lp.client_writeback = false;
    lp.max_rpc_size = Bytes::mib(1);
    lp.max_rpcs_in_flight = window;
    Cluster c(lp);
    Duration took;
    c.sim.spawn([](Cluster& cl, Duration& out) -> Task<void> {
      LustreClient client(cl.sim, cl.servers, net::NodeId{0});
      auto h = co_await client.create("w");
      const TimePoint t0 = cl.sim.now();
      co_await client.write(h, Bytes::zero(), Bytes::mib(8));
      out = cl.sim.now() - t0;
    }(c, took));
    c.sim.run_to_quiescence();
    return took;
  };
  const Duration serial = timed_write(1);
  const Duration pipelined = timed_write(8);
  // Bandwidth serializes either way; windowing hides the per-RPC overheads
  // (client CPU + OST service + latency) of 7 of the 8 chunks.
  EXPECT_GT(serial, pipelined + 7 * 300_us);
}

TEST(LustreClientCacheTest, WritebackLatencyTracksClientCacheBps) {
  LustreParams lp = Cluster::make_params();
  lp.client_cache_bps = 5.0e9;
  Cluster c(lp);
  c.sim.spawn([](Cluster& cl) -> Task<void> {
    LustreClient client(cl.sim, cl.servers, net::NodeId{0});
    auto h = co_await client.create("wb");
    const TimePoint t0 = cl.sim.now();
    co_await client.write(h, Bytes::zero(), Bytes::mib(10));
    const double secs = (cl.sim.now() - t0).to_seconds();
    // 10 MiB at 5 GB/s ~= 2.1 ms; allow tight tolerance (no other cost).
    EXPECT_NEAR(secs, 10.0 * 1024 * 1024 / 5.0e9, 1e-4);
  }(c));
  c.sim.run_to_quiescence();
}

TEST(LustreCoherenceTest, FirstForeignReadPaysLockOnce) {
  Cluster c;
  c.sim.spawn([](Cluster& cl) -> Task<void> {
    LustreClient writer(cl.sim, cl.servers, net::NodeId{0});
    LustreClient reader(cl.sim, cl.servers, net::NodeId{1});
    auto h = co_await writer.create("f");
    co_await writer.write(h, Bytes::zero(), Bytes::kib(64));
    co_await cl.sim.delay(50_ms);  // flush settles
    auto hr = co_await reader.open("f");
    const TimePoint t0 = cl.sim.now();
    co_await reader.read(hr, Bytes::zero(), Bytes::kib(64));
    const Duration first = cl.sim.now() - t0;
    const TimePoint t1 = cl.sim.now();
    co_await reader.read(hr, Bytes::zero(), Bytes::kib(64));
    const Duration second = cl.sim.now() - t1;
    // The coherence/lock charge applies to the first read only.
    EXPECT_GT(first, second + cl.params.first_read_lock - 100_us);
  }(c));
  c.sim.run_to_quiescence();
}

TEST(LustreCoherenceTest, WriterReadingItsOwnDataPaysNoLock) {
  Cluster c;
  c.sim.spawn([](Cluster& cl) -> Task<void> {
    LustreClient writer(cl.sim, cl.servers, net::NodeId{0});
    auto h = co_await writer.create("own");
    co_await writer.write(h, Bytes::zero(), Bytes::kib(64));
    co_await cl.sim.delay(50_ms);
    const TimePoint t0 = cl.sim.now();
    co_await writer.read(h, Bytes::zero(), Bytes::kib(64));
    EXPECT_LT(cl.sim.now() - t0, cl.params.first_read_lock);
  }(c));
  c.sim.run_to_quiescence();
}

TEST(MdsInterferenceTest, StormsDelayMetadataOps) {
  // Measure create latency with and without a standing MDS storm.
  auto create_latency = [](bool storm) {
    LustreParams lp = Cluster::make_params();
    lp.mds_concurrency = 2;
    lp.mds_service = 1_ms;
    Cluster c(lp);
    Duration took;
    if (storm) {
      // Occupy one of the two slots for a long stretch.
      c.sim.spawn([](Cluster& cl) -> Task<void> {
        co_await cl.servers.mds_slots().acquire();
        co_await cl.sim.delay(1_s);
        cl.servers.mds_slots().release();
      }(c));
    }
    c.sim.spawn([](Cluster& cl, Duration& out) -> Task<void> {
      co_await cl.sim.delay(10_ms);
      LustreClient client(cl.sim, cl.servers, net::NodeId{0});
      std::vector<Task<void>> creates;
      const TimePoint t0 = cl.sim.now();
      for (int i = 0; i < 6; ++i) {
        creates.push_back([](Cluster& cc, int k) -> Task<void> {
          LustreClient cli(cc.sim, cc.servers, net::NodeId{0});
          (void)co_await cli.create("f" + std::to_string(k));
        }(cl, i));
      }
      co_await sim::all(cl.sim, std::move(creates));
      out = cl.sim.now() - t0;
    }(c, took));
    c.sim.run_to_quiescence();
    return took;
  };
  const Duration calm = create_latency(false);
  const Duration stormy = create_latency(true);
  // 6 creates over 2 slots vs 1 slot: roughly double.
  EXPECT_GT(stormy, calm + 2_ms);
}

TEST(InterferenceLevelTest, RunLevelChangesAcrossSeeds) {
  // Different seeds draw different per-run interference intensities; the
  // same workload should therefore take measurably different time in at
  // least some pairs of runs.
  auto run_io = [](std::uint64_t seed) {
    Cluster c;
    InterferenceParams ip;
    ip.mean_interarrival = 5_ms;
    c.sim.spawn(run_ost_interference(c.sim, c.servers, ip, Rng(seed),
                                     TimePoint::origin() + 2_s));
    Duration took;
    c.sim.spawn([](Cluster& cl, Duration& out) -> Task<void> {
      LustreClient w(cl.sim, cl.servers, net::NodeId{0});
      LustreClient r(cl.sim, cl.servers, net::NodeId{1});
      auto h = co_await w.create("f");
      co_await w.write(h, Bytes::zero(), Bytes::mib(16));
      co_await cl.sim.delay(20_ms);
      auto hr = co_await r.open("f");
      const TimePoint t0 = cl.sim.now();
      for (int i = 0; i < 8; ++i) {
        co_await r.read(hr, Bytes::zero(), Bytes::mib(16));
      }
      out = cl.sim.now() - t0;
    }(c, took));
    c.sim.run_to_quiescence();
    return took;
  };
  std::set<std::int64_t> distinct;
  for (std::uint64_t s = 1; s <= 4; ++s) distinct.insert(run_io(s).ns());
  EXPECT_GE(distinct.size(), 3u);
}

}  // namespace
}  // namespace mdwf::fs
