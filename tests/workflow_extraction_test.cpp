// Guards the measurement contract: the exact region names, categories, and
// extraction arithmetic that the figure benches and Thicket queries rely
// on.  A silent rename or recategorization would corrupt every figure, so
// these tests pin the schema.
#include <gtest/gtest.h>

#include "mdwf/workflow/ensemble.hpp"

namespace mdwf::workflow {
namespace {

using namespace mdwf::literals;

EnsembleConfig tiny(Solution s, std::uint32_t nodes) {
  EnsembleConfig c;
  c.solution = s;
  c.pairs = 1;
  c.nodes = nodes;
  c.workload.frames = 4;
  c.workload.start_stagger = 0.0;
  c.workload.step_jitter_sigma = 0.0;
  c.repetitions = 1;
  return c;
}

TEST(RegionSchemaTest, DyadProducerTree) {
  const auto r = run_ensemble(tiny(Solution::kDyad, 2));
  const auto agg = r.thicket.filter("role", "producer").aggregate();
  for (const char* path :
       {"md_compute", "serialize", "produce", "produce/dyad_produce",
        "produce/dyad_produce/dyad_prod_write",
        "produce/dyad_produce/dyad_commit"}) {
    EXPECT_NE(agg.find(path), nullptr) << path;
  }
  EXPECT_EQ(agg.find("producer_sync"), nullptr);  // DYAD never waits
}

TEST(RegionSchemaTest, DyadConsumerTree) {
  const auto r = run_ensemble(tiny(Solution::kDyad, 2));
  const auto agg = r.thicket.filter("role", "consumer").aggregate();
  for (const char* path :
       {"consume", "consume/dyad_consume", "consume/dyad_consume/dyad_fetch",
        "consume/dyad_consume/dyad_get_data",
        "consume/dyad_consume/dyad_cons_store",
        "consume/dyad_consume/read_single_buf", "deserialize", "analytics"}) {
    EXPECT_NE(agg.find(path), nullptr) << path;
  }
  // Category assignments the figures depend on.
  EXPECT_EQ(agg.find("consume/dyad_consume/dyad_fetch")->category,
            perf::Category::kIdle);
  EXPECT_EQ(agg.find("consume/dyad_consume/dyad_get_data")->category,
            perf::Category::kMovement);
  EXPECT_EQ(agg.find("consume/dyad_consume/read_single_buf")->category,
            perf::Category::kMovement);
  EXPECT_EQ(agg.find("analytics")->category, perf::Category::kCompute);
}

TEST(RegionSchemaTest, LustreTrees) {
  const auto r = run_ensemble(tiny(Solution::kLustre, 2));
  const auto prod = r.thicket.filter("role", "producer").aggregate();
  EXPECT_NE(prod.find("produce/write"), nullptr);
  EXPECT_NE(prod.find("producer_sync"), nullptr);
  EXPECT_EQ(prod.find("producer_sync")->category, perf::Category::kIdle);
  const auto cons = r.thicket.filter("role", "consumer").aggregate();
  EXPECT_NE(cons.find("consume/explicit_sync"), nullptr);
  EXPECT_NE(cons.find("consume/FilesystemReader::read_single_buf"), nullptr);
  EXPECT_EQ(cons.find("consume/explicit_sync")->category,
            perf::Category::kIdle);
}

TEST(RegionSchemaTest, XfsTrees) {
  const auto r = run_ensemble(tiny(Solution::kXfs, 1));
  const auto cons = r.thicket.filter("role", "consumer").aggregate();
  EXPECT_NE(cons.find("consume/explicit_sync"), nullptr);
  EXPECT_NE(cons.find("consume/FilesystemReader::read_single_buf"), nullptr);
}

TEST(ExtractionTest, PerFrameMeansMatchTreeTotals) {
  auto cfg = tiny(Solution::kDyad, 2);
  cfg.workload.frames = 8;
  const auto r = run_ensemble(cfg);
  const auto consumers = r.thicket.filter("role", "consumer");
  ASSERT_EQ(consumers.records().size(), 1u);
  const auto& tree = consumers.records()[0].tree;
  const double move_us =
      tree.category_time("consume", perf::Category::kMovement).to_micros();
  const double idle_us =
      tree.category_time("consume", perf::Category::kIdle).to_micros();
  EXPECT_NEAR(r.cons_movement_us.mean(), move_us / 8.0, 1e-6);
  EXPECT_NEAR(r.cons_idle_us.mean(), idle_us / 8.0, 1e-6);
}

TEST(ExtractionTest, ProductionExcludesComputeAndSync) {
  // The paper's production bars exclude MD compute and the pair barrier.
  const auto r = run_ensemble(tiny(Solution::kLustre, 2));
  // Production total must be far smaller than the frame compute (0.82 s).
  EXPECT_LT(r.mean_production_us(), 50'000.0);
  // ...even though the producer also idled in producer_sync for ~the
  // consumer's iteration each frame.
  const auto prod = r.thicket.filter("role", "producer").aggregate();
  EXPECT_GT(prod.find("producer_sync")->inclusive_us.mean(), 1'000'000.0);
}

TEST(ExtractionTest, MetadataTagsComplete) {
  auto cfg = tiny(Solution::kDyad, 2);
  cfg.pairs = 2;
  cfg.repetitions = 2;
  const auto r = run_ensemble(cfg);
  EXPECT_EQ(r.thicket.size(), 8u);
  for (const auto& record : r.thicket.records()) {
    for (const char* key :
         {"solution", "rep", "pair", "pairs", "nodes", "model", "stride",
          "role"}) {
      EXPECT_TRUE(record.meta.contains(key)) << key;
    }
    EXPECT_EQ(record.meta.at("solution"), "DYAD");
    EXPECT_EQ(record.meta.at("model"), "JAC");
  }
}

TEST(ExtractionTest, ConsumeTimeIsMovementPlusIdleOnly) {
  // No compute leaks into the consume subtree: deserialize/analytics are
  // siblings, and consume's other-category time is ~0.
  const auto r = run_ensemble(tiny(Solution::kDyad, 2));
  const auto consumers = r.thicket.filter("role", "consumer");
  const auto& tree = consumers.records()[0].tree;
  const auto* consume = tree.find("consume");
  ASSERT_NE(consume, nullptr);
  const Duration categorized =
      tree.category_time("consume", perf::Category::kMovement) +
      tree.category_time("consume", perf::Category::kIdle);
  // Everything inside consume is categorized (tiny uncategorized slack
  // from region bookkeeping would show here).
  EXPECT_LT((consume->inclusive - categorized).to_micros(),
            0.02 * consume->inclusive.to_micros() + 50.0);
}

}  // namespace
}  // namespace mdwf::workflow
