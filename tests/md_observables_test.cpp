// Tests for trajectory observables (RDF, MSD, VACF) and the lossy frame
// compressor (in-situ data reduction).
#include <gtest/gtest.h>

#include <cmath>

#include "mdwf/common/rng.hpp"
#include "mdwf/md/compress.hpp"
#include "mdwf/md/lj_engine.hpp"
#include "mdwf/md/observables.hpp"

namespace mdwf::md {
namespace {

Frame box_frame(double box, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Frame f;
  f.model = "uniform";
  f.atoms.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    f.atoms[i] = Atom{static_cast<std::uint32_t>(i), rng.uniform(0, box),
                      rng.uniform(0, box), rng.uniform(0, box)};
  }
  return f;
}

// --- RadialDistribution ------------------------------------------------------

TEST(RdfTest, IdealGasIsFlatAtOne) {
  const double box = 20.0;
  RadialDistribution rdf(box, box / 2.0, 40);
  for (std::uint64_t s = 1; s <= 5; ++s) {
    rdf.accumulate(box_frame(box, 800, s));
  }
  const auto g = rdf.g();
  // Away from tiny-r noise, an ideal (uncorrelated) gas has g(r) ~= 1.
  for (std::size_t i = 8; i < g.size(); ++i) {
    EXPECT_NEAR(g[i], 1.0, 0.15) << "bin " << i;
  }
  EXPECT_EQ(rdf.frames_seen(), 5u);
}

TEST(RdfTest, LjFluidShowsFirstShellPeak) {
  LjParams p;
  p.particle_count = 256;
  p.density = 0.8;
  p.seed = 4;
  LjEngine engine(p);
  engine.step(400);  // equilibrate off the lattice
  RadialDistribution rdf(engine.box_edge(), engine.box_edge() / 2.0, 60);
  for (int s = 0; s < 5; ++s) {
    engine.step(40);
    rdf.accumulate(engine.snapshot("LJ", s));
  }
  const auto g = rdf.g();
  // The LJ first coordination shell peaks near r ~= 1.1 sigma with
  // g >> 1, and g ~= 0 inside the core (r < 0.9).
  double peak = 0.0;
  double peak_r = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g[i] > peak) {
      peak = g[i];
      peak_r = rdf.r_of(i);
    }
  }
  EXPECT_GT(peak, 2.0);
  EXPECT_NEAR(peak_r, 1.1, 0.2);
  EXPECT_LT(g[static_cast<std::size_t>(0.5 / rdf.bin_width())], 0.01);
}

TEST(RdfTest, RejectsRangeBeyondHalfBox) {
  EXPECT_DEATH(RadialDistribution(10.0, 6.0, 10), "half the box");
}

// --- MeanSquaredDisplacement ---------------------------------------------------

TEST(MsdTest, StaticSystemHasZeroMsd) {
  const Frame f = box_frame(10.0, 50, 1);
  MeanSquaredDisplacement msd(10.0);
  for (int i = 0; i < 4; ++i) msd.accumulate(f);
  for (const double v : msd.series()) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(msd.diffusion_estimate(), 0.0);
}

TEST(MsdTest, UniformDriftGrowsQuadratically) {
  MeanSquaredDisplacement msd(100.0);
  Frame f = box_frame(100.0, 20, 2);
  for (int t = 0; t < 6; ++t) {
    msd.accumulate(f);
    for (auto& a : f.atoms) a.x += 0.5;  // drift 0.5/frame in x
  }
  const auto& s = msd.series();
  ASSERT_EQ(s.size(), 6u);
  for (int t = 1; t < 6; ++t) {
    EXPECT_NEAR(s[static_cast<std::size_t>(t)], 0.25 * t * t, 1e-9);
  }
}

TEST(MsdTest, UnwrapsAcrossPeriodicBoundary) {
  const double box = 10.0;
  MeanSquaredDisplacement msd(box);
  Frame f;
  f.model = "one";
  f.atoms = {Atom{0, 9.8, 5.0, 5.0}};
  msd.accumulate(f);
  // Cross the boundary: 9.8 -> 0.2 is a +0.4 move, not -9.6.
  f.atoms[0].x = 0.2;
  msd.accumulate(f);
  EXPECT_NEAR(msd.series()[1], 0.4 * 0.4, 1e-12);
}

TEST(MsdTest, LjFluidDiffuses) {
  LjParams p;
  p.particle_count = 125;
  p.density = 0.6;
  p.initial_temperature = 1.5;
  p.seed = 11;
  LjEngine engine(p);
  engine.step(200);
  MeanSquaredDisplacement msd(engine.box_edge());
  for (int t = 0; t < 12; ++t) {
    msd.accumulate(engine.snapshot("LJ", t));
    engine.step(20);
  }
  // A warm fluid must show monotone-ish growth and positive diffusion.
  EXPECT_GT(msd.series().back(), msd.series()[1]);
  EXPECT_GT(msd.diffusion_estimate(), 0.0);
}

// --- VelocityAutocorrelation -----------------------------------------------------

TEST(VacfTest, StartsAtOneAndDecays) {
  LjParams p;
  p.particle_count = 125;
  p.density = 0.8;
  p.initial_temperature = 1.2;
  p.seed = 21;
  LjEngine engine(p);
  engine.step(200);
  VelocityAutocorrelation vacf(10);
  for (int t = 0; t < 10; ++t) {
    vacf.accumulate(engine.velocities());
    engine.step(10);
  }
  const auto c = vacf.normalized();
  ASSERT_EQ(c.size(), 10u);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  // Collisions decorrelate velocities: C(t) well below 1 by the window end.
  EXPECT_LT(std::abs(c.back()), 0.5);
}

TEST(VacfTest, WindowCapsSnapshots) {
  VelocityAutocorrelation vacf(3);
  const std::vector<Vec3> v(10, Vec3{1, 0, 0});
  for (int i = 0; i < 7; ++i) vacf.accumulate(v);
  EXPECT_EQ(vacf.frames_seen(), 3u);
  const auto c = vacf.normalized();
  for (const double x : c) EXPECT_DOUBLE_EQ(x, 1.0);
}

// --- Compression ------------------------------------------------------------------

TEST(CompressTest, RoundTripWithinPrecision) {
  const Frame f = synthesize_frame("JAC", 5000, 3, 7);
  const auto c = compress_frame(f, 1e-3);
  const Frame g = decompress_frame(c.data);
  ASSERT_EQ(g.atoms.size(), f.atoms.size());
  EXPECT_EQ(g.index, f.index);
  EXPECT_EQ(g.model, f.model);
  for (std::size_t i = 0; i < f.atoms.size(); ++i) {
    EXPECT_NEAR(g.atoms[i].x, f.atoms[i].x, 5.1e-4);
    EXPECT_NEAR(g.atoms[i].y, f.atoms[i].y, 5.1e-4);
    EXPECT_NEAR(g.atoms[i].z, f.atoms[i].z, 5.1e-4);
  }
}

TEST(CompressTest, ReducesSizeSubstantially) {
  const Frame f = synthesize_frame("STMV-slice", 50000, 0, 9);
  const auto c = compress_frame(f, 1e-3);
  EXPECT_GT(c.ratio(), 1.5) << "compressed " << c.compressed_size.count()
                            << " of " << c.raw_size.count();
}

TEST(CompressTest, CoarserPrecisionCompressesHarder) {
  const Frame f = synthesize_frame("X", 20000, 0, 5);
  const auto fine = compress_frame(f, 1e-4);
  const auto coarse = compress_frame(f, 1e-2);
  EXPECT_LT(coarse.compressed_size, fine.compressed_size);
}

TEST(CompressTest, CorruptionDetected) {
  const Frame f = synthesize_frame("X", 100, 0, 5);
  auto c = compress_frame(f);
  c.data[c.data.size() / 2] ^= std::byte{0x40};
  EXPECT_THROW((void)decompress_frame(c.data), FrameError);
}

TEST(CompressTest, TruncationDetected) {
  const Frame f = synthesize_frame("X", 100, 0, 5);
  auto c = compress_frame(f);
  c.data.resize(c.data.size() - 3);
  EXPECT_THROW((void)decompress_frame(c.data), FrameError);
}

TEST(CompressTest, SmoothTrajectoriesCompressBetterThanNoise) {
  // Lattice-like (spatially sorted) coordinates have small deltas.
  Frame smooth;
  smooth.model = "lattice";
  for (int i = 0; i < 20000; ++i) {
    smooth.atoms.push_back(Atom{static_cast<std::uint32_t>(i),
                                0.01 * i, 0.005 * i, 0.0025 * i});
  }
  const Frame noisy = synthesize_frame("noise", 20000, 0, 3);
  const auto cs = compress_frame(smooth, 1e-3);
  const auto cn = compress_frame(noisy, 1e-3);
  EXPECT_LT(cs.compressed_size.count(), cn.compressed_size.count() / 2);
}

// Parameterized fuzz: random frames always round-trip or fail loudly.
class CompressFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompressFuzz, RandomFramesRoundTrip) {
  Rng rng(GetParam());
  const auto atoms = 1 + rng.next_below(3000);
  const Frame f = synthesize_frame("fuzz", atoms, rng.next_below(100),
                                   GetParam());
  const double precision = std::pow(10.0, -1.0 - rng.next_below(4));
  const auto c = compress_frame(f, precision);
  const Frame g = decompress_frame(c.data);
  ASSERT_EQ(g.atoms.size(), f.atoms.size());
  for (std::size_t i = 0; i < f.atoms.size(); i += 97) {
    EXPECT_NEAR(g.atoms[i].x, f.atoms[i].x, precision * 0.51);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace mdwf::md
