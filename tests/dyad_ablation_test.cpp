// Tests for DYAD's ablation switches and edge paths.
#include <gtest/gtest.h>

#include "mdwf/common/time.hpp"
#include "mdwf/md/models.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/workflow/ensemble.hpp"
#include "mdwf/workflow/testbed.hpp"

namespace mdwf::dyad {
namespace {

using namespace mdwf::literals;
using sim::Task;
using workflow::Testbed;
using workflow::TestbedParams;

TEST(DyadAblationTest, ForceKvsSyncSkipsWarmPath) {
  TestbedParams tp;
  tp.compute_nodes = 1;
  tp.dyad.force_kvs_sync = true;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  sim.spawn([](Testbed& t, perf::Recorder& pr, perf::Recorder& cr)
                -> Task<void> {
    DyadProducer producer(*t.node(0).dyad, pr);
    DyadConsumer consumer(*t.node(0).dyad, cr);
    co_await producer.produce("f", Bytes::kib(64));
    co_await t.simulation().delay(10_ms);
    co_await consumer.consume("f", Bytes::kib(64));
    EXPECT_EQ(consumer.warm_hits(), 0u);
  }(tb, prec, crec));
  sim.run_to_quiescence();
  // The consumer went through the KVS even though the file was local, and
  // then staged a copy through the self-broker.
  EXPECT_GE(tb.kvs().lookups(), 1u);
  EXPECT_NE(crec.tree().find("dyad_consume/dyad_get_data"), nullptr);
}

TEST(DyadAblationTest, SkipStagingOmitsConsStoreAndLocalFiles) {
  TestbedParams tp;
  tp.compute_nodes = 2;
  tp.dyad.skip_consumer_staging = true;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  sim.spawn([](Testbed& t, perf::Recorder& pr, perf::Recorder& cr)
                -> Task<void> {
    DyadProducer producer(*t.node(0).dyad, pr);
    DyadConsumer consumer(*t.node(1).dyad, cr);
    co_await producer.produce("f", Bytes::mib(4));
    co_await t.simulation().delay(10_ms);
    co_await consumer.consume("f", Bytes::mib(4));
  }(tb, prec, crec));
  sim.run_to_quiescence();
  EXPECT_EQ(crec.tree().find("dyad_consume/dyad_cons_store"), nullptr);
  EXPECT_FALSE(tb.node(1).local_fs->exists("dyad_cache/f"));
  // read_single_buf still appears (the in-memory hand-off).
  EXPECT_NE(crec.tree().find("dyad_consume/read_single_buf"), nullptr);
}

TEST(DyadAblationTest, SkipStagingIsFasterForSingleConsumption) {
  auto consumption_us = [](bool skip) {
    TestbedParams tp;
    tp.compute_nodes = 2;
    tp.dyad.skip_consumer_staging = skip;
    Testbed tb(tp);
    auto& sim = tb.simulation();
    perf::Recorder prec(sim, "p"), crec(sim, "c");
    sim.spawn([](Testbed& t, perf::Recorder& pr, perf::Recorder& cr)
                  -> Task<void> {
      DyadProducer producer(*t.node(0).dyad, pr);
      DyadConsumer consumer(*t.node(1).dyad, cr);
      co_await producer.produce("f", md::kStmv.frame_bytes());
      co_await t.simulation().delay(10_ms);
      co_await consumer.consume("f", md::kStmv.frame_bytes());
    }(tb, prec, crec));
    sim.run_to_quiescence();
    return crec.tree()
        .category_time("dyad_consume", perf::Category::kMovement)
        .to_micros();
  };
  EXPECT_LT(consumption_us(true), consumption_us(false));
}

TEST(DyadAblationTest, MalformedMetadataIsRejected) {
  EXPECT_DEATH((void)DyadMetadata::decode("garbage"), "malformed");
  EXPECT_DEATH((void)DyadMetadata::decode("12:"), "malformed");
  EXPECT_DEATH((void)DyadMetadata::decode(":7"), "malformed");
}

}  // namespace
}  // namespace mdwf::dyad
