// Tests for the mdwf::health gray-failure mitigation layer: phi-accrual
// failure detection, circuit-breaker state transitions, adaptive hedge
// delays, and the DYAD hedged-fetch race (cancellation must not charge
// bytes that never moved).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "mdwf/common/time.hpp"
#include "mdwf/dyad/dyad.hpp"
#include "mdwf/fault/plan.hpp"
#include "mdwf/health/health.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/workflow/ensemble.hpp"
#include "mdwf/workflow/testbed.hpp"

namespace mdwf::health {
namespace {

using namespace mdwf::literals;
using dyad::DyadConsumer;
using dyad::DyadProducer;
using sim::Task;
using workflow::Testbed;
using workflow::TestbedParams;

TimePoint at(std::int64_t ms) {
  return TimePoint::origin() + Duration::milliseconds(ms);
}

// --- FailureDetector --------------------------------------------------------

TEST(FailureDetectorTest, PhiIsMonotoneInLatency) {
  FailureDetector d;
  for (int i = 0; i < 32; ++i) d.observe(Duration::microseconds(500 + i * 10));
  double prev = -1.0;
  for (int ms = 0; ms <= 50; ++ms) {
    const double p = d.phi(Duration::milliseconds(ms));
    EXPECT_GE(p, prev) << "phi must be non-decreasing (x = " << ms << " ms)";
    prev = p;
  }
}

TEST(FailureDetectorTest, IdenticalObservationsGiveIdenticalPhi) {
  FailureDetector a, b;
  for (int i = 0; i < 64; ++i) {
    const Duration x = Duration::microseconds(200 + (i * 37) % 900);
    a.observe(x);
    b.observe(x);
  }
  for (int ms = 1; ms <= 30; ms += 3) {
    const Duration x = Duration::milliseconds(ms);
    EXPECT_EQ(a.phi(x), b.phi(x));  // bit-identical, not just approximately
    EXPECT_EQ(a.suspect(x), b.suspect(x));
  }
}

TEST(FailureDetectorTest, WarmupIsNotSuspectBelowCeiling) {
  FailureDetector d;  // zero samples
  EXPECT_FALSE(d.suspect(Duration::milliseconds(5)));
}

TEST(FailureDetectorTest, CeilingFiresEvenWhenBaselineIsSick) {
  // A server that is slow from the very first RPC teaches phi that slowness
  // is normal; the absolute SLO ceiling must still flag it.
  DetectorParams p;
  FailureDetector d(p);
  for (int i = 0; i < 64; ++i) d.observe(Duration::milliseconds(25));
  EXPECT_LT(d.phi(Duration::milliseconds(25)), p.phi_threshold);
  EXPECT_TRUE(d.suspect(Duration::milliseconds(25)));
  // And before any warm-up at all.
  FailureDetector cold(p);
  EXPECT_TRUE(cold.suspect(p.suspect_ceiling));
}

TEST(FailureDetectorTest, FastLatencyNeverSuspect) {
  FailureDetector d;
  for (int i = 0; i < 32; ++i) d.observe(Duration::microseconds(100));
  // Below the suspect floor, phi is irrelevant.
  EXPECT_FALSE(d.suspect(Duration::microseconds(1500)));
}

// --- CircuitBreaker ---------------------------------------------------------

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndCoolsDown) {
  BreakerParams p;
  p.failure_threshold = 3;
  p.open_for = Duration::seconds_i(2);
  CircuitBreaker b(p);

  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.allow(at(0)));
  b.record_failure(at(1));
  b.record_failure(at(2));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);  // 2 < threshold
  b.record_failure(at(3));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.trips(), 1u);

  // Open admits nothing until the cool-down expires...
  EXPECT_FALSE(b.allow(at(100)));
  EXPECT_FALSE(b.allow(at(2002)));
  // ...then transitions to half-open and admits exactly one probe.
  EXPECT_TRUE(b.allow(at(2004)));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(b.allow(at(2005)));  // probe already in flight

  // A successful probe closes the breaker again.
  b.record_success(at(2030));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.allow(at(2031)));
}

TEST(CircuitBreakerTest, FailedProbeReopensAndCountsAsTrip) {
  BreakerParams p;
  p.failure_threshold = 1;
  p.open_for = Duration::seconds_i(1);
  CircuitBreaker b(p);
  b.record_failure(at(0));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(b.allow(at(1001)));  // half-open probe
  b.record_failure(at(1025));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.trips(), 2u);
  // The new open phase restarts the cool-down from the failed probe.
  EXPECT_FALSE(b.allow(at(1500)));
  EXPECT_TRUE(b.allow(at(2026)));
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailures) {
  BreakerParams p;
  p.failure_threshold = 3;
  CircuitBreaker b(p);
  b.record_failure(at(0));
  b.record_failure(at(1));
  b.record_success(at(2));
  b.record_failure(at(3));
  b.record_failure(at(4));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.trips(), 0u);
}

// --- LatencyTracker / hedge delay -------------------------------------------

TEST(LatencyTrackerTest, HedgeDelayClampsToConfiguredBounds) {
  HedgeParams hp;
  hp.min_samples = 4;
  LatencyTracker t;
  // Below min_samples: the conservative initial delay.
  EXPECT_EQ(t.hedge_delay(hp), hp.initial_delay);
  // A window full of multi-second waits (consumer idling ahead of a slow
  // producer) must not push the delay past max_delay.
  for (int i = 0; i < 16; ++i) t.observe(Duration::seconds_i(2));
  EXPECT_EQ(t.hedge_delay(hp), hp.max_delay);
  // A window of near-zero latencies clamps up to min_delay.
  LatencyTracker fast;
  for (int i = 0; i < 16; ++i) fast.observe(Duration::microseconds(5));
  EXPECT_EQ(fast.hedge_delay(hp), hp.min_delay);
}

TEST(LatencyTrackerTest, PercentileTracksRecentWindow) {
  LatencyTracker t(8);  // tiny ring: old samples age out
  for (int i = 0; i < 8; ++i) t.observe(Duration::milliseconds(1));
  for (int i = 0; i < 8; ++i) t.observe(Duration::milliseconds(9));
  EXPECT_EQ(t.percentile(0.5), Duration::milliseconds(9));
}

// --- DYAD hedging: cancellation and byte accounting -------------------------

workflow::EnsembleConfig base_ensemble_config() {
  workflow::EnsembleConfig cfg;
  cfg.solution = workflow::Solution::kDyad;
  cfg.pairs = 2;
  cfg.nodes = 2;
  cfg.workload.frames = 8;
  cfg.repetitions = 1;
  cfg.base_seed = 17;
  return cfg;
}

TEST(DyadHedgeTest, HealthWithoutFailoverIsFreeOnHealthyCluster) {
  // Breaker and hedge act through the retry protocol's Lustre failover
  // path.  Without it (retry off, the healthy-cluster default) health is
  // detection-only and must not perturb the run at all.
  workflow::EnsembleConfig off = base_ensemble_config();
  workflow::EnsembleConfig on = base_ensemble_config();
  on.testbed.dyad.health.enabled = true;
  on.testbed.dyad.health.hedge.enabled = true;

  const auto r_off = workflow::run_ensemble(off);
  const auto r_on = workflow::run_ensemble(on);
  EXPECT_EQ(r_on.makespan_s.mean(), r_off.makespan_s.mean());
  EXPECT_EQ(r_on.counters.get("kvs_lookups"),
            r_off.counters.get("kvs_lookups"));
  EXPECT_EQ(r_on.counters.get("frames_consumed"), r_off.counters.get("frames_consumed"));
  EXPECT_EQ(r_on.counters.get("dyad_hedges"), 0u);
  EXPECT_EQ(r_on.counters.get("dyad_hedge_wins"), 0u);
  EXPECT_EQ(r_on.counters.get("dyad_breaker_trips"), 0u);
}

// One healthy produce-then-consume exchange between two nodes, with the
// consumer arriving after the frame is published.  Returns the evidence the
// cancellation test compares across hedge on/off.
struct CancelCase {
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t hedge_cancels = 0;
  std::uint64_t mds_requests = 0;
  Bytes consumer_ssd_written = Bytes::zero();
  Duration consume_done = Duration::zero();
  bool staged = false;
};

CancelCase run_cancel_case(bool hedge) {
  TestbedParams tp;
  tp.compute_nodes = 2;
  tp.dyad.retry.enabled = true;
  tp.dyad.retry.lustre_fallback = true;
  tp.dyad.health.enabled = true;
  tp.dyad.health.hedge.enabled = hedge;

  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  DyadProducer producer(*tb.node(0).dyad, prec);
  DyadConsumer consumer(*tb.node(1).dyad, crec);
  sim.spawn([](DyadProducer& p) -> Task<void> {
    co_await p.produce("pair0/frame0", Bytes::kib(644));
  }(producer));
  Duration consume_done = Duration::zero();
  sim.spawn([](sim::Simulation& s, DyadConsumer& c,
               Duration& done) -> Task<void> {
    co_await s.delay(50_ms);  // well past the put and its write-through
    co_await c.consume("pair0/frame0", Bytes::kib(644));
    done = s.now() - TimePoint::origin();
  }(sim, consumer, consume_done));
  sim.run_to_quiescence();

  const auto& hs = tb.node(1).dyad->health_state();
  CancelCase out;
  out.hedges = hs.hedges;
  out.hedge_wins = hs.hedge_wins;
  out.hedge_cancels = hs.hedge_cancels;
  out.mds_requests = tb.lustre().mds_requests();
  out.consumer_ssd_written = tb.node(1).ssd->bytes_written();
  out.consume_done = consume_done;
  out.staged = tb.node(1).local_fs->exists("dyad_cache/pair0/frame0");
  return out;
}

TEST(DyadHedgeTest, LosingHedgeIsCancelledWithoutExtraRpcs) {
  const CancelCase off = run_cancel_case(false);
  const CancelCase on = run_cancel_case(true);

  // A healthy primary answers inside the hedge delay, so the speculative
  // duplicate stands down before it launches: no replica RPC is ever
  // issued, and no bytes are double-charged anywhere.
  EXPECT_EQ(on.hedge_cancels, 1u);
  EXPECT_EQ(on.hedges, 0u);
  EXPECT_EQ(on.hedge_wins, 0u);
  EXPECT_EQ(on.mds_requests, off.mds_requests);
  EXPECT_EQ(on.consumer_ssd_written, off.consumer_ssd_written);
  // The consumer sees bit-identical timing with or without the hedge (only
  // the stood-down branch's last poll sleep outlives the fetch).
  EXPECT_EQ(on.consume_done, off.consume_done);
  // The frame arrived over the normal DYAD path and was staged locally.
  EXPECT_TRUE(on.staged);
  EXPECT_TRUE(off.staged);
}

TEST(DyadHedgeTest, WinningHedgeConsumesReplicaWithoutStaging) {
  TestbedParams tp;
  tp.compute_nodes = 2;
  tp.dyad.retry.enabled = true;
  tp.dyad.retry.lustre_fallback = true;
  tp.dyad.health.enabled = true;
  tp.dyad.health.hedge.enabled = true;
  tp.dyad.health.hedge.initial_delay = 2_ms;
  // KVS broker 100x slow for the whole test: the primary's lookup crawls
  // while the producer's write-through lands on a healthy Lustre.
  tp.faults.windows.push_back(fault::FaultWindow{
      fault::FaultTarget::kOverloadedServer, 0, fault::FaultMode::kFailSlow,
      TimePoint::origin(), Duration::seconds_i(30), 0.99});

  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  DyadProducer producer(*tb.node(0).dyad, prec);
  DyadConsumer consumer(*tb.node(1).dyad, crec);
  sim.spawn([](DyadProducer& p) -> Task<void> {
    co_await p.produce("pair0/frame0", Bytes::kib(644));
  }(producer));
  sim.spawn([](sim::Simulation& s, DyadConsumer& c) -> Task<void> {
    co_await s.delay(1_ms);
    co_await c.consume("pair0/frame0", Bytes::kib(644));
  }(sim, consumer));
  sim.run_to_quiescence();

  const auto& hs = tb.node(1).dyad->health_state();
  EXPECT_EQ(hs.hedges, 1u);
  EXPECT_EQ(hs.hedge_wins, 1u);
  // The frame was consumed straight from the Lustre stream: no staging copy
  // on the consumer node, no remote read served by the producer — the bytes
  // moved exactly once.
  EXPECT_FALSE(tb.node(1).local_fs->exists("dyad_cache/pair0/frame0"));
  EXPECT_EQ(tb.node(1).ssd->bytes_written(), Bytes::zero());
}

TEST(DyadHedgeTest, HedgedOverloadRunsAreSeedDeterministic) {
  workflow::EnsembleConfig cfg = base_ensemble_config();
  cfg.testbed.dyad.retry.enabled = true;
  cfg.testbed.dyad.retry.lustre_fallback = true;
  cfg.testbed.dyad.health.enabled = true;
  cfg.testbed.dyad.health.hedge.enabled = true;
  cfg.testbed.faults =
      fault::make_scenario("overload", {.compute_nodes = cfg.nodes});
  const auto a = workflow::run_ensemble(cfg);
  const auto b = workflow::run_ensemble(cfg);
  EXPECT_EQ(a.makespan_s.mean(), b.makespan_s.mean());
  EXPECT_EQ(a.cons_fetch_us.quantile(0.99), b.cons_fetch_us.quantile(0.99));
  EXPECT_EQ(a.counters.get("dyad_hedges"), b.counters.get("dyad_hedges"));
  EXPECT_EQ(a.counters.get("dyad_hedge_wins"), b.counters.get("dyad_hedge_wins"));
  EXPECT_EQ(a.counters.get("dyad_breaker_trips"), b.counters.get("dyad_breaker_trips"));
  EXPECT_EQ(a.counters.get("frames_consumed"), b.counters.get("frames_consumed"));
  EXPECT_EQ(a.counters.get("integrity_unrecovered"), 0u);
}

}  // namespace
}  // namespace mdwf::health
