// Golden-instance tests for the DAG workload pipeline: the two committed
// WfCommons fixtures under tests/data/ run through the same sweep the
// advisor tool batches, and the merged CSV must match a committed CRC32C
// digest byte-for-byte (the trace_roundtrip pattern: any change to the
// loader, planner, executor, or solution models that moves a number shows
// up as a digest mismatch and must be re-pinned deliberately).
//
// The regime assertions pin the BENCH_pr6 crossover on real instances:
// the staged fixture (644 KB frames, balanced runtimes) must rank stream
// first on fetch P99; the spill-bound fixture (228 MiB producer into an
// 8x-slower consumer) must rank DYAD first — a streaming consumer that
// falls past the credit window pays the Lustre spill path, DYAD serves
// the same late fetches from the producer's node-local cache.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "mdwf/common/crc32c.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/wload/wload.hpp"
#include "mdwf/workflow/config.hpp"
#include "mdwf/workflow/dag_run.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace mdwf {
namespace {

using workflow::EnsembleConfig;
using workflow::Solution;

constexpr const char* kStagedPath =
    MDWF_SOURCE_DIR "/tests/data/wfcommons_staged.json";
constexpr const char* kSpillPath =
    MDWF_SOURCE_DIR "/tests/data/wfcommons_spill.json";

// The advisor's default candidate set, in its default order.
const std::vector<std::pair<std::string, Solution>> kCandidates = {
    {"dyad", Solution::kDyad},
    {"lustre", Solution::kLustre},
    {"stream", Solution::kStream},
};

std::vector<sweep::SweepPoint> fixture_grid(
    const std::shared_ptr<const wload::Dag>& dag) {
  std::vector<sweep::SweepPoint> grid;
  for (const auto& [name, solution] : kCandidates) {
    EnsembleConfig c;
    c.solution = solution;
    c.nodes = 2;
    c.repetitions = 3;
    c.base_seed = 1;
    c.dag = dag;
    grid.push_back({dag->name + "/" + name, std::move(c)});
  }
  return grid;
}

// Index into kCandidates of the lowest fetch-P99 point.
std::size_t best_of(const sweep::SweepResult& swept) {
  std::size_t best = 0;
  for (std::size_t i = 0; i < swept.points.size(); ++i) {
    EXPECT_FALSE(swept.points[i].failed()) << swept.points[i].error_text;
    if (swept.points[i].result.cons_fetch_us.quantile(0.99) <
        swept.points[best].result.cons_fetch_us.quantile(0.99)) {
      best = i;
    }
  }
  return best;
}

TEST(DagGolden, StagedFixtureShapeSurvivesImport) {
  const wload::Dag dag = wload::load_wfcommons_file(kStagedPath);
  EXPECT_EQ(dag.name, "md-staged-pipeline");
  ASSERT_EQ(dag.tasks.size(), 5u);
  EXPECT_EQ(dag.edge_count(), 5u);
  EXPECT_EQ(dag.source_count(), 1u);
  EXPECT_EQ(dag.sink_count(), 1u);
  EXPECT_EQ(dag.critical_path_tasks(), 4u);
  // kJac-scale frames: every edge fits one default chunk.
  const workflow::DagPlan plan = workflow::plan_dag(dag, Bytes::mib(32), 2);
  EXPECT_EQ(plan.total_edge_frames, 5u);
}

TEST(DagGolden, SpillFixtureShapeSurvivesImport) {
  const wload::Dag dag = wload::load_wfcommons_file(kSpillPath);
  EXPECT_EQ(dag.name, "md-spill-aggregate");
  ASSERT_EQ(dag.tasks.size(), 3u);
  // 228 MiB over the default 32 MiB chunk: 8 frames on the first edge.
  const workflow::DagPlan plan = workflow::plan_dag(dag, Bytes::mib(32), 2);
  ASSERT_EQ(plan.edges.size(), 2u);
  EXPECT_EQ(plan.edges[0].frames, 8u);
  EXPECT_EQ(plan.total_edge_frames, 9u);
}

TEST(DagGolden, StagedRegimeRecommendsStream) {
  const auto dag = std::make_shared<const wload::Dag>(
      wload::load_wfcommons_file(kStagedPath));
  const auto swept = sweep::run_sweep(fixture_grid(dag), 1);
  EXPECT_EQ(kCandidates[best_of(swept)].first, "stream");
}

TEST(DagGolden, SpillBoundRegimeRecommendsDyad) {
  const auto dag = std::make_shared<const wload::Dag>(
      wload::load_wfcommons_file(kSpillPath));
  const auto swept = sweep::run_sweep(fixture_grid(dag), 1);
  EXPECT_EQ(kCandidates[best_of(swept)].first, "dyad");
}

TEST(DagGolden, SweepCsvMatchesCommittedDigest) {
  // Both fixtures in one grid, the advisor's canonical order; the CSV is
  // the full numeric surface of the run (per-frame times, P99, makespan,
  // event counts), so the digest pins loader + planner + executor +
  // solution models at once.  On an intentional behavior change, update
  // the constant from the failure message.
  const auto staged = std::make_shared<const wload::Dag>(
      wload::load_wfcommons_file(kStagedPath));
  const auto spill = std::make_shared<const wload::Dag>(
      wload::load_wfcommons_file(kSpillPath));
  std::vector<sweep::SweepPoint> grid = fixture_grid(staged);
  for (auto& p : fixture_grid(spill)) grid.push_back(std::move(p));

  const std::string csv = sweep::run_sweep(grid, 1).to_csv();
  // Byte-identity across thread counts first: the digest would otherwise
  // depend on the ctest parallelism of the day.
  for (const std::uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(csv, sweep::run_sweep(grid, threads).to_csv());
  }

  constexpr std::uint32_t kCommittedDigest = 0x6ccf7e50u;
  const std::uint32_t digest = crc32c(csv.data(), csv.size());
  EXPECT_EQ(digest, kCommittedDigest)
      << "advisor sweep CSV drifted; if intentional, re-pin with 0x"
      << std::hex << digest << "\n--- csv ---\n"
      << csv;
}

}  // namespace
}  // namespace mdwf
