// Loader suite for the DAG workload importer (mdwf::wload): JSON reader
// units, every WfCommons negative path (malformed documents, cycles,
// dangling parents, unknown fields, zero-byte producing tasks — each a
// ConfigError with a did-you-mean where a close name exists), the seeded
// synthetic generator's shape and determinism contracts, and the
// workload= / dag_* config-surface registration in parse_ensemble_config.
#include <gtest/gtest.h>

#include <string>

#include "mdwf/common/keyval.hpp"
#include "mdwf/wload/json.hpp"
#include "mdwf/wload/wload.hpp"
#include "mdwf/workflow/config.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace mdwf {
namespace {

// Runs `fn`, returning the ConfigError message it must throw ("" = none).
template <typename Fn>
std::string error_of(Fn&& fn) {
  try {
    fn();
  } catch (const ConfigError& e) {
    return e.what();
  }
  return "";
}

#define EXPECT_ERROR_HAS(msg, needle)                                       \
  do {                                                                      \
    const std::string m = (msg);                                            \
    EXPECT_NE(m.find(needle), std::string::npos)                            \
        << "message: \"" << m << "\"\nexpected substring: \"" << (needle)   \
        << "\"";                                                            \
  } while (0)

// --- JSON reader -----------------------------------------------------------

TEST(WloadJson, ParsesScalarsArraysAndObjects) {
  const auto doc = wload::parse_json(
      R"({"s": "aAb", "n": -2.5e1, "t": true, "z": null,
          "a": [1, 2, 3], "o": {"k": "v"}})",
      "test");
  const auto& root = doc.as_object("root");
  EXPECT_EQ(doc.find("s")->as_string("s"), "aAb");
  EXPECT_DOUBLE_EQ(doc.find("n")->as_number("n"), -25.0);
  EXPECT_TRUE(doc.find("t")->as_bool("t"));
  EXPECT_TRUE(doc.find("z")->is_null());
  EXPECT_EQ(doc.find("a")->as_array("a").size(), 3u);
  EXPECT_EQ(doc.find("o")->find("k")->as_string("k"), "v");
  EXPECT_EQ(root.size(), 6u);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(WloadJson, ErrorsCarryContextAndPosition) {
  const std::string msg =
      error_of([] { wload::parse_json("{\n  \"a\": 1,\n  }", "inst.json"); });
  EXPECT_ERROR_HAS(msg, "inst.json");
  EXPECT_ERROR_HAS(msg, "line 3");
}

TEST(WloadJson, RejectsTrailingContent) {
  EXPECT_ERROR_HAS(error_of([] { wload::parse_json("{} tail", "t"); }),
                   "trailing");
}

TEST(WloadJson, RejectsDuplicateKeys) {
  EXPECT_ERROR_HAS(
      error_of([] { wload::parse_json(R"({"a":1,"a":2})", "t"); }),
      "duplicate");
}

TEST(WloadJson, RejectsUnterminatedString) {
  EXPECT_NE(error_of([] { wload::parse_json(R"({"a": "oops})", "t"); }), "");
}

TEST(WloadJson, AccessorMismatchNamesTheField) {
  const auto doc = wload::parse_json(R"({"runtime": "fast"})", "t");
  EXPECT_ERROR_HAS(
      error_of([&] { doc.find("runtime")->as_number("tasks[0].runtime"); }),
      "tasks[0].runtime");
}

// --- WfCommons import: positives -------------------------------------------

// A small diamond in the classic v1.3 schema, declared out of topological
// order to exercise the canonicalizing sort.
const char kDiamond[] = R"({
  "name": "diamond",
  "workflow": {
    "jobs": [
      {"name": "report", "runtime": 1.0, "parents": ["left", "right"],
       "files": [{"link": "output", "name": "r", "sizeInBytes": 100}]},
      {"name": "left", "runtime": 2.0, "parents": ["src"],
       "files": [{"link": "input", "name": "x", "sizeInBytes": 7},
                 {"link": "output", "name": "l", "sizeInBytes": 300}]},
      {"name": "src", "runtime": 1.5, "parents": [],
       "files": [{"link": "output", "name": "a", "sizeInBytes": 1000},
                 {"link": "output", "name": "b", "sizeInBytes": 24}]},
      {"name": "right", "runtime": 2.0, "parents": ["src"],
       "bytesWritten": 400}
    ]
  }
})";

TEST(WloadImport, ParsesAndCanonicalizesDiamond) {
  const wload::Dag dag = wload::parse_wfcommons(kDiamond, "diamond.json");
  EXPECT_EQ(dag.name, "diamond");
  ASSERT_EQ(dag.tasks.size(), 4u);
  // Topological: src first, report last; left/right keep imported order.
  EXPECT_EQ(dag.tasks[0].id, "src");
  EXPECT_EQ(dag.tasks[1].id, "left");
  EXPECT_EQ(dag.tasks[2].id, "right");
  EXPECT_EQ(dag.tasks[3].id, "report");
  for (std::size_t i = 0; i < dag.tasks.size(); ++i) {
    for (const std::uint32_t p : dag.tasks[i].parents) {
      EXPECT_LT(p, i) << "parents must precede task " << dag.tasks[i].id;
    }
  }
  // Output bytes: sum of link=="output" files only; bytesWritten fallback.
  EXPECT_EQ(dag.tasks[0].output_bytes.count(), 1024u);
  EXPECT_EQ(dag.tasks[3].output_bytes.count(), 100u);
  EXPECT_EQ(dag.edge_count(), 4u);
  EXPECT_EQ(dag.source_count(), 1u);
  EXPECT_EQ(dag.sink_count(), 1u);
  EXPECT_EQ(dag.critical_path_tasks(), 3u);
  // children derived: src feeds both middles.
  ASSERT_EQ(dag.tasks[0].children.size(), 2u);
}

TEST(WloadImport, ParsesSpecificationExecutionSplit) {
  // wfformat >= 1.4: sizes live in a file table, runtimes in `execution`.
  const wload::Dag dag = wload::parse_wfcommons(R"({
    "name": "spec-form",
    "workflow": {
      "specification": {
        "tasks": [
          {"id": "a", "parents": [], "outputFiles": ["f1", "f2"]},
          {"id": "b", "parents": ["a"], "outputFiles": []}
        ],
        "files": [
          {"id": "f1", "sizeInBytes": 640},
          {"id": "f2", "sizeInBytes": 360}
        ]
      },
      "execution": {
        "tasks": [
          {"id": "a", "runtimeInSeconds": 2.0},
          {"id": "b", "runtimeInSeconds": 4.0}
        ]
      }
    }
  })",
                                                "spec.json");
  ASSERT_EQ(dag.tasks.size(), 2u);
  EXPECT_EQ(dag.tasks[0].output_bytes.count(), 1000u);
  EXPECT_DOUBLE_EQ(dag.tasks[0].runtime.to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(dag.tasks[1].runtime.to_seconds(), 4.0);
}

// --- WfCommons import: negative paths --------------------------------------

TEST(WloadImport, MalformedJsonNamesTheContext) {
  const std::string msg = error_of(
      [] { wload::parse_wfcommons("{\"name\": }", "broken.json"); });
  EXPECT_ERROR_HAS(msg, "broken.json");
}

TEST(WloadImport, MissingWorkflowObjectSuggestsClosestKey) {
  const std::string msg = error_of([] {
    wload::parse_wfcommons(R"({"name": "x", "workflaw": {"jobs": []}})",
                           "t.json");
  });
  EXPECT_ERROR_HAS(msg, "no 'workflow' object");
  EXPECT_ERROR_HAS(msg, "did you mean 'workflaw'");
}

TEST(WloadImport, MissingTaskArray) {
  EXPECT_ERROR_HAS(error_of([] {
                     wload::parse_wfcommons(
                         R"({"name": "x", "workflow": {}})", "t.json");
                   }),
                   "no tasks array");
}

TEST(WloadImport, EmptyTaskArray) {
  EXPECT_ERROR_HAS(
      error_of([] {
        wload::parse_wfcommons(
            R"({"name": "x", "workflow": {"jobs": []}})", "t.json");
      }),
      "no tasks");
}

TEST(WloadImport, UnknownTaskFieldGetsDidYouMean) {
  const std::string msg = error_of([] {
    wload::parse_wfcommons(R"({
      "workflow": {"jobs": [
        {"name": "a", "runtme": 1.0, "parents": [], "bytesWritten": 10}
      ]}
    })",
                           "typo.json");
  });
  EXPECT_ERROR_HAS(msg, "unknown field 'runtme'");
  EXPECT_ERROR_HAS(msg, "did you mean 'runtime'");
}

TEST(WloadImport, UnknownFileFieldGetsDidYouMean) {
  const std::string msg = error_of([] {
    wload::parse_wfcommons(R"({
      "workflow": {"jobs": [
        {"name": "a", "runtime": 1.0, "parents": [],
         "files": [{"link": "output", "name": "f", "sizeInByte": 10}]}
      ]}
    })",
                           "typo.json");
  });
  EXPECT_ERROR_HAS(msg, "unknown field 'sizeInByte'");
  EXPECT_ERROR_HAS(msg, "did you mean 'sizeInBytes'");
}

TEST(WloadImport, MissingParentGetsDidYouMean) {
  const std::string msg = error_of([] {
    wload::parse_wfcommons(R"({
      "workflow": {"jobs": [
        {"name": "produce", "runtime": 1.0, "parents": [],
         "bytesWritten": 64},
        {"name": "consume", "runtime": 1.0, "parents": ["prodce"]}
      ]}
    })",
                           "t.json");
  });
  EXPECT_ERROR_HAS(msg, "missing parent 'prodce'");
  EXPECT_ERROR_HAS(msg, "did you mean 'produce'");
}

TEST(WloadImport, CycleNamesATaskOnTheCycle) {
  const std::string msg = error_of([] {
    wload::parse_wfcommons(R"({
      "workflow": {"jobs": [
        {"name": "a", "runtime": 1.0, "parents": ["c"], "bytesWritten": 1},
        {"name": "b", "runtime": 1.0, "parents": ["a"], "bytesWritten": 1},
        {"name": "c", "runtime": 1.0, "parents": ["b"], "bytesWritten": 1}
      ]}
    })",
                           "cycle.json");
  });
  EXPECT_ERROR_HAS(msg, "cycle");
  EXPECT_ERROR_HAS(msg, "task 'a'");
}

TEST(WloadImport, SelfParentRejected) {
  EXPECT_ERROR_HAS(error_of([] {
                     wload::parse_wfcommons(R"({
      "workflow": {"jobs": [
        {"name": "a", "runtime": 1.0, "parents": ["a"], "bytesWritten": 1}
      ]}
    })",
                                            "t.json");
                   }),
                   "itself");
}

TEST(WloadImport, DuplicateTaskIdRejected) {
  EXPECT_ERROR_HAS(error_of([] {
                     wload::parse_wfcommons(R"({
      "workflow": {"jobs": [
        {"name": "a", "runtime": 1.0, "parents": [], "bytesWritten": 1},
        {"name": "a", "runtime": 2.0, "parents": [], "bytesWritten": 1}
      ]}
    })",
                                            "t.json");
                   }),
                   "duplicate task id 'a'");
}

TEST(WloadImport, NegativeRuntimeRejected) {
  EXPECT_ERROR_HAS(error_of([] {
                     wload::parse_wfcommons(R"({
      "workflow": {"jobs": [
        {"name": "a", "runtime": -1.0, "parents": [], "bytesWritten": 1}
      ]}
    })",
                                            "t.json");
                   }),
                   "negative or non-finite runtime");
}

TEST(WloadImport, ZeroByteProducerRejectedWithHint) {
  // A task with children but no output bytes cannot move a frame; the
  // diagnostic points at the two fields people actually misspell.
  const std::string msg = error_of([] {
    wload::parse_wfcommons(R"({
      "workflow": {"jobs": [
        {"name": "a", "runtime": 1.0, "parents": []},
        {"name": "b", "runtime": 1.0, "parents": ["a"]}
      ]}
    })",
                           "t.json");
  });
  EXPECT_ERROR_HAS(msg, "task 'a' has children but zero output bytes");
  EXPECT_ERROR_HAS(msg, "sizeInBytes");
}

TEST(WloadImport, TaskWithoutNameOrIdRejected) {
  EXPECT_ERROR_HAS(error_of([] {
                     wload::parse_wfcommons(R"({
      "workflow": {"jobs": [{"runtime": 1.0, "parents": []}]}
    })",
                                            "t.json");
                   }),
                   "neither 'name' nor 'id'");
}

TEST(WloadImport, SpecOutputFileMustExistInFileTable) {
  const std::string msg = error_of([] {
    wload::parse_wfcommons(R"({
      "workflow": {
        "specification": {
          "tasks": [{"id": "a", "parents": [], "outputFiles": ["trajj"]}],
          "files": [{"id": "traj", "sizeInBytes": 64}]
        }
      }
    })",
                           "t.json");
  });
  EXPECT_ERROR_HAS(msg, "unknown file 'trajj'");
  EXPECT_ERROR_HAS(msg, "did you mean 'traj'");
}

TEST(WloadImport, UnreadableFileRejected) {
  EXPECT_ERROR_HAS(
      error_of([] { wload::load_wfcommons_file("/no/such/instance.json"); }),
      "cannot read");
}

// --- Synthetic generator ----------------------------------------------------

TEST(WloadSynth, ChainShape) {
  wload::SynthSpec spec;
  spec.topology = wload::Topology::kChain;
  spec.tasks = 5;
  const wload::Dag dag = wload::generate_synthetic(spec);
  ASSERT_EQ(dag.tasks.size(), 5u);
  EXPECT_EQ(dag.source_count(), 1u);
  EXPECT_EQ(dag.sink_count(), 1u);
  EXPECT_EQ(dag.edge_count(), 4u);
  EXPECT_EQ(dag.critical_path_tasks(), 5u);
}

TEST(WloadSynth, ForkJoinAndMontageValidateWithinBudget) {
  for (const auto topo :
       {wload::Topology::kForkJoin, wload::Topology::kMontage}) {
    wload::SynthSpec spec;
    spec.topology = topo;
    spec.tasks = 12;
    spec.width = 3;
    const wload::Dag dag = wload::generate_synthetic(spec);
    EXPECT_LE(dag.tasks.size(), 12u);
    EXPECT_GE(dag.edge_count(), dag.tasks.size() - 1);
    for (std::size_t i = 0; i < dag.tasks.size(); ++i) {
      for (const std::uint32_t p : dag.tasks[i].parents) EXPECT_LT(p, i);
    }
  }
}

TEST(WloadSynth, DeterministicPerSeedAndStablePerTask) {
  wload::SynthSpec spec;
  spec.topology = wload::Topology::kForkJoin;
  spec.tasks = 10;
  const wload::Dag a = wload::generate_synthetic(spec);
  const wload::Dag b = wload::generate_synthetic(spec);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].id, b.tasks[i].id);
    EXPECT_EQ(a.tasks[i].runtime.to_micros(), b.tasks[i].runtime.to_micros());
    EXPECT_EQ(a.tasks[i].output_bytes.count(), b.tasks[i].output_bytes.count());
  }
  // Draws fork per task id: another seed moves every size, but equal ids
  // across topologies with shared prefixes keep their draws.
  spec.seed = 2;
  const wload::Dag c = wload::generate_synthetic(spec);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    any_differs |= a.tasks[i].output_bytes.count() !=
                   c.tasks[i].output_bytes.count();
  }
  EXPECT_TRUE(any_differs);
}

TEST(WloadSynth, RejectsDegenerateSpecs) {
  wload::SynthSpec spec;
  spec.tasks = 0;
  EXPECT_ERROR_HAS(error_of([&] { wload::generate_synthetic(spec); }),
                   "at least one task");
  spec.tasks = 4;
  spec.width = 0;
  EXPECT_ERROR_HAS(error_of([&] { wload::generate_synthetic(spec); }),
                   "width");
}

// --- Workload reference resolution ------------------------------------------

TEST(WloadReference, UnknownSchemeGetsDidYouMean) {
  const std::string msg = error_of(
      [] { wload::load_workload("wfcommon:x.json", wload::WorkloadDefaults{}); });
  EXPECT_ERROR_HAS(msg, "unknown scheme 'wfcommon'");
  EXPECT_ERROR_HAS(msg, "did you mean 'wfcommons'");
}

TEST(WloadReference, UnknownTopologyGetsDidYouMean) {
  const std::string msg = error_of(
      [] { wload::load_workload("synth:chian", wload::WorkloadDefaults{}); });
  EXPECT_ERROR_HAS(msg, "unknown synthetic topology 'chian'");
  EXPECT_ERROR_HAS(msg, "did you mean 'chain'");
}

TEST(WloadReference, MissingSchemeRejected) {
  EXPECT_ERROR_HAS(
      error_of([] { wload::load_workload("chain", wload::WorkloadDefaults{}); }),
      "<scheme>:<arg>");
}

TEST(WloadReference, SynthHonorsDefaults) {
  wload::WorkloadDefaults wd;
  wd.synth_tasks = 6;
  wd.synth_runtime_s = 1.0;
  const wload::Dag dag = wload::load_workload("synth:chain", wd);
  EXPECT_EQ(dag.tasks.size(), 6u);
  EXPECT_EQ(dag.name, "synth-chain");
}

// --- Config-surface registration (parse_ensemble_config) --------------------

workflow::EnsembleConfig parse_cfg(
    std::initializer_list<std::pair<std::string, std::string>> kvs) {
  KeyValueConfig cfg;
  for (const auto& [k, v] : kvs) cfg.set(k, v);
  return workflow::parse_ensemble_config(cfg, workflow::EnsembleConfig{});
}

TEST(WloadConfig, WorkloadKeyBindsADag) {
  const auto config = parse_cfg({{"workload", "synth:chain"},
                                 {"dag_tasks", "5"},
                                 {"dag_chunk", "1048576"},
                                 {"dag_scale", "2.0"}});
  ASSERT_NE(config.dag, nullptr);
  EXPECT_EQ(config.dag->tasks.size(), 5u);
  EXPECT_EQ(config.dag_chunk.count(), 1048576u);
  EXPECT_DOUBLE_EQ(config.dag_runtime_scale, 2.0);
}

TEST(WloadConfig, ClassicRunsBindNoDag) {
  EXPECT_EQ(parse_cfg({{"frames", "4"}}).dag, nullptr);
}

TEST(WloadConfig, FramesConflictsWithWorkload) {
  EXPECT_ERROR_HAS(error_of([] {
                     parse_cfg({{"workload", "synth:chain"},
                                {"frames", "8"}});
                   }),
                   "frames is derived from the DAG workload");
}

TEST(WloadConfig, CheckpointConflictsWithWorkload) {
  EXPECT_ERROR_HAS(error_of([] {
                     parse_cfg({{"workload", "synth:chain"},
                                {"checkpoint", "1"}});
                   }),
                   "checkpoint");
}

TEST(WloadConfig, MembershipConflictsWithWorkload) {
  EXPECT_ERROR_HAS(error_of([] {
                     parse_cfg({{"workload", "synth:chain"},
                                {"membership", "1"}});
                   }),
                   "membership");
}

TEST(WloadConfig, DagKeysRequireAWorkload) {
  EXPECT_ERROR_HAS(error_of([] { parse_cfg({{"dag_tasks", "5"}}); }),
                   "dag_tasks requires a DAG workload");
}

TEST(WloadConfig, DagKeyTypoGetsDidYouMean) {
  const std::string msg = error_of([] {
    parse_cfg({{"workload", "synth:chain"}, {"dag_taskz", "5"}});
  });
  EXPECT_ERROR_HAS(msg, "unknown key(s): dag_taskz");
  EXPECT_ERROR_HAS(msg, "did you mean 'dag_tasks'");
}

TEST(WloadConfig, DagChunkMustBePositive) {
  EXPECT_ERROR_HAS(error_of([] {
                     parse_cfg({{"workload", "synth:chain"},
                                {"dag_chunk", "0"}});
                   }),
                   "dag_chunk must be a positive byte count");
}

TEST(WloadConfig, DagScaleMustBePositive) {
  EXPECT_ERROR_HAS(error_of([] {
                     parse_cfg({{"workload", "synth:chain"},
                                {"dag_scale", "0"}});
                   }),
                   "dag_scale must be > 0");
}

}  // namespace
}  // namespace mdwf
