// Property tests for DAG workload execution (workflow/dag_run.cpp).
//
// Two load-bearing contracts:
//  1. Causality — on every solution, no frame is fetched before it is
//     published: the DagProbe records publish/fetch times straight from
//     the rank coroutines, and every edge drains exactly its planned frame
//     count.  The montage diamond doubles as the regression test for the
//     end-of-edge producer barrier (the per-frame barrier deadlocks there).
//  2. Determinism — DAG ensembles inherit the sweep contract: results are
//     byte-identical for threads=1/2/8, including under node-crash and
//     bit-flip fault plans where tasks restart from frame zero.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "mdwf/fault/plan.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/wload/wload.hpp"
#include "mdwf/workflow/config.hpp"
#include "mdwf/workflow/dag_run.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace mdwf::workflow {
namespace {

// Records every publish/fetch the rank coroutines report; re-published
// frames (crash re-execution) keep the earliest stamp — that is when the
// frame first became available.
class RecordingProbe : public DagProbe {
 public:
  using Key = std::pair<std::uint32_t, std::uint64_t>;  // (edge, frame)

  void on_fetch(std::uint32_t task, std::uint32_t edge, std::uint64_t f,
                TimePoint when) override {
    (void)task;
    fetches.emplace_back(Key{edge, f}, when);
  }
  void on_publish(std::uint32_t task, std::uint32_t edge, std::uint64_t f,
                  TimePoint when) override {
    (void)task;
    const auto [it, fresh] = first_publish.emplace(Key{edge, f}, when);
    if (!fresh && when < it->second) it->second = when;
  }
  void on_complete(std::uint32_t task, TimePoint when) override {
    completions.emplace_back(task, when);
  }

  std::map<Key, TimePoint> first_publish;
  std::vector<std::pair<Key, TimePoint>> fetches;
  std::vector<std::pair<std::uint32_t, TimePoint>> completions;
};

std::shared_ptr<const wload::Dag> synth_dag(std::string_view ref,
                                            std::uint64_t tasks,
                                            double output_bytes) {
  wload::WorkloadDefaults wd;
  wd.synth_tasks = tasks;
  wd.synth_width = 3;
  wd.synth_runtime_s = 0.2;
  wd.synth_output_bytes = output_bytes;
  return std::make_shared<const wload::Dag>(wload::load_workload(ref, wd));
}

EnsembleConfig dag_config(Solution s, std::shared_ptr<const wload::Dag> dag,
                          Bytes chunk = Bytes::mib(1)) {
  EnsembleConfig c;
  c.solution = s;
  c.nodes = s == Solution::kXfs ? 1 : 2;
  c.repetitions = 2;
  c.base_seed = 11;
  c.dag = std::move(dag);
  c.dag_chunk = chunk;
  return c;
}

void expect_causal_and_complete(const RecordingProbe& probe,
                                const wload::Dag& dag,
                                const EnsembleConfig& c) {
  const DagPlan plan = plan_dag(dag, c.dag_chunk, c.nodes);
  // Every fetch strictly follows the frame's first publish.
  for (const auto& [key, when] : probe.fetches) {
    const auto pub = probe.first_publish.find(key);
    ASSERT_NE(pub, probe.first_publish.end())
        << "edge " << key.first << " frame " << key.second
        << " fetched but never published";
    EXPECT_LE(pub->second, when)
        << "edge " << key.first << " frame " << key.second
        << " fetched before publish";
  }
  // Every edge drains exactly its planned frames (fault-free runs).
  std::map<RecordingProbe::Key, std::uint64_t> fetched;
  for (const auto& [key, when] : probe.fetches) ++fetched[key];
  std::uint64_t total = 0;
  for (std::size_t e = 0; e < plan.edges.size(); ++e) {
    for (std::uint64_t f = 0; f < plan.edges[e].frames; ++f) {
      const RecordingProbe::Key key{static_cast<std::uint32_t>(e), f};
      EXPECT_EQ(fetched[key], 1u) << "edge " << e << " frame " << f;
      ++total;
    }
  }
  EXPECT_EQ(probe.fetches.size(), total);
  EXPECT_EQ(probe.completions.size(), dag.tasks.size());
}

TEST(DagProperty, FetchNeverPrecedesPublishOnAnySolution) {
  // Multi-frame edges (3 MiB payloads over a 1 MiB chunk) on the diamond-
  // heavy montage shape; XFS runs the same graph single-node.
  const auto dag = synth_dag("synth:montage", 9, 3.0 * 1024 * 1024);
  for (const Solution s : {Solution::kDyad, Solution::kXfs,
                           Solution::kLustre, Solution::kStream}) {
    RecordingProbe probe;
    const EnsembleConfig c = dag_config(s, dag);
    const RepOutcome out = run_dag_repetition(c, 0, nullptr, &probe);
    EXPECT_EQ(out.counters.get("frames_lost"), 0u) << to_string(s);
    expect_causal_and_complete(probe, *dag, c);
  }
}

TEST(DagProperty, DiamondCompletesOnManualSyncSolutions) {
  // The montage diamond is exactly the shape where a per-frame producer
  // barrier deadlocks (producer waits on one child's acks while that child
  // waits on a sibling); completion within quiescence is the regression
  // oracle for the end-of-edge barrier.
  const auto dag = synth_dag("synth:montage", 8, 512.0 * 1024);
  for (const Solution s : {Solution::kXfs, Solution::kLustre}) {
    const EnsembleConfig c = dag_config(s, dag);
    const RepOutcome out = run_dag_repetition(c, 0);
    EXPECT_EQ(out.counters.get("frames_lost"), 0u) << to_string(s);
  }
}

TEST(DagProperty, ForkJoinRespectsJoinBarriers) {
  const auto dag = synth_dag("synth:fork-join", 10, 1.0 * 1024 * 1024);
  RecordingProbe probe;
  const EnsembleConfig c = dag_config(Solution::kDyad, dag);
  run_dag_repetition(c, 0, nullptr, &probe);
  // A join task publishes only after it fetched every in-edge frame: the
  // plan's in-edges of each task must all appear before its first publish.
  const DagPlan plan = plan_dag(*dag, c.dag_chunk, c.nodes);
  std::map<std::uint32_t, TimePoint> last_fetch_of_edge;
  for (const auto& [key, when] : probe.fetches) {
    auto [it, fresh] = last_fetch_of_edge.emplace(key.first, when);
    if (!fresh && when > it->second) it->second = when;
  }
  for (std::size_t t = 0; t < dag->tasks.size(); ++t) {
    if (plan.in_edges[t].empty() || plan.out_edges[t].empty()) continue;
    TimePoint first_pub = TimePoint::origin();
    bool have = false;
    for (const auto& [key, when] : probe.first_publish) {
      for (const std::uint32_t e : plan.out_edges[t]) {
        if (key.first == e && (!have || when < first_pub)) {
          first_pub = when;
          have = true;
        }
      }
    }
    ASSERT_TRUE(have);
    for (const std::uint32_t e : plan.in_edges[t]) {
      EXPECT_LE(last_fetch_of_edge[e], first_pub)
          << "task " << t << " published before draining in-edge " << e;
    }
  }
}

// --- Thread-count byte-identity --------------------------------------------

void expect_identical(const EnsembleResult& a, const EnsembleResult& b) {
  EXPECT_EQ(a.prod_movement_us.values(), b.prod_movement_us.values());
  EXPECT_EQ(a.prod_idle_us.values(), b.prod_idle_us.values());
  EXPECT_EQ(a.cons_movement_us.values(), b.cons_movement_us.values());
  EXPECT_EQ(a.cons_idle_us.values(), b.cons_idle_us.values());
  EXPECT_EQ(a.makespan_s.values(), b.makespan_s.values());
  EXPECT_EQ(a.cons_fetch_us.values(), b.cons_fetch_us.values());
  EXPECT_EQ(a.counters.items(), b.counters.items());
  ASSERT_EQ(a.thicket.size(), b.thicket.size());
  for (std::size_t i = 0; i < a.thicket.size(); ++i) {
    EXPECT_EQ(a.thicket.records()[i].meta, b.thicket.records()[i].meta);
    EXPECT_EQ(a.thicket.records()[i].tree.render(),
              b.thicket.records()[i].tree.render());
  }
}

void apply_scenario(EnsembleConfig& c, const std::string& name) {
  fault::ScenarioShape shape;
  shape.compute_nodes = c.nodes;
  shape.seed = c.base_seed;
  c.testbed.faults = fault::make_scenario(name, shape);
  c.testbed.dyad.retry.enabled = true;
  c.testbed.dyad.retry.lustre_fallback = true;
  c.testbed.integrity.enabled = true;
}

TEST(DagProperty, ByteIdenticalAcrossThreadCounts) {
  const auto dag = synth_dag("synth:fork-join", 8, 1.0 * 1024 * 1024);
  for (const Solution s : {Solution::kDyad, Solution::kStream}) {
    EnsembleConfig cfg = dag_config(s, dag);
    cfg.repetitions = 3;
    const EnsembleResult serial = workflow::run_ensemble(cfg);
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      cfg.threads = threads;
      expect_identical(serial, sweep::run_ensemble(cfg));
    }
  }
}

TEST(DagProperty, ByteIdenticalUnderNodeCrashAndBitFlip) {
  const auto dag = synth_dag("synth:chain", 6, 1.0 * 1024 * 1024);
  for (const std::string scenario : {"node-crash", "bit-flip"}) {
    for (const Solution s : {Solution::kDyad, Solution::kStream}) {
      EnsembleConfig cfg = dag_config(s, dag);
      cfg.repetitions = 2;
      apply_scenario(cfg, scenario);
      const EnsembleResult serial = workflow::run_ensemble(cfg);
      for (const std::uint32_t threads : {2u, 8u}) {
        cfg.threads = threads;
        expect_identical(serial, sweep::run_ensemble(cfg));
      }
      // The crash/corruption plans must be recoverable: no frame lost.
      EXPECT_EQ(serial.counters.get("frames_lost"), 0u)
          << scenario << "/" << to_string(s);
      EXPECT_EQ(serial.counters.get("integrity_unrecovered"), 0u)
          << scenario << "/" << to_string(s);
    }
  }
}

}  // namespace
}  // namespace mdwf::workflow
