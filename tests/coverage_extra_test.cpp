// Final coverage sweep: edge cases of the utility and reporting surfaces
// not exercised elsewhere.
#include <gtest/gtest.h>

#include "mdwf/common/format.hpp"
#include "mdwf/common/rng.hpp"
#include "mdwf/common/stats.hpp"
#include "mdwf/common/table.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/md/models.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/perf/thicket.hpp"
#include "mdwf/sim/simulation.hpp"

namespace mdwf {
namespace {

using namespace mdwf::literals;

TEST(FormatExtraTest, RatioAndDoubleFormatting) {
  EXPECT_EQ(format_ratio(1.44), "1.4x");
  EXPECT_EQ(format_ratio(192.93, 1), "192.9x");
  EXPECT_EQ(format_double(3.14159, 3), "3.142");
  EXPECT_EQ(format_double(-2.5, 0), "-2");  // round-half-even via printf
}

TEST(FormatExtraTest, NegativeDuration) {
  EXPECT_EQ(format_duration(Duration(-1'500'000)), "-1.500 ms");
}

TEST(DurationExtraTest, DivisionAndComparison) {
  EXPECT_EQ((820_ms / 128).ns(), 6'406'250);
  EXPECT_EQ(820_ms / 1_us, 820'000);
  EXPECT_TRUE((1_s - 1'000'000'000_ns).is_zero());
  EXPECT_TRUE((1_ms - 2_ms).is_negative());
  EXPECT_EQ(Duration::max().ns(),
            std::numeric_limits<std::int64_t>::max());
}

TEST(BytesExtraTest, ConversionsAndMinMax) {
  EXPECT_DOUBLE_EQ(Bytes::mib(28).to_mib(), 28.0);
  EXPECT_DOUBLE_EQ((28_MiB + 492_KiB).to_mib(), 28.48046875);
  EXPECT_EQ(Bytes::gib(3584).count(), 3584ull << 30);
}

TEST(RngExtraTest, BernoulliFrequency) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngExtraTest, LognormalMedian) {
  Rng r(18);
  Samples s;
  for (int i = 0; i < 20000; ++i) s.add(r.lognormal(-2.5, 0.8));
  EXPECT_NEAR(s.median(), std::exp(-2.5), 0.01);
}

TEST(TableExtraTest, AlignmentOverride) {
  TextTable t({"k", "v"});
  t.set_align(1, TextTable::Align::kLeft);
  t.add_row({"key", "x"});
  const auto out = t.render();
  // Left-aligned value: "x" followed by padding before the pipe.
  EXPECT_NE(out.find("| x "), std::string::npos);
}

TEST(ModelsExtraTest, StepTimeRoundTrip) {
  for (const auto& m : md::kAllModels) {
    // step_time rounds to whole nanoseconds (~1e-7 relative error).
    EXPECT_NEAR(m.step_time().to_seconds() * m.steps_per_second, 1.0, 1e-6)
        << m.name;
    EXPECT_NEAR(m.frame_period().to_seconds(),
                m.ms_per_step() * static_cast<double>(m.stride) / 1000.0,
                1e-6)
        << m.name;
  }
}

TEST(CallTreeExtraTest, ExclusiveWithMultipleChildren) {
  sim::Simulation sim;
  perf::Recorder rec(sim, "p");
  sim.spawn([](sim::Simulation& s, perf::Recorder& r) -> sim::Task<void> {
    perf::ScopedRegion outer(r, "outer");
    co_await s.delay(1_ms);  // exclusive time
    {
      perf::ScopedRegion a(r, "a");
      co_await s.delay(2_ms);
    }
    co_await s.delay(3_ms);  // more exclusive time
    {
      perf::ScopedRegion b(r, "b");
      co_await s.delay(4_ms);
    }
  }(sim, rec));
  sim.run_to_quiescence();
  const auto* outer = rec.tree().find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->inclusive, 10_ms);
  EXPECT_EQ(outer->exclusive(), 4_ms);
  EXPECT_EQ(outer->max_single, 10_ms);
}

TEST(CallTreeExtraTest, MaxSingleTracksWorstInvocation) {
  sim::Simulation sim;
  perf::Recorder rec(sim, "p");
  sim.spawn([](sim::Simulation& s, perf::Recorder& r) -> sim::Task<void> {
    for (int i = 1; i <= 4; ++i) {
      perf::ScopedRegion reg(r, "op");
      co_await s.delay(Duration::milliseconds(i));
    }
  }(sim, rec));
  sim.run_to_quiescence();
  const auto* op = rec.tree().find("op");
  EXPECT_EQ(op->inclusive, 10_ms);
  EXPECT_EQ(op->max_single, 4_ms);
}

TEST(ThicketExtraTest, SteadyPerCallExcludesColdStart) {
  sim::Simulation sim;
  perf::Recorder rec(sim, "c");
  sim.spawn([](sim::Simulation& s, perf::Recorder& r) -> sim::Task<void> {
    {
      perf::ScopedRegion cold(r, "fetch");
      co_await s.delay(820_ms);  // first-frame wait
    }
    for (int i = 0; i < 9; ++i) {
      perf::ScopedRegion warm(r, "fetch");
      co_await s.delay(1_ms);
    }
  }(sim, rec));
  sim.run_to_quiescence();
  perf::Thicket th;
  th.add({}, rec.snapshot());
  const auto agg = th.aggregate();
  const auto* fetch = agg.find("fetch");
  ASSERT_NE(fetch, nullptr);
  EXPECT_NEAR(fetch->steady_per_call_us(), 1000.0, 1e-6);
  EXPECT_NEAR(fetch->inclusive_us.mean() / 10.0, 82'900.0, 1.0);
}

TEST(ThicketExtraTest, QueryWildcardsOnDeepTrees) {
  sim::Simulation sim;
  perf::Recorder rec(sim, "c");
  sim.spawn([](sim::Simulation& s, perf::Recorder& r) -> sim::Task<void> {
    perf::ScopedRegion a(r, "consume");
    perf::ScopedRegion b(r, "dyad_consume");
    perf::ScopedRegion c(r, "dyad_fetch");
    perf::ScopedRegion d(r, "dyad_watch_wait");
    co_await s.delay(1_ms);
  }(sim, rec));
  sim.run_to_quiescence();
  perf::Thicket th;
  th.add({}, rec.snapshot());
  perf::StatTree agg;
  EXPECT_EQ(th.query("**", agg).size(), 4u);
  EXPECT_EQ(th.query("consume/*", agg).size(), 1u);
  EXPECT_EQ(th.query("**/dyad_*", agg).size(), 0u);  // no glob within name
  EXPECT_EQ(th.query("consume/**/dyad_watch_wait", agg).size(), 1u);
}

TEST(StatsExtraTest, RunningStatsMinMaxAcrossMerge) {
  RunningStats a, b;
  a.add(1.0);
  a.add(9.0);
  b.add(-5.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.min(), -5.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_EQ(a.count(), 4u);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 4u);
}

}  // namespace
}  // namespace mdwf
