// Property tests for the DES hot path introduced with the sweep engine: the
// pooled 4-ary event heap with O(1) lazy cancellation, and the fair-share
// channel's batched (same-instant-coalesced) settle/rearm.
//
// The heap is checked against a reference oracle — a plain sorted schedule
// with tombstone cancellation, the semantics of the old priority_queue
// kernel — under randomized schedule/cancel interleavings.  The channel is
// checked against the analytic fluid model (equal shares, exact re-rating)
// and for byte conservation through abort_active.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "mdwf/common/rng.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/net/fair_share.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/sim/calendar_queue.hpp"
#include "mdwf/sim/event_heap.hpp"
#include "mdwf/sim/simulation.hpp"

namespace mdwf {
namespace {

using namespace mdwf::literals;
using sim::CalendarQueue;
using sim::EventHeap;
using sim::EventSlot;
using sim::Simulation;
using sim::Task;
using sim::TimerId;

// --- EventHeap vs reference oracle ---------------------------------------

// The oracle: every (at, seq) ever scheduled, fired in (at, seq) order,
// skipping cancelled seqs — exactly what the old tombstone priority_queue
// produced.
struct Oracle {
  std::vector<std::pair<std::int64_t, std::uint64_t>> events;  // (ns, seq)
  std::vector<bool> cancelled;

  void push(std::int64_t at_ns, std::uint64_t seq) {
    events.emplace_back(at_ns, seq);
    if (cancelled.size() <= seq) cancelled.resize(seq + 1, false);
  }
  void cancel(std::uint64_t seq) { cancelled[seq] = true; }
  std::vector<std::pair<std::int64_t, std::uint64_t>> fire_order() {
    std::sort(events.begin(), events.end());
    std::vector<std::pair<std::int64_t, std::uint64_t>> out;
    for (const auto& e : events) {
      if (!cancelled[e.second]) out.push_back(e);
    }
    return out;
  }
};

// The same oracle checks both queue implementations: the 4-ary heap and the
// calendar queue expose one interface and must produce one fire order.
template <typename Queue>
class EventQueuePropertyTest : public ::testing::Test {};
using QueueTypes = ::testing::Types<EventHeap, CalendarQueue>;
TYPED_TEST_SUITE(EventQueuePropertyTest, QueueTypes);

TYPED_TEST(EventQueuePropertyTest, RandomScheduleCancelMatchesOracle) {
  for (std::uint64_t round = 0; round < 20; ++round) {
    Rng rng(1000 + round);
    TypeParam heap;
    Oracle oracle;
    std::uint64_t next_seq = 0;
    std::vector<std::pair<EventSlot*, std::uint64_t>> live;  // (slot, seq)

    const std::uint64_t ops = 200 + rng.next_below(300);
    for (std::uint64_t op = 0; op < ops; ++op) {
      if (live.empty() || rng.bernoulli(0.7)) {
        // Duplicate timestamps on purpose: FIFO-within-instant is the
        // determinism-critical tie-break.
        const auto at_ns = static_cast<std::int64_t>(rng.next_below(64));
        const std::uint64_t seq = next_seq++;
        EventSlot* slot =
            heap.push(TimePoint::origin() + Duration(at_ns), seq,
                      std::function<void()>([] {}));
        oracle.push(at_ns, seq);
        live.emplace_back(slot, seq);
      } else {
        const std::size_t pick = rng.next_below(live.size());
        heap.cancel(live[pick].first, live[pick].second);
        oracle.cancel(live[pick].second);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }

    const auto expected = oracle.fire_order();
    EXPECT_EQ(heap.live(), expected.size());
    std::vector<std::pair<std::int64_t, std::uint64_t>> fired;
    while (EventSlot* e = heap.pop()) {
      fired.emplace_back((e->at - TimePoint::origin()).ns(), e->seq);
      heap.release(e);
    }
    EXPECT_EQ(fired, expected) << "round " << round;
    EXPECT_TRUE(heap.empty());
  }
}

TYPED_TEST(EventQueuePropertyTest, InterleavedPopsMatchOracleSemantics) {
  // Pop and schedule interleaved (the real kernel pattern): fired events
  // recycle slots that later pushes immediately reuse.  Pushes never predate
  // the last pop — the monotone-time contract the calendar queue requires.
  Rng rng(42);
  TypeParam heap;
  std::uint64_t next_seq = 0;
  std::int64_t now = 0;
  std::vector<std::int64_t> fired_at;
  for (int burst = 0; burst < 50; ++burst) {
    const std::uint64_t pushes = 1 + rng.next_below(8);
    for (std::uint64_t i = 0; i < pushes; ++i) {
      const auto at = now + static_cast<std::int64_t>(rng.next_below(16));
      heap.push(TimePoint::origin() + Duration(at), next_seq++,
                std::function<void()>([] {}));
    }
    const std::uint64_t pops = 1 + rng.next_below(4);
    for (std::uint64_t i = 0; i < pops; ++i) {
      EventSlot* e = heap.pop();
      if (e == nullptr) break;
      const auto at = (e->at - TimePoint::origin()).ns();
      EXPECT_GE(at, now);  // time never runs backwards
      now = at;
      fired_at.push_back(at);
      heap.release(e);
    }
  }
  while (EventSlot* e = heap.pop()) {
    fired_at.push_back((e->at - TimePoint::origin()).ns());
    heap.release(e);
  }
  EXPECT_TRUE(std::is_sorted(fired_at.begin(), fired_at.end()));
  EXPECT_EQ(heap.live(), 0u);
}

TYPED_TEST(EventQueuePropertyTest, PeekPopAgreeUnderChurn) {
  // peek() must return exactly the slot the next pop() removes, including
  // across cancellations of the current minimum (which force both queues to
  // re-derive it).
  Rng rng(77);
  TypeParam q;
  std::uint64_t next_seq = 0;
  std::int64_t now = 0;
  std::vector<std::pair<EventSlot*, std::uint64_t>> live;
  for (int op = 0; op < 3000; ++op) {
    const int roll = static_cast<int>(rng.next_below(10));
    if (live.empty() || roll < 5) {
      const auto at = now + static_cast<std::int64_t>(rng.next_below(4096));
      EventSlot* s = q.push(TimePoint::origin() + Duration(at), next_seq,
                            std::function<void()>([] {}));
      live.emplace_back(s, next_seq);
      ++next_seq;
    } else if (roll < 8) {
      EventSlot* const head = q.peek();
      EventSlot* const popped = q.pop();
      ASSERT_EQ(head, popped);
      if (popped != nullptr) {
        now = (popped->at - TimePoint::origin()).ns();
        live.erase(std::find_if(live.begin(), live.end(),
                                [&](const auto& e) { return e.first == popped; }));
        q.release(popped);
      }
    } else {
      const std::size_t pick = rng.next_below(live.size());
      EXPECT_TRUE(q.cancel(live[pick].first, live[pick].second));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(q.live(), live.size());
  }
}

TYPED_TEST(EventQueuePropertyTest, SparseScheduleJumpsGapsInOrder) {
  // Widely separated clusters (the calendar queue's worst case: whole laps
  // with nothing due force the direct-search jump) must still drain in
  // exact (at, seq) order.
  TypeParam q;
  std::uint64_t next_seq = 0;
  std::vector<std::int64_t> keys;
  for (const std::int64_t base :
       {std::int64_t{0}, std::int64_t{1'000'000}, std::int64_t{50'000'000'000},
        std::int64_t{50'000'000'064}}) {
    for (std::int64_t off = 0; off < 16; ++off) {
      keys.push_back(base + off);
      q.push(TimePoint::origin() + Duration(base + off), next_seq++,
             std::function<void()>([] {}));
    }
  }
  std::sort(keys.begin(), keys.end());
  std::vector<std::int64_t> fired;
  while (EventSlot* e = q.pop()) {
    fired.push_back((e->at - TimePoint::origin()).ns());
    q.release(e);
  }
  EXPECT_EQ(fired, keys);
  EXPECT_TRUE(q.empty());
}

TYPED_TEST(EventQueuePropertyTest, CancelAllThenReuse) {
  // Cancelling every pending event leaves only residue that the next
  // peek/pop sweeps; the queue stays usable afterwards.
  TypeParam q;
  std::vector<std::pair<EventSlot*, std::uint64_t>> live;
  for (std::uint64_t i = 0; i < 500; ++i) {
    live.emplace_back(q.push(TimePoint::origin() + Duration(10 + (i % 7)), i,
                             std::function<void()>([] {})),
                      i);
  }
  for (auto& [slot, seq] : live) EXPECT_TRUE(q.cancel(slot, seq));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.peek(), nullptr);
  EXPECT_EQ(q.pop(), nullptr);
  EventSlot* s = q.push(TimePoint::origin() + Duration(99), 500,
                        std::function<void()>([] {}));
  EXPECT_EQ(q.peek(), s);
  EXPECT_EQ(q.pop(), s);
  q.release(s);
  EXPECT_TRUE(q.empty());
}

// --- TimerId ABA guard ----------------------------------------------------

TEST(EventHeapPropertyTest, StaleCancelCannotKillRecycledSlot) {
  Simulation sim;
  int first = 0;
  int second = 0;
  const TimerId stale = sim.call_after(1_us, [&] { ++first; });
  sim.run();  // fires; the slot returns to the pool
  ASSERT_EQ(first, 1);
  // The pool reissues the same slot for the next timer (single free slot).
  const TimerId fresh = sim.call_after(1_us, [&] { ++second; });
  ASSERT_EQ(fresh.slot, stale.slot) << "pool should recycle LIFO";
  sim.cancel(stale);  // stale seq: must NOT cancel the new occupant
  sim.run();
  EXPECT_EQ(second, 1);
  EXPECT_EQ(first, 1);
}

TEST(EventHeapPropertyTest, CancelledThenRecycledSlotFiresExactlyOnce) {
  Simulation sim;
  int cancelled_fired = 0;
  int replacement_fired = 0;
  const TimerId doomed = sim.call_after(5_us, [&] { ++cancelled_fired; });
  sim.cancel(doomed);
  // A cancelled slot still sits mid-heap; scheduling more work at the same
  // instant and double-cancelling must neither fire it nor fire the
  // replacement twice.
  sim.cancel(doomed);  // idempotent
  const TimerId replacement =
      sim.call_after(5_us, [&] { ++replacement_fired; });
  sim.call_after(2_us, [&] {});  // unrelated earlier event drains first
  sim.run();
  EXPECT_EQ(cancelled_fired, 0);
  EXPECT_EQ(replacement_fired, 1);
  sim.cancel(replacement);  // after fire: harmless
  sim.run();
  EXPECT_EQ(replacement_fired, 1);
}

TEST(EventHeapPropertyTest, RandomizedTimerChurnThroughSimulation) {
  // End-to-end kernel churn: random call_after/cancel traffic; every
  // surviving timer fires exactly once, every cancelled one never.
  Rng rng(7);
  Simulation sim;
  std::vector<int> fired(400, 0);
  std::vector<TimerId> ids(400);
  std::vector<bool> cancelled(400, false);
  for (int i = 0; i < 400; ++i) {
    ids[i] = sim.call_after(Duration(static_cast<std::int64_t>(
                                rng.next_below(1000))),
                            [&fired, i] { ++fired[i]; });
    if (i >= 2 && rng.bernoulli(0.4)) {
      const std::size_t victim = rng.next_below(static_cast<std::size_t>(i));
      if (!cancelled[victim]) {
        sim.cancel(ids[victim]);
        cancelled[victim] = true;
      }
    }
  }
  sim.run();
  for (int i = 0; i < 400; ++i) {
    EXPECT_EQ(fired[i], cancelled[i] ? 0 : 1) << "timer " << i;
  }
}

// --- Fair-share batched settle vs the fluid model -------------------------

Task<void> one_transfer(Simulation& sim, net::FairShareChannel& ch,
                        Duration start, Bytes n, TimePoint& done) {
  co_await sim.delay(start);
  co_await ch.transfer(n);
  done = sim.now();
}

TEST(FairSharePropertyTest, BatchedSettleMatchesFluidOracleForBursts) {
  // N flows arriving at the same instant on capacity C, each b bytes: the
  // fluid model drains them together at t = N*b/C.  Batching N arrivals
  // into one settle must not move completion by a nanosecond.
  for (const std::size_t n : {1u, 2u, 5u, 16u, 64u}) {
    Simulation sim;
    net::FairShareChannel ch(sim, 1e9);
    std::vector<TimePoint> done(n);
    for (std::size_t i = 0; i < n; ++i) {
      sim.spawn(one_transfer(sim, ch, Duration::zero(), Bytes(10'000'000),
                             done[i]));
    }
    sim.run_to_quiescence();
    // 1e9 B/s is one byte per nanosecond: the fluid drain of n*10 MB takes
    // exactly n*10^7 ns.  The channel's completion timer rounds the fp
    // share computation up to a whole ns, so allow [ideal, ideal + 1ns] —
    // never early, never more than the ceil.
    const TimePoint ideal =
        TimePoint::origin() +
        Duration(static_cast<std::int64_t>(n) * 10'000'000);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(done[i], done[0]) << "batched burst must drain together";
      EXPECT_GE(done[i], ideal) << "n=" << n << " flow " << i;
      EXPECT_LE(done[i], ideal + Duration(1)) << "n=" << n << " flow " << i;
    }
    EXPECT_EQ(ch.total_requested(), ch.total_completed());
  }
}

TEST(FairSharePropertyTest, StaggeredArrivalsMatchExactReRating) {
  // Two 100 MB flows on 1 GB/s, second arriving at 50 ms: piecewise fluid
  // solution puts the first at 150 ms and the second at 200 ms.
  Simulation sim;
  net::FairShareChannel ch(sim, 1e9);
  TimePoint a, b;
  sim.spawn(one_transfer(sim, ch, Duration::zero(), Bytes(100'000'000), a));
  sim.spawn(one_transfer(sim, ch, 50_ms, Bytes(100'000'000), b));
  sim.run_to_quiescence();
  EXPECT_EQ(a, TimePoint::origin() + 150_ms);
  EXPECT_EQ(b, TimePoint::origin() + 200_ms);
}

TEST(FairSharePropertyTest, RandomizedScheduleConservesBytes) {
  for (std::uint64_t round = 0; round < 10; ++round) {
    Rng rng(900 + round);
    Simulation sim;
    net::FairShareChannel ch(sim, 2e9);
    const std::size_t flows = 3 + rng.next_below(20);
    std::vector<TimePoint> done(flows);
    Bytes requested = Bytes::zero();
    for (std::size_t i = 0; i < flows; ++i) {
      const Bytes n(1 + rng.next_below(50'000'000));
      requested += n;
      sim.spawn(one_transfer(
          sim, ch,
          Duration(static_cast<std::int64_t>(rng.next_below(5'000'000))), n,
          done[i]));
    }
    sim.run_to_quiescence();
    EXPECT_EQ(ch.total_requested(), requested);
    EXPECT_EQ(ch.total_completed(), requested);
    EXPECT_EQ(ch.active_flows(), 0u);
  }
}

Task<void> absorbing_transfer(net::FairShareChannel& ch, Bytes n,
                              int& aborted) {
  try {
    co_await ch.transfer(n);
  } catch (const net::NetError&) {
    ++aborted;
  }
}

TEST(FairSharePropertyTest, AbortActiveConservesBytesUnderBatching) {
  // Same-instant burst, partially drained, torn down: requested totals are
  // truncated at the crash instant, so requested == completed afterwards
  // and the channel keeps working for new flows.
  Simulation sim;
  net::FairShareChannel ch(sim, 1e9);
  int aborted = 0;
  for (int i = 0; i < 8; ++i) {
    sim.spawn(absorbing_transfer(ch, Bytes(100'000'000), aborted));
  }
  sim.call_after(100_ms, [&] {
    // Mid-stream: all 8 flows active (the burst was batch-settled once).
    EXPECT_EQ(ch.active_flows(), 8u);
    EXPECT_EQ(ch.abort_active(), 8u);
  });
  sim.run_to_quiescence();
  EXPECT_EQ(aborted, 8);
  EXPECT_EQ(ch.aborted_flows(), 8u);
  EXPECT_EQ(ch.total_requested(), ch.total_completed());

  // The channel is reusable after the teardown.
  TimePoint done;
  sim.spawn(one_transfer(sim, ch, Duration::zero(), Bytes(1'000'000), done));
  sim.run_to_quiescence();
  EXPECT_GT(done, TimePoint::origin());
  EXPECT_EQ(ch.total_requested(), ch.total_completed());
}

TEST(FairSharePropertyTest, AbortWithPendingSettleStaysConsistent) {
  // abort_active in the same instant as a new arrival (settle still
  // pending): the aborted flow must not resurrect, the pending settle must
  // not double-complete anything.
  Simulation sim;
  net::FairShareChannel ch(sim, 1e9);
  int aborted = 0;
  sim.spawn(absorbing_transfer(ch, Bytes(50'000'000), aborted));
  sim.call_after(Duration::zero(), [&] { ch.abort_active(); });
  sim.run_to_quiescence();
  EXPECT_EQ(aborted, 1);
  EXPECT_EQ(ch.total_requested(), ch.total_completed());
  EXPECT_EQ(ch.active_flows(), 0u);
}

}  // namespace
}  // namespace mdwf
