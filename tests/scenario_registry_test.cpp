// Drift guard between the code and the docs: the scenario table in
// DESIGN.md §6 must list exactly the names `fault::scenario_names()`
// exports, and every listed name must actually build a plan via
// `make_scenario`.  Adding a scenario to one side without the other fails
// here, not in a user's shell.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "mdwf/fault/plan.hpp"

namespace mdwf::fault {
namespace {

// Scenario names from the DESIGN.md §6 table: rows shaped `| `name` | ... |`.
std::set<std::string> documented_scenarios() {
  const std::string path = std::string(MDWF_SOURCE_DIR) + "/DESIGN.md";
  std::ifstream f(path);
  EXPECT_TRUE(f.is_open()) << "cannot open " << path;
  std::set<std::string> names;
  std::string line;
  bool in_section6 = false;
  while (std::getline(f, line)) {
    if (line.rfind("## ", 0) == 0) in_section6 = line.rfind("## 6.", 0) == 0;
    if (!in_section6 || line.rfind("| `", 0) != 0) continue;
    const std::size_t open = line.find('`');
    const std::size_t close = line.find('`', open + 1);
    if (close == std::string::npos) continue;
    names.insert(line.substr(open + 1, close - open - 1));
  }
  return names;
}

bool parametrized(const std::string& name) {
  return name.find('<') != std::string::npos;
}

TEST(ScenarioRegistryTest, EveryExportedScenarioIsDocumented) {
  const std::set<std::string> docs = documented_scenarios();
  ASSERT_FALSE(docs.empty()) << "DESIGN.md §6 scenario table not found";
  for (const std::string& name : scenario_names()) {
    EXPECT_TRUE(docs.count(name))
        << "scenario '" << name
        << "' exists in fault::scenario_names() but is missing from the "
           "DESIGN.md §6 table";
  }
}

TEST(ScenarioRegistryTest, EveryDocumentedScenarioExistsAndParses) {
  const std::vector<std::string>& exported = scenario_names();
  ScenarioShape shape;
  shape.compute_nodes = 2;
  for (const std::string& name : documented_scenarios()) {
    if (parametrized(name)) {
      // `crash:<n>` documents a family; probe a concrete member.
      EXPECT_NO_THROW(make_scenario("crash:0", shape));
      continue;
    }
    EXPECT_NE(std::find(exported.begin(), exported.end(), name),
              exported.end())
        << "scenario '" << name
        << "' is documented in DESIGN.md §6 but absent from "
           "fault::scenario_names()";
    EXPECT_NO_THROW(make_scenario(name, shape)) << name;
  }
}

TEST(ScenarioRegistryTest, UnknownScenarioSuggestsNearestName) {
  ScenarioShape shape;
  try {
    make_scenario("node-los", shape);
    FAIL() << "expected unknown-scenario error";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did you mean"), std::string::npos) << what;
    EXPECT_NE(what.find("node-loss"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace mdwf::fault
