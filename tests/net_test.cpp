// Unit and property tests for the fair-share channel and network model.
#include <gtest/gtest.h>

#include <vector>

#include "mdwf/common/time.hpp"
#include "mdwf/net/fair_share.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/sim/primitives.hpp"

namespace mdwf::net {
namespace {

using namespace mdwf::literals;
using sim::Simulation;
using sim::Task;

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

TEST(FairShareTest, SingleFlowTakesBytesOverBandwidth) {
  Simulation sim;
  FairShareChannel ch(sim, 1e9);  // 1 GB/s
  TimePoint done;
  sim.spawn([](Simulation& s, FairShareChannel& c, TimePoint& t) -> Task<void> {
    co_await c.transfer(Bytes(500'000'000));
    t = s.now();
  }(sim, ch, done));
  sim.run_to_quiescence();
  EXPECT_EQ(done, TimePoint::origin() + 500_ms);
}

TEST(FairShareTest, TwoEqualFlowsHalveThroughput) {
  Simulation sim;
  FairShareChannel ch(sim, 1e9);
  std::vector<TimePoint> done(2);
  for (int i = 0; i < 2; ++i) {
    sim.spawn(
        [](Simulation& s, FairShareChannel& c, TimePoint& t) -> Task<void> {
          co_await c.transfer(Bytes(100'000'000));
          t = s.now();
        }(sim, ch, done[i]));
  }
  sim.run_to_quiescence();
  // Both 100 MB flows share 1 GB/s -> each effectively 0.5 GB/s -> 200 ms.
  EXPECT_EQ(done[0], TimePoint::origin() + 200_ms);
  EXPECT_EQ(done[1], TimePoint::origin() + 200_ms);
}

TEST(FairShareTest, LateArrivalSlowsExistingFlow) {
  Simulation sim;
  FairShareChannel ch(sim, 1e9);
  TimePoint first_done, second_done;
  sim.spawn([](Simulation& s, FairShareChannel& c, TimePoint& t) -> Task<void> {
    co_await c.transfer(Bytes(100'000'000));
    t = s.now();
  }(sim, ch, first_done));
  sim.spawn([](Simulation& s, FairShareChannel& c, TimePoint& t) -> Task<void> {
    co_await s.delay(50_ms);
    co_await c.transfer(Bytes(100'000'000));
    t = s.now();
  }(sim, ch, second_done));
  sim.run_to_quiescence();
  // Flow A: 50 MB alone in 50 ms; then shares. A has 50 MB left at 0.5 GB/s
  // -> 100 ms more, done at 150 ms.  B then finishes its remaining 50 MB
  // alone at full speed: 150 ms + 50 ms = 200 ms.
  EXPECT_EQ(first_done, TimePoint::origin() + 150_ms);
  EXPECT_EQ(second_done, TimePoint::origin() + 200_ms);
}

TEST(FairShareTest, ZeroByteTransferIsImmediate) {
  Simulation sim;
  FairShareChannel ch(sim, 1e9);
  TimePoint done;
  sim.spawn([](Simulation& s, FairShareChannel& c, TimePoint& t) -> Task<void> {
    co_await c.transfer(Bytes::zero());
    t = s.now();
  }(sim, ch, done));
  sim.run_to_quiescence();
  EXPECT_EQ(done, TimePoint::origin());
}

TEST(FairShareTest, BackgroundLoadReducesRate) {
  Simulation sim;
  FairShareChannel ch(sim, 1e9);
  ch.set_background_load(0.5);
  TimePoint done;
  sim.spawn([](Simulation& s, FairShareChannel& c, TimePoint& t) -> Task<void> {
    co_await c.transfer(Bytes(100'000'000));
    t = s.now();
  }(sim, ch, done));
  sim.run_to_quiescence();
  EXPECT_EQ(done, TimePoint::origin() + 200_ms);
}

TEST(FairShareTest, ConservationAcrossManyFlows) {
  Simulation sim;
  FairShareChannel ch(sim, 2.5e9);
  const int kFlows = 37;
  const Bytes each(7'777'777);
  std::vector<Task<void>> tasks;
  for (int i = 0; i < kFlows; ++i) {
    tasks.push_back([](Simulation& s, FairShareChannel& c, int id) -> Task<void> {
      co_await s.delay(Duration::microseconds(id * 137));
      co_await c.transfer(Bytes(7'777'777));
    }(sim, ch, i));
  }
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  EXPECT_EQ(ch.total_requested(), each * kFlows);
  EXPECT_EQ(ch.total_completed(), each * kFlows);
  EXPECT_EQ(ch.active_flows(), 0u);
  // Aggregate throughput cannot beat capacity: elapsed >= total/capacity.
  const double min_secs =
      static_cast<double>((each * kFlows).count()) / 2.5e9;
  EXPECT_GE(sim.now().to_seconds(), min_secs - 1e-9);
}

// Property sweep: total time for N simultaneous equal flows equals N*size/C
// regardless of N (processor sharing preserves work).
class FairShareSweep : public ::testing::TestWithParam<int> {};

TEST_P(FairShareSweep, WorkConservation) {
  const int n = GetParam();
  Simulation sim;
  FairShareChannel ch(sim, 1e9);
  std::vector<Task<void>> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back([](FairShareChannel& c) -> Task<void> {
      co_await c.transfer(Bytes(10'000'000));
    }(ch));
  }
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  const double expected = n * 10'000'000.0 / 1e9;
  EXPECT_NEAR(sim.now().to_seconds(), expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Flows, FairShareSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

TEST(NetworkTest, TransferPaysLatencyPlusBandwidth) {
  Simulation sim;
  NetworkParams p;
  p.nic_bandwidth_bps = 1e9;
  p.latency = 10_us;
  Network net(sim, p, 2);
  TimePoint done;
  sim.spawn([](Simulation& s, Network& n, TimePoint& t) -> Task<void> {
    co_await n.transfer(NodeId{0}, NodeId{1}, Bytes(1'000'000));
    t = s.now();
  }(sim, net, done));
  sim.run_to_quiescence();
  EXPECT_EQ(done, TimePoint::origin() + 10_us + 1_ms);
}

TEST(NetworkTest, IntraNodeTransferIsFree) {
  Simulation sim;
  Network net(sim, NetworkParams{}, 2);
  TimePoint done;
  sim.spawn([](Simulation& s, Network& n, TimePoint& t) -> Task<void> {
    co_await n.transfer(NodeId{1}, NodeId{1}, Bytes(1'000'000'000));
    t = s.now();
  }(sim, net, done));
  sim.run_to_quiescence();
  EXPECT_EQ(done, TimePoint::origin());
}

TEST(NetworkTest, ManySendersShareReceiverNic) {
  Simulation sim;
  NetworkParams p;
  p.nic_bandwidth_bps = 1e9;
  p.latency = Duration::zero();
  Network net(sim, p, 5);
  // Nodes 1..4 each send 100 MB to node 0 simultaneously: the rx channel of
  // node 0 is the bottleneck -> 400 MB / 1 GB/s = 400 ms.
  std::vector<Task<void>> tasks;
  for (std::uint32_t i = 1; i <= 4; ++i) {
    tasks.push_back([](Network& n, std::uint32_t src) -> Task<void> {
      co_await n.transfer(NodeId{src}, NodeId{0}, Bytes(100'000'000));
    }(net, i));
  }
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  EXPECT_NEAR(sim.now().to_seconds(), 0.4, 1e-6);
}

TEST(NetworkTest, RdmaGetStreamsFromOwner) {
  Simulation sim;
  NetworkParams p;
  p.nic_bandwidth_bps = 1e9;
  p.latency = 5_us;
  p.control_message_size = Bytes(0);
  Network net(sim, p, 2);
  TimePoint done;
  sim.spawn([](Simulation& s, Network& n, TimePoint& t) -> Task<void> {
    co_await n.rdma_get(NodeId{0}, NodeId{1}, Bytes(2'000'000));
    t = s.now();
  }(sim, net, done));
  sim.run_to_quiescence();
  // Request latency 5us + response latency 5us + 2 MB / 1 GB/s = 2 ms.
  EXPECT_EQ(done, TimePoint::origin() + 10_us + 2_ms);
}

TEST(NetworkTest, BisectionCapsAggregate) {
  Simulation sim;
  NetworkParams p;
  p.nic_bandwidth_bps = 1e9;
  p.bisection_bandwidth_bps = 1e9;  // constrained core
  p.latency = Duration::zero();
  Network net(sim, p, 4);
  // Two disjoint pairs could do 2 GB/s on NICs alone, but the core caps the
  // aggregate at 1 GB/s: 2 x 100 MB takes 200 ms.
  std::vector<Task<void>> tasks;
  tasks.push_back([](Network& n) -> Task<void> {
    co_await n.transfer(NodeId{0}, NodeId{1}, Bytes(100'000'000));
  }(net));
  tasks.push_back([](Network& n) -> Task<void> {
    co_await n.transfer(NodeId{2}, NodeId{3}, Bytes(100'000'000));
  }(net));
  sim.spawn(all(sim, std::move(tasks)));
  sim.run_to_quiescence();
  EXPECT_NEAR(sim.now().to_seconds(), 0.2, 1e-6);
}

TEST(NetworkTest, DefaultParamsMatchCoronaScale) {
  // Keep the reference configuration honest: IB QDR ~3.2 GB/s.
  NetworkParams p;
  EXPECT_NEAR(p.nic_bandwidth_bps / kGiB, 2.98, 0.05);
  EXPECT_EQ(p.latency, Duration::nanoseconds(1500));
}

}  // namespace
}  // namespace mdwf::net
