// Unit tests for the DYAD middleware over the simulated testbed.
#include <gtest/gtest.h>

#include "mdwf/common/time.hpp"
#include "mdwf/md/models.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/workflow/ensemble.hpp"
#include "mdwf/workflow/testbed.hpp"

namespace mdwf::dyad {
namespace {

using namespace mdwf::literals;
using sim::Task;
using workflow::Testbed;
using workflow::TestbedParams;

TestbedParams two_node_params() {
  TestbedParams p;
  p.compute_nodes = 2;
  return p;
}

TEST(DyadTest, SingleNodeProduceThenConsumeWarmPath) {
  TestbedParams tp;
  tp.compute_nodes = 1;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  sim.spawn([](Testbed& t, perf::Recorder& pr, perf::Recorder& cr) -> Task<void> {
    DyadProducer producer(*t.node(0).dyad, pr);
    DyadConsumer consumer(*t.node(0).dyad, cr);
    co_await producer.produce("pair0/frame0", Bytes::kib(644));
    co_await consumer.consume("pair0/frame0", Bytes::kib(644));
    // File already local: flock warm path, no KVS wait, no staging.
    EXPECT_EQ(consumer.warm_hits(), 1u);
    EXPECT_EQ(consumer.kvs_waits(), 0u);
  }(tb, prec, crec));
  sim.run_to_quiescence();
  // Consumer tree has fetch + local read only (no get_data/cons_store).
  EXPECT_NE(crec.tree().find("dyad_consume/dyad_fetch"), nullptr);
  EXPECT_NE(crec.tree().find("dyad_consume/read_single_buf"), nullptr);
  EXPECT_EQ(crec.tree().find("dyad_consume/dyad_get_data"), nullptr);
  EXPECT_EQ(crec.tree().find("dyad_consume/dyad_cons_store"), nullptr);
}

TEST(DyadTest, ConsumerBlocksUntilProducerPublishes) {
  TestbedParams tp;
  tp.compute_nodes = 1;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  TimePoint consumed_at;
  sim.spawn([](Testbed& t, perf::Recorder& r, TimePoint& out) -> Task<void> {
    DyadConsumer consumer(*t.node(0).dyad, r);
    co_await consumer.consume("pair0/frame0", Bytes::kib(644));
    out = t.simulation().now();
    EXPECT_EQ(consumer.kvs_waits(), 1u);
  }(tb, crec, consumed_at));
  sim.spawn([](Testbed& t, perf::Recorder& r) -> Task<void> {
    co_await t.simulation().delay(100_ms);
    DyadProducer producer(*t.node(0).dyad, r);
    co_await producer.produce("pair0/frame0", Bytes::kib(644));
  }(tb, prec));
  sim.run_to_quiescence();
  // Consumer waits for production (100 ms) + commit + visibility (~2 ms).
  EXPECT_GT(consumed_at, TimePoint::origin() + 102_ms);
  EXPECT_LT(consumed_at, TimePoint::origin() + 110_ms);
  // The wait is attributed to synchronization idle inside dyad_fetch.
  const auto idle =
      crec.tree().category_time("dyad_consume", perf::Category::kIdle);
  EXPECT_GT(idle, 100_ms);
}

TEST(DyadTest, TwoNodeConsumeUsesRdmaAndStaging) {
  Testbed tb(two_node_params());
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p"), crec(sim, "c");
  sim.spawn([](Testbed& t, perf::Recorder& pr, perf::Recorder& cr) -> Task<void> {
    DyadProducer producer(*t.node(0).dyad, pr);
    DyadConsumer consumer(*t.node(1).dyad, cr);
    co_await producer.produce("pair0/frame0", Bytes::mib(28));
    co_await t.simulation().delay(5_ms);  // let metadata become visible
    co_await consumer.consume("pair0/frame0", Bytes::mib(28));
    EXPECT_EQ(consumer.warm_hits(), 0u);
    EXPECT_EQ(consumer.kvs_waits(), 0u);
  }(tb, prec, crec));
  sim.run_to_quiescence();
  // Full remote call tree (paper Fig. 9).
  EXPECT_NE(crec.tree().find("dyad_consume/dyad_fetch"), nullptr);
  EXPECT_NE(crec.tree().find("dyad_consume/dyad_get_data"), nullptr);
  EXPECT_NE(crec.tree().find("dyad_consume/dyad_cons_store"), nullptr);
  EXPECT_NE(crec.tree().find("dyad_consume/read_single_buf"), nullptr);
  // The payload was served by node 0's broker and staged on node 1.
  EXPECT_EQ(tb.node(0).dyad->remote_reads_served(), 1u);
  EXPECT_TRUE(tb.node(1).local_fs->exists("dyad_cache/pair0/frame0"));
}

TEST(DyadTest, ProducerNeverWaitsForConsumer) {
  // DYAD pipelines: a producer can publish many frames with no consumer at
  // all; production time per frame stays flat.
  Testbed tb(two_node_params());
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p");
  sim.spawn([](Testbed& t, perf::Recorder& r) -> Task<void> {
    DyadProducer producer(*t.node(0).dyad, r);
    for (int f = 0; f < 10; ++f) {
      co_await producer.produce(workflow::frame_path(0, f), Bytes::kib(644));
    }
  }(tb, prec));
  sim.run_to_quiescence();
  const auto* produce = prec.tree().find("dyad_produce");
  ASSERT_NE(produce, nullptr);
  EXPECT_EQ(produce->count, 10u);
  // All production cost is movement (write + metadata), no idle.
  EXPECT_EQ(prec.tree().category_time("dyad_produce", perf::Category::kIdle),
            0_ms);
}

TEST(DyadTest, MetadataRoundTrips) {
  const DyadMetadata m{net::NodeId{7}, Bytes(659624)};
  const DyadMetadata d = DyadMetadata::decode(m.encode());
  EXPECT_EQ(d.owner, net::NodeId{7});
  EXPECT_EQ(d.size, Bytes(659624));
}

TEST(DyadTest, ProductionCostSplitsWriteAndCommit) {
  TestbedParams tp;
  tp.compute_nodes = 1;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p");
  sim.spawn([](Testbed& t, perf::Recorder& r) -> Task<void> {
    DyadProducer producer(*t.node(0).dyad, r);
    co_await producer.produce("f", md::kJac.frame_bytes());
  }(tb, prec));
  sim.run_to_quiescence();
  const auto* write = prec.tree().find("dyad_produce/dyad_prod_write");
  const auto* commit = prec.tree().find("dyad_produce/dyad_commit");
  ASSERT_NE(write, nullptr);
  ASSERT_NE(commit, nullptr);
  // The commit is DYAD's overhead vs raw XFS: meaningful but smaller than
  // the data write itself (paper: production 1.4x XFS).
  EXPECT_GT(commit->inclusive, 20_us);
  EXPECT_LT(commit->inclusive, write->inclusive);
}

TEST(DyadTest, BrokerConcurrencyLimitsParallelServes) {
  TestbedParams tp = two_node_params();
  tp.dyad.broker_concurrency = 1;
  tp.dyad.broker_request_cpu = 1_ms;
  Testbed tb(tp);
  auto& sim = tb.simulation();
  perf::Recorder prec(sim, "p");
  std::vector<perf::Recorder> crecs;
  crecs.reserve(4);
  for (int i = 0; i < 4; ++i) crecs.emplace_back(sim, "c" + std::to_string(i));
  sim.spawn([](Testbed& t, perf::Recorder& pr,
               std::vector<perf::Recorder>& crs) -> Task<void> {
    DyadProducer producer(*t.node(0).dyad, pr);
    for (int i = 0; i < 4; ++i) {
      co_await producer.produce("f" + std::to_string(i), Bytes::kib(4));
    }
    co_await t.simulation().delay(5_ms);
    std::vector<Task<void>> gets;
    for (int i = 0; i < 4; ++i) {
      gets.push_back([](Testbed& tt, perf::Recorder& rr, int k) -> Task<void> {
        DyadConsumer consumer(*tt.node(1).dyad, rr);
        co_await consumer.consume("f" + std::to_string(k), Bytes::kib(4));
      }(t, crs[static_cast<std::size_t>(i)], i));
    }
    const TimePoint t0 = t.simulation().now();
    co_await sim::all(t.simulation(), std::move(gets));
    // 4 serves x 1 ms broker CPU, concurrency 1 -> >= 4 ms.
    EXPECT_GE(t.simulation().now() - t0, 4_ms);
  }(tb, prec, crecs));
  sim.run_to_quiescence();
}

}  // namespace
}  // namespace mdwf::dyad
