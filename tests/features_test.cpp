// Tests for extension features: LocalFs rename, StatTree CSV export, and
// in-situ (colocated) vs in-transit (split) placement.
#include <gtest/gtest.h>

#include "mdwf/workflow/ensemble.hpp"

namespace mdwf {
namespace {

using namespace mdwf::literals;
using sim::Task;

// --- LocalFs::rename -----------------------------------------------------------

struct FsFixture {
  sim::Simulation sim;
  storage::BlockDevice device;
  storage::PageCache cache;
  fs::LocalFs lfs;

  FsFixture()
      : device(sim, storage::BlockDeviceParams{}, "nvme"),
        cache(sim,
              storage::PageCacheParams{.capacity = Bytes::mib(16),
                                       .page_size = Bytes::kib(256),
                                       .memcpy_bps = 8e9},
              device),
        lfs(sim, fs::LocalFsParams{}, device, cache) {}
};

TEST(RenameTest, MovesFileAtomically) {
  FsFixture f;
  f.sim.spawn([](FsFixture& fx) -> Task<void> {
    const auto ino = co_await fx.lfs.create("frame.tmp");
    co_await fx.lfs.write(ino, Bytes::zero(), Bytes::kib(100));
    co_await fx.lfs.rename("frame.tmp", "frame");
    EXPECT_FALSE(fx.lfs.exists("frame.tmp"));
    EXPECT_TRUE(fx.lfs.exists("frame"));
    EXPECT_EQ(fx.lfs.stat("frame"), Bytes::kib(100));
    // Same inode: data still readable.
    co_await fx.lfs.read(ino, Bytes::zero(), Bytes::kib(100));
  }(f));
  f.sim.run_to_quiescence();
}

TEST(RenameTest, ReplacesExistingDestination) {
  FsFixture f;
  f.sim.spawn([](FsFixture& fx) -> Task<void> {
    const Bytes before = fx.lfs.free_bytes();
    const auto old_ino = co_await fx.lfs.create("dst");
    co_await fx.lfs.write(old_ino, Bytes::zero(), Bytes::mib(1));
    const auto new_ino = co_await fx.lfs.create("src");
    co_await fx.lfs.write(new_ino, Bytes::zero(), Bytes::kib(64));
    co_await fx.lfs.rename("src", "dst");
    EXPECT_FALSE(fx.lfs.exists("src"));
    EXPECT_EQ(fx.lfs.stat("dst"), Bytes::kib(64));
    EXPECT_EQ(fx.lfs.file_count(), 1u);
    // The replaced inode's space was reclaimed.
    EXPECT_EQ(fx.lfs.free_bytes(), before - Bytes::kib(64));
  }(f));
  f.sim.run_to_quiescence();
}

TEST(RenameTest, MissingSourceThrows) {
  FsFixture f;
  f.sim.spawn([](FsFixture& fx) -> Task<void> {
    bool threw = false;
    try {
      co_await fx.lfs.rename("ghost", "dst");
    } catch (const fs::FsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
  f.sim.run_to_quiescence();
}

// --- StatTree CSV export ----------------------------------------------------------

TEST(CsvExportTest, ContainsPathsAndStats) {
  sim::Simulation sim;
  perf::Recorder rec(sim, "c");
  sim.spawn([](sim::Simulation& s, perf::Recorder& r) -> Task<void> {
    perf::ScopedRegion outer(r, "consume");
    perf::ScopedRegion inner(r, "read", perf::Category::kMovement);
    co_await s.delay(3_ms);
  }(sim, rec));
  sim.run_to_quiescence();
  perf::Thicket th;
  th.add({}, rec.snapshot());
  const std::string csv = th.aggregate().to_csv();
  EXPECT_NE(csv.find("path,category,mean_count"), std::string::npos);
  EXPECT_NE(csv.find("consume/read,movement,1.00,3000.000"),
            std::string::npos);
}

// --- Placement --------------------------------------------------------------------

workflow::EnsembleConfig placed(workflow::Solution s, workflow::Placement p,
                                std::uint32_t nodes) {
  workflow::EnsembleConfig c;
  c.solution = s;
  c.pairs = 8;
  c.nodes = nodes;
  c.placement = p;
  c.workload.frames = 8;
  c.repetitions = 2;
  return c;
}

TEST(PlacementTest, ColocatedDyadUsesWarmPathEverywhere) {
  const auto r = run_ensemble(placed(workflow::Solution::kDyad,
                                     workflow::Placement::kColocated, 4));
  // Every frame except the per-pair first (which waits on the KVS) takes
  // the flock warm path; nothing crosses the fabric.
  EXPECT_GT(r.counters.get("dyad_warm_hits"), 8u * 6u);
  EXPECT_EQ(r.thicket.filter("role", "consumer")
                .aggregate()
                .find("consume/dyad_consume/dyad_get_data"),
            nullptr);
}

TEST(PlacementTest, SplitDyadPullsEverything) {
  const auto r = run_ensemble(placed(workflow::Solution::kDyad,
                                     workflow::Placement::kSplit, 4));
  EXPECT_EQ(r.counters.get("dyad_warm_hits"), 0u);
}

TEST(PlacementTest, ColocatedXfsOnManyNodesWorks) {
  const auto r = run_ensemble(placed(workflow::Solution::kXfs,
                                     workflow::Placement::kColocated, 4));
  EXPECT_GT(r.cons_idle_us.mean(), 500'000.0);  // still coarse-grained
}

TEST(PlacementTest, SplitXfsIsRejected) {
  EXPECT_DEATH((void)run_ensemble(placed(workflow::Solution::kXfs,
                                         workflow::Placement::kSplit, 4)),
               "XFS cannot move data between nodes");
}

// --- Data reduction in the workflow ---------------------------------------------

TEST(ReductionTest, CompressionShrinksMovementAndAddsCompute) {
  workflow::EnsembleConfig cfg;
  cfg.solution = workflow::Solution::kDyad;
  cfg.pairs = 2;
  cfg.nodes = 2;
  cfg.workload.model = md::kStmv;
  cfg.workload.stride = md::kStmv.stride;
  cfg.workload.frames = 8;
  cfg.repetitions = 2;
  const auto raw = run_ensemble(cfg);
  cfg.workload.compress = true;
  const auto compressed = run_ensemble(cfg);
  EXPECT_LT(compressed.cons_movement_us.mean(),
            0.8 * raw.cons_movement_us.mean());
  // Codec compute shows in the consumer tree.
  const auto agg = compressed.thicket.filter("role", "consumer").aggregate();
  ASSERT_NE(agg.find("decompress"), nullptr);
  EXPECT_GT(agg.find("decompress")->inclusive_us.mean(), 0.0);
  EXPECT_EQ(raw.thicket.filter("role", "consumer")
                .aggregate()
                .find("decompress"),
            nullptr);
}

TEST(ReductionTest, WireBytesFollowRatio) {
  workflow::WorkloadConfig w;
  w.model = md::kJac;
  EXPECT_EQ(w.wire_bytes(), md::kJac.frame_bytes());
  w.compress = true;
  w.compression_ratio = 2.0;
  EXPECT_EQ(w.wire_bytes().count(), md::kJac.frame_bytes().count() / 2);
  EXPECT_GT(w.compress_time(), 0_ns);
  EXPECT_GT(w.decompress_time(), 0_ns);
}

TEST(PlacementTest, InSituMovementCheaperThanInTransit) {
  // In-situ avoids dyad_get_data + dyad_cons_store entirely.
  const auto insitu = run_ensemble(placed(workflow::Solution::kDyad,
                                          workflow::Placement::kColocated, 2));
  const auto intransit = run_ensemble(placed(workflow::Solution::kDyad,
                                             workflow::Placement::kSplit, 2));
  EXPECT_LT(insitu.cons_movement_us.mean(),
            0.6 * intransit.cons_movement_us.mean());
}

}  // namespace
}  // namespace mdwf
