// Tests for the membership plane: the declare-dead policy, incarnation
// fencing, the permanently-failed block device, tenant quota rebalance, and
// the end-to-end promise — every solution survives a permanent node loss
// with zero data loss, bit-identically at any thread count, while the same
// schedule without the plane terminates via the deadlock reporter.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "mdwf/common/fence.hpp"
#include "mdwf/common/keyval.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/health/health.hpp"
#include "mdwf/health/quota.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/storage/block_device.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/workflow/config.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace mdwf::membership {
namespace {

using namespace mdwf::literals;
using health::DeclareParams;
using health::DeclarePolicy;
using sim::Simulation;
using sim::Task;
using workflow::EnsembleConfig;
using workflow::EnsembleResult;

// --- Declare-dead policy ----------------------------------------------------

TEST(DeclarePolicyTest, NeverDeclaresBeforeFirstHeartbeat) {
  DeclarePolicy policy;
  // A node that has not joined yet cannot be declared, no matter how long
  // the controller has been scanning.
  EXPECT_FALSE(policy.should_declare(TimePoint::origin() + 10_s));
  EXPECT_FALSE(policy.heard());
}

TEST(DeclarePolicyTest, SilenceCeilingDeclaresRegardlessOfDetector) {
  DeclarePolicy policy;
  TimePoint t = TimePoint::origin();
  policy.observe_heartbeat(t);
  // One heartbeat is not enough history for the phi detector, but the
  // absolute ceiling (default 250 ms) still fires.
  EXPECT_FALSE(policy.should_declare(t + 249_ms));
  EXPECT_TRUE(policy.should_declare(t + 250_ms));
}

TEST(DeclarePolicyTest, PhiSuspicionMustSustainConfirmWindow) {
  DeclareParams params;  // confirm 60 ms, ceiling 250 ms, floor 30 ms
  DeclarePolicy policy(params);
  TimePoint t = TimePoint::origin();
  // Teach the detector a steady 10 ms heartbeat rhythm.
  for (int i = 0; i < 20; ++i) {
    policy.observe_heartbeat(t);
    t = t + 10_ms;
  }
  const TimePoint last = policy.last_heartbeat();
  // A 40 ms gap is far past the 30 ms suspect floor, so suspicion starts at
  // the first poll — but a declare needs it sustained for confirm_window.
  EXPECT_FALSE(policy.should_declare(last + 40_ms));
  EXPECT_FALSE(policy.should_declare(last + 60_ms));
  // 40 + 60 ms of unbroken suspicion: declared well before the 250 ms
  // ceiling — this is the phi path, not the silence path.
  EXPECT_TRUE(policy.should_declare(last + 100_ms));
}

TEST(DeclarePolicyTest, HeartbeatResetsSuspicion) {
  DeclarePolicy policy;
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 20; ++i) {
    policy.observe_heartbeat(t);
    t = t + 10_ms;
  }
  TimePoint last = policy.last_heartbeat();
  EXPECT_FALSE(policy.should_declare(last + 40_ms));
  // The late heartbeat arrives: suspicion resets, the confirm clock
  // restarts, and the node survives its hiccup.
  policy.observe_heartbeat(last + 45_ms);
  last = policy.last_heartbeat();
  EXPECT_FALSE(policy.should_declare(last + 50_ms));
  EXPECT_FALSE(policy.should_declare(last + 20_ms + 60_ms));
}

// --- Fence registry ---------------------------------------------------------

TEST(FenceRegistryTest, FenceBumpsIncarnationAndStalesOldTokens) {
  FenceRegistry fences(2);
  const FenceToken old_daemon{.node = 0, .incarnation = fences.current(0)};
  EXPECT_FALSE(fences.stale(old_daemon));
  EXPECT_EQ(fences.fence(0), 1u);
  EXPECT_TRUE(fences.stale(old_daemon));
  // Node 1 is untouched.
  EXPECT_FALSE(fences.stale(FenceToken{.node = 1, .incarnation = 0}));
}

TEST(FenceRegistryTest, RejectThrowsStaleEpochAndCounts) {
  FenceRegistry fences(1);
  fences.fence(0);
  EXPECT_EQ(fences.stale_rejects(), 0u);
  const FenceToken zombie{.node = 0, .incarnation = 0};
  EXPECT_THROW(fences.reject(zombie, "kvs commit"), StaleEpochError);
  fences.count_reject();  // a rejection handled in place (heartbeat re-join)
  EXPECT_EQ(fences.stale_rejects(), 2u);
  try {
    fences.reject(zombie, "lustre create");
  } catch (const StaleEpochError& e) {
    // The error text names the fenced path for the deadlock-free post-mortem.
    EXPECT_NE(std::string(e.what()).find("lustre create"), std::string::npos);
  }
}

TEST(FenceRegistryTest, EnsureGrowsWithFreshIncarnations) {
  FenceRegistry fences;
  EXPECT_EQ(fences.current(7), 0u);  // out of range reads as incarnation 0
  fences.ensure(7);
  EXPECT_EQ(fences.size(), 8u);
  EXPECT_EQ(fences.current(7), 0u);
}

// --- Permanently failed device ----------------------------------------------

TEST(LostDeviceTest, SetLostWakesParkedOpsAndFailsFutureOnes) {
  Simulation sim;
  storage::BlockDeviceParams p;
  p.read_bandwidth_bps = 1e9;
  p.write_bandwidth_bps = 1e9;
  p.op_latency = 10_us;
  storage::BlockDevice dev(sim, p);
  dev.set_offline(true);
  bool parked_threw = false;
  bool later_threw = false;
  // This op queues behind the offline gate — the shape of a rank caught
  // mid-I/O when its node dies.
  sim.spawn([](storage::BlockDevice& d, bool& flag) -> Task<void> {
    try {
      co_await d.read(Bytes(1000));
    } catch (const storage::IoError&) {
      flag = true;
    }
  }(dev, parked_threw));
  sim.spawn([](Simulation& s, storage::BlockDevice& d,
               bool& flag) -> Task<void> {
    co_await s.delay(1_ms);
    d.set_lost();  // the declare: terminal, no power-on ever follows
    try {
      co_await d.write(Bytes(1000));
    } catch (const storage::IoError&) {
      flag = true;
    }
  }(sim, dev, later_threw));
  sim.run_to_quiescence();
  EXPECT_TRUE(parked_threw);
  EXPECT_TRUE(later_threw);
  EXPECT_TRUE(dev.lost());
  EXPECT_EQ(dev.io_errors(), 2u);
}

// --- Tenant quota rebalance on node loss ------------------------------------

TEST(QuotaRebalanceTest, LostNodeShrinksItsTenantsShare) {
  health::QuotaParams params;
  params.enabled = true;
  params.kvs_queue = 24;
  health::TenantQuota quota(params);
  const std::uint32_t a = quota.add_tenant("a", 1.0);
  const std::uint32_t b = quota.add_tenant("b", 1.0);
  quota.map_nodes(0, 2, a);
  quota.map_nodes(2, 2, b);
  EXPECT_EQ(quota.bound(health::QuotaResource::kKvs, a), 12u);
  EXPECT_EQ(quota.bound(health::QuotaResource::kKvs, b), 12u);

  quota.on_node_lost(net::NodeId{0});
  // Tenant a keeps half its capacity: effective weight 0.5 of a 1.5 total,
  // so its bound shrinks to 24 * (0.5/1.5) = 8 and b's grows to 16.
  EXPECT_DOUBLE_EQ(quota.effective_weight(a), 0.5);
  EXPECT_DOUBLE_EQ(quota.effective_weight(b), 1.0);
  EXPECT_EQ(quota.nodes_lost(a), 1u);
  EXPECT_EQ(quota.bound(health::QuotaResource::kKvs, a), 8u);
  EXPECT_EQ(quota.bound(health::QuotaResource::kKvs, b), 16u);

  // A declare is terminal, so a repeated loss of the same node is a no-op,
  // and an unmapped (server) node never perturbs the shares.
  quota.on_node_lost(net::NodeId{0});
  quota.on_node_lost(net::NodeId{99});
  EXPECT_EQ(quota.nodes_lost(a), 1u);
  EXPECT_EQ(quota.bound(health::QuotaResource::kKvs, b), 16u);
}

// --- End-to-end: node loss across all four solutions ------------------------

EnsembleConfig loss_config(const std::string& solution,
                           const std::string& faults, bool membership,
                           std::uint32_t reps = 1) {
  KeyValueConfig point;
  point.set("solution", solution);
  point.set("pairs", "2");
  point.set("nodes", "2");
  point.set("frames", "8");
  point.set("reps", std::to_string(reps));
  point.set("seed", "7");
  point.set("faults", faults);
  point.set("membership", membership ? "1" : "0");
  if (solution == "xfs") point.set("colocate", "1");
  return workflow::parse_ensemble_config(point, EnsembleConfig{});
}

TEST(NodeLossTest, EverySolutionSurvivesPermanentLossWithZeroDataLoss) {
  for (const char* solution : {"dyad", "xfs", "lustre", "stream"}) {
    for (const char* faults : {"node-loss", "loss-after-publish"}) {
      const EnsembleConfig cfg = loss_config(solution, faults, true);
      const EnsembleResult r = workflow::run_ensemble(cfg);
      SCOPED_TRACE(std::string(solution) + " under " + faults);
      EXPECT_EQ(r.counters.get("frames_consumed"),
                cfg.pairs * cfg.workload.frames);
      EXPECT_EQ(r.counters.get("frames_lost"), 0u);
      EXPECT_GE(r.counters.get("membership_declares"), 1u);
      EXPECT_GE(r.counters.get("rank_migrations"), 1u);
    }
  }
}

TEST(NodeLossTest, WithoutThePlanePermanentLossEndsInTheDeadlockReporter) {
  const EnsembleConfig cfg = loss_config("dyad", "node-loss", false);
  try {
    workflow::run_ensemble(cfg);
    FAIL() << "expected the run to deadlock";
  } catch (const std::runtime_error& e) {
    // The legacy recovery contract: ranks park waiting for a reboot that
    // never comes, and the reporter names them instead of hanging.
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
        << e.what();
  }
}

TEST(NodeLossTest, HealedZombieIsFencedNotReadmitted) {
  const EnsembleConfig cfg = loss_config("dyad", "heal-after-declare", true);
  const EnsembleResult r = workflow::run_ensemble(cfg);
  EXPECT_EQ(r.counters.get("frames_consumed"),
            cfg.pairs * cfg.workload.frames);
  EXPECT_EQ(r.counters.get("frames_lost"), 0u);
  // The partition outlives the declare policy, so the healthy-but-silent
  // node is declared — and its post-heal traffic must bounce off the fence.
  EXPECT_GE(r.counters.get("membership_declares"), 1u);
  EXPECT_GT(r.counters.get("stale_epoch_rejects"), 0u);
}

TEST(NodeLossTest, MigrationRunsAreByteIdenticalAcrossThreadCounts) {
  EnsembleConfig cfg = loss_config("dyad", "node-loss", true, /*reps=*/4);
  const EnsembleResult serial = workflow::run_ensemble(cfg);
  EXPECT_EQ(serial.counters.get("frames_lost"), 0u);
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    cfg.threads = threads;
    const EnsembleResult parallel = sweep::run_ensemble(cfg);
    EXPECT_EQ(serial.makespan_s.values(), parallel.makespan_s.values());
    EXPECT_EQ(serial.cons_fetch_us.values(), parallel.cons_fetch_us.values());
    EXPECT_EQ(serial.counters.items(), parallel.counters.items());
  }
}

TEST(NodeLossTest, IdleMembershipPlaneCostsUnderTwoPercent) {
  const EnsembleResult off =
      workflow::run_ensemble(loss_config("dyad", "none", false, /*reps=*/2));
  const EnsembleResult on =
      workflow::run_ensemble(loss_config("dyad", "none", true, /*reps=*/2));
  EXPECT_EQ(on.counters.get("membership_declares"), 0u);
  EXPECT_EQ(on.counters.get("rank_migrations"), 0u);
  const double base = off.makespan_s.mean();
  ASSERT_GT(base, 0.0);
  EXPECT_LE(std::abs(on.makespan_s.mean() - base) / base, 0.02);
}

}  // namespace
}  // namespace mdwf::membership
