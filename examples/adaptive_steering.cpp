// Adaptive workflow: in-situ analytics steer the simulation (paper
// Sec. II-B: "steer the simulation (e.g., terminate or fork a trajectory)").
//
// An ensemble of trajectories runs over DYAD; each consumer watches a
// collective variable and terminates its trajectory as soon as an event is
// detected, freeing the (simulated) GPUs early.  Quiet trajectories may
// instead be extended to keep exploring.
//
//   build/examples/adaptive_steering
#include <cstdio>

#include "mdwf/workflow/steering.hpp"

int main() {
  using namespace mdwf;
  using namespace mdwf::workflow;

  WorkloadConfig workload;
  workload.model = md::kJac;
  workload.stride = md::kJac.stride;
  workload.frames = 24;  // planned trajectory length

  // Four trajectories; two will hit an event (at frames 6 and 14), two run
  // quietly and are granted an 8-frame extension.
  const std::uint64_t event_frames[] = {6, SIZE_MAX, 14, SIZE_MAX};

  TestbedParams tp;
  tp.compute_nodes = 2;
  Testbed tb(tp);
  auto& sim = tb.simulation();

  std::vector<std::unique_ptr<perf::Recorder>> recorders;
  std::vector<std::unique_ptr<SteeringChannel>> channels;
  std::vector<std::unique_ptr<ProgressLatch>> latches;
  std::vector<std::unique_ptr<Connector>> connectors;
  std::vector<SteeredPairResult> results(4);

  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    recorders.push_back(std::make_unique<perf::Recorder>(
        sim, "p" + std::to_string(pair)));
    recorders.push_back(std::make_unique<perf::Recorder>(
        sim, "c" + std::to_string(pair)));
    auto& prec = *recorders[recorders.size() - 2];
    auto& crec = *recorders[recorders.size() - 1];
    channels.push_back(std::make_unique<SteeringChannel>(
        sim, tb.network(), net::NodeId{1}, net::NodeId{0}));
    latches.push_back(std::make_unique<ProgressLatch>(sim));
    connectors.push_back(
        std::make_unique<DyadConnector>(*tb.node(0).dyad, prec));
    connectors.push_back(
        std::make_unique<DyadConnector>(*tb.node(1).dyad, crec));
    auto& prod = *connectors[connectors.size() - 2];
    auto& cons = *connectors[connectors.size() - 1];

    sim.spawn(run_steered_producer(sim, prod, prec, workload, pair,
                                   Rng(100 + pair), *channels.back(),
                                   *latches.back(), /*extension=*/8,
                                   results[pair]));
    sim.spawn(run_steered_consumer(
        sim, cons, crec, workload, pair,
        make_event_cv(40 + pair, event_frames[pair]),
        ThresholdMonitor(3.0, 2, 6), *channels.back(), *latches.back(),
        /*extend_on_quiet=*/true, results[pair]));
  }

  sim.run_to_quiescence();

  std::printf("adaptive ensemble: 4 trajectories, plan 24 frames, extension "
              "8, events at frames {6, -, 14, -}\n\n");
  double gpu_frames_saved = 0;
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const auto& r = results[pair];
    std::printf("  trajectory %u: produced %2llu frames, consumed %2llu, %s\n",
                pair, static_cast<unsigned long long>(r.frames_produced),
                static_cast<unsigned long long>(r.frames_consumed),
                r.terminated_early ? "TERMINATED (event found)"
                : r.extended       ? "extended (quiet)"
                                   : "ran to plan");
    if (r.terminated_early) {
      gpu_frames_saved += 24.0 - static_cast<double>(r.frames_produced);
    }
  }
  std::printf("\nsimulated GPU time saved by steering: %.0f frame-intervals "
              "(~%.0f s of MD per terminated trajectory pair)\n",
              gpu_frames_saved,
              gpu_frames_saved * workload.model.frame_period_seconds());
  std::printf("workflow makespan: %.1f s (virtual)\n",
              sim.now().to_seconds());
  return 0;
}
