// Solution advisor: given a molecular model and ensemble scale, compare the
// three data-management solutions and report which one minimizes total
// consumption latency — the decision the paper's findings guide.
//
//   build/examples/solution_advisor [model] [pairs]
//   model: JAC | ApoA1 | "F1 ATPase" | STMV      (default JAC)
//   pairs: producer-consumer pairs               (default 4)
//
// This example keeps the smallest possible advisor loop for readability.
// The production version is tools/mdwf_advise: it batches whole DAG
// workloads (workloads=wfcommons:<file>|synth:<topology>) across solutions
// and fault scenarios via mdwf::sweep and writes a recommendation CSV with
// confidence grades (DESIGN.md §13).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mdwf/common/table.hpp"
#include "mdwf/common/format.hpp"
#include "mdwf/workflow/ensemble.hpp"

int main(int argc, char** argv) {
  using namespace mdwf;

  const std::string model_name = argc > 1 ? argv[1] : "JAC";
  const auto model = md::find_model(model_name);
  if (!model.has_value()) {
    std::fprintf(stderr, "unknown model '%s'\n", model_name.c_str());
    return 1;
  }
  const auto pairs =
      static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 4);
  if (pairs < 1 || pairs > 256) {
    std::fprintf(stderr, "pairs must be in [1, 256]\n");
    return 1;
  }

  struct Candidate {
    workflow::Solution solution;
    std::uint32_t nodes;
    const char* placement;
  };
  // XFS requires colocation; DYAD/Lustre run distributed.
  const std::vector<Candidate> candidates = {
      {workflow::Solution::kXfs, 1, "single node (colocated)"},
      {workflow::Solution::kDyad, 2, "two nodes (distributed)"},
      {workflow::Solution::kLustre, 2, "two nodes (distributed)"},
  };

  TextTable table({"solution", "placement", "prod/frame", "cons/frame",
                   "makespan"});
  double best_cons = 0.0;
  std::string best;
  for (const auto& c : candidates) {
    workflow::EnsembleConfig config;
    config.solution = c.solution;
    config.pairs = pairs;
    config.nodes = c.nodes;
    config.workload.model = *model;
    config.workload.stride = model->stride;
    config.workload.frames = 32;
    config.repetitions = 3;
    const auto r = workflow::run_ensemble(config);
    const double cons = r.mean_consumption_us();
    table.add_row({std::string(to_string(c.solution)), c.placement,
                   format_duration(Duration::microseconds(
                       static_cast<std::int64_t>(r.mean_production_us()))),
                   format_duration(Duration::microseconds(
                       static_cast<std::int64_t>(cons))),
                   format_double(r.makespan_s.mean(), 2) + " s"});
    if (best.empty() || cons < best_cons) {
      best_cons = cons;
      best = std::string(to_string(c.solution));
    }
  }

  std::printf("data-management comparison for %s, %u pair(s), 32 frames:\n\n%s",
              std::string(model->name).c_str(), pairs,
              table.render().c_str());
  std::printf(
      "\nrecommendation: %s (lowest consumption latency; per the study, "
      "adaptive synchronization and node-local staging dominate the "
      "outcome)\n",
      best.c_str());
  return 0;
}
