// Trace explorer: run a workflow, then interrogate the collected Thicket
// with the path query language — the Caliper/Thicket/Hatchet methodology
// the paper uses for Figs. 9 and 10.
//
//   build/examples/trace_explorer [query]
//   default query: "**/dyad_fetch"
#include <cstdio>

#include "mdwf/workflow/ensemble.hpp"

int main(int argc, char** argv) {
  using namespace mdwf;
  const std::string query = argc > 1 ? argv[1] : "**/dyad_fetch";

  workflow::EnsembleConfig config;
  config.solution = workflow::Solution::kDyad;
  config.pairs = 4;
  config.nodes = 2;
  config.workload.model = md::kApoA1;
  config.workload.stride = md::kApoA1.stride;
  config.workload.frames = 16;
  config.repetitions = 3;

  std::printf("collecting traces: 4 DYAD pairs, ApoA1, 16 frames, 3 reps...\n");
  const auto result = workflow::run_ensemble(config);
  std::printf("collected %zu call trees\n\n", result.thicket.size());

  // 1. Aggregate across every rank and repetition.
  perf::StatTree all = result.thicket.aggregate();
  std::printf("aggregate tree over all ranks:\n%s\n", all.render().c_str());

  // 2. Slice by metadata, as Thicket's filter does.
  const auto consumers = result.thicket.filter("role", "consumer");
  std::printf("consumer-only records: %zu\n", consumers.size());

  // 3. Path query (Hatchet-style): '*' one segment, '**' any depth.
  perf::StatTree agg;
  const auto hits = consumers.query(query, agg);
  std::printf("\nquery '%s' -> %zu match(es):\n", query.c_str(), hits.size());
  for (const auto& [path, node] : hits) {
    std::printf("  %-50s %10.1f +/- %.1f us  (steady per call: %.1f us)\n",
                path.c_str(), node->inclusive_us.mean(),
                node->inclusive_us.stddev(), node->steady_per_call_us());
  }
  if (hits.empty()) {
    std::printf("  (no matches; try \"**\" to list every path)\n");
  }
  return 0;
}
