// Quickstart: move MD frames from a producer to an in-situ consumer with
// DYAD on a simulated two-node testbed, and read the timing decomposition.
//
//   build/examples/quickstart
//
// Walks through the three core objects of the public API:
//   1. workflow::EnsembleConfig  - what to run (solution, scale, model);
//   2. workflow::run_ensemble    - runs it (deterministic, seeded);
//   3. workflow::EnsembleResult  - per-frame movement/idle decomposition,
//                                  Thicket call trees, makespans.
#include <cstdio>

#include "mdwf/common/format.hpp"
#include "mdwf/workflow/ensemble.hpp"

int main() {
  using namespace mdwf;

  // One producer-consumer pair exchanging JAC frames (23,558 atoms,
  // ~644 KiB every 880 MD steps ~= 0.82 s), producers on node 0 and the
  // consumer on node 1, over the DYAD middleware.
  workflow::EnsembleConfig config;
  config.solution = workflow::Solution::kDyad;
  config.pairs = 1;
  config.nodes = 2;
  config.workload.model = md::kJac;
  config.workload.stride = md::kJac.stride;
  config.workload.frames = 32;
  config.repetitions = 3;  // three seeded repetitions

  std::printf("running %u x %s pair(s), %llu frames of %s on %u nodes...\n",
              config.pairs, std::string(to_string(config.solution)).c_str(),
              static_cast<unsigned long long>(config.workload.frames),
              std::string(config.workload.model.name).c_str(), config.nodes);

  const workflow::EnsembleResult result = workflow::run_ensemble(config);

  std::printf("\nper-frame times (mean over %zu repetitions):\n",
              result.prod_movement_us.count());
  std::printf("  production  movement %8.1f us   idle %8.1f us\n",
              result.prod_movement_us.mean(), result.prod_idle_us.mean());
  std::printf("  consumption movement %8.1f us   idle %8.1f us\n",
              result.cons_movement_us.mean(), result.cons_idle_us.mean());
  std::printf("  makespan    %.2f s\n", result.makespan_s.mean());
  std::printf("  DYAD sync: %llu warm flock hits, %llu KVS watch waits\n",
              static_cast<unsigned long long>(result.counters.get("dyad_warm_hits")),
              static_cast<unsigned long long>(result.counters.get("dyad_kvs_waits")));

  // Drill into the consumer's call tree (the paper's Fig. 9 view).
  const auto agg = result.thicket.filter("role", "consumer").aggregate();
  std::printf("\nconsumer call tree (mean inclusive time per rank-run):\n%s",
              agg.render().c_str());
  return 0;
}
