// In-situ analytics on a *real* MD trajectory (paper Fig. 1, end to end):
// a Lennard-Jones simulation streams frames through a real filesystem
// channel to a consumer thread that computes the gyration-tensor largest
// eigenvalue of every frame as it arrives — comparing eventful (DYAD-like)
// synchronization against coarse polling.
//
//   build/examples/insitu_analytics [frames] [particles]
#include <cstdio>
#include <cstdlib>

#include "mdwf/md/observables.hpp"
#include "mdwf/rt/pipeline.hpp"

namespace {

mdwf::rt::PipelineResult run_with(mdwf::rt::SyncProtocol protocol,
                                  std::uint64_t frames,
                                  std::uint64_t particles) {
  mdwf::rt::PipelineConfig config;
  config.lj.particle_count = particles;
  config.lj.density = 0.8;
  config.lj.initial_temperature = 1.2;
  config.lj.thermostat_tau = 0.1;
  config.lj.target_temperature = 1.2;
  config.stride = 10;
  config.frames = frames;
  config.protocol = protocol;
  // A realistic filesystem-polling cadence; makes the discovery latency of
  // the coarse protocol visible next to eventful notification.
  config.poll_interval = std::chrono::milliseconds(25);
  config.staging_dir =
      protocol == mdwf::rt::SyncProtocol::kEventful ? "mdwf_staging_eventful"
                                                    : "mdwf_staging_coarse";
  return mdwf::rt::run_insitu_pipeline(config);
}

double ms(std::chrono::nanoseconds d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto frames =
      static_cast<std::uint64_t>(argc > 1 ? std::atoll(argv[1]) : 24);
  const auto particles =
      static_cast<std::uint64_t>(argc > 2 ? std::atoll(argv[2]) : 500);

  std::printf("LJ fluid, %llu particles, %llu frames (stride 10)\n",
              static_cast<unsigned long long>(particles),
              static_cast<unsigned long long>(frames));

  const auto eventful =
      run_with(mdwf::rt::SyncProtocol::kEventful, frames, particles);
  const auto coarse =
      run_with(mdwf::rt::SyncProtocol::kCoarse, frames, particles);

  std::printf("\nper-frame collective variable (largest eigenvalue of the "
              "gyration tensor):\n");
  for (std::size_t f = 0; f < eventful.series.size(); ++f) {
    const auto& a = eventful.series[f];
    std::printf("  frame %3zu  lambda_max %8.3f  Rg %7.3f  asphericity %7.3f\n",
                f, a.largest_eigenvalue, a.radius_of_gyration, a.asphericity);
  }

  std::printf("\nsynchronization comparison (wall clock):\n");
  std::printf("  eventful (DYAD-like): total %8.2f ms, consumer waited "
              "%8.2f ms\n",
              ms(eventful.wall), ms(eventful.channel.consumer_wait));
  std::printf("  coarse   (polling)  : total %8.2f ms, consumer waited "
              "%8.2f ms\n",
              ms(coarse.wall), ms(coarse.channel.consumer_wait));
  std::printf("\nmoved %llu frames / %.2f MiB; final temperature %.3f after "
              "%llu MD steps\n",
              static_cast<unsigned long long>(eventful.channel.frames),
              static_cast<double>(eventful.channel.bytes) / (1024.0 * 1024.0),
              eventful.final_temperature,
              static_cast<unsigned long long>(eventful.md_steps));

  // Trajectory-level observables over a fresh run of the same engine (the
  // consumer side would normally accumulate these from received frames).
  {
    mdwf::md::LjParams lj;
    lj.particle_count = particles;
    lj.density = 0.8;
    lj.initial_temperature = 1.2;
    lj.thermostat_tau = 0.1;
    lj.target_temperature = 1.2;
    mdwf::md::LjEngine engine(lj);
    engine.step(200);  // equilibrate
    mdwf::md::RadialDistribution rdf(engine.box_edge(),
                                     engine.box_edge() / 2.0, 30);
    mdwf::md::MeanSquaredDisplacement msd(engine.box_edge());
    for (std::uint64_t f = 0; f < frames; ++f) {
      const auto frame = engine.snapshot("LJ", f);
      rdf.accumulate(frame);
      msd.accumulate(frame);
      engine.step(10);
    }
    std::printf("\ntrajectory observables (%llu frames):\n",
                static_cast<unsigned long long>(frames));
    const auto g = rdf.g();
    double peak = 0.0, peak_r = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (g[i] > peak) {
        peak = g[i];
        peak_r = rdf.r_of(i);
      }
    }
    std::printf("  g(r) first-shell peak: %.2f at r = %.2f sigma\n", peak,
                peak_r);
    std::printf("  MSD end value: %.3f sigma^2, D ~= %.4f (frame units)\n",
                msd.series().back(), msd.diffusion_estimate());
  }
  return 0;
}
