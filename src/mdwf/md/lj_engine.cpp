#include "mdwf/md/lj_engine.hpp"

#include <cmath>

#include "mdwf/common/assert.hpp"

namespace mdwf::md {

LjEngine::LjEngine(const LjParams& params) : params_(params) {
  MDWF_ASSERT(params.particle_count >= 2);
  MDWF_ASSERT(params.density > 0.0);
  box_ = std::cbrt(static_cast<double>(params.particle_count) / params.density);
  MDWF_ASSERT_MSG(box_ > 2.0 * params.cutoff,
                  "box must exceed twice the cutoff for minimum-image");
  cutoff_sq_ = params.cutoff * params.cutoff;
  pos_.resize(params.particle_count);
  vel_.resize(params.particle_count);
  force_.resize(params.particle_count);
  init_lattice();
  init_velocities();
  compute_forces();
}

void LjEngine::init_lattice() {
  // Simple cubic lattice filling the box.
  const auto n = static_cast<std::uint64_t>(
      std::ceil(std::cbrt(static_cast<double>(params_.particle_count))));
  const double a = box_ / static_cast<double>(n);
  std::uint64_t idx = 0;
  for (std::uint64_t ix = 0; ix < n && idx < params_.particle_count; ++ix) {
    for (std::uint64_t iy = 0; iy < n && idx < params_.particle_count; ++iy) {
      for (std::uint64_t iz = 0; iz < n && idx < params_.particle_count;
           ++iz) {
        pos_[idx] = Vec3{(static_cast<double>(ix) + 0.5) * a,
                         (static_cast<double>(iy) + 0.5) * a,
                         (static_cast<double>(iz) + 0.5) * a};
        ++idx;
      }
    }
  }
}

void LjEngine::init_velocities() {
  Rng rng(params_.seed);
  const double scale = std::sqrt(params_.initial_temperature);
  Vec3 total{};
  for (auto& v : vel_) {
    v = Vec3{rng.normal(0, scale), rng.normal(0, scale), rng.normal(0, scale)};
    total.x += v.x;
    total.y += v.y;
    total.z += v.z;
  }
  // Remove centre-of-mass drift.
  const auto n = static_cast<double>(vel_.size());
  for (auto& v : vel_) {
    v.x -= total.x / n;
    v.y -= total.y / n;
    v.z -= total.z / n;
  }
}

void LjEngine::apply_minimum_image(double& dx, double& dy, double& dz) const {
  dx -= box_ * std::round(dx / box_);
  dy -= box_ * std::round(dy / box_);
  dz -= box_ * std::round(dz / box_);
}

void LjEngine::rebuild_cells() {
  cells_per_side_ = static_cast<int>(box_ / params_.cutoff);
  if (cells_per_side_ < 3) cells_per_side_ = 1;  // fall back to one cell
  cell_edge_ = box_ / cells_per_side_;
  const std::size_t total = static_cast<std::size_t>(cells_per_side_) *
                            cells_per_side_ * cells_per_side_;
  cells_.assign(total, {});
  for (std::uint32_t i = 0; i < pos_.size(); ++i) {
    auto cell_of = [&](double c) {
      int k = static_cast<int>(c / cell_edge_);
      if (k >= cells_per_side_) k = cells_per_side_ - 1;
      if (k < 0) k = 0;
      return k;
    };
    const int cx = cell_of(pos_[i].x);
    const int cy = cell_of(pos_[i].y);
    const int cz = cell_of(pos_[i].z);
    cells_[static_cast<std::size_t>((cx * cells_per_side_ + cy) *
                                    cells_per_side_ + cz)]
        .push_back(i);
  }
}

void LjEngine::compute_forces() {
  for (auto& f : force_) f = Vec3{};
  potential_ = 0.0;
  rebuild_cells();

  auto pair_interaction = [&](std::uint32_t i, std::uint32_t j) {
    double dx = pos_[i].x - pos_[j].x;
    double dy = pos_[i].y - pos_[j].y;
    double dz = pos_[i].z - pos_[j].z;
    apply_minimum_image(dx, dy, dz);
    const double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= cutoff_sq_ || r2 == 0.0) return;
    const double inv_r2 = 1.0 / r2;
    const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
    // U = 4 (r^-12 - r^-6); F = 24 (2 r^-12 - r^-6) / r * rhat
    const double f_over_r = 24.0 * inv_r2 * inv_r6 * (2.0 * inv_r6 - 1.0);
    force_[i].x += f_over_r * dx;
    force_[i].y += f_over_r * dy;
    force_[i].z += f_over_r * dz;
    force_[j].x -= f_over_r * dx;
    force_[j].y -= f_over_r * dy;
    force_[j].z -= f_over_r * dz;
    potential_ += 4.0 * inv_r6 * (inv_r6 - 1.0);
  };

  if (cells_per_side_ == 1) {
    for (std::uint32_t i = 0; i < pos_.size(); ++i) {
      for (std::uint32_t j = i + 1; j < pos_.size(); ++j) {
        pair_interaction(i, j);
      }
    }
    return;
  }

  const int n = cells_per_side_;
  auto cell_at = [&](int x, int y, int z) -> const std::vector<std::uint32_t>& {
    auto wrap = [n](int k) { return ((k % n) + n) % n; };
    return cells_[static_cast<std::size_t>(
        (wrap(x) * n + wrap(y)) * n + wrap(z))];
  };
  // Half-shell neighbour offsets: each unordered cell pair visited once.
  static constexpr int kHalf[13][3] = {
      {1, 0, 0},  {0, 1, 0},  {0, 0, 1},  {1, 1, 0},   {1, -1, 0},
      {1, 0, 1},  {1, 0, -1}, {0, 1, 1},  {0, 1, -1},  {1, 1, 1},
      {1, 1, -1}, {1, -1, 1}, {1, -1, -1}};
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      for (int z = 0; z < n; ++z) {
        const auto& home = cell_at(x, y, z);
        for (std::size_t a = 0; a < home.size(); ++a) {
          for (std::size_t b = a + 1; b < home.size(); ++b) {
            pair_interaction(home[a], home[b]);
          }
        }
        for (const auto& off : kHalf) {
          const auto& nb = cell_at(x + off[0], y + off[1], z + off[2]);
          for (const std::uint32_t i : home) {
            for (const std::uint32_t j : nb) {
              pair_interaction(i, j);
            }
          }
        }
      }
    }
  }
}

void LjEngine::compute_forces_reference(std::vector<Vec3>& out,
                                        double& pot) const {
  out.assign(pos_.size(), Vec3{});
  pot = 0.0;
  for (std::uint32_t i = 0; i < pos_.size(); ++i) {
    for (std::uint32_t j = i + 1; j < pos_.size(); ++j) {
      double dx = pos_[i].x - pos_[j].x;
      double dy = pos_[i].y - pos_[j].y;
      double dz = pos_[i].z - pos_[j].z;
      apply_minimum_image(dx, dy, dz);
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= cutoff_sq_ || r2 == 0.0) continue;
      const double inv_r2 = 1.0 / r2;
      const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
      const double f_over_r = 24.0 * inv_r2 * inv_r6 * (2.0 * inv_r6 - 1.0);
      out[i].x += f_over_r * dx;
      out[i].y += f_over_r * dy;
      out[i].z += f_over_r * dz;
      out[j].x -= f_over_r * dx;
      out[j].y -= f_over_r * dy;
      out[j].z -= f_over_r * dz;
      pot += 4.0 * inv_r6 * (inv_r6 - 1.0);
    }
  }
}

double LjEngine::force_error_vs_bruteforce() {
  compute_forces();
  std::vector<Vec3> ref;
  double ref_pot = 0.0;
  compute_forces_reference(ref, ref_pot);
  double err = std::abs(potential_ - ref_pot);
  for (std::size_t i = 0; i < force_.size(); ++i) {
    err = std::max(err, std::abs(force_[i].x - ref[i].x));
    err = std::max(err, std::abs(force_[i].y - ref[i].y));
    err = std::max(err, std::abs(force_[i].z - ref[i].z));
  }
  return err;
}

void LjEngine::step(std::uint64_t n) {
  const double dt = params_.dt;
  const double half_dt = 0.5 * dt;
  for (std::uint64_t s = 0; s < n; ++s) {
    for (std::size_t i = 0; i < pos_.size(); ++i) {
      vel_[i].x += half_dt * force_[i].x;
      vel_[i].y += half_dt * force_[i].y;
      vel_[i].z += half_dt * force_[i].z;
      pos_[i].x += dt * vel_[i].x;
      pos_[i].y += dt * vel_[i].y;
      pos_[i].z += dt * vel_[i].z;
      // Wrap into the periodic box.
      pos_[i].x -= box_ * std::floor(pos_[i].x / box_);
      pos_[i].y -= box_ * std::floor(pos_[i].y / box_);
      pos_[i].z -= box_ * std::floor(pos_[i].z / box_);
    }
    compute_forces();
    for (std::size_t i = 0; i < pos_.size(); ++i) {
      vel_[i].x += half_dt * force_[i].x;
      vel_[i].y += half_dt * force_[i].y;
      vel_[i].z += half_dt * force_[i].z;
    }
    if (params_.thermostat_tau > 0.0) {
      const double t = temperature();
      if (t > 0.0) {
        const double lambda = std::sqrt(
            1.0 + dt / params_.thermostat_tau *
                      (params_.target_temperature / t - 1.0));
        for (auto& v : vel_) {
          v.x *= lambda;
          v.y *= lambda;
          v.z *= lambda;
        }
      }
    }
    ++steps_;
  }
}

double LjEngine::kinetic_energy() const {
  double ke = 0.0;
  for (const auto& v : vel_) {
    ke += 0.5 * (v.x * v.x + v.y * v.y + v.z * v.z);
  }
  return ke;
}

double LjEngine::temperature() const {
  // Equipartition: KE = (3N - 3)/2 kT with COM motion removed.
  const double dof = 3.0 * static_cast<double>(pos_.size()) - 3.0;
  return 2.0 * kinetic_energy() / dof;
}

Vec3 LjEngine::total_momentum() const {
  Vec3 p{};
  for (const auto& v : vel_) {
    p.x += v.x;
    p.y += v.y;
    p.z += v.z;
  }
  return p;
}

Frame LjEngine::snapshot(std::string model_name,
                         std::uint64_t frame_index) const {
  Frame f;
  f.model = std::move(model_name);
  f.index = frame_index;
  f.atoms.resize(pos_.size());
  for (std::uint32_t i = 0; i < pos_.size(); ++i) {
    f.atoms[i] = Atom{i, pos_[i].x, pos_[i].y, pos_[i].z};
  }
  return f;
}

}  // namespace mdwf::md
