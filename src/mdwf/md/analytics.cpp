#include "mdwf/md/analytics.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "mdwf/common/assert.hpp"

namespace mdwf::md {

std::array<double, 3> eigenvalues_sym3(const Sym3& m) {
  // Trigonometric (Smith's) method for symmetric 3x3 eigenvalues.
  const double p1 = m.xy * m.xy + m.xz * m.xz + m.yz * m.yz;
  const double q = (m.xx + m.yy + m.zz) / 3.0;
  if (p1 == 0.0) {
    std::array<double, 3> diag{m.xx, m.yy, m.zz};
    std::sort(diag.begin(), diag.end(), std::greater<>());
    return diag;
  }
  const double dxx = m.xx - q;
  const double dyy = m.yy - q;
  const double dzz = m.zz - q;
  const double p2 = dxx * dxx + dyy * dyy + dzz * dzz + 2.0 * p1;
  const double p = std::sqrt(p2 / 6.0);
  // B = (A - qI) / p; r = det(B)/2 in [-1, 1].
  const double bxx = dxx / p, byy = dyy / p, bzz = dzz / p;
  const double bxy = m.xy / p, bxz = m.xz / p, byz = m.yz / p;
  double r = (bxx * (byy * bzz - byz * byz) - bxy * (bxy * bzz - byz * bxz) +
              bxz * (bxy * byz - byy * bxz)) /
             2.0;
  r = std::clamp(r, -1.0, 1.0);
  const double phi = std::acos(r) / 3.0;
  const double l1 = q + 2.0 * p * std::cos(phi);
  const double l3 =
      q + 2.0 * p * std::cos(phi + 2.0 * std::numbers::pi / 3.0);
  const double l2 = 3.0 * q - l1 - l3;
  std::array<double, 3> out{l1, l2, l3};
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

Sym3 gyration_tensor(const Frame& frame, std::size_t first,
                     std::size_t count) {
  const std::size_t n = frame.atoms.size();
  MDWF_ASSERT(first <= n);
  const std::size_t last = (count == static_cast<std::size_t>(-1))
                               ? n
                               : std::min(n, first + count);
  const std::size_t m = last - first;
  MDWF_ASSERT_MSG(m > 0, "gyration tensor of empty selection");

  double cx = 0, cy = 0, cz = 0;
  for (std::size_t i = first; i < last; ++i) {
    cx += frame.atoms[i].x;
    cy += frame.atoms[i].y;
    cz += frame.atoms[i].z;
  }
  const auto dm = static_cast<double>(m);
  cx /= dm;
  cy /= dm;
  cz /= dm;

  Sym3 g;
  for (std::size_t i = first; i < last; ++i) {
    const double dx = frame.atoms[i].x - cx;
    const double dy = frame.atoms[i].y - cy;
    const double dz = frame.atoms[i].z - cz;
    g.xx += dx * dx;
    g.xy += dx * dy;
    g.xz += dx * dz;
    g.yy += dy * dy;
    g.yz += dy * dz;
    g.zz += dz * dz;
  }
  g.xx /= dm;
  g.xy /= dm;
  g.xz /= dm;
  g.yy /= dm;
  g.yz /= dm;
  g.zz /= dm;
  return g;
}

FrameAnalytics analyze_frame(const Frame& frame) {
  const Sym3 g = gyration_tensor(frame);
  const auto ev = eigenvalues_sym3(g);
  FrameAnalytics out;
  out.largest_eigenvalue = ev[0];
  out.radius_of_gyration = std::sqrt(g.xx + g.yy + g.zz);
  out.asphericity = ev[0] - 0.5 * (ev[1] + ev[2]);
  return out;
}

}  // namespace mdwf::md
