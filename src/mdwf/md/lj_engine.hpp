// Minimal real molecular-dynamics engine (Lennard-Jones fluid).
//
// The paper's harness emulates MD with fixed-duration sleeps; this engine
// exists so the examples and the real-thread backend can produce physically
// meaningful trajectories end-to-end: N particles in a periodic cubic box,
// LJ 12-6 interactions with a cutoff, cell-list neighbour search, and
// velocity-Verlet integration (NVE), with an optional Berendsen thermostat.
// Reduced LJ units throughout (sigma = epsilon = mass = 1).
#pragma once

#include <cstdint>
#include <vector>

#include "mdwf/common/rng.hpp"
#include "mdwf/md/frame.hpp"

namespace mdwf::md {

struct LjParams {
  std::uint64_t particle_count = 256;
  double density = 0.8;   // N / V, sets the box edge
  double dt = 0.005;      // integration step
  double cutoff = 2.5;    // interaction cutoff (sigma units)
  double initial_temperature = 1.0;
  // Berendsen thermostat coupling; 0 disables (pure NVE).
  double thermostat_tau = 0.0;
  double target_temperature = 1.0;
  std::uint64_t seed = 12345;
};

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;
};

class LjEngine {
 public:
  explicit LjEngine(const LjParams& params);

  const LjParams& params() const { return params_; }
  double box_edge() const { return box_; }
  std::uint64_t steps_done() const { return steps_; }

  // Advances `n` integration steps.
  void step(std::uint64_t n = 1);

  // Observables.
  double kinetic_energy() const;
  double potential_energy() const { return potential_; }
  double total_energy() const { return kinetic_energy() + potential_; }
  double temperature() const;
  Vec3 total_momentum() const;

  // Current positions as a frame (ids are particle indices).
  Frame snapshot(std::string model_name, std::uint64_t frame_index) const;

  const std::vector<Vec3>& positions() const { return pos_; }
  const std::vector<Vec3>& velocities() const { return vel_; }

  // Recomputes forces with an O(N^2) reference loop and compares to the
  // cell-list result (testing hook); returns the max per-component error.
  double force_error_vs_bruteforce();

 private:
  void init_lattice();
  void init_velocities();
  void compute_forces();
  void compute_forces_reference(std::vector<Vec3>& out, double& pot) const;
  void apply_minimum_image(double& dx, double& dy, double& dz) const;
  void rebuild_cells();

  LjParams params_;
  double box_;
  double cutoff_sq_;
  std::uint64_t steps_ = 0;
  double potential_ = 0.0;
  std::vector<Vec3> pos_;
  std::vector<Vec3> vel_;
  std::vector<Vec3> force_;

  // Cell list.
  int cells_per_side_ = 0;
  double cell_edge_ = 0.0;
  std::vector<std::vector<std::uint32_t>> cells_;
};

}  // namespace mdwf::md
