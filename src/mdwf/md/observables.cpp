#include "mdwf/md/observables.hpp"

#include <cmath>
#include <numbers>

#include "mdwf/common/assert.hpp"

namespace mdwf::md {

RadialDistribution::RadialDistribution(double box, double r_max,
                                       std::size_t bins)
    : box_(box), r_max_(r_max), hist_(bins, 0) {
  MDWF_ASSERT(bins > 0);
  MDWF_ASSERT_MSG(r_max <= box / 2.0,
                  "g(r) beyond half the box is ill-defined (minimum image)");
}

void RadialDistribution::accumulate(const Frame& frame) {
  const std::size_t n = frame.atoms.size();
  MDWF_ASSERT(n >= 2);
  if (particles_ == 0) particles_ = n;
  MDWF_ASSERT_MSG(particles_ == n, "particle count changed mid-trajectory");
  const double bw = bin_width();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double dx = frame.atoms[i].x - frame.atoms[j].x;
      double dy = frame.atoms[i].y - frame.atoms[j].y;
      double dz = frame.atoms[i].z - frame.atoms[j].z;
      dx -= box_ * std::round(dx / box_);
      dy -= box_ * std::round(dy / box_);
      dz -= box_ * std::round(dz / box_);
      const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
      if (r < r_max_) {
        hist_[static_cast<std::size_t>(r / bw)] += 2;  // both orderings
      }
    }
  }
  ++frames_;
}

std::vector<double> RadialDistribution::g() const {
  std::vector<double> out(hist_.size(), 0.0);
  if (frames_ == 0 || particles_ == 0) return out;
  const double volume = box_ * box_ * box_;
  const double density = static_cast<double>(particles_) / volume;
  const double bw = bin_width();
  for (std::size_t i = 0; i < hist_.size(); ++i) {
    const double r_lo = static_cast<double>(i) * bw;
    const double r_hi = r_lo + bw;
    const double shell =
        4.0 / 3.0 * std::numbers::pi *
        (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal = density * shell * static_cast<double>(particles_) *
                         static_cast<double>(frames_);
    out[i] = ideal > 0.0 ? static_cast<double>(hist_[i]) / ideal : 0.0;
  }
  return out;
}

void MeanSquaredDisplacement::accumulate(const Frame& frame) {
  const std::size_t n = frame.atoms.size();
  std::vector<double> wrapped(3 * n);
  for (std::size_t i = 0; i < n; ++i) {
    wrapped[3 * i + 0] = frame.atoms[i].x;
    wrapped[3 * i + 1] = frame.atoms[i].y;
    wrapped[3 * i + 2] = frame.atoms[i].z;
  }
  if (reference_.empty()) {
    reference_ = wrapped;
    unwrapped_ = wrapped;
    previous_ = std::move(wrapped);
    series_.push_back(0.0);
    return;
  }
  MDWF_ASSERT_MSG(wrapped.size() == reference_.size(),
                  "particle count changed mid-trajectory");
  // Unwrap: add the minimum-image displacement since the previous frame.
  for (std::size_t k = 0; k < wrapped.size(); ++k) {
    double d = wrapped[k] - previous_[k];
    d -= box_ * std::round(d / box_);
    unwrapped_[k] += d;
  }
  previous_ = std::move(wrapped);
  double acc = 0.0;
  for (std::size_t k = 0; k < unwrapped_.size(); ++k) {
    const double d = unwrapped_[k] - reference_[k];
    acc += d * d;
  }
  series_.push_back(acc / static_cast<double>(unwrapped_.size() / 3));
}

double MeanSquaredDisplacement::diffusion_estimate() const {
  if (series_.size() < 4) return 0.0;
  // Least-squares slope over the second half of MSD(t); D = slope / 6.
  const std::size_t start = series_.size() / 2;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  double n = 0;
  for (std::size_t t = start; t < series_.size(); ++t) {
    const auto x = static_cast<double>(t);
    sx += x;
    sy += series_[t];
    sxx += x * x;
    sxy += x * series_[t];
    n += 1.0;
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  const double slope = (n * sxy - sx * sy) / denom;
  return slope / 6.0;
}

void VelocityAutocorrelation::accumulate(const std::vector<Vec3>& velocities) {
  if (snapshots_.size() < window_) {
    snapshots_.push_back(velocities);
  }
}

std::vector<double> VelocityAutocorrelation::normalized() const {
  std::vector<double> out;
  if (snapshots_.empty()) return out;
  auto dot_frames = [this](std::size_t a, std::size_t b) {
    double acc = 0.0;
    const auto& va = snapshots_[a];
    const auto& vb = snapshots_[b];
    for (std::size_t i = 0; i < va.size(); ++i) {
      acc += va[i].x * vb[i].x + va[i].y * vb[i].y + va[i].z * vb[i].z;
    }
    return acc / static_cast<double>(va.size());
  };
  const double c0 = dot_frames(0, 0);
  if (c0 == 0.0) return out;
  for (std::size_t t = 0; t < snapshots_.size(); ++t) {
    out.push_back(dot_frames(0, t) / c0);
  }
  return out;
}

}  // namespace mdwf::md
