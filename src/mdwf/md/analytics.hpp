// In-situ analytics over MD frames.
//
// Mirrors the paper's Figure 1 example: per-frame collective variables,
// specifically the gyration tensor and its largest eigenvalue, whose sudden
// changes flag conformational events (the "largest eigenvalue of the
// helices" plots).  Consumers run these on every received frame.
#pragma once

#include <array>
#include <cstddef>

#include "mdwf/md/frame.hpp"

namespace mdwf::md {

// Symmetric 3x3 matrix in row-major packed order:
// [xx, xy, xz; xy, yy, yz; xz, yz, zz].
struct Sym3 {
  double xx = 0, xy = 0, xz = 0, yy = 0, yz = 0, zz = 0;
};

// Eigenvalues of a symmetric 3x3 matrix, descending.  Analytic solution
// (trigonometric method), robust for the (PSD) gyration tensors seen here.
std::array<double, 3> eigenvalues_sym3(const Sym3& m);

// Gyration tensor of a frame (or a subrange of its atoms): the second
// moment of atom positions about the centroid.
Sym3 gyration_tensor(const Frame& frame, std::size_t first = 0,
                     std::size_t count = static_cast<std::size_t>(-1));

struct FrameAnalytics {
  double largest_eigenvalue = 0.0;
  double radius_of_gyration = 0.0;  // sqrt(trace of gyration tensor)
  double asphericity = 0.0;         // l1 - (l2 + l3)/2
};

// Full per-frame analytics pass (what an in-situ consumer computes).
FrameAnalytics analyze_frame(const Frame& frame);

}  // namespace mdwf::md
