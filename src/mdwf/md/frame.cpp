#include "mdwf/md/frame.hpp"

#include <cstring>

#include "mdwf/common/crc32c.hpp"
#include "mdwf/common/rng.hpp"
#include "mdwf/md/models.hpp"

namespace mdwf::md {
namespace {

constexpr std::uint32_t kMagic = 0x4D445746;  // "MDWF"
constexpr std::uint16_t kVersion = 1;

void put_raw(std::vector<std::byte>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  out.insert(out.end(), b, b + n);
}

template <typename T>
void put(std::vector<std::byte>& out, T v) {
  put_raw(out, &v, sizeof(v));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::byte>& buf) : buf_(buf) {}

  template <typename T>
  T get() {
    T v;
    raw(&v, sizeof(v));
    return v;
  }

  void raw(void* p, std::size_t n) {
    if (pos_ + n > buf_.size()) throw FrameError("frame buffer truncated");
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }

  std::size_t pos() const { return pos_; }

 private:
  const std::vector<std::byte>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace

Bytes Frame::serialized_size() const {
  // header: magic(4) + version(2) + reserved(2) + name len(1) + name +
  //         index(8) + count(8); trailer: crc(4)
  return Bytes(4 + 2 + 2 + 1 + model.size() + 8 + 8 +
               atoms.size() * sizeof(std::uint32_t) +
               atoms.size() * 3 * sizeof(double) + 4);
}

std::vector<std::byte> Frame::serialize() const {
  if (model.size() > 255) throw FrameError("model name too long");
  std::vector<std::byte> out;
  out.reserve(serialized_size().count());
  put(out, kMagic);
  put(out, kVersion);
  put(out, std::uint16_t{0});
  put(out, static_cast<std::uint8_t>(model.size()));
  put_raw(out, model.data(), model.size());
  put(out, index);
  put(out, static_cast<std::uint64_t>(atoms.size()));
  for (const Atom& a : atoms) {
    put(out, a.id);
    put(out, a.x);
    put(out, a.y);
    put(out, a.z);
  }
  const std::uint32_t crc = crc32c(out.data(), out.size());
  put(out, crc);
  return out;
}

Frame Frame::deserialize(const std::vector<std::byte>& buf) {
  if (buf.size() < 4) throw FrameError("frame buffer too small");
  const std::uint32_t stored_crc = [&] {
    std::uint32_t c;
    std::memcpy(&c, buf.data() + buf.size() - 4, 4);
    return c;
  }();
  const std::uint32_t actual_crc = crc32c(buf.data(), buf.size() - 4);
  if (stored_crc != actual_crc) throw FrameError("frame checksum mismatch");

  Reader r(buf);
  if (r.get<std::uint32_t>() != kMagic) throw FrameError("bad frame magic");
  const auto version = r.get<std::uint16_t>();
  if (version != kVersion) {
    throw FrameError("unsupported frame version " + std::to_string(version));
  }
  (void)r.get<std::uint16_t>();  // reserved
  Frame f;
  const auto name_len = r.get<std::uint8_t>();
  f.model.resize(name_len);
  r.raw(f.model.data(), name_len);
  f.index = r.get<std::uint64_t>();
  const auto count = r.get<std::uint64_t>();
  // Guard against absurd counts before allocating.
  if (count * kBytesPerAtom > buf.size()) {
    throw FrameError("frame atom count inconsistent with buffer size");
  }
  f.atoms.resize(count);
  for (auto& a : f.atoms) {
    a.id = r.get<std::uint32_t>();
    a.x = r.get<double>();
    a.y = r.get<double>();
    a.z = r.get<double>();
  }
  if (r.pos() + 4 != buf.size()) throw FrameError("trailing bytes in frame");
  return f;
}

Frame synthesize_frame(std::string model, std::uint64_t atom_count,
                       std::uint64_t index, std::uint64_t seed) {
  Rng rng(seed ^ (index * 0x9E3779B97F4A7C15ull) ^ 0x5851F42D4C957F2Dull);
  Frame f;
  f.model = std::move(model);
  f.index = index;
  f.atoms.resize(atom_count);
  const double box = 100.0;  // Angstrom-scale box
  for (std::uint64_t i = 0; i < atom_count; ++i) {
    f.atoms[i].id = static_cast<std::uint32_t>(i);
    f.atoms[i].x = rng.uniform(0.0, box);
    f.atoms[i].y = rng.uniform(0.0, box);
    f.atoms[i].z = rng.uniform(0.0, box);
  }
  return f;
}

}  // namespace mdwf::md
