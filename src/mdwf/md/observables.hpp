// Trajectory observables for in-situ analysis.
//
// Beyond the per-frame gyration analytics, consumers of a streaming MD
// workflow typically accumulate structural and dynamical observables over
// the trajectory; these are the standard three:
//
//   RadialDistribution  - g(r): pair-correlation histogram (structure);
//   MeanSquaredDisplacement - MSD(t) against a reference frame, with
//       periodic-boundary unwrapping (diffusion);
//   VelocityAutocorrelation - normalized VACF over a window (dynamics).
//
// All are streaming accumulators: feed frames (or velocity snapshots) as
// they arrive, read results at any time.
#pragma once

#include <cstdint>
#include <vector>

#include "mdwf/md/frame.hpp"
#include "mdwf/md/lj_engine.hpp"

namespace mdwf::md {

class RadialDistribution {
 public:
  // `box` is the periodic cube edge; r ranges over [0, r_max) in `bins`.
  RadialDistribution(double box, double r_max, std::size_t bins);

  void accumulate(const Frame& frame);

  std::size_t frames_seen() const { return frames_; }
  double bin_width() const { return r_max_ / static_cast<double>(hist_.size()); }
  // Normalized g(r) per bin midpoint; empty if nothing accumulated.
  std::vector<double> g() const;
  // Midpoint radius of bin i.
  double r_of(std::size_t i) const {
    return (static_cast<double>(i) + 0.5) * bin_width();
  }

 private:
  double box_;
  double r_max_;
  std::size_t frames_ = 0;
  std::uint64_t particles_ = 0;
  std::vector<std::uint64_t> hist_;
};

class MeanSquaredDisplacement {
 public:
  explicit MeanSquaredDisplacement(double box) : box_(box) {}

  // First frame becomes the reference; later frames are unwrapped against
  // the previous frame (minimum image) so box wrapping does not reset
  // displacements.
  void accumulate(const Frame& frame);

  std::size_t frames_seen() const { return series_.size(); }
  // MSD value per accumulated frame (series_[0] == 0 for the reference).
  const std::vector<double>& series() const { return series_; }
  // Diffusion-coefficient estimate from the last half of the series via
  // MSD ~ 6 D t (t measured in frame intervals); 0 until enough data.
  double diffusion_estimate() const;

 private:
  double box_;
  std::vector<double> reference_;  // flattened xyz
  std::vector<double> unwrapped_;  // running unwrapped positions
  std::vector<double> previous_;   // last wrapped positions
  std::vector<double> series_;
};

class VelocityAutocorrelation {
 public:
  explicit VelocityAutocorrelation(std::size_t window) : window_(window) {}

  void accumulate(const std::vector<Vec3>& velocities);

  std::size_t frames_seen() const { return snapshots_.size(); }
  // C(t) = <v(0).v(t)> / <v(0).v(0)> for t in [0, window); values beyond
  // the available data are omitted.
  std::vector<double> normalized() const;

 private:
  std::size_t window_;
  std::vector<std::vector<Vec3>> snapshots_;
};

}  // namespace mdwf::md
