#include "mdwf/md/compress.hpp"

#include <cmath>
#include <cstring>

#include "mdwf/common/assert.hpp"
#include "mdwf/common/crc32c.hpp"

namespace mdwf::md {
namespace {

constexpr std::uint32_t kMagic = 0x4D44575A;  // "MDWZ"

void put_raw(std::vector<std::byte>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  out.insert(out.end(), b, b + n);
}

template <typename T>
void put(std::vector<std::byte>& out, T v) {
  put_raw(out, &v, sizeof(v));
}

// Zig-zag maps signed deltas to unsigned for varint encoding.
std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::byte>& buf) : buf_(buf) {}

  template <typename T>
  T get() {
    T v;
    raw(&v, sizeof(v));
    return v;
  }

  void raw(void* p, std::size_t n) {
    if (pos_ + n > buf_.size()) throw FrameError("compressed frame truncated");
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= buf_.size()) throw FrameError("compressed frame truncated");
      const auto b = static_cast<std::uint8_t>(buf_[pos_++]);
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
      if (shift > 63) throw FrameError("varint overflow");
    }
    return v;
  }

  std::size_t pos() const { return pos_; }

 private:
  const std::vector<std::byte>& buf_;
  std::size_t pos_ = 0;
};

std::int64_t quantize(double x, double precision) {
  return static_cast<std::int64_t>(std::llround(x / precision));
}

}  // namespace

CompressionResult compress_frame(const Frame& frame, double precision) {
  MDWF_ASSERT(precision > 0.0);
  if (frame.model.size() > 255) throw FrameError("model name too long");
  std::vector<std::byte> out;
  out.reserve(frame.atoms.size() * 6 + 64);
  put(out, kMagic);
  put(out, precision);
  put(out, static_cast<std::uint64_t>(frame.atoms.size()));
  put(out, frame.index);
  put(out, static_cast<std::uint8_t>(frame.model.size()));
  put_raw(out, frame.model.data(), frame.model.size());

  std::int64_t px = 0, py = 0, pz = 0;
  for (const Atom& a : frame.atoms) {
    const std::int64_t qx = quantize(a.x, precision);
    const std::int64_t qy = quantize(a.y, precision);
    const std::int64_t qz = quantize(a.z, precision);
    put_varint(out, zigzag(qx - px));
    put_varint(out, zigzag(qy - py));
    put_varint(out, zigzag(qz - pz));
    px = qx;
    py = qy;
    pz = qz;
  }
  const std::uint32_t crc = crc32c(out.data(), out.size());
  put(out, crc);

  CompressionResult result;
  result.raw_size = frame.serialized_size();
  result.compressed_size = Bytes(out.size());
  result.data = std::move(out);
  return result;
}

Frame decompress_frame(const std::vector<std::byte>& data) {
  if (data.size() < 8) throw FrameError("compressed frame too small");
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, data.data() + data.size() - 4, 4);
  if (stored_crc != crc32c(data.data(), data.size() - 4)) {
    throw FrameError("compressed frame checksum mismatch");
  }

  Reader r(data);
  if (r.get<std::uint32_t>() != kMagic) {
    throw FrameError("bad compressed frame magic");
  }
  const double precision = r.get<double>();
  if (!(precision > 0.0)) throw FrameError("bad precision");
  const auto count = r.get<std::uint64_t>();
  Frame f;
  f.index = r.get<std::uint64_t>();
  const auto name_len = r.get<std::uint8_t>();
  f.model.resize(name_len);
  r.raw(f.model.data(), name_len);
  if (count > data.size()) {
    throw FrameError("atom count inconsistent with buffer");
  }
  f.atoms.resize(count);
  std::int64_t px = 0, py = 0, pz = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    px += unzigzag(r.varint());
    py += unzigzag(r.varint());
    pz += unzigzag(r.varint());
    f.atoms[i] = Atom{static_cast<std::uint32_t>(i),
                      static_cast<double>(px) * precision,
                      static_cast<double>(py) * precision,
                      static_cast<double>(pz) * precision};
  }
  if (r.pos() + 4 != data.size()) {
    throw FrameError("trailing bytes in compressed frame");
  }
  return f;
}

}  // namespace mdwf::md
