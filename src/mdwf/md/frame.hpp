// MD frame representation and binary wire format.
//
// A frame is the atom list of one output step: atom ids and 3-D positions.
// The serialized layout is:
//
//   [magic u32]["MDWF" fourcc semantics][version u16][reserved u16]
//   [model name: u8 len + bytes][frame index u64][atom count u64]
//   atom records: {id u32, x f64, y f64, z f64} * count
//   [crc32c u32 over everything before the checksum]
//
// 28 bytes per atom record keeps the sizes of the paper's Table I.
// Serialization is bit-exact round-trippable and checksummed; corrupt or
// truncated buffers fail loudly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "mdwf/common/bytes.hpp"

namespace mdwf::md {

struct Atom {
  std::uint32_t id = 0;
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend bool operator==(const Atom&, const Atom&) = default;
};

class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

struct Frame {
  std::string model;
  std::uint64_t index = 0;
  std::vector<Atom> atoms;

  // Serialized size including header and checksum.
  Bytes serialized_size() const;

  std::vector<std::byte> serialize() const;
  static Frame deserialize(const std::vector<std::byte>& buf);

  friend bool operator==(const Frame&, const Frame&) = default;
};

// Deterministic synthetic frame for a model: `atoms` pseudo-random positions
// in a cubic box, seeded by (seed, index).  Used by the workload generators.
Frame synthesize_frame(std::string model, std::uint64_t atom_count,
                       std::uint64_t index, std::uint64_t seed);

}  // namespace mdwf::md
