#include "mdwf/md/models.hpp"

namespace mdwf::md {

std::optional<MolecularModel> find_model(std::string_view name) {
  for (const auto& m : kAllModels) {
    if (m.name == name) return m;
  }
  return std::nullopt;
}

}  // namespace mdwf::md
