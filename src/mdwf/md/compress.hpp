// In-situ data reduction: lossy frame compression.
//
// The paper (Sec. II-B) lists data reduction among the in-situ techniques
// that "streamline data management by storing only crucial information".
// This codec quantizes coordinates to a fixed spatial precision and stores
// per-axis deltas with a variable-length integer encoding; typical MD
// frames compress to ~40-60% of the raw 24 B/atom coordinate payload at
// 1e-3 precision.  Atom ids are implicit (frames are emitted in id order),
// and the result is checksummed like the raw codec.
//
// Layout:
//   [magic u32][precision f64][atom count u64][frame index u64]
//   [model name u8+bytes]
//   per atom: zig-zag varint deltas (dx, dy, dz) of the quantized grid
//   coordinates against the previous atom
//   [crc32c u32]
#pragma once

#include <cstdint>
#include <vector>

#include "mdwf/common/bytes.hpp"
#include "mdwf/md/frame.hpp"

namespace mdwf::md {

struct CompressionResult {
  std::vector<std::byte> data;
  Bytes raw_size;
  Bytes compressed_size;

  double ratio() const {
    return compressed_size.count() > 0
               ? static_cast<double>(raw_size.count()) /
                     static_cast<double>(compressed_size.count())
               : 0.0;
  }
};

// Compresses to the given absolute coordinate precision (> 0).
CompressionResult compress_frame(const Frame& frame, double precision = 1e-3);

// Inverse; coordinates are reconstructed to within `precision` of the
// original.  Throws FrameError on corrupt input.
Frame decompress_frame(const std::vector<std::byte>& data);

}  // namespace mdwf::md
