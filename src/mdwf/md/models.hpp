// Molecular model registry (the paper's Tables I and II).
//
// Four reference systems spanning 23k to 1.07M atoms.  Frame size follows
// the paper's frame layout of 28 bytes per atom (u32 atom id + 3 x f64
// coordinates), which reproduces Table I's sizes exactly (JAC: 644.21 KiB,
// STMV: 28.48 MiB).  Strides are chosen in the paper so every model emits a
// frame at the same wall frequency (~0.82 s).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "mdwf/common/bytes.hpp"
#include "mdwf/common/time.hpp"

namespace mdwf::md {

// Bytes per atom in a serialized frame: u32 id + 3 x f64 position.
inline constexpr std::uint64_t kBytesPerAtom = 28;

struct MolecularModel {
  std::string_view name;
  std::uint64_t atoms;
  // MD throughput on the reference GPU platform (paper Table I, derived
  // from the NAMD benchmark suite).
  double steps_per_second;
  // Output stride (paper Table II): steps between emitted frames.
  std::uint64_t stride;

  // Payload bytes of one frame (Table I "Frame size").
  constexpr Bytes frame_bytes() const { return Bytes(atoms * kBytesPerAtom); }
  // Table II "ms/step".
  double ms_per_step() const { return 1000.0 / steps_per_second; }
  Duration step_time() const { return Duration::seconds(1.0 / steps_per_second); }
  // Table II "Frequency (s)": seconds between frames at the default stride.
  double frame_period_seconds() const {
    return static_cast<double>(stride) / steps_per_second;
  }
  Duration frame_period() const {
    return Duration::seconds(frame_period_seconds());
  }
};

// Table I / II rows.
constexpr MolecularModel kJac{"JAC", 23'558, 1072.92, 880};
constexpr MolecularModel kApoA1{"ApoA1", 92'224, 358.22, 294};
constexpr MolecularModel kF1Atpase{"F1 ATPase", 327'506, 115.74, 92};
constexpr MolecularModel kStmv{"STMV", 1'066'628, 34.14, 28};

constexpr std::array<MolecularModel, 4> kAllModels{kJac, kApoA1, kF1Atpase,
                                                   kStmv};

// Lookup by name ("JAC", "ApoA1", "F1 ATPase", "STMV").
std::optional<MolecularModel> find_model(std::string_view name);

}  // namespace mdwf::md
