// Caliper-style annotation recorder for simulated processes.
//
// Each process (producer, consumer, broker) owns a `Recorder`.  Code brackets
// activities with begin/end — normally via the RAII `ScopedRegion` — and the
// recorder accumulates a call tree of inclusive virtual-time durations.
// Region nesting follows the process's sequential coroutine control flow, so
// a plain stack suffices.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "mdwf/common/time.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/perf/calltree.hpp"
#include "mdwf/sim/simulation.hpp"

namespace mdwf::perf {

class Recorder {
 public:
  Recorder(sim::Simulation& sim, std::string process_name);

  const std::string& process_name() const { return name_; }

  void begin(std::string_view region, Category cat = Category::kOther);
  void end(std::string_view region);

  // Depth of currently open regions (0 at quiescence).
  std::size_t open_regions() const { return stack_.size(); }

  // The live tree (regions still open have their partial time excluded).
  const CallTree& tree() const { return tree_; }
  CallTree snapshot() const { return tree_.clone(); }

  // Mirrors every closed region into `sink` as a timeline span on `track`
  // (mdwf::obs); the aggregated call tree is unaffected.  Span handles are
  // interned lazily, once per distinct region, and cached on the call-tree
  // node — attach the sink before recording begins and do not re-attach.
  void set_trace(obs::TraceSink* sink, obs::TrackId track) {
    trace_ = sink;
    trace_track_ = track;
  }

 private:
  struct Open {
    CallNode* node;
    TimePoint began;
  };

  sim::Simulation* sim_;
  std::string name_;
  CallTree tree_;
  std::vector<Open> stack_;
  obs::TraceSink* trace_ = nullptr;
  obs::TrackId trace_track_{};
};

// RAII region. Safe across co_await points: suspension keeps the coroutine
// frame (and therefore this object) alive, and the elapsed virtual time of
// the suspension is exactly what the region should account.
class ScopedRegion {
 public:
  ScopedRegion(Recorder& rec, std::string_view name,
               Category cat = Category::kOther)
      : rec_(&rec), name_(name) {
    rec_->begin(name_, cat);
  }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;
  ~ScopedRegion() {
    if (rec_ != nullptr) rec_->end(name_);
  }

  // Ends the region early (idempotent).
  void close() {
    if (rec_ != nullptr) {
      rec_->end(name_);
      rec_ = nullptr;
    }
  }

 private:
  Recorder* rec_;
  std::string name_;
};

}  // namespace mdwf::perf
