#include "mdwf/perf/thicket.hpp"

#include <functional>

#include "mdwf/common/assert.hpp"
#include "mdwf/common/format.hpp"

namespace mdwf::perf {

StatNode& StatNode::child(std::string_view n, Category c) {
  for (auto& ch : children) {
    if (ch->name == n) return *ch;
  }
  children.push_back(std::make_unique<StatNode>());
  children.back()->name = std::string(n);
  children.back()->category = c;
  return *children.back();
}

const StatNode* StatNode::find(std::string_view n) const {
  for (const auto& ch : children) {
    if (ch->name == n) return ch.get();
  }
  return nullptr;
}

double StatNode::steady_per_call_us() const {
  const double calls = count.mean();
  if (calls <= 1.0) return inclusive_us.mean();
  return (inclusive_us.mean() - max_single_us.mean()) / (calls - 1.0);
}

StatTree::StatTree() : root_(std::make_unique<StatNode>()) {}

namespace {

std::vector<std::string_view> split_on_slash(std::string_view s) {
  std::vector<std::string_view> out;
  while (!s.empty()) {
    const auto pos = s.find('/');
    if (pos == std::string_view::npos) {
      out.push_back(s);
      break;
    }
    if (pos > 0) out.push_back(s.substr(0, pos));
    s.remove_prefix(pos + 1);
  }
  return out;
}

void accumulate(StatNode& dst, const CallNode& src) {
  if (dst.category == Category::kOther) dst.category = src.category;
  dst.inclusive_us.add(src.inclusive.to_micros());
  dst.count.add(static_cast<double>(src.count));
  dst.max_single_us.add(src.max_single.to_micros());
  for (const auto& sc : src.children) {
    accumulate(dst.child(sc->name, sc->category), *sc);
  }
}

double category_sum_us(const StatNode& node, Category cat) {
  if (node.category == cat) return node.inclusive_us.mean();
  double d = 0.0;
  for (const auto& c : node.children) d += category_sum_us(*c, cat);
  return d;
}

}  // namespace

std::vector<std::string_view> split_query(std::string_view pattern) {
  return split_on_slash(pattern);
}

bool path_matches(std::span<const std::string_view> pattern,
                  std::span<const std::string_view> path) {
  // Classic wildcard matching; '**' may absorb zero or more segments.
  if (pattern.empty()) return path.empty();
  const std::string_view head = pattern.front();
  if (head == "**") {
    // Try absorbing 0..path.size() segments.
    for (std::size_t k = 0; k <= path.size(); ++k) {
      if (path_matches(pattern.subspan(1), path.subspan(k))) return true;
    }
    return false;
  }
  if (path.empty()) return false;
  if (head != "*" && head != path.front()) return false;
  return path_matches(pattern.subspan(1), path.subspan(1));
}

const StatNode* StatTree::find(std::string_view path) const {
  const StatNode* node = root_.get();
  for (const auto seg : split_on_slash(path)) {
    node = node->find(seg);
    if (node == nullptr) return nullptr;
  }
  return node;
}

std::vector<std::pair<std::string, const StatNode*>> StatTree::query(
    std::string_view pattern) const {
  const auto pat = split_on_slash(pattern);
  std::vector<std::pair<std::string, const StatNode*>> out;
  std::vector<std::string_view> path;
  std::function<void(const StatNode&)> walk = [&](const StatNode& n) {
    if (path_matches(pat, path)) {
      std::string joined;
      for (std::size_t i = 0; i < path.size(); ++i) {
        if (i) joined += '/';
        joined += path[i];
      }
      out.emplace_back(std::move(joined), &n);
    }
    for (const auto& c : n.children) {
      path.push_back(c->name);
      walk(*c);
      path.pop_back();
    }
  };
  // The root has an empty path and never matches a non-empty pattern.
  for (const auto& c : root_->children) {
    path.push_back(c->name);
    walk(*c);
    path.pop_back();
  }
  return out;
}

double StatTree::mean_category_us(std::string_view path, Category cat) const {
  const StatNode* node = path.empty() ? root_.get() : find(path);
  if (node == nullptr) return 0.0;
  return category_sum_us(*node, cat);
}

std::string StatTree::render() const {
  std::string out;
  std::function<void(const StatNode&, int)> walk = [&](const StatNode& n,
                                                       int depth) {
    if (depth >= 0) {
      out.append(static_cast<std::size_t>(depth) * 2, ' ');
      out += n.name;
      out += "  [";
      out += to_string(n.category);
      out += "]  ";
      out += format_double(n.inclusive_us.mean(), 1);
      out += " +/- ";
      out += format_double(n.inclusive_us.stddev(), 1);
      out += " us  (n=";
      out += std::to_string(n.inclusive_us.count());
      out += ")\n";
    }
    for (const auto& c : n.children) walk(*c, depth + 1);
  };
  walk(*root_, -1);
  return out;
}

std::string StatTree::to_csv() const {
  std::string out =
      "path,category,mean_count,mean_inclusive_us,std_inclusive_us,"
      "max_single_us,n\n";
  std::vector<std::string> path;
  std::function<void(const StatNode&)> walk = [&](const StatNode& n) {
    std::string joined;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (i) joined += '/';
      joined += path[i];
    }
    out += joined;
    out += ',';
    out += to_string(n.category);
    out += ',';
    out += format_double(n.count.mean(), 2);
    out += ',';
    out += format_double(n.inclusive_us.mean(), 3);
    out += ',';
    out += format_double(n.inclusive_us.stddev(), 3);
    out += ',';
    out += format_double(n.max_single_us.mean(), 3);
    out += ',';
    out += std::to_string(n.inclusive_us.count());
    out += '\n';
    for (const auto& c : n.children) {
      path.push_back(c->name);
      walk(*c);
      path.pop_back();
    }
  };
  for (const auto& c : root_->children) {
    path.push_back(c->name);
    walk(*c);
    path.pop_back();
  }
  return out;
}

void Thicket::add(Metadata meta, CallTree tree) {
  records_.push_back(TreeRecord{std::move(meta), std::move(tree)});
}

Thicket Thicket::filter(std::string_view key, std::string_view value) const {
  Thicket t;
  for (const auto& r : records_) {
    const auto it = r.meta.find(std::string(key));
    if (it != r.meta.end() && it->second == value) {
      t.add(r.meta, r.tree.clone());
    }
  }
  return t;
}

StatTree Thicket::aggregate() const {
  StatTree t;
  for (const auto& r : records_) {
    // The synthetic roots align; accumulate children.
    for (const auto& c : r.tree.root().children) {
      accumulate(t.root().child(c->name, c->category), *c);
    }
  }
  return t;
}

std::vector<std::pair<std::string, const StatNode*>> Thicket::query(
    std::string_view pattern, StatTree& out) const {
  out = aggregate();
  return out.query(pattern);
}

}  // namespace mdwf::perf
