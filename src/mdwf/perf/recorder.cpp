#include "mdwf/perf/recorder.hpp"

#include "mdwf/common/assert.hpp"

namespace mdwf::perf {

Recorder::Recorder(sim::Simulation& sim, std::string process_name)
    : sim_(&sim), name_(std::move(process_name)) {}

void Recorder::begin(std::string_view region, Category cat) {
  CallNode& parent = stack_.empty() ? tree_.root() : *stack_.back().node;
  CallNode& node = parent.child(region, cat);
  if (node.category == Category::kOther && cat != Category::kOther) {
    node.category = cat;
  }
  stack_.push_back(Open{&node, sim_->now()});
}

void Recorder::end(std::string_view region) {
  MDWF_ASSERT_MSG(!stack_.empty(), "Recorder::end with no open region");
  Open open = stack_.back();
  MDWF_ASSERT_MSG(open.node->name == region,
                  "Recorder::end does not match innermost open region");
  stack_.pop_back();
  open.node->count += 1;
  const Duration elapsed = sim_->now() - open.began;
  open.node->inclusive += elapsed;
  if (elapsed > open.node->max_single) open.node->max_single = elapsed;
  if (trace_ != nullptr) {
    CallNode* node = open.node;
    const auto cat = static_cast<std::uint8_t>(node->category);
    if (node->trace_handle == obs::detail::kInvalidHandle ||
        node->trace_handle_cat != cat) {
      node->trace_handle =
          trace_->span_id(trace_track_, node->name, to_string(node->category))
              .v;
      node->trace_handle_cat = cat;
    }
    trace_->span(obs::SpanId{node->trace_handle}, open.began, elapsed);
  }
}

}  // namespace mdwf::perf
