#include "mdwf/perf/recorder.hpp"

#include "mdwf/common/assert.hpp"

namespace mdwf::perf {

Recorder::Recorder(sim::Simulation& sim, std::string process_name)
    : sim_(&sim), name_(std::move(process_name)) {}

void Recorder::begin(std::string_view region, Category cat) {
  CallNode& parent = stack_.empty() ? tree_.root() : *stack_.back().node;
  CallNode& node = parent.child(region, cat);
  if (node.category == Category::kOther && cat != Category::kOther) {
    node.category = cat;
  }
  stack_.push_back(Open{&node, sim_->now()});
}

void Recorder::end(std::string_view region) {
  MDWF_ASSERT_MSG(!stack_.empty(), "Recorder::end with no open region");
  Open open = stack_.back();
  MDWF_ASSERT_MSG(open.node->name == region,
                  "Recorder::end does not match innermost open region");
  stack_.pop_back();
  open.node->count += 1;
  const Duration elapsed = sim_->now() - open.began;
  open.node->inclusive += elapsed;
  if (elapsed > open.node->max_single) open.node->max_single = elapsed;
  if (trace_ != nullptr) {
    trace_->span(trace_track_, open.node->name,
                 to_string(open.node->category), open.began, elapsed);
  }
}

}  // namespace mdwf::perf
