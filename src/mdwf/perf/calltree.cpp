#include "mdwf/perf/calltree.hpp"

#include <functional>

#include "mdwf/common/assert.hpp"
#include "mdwf/common/format.hpp"

namespace mdwf::perf {

std::string_view to_string(Category c) {
  switch (c) {
    case Category::kOther:
      return "other";
    case Category::kCompute:
      return "compute";
    case Category::kMovement:
      return "movement";
    case Category::kIdle:
      return "idle";
  }
  return "?";
}

CallNode& CallNode::child(std::string_view child_name, Category cat) {
  for (auto& c : children) {
    if (c->name == child_name) return *c;
  }
  children.push_back(std::make_unique<CallNode>(std::string(child_name), cat));
  return *children.back();
}

const CallNode* CallNode::find(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

Duration CallNode::exclusive() const {
  Duration d = inclusive;
  for (const auto& c : children) d -= c->inclusive;
  return d;
}

std::unique_ptr<CallNode> CallNode::clone() const {
  auto n = std::make_unique<CallNode>(name, category);
  n->count = count;
  n->inclusive = inclusive;
  n->max_single = max_single;
  n->children.reserve(children.size());
  for (const auto& c : children) n->children.push_back(c->clone());
  return n;
}

CallTree::CallTree() : root_(std::make_unique<CallNode>("", Category::kOther)) {}

namespace {

// Splits "a/b/c" into segments on '/'.
std::vector<std::string_view> split_path(std::string_view path) {
  std::vector<std::string_view> out;
  while (!path.empty()) {
    const auto pos = path.find('/');
    if (pos == std::string_view::npos) {
      out.push_back(path);
      break;
    }
    if (pos > 0) out.push_back(path.substr(0, pos));
    path.remove_prefix(pos + 1);
  }
  return out;
}

void merge_into(CallNode& dst, const CallNode& src) {
  dst.count += src.count;
  dst.inclusive += src.inclusive;
  if (src.max_single > dst.max_single) dst.max_single = src.max_single;
  if (dst.category == Category::kOther) dst.category = src.category;
  for (const auto& sc : src.children) {
    merge_into(dst.child(sc->name, sc->category), *sc);
  }
}

Duration category_sum(const CallNode& node, Category cat) {
  if (node.category == cat) return node.inclusive;
  Duration d = Duration::zero();
  for (const auto& c : node.children) d += category_sum(*c, cat);
  return d;
}

}  // namespace

const CallNode* CallTree::find(std::string_view path) const {
  const CallNode* node = root_.get();
  for (const auto seg : split_path(path)) {
    node = node->find(seg);
    if (node == nullptr) return nullptr;
  }
  return node;
}

void CallTree::merge(const CallTree& other) {
  merge_into(*root_, other.root());
}

Duration CallTree::category_time(std::string_view path, Category cat) const {
  const CallNode* node = path.empty() ? root_.get() : find(path);
  if (node == nullptr) return Duration::zero();
  return category_sum(*node, cat);
}

CallTree CallTree::clone() const {
  CallTree t;
  t.root_ = root_->clone();
  return t;
}

std::string CallTree::render() const {
  std::string out;
  std::function<void(const CallNode&, int)> walk = [&](const CallNode& n,
                                                       int depth) {
    if (depth >= 0) {  // skip the synthetic root
      out.append(static_cast<std::size_t>(depth) * 2, ' ');
      out += n.name;
      out += "  [";
      out += to_string(n.category);
      out += "]  count=";
      out += std::to_string(n.count);
      out += "  incl=";
      out += format_duration(n.inclusive);
      out += "  excl=";
      out += format_duration(n.exclusive());
      out += '\n';
    }
    for (const auto& c : n.children) walk(*c, depth + 1);
  };
  walk(*root_, -1);
  return out;
}

}  // namespace mdwf::perf
