// Hierarchical performance data (Caliper/Thicket-style call trees).
//
// A `CallTree` is the per-process record of annotated regions: each node
// carries the region name, a cost category (the paper decomposes every bar
// into *data movement* and *idle* time), a call count, and total inclusive
// virtual time.  Trees from many processes/runs are merged or aggregated by
// the Thicket layer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mdwf/common/time.hpp"

namespace mdwf::perf {

// Cost category of a region, mirroring the paper's measurement methodology:
// movement = time in data read/write paths; idle = time in synchronization
// (MPI_Barrier for XFS/Lustre, KVS wait/flock for DYAD); compute = emulated
// MD/analytics work; other = uncategorized bookkeeping.
enum class Category : std::uint8_t { kOther = 0, kCompute, kMovement, kIdle };

std::string_view to_string(Category c);

struct CallNode {
  std::string name;
  Category category = Category::kOther;
  std::uint64_t count = 0;
  Duration inclusive = Duration::zero();
  // Longest single invocation (separates cold-start outliers, e.g. the
  // first-frame KVS wait, from steady-state cost).
  Duration max_single = Duration::zero();
  // Recorder-managed cache of the interned obs span handle for this region,
  // kept as opaque ints so the tree does not depend on mdwf::obs.  The
  // category rides along so a later category upgrade re-interns.
  std::uint32_t trace_handle = 0xffffffffu;
  std::uint8_t trace_handle_cat = 0xffu;
  std::vector<std::unique_ptr<CallNode>> children;

  CallNode() = default;
  CallNode(std::string n, Category c) : name(std::move(n)), category(c) {}

  // Child lookup by name; creates on demand (stable first-seen order).
  CallNode& child(std::string_view name, Category cat);
  const CallNode* find(std::string_view name) const;

  // Inclusive time minus the inclusive time of all children.
  Duration exclusive() const;

  std::unique_ptr<CallNode> clone() const;
};

class CallTree {
 public:
  CallTree();

  CallNode& root() { return *root_; }
  const CallNode& root() const { return *root_; }

  // Follows a '/'-separated path from the root; nullptr when absent.
  const CallNode* find(std::string_view path) const;

  // Accumulates `other` into this tree node-by-node (matched by path).
  void merge(const CallTree& other);

  // Sum of `inclusive` over every node in the subtree at `path` whose
  // category matches `cat` and whose ancestors within the subtree do not
  // already match (avoids double counting nested same-category regions).
  Duration category_time(std::string_view path, Category cat) const;

  CallTree clone() const;

  // Indented rendering in first-seen order, one node per line:
  //   name  [category]  count=N  inclusive  exclusive
  std::string render() const;

 private:
  std::unique_ptr<CallNode> root_;
};

}  // namespace mdwf::perf
