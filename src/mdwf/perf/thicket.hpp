// Thicket-style multi-run performance analysis.
//
// A `Thicket` holds call trees from many (process, repetition, configuration)
// tuples, each tagged with string metadata.  It supports metadata filtering,
// cross-tree statistical aggregation (mean/std/min/max per call-tree node),
// and a Hatchet-style path query language:
//
//   "dyad_consume/dyad_fetch"   exact path from the root
//   "*"                          matches exactly one segment
//   "**"                         matches any number of segments (incl. zero)
//   "**/read_single_buf"        the node anywhere in the tree
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mdwf/common/stats.hpp"
#include "mdwf/perf/calltree.hpp"

namespace mdwf::perf {

using Metadata = std::map<std::string, std::string>;

struct TreeRecord {
  Metadata meta;
  CallTree tree;
};

// Statistical call tree: node-wise stats across a set of call trees.
struct StatNode {
  std::string name;
  Category category = Category::kOther;
  // Statistics over per-tree inclusive microseconds and call counts.
  RunningStats inclusive_us;
  RunningStats count;
  // Per-tree longest single invocation (cold-start outlier detection).
  RunningStats max_single_us;

  // Mean steady-state per-call microseconds: total time minus the single
  // largest call, divided by the remaining calls.
  double steady_per_call_us() const;
  std::vector<std::unique_ptr<StatNode>> children;

  StatNode& child(std::string_view n, Category c);
  const StatNode* find(std::string_view n) const;
};

class StatTree {
 public:
  StatTree();

  StatNode& root() { return *root_; }
  const StatNode* find(std::string_view path) const;

  // Matching nodes for a query pattern, as (path, node) pairs in first-seen
  // order.
  std::vector<std::pair<std::string, const StatNode*>> query(
      std::string_view pattern) const;

  // Mean of the summed inclusive time (microseconds) of subtree nodes with
  // the given category, starting at `path` ("" = whole tree).
  double mean_category_us(std::string_view path, Category cat) const;

  // Rendering in the style of the paper's Thicket figures: indented tree
  // with mean +/- std.
  std::string render() const;

  // Machine-readable export, one row per node:
  //   path,category,mean_count,mean_inclusive_us,std_inclusive_us,
  //   max_single_us,n
  std::string to_csv() const;

 private:
  std::unique_ptr<StatNode> root_;
};

class Thicket {
 public:
  void add(Metadata meta, CallTree tree);
  std::size_t size() const { return records_.size(); }
  const std::vector<TreeRecord>& records() const { return records_; }

  // Moves every record of `other` onto the end of this thicket (record
  // order preserved; `other` is left empty).  Lets per-repetition thickets
  // computed independently be folded in canonical order.
  void append(Thicket&& other) {
    for (auto& r : other.records_) records_.push_back(std::move(r));
    other.records_.clear();
  }

  // Records whose metadata contains key == value.
  Thicket filter(std::string_view key, std::string_view value) const;

  // Node-wise statistics across every record in this thicket.
  StatTree aggregate() const;

  // Query over every record's tree: matching nodes pooled into stats keyed
  // by path (equivalent to aggregate() then StatTree::query, provided for
  // convenience).
  std::vector<std::pair<std::string, const StatNode*>> query(
      std::string_view pattern, StatTree& out) const;

 private:
  std::vector<TreeRecord> records_;
};

// Path-pattern matching shared by CallTree/StatTree queries.
bool path_matches(std::span<const std::string_view> pattern,
                  std::span<const std::string_view> path);
std::vector<std::string_view> split_query(std::string_view pattern);

}  // namespace mdwf::perf
