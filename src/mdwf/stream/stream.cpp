#include "mdwf/stream/stream.hpp"

#include <charconv>

#include "mdwf/common/assert.hpp"

namespace mdwf::stream {

namespace {

Duration copy_time(Bytes size, double bps) {
  return Duration::seconds(static_cast<double>(size.count()) / bps);
}

std::optional<net::NodeId> parse_node(const std::string& s) {
  std::uint32_t value = 0;
  const auto r = std::from_chars(s.data(), s.data() + s.size(), value);
  if (r.ec != std::errc{} || r.ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return net::NodeId{value};
}

}  // namespace

std::string sub_key(const std::string& prefix) {
  return "stream.sub/" + prefix;
}

std::string pub_key(const std::string& prefix) {
  return "stream.pub/" + prefix;
}

std::string path_prefix(const std::string& path) {
  const auto slash = path.find('/');
  return slash == std::string::npos ? path : path.substr(0, slash + 1);
}

void StreamDomain::add(StreamNode& node) {
  const auto [it, inserted] = nodes_.emplace(node.node().value, &node);
  MDWF_ASSERT_MSG(inserted, "duplicate stream node registration");
  (void)it;
}

StreamNode& StreamDomain::at(net::NodeId node) const {
  const auto it = nodes_.find(node.value);
  MDWF_ASSERT_MSG(it != nodes_.end(), "unknown stream node");
  return *it->second;
}

void StreamDomain::subscribe(std::string prefix, net::NodeId node) {
  subscriptions_.insert_or_assign(std::move(prefix), node);
}

void StreamDomain::invalidate_node(net::NodeId node) {
  for (auto it = subscriptions_.begin(); it != subscriptions_.end();) {
    if (it->second == node) {
      it = subscriptions_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<net::NodeId> StreamDomain::subscriber_for(
    const std::string& path) const {
  // Longest matching prefix wins; one entry per consumer rank keeps the
  // table small enough for a linear scan.
  std::optional<net::NodeId> best;
  std::size_t best_len = 0;
  for (const auto& [prefix, node] : subscriptions_) {
    if (path.compare(0, prefix.size(), prefix) == 0 &&
        prefix.size() >= best_len) {
      best = node;
      best_len = prefix.size();
    }
  }
  return best;
}

StreamNode::StreamNode(sim::Simulation& sim, const StreamParams& params,
                       StreamDomain& domain, net::NodeId node,
                       net::Network& network, kvs::KvsServer& kvs_server,
                       fs::LustreServers& lustre)
    : sim_(&sim),
      params_(params),
      domain_(&domain),
      node_(node),
      network_(&network),
      kvs_(sim, kvs_server, node),
      spill_client_(std::make_unique<fs::LustreClient>(sim, lustre, node)) {
  domain.add(*this);
}

void StreamNode::set_trace(obs::TraceSink* sink, obs::TrackId track) {
  trace_ = sink;
  trace_puts_id_ = sink->counter_id(track, "stream.puts");
  trace_hits_id_ = sink->counter_id(track, "stream.hits");
  trace_spills_id_ = sink->counter_id(track, "stream.spills");
  trace_spill_reads_id_ = sink->counter_id(track, "stream.spill_reads");
  trace_replays_id_ = sink->counter_id(track, "stream.replays");
  trace_crash_drops_id_ = sink->counter_id(track, "stream.crash_drops");
  trace_staged_bytes_id_ = sink->counter_id(track, "stream.staged_bytes");
}

std::string StreamNode::stage_location(std::uint32_t node) {
  return "stream" + std::to_string(node);
}

std::string StreamNode::spill_path(const std::string& path) const {
  return params_.spill_prefix + path;
}

void StreamNode::trace_total(obs::CounterId id, std::uint64_t value) {
  if (trace_ == nullptr) return;
  trace_->counter(id, sim_->now(), static_cast<std::int64_t>(value));
}

void StreamNode::trace_gauge() {
  if (trace_ == nullptr) return;
  trace_->counter(trace_staged_bytes_id_, sim_->now(),
                  static_cast<std::int64_t>(staged_bytes_.count()));
}

void StreamNode::count_put() {
  ++puts_;
  trace_total(trace_puts_id_, puts_);
}

void StreamNode::count_spill() {
  ++spills_;
  trace_total(trace_spills_id_, spills_);
}

void StreamNode::count_spill_read() {
  ++spill_reads_;
  trace_total(trace_spill_reads_id_, spill_reads_);
}

// --- Events and bounded waits ---------------------------------------------

StreamNode::CreditState& StreamNode::credit_state(const std::string& prefix) {
  const auto it = credits_.find(prefix);
  if (it != credits_.end()) return it->second;
  CreditState fresh;
  fresh.available = effective_credits();
  return credits_.emplace(prefix, std::move(fresh)).first->second;
}

std::int64_t StreamNode::effective_credits() const {
  const auto scaled = static_cast<std::int64_t>(
      static_cast<double>(params_.credits) * credit_scale_);
  return scaled < 1 ? 1 : scaled;
}

void StreamNode::set_credit_scale(double scale) {
  credit_scale_ = scale < 0.0 ? 0.0 : (scale > 1.0 ? 1.0 : scale);
  // Unspent credits above the shrunken window vanish now; credits attached
  // to in-flight frames are absorbed by the grant cap as they return.
  const std::int64_t cap = effective_credits();
  for (auto& [prefix, cs] : credits_) {
    if (cs.available > cap) cs.available = cap;
  }
}

std::shared_ptr<sim::Event> StreamNode::credit_event(
    const std::string& prefix) {
  CreditState& cs = credit_state(prefix);
  if (cs.changed == nullptr || cs.changed->triggered()) {
    cs.changed = std::make_shared<sim::Event>(*sim_);
  }
  return cs.changed;
}

std::shared_ptr<sim::Event> StreamNode::space_event() {
  if (space_changed_ == nullptr || space_changed_->triggered()) {
    space_changed_ = std::make_shared<sim::Event>(*sim_);
  }
  return space_changed_;
}

std::shared_ptr<sim::Event> StreamNode::arrival_event(
    const std::string& path) {
  auto& slot = arrivals_[path];
  if (slot == nullptr || slot->triggered()) {
    slot = std::make_shared<sim::Event>(*sim_);
  }
  return slot;
}

sim::Task<void> StreamNode::timed_wait(std::shared_ptr<sim::Event> ev,
                                       Duration timeout) {
  // The timer holds its own reference: the owning slot may be replaced
  // (or the whole map cleared by a power loss) while we are suspended.
  const sim::TimerId timer = sim_->call_after(timeout, [ev] {
    if (!ev->triggered()) ev->trigger();
  });
  co_await ev->wait();
  sim_->cancel(timer);
}

// --- Producer side ---------------------------------------------------------

void StreamNode::ensure_pub_announced(const std::string& prefix) {
  if (!announced_pubs_.insert(prefix).second) return;
  sim_->spawn(announce(pub_key(prefix), std::to_string(node_.value)),
              "stream.announce_pub");
}

void StreamNode::ensure_subscribed(const std::string& prefix) {
  if (!announced_subs_.insert(prefix).second) return;
  domain_->subscribe(prefix, node_);
  sim_->spawn(announce(sub_key(prefix), std::to_string(node_.value)),
              "stream.announce_sub");
}

sim::Task<void> StreamNode::announce(std::string key, std::string value) {
  // Off the critical path: ranks never block on the handshake commit.
  // ServerBusy derives from NetError, so one catch covers sheds, torn
  // links, and broker outages alike.
  Duration backoff = Duration::milliseconds(5);
  for (std::uint32_t attempt = 0; attempt < 16; ++attempt) {
    try {
      co_await kvs_.commit(key, value);
      co_return;
    } catch (const net::NetError&) {
    } catch (const StaleEpochError&) {
      // This daemon's node was declared lost: the broker fenced the
      // handshake commit.  The migrated rank re-announces from its new
      // home; retrying here would only be rejected again.
      co_return;
    }
    co_await sim_->delay(backoff);
    backoff = std::min(backoff * 2, Duration::milliseconds(40));
  }
}

sim::Task<std::optional<net::NodeId>> StreamNode::resolve_subscriber(
    const std::string& prefix) {
  if (const auto sub = domain_->subscriber_for(prefix); sub.has_value()) {
    co_return sub;
  }
  // Cold start: wait briefly for the subscriber's KVS announcement, then
  // cache the route in the domain so later puts skip the broker.
  try {
    if (co_await kvs_.watch_for(sub_key(prefix), params_.handshake_timeout)) {
      const auto v = co_await kvs_.lookup(sub_key(prefix));
      if (v.has_value()) {
        if (const auto sub = parse_node(v->data); sub.has_value()) {
          domain_->subscribe(prefix, *sub);
          co_return sub;
        }
      }
    }
  } catch (const net::NetError&) {
  }
  co_return std::nullopt;
}

sim::Task<std::optional<net::NodeId>> StreamNode::resolve_publisher(
    const std::string& prefix) {
  if (const auto it = pub_routes_.find(prefix); it != pub_routes_.end()) {
    co_return it->second;
  }
  try {
    const auto v = co_await kvs_.lookup(pub_key(prefix));
    if (v.has_value()) {
      if (const auto pub = parse_node(v->data); pub.has_value()) {
        pub_routes_.emplace(prefix, *pub);
        co_return pub;
      }
    }
  } catch (const net::NetError&) {
  }
  co_return std::nullopt;
}

sim::Task<bool> StreamNode::acquire_credit(const std::string& prefix) {
  if (credit_state(prefix).available > 0) {
    --credit_state(prefix).available;
    co_return true;
  }
  ++credit_waits_;
  const TimePoint deadline = sim_->now() + params_.backpressure_timeout;
  while (sim_->now() < deadline) {
    co_await timed_wait(credit_event(prefix), deadline - sim_->now());
    if (credit_state(prefix).available > 0) {
      --credit_state(prefix).available;
      co_return true;
    }
  }
  ++backpressure_stalls_;
  co_return false;
}

void StreamNode::grant_credit(const std::string& prefix) {
  CreditState& cs = credit_state(prefix);
  if (cs.available < effective_credits()) {
    ++cs.available;
  }
  if (cs.changed != nullptr && !cs.changed->triggered()) {
    cs.changed->trigger();
  }
  cs.changed = nullptr;
}

sim::Task<void> StreamNode::move_bytes(net::NodeId dest, Bytes size) {
  if (dest == node_) {
    // Same-node subscriber: a staging-memory copy, no fabric involved.
    co_await sim_->delay(copy_time(size, params_.buffer_bps));
  } else {
    co_await network_->rdma_put(node_, dest, size);
  }
}

void StreamNode::record_delivery(net::NodeId dest, const std::string& path) {
  if (ledger_ == nullptr) return;
  const bool bad =
      dest != node_ && ledger_->flip_link(node_.value, dest.value);
  const std::string loc = stage_location(dest.value);
  if (bad) {
    ledger_->store_corrupt(path, loc);
  } else {
    // A clean re-delivery also repairs a previously corrupt staged copy.
    ledger_->drop(path, loc);
  }
}

sim::Task<bool> StreamNode::deliver(net::NodeId dest, const std::string& path,
                                    Bytes size) {
  co_await move_bytes(dest, size);
  // Incarnation fence: the receiving daemon checks the sender's membership
  // epoch before accepting the frame.  Checked only after the payload
  // crossed the fabric — a zombie behind a one-way partition cannot learn
  // of its own declare until traffic flows again.
  if (fences_ != nullptr && fences_->stale(FenceToken{node_.value, 0})) {
    fences_->reject(FenceToken{node_.value, 0}, "stream direct put");
  }
  StreamNode& peer = domain_->at(dest);
  if (!peer.receive(path, size, node_)) co_return false;
  record_delivery(dest, path);
  co_return true;
}

sim::Task<void> StreamNode::spill_write(const std::string& path, Bytes size) {
  const std::string sp = spill_path(path);
  if (co_await spill_client_->exists(sp)) {
    // Torn leftovers of a crashed attempt, or a re-executed frame after a
    // rollback: replace the replica.
    co_await spill_client_->unlink(sp);
  }
  const fs::LustreHandle h = co_await spill_client_->create(sp);
  co_await spill_client_->write(h, Bytes::zero(), size);
  co_await spill_client_->close(h, /*wrote=*/true);
  if (ledger_ != nullptr) ledger_->store_lustre(sp, node_.value);
}

sim::Task<bool> StreamNode::respill(const std::string& path, Bytes size) {
  if (published_.find(path) == published_.end()) co_return false;
  co_await spill_write(path, size);
  co_return true;
}

sim::Task<bool> StreamNode::replay_to(net::NodeId requester,
                                      const std::string& path, Bytes size) {
  if (published_.find(path) == published_.end()) co_return false;
  co_await sim_->delay(params_.put_cpu);
  StreamNode& peer = domain_->at(requester);
  if (peer.staged(path)) {
    // Restage in place: same reservation, fresh payload (and a fresh
    // in-flight corruption draw).
    co_await move_bytes(requester, size);
    record_delivery(requester, path);
  } else if (peer.try_reserve(size)) {
    bool accepted = false;
    try {
      co_await move_bytes(requester, size);
      accepted = peer.receive(path, size, node_);
    } catch (...) {
      peer.unreserve(size);
      throw;
    }
    if (accepted) {
      record_delivery(requester, path);
    } else {
      peer.unreserve(size);
    }
  } else {
    // The subscriber's buffer is full: refresh the spill replica instead
    // and let its spill probe find the frame.
    co_await spill_write(path, size);
  }
  ++replays_;
  trace_total(trace_replays_id_, replays_);
  co_return true;
}

void StreamNode::note_published(const std::string& path, Bytes size) {
  published_.insert_or_assign(path, size);
}

void StreamNode::forget_routes_to(net::NodeId lost) {
  for (auto it = pub_routes_.begin(); it != pub_routes_.end();) {
    if (it->second == lost) {
      it = pub_routes_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- Consumer-side staging buffer ------------------------------------------

bool StreamNode::try_reserve(Bytes size) {
  if (staged_bytes_ + size > params_.buffer_capacity) return false;
  staged_bytes_ += size;
  trace_gauge();
  return true;
}

sim::Task<bool> StreamNode::reserve(Bytes size) {
  if (try_reserve(size)) co_return true;
  const TimePoint deadline = sim_->now() + params_.backpressure_timeout;
  while (sim_->now() < deadline) {
    co_await timed_wait(space_event(), deadline - sim_->now());
    if (try_reserve(size)) co_return true;
  }
  co_return false;
}

void StreamNode::unreserve(Bytes size) {
  MDWF_ASSERT_MSG(size <= staged_bytes_, "stream buffer accounting underflow");
  staged_bytes_ -= size;
  trace_gauge();
  if (space_changed_ != nullptr && !space_changed_->triggered()) {
    space_changed_->trigger();
  }
  space_changed_ = nullptr;
}

bool StreamNode::receive(const std::string& path, Bytes size,
                         net::NodeId origin) {
  if (consumed_.count(path) != 0 || staged_.count(path) != 0) {
    ++dup_drops_;
    return false;
  }
  staged_.emplace(path, StagedFrame{size, origin});
  const auto it = arrivals_.find(path);
  if (it != arrivals_.end()) {
    const std::shared_ptr<sim::Event> ev = std::move(it->second);
    arrivals_.erase(it);
    if (ev != nullptr && !ev->triggered()) ev->trigger();
  }
  return true;
}

std::optional<net::NodeId> StreamNode::staged_origin(
    const std::string& path) const {
  const auto it = staged_.find(path);
  if (it == staged_.end()) return std::nullopt;
  return it->second.origin;
}

void StreamNode::redeclare_interest(const std::string& path) {
  consumed_.erase(path);
}

sim::Task<void> StreamNode::wait_arrival(const std::string& path,
                                         Duration timeout) {
  if (staged_.count(path) != 0) co_return;
  co_await timed_wait(arrival_event(path), timeout);
}

sim::Task<void> StreamNode::return_credit(net::NodeId origin,
                                          std::string prefix) {
  try {
    if (origin != node_) {
      co_await network_->send_control(node_, origin);
    }
    domain_->at(origin).grant_credit(prefix);
  } catch (const net::NetError&) {
    // The credit is lost with the link; the producer degrades to the
    // spill path once the window drains, it does not deadlock.
  }
}

void StreamNode::consume(const std::string& path) {
  const auto it = staged_.find(path);
  MDWF_ASSERT_MSG(it != staged_.end(), "consuming a frame that is not staged");
  const StagedFrame frame = it->second;
  staged_.erase(it);
  consumed_.insert(path);
  unreserve(frame.size);
  ++hits_;
  trace_total(trace_hits_id_, hits_);
  sim_->spawn(return_credit(frame.origin, path_prefix(path)),
              "stream.credit_return");
}

void StreamNode::mark_consumed(const std::string& path) {
  const auto it = staged_.find(path);
  if (it != staged_.end()) {
    // A direct delivery landed while the spill read was in flight; free
    // it (and its credit) without counting a staged hit.
    const StagedFrame frame = it->second;
    staged_.erase(it);
    unreserve(frame.size);
    sim_->spawn(return_credit(frame.origin, path_prefix(path)),
                "stream.credit_return");
  }
  consumed_.insert(path);
}

// --- Fault hook -------------------------------------------------------------

void StreamNode::on_power_loss() {
  crash_drops_ += staged_.size();
  staged_.clear();
  staged_bytes_ = Bytes::zero();
  consumed_.clear();
  // Waiters hold their own event references and wake on their timers.
  arrivals_.clear();
  published_.clear();
  credits_.clear();
  announced_pubs_.clear();
  announced_subs_.clear();
  pub_routes_.clear();
  if (space_changed_ != nullptr && !space_changed_->triggered()) {
    space_changed_->trigger();
  }
  space_changed_ = nullptr;
  trace_gauge();
  trace_total(trace_crash_drops_id_, crash_drops_);
}

// --- StreamPublisher --------------------------------------------------------

StreamPublisher::StreamPublisher(StreamNode& node, perf::Recorder& recorder)
    : node_(&node), rec_(&recorder) {}

sim::Task<void> StreamPublisher::publish(const std::string& path,
                                         Bytes size) {
  StreamNode& n = *node_;
  auto& sim = n.simulation();
  const StreamParams& p = n.params();
  const std::string prefix = path_prefix(path);
  perf::ScopedRegion produce(*rec_, "stream_produce");
  n.ensure_pub_announced(prefix);
  {
    perf::ScopedRegion put(*rec_, "stream_put", perf::Category::kMovement);
    co_await sim.delay(p.put_cpu);
    if (auto* ledger = n.integrity()) {
      co_await ledger->charge(size);  // producer-side CRC32C tagging
    }
  }
  if (p.durable) {
    // Commit barrier: a power-loss-safe replica exists before any
    // consumer can observe the frame, so a crash can drop staged copies
    // but never the only copy.
    perf::ScopedRegion spill(*rec_, "stream_spill_write",
                             perf::Category::kMovement);
    co_await n.spill_write(path, size);
  }
  bool delivered = false;
  std::optional<net::NodeId> dest;
  {
    perf::ScopedRegion resolve(*rec_, "stream_resolve",
                               perf::Category::kIdle);
    dest = co_await n.resolve_subscriber(prefix);
  }
  if (dest.has_value()) {
    bool have_credit = false;
    bool reserved = false;
    {
      perf::ScopedRegion bp(*rec_, "stream_backpressure",
                            perf::Category::kIdle);
      have_credit = co_await n.acquire_credit(prefix);
      if (have_credit) {
        reserved = co_await n.domain().at(*dest).reserve(size);
        if (!reserved) n.count_backpressure_stall();
      }
    }
    if (have_credit && reserved) {
      std::exception_ptr torn;
      std::exception_ptr fenced;
      try {
        perf::ScopedRegion put(*rec_, "stream_put",
                               perf::Category::kMovement);
        delivered = co_await n.deliver(*dest, path, size);
      } catch (const net::NetError&) {
        torn = std::current_exception();
      } catch (const StaleEpochError&) {
        fenced = std::current_exception();
      }
      if (fenced != nullptr) {
        // The receiving daemon fenced this zombie's put.  Release the
        // peer reservation and the credit, then surface the rejection —
        // unlike a torn fabric this is permanent, so the rank-level
        // recovery (not the spill path) owns what happens next.
        n.domain().at(*dest).unreserve(size);
        n.refund_credit(prefix);
        std::rethrow_exception(fenced);
      }
      if (torn != nullptr) {
        // Torn mid-put (crashed endpoint, partition): fall through to the
        // spill so the consumer still finds the frame.
        n.domain().at(*dest).unreserve(size);
        n.refund_credit(prefix);
      } else if (!delivered) {
        // Duplicate (crash rollback re-executed the frame): nothing left
        // to move.
        n.domain().at(*dest).unreserve(size);
        n.refund_credit(prefix);
        delivered = true;
      }
    } else if (have_credit) {
      n.refund_credit(prefix);
    }
  }
  if (!delivered && !p.durable) {
    perf::ScopedRegion spill(*rec_, "stream_spill_write",
                             perf::Category::kMovement);
    co_await n.spill_write(path, size);
  }
  if (!delivered) n.count_spill();
  n.note_published(path, size);
  n.count_put();
}

// --- StreamSubscriber -------------------------------------------------------

StreamSubscriber::StreamSubscriber(StreamNode& node, perf::Recorder& recorder)
    : node_(&node), rec_(&recorder) {}

sim::Task<void> StreamSubscriber::request_replay(const std::string& path,
                                                 Bytes size) {
  StreamNode& n = *node_;
  perf::ScopedRegion replay(*rec_, "stream_replay",
                            perf::Category::kMovement);
  std::optional<net::NodeId> pub;
  try {
    pub = co_await n.resolve_publisher(path_prefix(path));
    if (!pub.has_value()) co_return;
    if (*pub != n.node()) {
      co_await n.network().send_control(n.node(), *pub);
    }
    co_await n.domain().at(*pub).replay_to(n.node(), path, size);
  } catch (const net::NetError&) {
    // Producer node down or redelivery torn; the next wait round retries
    // and the spill probe covers durable frames.
  } catch (const StaleEpochError&) {
    // The cached publisher is a fenced zombie: drop the route so the next
    // round resolves the migrated producer instead.
    if (pub.has_value()) n.forget_routes_to(*pub);
  }
}

sim::Task<bool> StreamSubscriber::try_spill_read(const std::string& path,
                                                 Bytes size) {
  StreamNode& n = *node_;
  const std::string sp = n.spill_path(path);
  const auto replica = co_await n.spill().stat(sp);
  // stat(), not exists(): a crash can leave a torn replica whose committed
  // size is short of the frame — readable only once a re-spill lands.
  if (!replica.has_value() || *replica < size) co_return false;
  perf::ScopedRegion read(*rec_, "stream_spill_read",
                          perf::Category::kMovement);
  auto& lc = n.spill();
  const fs::LustreHandle h = co_await lc.open(sp);
  co_await lc.read(h, Bytes::zero(), size);
  co_await lc.close(h, /*wrote=*/false);
  if (auto* ledger = n.integrity()) {
    const std::string lustre_loc{integrity::Ledger::kLustreLocation};
    co_await ledger->charge(size);
    bool bad = ledger->corrupt(sp, lustre_loc) ||
               ledger->flip_lustre_read(n.node().value);
    ledger->count_verify(!bad);
    for (std::uint32_t round = 0; bad && round < 3; ++round) {
      ledger->count_refetch();
      try {
        if (ledger->corrupt(sp, lustre_loc)) {
          // The replica itself is bad: the producer re-stripes it from
          // its replay ring before we pull again.
          const auto pub = co_await n.resolve_publisher(path_prefix(path));
          if (!pub.has_value()) break;
          if (*pub != n.node()) {
            co_await n.network().send_control(n.node(), *pub);
          }
          if (!co_await n.domain().at(*pub).respill(path, size)) break;
        }
        const fs::LustreHandle rh = co_await lc.open(sp);
        co_await lc.read(rh, Bytes::zero(), size);
        co_await lc.close(rh, /*wrote=*/false);
        co_await ledger->charge(size);
        bad = ledger->corrupt(sp, lustre_loc) ||
              ledger->flip_lustre_read(n.node().value);
      } catch (const net::NetError&) {
        // Repair round hit a fault window; the next round retries.
      } catch (const StaleEpochError&) {
        // The re-striping producer is a fenced zombie; its migrated
        // incarnation re-spills on its own.
      }
      ledger->count_verify(!bad);
    }
    if (bad) ledger->count_unrecovered();
  }
  n.mark_consumed(path);
  n.count_spill_read();
  co_return true;
}

sim::Task<void> StreamSubscriber::read_staged(const std::string& path,
                                              Bytes size) {
  StreamNode& n = *node_;
  auto& sim = n.simulation();
  perf::ScopedRegion read(*rec_, "stream_read", perf::Category::kMovement);
  co_await sim.delay(n.params().match_cpu);
  co_await sim.delay(copy_time(size, n.params().buffer_bps));
  if (auto* ledger = n.integrity()) {
    const std::string loc = StreamNode::stage_location(n.node().value);
    co_await ledger->charge(size);  // consumer-side CRC32C verify
    bool bad = ledger->corrupt(path, loc);
    ledger->count_verify(!bad);
    for (std::uint32_t round = 0; bad && round < 3; ++round) {
      ledger->count_refetch();
      bool redelivered = false;
      try {
        const auto origin = n.staged_origin(path);
        if (origin.has_value()) {
          if (*origin != n.node()) {
            co_await n.network().send_control(n.node(), *origin);
          }
          redelivered =
              co_await n.domain().at(*origin).replay_to(n.node(), path, size);
        }
      } catch (const net::NetError&) {
        // Replay torn; try the spill below, else the next round retries.
      } catch (const StaleEpochError&) {
        // Origin is a fenced zombie; fall through to the spill replica.
      }
      if (redelivered) {
        co_await sim.delay(copy_time(size, n.params().buffer_bps));
        co_await ledger->charge(size);
        bad = ledger->corrupt(path, loc);
      } else {
        // Origin lost its replay ring (power loss): the spill replica is
        // the remaining clean source.
        bool from_spill = false;
        try {
          from_spill = co_await try_spill_read(path, size);
        } catch (const net::NetError&) {
        }
        if (from_spill) co_return;  // mark_consumed freed the staged copy
      }
      ledger->count_verify(!bad);
    }
    if (bad) ledger->count_unrecovered();
  }
  n.consume(path);
}

sim::Task<void> StreamSubscriber::fetch(const std::string& path, Bytes size) {
  StreamNode& n = *node_;
  auto& sim = n.simulation();
  const StreamParams& p = n.params();
  perf::ScopedRegion fetch(*rec_, "stream_fetch");
  n.ensure_subscribed(path_prefix(path));
  n.redeclare_interest(path);
  const TimePoint start = sim.now();
  bool waited = false;
  bool hedge_pending = p.health.enabled && p.health.hedge.enabled;
  std::uint32_t rounds = 0;
  for (;;) {
    if (n.staged(path)) {
      co_await read_staged(path, size);
      break;
    }
    Duration wait = p.arrival_timeout;
    bool is_hedge = false;
    if (hedge_pending) {
      // Hedge the stalled subscription against the spill path: probe the
      // replica after the adaptive delay instead of waiting out the full
      // arrival timeout.
      const Duration hd = n.fetch_latency().hedge_delay(p.health.hedge);
      if (hd < wait) {
        wait = hd;
        is_hedge = true;
      }
    }
    {
      perf::ScopedRegion idle(*rec_, "stream_wait", perf::Category::kIdle);
      co_await n.wait_arrival(path, wait);
    }
    waited = true;
    if (n.staged(path)) continue;  // the arrival won the race
    if (is_hedge) {
      hedge_pending = false;
      n.count_hedge();
    }
    bool done = false;
    try {
      done = co_await try_spill_read(path, size);
    } catch (const net::NetError&) {
    }
    if (done) {
      if (is_hedge) n.count_hedge_win();
      break;
    }
    if (!is_hedge) {
      if (++rounds >= p.max_fetch_rounds) {
        // Producer gone and no spill replica after a full budget of wait
        // rounds: surface the starvation to the rank-level retry loop
        // instead of spinning the event queue forever.
        throw net::NetError("stream: subscription to '" + path +
                            "' starved");
      }
      // A full timeout with neither a staged copy nor a spill replica:
      // ask the producer to re-deliver from its replay ring (covers kill
      // rollbacks re-reading frames whose staged copy was already freed).
      co_await request_replay(path, size);
    }
  }
  if (waited && p.health.enabled) {
    n.fetch_latency().observe(sim.now() - start);
  }
}

}  // namespace mdwf::stream
