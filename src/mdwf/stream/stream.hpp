// mdwf::stream — a publish/subscribe staging data plane (solution #4).
//
// The paper's three solutions all synchronize producers and consumers
// through a filesystem namespace (first-touch files on XFS/Lustre, or
// DYAD's KVS metadata over node-local files).  The streaming alternative
// the HPC community actually deploys (ADIOS2/openPMD staging transports)
// never touches a filesystem on the hot path: producers put frames
// directly into a bounded per-node staging buffer on the subscriber's
// node over RDMA, and consumers read them from memory.
//
// Model:
//   * Per-node staging buffer — `StreamParams::buffer_capacity` bytes of
//     pinned memory per node; producers reserve space before the put and
//     the reservation is released when the consumer drains the frame.
//   * Subscription handshake — consumers announce `stream.sub/<prefix>`
//     on the KVS once per pair prefix; producers resolve the route once
//     and cache it (the per-frame path has no KVS traffic, which is
//     exactly where it beats DYAD's per-frame commit+lookup+visibility
//     cost).  Producers announce `stream.pub/<prefix>` so subscribers can
//     request replays.
//   * Credit-based back-pressure — each subscription carries
//     `StreamParams::credits` outstanding-frame credits; a put blocks
//     (bounded by `backpressure_timeout`) when the window is exhausted
//     and the consumer returns a credit as it drains each frame.
//   * Spill-to-Lustre overflow — a put that cannot go direct (no credit,
//     no buffer space, torn fabric, unresolved subscriber) degrades to a
//     durable spill file (`spill_prefix + path`) that the consumer
//     re-fetches transparently; slow consumers degrade instead of
//     deadlocking the producer.
//   * Fault semantics — a power-loss crash drops the node's staged
//     frames, replay ring, and credit state (`on_power_loss`, driven by
//     the fault injector); consumers recover via the spill replica
//     (durable mode arms a spill-before-stage commit barrier whenever
//     power-loss windows are planned) or by requesting a re-delivery
//     from the producer's replay ring.  A process kill keeps the staging
//     daemon's memory, matching the injector's kill semantics.
//   * Integrity — staged frames carry the producer's CRC32C tag; the
//     fabric can flip bits in flight (`Ledger::flip_link`), consumers
//     verify on drain and run a bounded replay/re-spill re-fetch
//     protocol.  The staging buffer itself is ECC memory: it does not
//     draw device-corruption coins the way SSD/OST replicas do.
//   * Health — a stalled subscription is hedged against the spill path:
//     after an adaptive (clamped-percentile) delay the consumer probes
//     the spill replica instead of waiting out the full arrival timeout.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "mdwf/common/bytes.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/fs/lustre.hpp"
#include "mdwf/health/health.hpp"
#include "mdwf/integrity/ledger.hpp"
#include "mdwf/kvs/kvs.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::stream {

class StreamNode;

// KVS keys of the subscription/announcement handshake.
std::string sub_key(const std::string& prefix);
std::string pub_key(const std::string& prefix);
// Routing prefix of a frame path ("pair0007/frame00012" -> "pair0007/").
std::string path_prefix(const std::string& path);

struct StreamParams {
  // Pinned staging memory per node; reservations beyond it back-pressure
  // the producers (and overflow to the spill path after the bounded wait).
  Bytes buffer_capacity = Bytes::mib(128);
  // Outstanding-frame window per subscription.
  std::uint32_t credits = 4;
  // Staging-memory copy bandwidth (drain to the consumer, local puts).
  double buffer_bps = 8.0e9;
  // Producer-side CPU per put (descriptor setup, registration cache hit).
  Duration put_cpu = Duration::microseconds(5);
  // Consumer-side CPU per drain (match + completion handling).
  Duration match_cpu = Duration::microseconds(3);
  // Cold-start bound on resolving a subscriber through the KVS.
  Duration handshake_timeout = Duration::milliseconds(10);
  // Bound on credit/space waits before the put overflows to the spill.
  Duration backpressure_timeout = Duration::milliseconds(5);
  // One consumer wait round before probing the spill / requesting replay.
  Duration arrival_timeout = Duration::milliseconds(40);
  // Fetch rounds before the subscription is declared starved (the rank
  // retry / crash-recovery loop above then owns the failure).  The bound
  // exists for liveness only — a dead producer with no spill replica must
  // not spin the event queue forever — so it is sized far beyond any
  // healthy producer silence (4096 x 40 ms > 160 s; the slowest model
  // emits frames every few seconds).
  std::uint32_t max_fetch_rounds = 4096;
  std::string spill_prefix = "stream_spill/";
  // Spill every frame before staging it (commit barrier); forced on by
  // the testbed whenever power-loss crash windows are planned.
  bool durable = false;
  health::HealthParams health{};
};

// Registry of the stream daemons plus the subscription routing table
// (one entry per consumer rank, longest prefix wins) — the warm-path
// route cache that spares the per-frame KVS round trip.
class StreamDomain {
 public:
  void add(StreamNode& node);
  StreamNode& at(net::NodeId node) const;
  std::size_t size() const { return nodes_.size(); }

  void subscribe(std::string prefix, net::NodeId node);
  std::optional<net::NodeId> subscriber_for(const std::string& path) const;

  // Membership declared `node` lost: drop every routing entry pointing at
  // it so producers stop delivering into a staging buffer no rank will
  // ever drain (the migrated rank re-subscribes from its new home).
  void invalidate_node(net::NodeId node);

 private:
  std::map<std::uint32_t, StreamNode*> nodes_;
  std::map<std::string, net::NodeId> subscriptions_;
};

// One frame sitting in a node's staging buffer.
struct StagedFrame {
  Bytes size;
  net::NodeId origin;  // producer node (replay requests go back here)
};

// Per-node streaming daemon: the staging buffer and its arrival events
// (consumer side), the credit windows and replay ring (producer side).
class StreamNode {
 public:
  StreamNode(sim::Simulation& sim, const StreamParams& params,
             StreamDomain& domain, net::NodeId node, net::Network& network,
             kvs::KvsServer& kvs_server, fs::LustreServers& lustre);

  net::NodeId node() const { return node_; }
  const StreamParams& params() const { return params_; }
  sim::Simulation& simulation() { return *sim_; }
  StreamDomain& domain() { return *domain_; }
  net::Network& network() { return *network_; }
  fs::LustreClient& spill() { return *spill_client_; }
  integrity::Ledger* integrity() { return ledger_; }
  void set_integrity(integrity::Ledger* ledger) { ledger_ = ledger; }
  // Incarnation fencing (mdwf::membership): a direct put from a daemon
  // whose node was declared lost is rejected by the receiving daemon with
  // StaleEpochError after the payload moved (the zombie learns only once
  // traffic flows again).  Not owned; nullptr = fencing off.
  void set_fencing(FenceRegistry* fences) { fences_ = fences; }
  // Drop cached publisher routes through a lost node so the next replay
  // request re-resolves (the migrated producer re-announces its prefix).
  void forget_routes_to(net::NodeId lost);
  void set_trace(obs::TraceSink* sink, obs::TrackId track);

  // Integrity-ledger location of a node's staging buffer.
  static std::string stage_location(std::uint32_t node);
  std::string spill_path(const std::string& path) const;

  // --- Producer side -----------------------------------------------------
  // One-time background announcement of this producer's prefix.
  void ensure_pub_announced(const std::string& prefix);
  // Route lookup: domain cache, else a bounded KVS handshake.
  sim::Task<std::optional<net::NodeId>> resolve_subscriber(
      const std::string& prefix);
  // Take one credit from the subscription window, waiting up to
  // `backpressure_timeout`; false = stalled (the caller spills).
  sim::Task<bool> acquire_credit(const std::string& prefix);
  void refund_credit(const std::string& prefix) { grant_credit(prefix); }
  // Consumer-side drain returns the credit here (capped at the window).
  void grant_credit(const std::string& prefix);
  // SLO-guard degradation hook: shrinks every subscription window on this
  // node to `scale` of StreamParams::credits (floored at one credit so the
  // producer keeps making progress); 1.0 restores the full window.  Shrinking
  // takes effect immediately for unspent credits and as outstanding frames
  // drain for the rest.
  void set_credit_scale(double scale);
  double credit_scale() const { return credit_scale_; }
  // Move the payload and stage it at `dest`; the caller holds one credit
  // and a `dest` reservation.  False = duplicate (already staged or
  // consumed there); NetError propagates (torn fabric mid-put).
  sim::Task<bool> deliver(net::NodeId dest, const std::string& path,
                          Bytes size);
  // Durable spill replica (replaces torn leftovers; close-after-write is
  // the MDS journal barrier).
  sim::Task<void> spill_write(const std::string& path, Bytes size);
  // Refresh a corrupt spill replica from the replay ring; false when the
  // ring lost the frame (power loss).
  sim::Task<bool> respill(const std::string& path, Bytes size);
  // Re-deliver a frame from the replay ring to `requester` (restages in
  // place when already staged, spills when the buffer is full); false
  // when the ring lost the frame.
  sim::Task<bool> replay_to(net::NodeId requester, const std::string& path,
                            Bytes size);
  void note_published(const std::string& path, Bytes size);

  // --- Consumer-side staging buffer --------------------------------------
  bool try_reserve(Bytes size);
  // Bounded wait for buffer space; false = still full after the timeout.
  sim::Task<bool> reserve(Bytes size);
  void unreserve(Bytes size);
  // Accept a delivered frame (reservation already held by the sender);
  // false = duplicate, the sender unreserves and refunds its credit.
  bool receive(const std::string& path, Bytes size, net::NodeId origin);
  bool staged(const std::string& path) const {
    return staged_.find(path) != staged_.end();
  }
  std::optional<net::NodeId> staged_origin(const std::string& path) const;
  // A consumer about to (re-)fetch `path` accepts re-deliveries again
  // (crash rollback re-reads frames whose staged copy it already freed).
  void redeclare_interest(const std::string& path);
  sim::Task<void> wait_arrival(const std::string& path, Duration timeout);
  // Drain a staged frame: free the space, return the credit, dedup.
  void consume(const std::string& path);
  // The spill path satisfied the fetch: drop any racing staged copy and
  // remember the frame as consumed.
  void mark_consumed(const std::string& path);

  // --- Consumer-side handshake / health ----------------------------------
  void ensure_subscribed(const std::string& prefix);
  sim::Task<std::optional<net::NodeId>> resolve_publisher(
      const std::string& prefix);
  health::LatencyTracker& fetch_latency() { return fetch_latency_; }

  // --- Fault hook ---------------------------------------------------------
  // Power loss: volatile staging state dies (staged frames, arrival
  // events, replay ring, credit windows).  Process kills do NOT call
  // this — the staging daemon's memory survives, like the page cache.
  void on_power_loss();

  // --- Counters -----------------------------------------------------------
  std::uint64_t puts() const { return puts_; }
  std::uint64_t staged_hits() const { return hits_; }
  std::uint64_t spills() const { return spills_; }
  std::uint64_t spill_reads() const { return spill_reads_; }
  std::uint64_t replays() const { return replays_; }
  std::uint64_t dup_drops() const { return dup_drops_; }
  std::uint64_t crash_drops() const { return crash_drops_; }
  std::uint64_t credit_waits() const { return credit_waits_; }
  std::uint64_t backpressure_stalls() const { return backpressure_stalls_; }
  std::uint64_t hedges() const { return hedges_; }
  std::uint64_t hedge_wins() const { return hedge_wins_; }
  Bytes staged_bytes() const { return staged_bytes_; }

  void count_put();
  void count_spill();
  void count_spill_read();
  void count_backpressure_stall() { ++backpressure_stalls_; }
  void count_hedge() { ++hedges_; }
  void count_hedge_win() { ++hedge_wins_; }

 private:
  struct CreditState {
    std::int64_t available = 0;
    std::shared_ptr<sim::Event> changed;
  };

  CreditState& credit_state(const std::string& prefix);
  std::int64_t effective_credits() const;
  std::shared_ptr<sim::Event> credit_event(const std::string& prefix);
  std::shared_ptr<sim::Event> space_event();
  std::shared_ptr<sim::Event> arrival_event(const std::string& path);
  // Wake on the event or after `timeout`, whichever first.
  sim::Task<void> timed_wait(std::shared_ptr<sim::Event> ev,
                             Duration timeout);
  sim::Task<void> move_bytes(net::NodeId dest, Bytes size);
  // Re-draw the in-flight corruption state of a (re-)delivered frame.
  void record_delivery(net::NodeId dest, const std::string& path);
  sim::Task<void> return_credit(net::NodeId origin, std::string prefix);
  sim::Task<void> announce(std::string key, std::string value);
  void trace_total(obs::CounterId id, std::uint64_t value);
  void trace_gauge();

  sim::Simulation* sim_;
  StreamParams params_;
  StreamDomain* domain_;
  net::NodeId node_;
  net::Network* network_;
  kvs::KvsClient kvs_;
  std::unique_ptr<fs::LustreClient> spill_client_;
  integrity::Ledger* ledger_ = nullptr;
  FenceRegistry* fences_ = nullptr;

  // Consumer side.
  std::map<std::string, StagedFrame> staged_;
  Bytes staged_bytes_;
  std::map<std::string, std::shared_ptr<sim::Event>> arrivals_;
  std::shared_ptr<sim::Event> space_changed_;
  std::set<std::string> consumed_;
  std::set<std::string> announced_subs_;
  std::map<std::string, net::NodeId> pub_routes_;
  health::LatencyTracker fetch_latency_;

  // Producer side.
  std::map<std::string, CreditState> credits_;
  double credit_scale_ = 1.0;
  std::map<std::string, Bytes> published_;
  std::set<std::string> announced_pubs_;

  std::uint64_t puts_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t spills_ = 0;
  std::uint64_t spill_reads_ = 0;
  std::uint64_t replays_ = 0;
  std::uint64_t dup_drops_ = 0;
  std::uint64_t crash_drops_ = 0;
  std::uint64_t credit_waits_ = 0;
  std::uint64_t backpressure_stalls_ = 0;
  std::uint64_t hedges_ = 0;
  std::uint64_t hedge_wins_ = 0;

  obs::TraceSink* trace_ = nullptr;
  obs::CounterId trace_puts_id_{};
  obs::CounterId trace_hits_id_{};
  obs::CounterId trace_spills_id_{};
  obs::CounterId trace_spill_reads_id_{};
  obs::CounterId trace_replays_id_{};
  obs::CounterId trace_crash_drops_id_{};
  obs::CounterId trace_staged_bytes_id_{};
};

// Rank-facing producer API: put one frame toward the subscriber, with
// back-pressure, spill overflow, and perf-region accounting.
class StreamPublisher {
 public:
  StreamPublisher(StreamNode& node, perf::Recorder& recorder);
  sim::Task<void> publish(const std::string& path, Bytes size);

 private:
  StreamNode* node_;
  perf::Recorder* rec_;
};

// Rank-facing consumer API: wait for the staged frame (or hedge against
// the spill replica), verify, drain.
class StreamSubscriber {
 public:
  StreamSubscriber(StreamNode& node, perf::Recorder& recorder);
  sim::Task<void> fetch(const std::string& path, Bytes size);

 private:
  sim::Task<void> read_staged(const std::string& path, Bytes size);
  sim::Task<bool> try_spill_read(const std::string& path, Bytes size);
  sim::Task<void> request_replay(const std::string& path, Bytes size);

  StreamNode* node_;
  perf::Recorder* rec_;
};

}  // namespace mdwf::stream
