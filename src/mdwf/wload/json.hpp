// Minimal JSON reader for WfCommons workflow instances.
//
// A small recursive-descent parser producing an immutable value tree —
// objects, arrays, strings, numbers, booleans, null.  The simulator only
// needs to *read* instance files, and the container bakes in no JSON
// library, so this stays deliberately tiny: no writer, no comments, no
// trailing commas, UTF-8 passed through verbatim.  Errors throw
// mdwf::ConfigError with the 1-based line/column of the offending byte so
// loader diagnostics point into the instance file.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mdwf/common/keyval.hpp"

namespace mdwf::wload {

class JsonValue;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(JsonArray a);
  static JsonValue make_object(JsonObject o);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Checked accessors; throw ConfigError naming `where` on a kind
  // mismatch so callers surface "tasks[3].runtime: expected number".
  bool as_bool(std::string_view where) const;
  double as_number(std::string_view where) const;
  const std::string& as_string(std::string_view where) const;
  const JsonArray& as_array(std::string_view where) const;
  const JsonObject& as_object(std::string_view where) const;

  // Object lookup; null pointer when absent (or when not an object).
  const JsonValue* find(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Indirection keeps JsonValue movable/copyable without recursive
  // by-value members of incomplete type.
  std::shared_ptr<const JsonArray> arr_;
  std::shared_ptr<const JsonObject> obj_;
};

// Parses one complete JSON document; trailing non-whitespace is an error.
// Throws mdwf::ConfigError ("<context>: ... at line L column C") on
// malformed input; `context` is typically the file name.
JsonValue parse_json(std::string_view text, std::string_view context);

}  // namespace mdwf::wload
