#include "mdwf/wload/wload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <queue>
#include <sstream>
#include <utility>

#include "mdwf/common/rng.hpp"
#include "mdwf/common/suggest.hpp"
#include "mdwf/wload/json.hpp"

namespace mdwf::wload {
namespace {

[[noreturn]] void fail(std::string_view context, const std::string& what) {
  throw ConfigError(std::string(context) + ": " + what);
}

// Task-object keys the importer understands.  Fields the simulator does not
// model (cores, memory, ...) are accepted and ignored; anything else is a
// likely typo and rejected — silently dropping a misspelled `sizeInBytes`
// would import a zero-byte workflow.
constexpr std::string_view kTaskFields[] = {
    "name",     "id",        "category", "type",    "runtime",
    "runtimeInSeconds",      "parents",  "children", "files",
    "inputFiles", "outputFiles", "cores", "avgCPU",  "memory",
    "memoryInBytes",         "energy",   "priority", "machine",
    "machines", "command",   "bytesRead", "bytesWritten",
    "readBytes", "writtenBytes", "launchDir", "taskType",
};

constexpr std::string_view kFileFields[] = {
    "link", "name", "id", "size", "sizeInBytes", "path",
};

void check_fields(const JsonObject& obj, std::string_view context,
                  std::string_view where,
                  const std::vector<std::string_view>& known) {
  for (const auto& [key, value] : obj) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      fail(context, std::string(where) + ": unknown field '" + key + "'" +
                        did_you_mean(key, known));
    }
  }
}

std::string task_label(const JsonObject& obj, std::size_t index) {
  if (const auto it = obj.find("name"); it != obj.end() && it->second.is_string()) {
    return "task '" + it->second.as_string("name") + "'";
  }
  if (const auto it = obj.find("id"); it != obj.end() && it->second.is_string()) {
    return "task '" + it->second.as_string("id") + "'";
  }
  return "tasks[" + std::to_string(index) + "]";
}

double get_runtime_seconds(const JsonObject& obj, std::string_view context,
                           const std::string& label) {
  const auto rt = obj.find("runtime");
  const auto rts = obj.find("runtimeInSeconds");
  const JsonValue* v = nullptr;
  if (rts != obj.end()) {
    v = &rts->second;
  } else if (rt != obj.end()) {
    v = &rt->second;
  }
  if (v == nullptr) return 0.0;
  const double s = v->as_number(label + ".runtime");
  if (!std::isfinite(s) || s < 0.0) {
    fail(context, label + ": negative or non-finite runtime");
  }
  return s;
}

// Sum of this task's output file sizes (`link == "output"` entries in the
// classic schema); falls back to `bytesWritten` when no file list exists.
Bytes get_output_bytes(const JsonObject& obj, std::string_view context,
                       const std::string& label) {
  double total = 0.0;
  bool have_files = false;
  if (const JsonValue* files = (obj.count("files") != 0)
                                   ? &obj.find("files")->second
                                   : nullptr) {
    for (const JsonValue& f : files->as_array(label + ".files")) {
      const JsonObject& fo = f.as_object(label + ".files[]");
      check_fields(fo, context, label + ".files[]",
                   {std::begin(kFileFields), std::end(kFileFields)});
      const JsonValue* link = f.find("link");
      if (link == nullptr ||
          link->as_string(label + ".files[].link") != "output") {
        continue;
      }
      const JsonValue* size = f.find("sizeInBytes");
      if (size == nullptr) size = f.find("size");
      if (size == nullptr) {
        fail(context, label + ": output file without sizeInBytes");
      }
      const double b = size->as_number(label + ".files[].sizeInBytes");
      if (!std::isfinite(b) || b < 0.0) {
        fail(context, label + ": negative output file size");
      }
      total += b;
      have_files = true;
    }
  }
  if (!have_files) {
    if (const JsonValue* bw = obj.count("bytesWritten") != 0
                                  ? &obj.find("bytesWritten")->second
                                  : nullptr) {
      const double b = bw->as_number(label + ".bytesWritten");
      if (!std::isfinite(b) || b < 0.0) {
        fail(context, label + ": negative bytesWritten");
      }
      total = b;
    }
  }
  return Bytes(static_cast<std::uint64_t>(total));
}

// The task array of a classic instance (`workflow.tasks`, with the older
// `workflow.jobs` spelling accepted), or of a >=1.4 specification split.
const JsonArray& find_task_array(const JsonValue& workflow,
                                 std::string_view context,
                                 const JsonValue** execution_out) {
  *execution_out = nullptr;
  if (const JsonValue* spec = workflow.find("specification")) {
    *execution_out = workflow.find("execution");
    const JsonValue* tasks = spec->find("tasks");
    if (tasks == nullptr) {
      fail(context, "workflow.specification has no tasks array");
    }
    return tasks->as_array("workflow.specification.tasks");
  }
  const JsonValue* tasks = workflow.find("tasks");
  if (tasks == nullptr) tasks = workflow.find("jobs");
  if (tasks == nullptr) {
    fail(context, "workflow has no tasks array");
  }
  return tasks->as_array("workflow.tasks");
}

// Per-file byte sizes of a >=1.4 specification (`files[]` with ids), used
// to resolve a spec task's outputFiles list.
std::map<std::string, double, std::less<>> spec_file_sizes(
    const JsonValue& workflow, std::string_view context) {
  std::map<std::string, double, std::less<>> sizes;
  const JsonValue* spec = workflow.find("specification");
  if (spec == nullptr) return sizes;
  const JsonValue* files = spec->find("files");
  if (files == nullptr) return sizes;
  for (const JsonValue& f : files->as_array("workflow.specification.files")) {
    const JsonObject& fo = f.as_object("specification.files[]");
    check_fields(fo, context, "specification.files[]",
                 {std::begin(kFileFields), std::end(kFileFields)});
    const JsonValue* id = f.find("id");
    if (id == nullptr) id = f.find("name");
    if (id == nullptr) fail(context, "specification file without id");
    const JsonValue* size = f.find("sizeInBytes");
    if (size == nullptr) size = f.find("size");
    if (size == nullptr) {
      fail(context, "specification file '" +
                        id->as_string("files[].id") + "' has no sizeInBytes");
    }
    sizes.emplace(id->as_string("files[].id"),
                  size->as_number("files[].sizeInBytes"));
  }
  return sizes;
}

// Runtimes of a >=1.4 execution section, keyed by task id.
std::map<std::string, double, std::less<>> execution_runtimes(
    const JsonValue* execution, std::string_view context) {
  std::map<std::string, double, std::less<>> runtimes;
  if (execution == nullptr) return runtimes;
  const JsonValue* tasks = execution->find("tasks");
  if (tasks == nullptr) return runtimes;
  for (const JsonValue& t : tasks->as_array("workflow.execution.tasks")) {
    const JsonObject& to = t.as_object("execution.tasks[]");
    const JsonValue* id = to.count("id") != 0 ? &to.find("id")->second
                                              : nullptr;
    if (id == nullptr && to.count("name") != 0) id = &to.find("name")->second;
    if (id == nullptr) fail(context, "execution task without id");
    runtimes[id->as_string("execution.tasks[].id")] =
        get_runtime_seconds(to, context,
                            "execution task '" +
                                id->as_string("execution.tasks[].id") + "'");
  }
  return runtimes;
}

}  // namespace

std::size_t Dag::source_count() const {
  std::size_t n = 0;
  for (const TaskSpec& t : tasks) n += t.parents.empty() ? 1 : 0;
  return n;
}

std::size_t Dag::sink_count() const {
  std::size_t n = 0;
  for (const TaskSpec& t : tasks) n += t.children.empty() ? 1 : 0;
  return n;
}

std::size_t Dag::critical_path_tasks() const {
  // Tasks are topological after validate(): one forward pass suffices.
  std::vector<std::size_t> depth(tasks.size(), 1);
  std::size_t best = tasks.empty() ? 0 : 1;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (const std::uint32_t p : tasks[i].parents) {
      depth[i] = std::max(depth[i], depth[p] + 1);
    }
    best = std::max(best, depth[i]);
  }
  return best;
}

Dag validate(Dag dag, std::string_view context) {
  const std::size_t n = dag.tasks.size();
  if (n == 0) fail(context, "workflow has no tasks");

  std::map<std::string, std::size_t, std::less<>> by_id;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec& t = dag.tasks[i];
    if (t.id.empty()) {
      fail(context, "tasks[" + std::to_string(i) + "] has an empty id");
    }
    if (!by_id.emplace(t.id, i).second) {
      fail(context, "duplicate task id '" + t.id + "'");
    }
    if (t.runtime.is_negative()) {
      fail(context, "task '" + t.id + "' has a negative runtime");
    }
    for (const std::uint32_t p : t.parents) {
      if (p >= n) {
        fail(context, "task '" + t.id + "' has an out-of-range parent index " +
                          std::to_string(p));
      }
      if (p == i) {
        fail(context, "task '" + t.id + "' lists itself as a parent");
      }
    }
    // Dedup parents (a repeated parent would double-fetch the same frames).
    std::sort(t.parents.begin(), t.parents.end());
    t.parents.erase(std::unique(t.parents.begin(), t.parents.end()),
                    t.parents.end());
  }

  // Stable Kahn topological sort: among ready tasks, the smallest original
  // index goes first, so canonical order is deterministic and imported
  // order breaks ties.
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::uint32_t>> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    indegree[i] = dag.tasks[i].parents.size();
    for (const std::uint32_t p : dag.tasks[i].parents) {
      out[p].push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<>> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<std::size_t> order;  // order[k] = original index of new task k
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t i = ready.top();
    ready.pop();
    order.push_back(i);
    for (const std::uint32_t c : out[i]) {
      if (--indegree[c] == 0) ready.push(c);
    }
  }
  if (order.size() != n) {
    // Every unplaced task sits on or downstream of a cycle; name the first
    // unplaced one whose parents are all unplaced — that is on the cycle.
    std::vector<bool> placed(n, false);
    for (const std::size_t i : order) placed[i] = true;
    std::string culprit;
    for (std::size_t i = 0; i < n && culprit.empty(); ++i) {
      if (placed[i]) continue;
      culprit = dag.tasks[i].id;
    }
    fail(context, "workflow graph has a cycle through task '" + culprit + "'");
  }

  // Renumber into topological order.
  std::vector<std::uint32_t> new_index(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    new_index[order[k]] = static_cast<std::uint32_t>(k);
  }
  Dag sorted;
  sorted.name = std::move(dag.name);
  sorted.tasks.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    TaskSpec t = std::move(dag.tasks[order[k]]);
    for (std::uint32_t& p : t.parents) p = new_index[p];
    std::sort(t.parents.begin(), t.parents.end());
    t.children.clear();
    sorted.tasks.push_back(std::move(t));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::uint32_t p : sorted.tasks[i].parents) {
      sorted.tasks[p].children.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // A task with children must publish bytes: every edge moves at least one
  // frame through the connector, and a zero-byte frame is a schema error
  // (classic instances encode control-only edges with small files, not 0).
  for (const TaskSpec& t : sorted.tasks) {
    if (!t.children.empty() && t.output_bytes.is_zero()) {
      fail(context, "task '" + t.id +
                        "' has children but zero output bytes (did you mean "
                        "to set files[].sizeInBytes or bytesWritten?)");
    }
  }
  return sorted;
}

Dag parse_wfcommons(std::string_view json_text, std::string_view context) {
  const JsonValue doc = parse_json(json_text, context);
  const JsonObject& root = doc.as_object("document");
  const JsonValue* workflow = doc.find("workflow");
  if (workflow == nullptr) {
    std::vector<std::string_view> keys;
    keys.reserve(root.size());
    for (const auto& [k, v] : root) keys.push_back(k);
    fail(context, "document has no 'workflow' object" +
                      did_you_mean("workflow", keys));
  }

  const JsonValue* execution = nullptr;
  const JsonArray& task_array =
      find_task_array(*workflow, context, &execution);
  const auto file_sizes = spec_file_sizes(*workflow, context);
  const auto exec_runtimes = execution_runtimes(execution, context);
  const bool spec_form = workflow->find("specification") != nullptr;

  Dag dag;
  if (const JsonValue* name = doc.find("name")) {
    dag.name = name->as_string("name");
  }

  // Pass 1: ids and payloads, building the name -> index map.
  std::map<std::string, std::uint32_t, std::less<>> index_of;
  std::vector<const JsonObject*> raw;
  raw.reserve(task_array.size());
  for (std::size_t i = 0; i < task_array.size(); ++i) {
    const JsonObject& obj = task_array[i].as_object(
        "tasks[" + std::to_string(i) + "]");
    const std::string label = task_label(obj, i);
    check_fields(obj, context, label,
                 {std::begin(kTaskFields), std::end(kTaskFields)});

    TaskSpec t;
    if (const auto it = obj.find("name"); it != obj.end()) {
      t.id = it->second.as_string(label + ".name");
    } else if (const auto it2 = obj.find("id"); it2 != obj.end()) {
      t.id = it2->second.as_string(label + ".id");
    } else {
      fail(context, label + " has neither 'name' nor 'id'");
    }

    double runtime_s = get_runtime_seconds(obj, context, label);
    if (runtime_s == 0.0) {
      if (const auto it = exec_runtimes.find(t.id);
          it != exec_runtimes.end()) {
        runtime_s = it->second;
      }
    }
    t.runtime = Duration::seconds(runtime_s);

    if (spec_form && obj.count("outputFiles") != 0) {
      // Specification tasks reference files by id; sizes live in the
      // specification-level files table.
      double total = 0.0;
      const JsonValue& ofs = obj.find("outputFiles")->second;
      for (const JsonValue& fid : ofs.as_array(label + ".outputFiles")) {
        const std::string& id = fid.as_string(label + ".outputFiles[]");
        const auto it = file_sizes.find(id);
        if (it == file_sizes.end()) {
          std::vector<std::string_view> known;
          known.reserve(file_sizes.size());
          for (const auto& [k, v] : file_sizes) known.push_back(k);
          fail(context, label + " references unknown file '" + id + "'" +
                            did_you_mean(id, known));
        }
        total += it->second;
      }
      t.output_bytes = Bytes(static_cast<std::uint64_t>(total));
    } else {
      t.output_bytes = get_output_bytes(obj, context, label);
    }

    if (index_of.count(t.id) != 0) {
      fail(context, "duplicate task id '" + t.id + "'");
    }
    index_of.emplace(t.id, static_cast<std::uint32_t>(dag.tasks.size()));
    dag.tasks.push_back(std::move(t));
    raw.push_back(&obj);
  }

  // Pass 2: resolve parent names now that every task id is known.
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const JsonObject& obj = *raw[i];
    const auto it = obj.find("parents");
    if (it == obj.end()) continue;
    const std::string label = task_label(obj, i);
    for (const JsonValue& p : it->second.as_array(label + ".parents")) {
      const std::string& pid = p.as_string(label + ".parents[]");
      const auto found = index_of.find(pid);
      if (found == index_of.end()) {
        std::vector<std::string_view> ids;
        ids.reserve(index_of.size());
        for (const auto& [k, v] : index_of) ids.push_back(k);
        fail(context, label + " lists missing parent '" + pid + "'" +
                          did_you_mean(pid, ids));
      }
      dag.tasks[i].parents.push_back(found->second);
    }
  }

  return validate(std::move(dag), context);
}

Dag load_wfcommons_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ConfigError("workload: cannot read wfcommons instance '" + path +
                      "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_wfcommons(buf.str(), path);
}

Topology parse_topology(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kTopologyNames); ++i) {
    if (name == kTopologyNames[i]) return static_cast<Topology>(i);
  }
  throw ConfigError("workload: unknown synthetic topology '" +
                    std::string(name) + "'" +
                    did_you_mean(name, kTopologyNames));
}

std::string_view topology_name(Topology t) {
  return kTopologyNames[static_cast<std::size_t>(t)];
}

namespace {

// Draws one task's runtime/output from streams forked off the spec seed by
// task id, so editing the topology never perturbs another task's sizes.
TaskSpec make_task(const SynthSpec& spec, const Rng& root, std::string id,
                   std::vector<std::uint32_t> parents) {
  Rng rng = root.fork("task:" + id);
  TaskSpec t;
  t.id = std::move(id);
  const double runtime_s =
      spec.runtime_sigma <= 0.0
          ? spec.runtime_median_s
          : rng.lognormal(std::log(spec.runtime_median_s),
                          spec.runtime_sigma);
  t.runtime = Duration::seconds(runtime_s);
  const double bytes =
      spec.output_sigma <= 0.0
          ? spec.output_median_bytes
          : rng.lognormal(std::log(spec.output_median_bytes),
                          spec.output_sigma);
  t.output_bytes = Bytes(std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(bytes)));
  t.parents = std::move(parents);
  return t;
}

}  // namespace

Dag generate_synthetic(const SynthSpec& spec) {
  if (spec.tasks == 0) {
    throw ConfigError("workload: synthetic workflow needs at least one task");
  }
  if (spec.width == 0) {
    throw ConfigError("workload: synthetic width must be positive");
  }
  if (spec.runtime_median_s <= 0.0 || spec.output_median_bytes < 1.0) {
    throw ConfigError(
        "workload: synthetic runtime/output medians must be positive");
  }
  const Rng root(spec.seed);
  Dag dag;
  dag.name = std::string("synth-") + std::string(topology_name(spec.topology));
  auto id_of = [](std::uint32_t i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "t%04u", i);
    return std::string(buf);
  };

  switch (spec.topology) {
    case Topology::kChain: {
      for (std::uint32_t i = 0; i < spec.tasks; ++i) {
        std::vector<std::uint32_t> parents;
        if (i > 0) parents.push_back(i - 1);
        dag.tasks.push_back(
            make_task(spec, root, id_of(i), std::move(parents)));
      }
      break;
    }
    case Topology::kForkJoin: {
      // source -> width-wide layers separated by join tasks, within the
      // task budget; the final join is the sink.
      std::uint32_t next = 0;
      const std::uint32_t source = next++;
      dag.tasks.push_back(make_task(spec, root, id_of(source), {}));
      std::uint32_t hub = source;  // most recent source/join
      while (next + 1 < spec.tasks) {
        const std::uint32_t layer =
            std::min(spec.width, spec.tasks - next - 1);
        std::vector<std::uint32_t> members;
        for (std::uint32_t i = 0; i < layer; ++i) {
          const std::uint32_t t = next++;
          dag.tasks.push_back(make_task(spec, root, id_of(t), {hub}));
          members.push_back(t);
        }
        const std::uint32_t join = next++;
        dag.tasks.push_back(
            make_task(spec, root, id_of(join), std::move(members)));
        hub = join;
      }
      if (next < spec.tasks) {
        dag.tasks.push_back(make_task(spec, root, id_of(next), {hub}));
      }
      break;
    }
    case Topology::kMontage: {
      // Montage-like diamond: `width` projection sources, pairwise overlap
      // layer, one concentrating aggregate, then a post-processing chain
      // with whatever budget remains.
      const std::uint32_t w = std::max<std::uint32_t>(2, spec.width);
      std::uint32_t next = 0;
      std::vector<std::uint32_t> project;
      for (std::uint32_t i = 0; i < w; ++i) {
        const std::uint32_t t = next++;
        dag.tasks.push_back(make_task(spec, root, id_of(t), {}));
        project.push_back(t);
      }
      std::vector<std::uint32_t> overlap;
      for (std::uint32_t i = 0; i + 1 < w; ++i) {
        const std::uint32_t t = next++;
        dag.tasks.push_back(make_task(
            spec, root, id_of(t), {project[i], project[i + 1]}));
        overlap.push_back(t);
      }
      const std::uint32_t concat = next++;
      dag.tasks.push_back(
          make_task(spec, root, id_of(concat), std::move(overlap)));
      std::uint32_t tail = concat;
      while (next < spec.tasks) {
        const std::uint32_t t = next++;
        dag.tasks.push_back(make_task(spec, root, id_of(t), {tail}));
        tail = t;
      }
      break;
    }
  }
  return validate(std::move(dag), "synth:" +
                                      std::string(topology_name(spec.topology)));
}

Dag load_workload(std::string_view reference,
                  const WorkloadDefaults& defaults) {
  const std::size_t colon = reference.find(':');
  if (colon == std::string_view::npos) {
    throw ConfigError(
        "workload: expected '<scheme>:<arg>' (wfcommons:<file> or "
        "synth:<topology>), got '" +
        std::string(reference) + "'");
  }
  const std::string_view scheme = reference.substr(0, colon);
  const std::string_view arg = reference.substr(colon + 1);
  constexpr std::string_view kSchemes[] = {"wfcommons", "synth"};
  if (scheme == "wfcommons") {
    if (arg.empty()) {
      throw ConfigError("workload: wfcommons: needs an instance file path");
    }
    return load_wfcommons_file(std::string(arg));
  }
  if (scheme == "synth") {
    SynthSpec spec;
    spec.topology = parse_topology(arg);
    spec.tasks = static_cast<std::uint32_t>(defaults.synth_tasks);
    spec.width = defaults.synth_width;
    spec.seed = defaults.synth_seed;
    spec.runtime_median_s = defaults.synth_runtime_s;
    spec.output_median_bytes = defaults.synth_output_bytes;
    return generate_synthetic(spec);
  }
  throw ConfigError("workload: unknown scheme '" + std::string(scheme) + "'" +
                    did_you_mean(scheme, kSchemes));
}

}  // namespace mdwf::wload
