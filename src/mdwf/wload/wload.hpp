// DAG workload import and generation (WfCommons / WorkflowHub).
//
// The simulator's classic workload is the paper's fixed producer→consumer
// MD pipeline.  This module widens the input surface to arbitrary task
// graphs: `parse_wfcommons` reads a WfCommons/WorkflowHub JSON instance
// (tasks, parents, per-task runtime and output bytes) into a validated
// `Dag`, `generate_synthetic` builds seeded chain / fork-join /
// montage-like topologies, and `load_workload` resolves the
// `workload=wfcommons:<file>` / `workload=synth:<topology>` config
// syntax.  Execution lives in workflow/dag_run.cpp: each DAG edge moves
// through the configured Connector, so every data-movement solution and
// fault plane applies to imported graphs unchanged.
//
// Validation is all-or-nothing: any structural problem (cycle, dangling
// parent, duplicate id, malformed JSON, unknown task field) throws
// mdwf::ConfigError — with a did-you-mean suggestion where a close known
// name exists — and leaves no partial Dag behind.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mdwf/common/bytes.hpp"
#include "mdwf/common/time.hpp"

namespace mdwf::wload {

// One workflow task: a unit of compute that consumes every parent's output
// and publishes `output_bytes` of its own.
struct TaskSpec {
  std::string id;            // unique within the Dag
  Duration runtime{};        // sequential compute time
  Bytes output_bytes{};      // bytes each child must fetch
  std::vector<std::uint32_t> parents;   // indices into Dag::tasks
  std::vector<std::uint32_t> children;  // derived, sorted ascending
};

// A directed acyclic task graph in topological order: every task's parents
// have smaller indices (validate() canonicalizes imported instances into
// this order, so executors can iterate tasks front-to-back).
struct Dag {
  std::string name;
  std::vector<TaskSpec> tasks;

  std::size_t edge_count() const {
    std::size_t n = 0;
    for (const TaskSpec& t : tasks) n += t.parents.size();
    return n;
  }
  // Tasks with no parents / no children.
  std::size_t source_count() const;
  std::size_t sink_count() const;
  // Longest path length in tasks (chain depth); 0 for an empty Dag.
  std::size_t critical_path_tasks() const;
};

// Structural validation + canonicalization shared by the importer and the
// generator: rejects duplicate ids, out-of-range or self parents, cycles
// (naming a task on the cycle), negative runtimes, and zero-byte outputs
// feeding children; sorts tasks topologically (stable: original order
// breaks ties) and fills `children`.  `context` prefixes diagnostics.
Dag validate(Dag dag, std::string_view context);

// --- WfCommons / WorkflowHub import ---------------------------------------

// Parses a WfCommons JSON instance (the `workflow.tasks[]` schema, with
// `workflow.specification.tasks[]` accepted for wfformat >= 1.4 splits).
// Unknown keys inside a task object are rejected with a did-you-mean
// against the known task fields — silently ignoring a misspelled
// `sizeInBytes` would import a zero-byte workflow.
Dag parse_wfcommons(std::string_view json_text, std::string_view context);

// Reads and parses an instance file; throws ConfigError if unreadable.
Dag load_wfcommons_file(const std::string& path);

// --- Seeded synthetic generator -------------------------------------------

enum class Topology {
  kChain,      // T0 -> T1 -> ... -> Tn-1
  kForkJoin,   // source -> `width` parallel tasks -> sink, repeated
  kMontage,    // montage-like diamond: wide project layer, pairwise
               // overlap layer, concentrating aggregate, final layers
};

// Known topology names for `synth:<topology>` (index-matched to Topology).
inline constexpr std::string_view kTopologyNames[] = {"chain", "fork-join",
                                                      "montage"};

Topology parse_topology(std::string_view name);
std::string_view topology_name(Topology t);

struct SynthSpec {
  Topology topology = Topology::kChain;
  std::uint32_t tasks = 8;       // total task budget (>= topology minimum)
  std::uint32_t width = 4;       // parallel width (fork-join, montage)
  std::uint64_t seed = 1;        // all size/runtime draws derive from this
  // Log-normal runtime distribution: median seconds and sigma of the
  // underlying normal (sigma 0 = every task exactly the median).
  double runtime_median_s = 2.0;
  double runtime_sigma = 0.3;
  // Log-normal output size distribution, median bytes.
  double output_median_bytes = 64.0 * 1024 * 1024;
  double output_sigma = 0.4;
};

// Deterministic: equal specs generate byte-identical Dags; draws fork from
// `seed` per task, so the graph shape never perturbs the size stream.
Dag generate_synthetic(const SynthSpec& spec);

// --- Config-surface resolution --------------------------------------------

// Defaults a `workload=` reference is resolved against (the dag_* keys).
struct WorkloadDefaults {
  std::uint64_t synth_tasks = 8;
  std::uint32_t synth_width = 4;
  std::uint64_t synth_seed = 1;
  double synth_runtime_s = 2.0;      // runtime median
  double synth_output_bytes = 64.0 * 1024 * 1024;  // output median
};

// Resolves `wfcommons:<file>` / `synth:<topology>` workload references.
// Unknown schemes and topologies fail fast with did-you-mean.
Dag load_workload(std::string_view reference, const WorkloadDefaults& defaults);

}  // namespace mdwf::wload
