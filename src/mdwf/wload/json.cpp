#include "mdwf/wload/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <utility>

namespace mdwf::wload {
namespace {

const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void kind_error(std::string_view where, JsonValue::Kind want,
                             JsonValue::Kind got) {
  throw ConfigError(std::string(where) + ": expected " + kind_name(want) +
                    ", got " + kind_name(got));
}

class Parser {
 public:
  Parser(std::string_view text, std::string_view context)
      : text_(text), context_(context) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    // Recompute line/column from the byte offset only on the error path.
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ConfigError(std::string(context_) + ": " + what + " at line " +
                      std::to_string(line) + " column " +
                      std::to_string(col));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c, const char* in_what) {
    if (!consume(c)) {
      fail(std::string("expected '") + c + "' in " + in_what);
    }
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't': return parse_literal("true", JsonValue::make_bool(true));
      case 'f': return parse_literal("false", JsonValue::make_bool(false));
      case 'n': return parse_literal("null", JsonValue::make_null());
      default: return parse_number();
    }
  }

  JsonValue parse_literal(std::string_view word, JsonValue v) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
    }
    pos_ += word.size();
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
      digits = true;
    }
    if (consume('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        digits = true;
      }
    }
    if (!digits) {
      pos_ = start;
      fail("invalid value");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      bool exp_digits = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) fail("invalid number exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string parse_string() {
    expect('"', "string");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          std::uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<std::uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<std::uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<std::uint32_t>(h - 'A' + 10);
            } else {
              pos_ -= 1;
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (instance files are ASCII in
          // practice; surrogate pairs are out of scope).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
    return out;
  }

  JsonValue parse_array() {
    expect('[', "array");
    JsonArray items;
    skip_ws();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (consume(']')) break;
      expect(',', "array");
    }
    return JsonValue::make_array(std::move(items));
  }

  JsonValue parse_object() {
    expect('{', "object");
    JsonObject members;
    skip_ws();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key string");
      }
      std::string key = parse_string();
      skip_ws();
      expect(':', "object");
      JsonValue value = parse_value();
      if (!members.emplace(std::move(key), std::move(value)).second) {
        fail("duplicate object key");
      }
      skip_ws();
      if (consume('}')) break;
      expect(',', "object");
    }
    return JsonValue::make_object(std::move(members));
  }

  std::string_view text_;
  std::string_view context_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(JsonArray a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::make_shared<const JsonArray>(std::move(a));
  return v;
}

JsonValue JsonValue::make_object(JsonObject o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::make_shared<const JsonObject>(std::move(o));
  return v;
}

bool JsonValue::as_bool(std::string_view where) const {
  if (kind_ != Kind::kBool) kind_error(where, Kind::kBool, kind_);
  return bool_;
}

double JsonValue::as_number(std::string_view where) const {
  if (kind_ != Kind::kNumber) kind_error(where, Kind::kNumber, kind_);
  return num_;
}

const std::string& JsonValue::as_string(std::string_view where) const {
  if (kind_ != Kind::kString) kind_error(where, Kind::kString, kind_);
  return str_;
}

const JsonArray& JsonValue::as_array(std::string_view where) const {
  if (kind_ != Kind::kArray) kind_error(where, Kind::kArray, kind_);
  return *arr_;
}

const JsonObject& JsonValue::as_object(std::string_view where) const {
  if (kind_ != Kind::kObject) kind_error(where, Kind::kObject, kind_);
  return *obj_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = obj_->find(key);
  return it == obj_->end() ? nullptr : &it->second;
}

JsonValue parse_json(std::string_view text, std::string_view context) {
  return Parser(text, context).parse_document();
}

}  // namespace mdwf::wload
