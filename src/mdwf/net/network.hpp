// Cluster interconnect model (InfiniBand-style fabric).
//
// Every node owns a full-duplex NIC (independent tx/rx fair-share channels).
// A transfer from A to B pays the base one-way latency once and then streams
// its payload through A's tx channel and B's rx channel concurrently; the
// slower (more contended) side gates completion, which is how a fat-tree
// fabric with adequate bisection behaves.  An optional shared bisection
// channel models a constrained core.
//
// RDMA primitives mirror one-sided verbs: a small request message to the
// owner followed by a payload stream back, with no remote CPU involvement
// modelled beyond the responder's NIC.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "mdwf/common/bytes.hpp"
#include "mdwf/common/rng.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/net/fair_share.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::net {

// Raised fail-fast by transfers touching a partitioned endpoint (the
// behaviour of a timed-out RDMA queue pair / RPC).  Healthy runs never see
// it; fault-aware callers (DYAD retry) catch it and recover.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

struct NodeId {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

struct NetworkParams {
  // InfiniBand QDR: 32 Gbit/s ~= 3.2 GB/s effective per direction.
  double nic_bandwidth_bps = 3.2e9;
  // One-way small-message latency.
  Duration latency = Duration::nanoseconds(1500);
  // Shared core capacity; 0 disables the bisection constraint.
  double bisection_bandwidth_bps = 0.0;
  // Size charged for control messages (headers, acks).
  Bytes control_message_size = Bytes(256);
  // Stall charged when a lossy link drops the tail of a flow and the
  // transport has to wait out a retransmission timeout.
  Duration retransmit_timeout = Duration::microseconds(500);
};

class Network {
 public:
  Network(sim::Simulation& sim, const NetworkParams& params,
          std::uint32_t node_count);

  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  const NetworkParams& params() const { return params_; }

  // Bulk data transfer src -> dst.  Intra-node transfers pay no network cost
  // (the caller models local memory/storage costs).
  sim::Task<void> transfer(NodeId src, NodeId dst, Bytes payload);

  // Control-plane message (fixed small size + latency).
  sim::Task<void> send_control(NodeId src, NodeId dst);

  // One-sided read: requester sends a control request to `owner`, then the
  // payload streams owner -> requester.
  sim::Task<void> rdma_get(NodeId requester, NodeId owner, Bytes payload);

  // One-sided write: payload streams src -> dst, then a completion control
  // message returns.
  sim::Task<void> rdma_put(NodeId src, NodeId dst, Bytes payload);

  // Channel access for tests and interference injection.
  FairShareChannel& tx(NodeId n);
  FairShareChannel& rx(NodeId n);
  FairShareChannel* bisection() { return bisection_.get(); }

  // --- Fault hooks (mdwf::fault) ------------------------------------------
  // Congestion on one node's links: fraction of NIC capacity lost in both
  // directions.
  void set_link_degradation(NodeId n, double fraction);
  // Partition: while down, any transfer/control/RDMA touching the node
  // throws NetError at issue time (fail fast, like a broken QP).
  void set_link_down(NodeId n, bool down);
  bool link_down(NodeId n) const;
  // Asymmetric (one-way) partition: while isolated, nothing *leaves* the
  // node — outbound transfers throw NetError — but inbound traffic still
  // arrives.  This is the zombie shape: the node keeps working locally and
  // hears nothing back, while the controller stops hearing its heartbeats.
  void set_link_isolated(NodeId n, bool isolated);
  bool link_isolated(NodeId n) const;
  // Node power loss: the link goes down AND every in-flight flow on the
  // node's NIC is torn mid-transfer (each waiting peer gets a NetError).
  // Returns the number of flows torn.  `set_link_down(n, false)` restores.
  std::size_t crash_node(NodeId n);

  // Lossy link (gray failure): fraction of packets lost on the node's
  // links.  Lost packets are retransmitted, not dropped: every transfer
  // touching the node streams 1/(1-p) times its payload, and with
  // probability p the flow additionally stalls one retransmit timeout.
  // Draws happen only while a lossy window is active, preserving the
  // determinism of loss-free runs.
  void set_link_loss(NodeId n, double p);
  double link_loss(NodeId n) const;
  // Reseeds the retransmit RNG (mdwf::fault wires the plan seed here).
  void seed_loss(Rng rng) { loss_rng_ = rng; }
  Bytes retransmitted() const { return retransmitted_; }
  std::uint64_t retransmit_timeouts() const { return retransmit_timeouts_; }

 private:
  struct Nic {
    std::unique_ptr<FairShareChannel> tx;
    std::unique_ptr<FairShareChannel> rx;
    bool down = false;
    bool tx_down = false;
    double loss = 0.0;
  };

  // Throws NetError if either endpoint is partitioned.
  void check_reachable(NodeId src, NodeId dst) const;

  sim::Simulation* sim_;
  NetworkParams params_;
  std::vector<Nic> nodes_;
  std::unique_ptr<FairShareChannel> bisection_;
  Rng loss_rng_{0x10557};
  Bytes retransmitted_;
  std::uint64_t retransmit_timeouts_ = 0;
};

}  // namespace mdwf::net
