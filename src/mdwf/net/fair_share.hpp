// Processor-sharing bandwidth channel.
//
// Models a capacity-limited resource (NIC port, switch bisection slice, SSD
// channel) shared equally among concurrent byte streams: with k active flows
// each progresses at capacity/k.  Arrivals and departures re-rate the channel
// exactly — progress is advanced to the event instant, the completion timer
// recomputed — which yields the same completion times an ideal fluid model
// would, independent of event interleaving.
//
// Hot-path notes (paper-scale sweeps hammer this class):
//   * Flow records come from a chunked per-channel pool; a transfer
//     allocates nothing once the pool is warm (previously one
//     `std::make_shared<Flow>` + one `sim::Event` per transfer).
//   * N same-instant arrivals coalesce into ONE settle/re-arm share
//     recomputation: each arrival only advances progress (a no-op within an
//     instant) and schedules a single zero-delay settle event.  The fluid
//     model makes this exact — intermediate re-rates within one instant are
//     unobservable, so completion times are bit-identical to the
//     settle-per-arrival behaviour (tests/heap_property_test.cpp pins the
//     fluid oracle; tests/net_test.cpp pins completion times).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mdwf/common/bytes.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::net {

class FairShareChannel {
 public:
  FairShareChannel(sim::Simulation& sim, double bytes_per_second,
                   std::string name = "channel");
  ~FairShareChannel();

  FairShareChannel(const FairShareChannel&) = delete;
  FairShareChannel& operator=(const FairShareChannel&) = delete;

  // Streams `n` bytes through the channel; completes when the last byte has
  // passed.  Zero-byte transfers complete immediately.  Throws NetError if
  // the flow is torn down mid-stream by `abort_active` (endpoint crash).
  sim::Task<void> transfer(Bytes n);

  // Tears down every in-flight flow (NIC power loss): each waiting transfer
  // resumes with a NetError.  Bytes not yet streamed are deducted from the
  // requested totals so conservation checks still balance.  Returns the
  // number of flows aborted.
  std::size_t abort_active();

  std::size_t active_flows() const { return flows_.size(); }
  double capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

  // Fraction of capacity stolen by modelled background load (interference
  // from other cluster jobs).  Applies to future progress immediately.
  void set_background_load(double fraction);
  double background_load() const { return background_load_; }

  // Lifetime totals for conservation checks and utilization reports.
  Bytes total_requested() const { return total_requested_; }
  Bytes total_completed() const { return total_completed_; }
  std::uint64_t aborted_flows() const { return aborted_flows_; }

  // Samples the active-flow count (the channel's queue depth) into `sink`
  // whenever it changes, as the pre-interned counter series `id` (mdwf::obs).
  void set_trace(obs::TraceSink* sink, obs::CounterId id);

 private:
  // Pooled: recycled by the owning transfer coroutine after it has observed
  // the completion (so `aborted` stays readable after abort_active() has
  // dropped the flow from the active list).
  struct Flow {
    double remaining_bytes = 0.0;
    bool aborted = false;
    bool completed = false;
    std::coroutine_handle<> waiter{};
    Flow* next_free = nullptr;
  };

  double effective_capacity() const {
    return capacity_ * (1.0 - background_load_);
  }
  Flow* acquire_flow(double bytes);
  void release_flow(Flow* f);
  // Marks `f` done and wakes its transfer coroutine (scheduled, not inline).
  void complete_flow(Flow* f);
  // Advances every active flow to the current instant.
  void advance_progress();
  // Completes exhausted flows and re-arms the completion timer.
  void settle_and_rearm();
  // Coalesces same-instant arrivals into one settle_and_rearm call via a
  // single zero-delay event.
  void schedule_settle();
  void on_timer();
  void trace_flows();

  sim::Simulation* sim_;
  double capacity_;
  std::string name_;
  double background_load_ = 0.0;
  std::vector<Flow*> flows_;
  std::vector<std::unique_ptr<Flow[]>> flow_chunks_;
  Flow* free_flows_ = nullptr;
  TimePoint last_update_ = TimePoint::origin();
  sim::TimerId timer_{};
  bool timer_armed_ = false;
  sim::TimerId settle_timer_{};
  bool settle_pending_ = false;
  Bytes total_requested_ = Bytes::zero();
  Bytes total_completed_ = Bytes::zero();
  std::uint64_t aborted_flows_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::CounterId trace_flows_id_{};
  std::int64_t traced_flows_ = -1;
};

}  // namespace mdwf::net
