// Processor-sharing bandwidth channel.
//
// Models a capacity-limited resource (NIC port, switch bisection slice, SSD
// channel) shared equally among concurrent byte streams: with k active flows
// each progresses at capacity/k.  Arrivals and departures re-rate the channel
// exactly — progress is advanced to the event instant, the completion timer
// recomputed — which yields the same completion times an ideal fluid model
// would, independent of event interleaving.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>

#include "mdwf/common/bytes.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::net {

class FairShareChannel {
 public:
  FairShareChannel(sim::Simulation& sim, double bytes_per_second,
                   std::string name = "channel");
  ~FairShareChannel();

  FairShareChannel(const FairShareChannel&) = delete;
  FairShareChannel& operator=(const FairShareChannel&) = delete;

  // Streams `n` bytes through the channel; completes when the last byte has
  // passed.  Zero-byte transfers complete immediately.  Throws NetError if
  // the flow is torn down mid-stream by `abort_active` (endpoint crash).
  sim::Task<void> transfer(Bytes n);

  // Tears down every in-flight flow (NIC power loss): each waiting transfer
  // resumes with a NetError.  Bytes not yet streamed are deducted from the
  // requested totals so conservation checks still balance.  Returns the
  // number of flows aborted.
  std::size_t abort_active();

  std::size_t active_flows() const { return flows_.size(); }
  double capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

  // Fraction of capacity stolen by modelled background load (interference
  // from other cluster jobs).  Applies to future progress immediately.
  void set_background_load(double fraction);
  double background_load() const { return background_load_; }

  // Lifetime totals for conservation checks and utilization reports.
  Bytes total_requested() const { return total_requested_; }
  Bytes total_completed() const { return total_completed_; }
  std::uint64_t aborted_flows() const { return aborted_flows_; }

  // Samples the active-flow count (the channel's queue depth) into `sink`
  // whenever it changes, as counter `counter_name` on `track` (mdwf::obs).
  void set_trace(obs::TraceSink* sink, obs::TrackId track,
                 std::string counter_name);

 private:
  struct Flow {
    double remaining_bytes;
    sim::Event done;
    bool aborted = false;
    Flow(sim::Simulation& sim, double n) : remaining_bytes(n), done(sim) {}
  };

  double effective_capacity() const {
    return capacity_ * (1.0 - background_load_);
  }
  // Advances every active flow to the current instant.
  void advance_progress();
  // Completes exhausted flows and re-arms the completion timer.
  void settle_and_rearm();
  void on_timer();
  void trace_flows();

  sim::Simulation* sim_;
  double capacity_;
  std::string name_;
  double background_load_ = 0.0;
  // Shared so a transfer coroutine can still read its flow's abort flag
  // after abort_active() has dropped it from the active list.
  std::list<std::shared_ptr<Flow>> flows_;
  TimePoint last_update_ = TimePoint::origin();
  sim::TimerId timer_{};
  bool timer_armed_ = false;
  Bytes total_requested_ = Bytes::zero();
  Bytes total_completed_ = Bytes::zero();
  std::uint64_t aborted_flows_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::TrackId trace_track_{};
  std::string trace_counter_;
  std::int64_t traced_flows_ = -1;
};

}  // namespace mdwf::net
