#include "mdwf/net/fair_share.hpp"

#include <algorithm>
#include <cmath>

#include "mdwf/common/assert.hpp"
#include "mdwf/net/network.hpp"  // NetError

namespace mdwf::net {
namespace {

// Flows with less than this many bytes left are complete (absorbs the
// floating-point residue of progress accounting).
constexpr double kEpsilonBytes = 1e-6;

constexpr std::size_t kFlowChunk = 64;

}  // namespace

FairShareChannel::FairShareChannel(sim::Simulation& sim,
                                   double bytes_per_second, std::string name)
    : sim_(&sim), capacity_(bytes_per_second), name_(std::move(name)) {
  MDWF_ASSERT_MSG(bytes_per_second > 0.0, "channel capacity must be positive");
}

FairShareChannel::~FairShareChannel() {
  if (timer_armed_) sim_->cancel(timer_);
  if (settle_pending_) sim_->cancel(settle_timer_);
}

FairShareChannel::Flow* FairShareChannel::acquire_flow(double bytes) {
  if (free_flows_ == nullptr) {
    flow_chunks_.push_back(std::make_unique<Flow[]>(kFlowChunk));
    Flow* chunk = flow_chunks_.back().get();
    for (std::size_t i = kFlowChunk; i-- > 0;) {
      chunk[i].next_free = free_flows_;
      free_flows_ = &chunk[i];
    }
  }
  Flow* f = free_flows_;
  free_flows_ = f->next_free;
  f->remaining_bytes = bytes;
  f->aborted = false;
  f->completed = false;
  f->waiter = {};
  f->next_free = nullptr;
  return f;
}

void FairShareChannel::release_flow(Flow* f) {
  f->next_free = free_flows_;
  free_flows_ = f;
}

void FairShareChannel::complete_flow(Flow* f) {
  f->completed = true;
  if (f->waiter) {
    sim_->schedule_resume(f->waiter, Duration::zero());
    f->waiter = {};
  }
}

sim::Task<void> FairShareChannel::transfer(Bytes n) {
  if (n.is_zero()) co_return;
  total_requested_ += n;
  advance_progress();
  Flow* flow = acquire_flow(static_cast<double>(n.count()));
  flows_.push_back(flow);
  schedule_settle();
  struct Done {
    Flow* flow;
    bool await_ready() const noexcept { return flow->completed; }
    void await_suspend(std::coroutine_handle<> h) const { flow->waiter = h; }
    void await_resume() const noexcept {}
  };
  co_await Done{flow};
  const bool aborted = flow->aborted;
  release_flow(flow);
  if (aborted) {
    throw NetError("flow torn down on channel '" + name_ + "'");
  }
}

std::size_t FairShareChannel::abort_active() {
  advance_progress();
  const std::size_t n = flows_.size();
  for (Flow* f : flows_) {
    f->aborted = true;
    // Un-count the bytes that never made it: conservation totals then treat
    // the stream as truncated at the crash instant.
    total_requested_ -= Bytes(static_cast<std::uint64_t>(
        std::ceil(f->remaining_bytes < 0.0 ? 0.0 : f->remaining_bytes)));
    complete_flow(f);
  }
  aborted_flows_ += n;
  flows_.clear();
  settle_and_rearm();
  trace_flows();
  return n;
}

void FairShareChannel::set_trace(obs::TraceSink* sink, obs::CounterId id) {
  trace_ = sink;
  trace_flows_id_ = id;
  traced_flows_ = -1;
}

void FairShareChannel::trace_flows() {
  if (trace_ == nullptr) return;
  const auto n = static_cast<std::int64_t>(flows_.size());
  if (n == traced_flows_) return;  // sample only on change
  traced_flows_ = n;
  trace_->counter(trace_flows_id_, sim_->now(), n);
}

void FairShareChannel::set_background_load(double fraction) {
  MDWF_ASSERT(fraction >= 0.0 && fraction < 1.0);
  advance_progress();
  background_load_ = fraction;
  settle_and_rearm();
}

void FairShareChannel::advance_progress() {
  const TimePoint now = sim_->now();
  if (!flows_.empty()) {
    const double elapsed_s = (now - last_update_).to_seconds();
    if (elapsed_s > 0.0) {
      const double rate =
          effective_capacity() / static_cast<double>(flows_.size());
      const double progressed = rate * elapsed_s;
      for (Flow* f : flows_) {
        f->remaining_bytes -= progressed;
        if (f->remaining_bytes < 0.0) f->remaining_bytes = 0.0;
      }
    }
  }
  last_update_ = now;
}

void FairShareChannel::schedule_settle() {
  if (settle_pending_) return;
  settle_pending_ = true;
  // Zero-delay: fires after every same-instant arrival has been added, so a
  // burst of N concurrent transfers costs one settle instead of N.  The
  // fluid share is exact either way; only the redundant recomputations go.
  settle_timer_ = sim_->call_after(Duration::zero(), [this] {
    settle_pending_ = false;
    advance_progress();
    settle_and_rearm();
    trace_flows();
  });
}

void FairShareChannel::settle_and_rearm() {
  // Complete flows that have drained (arrival order, like the old list walk).
  std::size_t kept = 0;
  for (Flow* f : flows_) {
    if (f->remaining_bytes <= kEpsilonBytes) {
      // Account completed bytes by what was requested minus residue (the
      // residue is fp noise, so just count the original request).
      complete_flow(f);
    } else {
      flows_[kept++] = f;
    }
  }
  flows_.resize(kept);
  total_completed_ = total_requested_;
  for (const Flow* f : flows_) {
    total_completed_ -= Bytes(static_cast<std::uint64_t>(
        std::ceil(f->remaining_bytes - kEpsilonBytes < 0.0
                      ? 0.0
                      : f->remaining_bytes)));
  }

  if (timer_armed_) {
    sim_->cancel(timer_);
    timer_armed_ = false;
  }
  if (flows_.empty()) return;

  double min_remaining = flows_.front()->remaining_bytes;
  for (const Flow* f : flows_) {
    min_remaining = std::min(min_remaining, f->remaining_bytes);
  }
  const double rate =
      effective_capacity() / static_cast<double>(flows_.size());
  const double secs = min_remaining / rate;
  // Ceil to a whole nanosecond (and at least 1) so the timer never fires
  // before the flow has truly drained and zero-delay spinning is impossible.
  const auto ns = static_cast<std::int64_t>(std::ceil(secs * 1e9));
  timer_ = sim_->call_after(Duration(ns < 1 ? 1 : ns), [this] { on_timer(); });
  timer_armed_ = true;
}

void FairShareChannel::on_timer() {
  timer_armed_ = false;
  advance_progress();
  settle_and_rearm();
  trace_flows();
}

}  // namespace mdwf::net
