#include "mdwf/net/network.hpp"

#include <cmath>

#include "mdwf/common/assert.hpp"
#include "mdwf/sim/primitives.hpp"

namespace mdwf::net {

Network::Network(sim::Simulation& sim, const NetworkParams& params,
                 std::uint32_t node_count)
    : sim_(&sim), params_(params) {
  MDWF_ASSERT(node_count >= 1);
  nodes_.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    Nic nic;
    nic.tx = std::make_unique<FairShareChannel>(
        sim, params.nic_bandwidth_bps, "nic" + std::to_string(i) + ".tx");
    nic.rx = std::make_unique<FairShareChannel>(
        sim, params.nic_bandwidth_bps, "nic" + std::to_string(i) + ".rx");
    nodes_.push_back(std::move(nic));
  }
  if (params.bisection_bandwidth_bps > 0.0) {
    bisection_ = std::make_unique<FairShareChannel>(
        sim, params.bisection_bandwidth_bps, "bisection");
  }
}

FairShareChannel& Network::tx(NodeId n) {
  MDWF_ASSERT(n.value < nodes_.size());
  return *nodes_[n.value].tx;
}

FairShareChannel& Network::rx(NodeId n) {
  MDWF_ASSERT(n.value < nodes_.size());
  return *nodes_[n.value].rx;
}

void Network::set_link_degradation(NodeId n, double fraction) {
  tx(n).set_background_load(fraction);
  rx(n).set_background_load(fraction);
}

void Network::set_link_down(NodeId n, bool down) {
  MDWF_ASSERT(n.value < nodes_.size());
  nodes_[n.value].down = down;
}

bool Network::link_down(NodeId n) const {
  MDWF_ASSERT(n.value < nodes_.size());
  return nodes_[n.value].down;
}

void Network::set_link_isolated(NodeId n, bool isolated) {
  MDWF_ASSERT(n.value < nodes_.size());
  nodes_[n.value].tx_down = isolated;
}

bool Network::link_isolated(NodeId n) const {
  MDWF_ASSERT(n.value < nodes_.size());
  return nodes_[n.value].tx_down;
}

std::size_t Network::crash_node(NodeId n) {
  set_link_down(n, true);
  return tx(n).abort_active() + rx(n).abort_active();
}

void Network::set_link_loss(NodeId n, double p) {
  MDWF_ASSERT(n.value < nodes_.size());
  MDWF_ASSERT(p >= 0.0 && p < 1.0);
  nodes_[n.value].loss = p;
}

double Network::link_loss(NodeId n) const {
  MDWF_ASSERT(n.value < nodes_.size());
  return nodes_[n.value].loss;
}

void Network::check_reachable(NodeId src, NodeId dst) const {
  for (const NodeId n : {src, dst}) {
    if (nodes_[n.value].down) {
      throw NetError("network: node " + std::to_string(n.value) +
                     " unreachable (partition)");
    }
  }
  if (nodes_[src.value].tx_down) {
    throw NetError("network: node " + std::to_string(src.value) +
                   " isolated (one-way partition, outbound dead)");
  }
}

sim::Task<void> Network::transfer(NodeId src, NodeId dst, Bytes payload) {
  if (src == dst) co_return;  // loopback is free at this layer
  check_reachable(src, dst);
  co_await sim_->delay(params_.latency);
  if (payload.is_zero()) co_return;
  // Lossy links retransmit: a packet survives the path only if neither
  // endpoint's link drops it, so the goodput fraction is (1-p_src)(1-p_dst)
  // and the wire carries 1/(that) times the payload.  A tail-drop (the last
  // packet of the flow lost) additionally stalls one RTO.
  Bytes wire = payload;
  const double survive = (1.0 - nodes_[src.value].loss) *
                         (1.0 - nodes_[dst.value].loss);
  if (survive < 1.0) {
    wire = Bytes(static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(payload.count()) / survive)));
    retransmitted_ += wire - payload;
    if (loss_rng_.bernoulli(1.0 - survive)) {
      ++retransmit_timeouts_;
      co_await sim_->delay(params_.retransmit_timeout);
    }
  }
  // The payload occupies every traversed segment simultaneously; completion
  // is gated by the slowest.
  std::vector<sim::Task<void>> segments;
  segments.push_back(tx(src).transfer(wire));
  segments.push_back(rx(dst).transfer(wire));
  if (bisection_) segments.push_back(bisection_->transfer(wire));
  co_await sim::all(*sim_, std::move(segments));
}

sim::Task<void> Network::send_control(NodeId src, NodeId dst) {
  co_await transfer(src, dst, params_.control_message_size);
}

sim::Task<void> Network::rdma_get(NodeId requester, NodeId owner,
                                  Bytes payload) {
  co_await send_control(requester, owner);
  co_await transfer(owner, requester, payload);
}

sim::Task<void> Network::rdma_put(NodeId src, NodeId dst, Bytes payload) {
  co_await transfer(src, dst, payload);
  co_await send_control(dst, src);
}

}  // namespace mdwf::net
