#include "mdwf/dyad/dyad.hpp"

#include <charconv>

#include "mdwf/common/assert.hpp"

namespace mdwf::dyad {

std::string metadata_key(const std::string& path) { return "dyad/" + path; }

std::string DyadMetadata::encode() const {
  std::string s = std::to_string(owner.value) + ":" +
                  std::to_string(size.count()) + ":" + std::to_string(crc);
  // The epoch field is emitted only when nonzero so every healthy put keeps
  // the exact legacy byte format (daemons are born at incarnation 0).
  if (epoch != 0) s += ":" + std::to_string(epoch);
  return s;
}

DyadMetadata DyadMetadata::decode(const std::string& s) {
  const auto colon = s.find(':');
  MDWF_ASSERT_MSG(colon != std::string::npos, "malformed DYAD metadata");
  DyadMetadata m;
  std::uint32_t owner = 0;
  std::uint64_t size = 0;
  const auto colon2 = s.find(':', colon + 1);
  const char* size_end =
      s.data() + (colon2 == std::string::npos ? s.size() : colon2);
  auto r1 = std::from_chars(s.data(), s.data() + colon, owner);
  auto r2 = std::from_chars(s.data() + colon + 1, size_end, size);
  MDWF_ASSERT_MSG(r1.ec == std::errc{} && r2.ec == std::errc{},
                  "malformed DYAD metadata");
  if (colon2 != std::string::npos) {
    const auto colon3 = s.find(':', colon2 + 1);
    const char* crc_end =
        s.data() + (colon3 == std::string::npos ? s.size() : colon3);
    std::uint32_t crc = 0;
    auto r3 = std::from_chars(s.data() + colon2 + 1, crc_end, crc);
    MDWF_ASSERT_MSG(r3.ec == std::errc{}, "malformed DYAD metadata");
    m.crc = crc;
    if (colon3 != std::string::npos) {
      std::uint64_t epoch = 0;
      auto r4 =
          std::from_chars(s.data() + colon3 + 1, s.data() + s.size(), epoch);
      MDWF_ASSERT_MSG(r4.ec == std::errc{}, "malformed DYAD metadata");
      m.epoch = epoch;
    }
  }
  m.owner = net::NodeId{owner};
  m.size = Bytes(size);
  return m;
}

void DyadDomain::add(DyadNode& node) {
  const auto [it, inserted] = nodes_.emplace(node.node().value, &node);
  MDWF_ASSERT_MSG(inserted, "duplicate DYAD node registration");
  (void)it;
}

DyadNode& DyadDomain::at(net::NodeId node) const {
  const auto it = nodes_.find(node.value);
  MDWF_ASSERT_MSG(it != nodes_.end(), "unknown DYAD node");
  return *it->second;
}

void DyadDomain::subscribe(std::string prefix, net::NodeId node) {
  subscriptions_.insert_or_assign(std::move(prefix), node);
}

std::optional<net::NodeId> DyadDomain::subscriber_for(
    const std::string& path) const {
  // Longest matching prefix wins; the table stays small (one entry per
  // consumer rank), so a linear scan is fine.
  std::optional<net::NodeId> best;
  std::size_t best_len = 0;
  for (const auto& [prefix, node] : subscriptions_) {
    if (path.compare(0, prefix.size(), prefix) == 0 &&
        prefix.size() >= best_len) {
      best = node;
      best_len = prefix.size();
    }
  }
  return best;
}

DyadNode::DyadNode(sim::Simulation& sim, const DyadParams& params,
                   DyadDomain& domain, net::NodeId node,
                   fs::LocalFs& local_fs, net::Network& network,
                   kvs::KvsServer& kvs_server,
                   fs::LustreServers* fallback_servers)
    : sim_(&sim),
      params_(params),
      domain_(&domain),
      node_(node),
      local_fs_(&local_fs),
      network_(&network),
      kvs_(sim, kvs_server, node),
      service_slots_(sim, params.broker_concurrency),
      health_(params.health) {
  domain.add(*this);
  if (params.retry.enabled && params.retry.lustre_fallback &&
      fallback_servers != nullptr) {
    fallback_client_ =
        std::make_unique<fs::LustreClient>(sim, *fallback_servers, node);
  }
  if (params.retry.enabled) {
    // Producer half of the recovery protocol: when the broker comes back
    // from an outage, replay exactly the metadata commits it lost.
    kvs_server.add_recovery_listener(
        [this](const std::vector<std::string>& lost) {
          for (const auto& key : lost) {
            const auto it = published_.find(key);
            if (it != published_.end()) {
              sim_->spawn(republish(it->first, it->second));
            }
          }
        });
  }
}

void DyadNode::note_published(const std::string& key, std::string value) {
  published_.insert_or_assign(key, std::move(value));
}

sim::Task<void> DyadNode::republish(std::string key, std::string value) {
  try {
    co_await sim_->delay(params_.mdm_cpu);
    co_await commit_guarded(std::move(key), std::move(value));
    ++republishes_;
    trace_total(trace_republishes_id_, republishes_);
  } catch (const net::NetError&) {
    // This node crashed mid-replay; the consumer's bounded watch + failover
    // protocol covers the still-missing key.
  } catch (const StaleEpochError&) {
    // This node was declared lost while the replay was in flight: the broker
    // fenced the commit.  The migrated incarnation republishes on its own.
  }
}

sim::Task<void> DyadNode::commit_guarded(std::string key, std::string value) {
  const health::HealthParams& hp = params_.health;
  if (!hp.enabled) {
    co_await kvs_.commit(std::move(key), std::move(value));
    co_return;
  }
  Duration backoff = hp.busy_retry_base;
  for (std::uint32_t attempt = 0;; ++attempt) {
    std::exception_ptr busy;
    try {
      co_await kvs_.commit(key, value);
      co_return;
    } catch (const health::ServerBusy&) {
      busy = std::current_exception();
    }
    if (attempt + 1 >= hp.busy_retry_limit) std::rethrow_exception(busy);
    ++health_.busy_retries;
    co_await sim_->delay(backoff);
    backoff = backoff * 2.0;
  }
}

void DyadNode::set_trace(obs::TraceSink* sink, obs::TrackId track) {
  trace_ = sink;
  trace_republishes_id_ = sink->counter_id(track, "dyad.republishes");
  trace_remote_reads_id_ = sink->counter_id(track, "dyad.remote_reads");
  trace_pushes_id_ = sink->counter_id(track, "dyad.pushes");
}

void DyadNode::trace_total(obs::CounterId id, std::uint64_t value) {
  if (trace_ == nullptr) return;
  trace_->counter(id, sim_->now(), static_cast<std::int64_t>(value));
}

sim::Task<void> DyadNode::write_through(std::string path, Bytes size) {
  auto* lc = fallback_client_.get();
  try {
    if (co_await lc->exists(path)) {
      // A previous attempt (torn by a crash, or a re-executed frame) left a
      // replica behind; replace it.
      co_await lc->unlink(path);
    }
    const fs::LustreHandle h = co_await lc->create(path);
    co_await lc->write(h, Bytes::zero(), size);
    co_await lc->close(h, /*wrote=*/true);
    if (ledger_ != nullptr) ledger_->store_lustre(path, node_.value);
  } catch (const net::NetError&) {
    ++lost_writethroughs_;
  } catch (const storage::IoError&) {
    ++lost_writethroughs_;
  } catch (const fs::FsError&) {
    // Raced another writer for the same replica; theirs is as good as ours.
    ++lost_writethroughs_;
  } catch (const StaleEpochError&) {
    // Fenced zombie: the MDS rejected this incarnation's replica commit.
    // The migrated incarnation's own write-through covers the frame.
    ++lost_writethroughs_;
  }
}

sim::Task<void> DyadNode::repair_local(const std::string& path, Bytes size) {
  const fs::InodeId ino = co_await local_fs_->open(path);
  co_await local_fs_->write(ino, Bytes::zero(), size);
  if (params_.durable_puts) co_await local_fs_->fsync(ino);
  if (ledger_ != nullptr) {
    co_await ledger_->charge(size);  // re-tag the rewritten replica
    ledger_->store(path, integrity::Ledger::ssd_location(node_.value),
                   node_.value);
  }
}

sim::Task<void> DyadNode::serve_remote_read(net::NodeId requester,
                                            const std::string& path,
                                            Bytes size) {
  co_await service_slots_.acquire();
  sim::SemaphoreGuard slot(service_slots_);
  co_await sim_->delay(params_.broker_request_cpu);
  // The broker reads from this node's local storage (page-cache hit for
  // freshly produced frames) and streams the payload to the requester.
  const fs::InodeId ino = co_await local_fs_->open(path);
  co_await local_fs_->read(ino, Bytes::zero(), size);
  co_await network_->transfer(node_, requester, size);
  ++remote_reads_;
  trace_total(trace_remote_reads_id_, remote_reads_);
}

sim::Task<void> DyadNode::push_to(net::NodeId dest, std::string path,
                                  Bytes size) {
  try {
    co_await service_slots_.acquire();
    {
      sim::SemaphoreGuard slot(service_slots_);
      co_await sim_->delay(params_.broker_request_cpu);
      const fs::InodeId ino = co_await local_fs_->open(path);
      co_await local_fs_->read(ino, Bytes::zero(), size);
      co_await network_->rdma_put(node_, dest, size);
    }
    DyadNode& peer = domain_->at(dest);
    const std::string staged = peer.params().staging_prefix + path;
    if (peer.local_fs().exists(staged)) co_return;  // consumer pulled it first
    try {
      const fs::InodeId staged_ino =
          co_await peer.local_fs().create(staged, /*exclusive_lock=*/true);
      co_await peer.local_fs().write(staged_ino, Bytes::zero(), size);
      peer.local_fs().lock(staged_ino).unlock_exclusive();
      if (ledger_ != nullptr) {
        const bool bad =
            ledger_->corrupt(path,
                             integrity::Ledger::ssd_location(node_.value)) ||
            ledger_->flip_link(node_.value, dest.value);
        const std::string dest_loc =
            integrity::Ledger::ssd_location(dest.value);
        if (bad) {
          ledger_->store_corrupt(path, dest_loc);
        } else {
          ledger_->store(path, dest_loc, dest.value);
        }
      }
      ++pushes_;
      trace_total(trace_pushes_id_, pushes_);
    } catch (const fs::FsError&) {
      // Lost the race against a concurrent pull-side store; harmless.
    }
  } catch (const net::NetError&) {
    // Push torn mid-stream (crashed endpoint): the consumer simply pulls.
  } catch (const storage::IoError&) {
    // Source read failed; same story.
  } catch (const fs::FsError&) {
    // Source file vanished (torn by a crash before the push ran).
  }
}

DyadProducer::DyadProducer(DyadNode& node, perf::Recorder& recorder)
    : node_(&node), rec_(&recorder) {}

sim::Task<void> DyadProducer::produce(const std::string& path, Bytes size) {
  perf::ScopedRegion produce(*rec_, "dyad_produce");
  auto& fs = node_->local_fs();
  integrity::Ledger* ledger = node_->integrity();
  {
    // Local burst-buffer write under an exclusive flock: consumers on this
    // node synchronize on the lock (warm path).
    perf::ScopedRegion write(*rec_, "dyad_prod_write",
                             perf::Category::kMovement);
    if (fs.exists(path)) {
      // Re-executed frame after a crash: replace the (possibly torn) copy.
      co_await fs.unlink(path);
    }
    const fs::InodeId ino =
        co_await fs.create(path, /*exclusive_lock=*/true);
    co_await node_->simulation().delay(node_->params().flock_cpu);
    co_await fs.write(ino, Bytes::zero(), size);
    if (node_->params().durable_puts) {
      // Commit barrier: the frame is power-loss safe before its metadata
      // becomes visible, so consumers never chase bytes a crash can undo.
      co_await fs.fsync(ino);
    }
    fs.lock(ino).unlock_exclusive();
    if (ledger != nullptr) {
      co_await ledger->charge(size);  // producer-side CRC32C tagging
      ledger->store(path, integrity::Ledger::ssd_location(node_->node().value),
                    node_->node().value);
    }
  }
  {
    // Global namespace management: publish {owner, size, crc} to the KVS.
    // This is DYAD's extra production cost relative to raw XFS.
    perf::ScopedRegion commit(*rec_, "dyad_commit", perf::Category::kMovement);
    co_await node_->simulation().delay(node_->params().mdm_cpu);
    DyadMetadata meta{node_->node(), size,
                      ledger != nullptr ? integrity::Ledger::tag(path, size)
                                        : 0};
    const std::string encoded = meta.encode();
    if (node_->params().retry.enabled) {
      node_->note_published(metadata_key(path), encoded);
    }
    co_await node_->commit_guarded(metadata_key(path), encoded);
  }
  if (node_->params().retry.enabled && node_->params().retry.lustre_fallback &&
      node_->fallback_client() != nullptr) {
    // Keep a cold replica on the shared FS in the background; the consumer
    // failover path reads it when DYAD's own paths stay broken.
    node_->simulation().spawn(node_->write_through(path, size));
  }
  if (node_->params().push_mode) {
    // Dynamic routing: stream the file toward its subscriber in the
    // background; the producer's critical path ends here.
    const auto sub = node_->domain().subscriber_for(path);
    if (sub.has_value() && *sub != node_->node()) {
      node_->simulation().spawn(node_->push_to(*sub, path, size));
    }
  }
}

DyadConsumer::DyadConsumer(DyadNode& node, perf::Recorder& recorder)
    : node_(&node), rec_(&recorder) {}

sim::Task<std::optional<kvs::KvsValue>> DyadConsumer::observed_lookup(
    const std::string& key) {
  if (!node_->params().health.enabled) {
    co_return co_await node_->kvs().lookup(key);
  }
  auto& sim = node_->simulation();
  auto& h = node_->health_state();
  const TimePoint start = sim.now();
  std::optional<kvs::KvsValue> found;
  std::exception_ptr busy;
  try {
    found = co_await node_->kvs().lookup(key);
  } catch (const health::ServerBusy&) {
    busy = std::current_exception();
  }
  if (busy != nullptr) {
    // Shed by the bounded admission queue: a failure for the breaker, and
    // "not visible yet" for the caller, whose retry loop already backs off.
    ++h.busy_retries;
    h.breaker.record_failure(sim.now());
    co_return std::nullopt;
  }
  // Judge the RPC against the distribution learned so far, then fold it in
  // (feeding first would let a slow outlier soften its own verdict).
  const Duration elapsed = sim.now() - start;
  if (h.detector.suspect(elapsed)) {
    h.breaker.record_failure(sim.now());
  } else {
    h.breaker.record_success(sim.now());
  }
  h.detector.observe(elapsed);
  co_return found;
}

// Shared state of one hedged cold fetch.  The parent consume() awaits
// `done`; whichever branch delivers first settles the race and records its
// outcome; the loser checks `settled` at every checkpoint (always placed
// before a byte-moving stage) and stands down.  `failed` is set only when
// both branches exhausted their bounded attempts.
struct DyadConsumer::HedgeRace {
  explicit HedgeRace(sim::Simulation& sim) : done(sim) {}

  sim::Event done;
  bool settled = false;
  bool hedge_won = false;  // the Lustre-replica read delivered the frame
  bool failed = false;     // both branches gave up
  bool primary_gave_up = false;
  bool hedge_gave_up = false;
  // Primary-winner outcome (mirrors the unhedged cold path's locals).
  net::NodeId owner{0};
  bool have_local_copy = false;
  bool in_memory = false;

  void settle_primary(net::NodeId winner_owner, bool local_copy,
                      bool memory) {
    settled = true;
    owner = winner_owner;
    have_local_copy = local_copy;
    in_memory = memory;
    done.trigger();
  }
  void settle_hedge() {
    settled = true;
    hedge_won = true;
    done.trigger();
  }
  void maybe_fail() {
    if (primary_gave_up && hedge_gave_up && !settled) {
      settled = true;
      failed = true;
      done.trigger();
    }
  }
};

sim::Task<void> DyadConsumer::hedge_primary(std::shared_ptr<HedgeRace> race,
                                            std::string path, Bytes size) {
  auto& sim = node_->simulation();
  auto& local = node_->local_fs();
  const DyadRetryParams& retry = node_->params().retry;
  auto& h = node_->health_state();
  const std::string key = metadata_key(path);
  const std::string staged = node_->params().staging_prefix + path;
  try {
    // --- Synchronization: the unhedged cold path's KVS sync, region-free
    // and with cancellation checkpoints.  Gated by the breaker exactly like
    // the unhedged path, but when open there is no probe-and-fail-over
    // here: the replica read *is* the concurrent hedge branch.
    std::optional<kvs::KvsValue> found;
    bool denied = !h.breaker.allow(sim.now());
    if (denied) {
      ++h.breaker_fast_fails;
    } else {
      found = co_await observed_lookup(key);
    }
    std::uint32_t attempt = 0;
    Duration backoff = retry.backoff_base;
    while (!found.has_value() && !race->settled) {
      if (denied) {
        co_await sim.delay(retry.timeout);  // pace the open breaker
      } else {
        ++kvs_retries_;
        const bool visible = co_await node_->kvs().watch_for(key,
                                                             retry.timeout);
        if (race->settled) break;
        if (visible) {
          ++kvs_waits_;
        } else {
          ++recovery_retries_;
          if (++attempt >= retry.max_attempts) {
            race->primary_gave_up = true;
            race->maybe_fail();
            co_return;
          }
          co_await sim.delay(backoff);
          backoff = backoff * retry.backoff_factor;
        }
      }
      if (race->settled) break;
      denied = !h.breaker.allow(sim.now());
      if (denied) {
        ++h.breaker_fast_fails;
      } else {
        found = co_await observed_lookup(key);
      }
    }
    if (race->settled || !found.has_value()) co_return;  // lost the race

    const DyadMetadata meta = DyadMetadata::decode(found->data);
    MDWF_ASSERT_MSG(meta.size == size, "DYAD metadata size mismatch");
    const net::NodeId owner = meta.owner;
    if (node_->fencing() != nullptr &&
        node_->fencing()->stale(FenceToken{owner.value, meta.epoch})) {
      // Owner's incarnation was fenced (declared lost): the primary branch
      // cannot win — stand down and let the replica read deliver.
      race->primary_gave_up = true;
      race->maybe_fail();
      co_return;
    }
    if (owner == node_->node() && !node_->params().force_kvs_sync) {
      // Producer is co-located after all: flock the local file, done.
      co_await sim.delay(node_->params().flock_cpu);
      const fs::InodeId ino = co_await local.open(path);
      co_await local.lock(ino).lock_shared();
      local.lock(ino).unlock_shared();
      if (!race->settled) {
        race->settle_primary(owner, /*local_copy=*/true, /*memory=*/false);
      }
      co_return;
    }
    if (race->settled) co_return;

    // --- dyad_get_data: bounded retries, no failover — the hedge branch
    // owns the Lustre fallback.
    std::uint32_t get_attempt = 0;
    backoff = retry.backoff_base;
    for (;;) {
      std::exception_ptr failure;
      try {
        co_await node_->network().send_control(node_->node(), owner);
        co_await node_->domain().at(owner).serve_remote_read(node_->node(),
                                                             path, size);
      } catch (const net::NetError&) {
        failure = std::current_exception();
      } catch (const storage::IoError&) {
        failure = std::current_exception();
      } catch (const fs::FsError&) {
        failure = std::current_exception();
      }
      if (failure == nullptr) break;
      ++recovery_retries_;
      if (++get_attempt >= retry.max_attempts) {
        race->primary_gave_up = true;
        race->maybe_fail();
        co_return;
      }
      co_await sim.delay(backoff);
      backoff = backoff * retry.backoff_factor;
      if (race->settled) co_return;
    }
    if (race->settled) co_return;  // the hedge delivered while we streamed

    bool in_memory = false;
    if (node_->params().skip_consumer_staging) {
      in_memory = true;
    } else if (!local.exists(staged)) {
      // --- dyad_cons_store: stage into the consumer's node-local storage.
      const fs::InodeId ino = co_await local.create(staged);
      co_await local.write(ino, Bytes::zero(), size);
      if (auto* ledger = node_->integrity()) {
        const bool delivered_bad =
            ledger->corrupt(path,
                            integrity::Ledger::ssd_location(owner.value)) ||
            ledger->flip_link(owner.value, node_->node().value);
        const std::string here =
            integrity::Ledger::ssd_location(node_->node().value);
        if (delivered_bad) {
          ledger->store_corrupt(path, here);
        } else {
          ledger->store(path, here, node_->node().value);
        }
      }
    }
    if (!race->settled) {
      race->settle_primary(owner, /*local_copy=*/false, in_memory);
    }
  } catch (...) {
    // A fault tore something the bounded loops above don't cover (e.g. the
    // colocated flock path); the hedge or the rank-level retry recovers.
    race->primary_gave_up = true;
    race->maybe_fail();
  }
}

sim::Task<void> DyadConsumer::hedge_replica(std::shared_ptr<HedgeRace> race,
                                            std::string path, Bytes size) {
  auto& sim = node_->simulation();
  auto& h = node_->health_state();
  const DyadRetryParams& retry = node_->params().retry;
  // Wait out the hedge delay only while the breaker is closed.  Open means
  // the primary cannot make progress until the cool-down probe; half-open
  // means the primary IS the probe against a server just judged sick — in
  // both cases the replica is the expected winner, so launch immediately.
  // The breaker can also trip mid-delay (the primary's own slow lookups
  // feed the detector), so the wait is chopped into poll-sized slices that
  // re-check the state.  (state() is a pure read — no half-open probe is
  // consumed here.)
  {
    const health::HedgeParams& hedge = node_->params().health.hedge;
    Duration remaining = h.fetch_latency.hedge_delay(hedge);
    while (remaining > Duration::zero() && !race->settled &&
           h.breaker.state() == health::CircuitBreaker::State::kClosed) {
      const Duration step = std::min(remaining, hedge.availability_poll);
      co_await sim.delay(step);
      remaining = remaining - step;
    }
  }
  if (race->settled) {
    // The primary answered inside the hedge delay — the common healthy
    // case; the duplicate fetch never launches.
    ++h.hedge_cancels;
    co_return;
  }
  ++h.hedges;
  auto* lc = node_->fallback_client();
  std::uint32_t attempt = 0;
  try {
    for (;;) {
      // Wait for the producer's background write-through to land.  stat(),
      // not exists(): the replica is visible from create() but readable
      // only once the write has advanced its size — opening early would
      // burn the read-attempt budget on read-past-EOF errors while the
      // writer is mid-flight.  Each probe is metadata-only, so a hedge
      // cancelled here has moved no payload bytes.  Bounded: a replica
      // whose write-through died with its producer never lands, and an
      // unbounded poll would keep the event loop alive forever.
      std::uint32_t polls = 0;
      for (;;) {
        const std::optional<Bytes> replica_size = co_await lc->stat(path);
        if (replica_size.has_value() && *replica_size >= size) break;
        if (race->settled) {
          ++h.hedge_cancels;
          co_return;
        }
        if (++polls > 4096) {
          race->hedge_gave_up = true;
          race->maybe_fail();
          co_return;
        }
        co_await sim.delay(node_->params().health.hedge.availability_poll);
        if (race->settled) {
          ++h.hedge_cancels;
          co_return;
        }
      }
      if (race->settled) {
        ++h.hedge_cancels;
        co_return;
      }
      std::exception_ptr failure;
      try {
        const fs::LustreHandle handle = co_await lc->open(path);
        co_await lc->read(handle, Bytes::zero(), size);
        co_await lc->close(handle, /*wrote=*/false);
      } catch (const net::NetError&) {
        failure = std::current_exception();
      } catch (const storage::IoError&) {
        failure = std::current_exception();
      } catch (const fs::FsError&) {
        failure = std::current_exception();
      }
      if (failure == nullptr) break;
      if (++attempt >= retry.max_attempts) {
        race->hedge_gave_up = true;
        race->maybe_fail();
        co_return;
      }
      if (race->settled) co_return;  // read torn and race over: stand down
      co_await sim.delay(retry.backoff_base);
    }
    if (race->settled) co_return;  // the primary delivered during our read
    ++h.hedge_wins;
    race->settle_hedge();
  } catch (...) {
    race->hedge_gave_up = true;
    race->maybe_fail();
  }
}

sim::Task<void> DyadConsumer::consume(const std::string& path, Bytes size) {
  perf::ScopedRegion consume(*rec_, "dyad_consume");
  auto& sim = node_->simulation();
  auto& local = node_->local_fs();
  const DyadRetryParams& retry = node_->params().retry;
  const health::HealthParams& hp = node_->params().health;
  const bool can_fail_over =
      retry.enabled && retry.lustre_fallback &&
      node_->fallback_client() != nullptr;
  // Breaker and hedge both reroute to the Lustre replica, so they gate
  // traffic only when that path exists; health without failover is
  // detection-only.
  const bool gated = hp.enabled && can_fail_over;

  // --- Synchronization: multi-protocol (flock warm path / KVS cold path).
  const std::string staged_path = node_->params().staging_prefix + path;
  net::NodeId owner = node_->node();
  bool have_local_copy = false;
  bool failed_over = false;  // DYAD paths exhausted; read the Lustre replica
  bool hedge_read_done = false;  // a winning hedge already read the replica
  bool in_memory = false;
  std::string local_copy_path = path;

  const bool produced_here =
      !node_->params().force_kvs_sync && local.exists(path);
  const bool pushed_here =
      !node_->params().force_kvs_sync && local.exists(staged_path);
  const bool hedged =
      gated && hp.hedge.enabled && !produced_here && !pushed_here;
  const TimePoint cold_start = sim.now();

  if (produced_here || pushed_here) {
    // Warm path: data already on this node's storage (produced locally,
    // or streamed here by push-mode routing); a shared flock (against the
    // writer's exclusive lock) is the only sync.
    perf::ScopedRegion fetch(*rec_, "dyad_fetch", perf::Category::kIdle);
    local_copy_path = produced_here ? path : staged_path;
    co_await sim.delay(node_->params().flock_cpu);
    const fs::InodeId ino = co_await local.open(local_copy_path);
    co_await local.lock(ino).lock_shared();
    local.lock(ino).unlock_shared();
    have_local_copy = true;
    ++warm_hits_;
  } else if (hedged) {
    // --- Hedged cold fetch: race the normal DYAD path (KVS sync + RDMA +
    // staging) against a Lustre-replica read launched after the adaptive
    // hedge delay; first response wins, the loser stands down at its next
    // checkpoint.  The branches are region-free (the per-rank recorder
    // nests regions strictly), so the whole race accounts here.
    perf::ScopedRegion fetch(*rec_, "dyad_hedged_fetch",
                             perf::Category::kMovement);
    auto race = std::make_shared<HedgeRace>(sim);
    sim.spawn(hedge_primary(race, path, size));
    sim.spawn(hedge_replica(race, path, size));
    co_await race->done.wait();
    if (race->failed) {
      throw net::NetError("dyad: hedged fetch exhausted every path");
    }
    if (race->hedge_won) {
      failed_over = true;
      hedge_read_done = true;
      in_memory = true;  // consumed straight from the Lustre stream
    } else {
      owner = race->owner;
      have_local_copy = race->have_local_copy;
      in_memory = race->in_memory;
    }
  } else {
    perf::ScopedRegion fetch(*rec_, "dyad_fetch", perf::Category::kIdle);
    auto& h = node_->health_state();
    std::optional<kvs::KvsValue> found;
    bool denied = gated && !h.breaker.allow(sim.now());
    if (denied) {
      ++h.breaker_fast_fails;
    } else {
      found = co_await observed_lookup(metadata_key(path));
    }
    std::uint32_t attempt = 0;
    std::uint32_t rounds = 0;
    Duration backoff = retry.backoff_base;
    while (!found.has_value() && !failed_over) {
      // Global bound on the sync loop: with the recovery protocol on, every
      // round arms fresh timers, so a frame whose producer is permanently
      // lost (and never migrated) would otherwise keep the event loop alive
      // forever and the run would neither finish nor reach the deadlock
      // reporter.  Give up loudly instead; the rank-level retry (or the
      // membership plane's migration) owns what happens next.
      if (++rounds > 4096) {
        throw net::NetError("dyad: metadata for '" + path +
                            "' never appeared (producer lost?)");
      }
      if (denied) {
        // Breaker open: route around the sick broker.  A replica on the
        // shared FS proves the frame was produced — fail over immediately;
        // none yet means the producer is merely behind, so pace a bounded
        // poll on the breaker instead of queueing at the broker.
        bool replica = false;
        {
          perf::ScopedRegion probe(*rec_, "dyad_failover_probe",
                                   perf::Category::kIdle);
          replica = co_await node_->fallback_client()->exists(path);
        }
        if (replica) {
          failed_over = true;
          break;
        }
        perf::ScopedRegion wait_retry(*rec_, "dyad_retry",
                                      perf::Category::kIdle);
        co_await sim.delay(retry.timeout);
      } else {
        ++kvs_retries_;
        if (!retry.enabled) {
          // Healthy-cluster protocol: watches are unbounded — the paper's
          // consumers trust the producer's metadata to arrive eventually.
          perf::ScopedRegion wait(*rec_, "dyad_watch_wait",
                                  perf::Category::kIdle);
          co_await node_->kvs().watch_until_visible(metadata_key(path));
          ++kvs_waits_;
        } else {
          // Recovery protocol: bound each watch, back off exponentially,
          // and after max_attempts fail over to the Lustre cold replica.
          bool visible = false;
          {
            perf::ScopedRegion wait(*rec_, "dyad_watch_wait",
                                    perf::Category::kIdle);
            visible = co_await node_->kvs().watch_for(metadata_key(path),
                                                      retry.timeout);
            if (visible) ++kvs_waits_;
          }
          if (!visible) {
            ++recovery_retries_;
            if (++attempt >= retry.max_attempts) {
              // The namespace stayed silent through a full backoff cycle.
              // A Lustre replica proves the frame was produced and DYAD's
              // paths are what failed: fail over.  No replica means the
              // producer is merely slow — restart the cycle, keep watching.
              if (can_fail_over) {
                bool replica = false;
                {
                  perf::ScopedRegion probe(*rec_, "dyad_failover_probe",
                                           perf::Category::kIdle);
                  replica = co_await node_->fallback_client()->exists(path);
                }
                if (replica) {
                  failed_over = true;
                  break;
                }
              }
              attempt = 0;
              backoff = retry.backoff_base;
            }
            perf::ScopedRegion wait_retry(*rec_, "dyad_retry",
                                          perf::Category::kIdle);
            co_await sim.delay(backoff);
            backoff = backoff * retry.backoff_factor;
          }
        }
      }
      denied = gated && !h.breaker.allow(sim.now());
      if (denied) {
        ++h.breaker_fast_fails;
      } else {
        found = co_await observed_lookup(metadata_key(path));
      }
    }
    if (found.has_value()) {
      const DyadMetadata meta = DyadMetadata::decode(found->data);
      MDWF_ASSERT_MSG(meta.size == size, "DYAD metadata size mismatch");
      owner = meta.owner;
      if (can_fail_over && node_->fencing() != nullptr &&
          node_->fencing()->stale(FenceToken{owner.value, meta.epoch})) {
        // The metadata was published under a since-fenced incarnation: the
        // membership controller declared the owner lost, so the RDMA pull
        // is doomed — go straight to the Lustre cold replica instead of
        // burning the retry budget against a dead broker.
        failed_over = true;
      } else if (owner == node_->node() && !node_->params().force_kvs_sync) {
        // Producer is co-located after all (single-node config): the file
        // is local once the metadata is visible.
        co_await sim.delay(node_->params().flock_cpu);
        const fs::InodeId ino = co_await local.open(path);
        co_await local.lock(ino).lock_shared();
        local.lock(ino).unlock_shared();
        have_local_copy = true;
      }
    }
  }

  const std::string& staged = staged_path;
  if (!hedged && !have_local_copy && !failed_over) {
    // --- dyad_get_data: RDMA the payload from the owner's node-local
    // storage (request to the owner broker, payload streams back).  Under
    // the recovery protocol, fail-fast errors (partitioned fabric, SSD I/O
    // errors on the owner) retry with backoff, then fail over.
    std::uint32_t attempt = 0;
    Duration backoff = retry.backoff_base;
    for (;;) {
      std::exception_ptr failure;
      try {
        perf::ScopedRegion get(*rec_, "dyad_get_data",
                               perf::Category::kMovement);
        co_await node_->network().send_control(node_->node(), owner);
        // The owner-side broker does the local read + streaming; its costs
        // (queueing, read, transfer) land in this region, matching how the
        // paper attributes dyad_get_data to the consumer.
        co_await node_->domain().at(owner).serve_remote_read(node_->node(),
                                                             path, size);
      } catch (const net::NetError&) {
        failure = std::current_exception();
      } catch (const storage::IoError&) {
        failure = std::current_exception();
      } catch (const fs::FsError&) {
        // Owner's replica was torn away by a crash (the file shrank or
        // vanished after the metadata was published).
        failure = std::current_exception();
      }
      if (!failure) break;
      if (!retry.enabled) std::rethrow_exception(failure);
      ++recovery_retries_;
      if (++attempt >= retry.max_attempts) {
        if (!can_fail_over) std::rethrow_exception(failure);
        failed_over = true;
        break;
      }
      {
        perf::ScopedRegion wait_retry(*rec_, "dyad_retry",
                                      perf::Category::kIdle);
        co_await sim.delay(backoff);
      }
      backoff = backoff * retry.backoff_factor;
    }
    if (failed_over) {
      // fall through to the failover read below
    } else if (node_->params().skip_consumer_staging) {
      // Ablation: consume the RDMA stream in place, no local copy.
      in_memory = true;
    } else if (local.exists(staged)) {
      // A push-mode stream landed while we were pulling; use it.
    } else {
      // --- dyad_cons_store: stage into the consumer's node-local storage.
      perf::ScopedRegion store(*rec_, "dyad_cons_store",
                               perf::Category::kMovement);
      const fs::InodeId ino = co_await local.create(staged);
      co_await local.write(ino, Bytes::zero(), size);
      if (auto* ledger = node_->integrity()) {
        // The staged copy inherits owner-replica corruption plus anything
        // the fabric flipped in flight, then draws its own SSD coin.
        const bool delivered_bad =
            ledger->corrupt(path,
                            integrity::Ledger::ssd_location(owner.value)) ||
            ledger->flip_link(owner.value, node_->node().value);
        // Replicas are keyed by the logical frame path + physical location
        // (matching push-mode staging), not by the staging-prefixed name.
        const std::string here =
            integrity::Ledger::ssd_location(node_->node().value);
        if (delivered_bad) {
          ledger->store_corrupt(path, here);
        } else {
          ledger->store(path, here, node_->node().value);
        }
      }
    }
  }

  if (failed_over && !hedge_read_done) {
    // --- dyad_failover_read: last-resort read of the producer's background
    // write-through replica on the shared parallel FS.
    perf::ScopedRegion fo(*rec_, "dyad_failover_read",
                          perf::Category::kMovement);
    auto* lc = node_->fallback_client();
    std::uint32_t polls = 0;
    while (!co_await lc->exists(path)) {
      // Metadata said the frame exists but the write-through is still in
      // flight; poll until the replica lands.  Bounded: the write-through
      // may have died with its producer (lost_writethroughs), in which case
      // only a migrated re-producer can supply the frame — fail loudly so
      // the rank-level retry re-resolves the owner.
      if (++polls > 256) {
        throw net::NetError("dyad: failover replica for '" + path +
                            "' never appeared (write-through lost)");
      }
      co_await sim.delay(retry.timeout);
    }
    const fs::LustreHandle h = co_await lc->open(path);
    co_await lc->read(h, Bytes::zero(), size);
    co_await lc->close(h, /*wrote=*/false);
    ++failovers_;
    in_memory = true;  // consumed straight from the Lustre stream
  }

  if (hp.enabled && !produced_here && !pushed_here) {
    // Every completed cold fetch (hedged or not, failed over or not) feeds
    // the adaptive hedge delay with what the consumer actually experienced.
    node_->health_state().fetch_latency.observe(sim.now() - cold_start);
  }

  // --- read_single_buf: the analytics-facing local read.
  {
    perf::ScopedRegion read(*rec_, "read_single_buf",
                            perf::Category::kMovement);
    co_await sim.delay(node_->params().posix_wrap_cpu);
    if (!in_memory) {
      const std::string& read_path =
          have_local_copy ? local_copy_path : staged;
      const fs::InodeId ino = co_await local.open(read_path);
      co_await local.read(ino, Bytes::zero(), size);
    }
  }

  if (auto* ledger = node_->integrity()) {
    // --- End-to-end verification: recompute the CRC32C over what was just
    // consumed and compare against the producer's tag carried in the KVS
    // metadata.  On mismatch, run a bounded re-fetch protocol (repair the
    // bad replica at its source, pull again) before giving up.
    const std::uint32_t me = node_->node().value;
    const std::string read_path = have_local_copy ? local_copy_path : staged;
    co_await ledger->charge(size);  // consumer-side CRC32C compute
    bool bad = false;
    if (failed_over) {
      bad = ledger->corrupt(path,
                            std::string(integrity::Ledger::kLustreLocation)) ||
            ledger->flip_lustre_read(me);
    } else if (in_memory) {
      bad = ledger->corrupt(path,
                            integrity::Ledger::ssd_location(owner.value)) ||
            ledger->flip_link(owner.value, me);
    } else {
      bad = ledger->corrupt(path, integrity::Ledger::ssd_location(me));
    }
    ledger->count_verify(!bad);
    if (bad) {
      perf::ScopedRegion repair(*rec_, "dyad_refetch",
                                perf::Category::kMovement);
      const std::uint32_t rounds = retry.enabled ? retry.max_attempts : 3;
      for (std::uint32_t i = 0; bad && i < rounds; ++i) {
        ledger->count_refetch();
        try {
          bad = co_await refetch(path, size, owner, failed_over, in_memory,
                                 read_path);
        } catch (const net::NetError&) {
          // Repair path itself hit a fault window; next round retries.
        } catch (const storage::IoError&) {
        } catch (const fs::FsError&) {
        }
        ledger->count_verify(!bad);
      }
      if (bad) ledger->count_unrecovered();
    }
  }
}

sim::Task<bool> DyadConsumer::refetch(const std::string& path, Bytes size,
                                      net::NodeId owner, bool failed_over,
                                      bool in_memory,
                                      const std::string& local_path) {
  auto& local = node_->local_fs();
  integrity::Ledger* ledger = node_->integrity();
  const std::uint32_t me = node_->node().value;

  if (failed_over) {
    // Journal-tail re-read from the shared FS.  If the striped replica is
    // itself corrupt, the owner re-stripes it from producer memory (a fresh
    // write-through) before we pull it again.
    auto* lc = node_->fallback_client();
    if (ledger->corrupt(path,
                        std::string(integrity::Ledger::kLustreLocation))) {
      co_await node_->domain().at(owner).write_through(path, size);
    }
    const fs::LustreHandle h = co_await lc->open(path);
    co_await lc->read(h, Bytes::zero(), size);
    co_await lc->close(h, /*wrote=*/false);
    co_await ledger->charge(size);
    co_return ledger->corrupt(
                  path, std::string(integrity::Ledger::kLustreLocation)) ||
        ledger->flip_lustre_read(me);
  }

  if (owner == node_->node() && local_path != path) {
    // Push-mode warm hit: the bad copy was staged here by a remote producer
    // and the warm path never consulted the KVS.  Learn the true owner so
    // the repair round can go back to the source.
    const auto found = co_await node_->kvs().lookup(metadata_key(path));
    if (found.has_value()) owner = DyadMetadata::decode(found->data).owner;
  }

  if (owner == node_->node()) {
    // Our own producer-local replica went bad: rewrite it from producer
    // memory (rewrite + re-tag), then re-read.
    co_await node_->repair_local(path, size);
    const fs::InodeId ino = co_await local.open(path);
    co_await local.read(ino, Bytes::zero(), size);
    co_await ledger->charge(size);
    co_return ledger->corrupt(path, integrity::Ledger::ssd_location(me));
  }

  // Remote frame: have the owner repair its replica if that is the bad copy,
  // then pull the payload again over RDMA and restage it here.
  DyadNode& owner_node = node_->domain().at(owner);
  const std::string owner_loc = integrity::Ledger::ssd_location(owner.value);
  if (ledger->corrupt(path, owner_loc)) {
    co_await owner_node.repair_local(path, size);
  }
  co_await node_->network().send_control(node_->node(), owner);
  co_await owner_node.serve_remote_read(node_->node(), path, size);
  const bool delivered_bad = ledger->corrupt(path, owner_loc) ||
                             ledger->flip_link(owner.value, me);
  if (in_memory) {
    co_await ledger->charge(size);
    co_return delivered_bad;
  }
  const fs::InodeId ino = co_await local.open(local_path);
  co_await local.write(ino, Bytes::zero(), size);
  const std::string here = integrity::Ledger::ssd_location(me);
  if (delivered_bad) {
    ledger->store_corrupt(path, here);
  } else {
    ledger->store(path, here, me);
  }
  const fs::InodeId rino = co_await local.open(local_path);
  co_await local.read(rino, Bytes::zero(), size);
  co_await ledger->charge(size);
  co_return ledger->corrupt(path, here);
}

}  // namespace mdwf::dyad
