#include "mdwf/dyad/dyad.hpp"

#include <charconv>

#include "mdwf/common/assert.hpp"

namespace mdwf::dyad {

std::string metadata_key(const std::string& path) { return "dyad/" + path; }

std::string DyadMetadata::encode() const {
  return std::to_string(owner.value) + ":" + std::to_string(size.count()) +
         ":" + std::to_string(crc);
}

DyadMetadata DyadMetadata::decode(const std::string& s) {
  const auto colon = s.find(':');
  MDWF_ASSERT_MSG(colon != std::string::npos, "malformed DYAD metadata");
  DyadMetadata m;
  std::uint32_t owner = 0;
  std::uint64_t size = 0;
  const auto colon2 = s.find(':', colon + 1);
  const char* size_end =
      s.data() + (colon2 == std::string::npos ? s.size() : colon2);
  auto r1 = std::from_chars(s.data(), s.data() + colon, owner);
  auto r2 = std::from_chars(s.data() + colon + 1, size_end, size);
  MDWF_ASSERT_MSG(r1.ec == std::errc{} && r2.ec == std::errc{},
                  "malformed DYAD metadata");
  if (colon2 != std::string::npos) {
    std::uint32_t crc = 0;
    auto r3 =
        std::from_chars(s.data() + colon2 + 1, s.data() + s.size(), crc);
    MDWF_ASSERT_MSG(r3.ec == std::errc{}, "malformed DYAD metadata");
    m.crc = crc;
  }
  m.owner = net::NodeId{owner};
  m.size = Bytes(size);
  return m;
}

void DyadDomain::add(DyadNode& node) {
  const auto [it, inserted] = nodes_.emplace(node.node().value, &node);
  MDWF_ASSERT_MSG(inserted, "duplicate DYAD node registration");
  (void)it;
}

DyadNode& DyadDomain::at(net::NodeId node) const {
  const auto it = nodes_.find(node.value);
  MDWF_ASSERT_MSG(it != nodes_.end(), "unknown DYAD node");
  return *it->second;
}

void DyadDomain::subscribe(std::string prefix, net::NodeId node) {
  subscriptions_.insert_or_assign(std::move(prefix), node);
}

std::optional<net::NodeId> DyadDomain::subscriber_for(
    const std::string& path) const {
  // Longest matching prefix wins; the table stays small (one entry per
  // consumer rank), so a linear scan is fine.
  std::optional<net::NodeId> best;
  std::size_t best_len = 0;
  for (const auto& [prefix, node] : subscriptions_) {
    if (path.compare(0, prefix.size(), prefix) == 0 &&
        prefix.size() >= best_len) {
      best = node;
      best_len = prefix.size();
    }
  }
  return best;
}

DyadNode::DyadNode(sim::Simulation& sim, const DyadParams& params,
                   DyadDomain& domain, net::NodeId node,
                   fs::LocalFs& local_fs, net::Network& network,
                   kvs::KvsServer& kvs_server,
                   fs::LustreServers* fallback_servers)
    : sim_(&sim),
      params_(params),
      domain_(&domain),
      node_(node),
      local_fs_(&local_fs),
      network_(&network),
      kvs_(sim, kvs_server, node),
      service_slots_(sim, params.broker_concurrency) {
  domain.add(*this);
  if (params.retry.enabled && params.retry.lustre_fallback &&
      fallback_servers != nullptr) {
    fallback_client_ =
        std::make_unique<fs::LustreClient>(sim, *fallback_servers, node);
  }
  if (params.retry.enabled) {
    // Producer half of the recovery protocol: when the broker comes back
    // from an outage, replay exactly the metadata commits it lost.
    kvs_server.add_recovery_listener(
        [this](const std::vector<std::string>& lost) {
          for (const auto& key : lost) {
            const auto it = published_.find(key);
            if (it != published_.end()) {
              sim_->spawn(republish(it->first, it->second));
            }
          }
        });
  }
}

void DyadNode::note_published(const std::string& key, std::string value) {
  published_.insert_or_assign(key, std::move(value));
}

sim::Task<void> DyadNode::republish(std::string key, std::string value) {
  try {
    co_await sim_->delay(params_.mdm_cpu);
    co_await kvs_.commit(std::move(key), std::move(value));
    ++republishes_;
    trace_total("dyad.republishes", republishes_);
  } catch (const net::NetError&) {
    // This node crashed mid-replay; the consumer's bounded watch + failover
    // protocol covers the still-missing key.
  }
}

void DyadNode::set_trace(obs::TraceSink* sink, obs::TrackId track) {
  trace_ = sink;
  trace_track_ = track;
}

void DyadNode::trace_total(const char* name, std::uint64_t value) {
  if (trace_ == nullptr) return;
  trace_->counter(trace_track_, name, sim_->now(),
                  static_cast<std::int64_t>(value));
}

sim::Task<void> DyadNode::write_through(std::string path, Bytes size) {
  auto* lc = fallback_client_.get();
  try {
    if (co_await lc->exists(path)) {
      // A previous attempt (torn by a crash, or a re-executed frame) left a
      // replica behind; replace it.
      co_await lc->unlink(path);
    }
    const fs::LustreHandle h = co_await lc->create(path);
    co_await lc->write(h, Bytes::zero(), size);
    co_await lc->close(h, /*wrote=*/true);
    if (ledger_ != nullptr) ledger_->store_lustre(path, node_.value);
  } catch (const net::NetError&) {
    ++lost_writethroughs_;
  } catch (const storage::IoError&) {
    ++lost_writethroughs_;
  } catch (const fs::FsError&) {
    // Raced another writer for the same replica; theirs is as good as ours.
    ++lost_writethroughs_;
  }
}

sim::Task<void> DyadNode::repair_local(const std::string& path, Bytes size) {
  const fs::InodeId ino = co_await local_fs_->open(path);
  co_await local_fs_->write(ino, Bytes::zero(), size);
  if (params_.durable_puts) co_await local_fs_->fsync(ino);
  if (ledger_ != nullptr) {
    co_await ledger_->charge(size);  // re-tag the rewritten replica
    ledger_->store(path, integrity::Ledger::ssd_location(node_.value),
                   node_.value);
  }
}

sim::Task<void> DyadNode::serve_remote_read(net::NodeId requester,
                                            const std::string& path,
                                            Bytes size) {
  co_await service_slots_.acquire();
  sim::SemaphoreGuard slot(service_slots_);
  co_await sim_->delay(params_.broker_request_cpu);
  // The broker reads from this node's local storage (page-cache hit for
  // freshly produced frames) and streams the payload to the requester.
  const fs::InodeId ino = co_await local_fs_->open(path);
  co_await local_fs_->read(ino, Bytes::zero(), size);
  co_await network_->transfer(node_, requester, size);
  ++remote_reads_;
  trace_total("dyad.remote_reads", remote_reads_);
}

sim::Task<void> DyadNode::push_to(net::NodeId dest, std::string path,
                                  Bytes size) {
  try {
    co_await service_slots_.acquire();
    {
      sim::SemaphoreGuard slot(service_slots_);
      co_await sim_->delay(params_.broker_request_cpu);
      const fs::InodeId ino = co_await local_fs_->open(path);
      co_await local_fs_->read(ino, Bytes::zero(), size);
      co_await network_->rdma_put(node_, dest, size);
    }
    DyadNode& peer = domain_->at(dest);
    const std::string staged = peer.params().staging_prefix + path;
    if (peer.local_fs().exists(staged)) co_return;  // consumer pulled it first
    try {
      const fs::InodeId staged_ino =
          co_await peer.local_fs().create(staged, /*exclusive_lock=*/true);
      co_await peer.local_fs().write(staged_ino, Bytes::zero(), size);
      peer.local_fs().lock(staged_ino).unlock_exclusive();
      if (ledger_ != nullptr) {
        const bool bad =
            ledger_->corrupt(path,
                             integrity::Ledger::ssd_location(node_.value)) ||
            ledger_->flip_link(node_.value, dest.value);
        const std::string dest_loc =
            integrity::Ledger::ssd_location(dest.value);
        if (bad) {
          ledger_->store_corrupt(path, dest_loc);
        } else {
          ledger_->store(path, dest_loc, dest.value);
        }
      }
      ++pushes_;
      trace_total("dyad.pushes", pushes_);
    } catch (const fs::FsError&) {
      // Lost the race against a concurrent pull-side store; harmless.
    }
  } catch (const net::NetError&) {
    // Push torn mid-stream (crashed endpoint): the consumer simply pulls.
  } catch (const storage::IoError&) {
    // Source read failed; same story.
  } catch (const fs::FsError&) {
    // Source file vanished (torn by a crash before the push ran).
  }
}

DyadProducer::DyadProducer(DyadNode& node, perf::Recorder& recorder)
    : node_(&node), rec_(&recorder) {}

sim::Task<void> DyadProducer::produce(const std::string& path, Bytes size) {
  perf::ScopedRegion produce(*rec_, "dyad_produce");
  auto& fs = node_->local_fs();
  integrity::Ledger* ledger = node_->integrity();
  {
    // Local burst-buffer write under an exclusive flock: consumers on this
    // node synchronize on the lock (warm path).
    perf::ScopedRegion write(*rec_, "dyad_prod_write",
                             perf::Category::kMovement);
    if (fs.exists(path)) {
      // Re-executed frame after a crash: replace the (possibly torn) copy.
      co_await fs.unlink(path);
    }
    const fs::InodeId ino =
        co_await fs.create(path, /*exclusive_lock=*/true);
    co_await node_->simulation().delay(node_->params().flock_cpu);
    co_await fs.write(ino, Bytes::zero(), size);
    if (node_->params().durable_puts) {
      // Commit barrier: the frame is power-loss safe before its metadata
      // becomes visible, so consumers never chase bytes a crash can undo.
      co_await fs.fsync(ino);
    }
    fs.lock(ino).unlock_exclusive();
    if (ledger != nullptr) {
      co_await ledger->charge(size);  // producer-side CRC32C tagging
      ledger->store(path, integrity::Ledger::ssd_location(node_->node().value),
                    node_->node().value);
    }
  }
  {
    // Global namespace management: publish {owner, size, crc} to the KVS.
    // This is DYAD's extra production cost relative to raw XFS.
    perf::ScopedRegion commit(*rec_, "dyad_commit", perf::Category::kMovement);
    co_await node_->simulation().delay(node_->params().mdm_cpu);
    DyadMetadata meta{node_->node(), size,
                      ledger != nullptr ? integrity::Ledger::tag(path, size)
                                        : 0};
    const std::string encoded = meta.encode();
    if (node_->params().retry.enabled) {
      node_->note_published(metadata_key(path), encoded);
    }
    co_await node_->kvs().commit(metadata_key(path), encoded);
  }
  if (node_->params().retry.enabled && node_->params().retry.lustre_fallback &&
      node_->fallback_client() != nullptr) {
    // Keep a cold replica on the shared FS in the background; the consumer
    // failover path reads it when DYAD's own paths stay broken.
    node_->simulation().spawn(node_->write_through(path, size));
  }
  if (node_->params().push_mode) {
    // Dynamic routing: stream the file toward its subscriber in the
    // background; the producer's critical path ends here.
    const auto sub = node_->domain().subscriber_for(path);
    if (sub.has_value() && *sub != node_->node()) {
      node_->simulation().spawn(node_->push_to(*sub, path, size));
    }
  }
}

DyadConsumer::DyadConsumer(DyadNode& node, perf::Recorder& recorder)
    : node_(&node), rec_(&recorder) {}

sim::Task<void> DyadConsumer::consume(const std::string& path, Bytes size) {
  perf::ScopedRegion consume(*rec_, "dyad_consume");
  auto& sim = node_->simulation();
  auto& local = node_->local_fs();
  const DyadRetryParams& retry = node_->params().retry;
  const bool can_fail_over =
      retry.enabled && retry.lustre_fallback &&
      node_->fallback_client() != nullptr;

  // --- Synchronization: multi-protocol (flock warm path / KVS cold path).
  const std::string staged_path = node_->params().staging_prefix + path;
  net::NodeId owner = node_->node();
  bool have_local_copy = false;
  bool failed_over = false;  // DYAD paths exhausted; read the Lustre replica
  std::string local_copy_path = path;
  {
    perf::ScopedRegion fetch(*rec_, "dyad_fetch", perf::Category::kIdle);
    const bool produced_here =
        !node_->params().force_kvs_sync && local.exists(path);
    const bool pushed_here =
        !node_->params().force_kvs_sync && local.exists(staged_path);
    if (produced_here || pushed_here) {
      // Warm path: data already on this node's storage (produced locally,
      // or streamed here by push-mode routing); a shared flock (against the
      // writer's exclusive lock) is the only sync.
      local_copy_path = produced_here ? path : staged_path;
      co_await sim.delay(node_->params().flock_cpu);
      const fs::InodeId ino = co_await local.open(local_copy_path);
      co_await local.lock(ino).lock_shared();
      local.lock(ino).unlock_shared();
      have_local_copy = true;
      ++warm_hits_;
    } else {
      auto found = co_await node_->kvs().lookup(metadata_key(path));
      std::uint32_t attempt = 0;
      Duration backoff = retry.backoff_base;
      while (!found.has_value()) {
        ++kvs_retries_;
        if (!retry.enabled) {
          // Healthy-cluster protocol: watches are unbounded — the paper's
          // consumers trust the producer's metadata to arrive eventually.
          perf::ScopedRegion wait(*rec_, "dyad_watch_wait",
                                  perf::Category::kIdle);
          co_await node_->kvs().watch_until_visible(metadata_key(path));
          ++kvs_waits_;
        } else {
          // Recovery protocol: bound each watch, back off exponentially,
          // and after max_attempts fail over to the Lustre cold replica.
          bool visible = false;
          {
            perf::ScopedRegion wait(*rec_, "dyad_watch_wait",
                                    perf::Category::kIdle);
            visible = co_await node_->kvs().watch_for(metadata_key(path),
                                                      retry.timeout);
            if (visible) ++kvs_waits_;
          }
          if (!visible) {
            ++recovery_retries_;
            if (++attempt >= retry.max_attempts) {
              // The namespace stayed silent through a full backoff cycle.
              // A Lustre replica proves the frame was produced and DYAD's
              // paths are what failed: fail over.  No replica means the
              // producer is merely slow — restart the cycle, keep watching.
              if (can_fail_over) {
                bool replica = false;
                {
                  perf::ScopedRegion probe(*rec_, "dyad_failover_probe",
                                           perf::Category::kIdle);
                  replica = co_await node_->fallback_client()->exists(path);
                }
                if (replica) {
                  failed_over = true;
                  break;
                }
              }
              attempt = 0;
              backoff = retry.backoff_base;
            }
            perf::ScopedRegion wait_retry(*rec_, "dyad_retry",
                                          perf::Category::kIdle);
            co_await sim.delay(backoff);
            backoff = backoff * retry.backoff_factor;
          }
        }
        found = co_await node_->kvs().lookup(metadata_key(path));
      }
      if (found.has_value()) {
        const DyadMetadata meta = DyadMetadata::decode(found->data);
        MDWF_ASSERT_MSG(meta.size == size, "DYAD metadata size mismatch");
        owner = meta.owner;
        if (owner == node_->node() && !node_->params().force_kvs_sync) {
          // Producer is co-located after all (single-node config): the file
          // is local once the metadata is visible.
          co_await sim.delay(node_->params().flock_cpu);
          const fs::InodeId ino = co_await local.open(path);
          co_await local.lock(ino).lock_shared();
          local.lock(ino).unlock_shared();
          have_local_copy = true;
        }
      }
    }
  }

  const std::string& staged = staged_path;
  bool in_memory = false;
  if (!have_local_copy && !failed_over) {
    // --- dyad_get_data: RDMA the payload from the owner's node-local
    // storage (request to the owner broker, payload streams back).  Under
    // the recovery protocol, fail-fast errors (partitioned fabric, SSD I/O
    // errors on the owner) retry with backoff, then fail over.
    std::uint32_t attempt = 0;
    Duration backoff = retry.backoff_base;
    for (;;) {
      std::exception_ptr failure;
      try {
        perf::ScopedRegion get(*rec_, "dyad_get_data",
                               perf::Category::kMovement);
        co_await node_->network().send_control(node_->node(), owner);
        // The owner-side broker does the local read + streaming; its costs
        // (queueing, read, transfer) land in this region, matching how the
        // paper attributes dyad_get_data to the consumer.
        co_await node_->domain().at(owner).serve_remote_read(node_->node(),
                                                             path, size);
      } catch (const net::NetError&) {
        failure = std::current_exception();
      } catch (const storage::IoError&) {
        failure = std::current_exception();
      } catch (const fs::FsError&) {
        // Owner's replica was torn away by a crash (the file shrank or
        // vanished after the metadata was published).
        failure = std::current_exception();
      }
      if (!failure) break;
      if (!retry.enabled) std::rethrow_exception(failure);
      ++recovery_retries_;
      if (++attempt >= retry.max_attempts) {
        if (!can_fail_over) std::rethrow_exception(failure);
        failed_over = true;
        break;
      }
      {
        perf::ScopedRegion wait_retry(*rec_, "dyad_retry",
                                      perf::Category::kIdle);
        co_await sim.delay(backoff);
      }
      backoff = backoff * retry.backoff_factor;
    }
    if (failed_over) {
      // fall through to the failover read below
    } else if (node_->params().skip_consumer_staging) {
      // Ablation: consume the RDMA stream in place, no local copy.
      in_memory = true;
    } else if (local.exists(staged)) {
      // A push-mode stream landed while we were pulling; use it.
    } else {
      // --- dyad_cons_store: stage into the consumer's node-local storage.
      perf::ScopedRegion store(*rec_, "dyad_cons_store",
                               perf::Category::kMovement);
      const fs::InodeId ino = co_await local.create(staged);
      co_await local.write(ino, Bytes::zero(), size);
      if (auto* ledger = node_->integrity()) {
        // The staged copy inherits owner-replica corruption plus anything
        // the fabric flipped in flight, then draws its own SSD coin.
        const bool delivered_bad =
            ledger->corrupt(path,
                            integrity::Ledger::ssd_location(owner.value)) ||
            ledger->flip_link(owner.value, node_->node().value);
        // Replicas are keyed by the logical frame path + physical location
        // (matching push-mode staging), not by the staging-prefixed name.
        const std::string here =
            integrity::Ledger::ssd_location(node_->node().value);
        if (delivered_bad) {
          ledger->store_corrupt(path, here);
        } else {
          ledger->store(path, here, node_->node().value);
        }
      }
    }
  }

  if (failed_over) {
    // --- dyad_failover_read: last-resort read of the producer's background
    // write-through replica on the shared parallel FS.
    perf::ScopedRegion fo(*rec_, "dyad_failover_read",
                          perf::Category::kMovement);
    auto* lc = node_->fallback_client();
    while (!co_await lc->exists(path)) {
      // Metadata said the frame exists but the write-through is still in
      // flight; poll until the replica lands.
      co_await sim.delay(retry.timeout);
    }
    const fs::LustreHandle h = co_await lc->open(path);
    co_await lc->read(h, Bytes::zero(), size);
    co_await lc->close(h, /*wrote=*/false);
    ++failovers_;
    in_memory = true;  // consumed straight from the Lustre stream
  }

  // --- read_single_buf: the analytics-facing local read.
  {
    perf::ScopedRegion read(*rec_, "read_single_buf",
                            perf::Category::kMovement);
    co_await sim.delay(node_->params().posix_wrap_cpu);
    if (!in_memory) {
      const std::string& read_path =
          have_local_copy ? local_copy_path : staged;
      const fs::InodeId ino = co_await local.open(read_path);
      co_await local.read(ino, Bytes::zero(), size);
    }
  }

  if (auto* ledger = node_->integrity()) {
    // --- End-to-end verification: recompute the CRC32C over what was just
    // consumed and compare against the producer's tag carried in the KVS
    // metadata.  On mismatch, run a bounded re-fetch protocol (repair the
    // bad replica at its source, pull again) before giving up.
    const std::uint32_t me = node_->node().value;
    const std::string read_path = have_local_copy ? local_copy_path : staged;
    co_await ledger->charge(size);  // consumer-side CRC32C compute
    bool bad = false;
    if (failed_over) {
      bad = ledger->corrupt(path,
                            std::string(integrity::Ledger::kLustreLocation)) ||
            ledger->flip_lustre_read(me);
    } else if (in_memory) {
      bad = ledger->corrupt(path,
                            integrity::Ledger::ssd_location(owner.value)) ||
            ledger->flip_link(owner.value, me);
    } else {
      bad = ledger->corrupt(path, integrity::Ledger::ssd_location(me));
    }
    ledger->count_verify(!bad);
    if (bad) {
      perf::ScopedRegion repair(*rec_, "dyad_refetch",
                                perf::Category::kMovement);
      const std::uint32_t rounds = retry.enabled ? retry.max_attempts : 3;
      for (std::uint32_t i = 0; bad && i < rounds; ++i) {
        ledger->count_refetch();
        try {
          bad = co_await refetch(path, size, owner, failed_over, in_memory,
                                 read_path);
        } catch (const net::NetError&) {
          // Repair path itself hit a fault window; next round retries.
        } catch (const storage::IoError&) {
        } catch (const fs::FsError&) {
        }
        ledger->count_verify(!bad);
      }
      if (bad) ledger->count_unrecovered();
    }
  }
}

sim::Task<bool> DyadConsumer::refetch(const std::string& path, Bytes size,
                                      net::NodeId owner, bool failed_over,
                                      bool in_memory,
                                      const std::string& local_path) {
  auto& local = node_->local_fs();
  integrity::Ledger* ledger = node_->integrity();
  const std::uint32_t me = node_->node().value;

  if (failed_over) {
    // Journal-tail re-read from the shared FS.  If the striped replica is
    // itself corrupt, the owner re-stripes it from producer memory (a fresh
    // write-through) before we pull it again.
    auto* lc = node_->fallback_client();
    if (ledger->corrupt(path,
                        std::string(integrity::Ledger::kLustreLocation))) {
      co_await node_->domain().at(owner).write_through(path, size);
    }
    const fs::LustreHandle h = co_await lc->open(path);
    co_await lc->read(h, Bytes::zero(), size);
    co_await lc->close(h, /*wrote=*/false);
    co_await ledger->charge(size);
    co_return ledger->corrupt(
                  path, std::string(integrity::Ledger::kLustreLocation)) ||
        ledger->flip_lustre_read(me);
  }

  if (owner == node_->node() && local_path != path) {
    // Push-mode warm hit: the bad copy was staged here by a remote producer
    // and the warm path never consulted the KVS.  Learn the true owner so
    // the repair round can go back to the source.
    const auto found = co_await node_->kvs().lookup(metadata_key(path));
    if (found.has_value()) owner = DyadMetadata::decode(found->data).owner;
  }

  if (owner == node_->node()) {
    // Our own producer-local replica went bad: rewrite it from producer
    // memory (rewrite + re-tag), then re-read.
    co_await node_->repair_local(path, size);
    const fs::InodeId ino = co_await local.open(path);
    co_await local.read(ino, Bytes::zero(), size);
    co_await ledger->charge(size);
    co_return ledger->corrupt(path, integrity::Ledger::ssd_location(me));
  }

  // Remote frame: have the owner repair its replica if that is the bad copy,
  // then pull the payload again over RDMA and restage it here.
  DyadNode& owner_node = node_->domain().at(owner);
  const std::string owner_loc = integrity::Ledger::ssd_location(owner.value);
  if (ledger->corrupt(path, owner_loc)) {
    co_await owner_node.repair_local(path, size);
  }
  co_await node_->network().send_control(node_->node(), owner);
  co_await owner_node.serve_remote_read(node_->node(), path, size);
  const bool delivered_bad = ledger->corrupt(path, owner_loc) ||
                             ledger->flip_link(owner.value, me);
  if (in_memory) {
    co_await ledger->charge(size);
    co_return delivered_bad;
  }
  const fs::InodeId ino = co_await local.open(local_path);
  co_await local.write(ino, Bytes::zero(), size);
  const std::string here = integrity::Ledger::ssd_location(me);
  if (delivered_bad) {
    ledger->store_corrupt(path, here);
  } else {
    ledger->store(path, here, me);
  }
  const fs::InodeId rino = co_await local.open(local_path);
  co_await local.read(rino, Bytes::zero(), size);
  co_await ledger->charge(size);
  co_return ledger->corrupt(path, here);
}

}  // namespace mdwf::dyad
