// DYAD middleware reimplementation (Dynamic and Asynchronous Data
// Streamliner, LLNL flux-framework/dyad) over the simulated testbed.
//
// Behaviour modelled from the paper (Secs. III-A, IV-C/D/E and Fig. 9):
//
//   Producer  - writes each frame to *node-local* storage (burst buffer),
//               then publishes {owner, size} metadata to the Flux KVS;
//               the metadata management is DYAD's extra production cost
//               (the paper's 1.4x over raw XFS).  The producer never waits
//               for the consumer: production and consumption pipeline.
//
//   Consumer  - multi-protocol automatic synchronization:
//               * warm path: if the file is already on this node's local
//                 storage, availability is checked with a cheap shared
//                 flock (producer holds it exclusively while writing);
//               * cold path: KVS lookup (dyad_fetch); if the metadata is
//                 not yet visible, block on a KVS watch until it is.
//               Remote data then moves with RDMA from the owner's
//               node-local storage (dyad_get_data), is staged into the
//               consumer's local storage (dyad_cons_store), and finally
//               read by the analytics (read_single_buf) - the exact call
//               tree of the paper's Fig. 9.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "mdwf/common/bytes.hpp"
#include "mdwf/fs/local_fs.hpp"
#include "mdwf/fs/lustre.hpp"
#include "mdwf/health/health.hpp"
#include "mdwf/integrity/ledger.hpp"
#include "mdwf/kvs/kvs.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/sim/simulation.hpp"

namespace mdwf::dyad {

// Recovery protocol knobs (DESIGN.md "Fault model and recovery").  All off
// by default: the healthy-cluster paths the paper measures are unchanged.
struct DyadRetryParams {
  // Master switch.  Enables consumer RPC timeout+retry and producer-side
  // metadata re-publish after a broker recovery.
  bool enabled = false;
  // Per-attempt bound on a KVS metadata watch; a remote read that fails
  // fast (partition) retries immediately after backoff.
  Duration timeout = Duration::milliseconds(40);
  // Exponential backoff between attempts.
  Duration backoff_base = Duration::milliseconds(5);
  double backoff_factor = 2.0;
  std::uint32_t max_attempts = 6;
  // After max_attempts the consumer fails over to reading the frame from
  // the shared parallel FS; producers write frames through to Lustre in the
  // background to keep that cold replica available.
  bool lustre_fallback = false;
};

struct DyadParams {
  // CPU on the producer per publish (global namespace management).
  Duration mdm_cpu = Duration::microseconds(8);
  // Warm-path flock acquire/release overhead.
  Duration flock_cpu = Duration::microseconds(10);
  // CPU added to intercepted POSIX reads (DYAD wraps the I/O calls; the
  // paper measures DYAD data movement ~1.4x raw XFS in both directions).
  Duration posix_wrap_cpu = Duration::microseconds(30);
  // Broker-side CPU to service one remote-read request.
  Duration broker_request_cpu = Duration::microseconds(50);
  // Concurrent remote reads served per broker.
  std::int64_t broker_concurrency = 8;
  // Staging prefix on the consumer-side local storage.
  std::string staging_prefix = "dyad_cache/";

  // --- Ablation switches (DESIGN.md Sec. 3) -------------------------------
  // Disable the flock warm path: every consume goes through the KVS even
  // when the data is already node-local (tests the value of multi-protocol
  // synchronization).
  bool force_kvs_sync = false;
  // Skip dyad_cons_store: the consumer reads the RDMA stream directly
  // instead of staging into node-local storage first (tests the cost of the
  // extra local copy vs re-read locality).
  bool skip_consumer_staging = false;
  // Dynamic data routing: producers push freshly written files to the node
  // that subscribed to their path prefix (asynchronously, overlapping the
  // next MD stride).  Consumers then find the data already staged locally
  // and synchronize via the cheap flock path instead of pulling over RDMA.
  bool push_mode = false;

  // --- Resilience (mdwf::fault) -------------------------------------------
  DyadRetryParams retry{};
  // --- Gray-failure mitigation (mdwf::health) -----------------------------
  // Detector + circuit breaker on the consumer's KVS lookups, request
  // hedging against the Lustre cold replica, and bounded server admission
  // queues.  The breaker and the hedge route around a sick broker via the
  // retry protocol's failover path, so they engage only when
  // retry.enabled && retry.lustre_fallback; health.enabled alone never
  // changes a healthy run's timing.
  health::HealthParams health{};
  // Durable puts: fsync each produced frame before publishing its metadata
  // (the commit barrier of the crash-consistency model).  Off by default so
  // healthy-cluster timings match the paper; crash-aware ensembles turn it
  // on, accepting the fsync cost as the price of checkpointable progress.
  bool durable_puts = false;
};

class DyadNode;

// Per-node gray-failure mitigation state, shared by every rank on the node
// (they all talk to the same broker, so latency samples and breaker state
// compose).  Counters are cumulative over the node's lifetime.
struct NodeHealth {
  explicit NodeHealth(const health::HealthParams& params)
      : detector(params.detector), breaker(params.breaker) {}

  health::FailureDetector detector;
  health::CircuitBreaker breaker;
  // Cold-fetch latencies (KVS sync + data movement); feeds the adaptive
  // hedge delay.  Warm flock hits are excluded — they are never hedged.
  health::LatencyTracker fetch_latency;
  std::uint64_t hedges = 0;        // duplicate fetches actually launched
  std::uint64_t hedge_wins = 0;    // races the replica read finished first
  std::uint64_t hedge_cancels = 0; // hedges stood down before their read
  std::uint64_t breaker_fast_fails = 0;  // lookups skipped while open
  std::uint64_t busy_retries = 0;  // ServerBusy replies retried client-side
};

// Registry of every DYAD-enabled node in the workflow: consumers resolve a
// frame's owner NodeId to that node's broker through the domain, and (in
// push mode) producers resolve path-prefix subscriptions to destinations.
class DyadDomain {
 public:
  void add(DyadNode& node);
  DyadNode& at(net::NodeId node) const;
  std::size_t size() const { return nodes_.size(); }

  // Push-mode routing table: files whose path starts with `prefix` are
  // streamed to `node` as they are produced.
  void subscribe(std::string prefix, net::NodeId node);
  std::optional<net::NodeId> subscriber_for(const std::string& path) const;

 private:
  std::map<std::uint32_t, DyadNode*> nodes_;
  std::map<std::string, net::NodeId> subscriptions_;  // prefix -> node
};

// Per-node DYAD runtime: broker module plus client context.  One instance
// per compute node, shared by every producer/consumer rank on that node.
// Registers itself with `domain` on construction.
class DyadNode {
 public:
  // `fallback_servers`, when provided and `params.retry.lustre_fallback` is
  // set, backs the failover path: producers write frames through to Lustre
  // and consumers read from it when DYAD's own paths stay broken.
  DyadNode(sim::Simulation& sim, const DyadParams& params, DyadDomain& domain,
           net::NodeId node, fs::LocalFs& local_fs, net::Network& network,
           kvs::KvsServer& kvs_server,
           fs::LustreServers* fallback_servers = nullptr);

  net::NodeId node() const { return node_; }
  fs::LocalFs& local_fs() { return *local_fs_; }
  net::Network& network() { return *network_; }
  kvs::KvsClient& kvs() { return kvs_; }
  const DyadParams& params() const { return params_; }
  sim::Simulation& simulation() { return *sim_; }
  DyadDomain& domain() { return *domain_; }

  // Broker service: reads `path` (`size` bytes) from this node's local
  // storage and streams it to `requester` via RDMA.  Called (awaited) by
  // the remote consumer's dyad_get_data.
  sim::Task<void> serve_remote_read(net::NodeId requester,
                                    const std::string& path, Bytes size);

  // Push-mode broker service: streams `path` to `dest` and stages it in
  // dest's local storage under the staging prefix.  Races with a consumer
  // pulling the same file are benign (first stager wins).
  sim::Task<void> push_to(net::NodeId dest, std::string path, Bytes size);

  std::uint64_t remote_reads_served() const { return remote_reads_; }
  std::uint64_t pushes_sent() const { return pushes_; }

  // --- Recovery (mdwf::fault) ---------------------------------------------
  // Lustre client for the failover cold tier; nullptr when not configured.
  fs::LustreClient* fallback_client() { return fallback_client_.get(); }
  // Producer bookkeeping: metadata this node has published, so a broker
  // recovery can replay exactly the lost commits.
  void note_published(const std::string& key, std::string value);
  // Background write-through of a produced frame to the Lustre cold tier.
  // Guarded: errors (crashed writer, torn fabric) lose the replica, never
  // the run; a pre-existing (possibly torn) replica is replaced.
  sim::Task<void> write_through(std::string path, Bytes size);
  std::uint64_t republishes() const { return republishes_; }
  std::uint64_t lost_writethroughs() const { return lost_writethroughs_; }

  // --- Gray-failure mitigation (mdwf::health) -----------------------------
  NodeHealth& health_state() { return health_; }
  // KVS commit with the client-side busy-retry loop: ServerBusy replies
  // from the bounded admission queue back off exponentially (doubling from
  // health.busy_retry_base) and retry; the last busy reply is rethrown.
  // Plain commit when health is off.
  sim::Task<void> commit_guarded(std::string key, std::string value);

  // --- Fencing (mdwf::membership) -----------------------------------------
  // Controller's incarnation registry.  Consumers consult it to spot
  // metadata published under a since-fenced incarnation (its owner node was
  // declared lost) and fail over to the Lustre cold replica without burning
  // the RDMA retry budget; the authoritative commit-time rejection lives in
  // the KVS broker itself.  Not owned; nullptr = fencing off.
  void set_fencing(FenceRegistry* fences) { fences_ = fences; }
  FenceRegistry* fencing() { return fences_; }

  // --- Integrity (mdwf::integrity) ----------------------------------------
  void set_integrity(integrity::Ledger* ledger) { ledger_ = ledger; }
  integrity::Ledger* integrity() { return ledger_; }
  // Re-publishes the frame's node-local replica from producer memory (the
  // DYAD answer to a corrupt or torn local copy): rewrite + re-tag.
  sim::Task<void> repair_local(const std::string& path, Bytes size);

  // --- Observability (mdwf::obs) ------------------------------------------
  // Samples cumulative broker activity ("dyad.remote_reads", "dyad.pushes",
  // "dyad.republishes") onto `track` as it happens.
  void set_trace(obs::TraceSink* sink, obs::TrackId track);

 private:
  sim::Task<void> republish(std::string key, std::string value);
  void trace_total(obs::CounterId id, std::uint64_t value);

  sim::Simulation* sim_;
  DyadParams params_;
  DyadDomain* domain_;
  net::NodeId node_;
  fs::LocalFs* local_fs_;
  net::Network* network_;
  kvs::KvsClient kvs_;
  sim::Semaphore service_slots_;
  std::unique_ptr<fs::LustreClient> fallback_client_;
  NodeHealth health_;
  std::map<std::string, std::string> published_;
  FenceRegistry* fences_ = nullptr;
  integrity::Ledger* ledger_ = nullptr;
  std::uint64_t remote_reads_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t republishes_ = 0;
  std::uint64_t lost_writethroughs_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::CounterId trace_republishes_id_{};
  obs::CounterId trace_remote_reads_id_{};
  obs::CounterId trace_pushes_id_{};
};

// Metadata record stored in the KVS per produced file.  `crc` is the
// producer's CRC32C tag (0 when integrity is off); it rides through the KVS
// so any consumer — warm path, RDMA, failover — can verify end to end.
struct DyadMetadata {
  net::NodeId owner;
  Bytes size;
  std::uint32_t crc = 0;
  // Incarnation epoch of the publishing daemon (mdwf::membership).  Daemons
  // are born at epoch 0 and never rebirth in place, so the tag is 0 on every
  // healthy put and the wire format only grows a fourth field for nonzero
  // epochs; consumers judge staleness against the controller's registry
  // (FenceRegistry::stale), not against the tag alone.
  std::uint64_t epoch = 0;

  std::string encode() const;
  // Accepts the legacy "owner:size", the tagged "owner:size:crc", and the
  // fenced "owner:size:crc:epoch" encodings.
  static DyadMetadata decode(const std::string& s);
};

std::string metadata_key(const std::string& path);

class DyadProducer {
 public:
  DyadProducer(DyadNode& node, perf::Recorder& recorder);

  // Writes `size` bytes under `path` on node-local storage and publishes
  // availability.  Regions: dyad_produce / {dyad_prod_write, dyad_commit}.
  sim::Task<void> produce(const std::string& path, Bytes size);

 private:
  DyadNode* node_;
  perf::Recorder* rec_;
};

class DyadConsumer {
 public:
  DyadConsumer(DyadNode& node, perf::Recorder& recorder);

  // Acquires `path` (expected `size` bytes) and reads it locally.
  // Regions (paper Fig. 9): dyad_consume / {dyad_fetch[/dyad_watch_wait,
  // dyad_retry], dyad_get_data, dyad_cons_store, dyad_failover_read,
  // read_single_buf}.  dyad_retry / dyad_failover_read appear only when the
  // recovery protocol (DyadParams::retry) engages.  With hedging on, a cold
  // fetch races the normal DYAD path against a delayed Lustre-replica read
  // under a single dyad_hedged_fetch region (the racing branches are
  // region-free: the recorder's region stack is strictly nested per rank).
  sim::Task<void> consume(const std::string& path, Bytes size);

  std::uint64_t warm_hits() const { return warm_hits_; }
  std::uint64_t kvs_waits() const { return kvs_waits_; }
  std::uint64_t kvs_retries() const { return kvs_retries_; }
  // Recovery-protocol attempts (timed-out watches + failed remote reads).
  std::uint64_t recovery_retries() const { return recovery_retries_; }
  // Frames satisfied from the Lustre cold tier after DYAD paths failed.
  std::uint64_t failovers() const { return failovers_; }

 private:
  // Shared state of one hedged cold fetch (primary DYAD path vs delayed
  // Lustre-replica read, first response wins).
  struct HedgeRace;

  // One integrity re-fetch round after a checksum mismatch; updates and
  // returns whether the delivered payload is still bad.
  sim::Task<bool> refetch(const std::string& path, Bytes size,
                          net::NodeId owner, bool failed_over, bool in_memory,
                          const std::string& local_path);

  // KVS lookup with health bookkeeping: latency feeds the phi-accrual
  // detector, suspiciously slow (or ServerBusy-shed) lookups count as
  // breaker failures.  ServerBusy is absorbed and returned as nullopt — the
  // caller's retry loop already backs off on "not visible yet".  Plain
  // lookup when health is off.
  sim::Task<std::optional<kvs::KvsValue>> observed_lookup(
      const std::string& key);

  // The two racing branches of a hedged cold fetch.  Both are spawned
  // detached and never throw; the loser stands down at the next cooperative
  // checkpoint (checked before every byte-moving stage, so a cancelled
  // branch charges no further payload bytes).
  sim::Task<void> hedge_primary(std::shared_ptr<HedgeRace> race,
                                std::string path, Bytes size);
  sim::Task<void> hedge_replica(std::shared_ptr<HedgeRace> race,
                                std::string path, Bytes size);

  DyadNode* node_;
  perf::Recorder* rec_;
  std::uint64_t warm_hits_ = 0;
  std::uint64_t kvs_waits_ = 0;
  std::uint64_t kvs_retries_ = 0;
  std::uint64_t recovery_retries_ = 0;
  std::uint64_t failovers_ = 0;
};

}  // namespace mdwf::dyad
