#include "mdwf/fs/file_lock.hpp"

#include "mdwf/common/assert.hpp"

namespace mdwf::fs {

sim::Task<void> FileLock::lock_shared() {
  if (try_lock_shared()) co_return;
  struct Waiting {
    FileLock* l;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      l->waiters_.push_back(Waiter{h, false});
    }
    void await_resume() const noexcept {}
  };
  co_await Waiting{this};
}

sim::Task<void> FileLock::lock_exclusive() {
  if (try_lock_exclusive()) co_return;
  struct Waiting {
    FileLock* l;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      l->waiters_.push_back(Waiter{h, true});
      l->has_queued_writer_ = true;
    }
    void await_resume() const noexcept {}
  };
  co_await Waiting{this};
}

bool FileLock::try_lock_shared() {
  if (!can_grant_shared() || !waiters_.empty()) return false;
  ++shared_holders_;
  return true;
}

bool FileLock::try_lock_exclusive() {
  if (!can_grant_exclusive() || !waiters_.empty()) return false;
  exclusive_held_ = true;
  return true;
}

void FileLock::unlock_shared() {
  MDWF_ASSERT_MSG(shared_holders_ > 0, "unlock_shared without holder");
  --shared_holders_;
  wake_eligible();
}

void FileLock::unlock_exclusive() {
  MDWF_ASSERT_MSG(exclusive_held_, "unlock_exclusive without holder");
  exclusive_held_ = false;
  wake_eligible();
}

void FileLock::wake_eligible() {
  // Serve the queue FIFO: a writer at the head is granted alone; a run of
  // readers at the head is granted together.
  while (!waiters_.empty()) {
    Waiter& front = waiters_.front();
    if (front.exclusive) {
      if (!can_grant_exclusive()) break;
      exclusive_held_ = true;
      auto h = front.h;
      waiters_.pop_front();
      // Recompute the queued-writer flag.
      has_queued_writer_ = false;
      for (const auto& w : waiters_) {
        if (w.exclusive) {
          has_queued_writer_ = true;
          break;
        }
      }
      sim_->schedule_resume(h, Duration::zero());
      break;  // exclusive holder blocks everyone behind it
    }
    if (exclusive_held_) break;
    ++shared_holders_;
    auto h = front.h;
    waiters_.pop_front();
    sim_->schedule_resume(h, Duration::zero());
  }
}

}  // namespace mdwf::fs
