// Node-local journaling filesystem model (XFS class).
//
// Sits on a BlockDevice through a PageCache.  Costs modelled:
//   - metadata CPU per namespace operation (inode/dentry update),
//   - journal commits (log-record device writes) for create/extend/unlink,
//   - buffered data I/O through the page cache (memcpy; device on miss,
//     eviction, or fsync),
//   - extent allocation on append (first-fit allocator).
// Contents are not stored — files are byte ranges with sizes; integrity of
// real payloads is exercised by the `rt` (real-thread) backend instead.
//
// XFS cannot span nodes: a LocalFs instance belongs to exactly one node, and
// only processes on that node may reach it (enforced by the workflow layer).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "mdwf/common/bytes.hpp"
#include "mdwf/fs/extent_allocator.hpp"
#include "mdwf/fs/file_lock.hpp"
#include "mdwf/storage/block_device.hpp"
#include "mdwf/storage/page_cache.hpp"

namespace mdwf::fs {

class FsError : public std::runtime_error {
 public:
  explicit FsError(const std::string& what) : std::runtime_error(what) {}
};

struct LocalFsParams {
  // CPU charged per namespace operation.
  Duration metadata_cpu = Duration::microseconds(3);
  // Journal log record size; one record per journaled transaction.
  Bytes journal_record = Bytes::kib(4);
  // Synchronous journal commits (true mimics frequent small-file fsync-ish
  // behaviour; false batches them into the background).
  bool journal_sync = true;
  // Allocation granularity (extent size rounding).
  Bytes allocation_unit = Bytes::kib(64);
  // O_DIRECT-style I/O: bypass the page cache, every read/write hits the
  // device (ablation: node-local staging without buffered-I/O benefits).
  bool direct_io = false;
};

// Stable file identifier (inode number).
using InodeId = std::uint64_t;

class LocalFs {
 public:
  LocalFs(sim::Simulation& sim, const LocalFsParams& params,
          storage::BlockDevice& device, storage::PageCache& cache);

  const LocalFsParams& params() const { return params_; }

  // --- Namespace -----------------------------------------------------------

  // Creates an empty file; throws FsError if it already exists.  With
  // `exclusive_lock`, the new inode's flock is held exclusively by the
  // caller *atomically with the file becoming visible*, so a concurrent
  // opener can never observe the file unlocked before its first write
  // (O_CREAT|O_WRONLY + flock semantics).
  sim::Task<InodeId> create(std::string path, bool exclusive_lock = false);
  // Opens an existing file; throws FsError if absent.
  sim::Task<InodeId> open(const std::string& path);
  sim::Task<void> unlink(const std::string& path);
  // Atomic rename; replaces an existing destination (POSIX semantics).
  // The write-tmp-then-rename commit pattern rides on this.
  sim::Task<void> rename(const std::string& from, std::string to);

  bool exists(const std::string& path) const;
  std::optional<Bytes> stat(const std::string& path) const;
  // Paths with the given prefix, sorted (readdir equivalent).
  std::vector<std::string> list(const std::string& prefix) const;

  // --- Data ------------------------------------------------------------------

  // Appends/overwrites [offset, offset+len); extends and allocates extents
  // as needed (journaled).
  sim::Task<void> write(InodeId ino, Bytes offset, Bytes len);
  // Reads [offset, offset+len); throws FsError past EOF.
  sim::Task<void> read(InodeId ino, Bytes offset, Bytes len);
  sim::Task<void> fsync(InodeId ino);

  Bytes size(InodeId ino) const;
  // Bytes guaranteed to survive a power loss: advanced to `size` by fsync
  // (and by direct-I/O writes, which bypass the cache entirely).
  Bytes durable_size(InodeId ino) const;
  FileLock& lock(InodeId ino);

  // --- Crash consistency ---------------------------------------------------

  // Power loss: every file is torn back to its last durable size (data that
  // only reached the page cache is gone).  Namespace operations are journaled
  // and survive.  The caller is responsible for also dropping the page cache
  // (PageCache::crash_drop_dirty).  Returns the number of files torn.
  std::size_t crash();

  // --- Introspection -----------------------------------------------------------

  std::size_t file_count() const { return by_path_.size(); }
  Bytes free_bytes() const { return allocator_.free_bytes(); }
  std::uint64_t journal_commits() const { return journal_commits_; }
  std::uint64_t torn_files() const { return torn_files_; }
  const ExtentAllocator& allocator() const { return allocator_; }

 private:
  struct Inode {
    InodeId id = 0;
    Bytes size = Bytes::zero();
    // High-water mark of fsync'd (power-loss-safe) bytes.
    Bytes durable = Bytes::zero();
    Bytes allocated = Bytes::zero();
    std::vector<Extent> extents;
    std::unique_ptr<FileLock> lock;
    std::uint32_t links = 1;
  };

  Inode& inode(InodeId ino);
  const Inode& inode(InodeId ino) const;
  sim::Task<void> journal_commit();
  sim::Task<void> metadata_op();
  Bytes round_up_alloc(Bytes n) const;

  sim::Simulation* sim_;
  LocalFsParams params_;
  storage::BlockDevice* device_;
  storage::PageCache* cache_;
  ExtentAllocator allocator_;
  std::map<std::string, InodeId> by_path_;
  std::map<InodeId, Inode> inodes_;
  InodeId next_inode_ = 1;
  std::uint64_t journal_commits_ = 0;
  std::uint64_t torn_files_ = 0;
};

}  // namespace mdwf::fs
