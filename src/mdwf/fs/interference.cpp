#include "mdwf/fs/interference.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace mdwf::fs {
namespace {

[[noreturn]] void reject(const char* field, double value, const char* why) {
  std::ostringstream os;
  os << "InterferenceParams: " << field << "=" << value << " " << why;
  throw std::invalid_argument(os.str());
}

// Tracks per-OST stacked load so overlapping episodes compose.
struct LoadBook {
  std::vector<double> load;
  LustreServers* servers;
  double cap;

  void apply(std::uint32_t ost, double delta) {
    load[ost] = std::clamp(load[ost] + delta, 0.0, cap);
    servers->ost_device(ost).set_background_load(load[ost]);
  }
};

sim::Task<void> ost_episode(sim::Simulation& sim,
                            std::shared_ptr<LoadBook> book, std::uint32_t ost,
                            double load, Duration length) {
  book->apply(ost, load);
  co_await sim.delay(length);
  book->apply(ost, -load);
}

// A metadata storm: another tenant's requests occupy MDS service slots for
// the duration, queueing the workflow's create/open/close RPCs behind them.
// `episode_mutex` serializes storms: concurrent multi-slot acquisition
// would hold-and-wait into deadlock.
sim::Task<void> mds_episode(sim::Simulation& sim, LustreServers& servers,
                            std::shared_ptr<sim::Semaphore> episode_mutex,
                            std::int64_t slots, Duration length) {
  co_await episode_mutex->acquire();
  sim::SemaphoreGuard storm(*episode_mutex);
  const std::int64_t take = std::min<std::int64_t>(
      slots, servers.params().mds_concurrency - 1);  // never starve fully
  for (std::int64_t i = 0; i < take; ++i) {
    co_await servers.mds_slots().acquire();
  }
  co_await sim.delay(length);
  servers.mds_slots().release(take);
}

}  // namespace

void InterferenceParams::validate() const {
  if (mean_interarrival <= Duration::zero()) {
    reject("mean_interarrival", mean_interarrival.to_seconds(),
           "(seconds) must be positive");
  }
  if (duration_sigma < 0.0) {
    reject("duration_sigma", duration_sigma, "must be non-negative");
  }
  if (min_load < 0.0) reject("min_load", min_load, "must be non-negative");
  if (max_load > 1.0) reject("max_load", max_load, "must be <= 1");
  if (min_load > max_load) {
    reject("min_load", min_load, "exceeds max_load");
  }
  if (mds_fraction < 0.0 || mds_fraction > 1.0) {
    reject("mds_fraction", mds_fraction, "must be within [0, 1]");
  }
  if (mds_slots_taken < 0) {
    reject("mds_slots_taken", static_cast<double>(mds_slots_taken),
           "must be non-negative");
  }
  if (run_level_sigma < 0.0) {
    reject("run_level_sigma", run_level_sigma, "must be non-negative");
  }
  if (combined_load_cap < 0.0 || combined_load_cap >= 1.0) {
    reject("combined_load_cap", combined_load_cap, "must be within [0, 1)");
  }
}

sim::Task<void> run_ost_interference(sim::Simulation& sim,
                                     LustreServers& servers,
                                     InterferenceParams params, Rng rng,
                                     TimePoint horizon) {
  params.validate();
  auto book = std::make_shared<LoadBook>();
  book->load.assign(servers.ost_count(), 0.0);
  book->servers = &servers;
  book->cap = params.combined_load_cap;
  auto episode_mutex = std::make_shared<sim::Semaphore>(sim, 1);

  // Per-run cluster state: some runs land on a calm machine, some on a
  // stormy one.
  const double level =
      params.run_level_sigma > 0.0
          ? rng.lognormal(0.0, params.run_level_sigma)
          : 1.0;
  const double rate_scale = std::min(level, 4.0);

  while (sim.now() < horizon) {
    const double gap_s = rng.exponential(
        rate_scale / params.mean_interarrival.to_seconds());
    co_await sim.delay(Duration::seconds(gap_s));
    if (sim.now() >= horizon) break;
    const double dur_s =
        rng.lognormal(params.duration_mu, params.duration_sigma) *
        std::min(level, 2.0);
    if (rng.bernoulli(params.mds_fraction)) {
      sim.spawn(mds_episode(sim, servers, episode_mutex,
                            params.mds_slots_taken,
                            Duration::seconds(dur_s)));
    } else {
      const auto ost =
          static_cast<std::uint32_t>(rng.next_below(servers.ost_count()));
      const double load = std::clamp(
          rng.uniform(params.min_load, params.max_load) * level, 0.0,
          std::min(0.9, params.combined_load_cap));
      sim.spawn(ost_episode(sim, book, ost, load, Duration::seconds(dur_s)));
    }
  }
}

}  // namespace mdwf::fs
