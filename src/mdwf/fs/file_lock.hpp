// Advisory file locking (flock semantics) for simulated processes.
//
// DYAD's warm synchronization path is flock-based: the producer holds an
// exclusive lock while writing; a consumer taking a shared lock therefore
// blocks exactly until the data is complete.  Readers are admitted together;
// writers are exclusive; waiters are served FIFO with no writer starvation
// (a queued writer blocks later-arriving readers).
#pragma once

#include <cstdint>
#include <deque>

#include "mdwf/sim/primitives.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::fs {

class FileLock {
 public:
  explicit FileLock(sim::Simulation& sim) : sim_(&sim) {}

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  sim::Task<void> lock_shared();
  sim::Task<void> lock_exclusive();
  bool try_lock_shared();
  bool try_lock_exclusive();
  void unlock_shared();
  void unlock_exclusive();

  std::uint32_t shared_holders() const { return shared_holders_; }
  bool exclusive_held() const { return exclusive_held_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    bool exclusive;
  };

  bool can_grant_shared() const {
    return !exclusive_held_ && !has_queued_writer_;
  }
  bool can_grant_exclusive() const {
    return !exclusive_held_ && shared_holders_ == 0;
  }
  void wake_eligible();

  sim::Simulation* sim_;
  std::uint32_t shared_holders_ = 0;
  bool exclusive_held_ = false;
  bool has_queued_writer_ = false;
  std::deque<Waiter> waiters_;
};

}  // namespace mdwf::fs
