// Extent-based space allocator (XFS-style).
//
// Tracks free space of a device's LBA range as coalesced extents and serves
// first-fit allocations, splitting and merging as files come and go.  The
// allocator is pure bookkeeping (no simulated time); the filesystem charges
// CPU/journal costs around it.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mdwf/common/bytes.hpp"

namespace mdwf::fs {

struct Extent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  std::uint64_t end() const { return offset + length; }
  friend bool operator==(const Extent&, const Extent&) = default;
};

class ExtentAllocator {
 public:
  explicit ExtentAllocator(Bytes capacity);

  // First-fit allocation of `len` bytes; may return multiple extents when
  // free space is fragmented.  Throws std::bad_alloc on exhaustion (the
  // request is rolled back first).
  std::vector<Extent> allocate(Bytes len);

  // Returns extents to the free pool, coalescing with neighbours.
  void release(const std::vector<Extent>& extents);

  Bytes free_bytes() const { return free_; }
  Bytes capacity() const { return capacity_; }
  // Number of disjoint free extents (fragmentation measure).
  std::size_t free_extent_count() const { return free_map_.size(); }
  // Largest single free extent.
  Bytes largest_free_extent() const;

  // Internal-consistency check (used by property tests): free extents are
  // sorted, non-overlapping, non-adjacent, and sum to free_bytes().
  bool invariants_hold() const;

 private:
  void insert_free(std::uint64_t offset, std::uint64_t length);

  Bytes capacity_;
  Bytes free_;
  std::map<std::uint64_t, std::uint64_t> free_map_;  // offset -> length
};

}  // namespace mdwf::fs
