// Lustre-class parallel filesystem model.
//
// Topology: one metadata server (MDS) plus N object storage targets (OSTs),
// each living on its own fabric endpoint with a backing block device.
// Clients (one per compute node) translate POSIX-style calls into RPCs:
//
//   create/open/unlink/stat -> MDS round-trip (+ service queueing)
//   write/read              -> bulk "brw" RPCs of up to max_rpc_size bytes
//                              to the OSTs that hold the file's stripes,
//                              issued concurrently up to max_rpcs_in_flight
//   close (after write)     -> size/attr update RPC to the MDS
//
// Striping follows Lustre defaults: stripe_count OSTs per file assigned
// round-robin by the MDS, stripe_size interleaving.  Every byte crosses the
// network — this is precisely the contrast with DYAD's node-local staging
// that the paper measures.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mdwf/common/bytes.hpp"
#include "mdwf/common/fence.hpp"
#include "mdwf/fs/local_fs.hpp"  // FsError
#include "mdwf/health/quota.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/storage/block_device.hpp"

namespace mdwf::fs {

struct LustreParams {
  std::uint32_t ost_count = 8;
  Bytes stripe_size = Bytes::mib(1);
  std::uint32_t stripe_count = 1;  // Lustre default layout
  Bytes max_rpc_size = Bytes::mib(4);
  std::int64_t max_rpcs_in_flight = 8;  // per client

  Duration mds_service = Duration::microseconds(400);
  std::int64_t mds_concurrency = 4;
  Duration ost_service = Duration::microseconds(150);
  std::int64_t ost_concurrency = 8;
  // Client-side CPU per RPC (request marshalling, completion handling).
  Duration client_rpc_cpu = Duration::microseconds(150);
  // Grant-based client write-back cache: writes up to `write_grant` copy
  // into the client cache at `client_cache_bps` and flush to the OSTs in
  // the background; larger writes are synchronous (write-through).
  bool client_writeback = true;
  Bytes write_grant = Bytes::mib(32);
  double client_cache_bps = 5.0e9;
  // Cost of the first read of a file by a client that did not write it:
  // LDLM extent-lock acquisition plus revocation of the writer's cached
  // grant (Lustre's cross-node coherence).  Frames are written once and
  // read once by the peer, so every frame read pays this.
  Duration first_read_lock = Duration::microseconds(2300);

  storage::BlockDeviceParams ost_device{
      .read_bandwidth_bps = 1.2e9,
      .write_bandwidth_bps = 3.0e9,
      .op_latency = Duration::microseconds(50),
      .queue_depth = 32,
      .capacity = Bytes::gib(65536),
  };
};

// Server-side state shared by every client.
class LustreServers {
 public:
  // `mds_node` and `ost_nodes` are fabric endpoints reserved for servers.
  LustreServers(sim::Simulation& sim, const LustreParams& params,
                net::Network& network, net::NodeId mds_node,
                std::vector<net::NodeId> ost_nodes);

  const LustreParams& params() const { return params_; }
  net::NodeId mds_node() const { return mds_node_; }

  storage::BlockDevice& ost_device(std::uint32_t idx);
  std::uint32_t ost_count() const {
    return static_cast<std::uint32_t>(osts_.size());
  }

  // Applies a constant background load to every OST device (interference
  // from other cluster tenants); stochastic interference lives in
  // mdwf/fs/interference.hpp.
  void set_ost_background_load(double fraction);

  // MDS service slots (exposed so interference can model metadata storms
  // from other tenants occupying server capacity).
  sim::Semaphore& mds_slots() { return *mds_slots_; }

  std::uint64_t mds_requests() const { return mds_requests_; }
  std::uint64_t journal_commits() const { return journal_commits_; }
  std::uint64_t torn_writes() const { return torn_writes_; }
  std::uint64_t lost_flushes() const { return lost_flushes_; }

  // Overloaded-server gray failure: MDS and OST service times stretch by
  // `factor` (>= 1); 1.0 restores nominal speed.
  void set_service_dilation(double factor);
  double service_dilation() const { return dilation_; }

  // --- Backpressure (mdwf::health) ----------------------------------------
  // Bounded admission queues: an MDS or OST RPC arriving at a full queue
  // bounces with a retryable busy reply; the client backs off and re-sends
  // internally (bounded attempts, then it queues regardless so progress is
  // guaranteed).  0 = unbounded (off).
  void set_admission_limits(std::uint32_t mds_limit, std::uint32_t ost_limit,
                            std::uint32_t retry_limit, Duration retry_base);
  std::uint64_t sheds() const { return sheds_; }
  std::uint64_t busy_retries() const { return busy_retries_; }

  // Per-tenant fair-share quota (multi-tenant runs).  An MDS or OST RPC from
  // a tenant at its weighted bound bounces exactly like a full global queue —
  // backoff, bounded attempts, then proceed — but the shed is charged to the
  // overloading tenant and other tenants' shares stay untouched.  Not owned.
  void set_quota(health::TenantQuota* quota) { quota_ = quota; }

  // --- Fencing (mdwf::membership) -----------------------------------------
  // Incarnation fencing of the namespace-mutating paths (create/unlink): an
  // RPC from a client node the membership controller declared lost is
  // rejected with StaleEpochError after the MDS round trip, so a healed
  // zombie cannot commit into the shared namespace.  Not owned; nullptr off.
  void set_fencing(FenceRegistry* fences) { fences_ = fences; }

  // --- Crash consistency ----------------------------------------------------
  // Client `node` lost power: every file it wrote past the last journal
  // commit (close-after-write publishes size to the MDS journal) is torn
  // back to the committed size — bytes parked in the client's grant cache or
  // still in flight in background flushes never reached the journal tail.
  // Returns the number of files torn.
  std::size_t client_crash(net::NodeId node);

  // --- Observability (mdwf::obs) ------------------------------------------
  // Registers a "lustre" process with one "mds" lane (queue depth +
  // cumulative request count) and one lane per OST (device inflight/flow
  // counters via BlockDevice::set_trace).
  void set_trace(obs::TraceSink* sink);

 private:
  friend class LustreClient;

  struct FileState {
    std::uint64_t id = 0;
    Bytes size = Bytes::zero();
    // Size recorded in the MDS write journal (advanced by close-after-write,
    // the commit barrier): what survives a writer crash.
    Bytes durable = Bytes::zero();
    std::vector<std::uint32_t> stripe_osts;
    // Last writer and coherence state for the first-read lock charge.
    net::NodeId written_by{};
    bool coherent = true;  // false after a write until first foreign read
  };

  struct Ost {
    net::NodeId node;
    std::unique_ptr<storage::BlockDevice> device;
    std::unique_ptr<sim::Semaphore> service_slots;
    std::int64_t pending = 0;  // admitted bulk RPCs queued or in service
  };

  // MDS round-trip from `client`: request + queued service + reply.
  sim::Task<void> mds_rpc(net::NodeId client);
  void trace_mds_pending(int delta);

  sim::Simulation* sim_;
  LustreParams params_;
  net::Network* network_;
  net::NodeId mds_node_;
  std::unique_ptr<sim::Semaphore> mds_slots_;
  std::vector<Ost> osts_;
  std::map<std::string, FileState> files_;
  std::uint64_t next_file_id_ = 1;
  std::uint32_t next_ost_rr_ = 0;
  std::uint64_t mds_requests_ = 0;
  std::uint64_t journal_commits_ = 0;
  std::uint64_t torn_writes_ = 0;
  std::uint64_t lost_flushes_ = 0;
  double dilation_ = 1.0;
  std::uint32_t mds_admission_limit_ = 0;
  std::uint32_t ost_admission_limit_ = 0;
  std::uint32_t busy_retry_limit_ = 24;
  Duration busy_retry_base_ = Duration::microseconds(200);
  health::TenantQuota* quota_ = nullptr;
  FenceRegistry* fences_ = nullptr;
  std::uint64_t sheds_ = 0;
  std::uint64_t busy_retries_ = 0;
  std::int64_t mds_pending_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::CounterId trace_mds_pending_id_{};
};

struct LustreHandle {
  std::uint64_t file_id = 0;
  std::string path;
};

// Per-compute-node client.
//
// Lifetime: buffered writes flush in background tasks that are independent
// of this client object (they share the RPC window and reference only the
// servers), so the client may be destroyed while a flush is still in
// flight.  The servers and simulation must outlive the flush as usual.
class LustreClient {
 public:
  LustreClient(sim::Simulation& sim, LustreServers& servers,
               net::NodeId node);

  net::NodeId node() const { return node_; }

  sim::Task<LustreHandle> create(std::string path);
  sim::Task<LustreHandle> open(const std::string& path);
  sim::Task<void> write(const LustreHandle& h, Bytes offset, Bytes len);
  sim::Task<void> read(const LustreHandle& h, Bytes offset, Bytes len);
  // Close after writing publishes size/attrs to the MDS.
  sim::Task<void> close(const LustreHandle& h, bool wrote);
  sim::Task<void> unlink(const std::string& path);
  sim::Task<bool> exists(const std::string& path);
  sim::Task<std::optional<Bytes>> stat(const std::string& path);

 private:
  // One bulk RPC: request -> OST service -> device IO -> payload/ack.
  // Static (all state passed explicitly) so frames spawned as detached
  // background flushes never dangle on a destroyed client.
  static sim::Task<void> brw_rpc(sim::Simulation& sim, LustreServers& servers,
                                 net::NodeId node, sim::Semaphore& window,
                                 std::uint32_t ost_idx, Bytes chunk,
                                 bool is_write);
  // Splits [offset, offset+len) into per-OST chunks of <= max_rpc_size and
  // runs them with bounded concurrency.  Stripe assignment is taken by
  // value so background flushes survive namespace changes; the shared RPC
  // window keeps the semaphore alive past the client.
  static sim::Task<void> bulk_io(sim::Simulation& sim, LustreServers& servers,
                                 net::NodeId node,
                                 std::shared_ptr<sim::Semaphore> window,
                                 std::vector<std::uint32_t> stripe_osts,
                                 Bytes offset, Bytes len, bool is_write);
  // Detached background flush: a grant-cache flush that dies mid-transfer
  // (crashed writer NIC, injected I/O error) is lost data, not a sim abort.
  static sim::Task<void> flush_guarded(sim::Simulation& sim,
                                       LustreServers& servers,
                                       net::NodeId node,
                                       std::shared_ptr<sim::Semaphore> window,
                                       std::vector<std::uint32_t> stripe_osts,
                                       Bytes offset, Bytes len);

  sim::Simulation* sim_;
  LustreServers* servers_;
  net::NodeId node_;
  std::shared_ptr<sim::Semaphore> rpcs_in_flight_;
};

}  // namespace mdwf::fs
