#include "mdwf/fs/lustre.hpp"

#include "mdwf/common/assert.hpp"

namespace mdwf::fs {

LustreServers::LustreServers(sim::Simulation& sim, const LustreParams& params,
                             net::Network& network, net::NodeId mds_node,
                             std::vector<net::NodeId> ost_nodes)
    : sim_(&sim), params_(params), network_(&network), mds_node_(mds_node) {
  MDWF_ASSERT(ost_nodes.size() == params.ost_count);
  MDWF_ASSERT(params.stripe_count >= 1 &&
              params.stripe_count <= params.ost_count);
  mds_slots_ = std::make_unique<sim::Semaphore>(sim, params.mds_concurrency);
  osts_.reserve(ost_nodes.size());
  for (std::size_t i = 0; i < ost_nodes.size(); ++i) {
    Ost ost;
    ost.node = ost_nodes[i];
    ost.device = std::make_unique<storage::BlockDevice>(
        sim, params.ost_device, "ost" + std::to_string(i));
    ost.service_slots =
        std::make_unique<sim::Semaphore>(sim, params.ost_concurrency);
    osts_.push_back(std::move(ost));
  }
}

storage::BlockDevice& LustreServers::ost_device(std::uint32_t idx) {
  MDWF_ASSERT(idx < osts_.size());
  return *osts_[idx].device;
}

void LustreServers::set_ost_background_load(double fraction) {
  for (auto& ost : osts_) ost.device->set_background_load(fraction);
}

sim::Task<void> LustreServers::mds_rpc(net::NodeId client) {
  ++mds_requests_;
  co_await network_->send_control(client, mds_node_);
  // Bounded admission: a full MDS queue bounces the request with a busy
  // reply; the client backs off exponentially and re-sends.  After the
  // attempt budget it queues regardless — progress over fairness.
  Duration backoff = busy_retry_base_;
  for (std::uint32_t attempt = 0; attempt < busy_retry_limit_; ++attempt) {
    // A tenant at its fair-share bound bounces even when the global queue
    // has room; the shed is charged to that tenant, not the server.
    const bool quota_blocked =
        quota_ != nullptr &&
        quota_->at_bound(health::QuotaResource::kMds, client);
    const bool global_blocked =
        mds_admission_limit_ > 0 &&
        mds_pending_ >= static_cast<std::int64_t>(mds_admission_limit_);
    if (!quota_blocked && !global_blocked) break;
    if (quota_blocked) quota_->count_shed(health::QuotaResource::kMds, client);
    ++sheds_;
    ++busy_retries_;
    co_await network_->send_control(mds_node_, client);
    co_await sim_->delay(backoff);
    backoff = backoff * 2.0;
    co_await network_->send_control(client, mds_node_);
  }
  {
    health::QuotaAdmission quota_slot(quota_, health::QuotaResource::kMds,
                                      client);
    trace_mds_pending(+1);
    co_await mds_slots_->acquire();
    {
      sim::SemaphoreGuard slot(*mds_slots_);
      co_await sim_->delay(params_.mds_service * dilation_);
    }
    trace_mds_pending(-1);
  }
  co_await network_->send_control(mds_node_, client);
}

void LustreServers::set_service_dilation(double factor) {
  dilation_ = factor < 1.0 ? 1.0 : factor;
}

void LustreServers::set_admission_limits(std::uint32_t mds_limit,
                                         std::uint32_t ost_limit,
                                         std::uint32_t retry_limit,
                                         Duration retry_base) {
  mds_admission_limit_ = mds_limit;
  ost_admission_limit_ = ost_limit;
  busy_retry_limit_ = retry_limit;
  busy_retry_base_ = retry_base;
}

void LustreServers::set_trace(obs::TraceSink* sink) {
  trace_ = sink;
  if (sink == nullptr) return;
  trace_mds_pending_id_ =
      sink->counter_id(sink->track("lustre", "mds"), "mds.pending");
  for (std::size_t i = 0; i < osts_.size(); ++i) {
    const std::string lane = "ost" + std::to_string(i);
    osts_[i].device->set_trace(sink, sink->track("lustre", lane), lane);
  }
}

std::size_t LustreServers::client_crash(net::NodeId node) {
  std::size_t torn = 0;
  for (auto& [path, fs] : files_) {
    if (fs.written_by == node && fs.size > fs.durable) {
      fs.size = fs.durable;
      ++torn;
    }
  }
  torn_writes_ += torn;
  return torn;
}

void LustreServers::trace_mds_pending(int delta) {
  mds_pending_ += delta;
  if (trace_ == nullptr) return;
  trace_->counter(trace_mds_pending_id_, sim_->now(), mds_pending_);
}

LustreClient::LustreClient(sim::Simulation& sim, LustreServers& servers,
                           net::NodeId node)
    : sim_(&sim),
      servers_(&servers),
      node_(node),
      rpcs_in_flight_(std::make_shared<sim::Semaphore>(
          sim, servers.params().max_rpcs_in_flight)) {}

sim::Task<LustreHandle> LustreClient::create(std::string path) {
  co_await sim_->delay(servers_->params_.client_rpc_cpu);
  co_await servers_->mds_rpc(node_);
  // Incarnation fence, checked only after the MDS round trip succeeds: a
  // zombie behind a one-way partition cannot learn of its declare until
  // traffic flows again.
  if (servers_->fences_ != nullptr &&
      servers_->fences_->stale(FenceToken{node_.value, 0})) {
    servers_->fences_->reject(FenceToken{node_.value, 0}, "lustre create");
  }
  if (servers_->files_.contains(path)) {
    throw FsError("lustre create: exists: " + path);
  }
  LustreServers::FileState fs;
  fs.id = servers_->next_file_id_++;
  // MDS assigns stripes round-robin across OSTs.
  for (std::uint32_t s = 0; s < servers_->params_.stripe_count; ++s) {
    fs.stripe_osts.push_back(servers_->next_ost_rr_);
    servers_->next_ost_rr_ =
        (servers_->next_ost_rr_ + 1) % servers_->params_.ost_count;
  }
  LustreHandle h{fs.id, path};
  servers_->files_.emplace(std::move(path), std::move(fs));
  co_return h;
}

sim::Task<LustreHandle> LustreClient::open(const std::string& path) {
  co_await sim_->delay(servers_->params_.client_rpc_cpu);
  co_await servers_->mds_rpc(node_);
  const auto it = servers_->files_.find(path);
  if (it == servers_->files_.end()) {
    throw FsError("lustre open: no such file: " + path);
  }
  co_return LustreHandle{it->second.id, path};
}

sim::Task<void> LustreClient::brw_rpc(sim::Simulation& sim,
                                      LustreServers& servers, net::NodeId node,
                                      sim::Semaphore& window,
                                      std::uint32_t ost_idx, Bytes chunk,
                                      bool is_write) {
  auto& ost = servers.osts_[ost_idx];
  co_await window.acquire();
  sim::SemaphoreGuard slot_in_window(window);
  co_await sim.delay(servers.params_.client_rpc_cpu);
  // Bounded OST admission: bulk-window pushback before the payload moves.
  // The client holds its RPC-window slot and backs off; after the attempt
  // budget it proceeds regardless so bulk I/O always completes.
  Duration backoff = servers.busy_retry_base_;
  for (std::uint32_t attempt = 0; attempt < servers.busy_retry_limit_;
       ++attempt) {
    const bool quota_blocked =
        servers.quota_ != nullptr &&
        servers.quota_->at_bound(health::QuotaResource::kOst, node);
    const bool global_blocked =
        servers.ost_admission_limit_ > 0 &&
        ost.pending >=
            static_cast<std::int64_t>(servers.ost_admission_limit_);
    if (!quota_blocked && !global_blocked) break;
    if (quota_blocked) {
      servers.quota_->count_shed(health::QuotaResource::kOst, node);
    }
    ++servers.sheds_;
    ++servers.busy_retries_;
    co_await sim.delay(backoff);
    backoff = backoff * 2.0;
  }
  health::QuotaAdmission quota_slot(servers.quota_,
                                    health::QuotaResource::kOst, node);
  const Duration ost_service = servers.params_.ost_service * servers.dilation_;
  // Decrements on every exit path (injected IoError must not leak a
  // pending slot, or the admission queue would wedge shut).
  struct PendingGuard {
    std::int64_t* count;
    ~PendingGuard() { --*count; }
  };
  if (is_write) {
    // Payload travels with the request; the OST commits it to its device.
    co_await servers.network_->transfer(node, ost.node, chunk);
    ++ost.pending;
    PendingGuard admitted{&ost.pending};
    co_await ost.service_slots->acquire();
    {
      sim::SemaphoreGuard slot(*ost.service_slots);
      co_await sim.delay(ost_service);
      co_await ost.device->write(chunk);
    }
    co_await servers.network_->send_control(ost.node, node);
  } else {
    co_await servers.network_->send_control(node, ost.node);
    ++ost.pending;
    PendingGuard admitted{&ost.pending};
    co_await ost.service_slots->acquire();
    {
      sim::SemaphoreGuard slot(*ost.service_slots);
      co_await sim.delay(ost_service);
      co_await ost.device->read(chunk);
    }
    co_await servers.network_->transfer(ost.node, node, chunk);
  }
}

sim::Task<void> LustreClient::bulk_io(sim::Simulation& sim,
                                      LustreServers& servers, net::NodeId node,
                                      std::shared_ptr<sim::Semaphore> window,
                                      std::vector<std::uint32_t> stripe_osts,
                                      Bytes offset, Bytes len, bool is_write) {
  const auto& p = servers.params_;
  // Walk stripe_size windows, binning bytes per OST, then emit RPCs of at
  // most max_rpc_size per OST bin.
  std::vector<sim::Task<void>> rpcs;
  std::vector<Bytes> pending(stripe_osts.size(), Bytes::zero());
  std::uint64_t pos = offset.count();
  std::uint64_t remaining = len.count();
  while (remaining > 0) {
    const std::uint64_t stripe_index = pos / p.stripe_size.count();
    const std::uint64_t within = pos % p.stripe_size.count();
    const std::uint64_t in_stripe =
        std::min(remaining, p.stripe_size.count() - within);
    const std::size_t bin = stripe_index % stripe_osts.size();
    pending[bin] += Bytes(in_stripe);
    while (pending[bin] >= p.max_rpc_size) {
      rpcs.push_back(brw_rpc(sim, servers, node, *window, stripe_osts[bin],
                             p.max_rpc_size, is_write));
      pending[bin] -= p.max_rpc_size;
    }
    pos += in_stripe;
    remaining -= in_stripe;
  }
  for (std::size_t bin = 0; bin < pending.size(); ++bin) {
    if (!pending[bin].is_zero()) {
      rpcs.push_back(brw_rpc(sim, servers, node, *window, stripe_osts[bin],
                             pending[bin], is_write));
    }
  }
  co_await sim::all(sim, std::move(rpcs));
}

sim::Task<void> LustreClient::write(const LustreHandle& h, Bytes offset,
                                    Bytes len) {
  auto it = servers_->files_.find(h.path);
  if (it == servers_->files_.end() || it->second.id != h.file_id) {
    throw FsError("lustre write: stale handle for " + h.path);
  }
  if (len.is_zero()) co_return;
  const auto& p = servers_->params_;
  if (p.client_writeback && len <= p.write_grant) {
    // Grant-based write-back: copy into the client cache now, flush to the
    // OSTs in the background.  The OSTs and fabric still see every byte.
    co_await sim_->delay(Duration::seconds(
        static_cast<double>(len.count()) / p.client_cache_bps));
    sim_->spawn(flush_guarded(*sim_, *servers_, node_, rpcs_in_flight_,
                              it->second.stripe_osts, offset, len));
  } else {
    co_await bulk_io(*sim_, *servers_, node_, rpcs_in_flight_,
                     it->second.stripe_osts, offset, len, /*is_write=*/true);
  }
  if (offset + len > it->second.size) it->second.size = offset + len;
  it->second.written_by = node_;
  it->second.coherent = false;
}

sim::Task<void> LustreClient::read(const LustreHandle& h, Bytes offset,
                                   Bytes len) {
  const auto it = servers_->files_.find(h.path);
  if (it == servers_->files_.end() || it->second.id != h.file_id) {
    throw FsError("lustre read: stale handle for " + h.path);
  }
  if (offset + len > it->second.size) {
    throw FsError("lustre read past EOF: " + h.path);
  }
  if (!it->second.coherent && it->second.written_by != node_) {
    // LDLM extent lock + revocation of the writer's cached grant: the first
    // cross-node read after a write pays the coherence round-trips.
    it->second.coherent = true;
    co_await servers_->mds_rpc(node_);
    co_await sim_->delay(servers_->params_.first_read_lock);
  }
  co_await bulk_io(*sim_, *servers_, node_, rpcs_in_flight_,
                   it->second.stripe_osts, offset, len, /*is_write=*/false);
}

sim::Task<void> LustreClient::flush_guarded(
    sim::Simulation& sim, LustreServers& servers, net::NodeId node,
    std::shared_ptr<sim::Semaphore> window,
    std::vector<std::uint32_t> stripe_osts, Bytes offset, Bytes len) {
  try {
    co_await bulk_io(sim, servers, node, std::move(window),
                     std::move(stripe_osts), offset, len, /*is_write=*/true);
  } catch (const net::NetError&) {
    ++servers.lost_flushes_;
  } catch (const storage::IoError&) {
    ++servers.lost_flushes_;
  }
}

sim::Task<void> LustreClient::close(const LustreHandle& h, bool wrote) {
  if (wrote) {
    co_await sim_->delay(servers_->params_.client_rpc_cpu);
    co_await servers_->mds_rpc(node_);
    if (servers_->fences_ != nullptr &&
        servers_->fences_->stale(FenceToken{node_.value, 0})) {
      servers_->fences_->reject(FenceToken{node_.value, 0},
                                "lustre close-commit");
    }
    // The size/attr update is the MDS journal commit: everything written so
    // far is now recoverable from the journal tail even if the writer dies.
    const auto it = servers_->files_.find(h.path);
    if (it != servers_->files_.end() && it->second.id == h.file_id) {
      if (it->second.size > it->second.durable) {
        it->second.durable = it->second.size;
      }
      ++servers_->journal_commits_;
    }
  }
}

sim::Task<void> LustreClient::unlink(const std::string& path) {
  co_await sim_->delay(servers_->params_.client_rpc_cpu);
  co_await servers_->mds_rpc(node_);
  if (servers_->fences_ != nullptr &&
      servers_->fences_->stale(FenceToken{node_.value, 0})) {
    servers_->fences_->reject(FenceToken{node_.value, 0}, "lustre unlink");
  }
  const auto it = servers_->files_.find(path);
  if (it == servers_->files_.end()) {
    throw FsError("lustre unlink: no such file: " + path);
  }
  servers_->files_.erase(it);
}

sim::Task<bool> LustreClient::exists(const std::string& path) {
  co_await servers_->mds_rpc(node_);
  co_return servers_->files_.contains(path);
}

sim::Task<std::optional<Bytes>> LustreClient::stat(const std::string& path) {
  co_await servers_->mds_rpc(node_);
  const auto it = servers_->files_.find(path);
  if (it == servers_->files_.end()) co_return std::nullopt;
  co_return it->second.size;
}

}  // namespace mdwf::fs
