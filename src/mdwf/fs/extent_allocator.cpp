#include "mdwf/fs/extent_allocator.hpp"

#include <new>

#include "mdwf/common/assert.hpp"

namespace mdwf::fs {

ExtentAllocator::ExtentAllocator(Bytes capacity)
    : capacity_(capacity), free_(capacity) {
  MDWF_ASSERT(capacity.count() > 0);
  free_map_.emplace(0, capacity.count());
}

std::vector<Extent> ExtentAllocator::allocate(Bytes len) {
  MDWF_ASSERT(len.count() > 0);
  if (len > free_) throw std::bad_alloc();

  std::vector<Extent> out;
  std::uint64_t need = len.count();
  auto it = free_map_.begin();
  while (need > 0) {
    MDWF_ASSERT_MSG(it != free_map_.end(),
                    "free accounting out of sync with free map");
    const std::uint64_t take = it->second < need ? it->second : need;
    out.push_back(Extent{it->first, take});
    if (take == it->second) {
      it = free_map_.erase(it);
    } else {
      // Shrink the extent from the front.
      const std::uint64_t new_off = it->first + take;
      const std::uint64_t new_len = it->second - take;
      it = free_map_.erase(it);
      it = free_map_.emplace_hint(it, new_off, new_len);
    }
    need -= take;
  }
  free_ -= len;
  return out;
}

void ExtentAllocator::insert_free(std::uint64_t offset, std::uint64_t length) {
  MDWF_ASSERT(length > 0);
  MDWF_ASSERT(offset + length <= capacity_.count());
  auto next = free_map_.lower_bound(offset);
  // Overlap checks against neighbours.
  if (next != free_map_.end()) {
    MDWF_ASSERT_MSG(offset + length <= next->first, "double free (overlap)");
  }
  if (next != free_map_.begin()) {
    auto prev = std::prev(next);
    MDWF_ASSERT_MSG(prev->first + prev->second <= offset,
                    "double free (overlap)");
    if (prev->first + prev->second == offset) {
      // Merge with predecessor.
      offset = prev->first;
      length += prev->second;
      free_map_.erase(prev);
    }
  }
  if (next != free_map_.end() && offset + length == next->first) {
    length += next->second;
    free_map_.erase(next);
  }
  free_map_.emplace(offset, length);
}

void ExtentAllocator::release(const std::vector<Extent>& extents) {
  for (const auto& e : extents) {
    insert_free(e.offset, e.length);
    free_ += Bytes(e.length);
  }
}

Bytes ExtentAllocator::largest_free_extent() const {
  std::uint64_t best = 0;
  for (const auto& [off, len] : free_map_) {
    if (len > best) best = len;
  }
  return Bytes(best);
}

bool ExtentAllocator::invariants_hold() const {
  std::uint64_t total = 0;
  std::uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [off, len] : free_map_) {
    if (len == 0) return false;
    if (!first && off <= prev_end) return false;  // overlap or adjacency
    if (off + len > capacity_.count()) return false;
    prev_end = off + len;
    total += len;
    first = false;
  }
  return total == free_.count();
}

}  // namespace mdwf::fs
