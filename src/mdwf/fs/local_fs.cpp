#include "mdwf/fs/local_fs.hpp"

#include "mdwf/common/assert.hpp"

namespace mdwf::fs {

LocalFs::LocalFs(sim::Simulation& sim, const LocalFsParams& params,
                 storage::BlockDevice& device, storage::PageCache& cache)
    : sim_(&sim),
      params_(params),
      device_(&device),
      cache_(&cache),
      allocator_(device.params().capacity) {}

LocalFs::Inode& LocalFs::inode(InodeId ino) {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) throw FsError("bad inode " + std::to_string(ino));
  return it->second;
}

const LocalFs::Inode& LocalFs::inode(InodeId ino) const {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) throw FsError("bad inode " + std::to_string(ino));
  return it->second;
}

Bytes LocalFs::round_up_alloc(Bytes n) const {
  const std::uint64_t unit = params_.allocation_unit.count();
  return Bytes((n.count() + unit - 1) / unit * unit);
}

sim::Task<void> LocalFs::metadata_op() {
  co_await sim_->delay(params_.metadata_cpu);
}

sim::Task<void> LocalFs::journal_commit() {
  ++journal_commits_;
  if (params_.journal_sync) {
    co_await device_->write(params_.journal_record);
  }
  // Asynchronous journaling batches commits into the background; the cost
  // shows up as device contention only, which the harness ignores for
  // metadata-light workloads.
}

sim::Task<InodeId> LocalFs::create(std::string path, bool exclusive_lock) {
  co_await metadata_op();
  if (by_path_.contains(path)) throw FsError("create: exists: " + path);
  const InodeId id = next_inode_++;
  Inode node;
  node.id = id;
  node.lock = std::make_unique<FileLock>(*sim_);
  if (exclusive_lock) {
    const bool locked = node.lock->try_lock_exclusive();
    MDWF_ASSERT(locked);
  }
  inodes_.emplace(id, std::move(node));
  by_path_.emplace(std::move(path), id);
  co_await journal_commit();
  co_return id;
}

sim::Task<InodeId> LocalFs::open(const std::string& path) {
  co_await metadata_op();
  const auto it = by_path_.find(path);
  if (it == by_path_.end()) throw FsError("open: no such file: " + path);
  co_return it->second;
}

sim::Task<void> LocalFs::unlink(const std::string& path) {
  co_await metadata_op();
  const auto it = by_path_.find(path);
  if (it == by_path_.end()) throw FsError("unlink: no such file: " + path);
  Inode& node = inode(it->second);
  allocator_.release(node.extents);
  cache_->drop(node.id);
  inodes_.erase(node.id);
  by_path_.erase(it);
  co_await journal_commit();
}

sim::Task<void> LocalFs::rename(const std::string& from, std::string to) {
  co_await metadata_op();
  const auto it = by_path_.find(from);
  if (it == by_path_.end()) throw FsError("rename: no such file: " + from);
  const InodeId ino = it->second;
  const auto dst = by_path_.find(to);
  if (dst != by_path_.end()) {
    // Replace: the destination inode is released.
    Inode& victim = inode(dst->second);
    allocator_.release(victim.extents);
    cache_->drop(victim.id);
    inodes_.erase(victim.id);
    by_path_.erase(dst);
  }
  by_path_.erase(from);
  by_path_.emplace(std::move(to), ino);
  co_await journal_commit();
}

bool LocalFs::exists(const std::string& path) const {
  return by_path_.contains(path);
}

std::optional<Bytes> LocalFs::stat(const std::string& path) const {
  const auto it = by_path_.find(path);
  if (it == by_path_.end()) return std::nullopt;
  return inode(it->second).size;
}

std::vector<std::string> LocalFs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = by_path_.lower_bound(prefix); it != by_path_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

sim::Task<void> LocalFs::write(InodeId ino, Bytes offset, Bytes len) {
  Inode& node = inode(ino);
  if (len.is_zero()) co_return;
  const Bytes end = offset + len;
  if (end > node.allocated) {
    // Extending write: allocate and journal the extent map update.
    const Bytes grow = round_up_alloc(end - node.allocated);
    auto extents = allocator_.allocate(grow);
    node.extents.insert(node.extents.end(), extents.begin(), extents.end());
    node.allocated += grow;
    co_await metadata_op();
    co_await journal_commit();
  }
  if (end > node.size) node.size = end;
  if (params_.direct_io) {
    co_await device_->write(len);
    // O_DIRECT bypasses the cache: the bytes are on the device already.
    Inode& post = inode(ino);
    if (end > post.durable) post.durable = end;
  } else {
    co_await cache_->write(ino, offset, len);
  }
}

sim::Task<void> LocalFs::read(InodeId ino, Bytes offset, Bytes len) {
  Inode& node = inode(ino);
  if (offset + len > node.size) {
    throw FsError("read past EOF on inode " + std::to_string(ino));
  }
  if (params_.direct_io) {
    co_await device_->read(len);
  } else {
    co_await cache_->read(ino, offset, len);
  }
}

sim::Task<void> LocalFs::fsync(InodeId ino) {
  inode(ino);  // validate
  co_await cache_->flush(ino);
  co_await journal_commit();
  // Only now — after the data write-back and the journal commit — are the
  // bytes power-loss safe.
  Inode& node = inode(ino);
  if (node.size > node.durable) node.durable = node.size;
}

std::size_t LocalFs::crash() {
  std::size_t torn = 0;
  for (auto& [id, node] : inodes_) {
    if (node.size > node.durable) {
      node.size = node.durable;
      ++torn;
    }
  }
  torn_files_ += torn;
  return torn;
}

Bytes LocalFs::size(InodeId ino) const { return inode(ino).size; }

Bytes LocalFs::durable_size(InodeId ino) const { return inode(ino).durable; }

FileLock& LocalFs::lock(InodeId ino) { return *inode(ino).lock; }

}  // namespace mdwf::fs
