// Stochastic background interference for shared resources.
//
// Models the "other jobs on the cluster" effect the paper observes on Lustre
// at 128/256-pair scale: episodes of background load arrive at exponential
// intervals, each claiming a random fraction of a victim channel/device for
// a lognormal-distributed duration.  Fully seeded and reproducible.
#pragma once

#include <vector>

#include "mdwf/common/rng.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/fs/lustre.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::fs {

struct InterferenceParams {
  // Mean time between episode arrivals.
  Duration mean_interarrival = Duration::milliseconds(400);
  // Episode length: lognormal(mu, sigma) seconds.
  double duration_mu = -2.5;  // median ~82 ms
  double duration_sigma = 0.8;
  // Load claimed by one episode, uniform in [min, max).
  double min_load = 0.10;
  double max_load = 0.65;
  // Fraction of episodes that hit the MDS (metadata storms from other
  // tenants) rather than an OST; an MDS episode occupies service slots.
  double mds_fraction = 0.35;
  std::int64_t mds_slots_taken = 2;
  // Run-to-run intensity: each run draws level ~ lognormal(0, sigma) that
  // scales episode load and rate.  This is what makes some *runs* visibly
  // noisier than others (the paper's 128/256-pair Lustre error bars);
  // within-run noise alone averages out over thousands of frames.
  double run_level_sigma = 0.75;
  // Ceiling on the *stacked* background load of one OST when episodes
  // overlap; a single episode is additionally clamped below it.  Must stay
  // under 1.0 or a device would stop serving the foreground entirely.
  double combined_load_cap = 0.95;

  // Throws std::invalid_argument with a one-line diagnostic on the first
  // out-of-range field; run_ost_interference validates on entry so a bad
  // config fails fast instead of producing nonsense episodes.
  void validate() const;
};

// Runs until `horizon`; episodes target a random OST of `servers`.
// Overlapping episodes on one OST combine (capped below 0.95).
sim::Task<void> run_ost_interference(sim::Simulation& sim,
                                     LustreServers& servers,
                                     InterferenceParams params, Rng rng,
                                     TimePoint horizon);

}  // namespace mdwf::fs
