// Deterministic fault plans.
//
// A `FaultPlan` is a declarative list of fault windows — which resource
// degrades/fails, when, for how long, how badly — resolved to concrete
// virtual-time instants *before* the simulation runs.  All randomness (window
// arrival times, durations, severities, victim choice) is drawn from the
// seeded `mdwf::Rng` at plan-construction time by `FaultClock`, so a given
// (seed, scenario) pair always yields the identical plan and therefore a
// bit-identical run: the determinism contract of `mdwf::sim` is preserved
// under fault injection.
//
// Named scenarios (`make_scenario`) package the what-if studies the paper
// never ran: degraded brokers, slow NVMe, fabric congestion, OST storms.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mdwf/common/rng.hpp"
#include "mdwf/common/time.hpp"

namespace mdwf::fault {

// Which resource class a window strikes.
enum class FaultTarget : std::uint8_t {
  kNodeSsd,    // a compute node's NVMe (index = node)
  kNodeLink,   // a compute node's NIC (index = node)
  kKvsBroker,  // the Flux-style KVS broker (index ignored)
  kLustreOst,  // one Lustre OST device (index = OST)
  kNodeCrash,  // a whole compute node (index = node): crash/kill semantics
  kNodeLoss,   // a whole compute node, permanently (index = node): power
               // loss with no reboot — the node never rejoins; only the
               // membership plane (declare + migrate) lets the run finish
  // Gray failures (fail-slow, not fail-stop): every RPC still succeeds,
  // just slowly or lossily — the failures mdwf::health mitigates.
  kSlowDevice,        // fail-slow NVMe: latency + bandwidth stretch
                      // (index = node, mode kFailSlow)
  kLossyLink,         // lossy NIC link: seeded packet loss + retransmits
                      // (index = node, mode kLossy)
  kSlowNode,          // CPU dilation of the ranks on a node (index = node,
                      // mode kFailSlow)
  kOverloadedServer,  // service-time inflation (index 0 = KVS broker,
                      // index 1 = Lustre MDS + OSTs; mode kFailSlow)
};

// What happens to the target during the window.
enum class FaultMode : std::uint8_t {
  kDegrade,  // severity = fraction of capacity lost (bandwidth/service)
  kOffline,  // resource unreachable: SSD ops queue, link ops fail fast
  kStall,    // broker only: requests queue, none serviced
  kOutage,   // broker only: stall + loss of not-yet-visible commits
  kIoError,  // SSD only: severity = per-op I/O error probability
  kCrash,    // node only: power loss — dirty page cache dropped, un-synced
             // writes torn back to the last fsync/commit barrier, NIC down
             // and in-flight flows torn for the window, then reboot
  kKill,     // node only: process kill — ranks restart from their
             // checkpoint, but storage and page cache survive intact
  kBitFlip,  // SSD/link/OST: severity = per-op silent-corruption probability
  kFailSlow, // gray targets: severity s in [0,1) slows the resource by
             // 1/(1-s) — s=0.9 is a 10x-slow device/server/CPU
  kLossy,    // kLossyLink only: severity = per-packet loss probability;
             // lost packets retransmit (byte inflation + seeded RTO stalls)
  kIsolate,  // kNodeLink only: asymmetric one-way partition — nothing
             // leaves the node (outbound ops fail fast) but inbound
             // traffic still arrives; the zombie/split-brain shape
};

std::string_view to_string(FaultTarget t);
std::string_view to_string(FaultMode m);

// True when `t`'s window index addresses a compute node (as opposed to a
// shared service such as the broker, an OST, or an overloaded server).
bool targets_node(FaultTarget t);

struct FaultWindow {
  FaultTarget target = FaultTarget::kNodeSsd;
  std::uint32_t index = 0;
  FaultMode mode = FaultMode::kDegrade;
  TimePoint start = TimePoint::origin();
  Duration duration = Duration::zero();
  double severity = 0.0;

  TimePoint end() const { return start + duration; }
};

struct FaultPlan {
  std::vector<FaultWindow> windows;
  // Stream for probabilistic per-op faults (I/O error draws), forked per
  // device so adding one device's draws never perturbs another's.
  std::uint64_t seed = 42;

  bool empty() const { return windows.empty(); }
  // Latest window end (origin when empty): the instant after which every
  // resource is healthy again.
  TimePoint horizon() const;
};

// Rebases every node-indexed window of `plan` by `node_base`: a tenant's
// fault plan is authored against its own nodes [0, tenant_nodes) and shifted
// onto the tenant's slice of the shared testbed.  Shared-service windows
// (broker, OSTs, overload) keep their indices — they hit everyone.
void shift_node_targets(FaultPlan& plan, std::uint32_t node_base);

// True when the plan crashes or kills a node in [first, first + count): the
// per-tenant form of FaultInjector::has_crash_windows, used to arm the
// crash-aware rank loops and checkpoints only for the tenants that need them.
bool has_crash_in_nodes(const FaultPlan& plan, std::uint32_t first,
                        std::uint32_t count);

// A recurring stochastic fault source: windows arrive at exponential
// intervals, last a lognormal duration, claim a uniform severity, and strike
// a uniformly chosen victim among `target_pool` instances.
struct FaultProcess {
  FaultTarget target = FaultTarget::kNodeSsd;
  FaultMode mode = FaultMode::kDegrade;
  std::uint32_t target_pool = 1;
  Duration mean_interarrival = Duration::milliseconds(500);
  // Window length: lognormal(mu, sigma) seconds.
  double duration_mu = -2.5;
  double duration_sigma = 0.6;
  // Severity uniform in [min, max).
  double min_severity = 0.2;
  double max_severity = 0.8;
};

// Materializes stochastic fault processes into concrete windows, consuming
// the seeded stream deterministically.  This is the only place randomness
// enters the fault subsystem: by run time a plan is pure data.
class FaultClock {
 public:
  explicit FaultClock(Rng rng) : rng_(rng) {}

  // Appends windows for `process` arriving in [from, horizon) to `plan`.
  void materialize(const FaultProcess& process, TimePoint from,
                   TimePoint horizon, FaultPlan& plan);

 private:
  Rng rng_;
};

// Cluster shape a scenario is instantiated against.
struct ScenarioShape {
  std::uint32_t compute_nodes = 2;
  std::uint32_t ost_count = 8;
  // Window in which faults may strike (should cover the workload).
  TimePoint start = TimePoint::origin() + Duration::milliseconds(200);
  Duration span = Duration::seconds_i(30);
  std::uint64_t seed = 42;
};

// Named what-if scenarios; throws std::invalid_argument on unknown names.
//   none           healthy cluster (empty plan)
//   broker-blip    one short KVS broker stall
//   broker-outage  KVS broker outage (stall + loss of pending commits)
//   slow-nvme      every node SSD at a fraction of its bandwidth
//   flaky-fabric   recurring NIC degradation episodes on random nodes
//   partition      one consumer-side node link down for a window
//   ost-storm      recurring heavy load episodes on random OSTs
//   node-crash     node 0 loses power mid-run (dirty pages dropped, torn
//                  writes, NIC down) and reboots after the window
//   rank-kill      the ranks on node 0 are killed and restarted (storage
//                  survives); also accepted as "kill"
//   bit-flip       nonzero silent-corruption rates on every SSD, NIC link,
//                  and OST for the span
//   crash-flip     node-crash + bit-flip combined (the PR-3 acceptance run)
//   crash:<n>      node <n> loses power mid-run (parameterized node-crash)
//   slow-disk      every node SSD fail-slow at 10x latency / 0.1x bandwidth
//                  for the span (a dying NVMe, not a dead one)
//   lossy-link     recurring seeded packet-loss episodes on random node
//                  links (retransmit inflation + RTO stalls)
//   overload       KVS broker service times stretch 100x and Lustre
//                  MDS/OST service times 2.5x for the span (metadata-storm
//                  co-tenant); the headline mdwf::health scenario
//   node-loss      node 0 loses power mid-run and never reboots; only a
//                  membership plane (declare-dead + rank migration) lets
//                  the run complete, otherwise the deadlock reporter fires
//   loss-after-publish  like node-loss but struck later, after frames have
//                  been published — the migrated ranks re-execute only the
//                  lost tail past the checkpoint
//   heal-after-declare  asymmetric one-way partition on node 0 that heals
//                  after the declare ceiling: the isolated node keeps
//                  working (a zombie), is declared lost, and its stale
//                  incarnation is fenced when the partition heals
FaultPlan make_scenario(std::string_view name, const ScenarioShape& shape);

// Every name `make_scenario` accepts, in a stable order.
const std::vector<std::string>& scenario_names();

}  // namespace mdwf::fault
