#include "mdwf/fault/plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "mdwf/common/suggest.hpp"

namespace mdwf::fault {

std::string_view to_string(FaultTarget t) {
  switch (t) {
    case FaultTarget::kNodeSsd:
      return "node-ssd";
    case FaultTarget::kNodeLink:
      return "node-link";
    case FaultTarget::kKvsBroker:
      return "kvs-broker";
    case FaultTarget::kLustreOst:
      return "lustre-ost";
    case FaultTarget::kNodeCrash:
      return "node-crash";
    case FaultTarget::kNodeLoss:
      return "node-loss";
    case FaultTarget::kSlowDevice:
      return "slow-device";
    case FaultTarget::kLossyLink:
      return "lossy-link";
    case FaultTarget::kSlowNode:
      return "slow-node";
    case FaultTarget::kOverloadedServer:
      return "overloaded-server";
  }
  return "?";
}

std::string_view to_string(FaultMode m) {
  switch (m) {
    case FaultMode::kDegrade:
      return "degrade";
    case FaultMode::kOffline:
      return "offline";
    case FaultMode::kStall:
      return "stall";
    case FaultMode::kOutage:
      return "outage";
    case FaultMode::kIoError:
      return "io-error";
    case FaultMode::kCrash:
      return "crash";
    case FaultMode::kKill:
      return "kill";
    case FaultMode::kBitFlip:
      return "bit-flip";
    case FaultMode::kFailSlow:
      return "fail-slow";
    case FaultMode::kLossy:
      return "lossy";
    case FaultMode::kIsolate:
      return "isolate";
  }
  return "?";
}

bool targets_node(FaultTarget t) {
  switch (t) {
    case FaultTarget::kNodeSsd:
    case FaultTarget::kNodeLink:
    case FaultTarget::kNodeCrash:
    case FaultTarget::kNodeLoss:
    case FaultTarget::kSlowDevice:
    case FaultTarget::kLossyLink:
    case FaultTarget::kSlowNode:
      return true;
    case FaultTarget::kKvsBroker:
    case FaultTarget::kLustreOst:
    case FaultTarget::kOverloadedServer:
      return false;
  }
  return false;
}

TimePoint FaultPlan::horizon() const {
  TimePoint h = TimePoint::origin();
  for (const auto& w : windows) h = std::max(h, w.end());
  return h;
}

void shift_node_targets(FaultPlan& plan, std::uint32_t node_base) {
  for (auto& w : plan.windows) {
    if (targets_node(w.target)) w.index += node_base;
  }
}

bool has_crash_in_nodes(const FaultPlan& plan, std::uint32_t first,
                        std::uint32_t count) {
  for (const auto& w : plan.windows) {
    if ((w.target == FaultTarget::kNodeCrash ||
         w.target == FaultTarget::kNodeLoss) &&
        w.index >= first && w.index < first + count) {
      return true;
    }
  }
  return false;
}

void FaultClock::materialize(const FaultProcess& process, TimePoint from,
                             TimePoint horizon, FaultPlan& plan) {
  const double rate = 1.0 / process.mean_interarrival.to_seconds();
  TimePoint t = from;
  for (;;) {
    t = t + Duration::seconds(rng_.exponential(rate));
    if (t >= horizon) break;
    FaultWindow w;
    w.target = process.target;
    w.index = static_cast<std::uint32_t>(rng_.next_below(process.target_pool));
    w.mode = process.mode;
    w.start = t;
    w.duration = Duration::seconds(
        rng_.lognormal(process.duration_mu, process.duration_sigma));
    w.severity = rng_.uniform(process.min_severity, process.max_severity);
    plan.windows.push_back(w);
  }
}

namespace {

FaultWindow window(FaultTarget target, std::uint32_t index, FaultMode mode,
                   TimePoint start, Duration duration, double severity) {
  return FaultWindow{target, index, mode, start, duration, severity};
}

// One power-loss window on `victim` shortly into the span: long enough for
// torn writes and in-flight flows to exist, short enough that the rebooted
// node rejoins and finishes the run.
void add_node_crash(FaultPlan& plan, std::uint32_t victim, TimePoint start,
                    Duration span) {
  const Duration offset =
      std::min(Duration(span.ns() / 3), Duration::seconds_i(2));
  plan.windows.push_back(window(FaultTarget::kNodeCrash, victim,
                                FaultMode::kCrash, start + offset,
                                Duration::milliseconds(400), 1.0));
}

// Per-op silent-corruption rates on every SSD, every NIC link, and every
// OST for the whole span.  The rates are high by hardware standards so a
// short test run still exercises detect -> re-fetch.
void add_bit_flips(FaultPlan& plan, const ScenarioShape& shape,
                   TimePoint start, Duration span) {
  for (std::uint32_t n = 0; n < shape.compute_nodes; ++n) {
    plan.windows.push_back(window(FaultTarget::kNodeSsd, n, FaultMode::kBitFlip,
                                  start, span, 0.02));
    plan.windows.push_back(window(FaultTarget::kNodeLink, n,
                                  FaultMode::kBitFlip, start, span, 0.01));
  }
  for (std::uint32_t o = 0; o < shape.ost_count; ++o) {
    plan.windows.push_back(window(FaultTarget::kLustreOst, o,
                                  FaultMode::kBitFlip, start, span, 0.01));
  }
}

// Permanent power loss on `victim`: same begin semantics as a crash (dirty
// pages dropped, torn writes, NIC down, flows torn) but no reboot is ever
// scheduled.  `late` strikes at half the span so published frames exist.
void add_node_loss(FaultPlan& plan, std::uint32_t victim, TimePoint start,
                   Duration span, bool late) {
  const Duration offset =
      late ? std::min(Duration(span.ns() / 2), Duration::seconds_i(3))
           : std::min(Duration(span.ns() / 3), Duration::seconds_i(2));
  plan.windows.push_back(window(FaultTarget::kNodeLoss, victim,
                                FaultMode::kCrash, start + offset, span, 1.0));
}

}  // namespace

FaultPlan make_scenario(std::string_view name, const ScenarioShape& shape) {
  FaultPlan plan;
  plan.seed = shape.seed;
  const TimePoint start = shape.start;
  const TimePoint horizon = shape.start + shape.span;
  FaultClock clock(Rng(shape.seed).fork(name));

  if (name == "none") {
    return plan;
  }
  if (name == "broker-blip") {
    plan.windows.push_back(window(FaultTarget::kKvsBroker, 0, FaultMode::kStall,
                                  start, Duration::milliseconds(80), 1.0));
    return plan;
  }
  if (name == "broker-outage") {
    plan.windows.push_back(window(FaultTarget::kKvsBroker, 0,
                                  FaultMode::kOutage, start,
                                  Duration::milliseconds(250), 1.0));
    return plan;
  }
  if (name == "slow-nvme") {
    // Every node's NVMe runs at 30% of nominal bandwidth for the span —
    // a worn/thermally-throttled burst buffer.
    for (std::uint32_t n = 0; n < shape.compute_nodes; ++n) {
      plan.windows.push_back(window(FaultTarget::kNodeSsd, n,
                                    FaultMode::kDegrade, start, shape.span,
                                    0.7));
    }
    return plan;
  }
  if (name == "flaky-fabric") {
    FaultProcess p;
    p.target = FaultTarget::kNodeLink;
    p.mode = FaultMode::kDegrade;
    p.target_pool = shape.compute_nodes;
    p.mean_interarrival = Duration::milliseconds(600);
    p.duration_mu = -2.0;  // median ~135 ms
    p.duration_sigma = 0.6;
    p.min_severity = 0.3;
    p.max_severity = 0.85;
    clock.materialize(p, start, horizon, plan);
    return plan;
  }
  if (name == "partition") {
    // The last compute node (a consumer node under split placement) drops
    // off the fabric; in-flight and new operations fail fast.
    const std::uint32_t victim =
        shape.compute_nodes > 0 ? shape.compute_nodes - 1 : 0;
    plan.windows.push_back(window(FaultTarget::kNodeLink, victim,
                                  FaultMode::kOffline, start,
                                  Duration::milliseconds(150), 1.0));
    return plan;
  }
  if (name == "ost-storm") {
    FaultProcess p;
    p.target = FaultTarget::kLustreOst;
    p.mode = FaultMode::kDegrade;
    p.target_pool = shape.ost_count;
    p.mean_interarrival = Duration::milliseconds(300);
    p.duration_mu = -1.6;  // median ~200 ms
    p.duration_sigma = 0.7;
    p.min_severity = 0.5;
    p.max_severity = 0.9;
    clock.materialize(p, start, horizon, plan);
    return plan;
  }
  if (name == "node-crash" || name == "crash") {
    add_node_crash(plan, 0, start, shape.span);
    return plan;
  }
  if (name == "rank-kill" || name == "kill") {
    // An instantaneous SIGKILL of the ranks on node 0: storage survives, the
    // restarted ranks re-execute everything past their last checkpoint.
    const Duration offset =
        std::min(Duration(shape.span.ns() / 3), Duration::seconds_i(2));
    plan.windows.push_back(window(FaultTarget::kNodeCrash, 0, FaultMode::kKill,
                                  start + offset, Duration::milliseconds(1),
                                  1.0));
    return plan;
  }
  if (name == "bit-flip") {
    add_bit_flips(plan, shape, start, shape.span);
    return plan;
  }
  if (name == "crash-flip") {
    add_node_crash(plan, 0, start, shape.span);
    add_bit_flips(plan, shape, start, shape.span);
    return plan;
  }
  if (name == "slow-disk") {
    // Fail-slow NVMe on every node: 10x op latency, 1/10th bandwidth —
    // the dying-but-not-dead device gray failure.
    for (std::uint32_t n = 0; n < shape.compute_nodes; ++n) {
      plan.windows.push_back(window(FaultTarget::kSlowDevice, n,
                                    FaultMode::kFailSlow, start, shape.span,
                                    0.9));
    }
    return plan;
  }
  if (name == "lossy-link") {
    // Recurring packet-loss episodes on random node links; retransmits
    // inflate every flow touching the victim and stall on seeded RTOs.
    FaultProcess p;
    p.target = FaultTarget::kLossyLink;
    p.mode = FaultMode::kLossy;
    p.target_pool = shape.compute_nodes;
    p.mean_interarrival = Duration::milliseconds(400);
    p.duration_mu = -1.4;  // median ~250 ms
    p.duration_sigma = 0.6;
    p.min_severity = 0.1;
    p.max_severity = 0.4;
    clock.materialize(p, start, horizon, plan);
    return plan;
  }
  if (name == "overload") {
    // A metadata-storm co-tenant: the KVS broker serves 100x slow for the
    // span and the Lustre MDS/OSTs 2.5x slow.  DYAD lookups queue behind
    // the sick broker unless mdwf::health routes around it.
    plan.windows.push_back(window(FaultTarget::kOverloadedServer, 0,
                                  FaultMode::kFailSlow, start, shape.span,
                                  0.99));
    plan.windows.push_back(window(FaultTarget::kOverloadedServer, 1,
                                  FaultMode::kFailSlow, start, shape.span,
                                  0.6));
    return plan;
  }
  if (name == "node-loss") {
    add_node_loss(plan, 0, start, shape.span, /*late=*/false);
    return plan;
  }
  if (name == "loss-after-publish") {
    add_node_loss(plan, 0, start, shape.span, /*late=*/true);
    return plan;
  }
  if (name == "heal-after-declare") {
    // One-way partition on node 0, long enough for the membership plane to
    // declare it lost (confirm window + silence ceiling are an order of
    // magnitude shorter), then healed: the zombie's stale incarnation must
    // be fenced, not re-admitted.
    const Duration offset =
        std::min(Duration(shape.span.ns() / 3), Duration::seconds_i(2));
    plan.windows.push_back(window(FaultTarget::kNodeLink, 0,
                                  FaultMode::kIsolate, start + offset,
                                  Duration::milliseconds(1200), 1.0));
    return plan;
  }
  if (name.starts_with("crash:")) {
    const std::string arg(name.substr(6));
    char* end = nullptr;
    const unsigned long victim = std::strtoul(arg.c_str(), &end, 10);
    if (end == arg.c_str() || *end != '\0' ||
        victim >= shape.compute_nodes) {
      throw std::invalid_argument("bad crash victim in scenario '" +
                                  std::string(name) + "'");
    }
    add_node_crash(plan, static_cast<std::uint32_t>(victim), start,
                   shape.span);
    return plan;
  }
  throw std::invalid_argument("unknown fault scenario '" + std::string(name) +
                              "'" + did_you_mean(name, scenario_names()));
}

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = {
      "none",      "broker-blip", "broker-outage", "slow-nvme",
      "flaky-fabric", "partition", "ost-storm",    "node-crash",
      "rank-kill", "bit-flip",    "crash-flip",    "slow-disk",
      "lossy-link", "overload",   "node-loss",     "loss-after-publish",
      "heal-after-declare"};
  return names;
}

}  // namespace mdwf::fault
