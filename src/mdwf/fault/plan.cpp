#include "mdwf/fault/plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace mdwf::fault {

std::string_view to_string(FaultTarget t) {
  switch (t) {
    case FaultTarget::kNodeSsd:
      return "node-ssd";
    case FaultTarget::kNodeLink:
      return "node-link";
    case FaultTarget::kKvsBroker:
      return "kvs-broker";
    case FaultTarget::kLustreOst:
      return "lustre-ost";
  }
  return "?";
}

std::string_view to_string(FaultMode m) {
  switch (m) {
    case FaultMode::kDegrade:
      return "degrade";
    case FaultMode::kOffline:
      return "offline";
    case FaultMode::kStall:
      return "stall";
    case FaultMode::kOutage:
      return "outage";
    case FaultMode::kIoError:
      return "io-error";
  }
  return "?";
}

TimePoint FaultPlan::horizon() const {
  TimePoint h = TimePoint::origin();
  for (const auto& w : windows) h = std::max(h, w.end());
  return h;
}

void FaultClock::materialize(const FaultProcess& process, TimePoint from,
                             TimePoint horizon, FaultPlan& plan) {
  const double rate = 1.0 / process.mean_interarrival.to_seconds();
  TimePoint t = from;
  for (;;) {
    t = t + Duration::seconds(rng_.exponential(rate));
    if (t >= horizon) break;
    FaultWindow w;
    w.target = process.target;
    w.index = static_cast<std::uint32_t>(rng_.next_below(process.target_pool));
    w.mode = process.mode;
    w.start = t;
    w.duration = Duration::seconds(
        rng_.lognormal(process.duration_mu, process.duration_sigma));
    w.severity = rng_.uniform(process.min_severity, process.max_severity);
    plan.windows.push_back(w);
  }
}

namespace {

FaultWindow window(FaultTarget target, std::uint32_t index, FaultMode mode,
                   TimePoint start, Duration duration, double severity) {
  return FaultWindow{target, index, mode, start, duration, severity};
}

}  // namespace

FaultPlan make_scenario(std::string_view name, const ScenarioShape& shape) {
  FaultPlan plan;
  plan.seed = shape.seed;
  const TimePoint start = shape.start;
  const TimePoint horizon = shape.start + shape.span;
  FaultClock clock(Rng(shape.seed).fork(name));

  if (name == "none") {
    return plan;
  }
  if (name == "broker-blip") {
    plan.windows.push_back(window(FaultTarget::kKvsBroker, 0, FaultMode::kStall,
                                  start, Duration::milliseconds(80), 1.0));
    return plan;
  }
  if (name == "broker-outage") {
    plan.windows.push_back(window(FaultTarget::kKvsBroker, 0,
                                  FaultMode::kOutage, start,
                                  Duration::milliseconds(250), 1.0));
    return plan;
  }
  if (name == "slow-nvme") {
    // Every node's NVMe runs at 30% of nominal bandwidth for the span —
    // a worn/thermally-throttled burst buffer.
    for (std::uint32_t n = 0; n < shape.compute_nodes; ++n) {
      plan.windows.push_back(window(FaultTarget::kNodeSsd, n,
                                    FaultMode::kDegrade, start, shape.span,
                                    0.7));
    }
    return plan;
  }
  if (name == "flaky-fabric") {
    FaultProcess p;
    p.target = FaultTarget::kNodeLink;
    p.mode = FaultMode::kDegrade;
    p.target_pool = shape.compute_nodes;
    p.mean_interarrival = Duration::milliseconds(600);
    p.duration_mu = -2.0;  // median ~135 ms
    p.duration_sigma = 0.6;
    p.min_severity = 0.3;
    p.max_severity = 0.85;
    clock.materialize(p, start, horizon, plan);
    return plan;
  }
  if (name == "partition") {
    // The last compute node (a consumer node under split placement) drops
    // off the fabric; in-flight and new operations fail fast.
    const std::uint32_t victim =
        shape.compute_nodes > 0 ? shape.compute_nodes - 1 : 0;
    plan.windows.push_back(window(FaultTarget::kNodeLink, victim,
                                  FaultMode::kOffline, start,
                                  Duration::milliseconds(150), 1.0));
    return plan;
  }
  if (name == "ost-storm") {
    FaultProcess p;
    p.target = FaultTarget::kLustreOst;
    p.mode = FaultMode::kDegrade;
    p.target_pool = shape.ost_count;
    p.mean_interarrival = Duration::milliseconds(300);
    p.duration_mu = -1.6;  // median ~200 ms
    p.duration_sigma = 0.7;
    p.min_severity = 0.5;
    p.max_severity = 0.9;
    clock.materialize(p, start, horizon, plan);
    return plan;
  }
  throw std::invalid_argument("unknown fault scenario '" + std::string(name) +
                              "'");
}

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = {
      "none",      "broker-blip", "broker-outage", "slow-nvme",
      "flaky-fabric", "partition", "ost-storm"};
  return names;
}

}  // namespace mdwf::fault
