#include "mdwf/fault/injector.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "mdwf/common/assert.hpp"

namespace mdwf::fault {

namespace {

// Trace lane (thread name) a fault window appears on: one per resource.
std::string trace_lane(const FaultWindow& w) {
  switch (w.target) {
    case FaultTarget::kNodeSsd:
      return "node" + std::to_string(w.index) + ".nvme";
    case FaultTarget::kNodeLink:
      return "node" + std::to_string(w.index) + ".nic";
    case FaultTarget::kKvsBroker:
      return "kvs";
    case FaultTarget::kLustreOst:
      return "ost" + std::to_string(w.index);
    case FaultTarget::kNodeCrash:
    case FaultTarget::kNodeLoss:
      return "node" + std::to_string(w.index);
    case FaultTarget::kSlowDevice:
      return "node" + std::to_string(w.index) + ".nvme";
    case FaultTarget::kLossyLink:
      return "node" + std::to_string(w.index) + ".nic";
    case FaultTarget::kSlowNode:
      return "node" + std::to_string(w.index) + ".cpu";
    case FaultTarget::kOverloadedServer:
      return w.index == 0 ? "kvs" : "lustre";
  }
  return "unknown";
}

std::string trace_name(const FaultWindow& w) {
  std::string name(to_string(w.mode));
  if (w.severity > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " s=%.2f", w.severity);
    name += buf;
  }
  return name;
}

// Combined capacity loss of overlapping degradations: each window removes
// its severity fraction of what the previous ones left.  Capped below 1 so
// fair-share channels keep a nonzero rate (an offline window is the way to
// model a total loss).
double combined_degrade(const std::vector<double>& severities) {
  double remaining = 1.0;
  for (const double s : severities) remaining *= (1.0 - s);
  return std::min(1.0 - remaining, 0.95);
}

// Overlapping fail-slow windows compose like degradations on the speed
// axis: each removes its severity fraction of the remaining speed.  Capped
// at 100x slow — gray failures stay live, they do not become outages.
double slowdown_factor(const std::vector<double>& severities) {
  double remaining = 1.0;
  for (const double s : severities) remaining *= (1.0 - s);
  return 1.0 / std::max(remaining, 0.01);
}

// Packet-loss probabilities of overlapping lossy windows compose like
// independent drop stages; capped so retransmission always converges.
double combined_loss(const std::vector<double>& severities) {
  double survive = 1.0;
  for (const double s : severities) survive *= (1.0 - s);
  return std::min(1.0 - survive, 0.9);
}

}  // namespace

std::uint64_t CrashMonitor::epoch(std::uint32_t node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.epoch;
}

bool CrashMonitor::down(std::uint32_t node) const {
  const auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.down_depth > 0;
}

sim::Task<void> CrashMonitor::wait_up(std::uint32_t node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.down_depth == 0) co_return;
  // Hold a reference: the monitor swaps in a fresh event per down period.
  const std::shared_ptr<sim::Event> up = it->second.up;
  co_await up->wait();
}

void CrashMonitor::begin_crash(std::uint32_t node, bool power_loss) {
  NodeState& st = nodes_[node];
  ++st.epoch;
  ++crashes_;
  if (power_loss) {
    if (st.down_depth++ == 0) {
      st.up = std::make_shared<sim::Event>(*sim_);
    }
  }
}

void CrashMonitor::end_crash(std::uint32_t node) {
  NodeState& st = nodes_[node];
  if (st.down_depth > 0 && --st.down_depth == 0 && st.up) {
    st.up->trigger();
  }
}

FaultInjector::FaultInjector(sim::Simulation& sim, FaultPlan plan)
    : sim_(&sim),
      plan_(std::move(plan)),
      monitor_(std::make_unique<CrashMonitor>(sim)) {}

void FaultInjector::attach_node_ssd(std::uint32_t node,
                                    storage::BlockDevice& device) {
  node_ssds_[node] = &device;
  device.reseed_fault_rng(
      Rng(plan_.seed).fork("io-error/node" + std::to_string(node)));
}

void FaultInjector::attach_network(net::Network& network) {
  network_ = &network;
  // Retransmit draws of lossy-link windows are a function of the plan seed
  // alone, like the per-device I/O error streams.
  network.seed_loss(Rng(plan_.seed).fork("lossy-link"));
}

void FaultInjector::attach_kvs(kvs::KvsServer& server) { kvs_ = &server; }

void FaultInjector::attach_lustre(fs::LustreServers& servers) {
  lustre_ = &servers;
  for (std::uint32_t i = 0; i < servers.ost_count(); ++i) {
    servers.ost_device(i).reseed_fault_rng(
        Rng(plan_.seed).fork("io-error/ost" + std::to_string(i)));
  }
}

void FaultInjector::attach_node_fs(std::uint32_t node,
                                   storage::PageCache& cache,
                                   fs::LocalFs& fs) {
  node_fs_[node] = NodeFs{&cache, &fs};
}

void FaultInjector::attach_integrity(integrity::Ledger& ledger) {
  integrity_ = &ledger;
}

void FaultInjector::attach_stream(std::uint32_t node,
                                  stream::StreamNode& staging) {
  streams_[node] = &staging;
}

bool FaultInjector::has_crash_windows() const {
  for (const FaultWindow& w : plan_.windows) {
    if (w.target == FaultTarget::kNodeCrash ||
        w.target == FaultTarget::kNodeLoss ||
        w.mode == FaultMode::kIsolate) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::node_lost(std::uint32_t node) const {
  for (const FaultWindow& w : plan_.windows) {
    if (w.target == FaultTarget::kNodeLoss && w.index == node) return true;
  }
  return false;
}

void FaultInjector::set_trace(obs::TraceSink* sink) {
  MDWF_ASSERT_MSG(!armed_, "set_trace after arm");
  trace_ = sink;
}

void FaultInjector::arm() {
  MDWF_ASSERT_MSG(!armed_, "fault injector armed twice");
  armed_ = true;
  began_.assign(plan_.windows.size(), false);
  ended_.assign(plan_.windows.size(), false);
  for (std::size_t i = 0; i < plan_.windows.size(); ++i) {
    const FaultWindow& w = plan_.windows[i];
    sim_->call_at(w.start, [this, i] {
      began_[i] = true;
      apply(plan_.windows[i], /*begin=*/true);
    });
    // Permanent loss has no end: the node never rejoins, so no recovery
    // callback is scheduled and finalize_trace() exports the open window.
    if (w.target == FaultTarget::kNodeLoss) continue;
    sim_->call_at(w.end(), [this, i] {
      ended_[i] = true;
      apply(plan_.windows[i], /*begin=*/false);
      // Annotate at close time, so a bounded run that stops mid-window can
      // still export the open remainder via finalize_trace().
      emit_span(plan_.windows[i], plan_.windows[i].duration, /*open=*/false);
    });
  }
}

void FaultInjector::emit_span(const FaultWindow& w, Duration duration,
                              bool open) {
  if (trace_ == nullptr) return;
  // Cold path: fault windows are few, so interning at emit time is the
  // wiring-time phase for this emitter.
  const obs::TrackId track = trace_->track("faults", trace_lane(w));
  std::string name = trace_name(w);
  if (open) name += " (open)";
  trace_->span(trace_->span_id(track, name, "fault"), w.start, duration);
}

void FaultInjector::finalize_trace() {
  if (trace_ == nullptr || trace_finalized_ || !armed_) return;
  trace_finalized_ = true;
  for (std::size_t i = 0; i < plan_.windows.size(); ++i) {
    if (began_[i] && !ended_[i]) {
      emit_span(plan_.windows[i], sim_->now() - plan_.windows[i].start,
                /*open=*/true);
    }
  }
}

double FaultInjector::cpu_dilation(std::uint32_t node) const {
  const auto it = cpu_dilation_.find(node);
  return it == cpu_dilation_.end() ? 1.0 : it->second;
}

storage::BlockDevice* FaultInjector::device_for(FaultTarget target,
                                                std::uint32_t index) {
  if (target == FaultTarget::kNodeSsd || target == FaultTarget::kSlowDevice) {
    const auto it = node_ssds_.find(index);
    return it == node_ssds_.end() ? nullptr : it->second;
  }
  if (target == FaultTarget::kLustreOst) {
    if (lustre_ == nullptr || index >= lustre_->ost_count()) return nullptr;
    return &lustre_->ost_device(index);
  }
  return nullptr;
}

void FaultInjector::refresh_device(storage::BlockDevice& device,
                                   const Active& a) {
  device.set_fault_degradation(combined_degrade(a.degrades));
  device.set_offline(a.offline_depth > 0);
  device.set_io_error_p(
      a.io_errors.empty()
          ? 0.0
          : *std::max_element(a.io_errors.begin(), a.io_errors.end()));
}

void FaultInjector::apply_bitflip(const FaultWindow& w, Active& a,
                                  bool begin) {
  if (integrity_ == nullptr) {
    ++skipped_;
    return;
  }
  if (begin) {
    a.bitflips.push_back(w.severity);
  } else {
    const auto it = std::find(a.bitflips.begin(), a.bitflips.end(),
                              w.severity);
    MDWF_ASSERT_MSG(it != a.bitflips.end(),
                    "bit-flip window ended but never began");
    a.bitflips.erase(it);
  }
  const double rate =
      a.bitflips.empty()
          ? 0.0
          : *std::max_element(a.bitflips.begin(), a.bitflips.end());
  switch (w.target) {
    case FaultTarget::kNodeSsd:
      integrity_->set_ssd_rate(w.index, rate);
      break;
    case FaultTarget::kNodeLink:
      integrity_->set_link_rate(w.index, rate);
      break;
    case FaultTarget::kLustreOst:
      integrity_->set_ost_rate(w.index, rate);
      break;
    default:
      MDWF_ASSERT_MSG(false, "unsupported bit-flip target");
  }
  if (begin) ++applied_;
}

void FaultInjector::apply_crash(const FaultWindow& w, bool begin) {
  if (w.mode == FaultMode::kKill) {
    // Instantaneous: the ranks restart from their checkpoints, storage and
    // page cache survive.  Nothing to undo at window end.
    if (begin) {
      monitor_->begin_crash(w.index, /*power_loss=*/false);
      ++applied_;
    }
    return;
  }
  MDWF_ASSERT_MSG(w.mode == FaultMode::kCrash,
                  "unsupported fault mode for a node crash");
  // The SSD-offline and link-down states share the depth counters of the
  // per-resource targets so an overlapping kNodeSsd/kNodeLink offline
  // window composes instead of fighting over the device flag.
  auto& ssd_a = active_[{static_cast<std::uint8_t>(FaultTarget::kNodeSsd),
                         w.index}];
  auto& link_a = active_[{static_cast<std::uint8_t>(FaultTarget::kNodeLink),
                          w.index}];
  if (begin) {
    monitor_->begin_crash(w.index, /*power_loss=*/true);
    // Volatile state dies first: dirty pages vanish, un-synced extents are
    // torn back to the last barrier on the local fs and in the Lustre
    // journal.
    const auto nf = node_fs_.find(w.index);
    if (nf != node_fs_.end()) {
      if (nf->second.cache != nullptr) nf->second.cache->crash_drop_dirty();
      if (nf->second.fs != nullptr) nf->second.fs->crash();
    }
    if (lustre_ != nullptr) lustre_->client_crash(net::NodeId{w.index});
    // Stream staging buffers are RAM too: staged frames and credit state
    // die with the power (kills above leave them intact).
    const auto st = streams_.find(w.index);
    if (st != streams_.end()) st->second->on_power_loss();
    // Then the node drops off the fabric, tearing in-flight flows, and its
    // SSD stops serving (ops queue until "reboot").
    if (network_ != nullptr) {
      ++link_a.offline_depth;
      network_->crash_node(net::NodeId{w.index});
    }
    const auto dev = node_ssds_.find(w.index);
    if (dev != node_ssds_.end()) {
      ++ssd_a.offline_depth;
      refresh_device(*dev->second, ssd_a);
    }
    ++applied_;
  } else {
    if (network_ != nullptr) {
      --link_a.offline_depth;
      network_->set_link_down(net::NodeId{w.index},
                              link_a.offline_depth > 0);
    }
    const auto dev = node_ssds_.find(w.index);
    if (dev != node_ssds_.end()) {
      --ssd_a.offline_depth;
      refresh_device(*dev->second, ssd_a);
    }
    monitor_->end_crash(w.index);
  }
}

void FaultInjector::apply(const FaultWindow& w, bool begin) {
  if (w.target == FaultTarget::kNodeCrash ||
      w.target == FaultTarget::kNodeLoss) {
    apply_crash(w, begin);
    return;
  }
  auto& a = active_[{static_cast<std::uint8_t>(w.target), w.index}];
  if (w.mode == FaultMode::kBitFlip) {
    apply_bitflip(w, a, begin);
    return;
  }
  auto toggle = [begin](std::vector<double>& v, double s) {
    if (begin) {
      v.push_back(s);
    } else {
      const auto it = std::find(v.begin(), v.end(), s);
      MDWF_ASSERT_MSG(it != v.end(), "fault window ended but never began");
      v.erase(it);
    }
  };

  switch (w.target) {
    case FaultTarget::kNodeSsd:
    case FaultTarget::kLustreOst: {
      storage::BlockDevice* device = device_for(w.target, w.index);
      if (device == nullptr) {
        ++skipped_;
        return;
      }
      switch (w.mode) {
        case FaultMode::kDegrade:
          toggle(a.degrades, w.severity);
          break;
        case FaultMode::kOffline:
          a.offline_depth += begin ? 1 : -1;
          break;
        case FaultMode::kIoError:
          toggle(a.io_errors, w.severity);
          break;
        default:
          MDWF_ASSERT_MSG(false, "unsupported fault mode for a block device");
      }
      refresh_device(*device, a);
      break;
    }
    case FaultTarget::kNodeLink: {
      if (network_ == nullptr) {
        ++skipped_;
        return;
      }
      switch (w.mode) {
        case FaultMode::kDegrade:
          toggle(a.degrades, w.severity);
          network_->set_link_degradation(net::NodeId{w.index},
                                         combined_degrade(a.degrades));
          break;
        case FaultMode::kOffline:
          a.offline_depth += begin ? 1 : -1;
          network_->set_link_down(net::NodeId{w.index}, a.offline_depth > 0);
          break;
        case FaultMode::kIsolate:
          network_->set_link_isolated(net::NodeId{w.index}, begin);
          break;
        default:
          MDWF_ASSERT_MSG(false, "unsupported fault mode for a network link");
      }
      break;
    }
    case FaultTarget::kKvsBroker: {
      if (kvs_ == nullptr) {
        ++skipped_;
        return;
      }
      switch (w.mode) {
        case FaultMode::kStall:
          begin ? kvs_->fault_stall_begin() : kvs_->fault_stall_end();
          break;
        case FaultMode::kOutage:
          begin ? kvs_->fault_outage_begin() : kvs_->fault_outage_end();
          break;
        default:
          MDWF_ASSERT_MSG(false, "unsupported fault mode for the KVS broker");
      }
      break;
    }
    case FaultTarget::kSlowDevice: {
      storage::BlockDevice* device = device_for(w.target, w.index);
      if (device == nullptr) {
        ++skipped_;
        return;
      }
      MDWF_ASSERT_MSG(w.mode == FaultMode::kFailSlow,
                      "unsupported fault mode for a fail-slow device");
      toggle(a.failslows, w.severity);
      device->set_fault_slowdown(slowdown_factor(a.failslows));
      break;
    }
    case FaultTarget::kLossyLink: {
      if (network_ == nullptr) {
        ++skipped_;
        return;
      }
      MDWF_ASSERT_MSG(w.mode == FaultMode::kLossy,
                      "unsupported fault mode for a lossy link");
      toggle(a.failslows, w.severity);
      network_->set_link_loss(net::NodeId{w.index},
                              combined_loss(a.failslows));
      break;
    }
    case FaultTarget::kSlowNode: {
      MDWF_ASSERT_MSG(w.mode == FaultMode::kFailSlow,
                      "unsupported fault mode for a slow node");
      toggle(a.failslows, w.severity);
      cpu_dilation_[w.index] = slowdown_factor(a.failslows);
      break;
    }
    case FaultTarget::kOverloadedServer: {
      MDWF_ASSERT_MSG(w.mode == FaultMode::kFailSlow,
                      "unsupported fault mode for an overloaded server");
      if ((w.index == 0 && kvs_ == nullptr) ||
          (w.index != 0 && lustre_ == nullptr)) {
        ++skipped_;
        return;
      }
      toggle(a.failslows, w.severity);
      const double factor = slowdown_factor(a.failslows);
      if (w.index == 0) {
        kvs_->set_service_dilation(factor);
      } else {
        lustre_->set_service_dilation(factor);
      }
      break;
    }
    case FaultTarget::kNodeCrash:
    case FaultTarget::kNodeLoss:
      break;  // handled above
  }
  if (begin) ++applied_;
}

}  // namespace mdwf::fault
