#include "mdwf/fault/injector.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "mdwf/common/assert.hpp"

namespace mdwf::fault {

namespace {

// Trace lane (thread name) a fault window appears on: one per resource.
std::string trace_lane(const FaultWindow& w) {
  switch (w.target) {
    case FaultTarget::kNodeSsd:
      return "node" + std::to_string(w.index) + ".nvme";
    case FaultTarget::kNodeLink:
      return "node" + std::to_string(w.index) + ".nic";
    case FaultTarget::kKvsBroker:
      return "kvs";
    case FaultTarget::kLustreOst:
      return "ost" + std::to_string(w.index);
  }
  return "unknown";
}

std::string trace_name(const FaultWindow& w) {
  std::string name(to_string(w.mode));
  if (w.severity > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " s=%.2f", w.severity);
    name += buf;
  }
  return name;
}

// Combined capacity loss of overlapping degradations: each window removes
// its severity fraction of what the previous ones left.  Capped below 1 so
// fair-share channels keep a nonzero rate (an offline window is the way to
// model a total loss).
double combined_degrade(const std::vector<double>& severities) {
  double remaining = 1.0;
  for (const double s : severities) remaining *= (1.0 - s);
  return std::min(1.0 - remaining, 0.95);
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulation& sim, FaultPlan plan)
    : sim_(&sim), plan_(std::move(plan)) {}

void FaultInjector::attach_node_ssd(std::uint32_t node,
                                    storage::BlockDevice& device) {
  node_ssds_[node] = &device;
  device.reseed_fault_rng(
      Rng(plan_.seed).fork("io-error/node" + std::to_string(node)));
}

void FaultInjector::attach_network(net::Network& network) {
  network_ = &network;
}

void FaultInjector::attach_kvs(kvs::KvsServer& server) { kvs_ = &server; }

void FaultInjector::attach_lustre(fs::LustreServers& servers) {
  lustre_ = &servers;
  for (std::uint32_t i = 0; i < servers.ost_count(); ++i) {
    servers.ost_device(i).reseed_fault_rng(
        Rng(plan_.seed).fork("io-error/ost" + std::to_string(i)));
  }
}

void FaultInjector::set_trace(obs::TraceSink* sink) {
  MDWF_ASSERT_MSG(!armed_, "set_trace after arm");
  trace_ = sink;
}

void FaultInjector::arm() {
  MDWF_ASSERT_MSG(!armed_, "fault injector armed twice");
  armed_ = true;
  for (const FaultWindow& w : plan_.windows) {
    sim_->call_at(w.start, [this, w] { apply(w, /*begin=*/true); });
    sim_->call_at(w.end(), [this, w] { apply(w, /*begin=*/false); });
    if (trace_ != nullptr) {
      // The plan is pure data: windows are known (and deterministic) before
      // the run, so annotate them up front.
      const obs::TrackId track = trace_->track("faults", trace_lane(w));
      trace_->span(track, trace_name(w), "fault", w.start, w.duration);
    }
  }
}

storage::BlockDevice* FaultInjector::device_for(FaultTarget target,
                                                std::uint32_t index) {
  if (target == FaultTarget::kNodeSsd) {
    const auto it = node_ssds_.find(index);
    return it == node_ssds_.end() ? nullptr : it->second;
  }
  if (target == FaultTarget::kLustreOst) {
    if (lustre_ == nullptr || index >= lustre_->ost_count()) return nullptr;
    return &lustre_->ost_device(index);
  }
  return nullptr;
}

void FaultInjector::refresh_device(storage::BlockDevice& device,
                                   const Active& a) {
  device.set_fault_degradation(combined_degrade(a.degrades));
  device.set_offline(a.offline_depth > 0);
  device.set_io_error_p(
      a.io_errors.empty()
          ? 0.0
          : *std::max_element(a.io_errors.begin(), a.io_errors.end()));
}

void FaultInjector::apply(const FaultWindow& w, bool begin) {
  auto& a = active_[{static_cast<std::uint8_t>(w.target), w.index}];
  auto toggle = [begin](std::vector<double>& v, double s) {
    if (begin) {
      v.push_back(s);
    } else {
      const auto it = std::find(v.begin(), v.end(), s);
      MDWF_ASSERT_MSG(it != v.end(), "fault window ended but never began");
      v.erase(it);
    }
  };

  switch (w.target) {
    case FaultTarget::kNodeSsd:
    case FaultTarget::kLustreOst: {
      storage::BlockDevice* device = device_for(w.target, w.index);
      if (device == nullptr) {
        ++skipped_;
        return;
      }
      switch (w.mode) {
        case FaultMode::kDegrade:
          toggle(a.degrades, w.severity);
          break;
        case FaultMode::kOffline:
          a.offline_depth += begin ? 1 : -1;
          break;
        case FaultMode::kIoError:
          toggle(a.io_errors, w.severity);
          break;
        default:
          MDWF_ASSERT_MSG(false, "unsupported fault mode for a block device");
      }
      refresh_device(*device, a);
      break;
    }
    case FaultTarget::kNodeLink: {
      if (network_ == nullptr) {
        ++skipped_;
        return;
      }
      switch (w.mode) {
        case FaultMode::kDegrade:
          toggle(a.degrades, w.severity);
          network_->set_link_degradation(net::NodeId{w.index},
                                         combined_degrade(a.degrades));
          break;
        case FaultMode::kOffline:
          a.offline_depth += begin ? 1 : -1;
          network_->set_link_down(net::NodeId{w.index}, a.offline_depth > 0);
          break;
        default:
          MDWF_ASSERT_MSG(false, "unsupported fault mode for a network link");
      }
      break;
    }
    case FaultTarget::kKvsBroker: {
      if (kvs_ == nullptr) {
        ++skipped_;
        return;
      }
      switch (w.mode) {
        case FaultMode::kStall:
          begin ? kvs_->fault_stall_begin() : kvs_->fault_stall_end();
          break;
        case FaultMode::kOutage:
          begin ? kvs_->fault_outage_begin() : kvs_->fault_outage_end();
          break;
        default:
          MDWF_ASSERT_MSG(false, "unsupported fault mode for the KVS broker");
      }
      break;
    }
  }
  if (begin) ++applied_;
}

}  // namespace mdwf::fault
