// Fault injector: applies a `FaultPlan` to live resources.
//
// The injector is attached to concrete resources (node SSDs, the network,
// the KVS broker, Lustre OSTs) and, once `arm()`ed, schedules plain-callback
// timers at every window's start and end.  All state transitions happen at
// exact plan instants through the simulation's timer queue, so injection
// perturbs neither process scheduling order nor any model's random stream —
// the run stays bit-reproducible for a fixed (plan, workload) pair.
//
// Overlapping windows compose:
//   degrade   combined loss = 1 - prod(1 - severity_i), capped at 0.95
//   offline   depth-counted (resource back up when every window ended)
//   io-error  effective probability = max of active severities
//   stall / outage  stack through the broker's own depth counter
//   bit-flip  effective probability = max of active severities
//   crash     depth-counted node-down state through the CrashMonitor
//   fail-slow combined slowdown = 1 / prod(1 - severity_i), capped at 100x
//   lossy     combined loss = 1 - prod(1 - severity_i), capped at 0.9
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "mdwf/fault/plan.hpp"
#include "mdwf/fs/local_fs.hpp"
#include "mdwf/fs/lustre.hpp"
#include "mdwf/integrity/ledger.hpp"
#include "mdwf/kvs/kvs.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/storage/block_device.hpp"
#include "mdwf/storage/page_cache.hpp"
#include "mdwf/stream/stream.hpp"

namespace mdwf::fault {

// Per-node crash state, visible to crash-aware ranks.
//
// A node's *epoch* increments on every crash or process kill: a rank
// comparing the epoch around a unit of work knows whether the node failed
// underneath it (work completed into a dropped page cache is lost without
// any exception firing).  While a node is powered off (`down`), restarted
// ranks park in `wait_up`; kills bump the epoch without a down period.
class CrashMonitor {
 public:
  explicit CrashMonitor(sim::Simulation& sim) : sim_(&sim) {}

  std::uint64_t epoch(std::uint32_t node) const;
  bool down(std::uint32_t node) const;
  // Resolves when the node is powered on (immediately if it already is).
  sim::Task<void> wait_up(std::uint32_t node);

  std::uint64_t crashes() const { return crashes_; }

  // Injector-side transitions.
  void begin_crash(std::uint32_t node, bool power_loss);
  void end_crash(std::uint32_t node);

 private:
  struct NodeState {
    std::uint64_t epoch = 0;
    int down_depth = 0;
    std::shared_ptr<sim::Event> up;  // recreated per down period (one-shot)
  };

  sim::Simulation* sim_;
  std::map<std::uint32_t, NodeState> nodes_;
  std::uint64_t crashes_ = 0;
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  // --- Resource attachment (before arm) -------------------------------------
  // Also reseeds the device's fault RNG from the plan seed so per-op I/O
  // error draws are a function of (plan.seed, node) alone.
  void attach_node_ssd(std::uint32_t node, storage::BlockDevice& device);
  void attach_network(net::Network& network);
  void attach_kvs(kvs::KvsServer& server);
  void attach_lustre(fs::LustreServers& servers);
  // Node-local cache + filesystem, needed for crash windows (dirty-page drop
  // and torn-write truncation).
  void attach_node_fs(std::uint32_t node, storage::PageCache& cache,
                      fs::LocalFs& fs);
  // Integrity ledger, needed for bit-flip windows.
  void attach_integrity(integrity::Ledger& ledger);
  // Stream staging node: power-loss crash windows drop its RAM-staged
  // frames (kills keep them, like the page cache).
  void attach_stream(std::uint32_t node, stream::StreamNode& staging);

  // Annotates the trace with one "fault"-category span per plan window, on
  // a "faults" process with one lane per struck resource.  Spans are
  // emitted when a window actually closes; call before arm().
  void set_trace(obs::TraceSink* sink);

  // Schedules begin/end callbacks for every plan window.  Call once, after
  // attaching resources and before running the simulation.
  void arm();

  // Emits spans for windows that began but never ended (a bounded run that
  // stopped inside a fault window): clamped to the current instant and
  // suffixed "(open)".  Call once after the run, before the trace is
  // written; idempotent.
  void finalize_trace();

  // Windows whose target had no attached resource at fire time.
  std::uint64_t windows_skipped() const { return skipped_; }
  std::uint64_t windows_applied() const { return applied_; }

  // Crash state for crash-aware ranks; valid for the injector's lifetime.
  CrashMonitor& monitor() { return *monitor_; }

  // True if the plan contains any node-crash/kill window (ranks then run
  // their crash-aware loops).  Isolation windows count too: an isolated
  // node's ranks need the retry loops to ride out the outbound blackout,
  // and under a membership plane the node can be declared lost and its
  // processes killed while the plan itself holds no crash window.
  bool has_crash_windows() const;

  // True if the plan permanently removes `node` (a kNodeLoss window).
  // Rank loops use this to park instead of polling for a peer that can
  // never come back, so membership-less runs quiesce into the deadlock
  // reporter rather than retrying forever.
  bool node_lost(std::uint32_t node) const;

  // CPU dilation of the ranks on `node` right now (1.0 = nominal); rank
  // loops consult it before each compute burst (kSlowNode windows).
  double cpu_dilation(std::uint32_t node) const;

 private:
  // Active-fault bookkeeping per (target, index).
  struct Active {
    std::vector<double> degrades;
    std::vector<double> io_errors;
    std::vector<double> bitflips;
    std::vector<double> failslows;  // fail-slow / lossy severities
    int offline_depth = 0;
  };

  struct NodeFs {
    storage::PageCache* cache = nullptr;
    fs::LocalFs* fs = nullptr;
  };

  storage::BlockDevice* device_for(FaultTarget target, std::uint32_t index);
  void apply(const FaultWindow& w, bool begin);
  void refresh_device(storage::BlockDevice& device, const Active& a);
  void apply_bitflip(const FaultWindow& w, Active& a, bool begin);
  void apply_crash(const FaultWindow& w, bool begin);
  void emit_span(const FaultWindow& w, Duration duration, bool open);

  sim::Simulation* sim_;
  FaultPlan plan_;
  std::map<std::uint32_t, storage::BlockDevice*> node_ssds_;
  std::map<std::uint32_t, NodeFs> node_fs_;
  std::map<std::uint32_t, stream::StreamNode*> streams_;
  net::Network* network_ = nullptr;
  kvs::KvsServer* kvs_ = nullptr;
  fs::LustreServers* lustre_ = nullptr;
  integrity::Ledger* integrity_ = nullptr;
  std::unique_ptr<CrashMonitor> monitor_;
  std::map<std::pair<std::uint8_t, std::uint32_t>, Active> active_;
  std::map<std::uint32_t, double> cpu_dilation_;
  std::uint64_t skipped_ = 0;
  std::uint64_t applied_ = 0;
  bool armed_ = false;
  bool trace_finalized_ = false;
  // Per plan window: did its begin/end callback fire yet?
  std::vector<bool> began_;
  std::vector<bool> ended_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace mdwf::fault
