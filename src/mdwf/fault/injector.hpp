// Fault injector: applies a `FaultPlan` to live resources.
//
// The injector is attached to concrete resources (node SSDs, the network,
// the KVS broker, Lustre OSTs) and, once `arm()`ed, schedules plain-callback
// timers at every window's start and end.  All state transitions happen at
// exact plan instants through the simulation's timer queue, so injection
// perturbs neither process scheduling order nor any model's random stream —
// the run stays bit-reproducible for a fixed (plan, workload) pair.
//
// Overlapping windows compose:
//   degrade   combined loss = 1 - prod(1 - severity_i), capped at 0.95
//   offline   depth-counted (resource back up when every window ended)
//   io-error  effective probability = max of active severities
//   stall / outage  stack through the broker's own depth counter
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "mdwf/fault/plan.hpp"
#include "mdwf/fs/lustre.hpp"
#include "mdwf/kvs/kvs.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/storage/block_device.hpp"

namespace mdwf::fault {

class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  // --- Resource attachment (before arm) -------------------------------------
  // Also reseeds the device's fault RNG from the plan seed so per-op I/O
  // error draws are a function of (plan.seed, node) alone.
  void attach_node_ssd(std::uint32_t node, storage::BlockDevice& device);
  void attach_network(net::Network& network);
  void attach_kvs(kvs::KvsServer& server);
  void attach_lustre(fs::LustreServers& servers);

  // Annotates the trace with one "fault"-category span per plan window, on
  // a "faults" process with one lane per struck resource.  Windows are pure
  // data by arm() time, so they are emitted up front; call before arm().
  void set_trace(obs::TraceSink* sink);

  // Schedules begin/end callbacks for every plan window.  Call once, after
  // attaching resources and before running the simulation.
  void arm();

  // Windows whose target had no attached resource at fire time.
  std::uint64_t windows_skipped() const { return skipped_; }
  std::uint64_t windows_applied() const { return applied_; }

 private:
  // Active-fault bookkeeping per (target, index).
  struct Active {
    std::vector<double> degrades;
    std::vector<double> io_errors;
    int offline_depth = 0;
  };

  storage::BlockDevice* device_for(FaultTarget target, std::uint32_t index);
  void apply(const FaultWindow& w, bool begin);
  void refresh_device(storage::BlockDevice& device, const Active& a);

  sim::Simulation* sim_;
  FaultPlan plan_;
  std::map<std::uint32_t, storage::BlockDevice*> node_ssds_;
  net::Network* network_ = nullptr;
  kvs::KvsServer* kvs_ = nullptr;
  fs::LustreServers* lustre_ = nullptr;
  std::map<std::pair<std::uint8_t, std::uint32_t>, Active> active_;
  std::uint64_t skipped_ = 0;
  std::uint64_t applied_ = 0;
  bool armed_ = false;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace mdwf::fault
