// Discrete-event simulation kernel.
//
// A `Simulation` owns a virtual clock and a time-ordered event queue.  Events
// are either coroutine resumptions (a process waking from `delay`) or plain
// callbacks (model-internal timers, e.g. a fair-share channel re-rating).
// Events at equal timestamps fire in scheduling (FIFO) order, which together
// with integer nanosecond time makes every run bit-reproducible.
//
// Processes are `Task<void>` coroutines registered via `spawn`; the kernel
// owns their frames until completion and destroys any still-suspended frames
// at teardown.  An exception escaping a process aborts the run and is
// rethrown from the run loop — models are expected not to throw in normal
// operation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mdwf/common/time.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/sim/event_heap.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::sim {

// Cancellable handle for a scheduled callback.  Carries the pooled slot plus
// the schedule seq; the seq guards against the slot having been recycled, so
// cancelling an already-fired timer is a safe no-op.
struct TimerId {
  EventSlot* slot = nullptr;
  std::uint64_t seq = 0;
};

class Simulation {
 public:
  Simulation() = default;
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimePoint now() const { return now_; }

  // Stable pointer to the virtual clock, for obs::ScopedSpan guards that
  // must read "now" at destruction without holding the whole kernel.
  const TimePoint* now_ptr() const { return &now_; }

  // --- Process management -------------------------------------------------

  // Registers and starts a detached process.  The first slice of the task
  // body executes when the event queue reaches the current time, not inside
  // spawn itself.  The optional `name` labels the process in diagnostics
  // (deadlock reports name every still-blocked process).
  void spawn(Task<void> task);
  void spawn(Task<void> task, std::string name);

  // Number of spawned processes that have not yet completed.
  std::size_t live_processes() const { return live_roots_.size(); }

  // --- Awaitables for processes -------------------------------------------

  // Suspends the calling process for `d` of virtual time (d >= 0).  delay(0)
  // yields: the process re-runs after already-queued events at this instant.
  auto delay(Duration d) {
    struct Awaiter {
      Simulation* sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim->schedule_resume(h, d);
      }
      void await_resume() const noexcept {}
    };
    MDWF_ASSERT_MSG(!d.is_negative(), "negative delay");
    return Awaiter{this, d};
  }

  auto yield() { return delay(Duration::zero()); }

  // --- Timers (model-internal callbacks) ----------------------------------

  TimerId call_at(TimePoint t, std::function<void()> fn);
  TimerId call_after(Duration d, std::function<void()> fn);
  void cancel(TimerId id);

  // Schedules a coroutine resumption (used by synchronization primitives).
  void schedule_resume(std::coroutine_handle<> h, Duration after);

  // --- Run loop ------------------------------------------------------------

  // Runs until the event queue drains.  Returns the number of events fired.
  std::uint64_t run();

  // Runs events with timestamp <= `limit`; the clock ends at min(limit, last
  // event time).  Self-rescheduling processes (e.g. interference generators)
  // make plain run() non-terminating; bounded runs are the normal mode.
  std::uint64_t run_until(TimePoint limit);

  // Fires the single next event.  Returns false if the queue is empty.
  bool step();

  // True when no event is pending but spawned processes are still alive:
  // every remaining process is blocked on a condition nothing can signal.
  bool deadlocked() const;

  // Runs to completion and verifies every spawned process finished; throws
  // std::runtime_error on deadlock.  The workhorse for tests and benches.
  std::uint64_t run_to_quiescence();

  // Guard against runaway models.
  void set_max_events(std::uint64_t n) { max_events_ = n; }
  std::uint64_t events_fired() const { return events_fired_; }

  // --- Observability (mdwf::obs) ------------------------------------------
  // Attaches a trace sink; the kernel then samples its live-process count on
  // every spawn/completion (the timeline's "what was running" backdrop).
  void set_trace(obs::TraceSink* sink, obs::TrackId track) {
    trace_ = sink;
    if (sink != nullptr) {
      trace_live_id_ = sink->counter_id(track, "sim.live_processes");
    }
  }

  // --- Internal: root-process bookkeeping (used by the spawn machinery) ----
  void internal_root_finished(std::uint64_t id);
  void internal_report_error(std::exception_ptr e) { pending_error_ = e; }

 private:
  void fire(EventSlot* e);

  TimePoint now_ = TimePoint::origin();
  EventHeap queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_fired_ = 0;
  std::uint64_t max_events_ = 2'000'000'000;
  struct RootRecord {
    std::coroutine_handle<> handle;
    std::string name;  // empty for anonymous spawns
  };

  void trace_live_processes();

  std::unordered_map<std::uint64_t, RootRecord> live_roots_;
  std::uint64_t next_root_id_ = 0;
  std::exception_ptr pending_error_;
  obs::TraceSink* trace_ = nullptr;
  obs::CounterId trace_live_id_{};
};

}  // namespace mdwf::sim
