// Event queue for the DES kernel: a 4-ary min-heap over pooled event slots.
//
// Replaces the previous `std::priority_queue<QueueEntry>` + tombstone-set
// design on the simulation hot path:
//
//   * Slots are allocated from a chunked free list, so scheduling an event
//     costs no heap allocation once the pool is warm (paper-scale sweeps
//     schedule hundreds of millions of events).
//   * Coroutine resumptions — the overwhelmingly common event — carry a bare
//     `std::coroutine_handle<>` instead of a type-erased `std::function`.
//   * `cancel` is O(1) and *eager about resources*: it flags the slot and
//     destroys the stored closure immediately (the old design parked the
//     cancelled seq in an `unordered_set` and kept the closure alive until
//     the timestamp drained).  The 8-byte slot pointer stays in the heap
//     until it surfaces, where `pop`/`peek` recycle it without firing.
//   * The slot's `seq` doubles as an ABA guard: seqs are globally unique, so
//     a stale TimerId whose slot was recycled can never cancel the new
//     occupant.  A cancelled-then-recycled slot is likewise never fired
//     twice (tests/heap_property_test.cpp pins both properties).
//
// A 4-ary heap trades slightly more comparisons per level for half the
// levels and sequential child access — measurably faster than the binary
// heap for the DES mix of push-heavy bursts and ordered pops.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "mdwf/common/assert.hpp"
#include "mdwf/common/time.hpp"

namespace mdwf::sim {

// One scheduled event.  Owned by the EventHeap's pool; handed out by
// pointer so cancellation can reach it in O(1) while it sits mid-heap.
struct EventSlot {
  TimePoint at;
  std::uint64_t seq = 0;  // global schedule order; unique forever (ABA guard)
  std::coroutine_handle<> resume{};  // set => coroutine fast path
  std::function<void()> fn;          // used when `resume` is null
  bool cancelled = false;
  EventSlot* next_free = nullptr;
};

class EventHeap {
 public:
  EventHeap() = default;
  EventHeap(const EventHeap&) = delete;
  EventHeap& operator=(const EventHeap&) = delete;

  // Live (scheduled, not cancelled) events.
  std::size_t live() const { return live_; }
  bool empty() const { return live_ == 0; }

  EventSlot* push(TimePoint at, std::uint64_t seq, std::coroutine_handle<> h) {
    EventSlot* s = acquire(at, seq);
    s->resume = h;
    sift_up(heap_.size() - 1);
    return s;
  }

  EventSlot* push(TimePoint at, std::uint64_t seq, std::function<void()> fn) {
    EventSlot* s = acquire(at, seq);
    s->fn = std::move(fn);
    sift_up(heap_.size() - 1);
    return s;
  }

  // O(1) lazy cancellation.  Returns false (no-op) for a stale TimerId whose
  // slot has already fired or been recycled.  The closure is destroyed now;
  // the slot itself is recycled when it reaches the top of the heap.
  bool cancel(EventSlot* s, std::uint64_t seq) {
    if (s == nullptr || s->seq != seq || s->cancelled) return false;
    s->cancelled = true;
    s->fn = nullptr;   // release captured resources eagerly
    s->resume = {};
    MDWF_ASSERT(live_ > 0);
    --live_;
    return true;
  }

  // Earliest live slot without removing it (nullptr when none).  Cancelled
  // slots encountered on the way are recycled.
  EventSlot* peek() {
    drain_cancelled();
    return heap_.empty() ? nullptr : heap_.front();
  }

  // Removes and returns the earliest live slot (nullptr when none).  The
  // caller fires it and must hand it back via `release`.
  EventSlot* pop() {
    drain_cancelled();
    if (heap_.empty()) return nullptr;
    EventSlot* top = heap_.front();
    remove_top();
    MDWF_ASSERT(live_ > 0);
    --live_;
    return top;
  }

  // Returns a fired slot to the pool.  `cancelled` is left set while the
  // slot is free: a stale TimerId still holding the fired seq then fails
  // cancel's `cancelled` guard (acquire clears the flag on reissue, at which
  // point the fresh seq takes over as the guard).
  void release(EventSlot* s) {
    s->fn = nullptr;
    s->resume = {};
    s->cancelled = true;
    s->next_free = free_;
    free_ = s;
  }

 private:
  static constexpr std::size_t kChunk = 256;

  static bool before(const EventSlot* a, const EventSlot* b) {
    if (a->at != b->at) return a->at < b->at;  // min-heap on time
    return a->seq < b->seq;                    // FIFO within a timestamp
  }

  EventSlot* acquire(TimePoint at, std::uint64_t seq) {
    if (free_ == nullptr) grow();
    EventSlot* s = free_;
    free_ = s->next_free;
    s->at = at;
    s->seq = seq;
    s->cancelled = false;
    s->next_free = nullptr;
    heap_.push_back(s);
    ++live_;
    return s;
  }

  void grow() {
    chunks_.push_back(std::make_unique<EventSlot[]>(kChunk));
    EventSlot* chunk = chunks_.back().get();
    for (std::size_t i = kChunk; i-- > 0;) {
      chunk[i].next_free = free_;
      free_ = &chunk[i];
    }
  }

  void drain_cancelled() {
    while (!heap_.empty() && heap_.front()->cancelled) {
      EventSlot* top = heap_.front();
      remove_top();
      release(top);
    }
  }

  void remove_top() {
    EventSlot* last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      sift_down(0);
    }
  }

  void sift_up(std::size_t i) {
    EventSlot* const s = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(s, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = s;
  }

  void sift_down(std::size_t i) {
    EventSlot* const s = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t limit = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < limit; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], s)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = s;
  }

  std::vector<EventSlot*> heap_;
  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  EventSlot* free_ = nullptr;
  std::size_t live_ = 0;
};

}  // namespace mdwf::sim
