#include "mdwf/sim/primitives.hpp"

namespace mdwf::sim {
namespace {

Task<void> run_and_signal(Task<void> t, WaitGroup& wg,
                          std::exception_ptr& first_error) {
  try {
    co_await std::move(t);
  } catch (...) {
    if (!first_error) first_error = std::current_exception();
  }
  wg.done();
}

}  // namespace

Task<void> all(Simulation& sim, std::vector<Task<void>> tasks) {
  WaitGroup wg(sim);
  std::exception_ptr first_error;
  wg.add(tasks.size());
  for (auto& t : tasks) {
    sim.spawn(run_and_signal(std::move(t), wg, first_error));
  }
  tasks.clear();
  // wg and first_error outlive the children: this frame suspends here until
  // the last child has called done().
  co_await wg.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mdwf::sim
