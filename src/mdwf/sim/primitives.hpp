// Synchronization primitives for simulated processes.
//
// All primitives resume waiters by *scheduling* them at the current virtual
// time rather than resuming inline; this avoids re-entrancy into the waker
// and preserves deterministic FIFO ordering among same-instant events.
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "mdwf/common/assert.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::sim {

// One-shot broadcast event.  `trigger` wakes every current and future waiter.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}

  bool triggered() const { return triggered_; }

  void trigger() {
    if (triggered_) return;
    triggered_ = true;
    for (auto h : waiters_) sim_->schedule_resume(h, Duration::zero());
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const noexcept { return ev->triggered_; }
      void await_suspend(std::coroutine_handle<> h) const {
        ev->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Counting semaphore with FIFO handoff: release passes the permit directly
// to the longest-waiting acquirer, so no acquirer can be starved.
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::int64_t initial)
      : sim_(&sim), count_(initial) {
    MDWF_ASSERT(initial >= 0);
  }

  std::int64_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

  auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->count_ > 0) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) const {
        sem->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release(std::int64_t n = 1) {
    MDWF_ASSERT(n >= 0);
    while (n > 0 && !waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->schedule_resume(h, Duration::zero());
      --n;  // permit handed off, never touches count_
    }
    count_ += n;
  }

 private:
  Simulation* sim_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// RAII permit: release on scope exit.  Acquire first, then adopt:
//   co_await sem.acquire();
//   SemaphoreGuard guard(sem);
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& sem) : sem_(&sem) {}
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  SemaphoreGuard(SemaphoreGuard&& o) noexcept
      : sem_(std::exchange(o.sem_, nullptr)) {}
  ~SemaphoreGuard() {
    if (sem_) sem_->release();
  }

 private:
  Semaphore* sem_;
};

// FIFO channel between processes.  capacity == 0 means unbounded.
template <typename T>
class Queue {
 public:
  explicit Queue(Simulation& sim, std::size_t capacity = 0)
      : sim_(&sim), capacity_(capacity) {}

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  // Non-blocking put; fails (returns false) when bounded and full.
  bool try_put(T v) {
    if (capacity_ != 0 && items_.size() >= capacity_ && getters_.empty()) {
      return false;
    }
    deliver(std::move(v));
    return true;
  }

  // Blocking put: suspends while the queue is full.
  auto put(T v) {
    struct Awaiter {
      Queue* q;
      T value;
      bool await_ready() {
        if (q->capacity_ == 0 || q->items_.size() < q->capacity_ ||
            !q->getters_.empty()) {
          q->deliver(std::move(value));
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        q->putters_.push_back(Putter{h, std::move(value)});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, std::move(v)};
  }

  // Non-blocking get; empty when nothing is buffered.
  std::optional<T> try_get() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    admit_putter();
    return v;
  }

  // Blocking get: suspends while the queue is empty.
  auto get() {
    struct Awaiter {
      Queue* q;
      std::optional<T> slot;
      bool await_ready() {
        if (!q->items_.empty()) {
          slot = std::move(q->items_.front());
          q->items_.pop_front();
          q->admit_putter();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        q->getters_.push_back(Getter{h, &slot});
      }
      T await_resume() {
        MDWF_ASSERT(slot.has_value());
        return std::move(*slot);
      }
    };
    return Awaiter{this, std::nullopt};
  }

 private:
  struct Getter {
    std::coroutine_handle<> h;
    std::optional<T>* slot;
  };
  struct Putter {
    std::coroutine_handle<> h;
    T value;
  };

  // Hands a value to a waiting getter if any, else buffers it.
  void deliver(T v) {
    if (!getters_.empty()) {
      Getter g = getters_.front();
      getters_.pop_front();
      g.slot->emplace(std::move(v));
      sim_->schedule_resume(g.h, Duration::zero());
      return;
    }
    items_.push_back(std::move(v));
  }

  // After a buffered item leaves, a blocked putter (if any) may proceed.
  void admit_putter() {
    if (putters_.empty()) return;
    if (capacity_ != 0 && items_.size() >= capacity_) return;
    Putter p = std::move(putters_.front());
    putters_.pop_front();
    items_.push_back(std::move(p.value));
    sim_->schedule_resume(p.h, Duration::zero());
  }

  Simulation* sim_;
  std::size_t capacity_;
  std::deque<T> items_;
  std::deque<Getter> getters_;
  std::deque<Putter> putters_;
};

// Reusable rendezvous barrier for a fixed participant count.
class Barrier {
 public:
  Barrier(Simulation& sim, std::size_t participants)
      : sim_(&sim), participants_(participants) {
    MDWF_ASSERT(participants >= 1);
  }

  auto arrive_and_wait() {
    struct Awaiter {
      Barrier* b;
      bool await_ready() const noexcept {
        return b->participants_ == 1;  // degenerate barrier never blocks
      }
      bool await_suspend(std::coroutine_handle<> h) const {
        b->waiters_.push_back(h);
        if (b->waiters_.size() == b->participants_) {
          for (auto w : b->waiters_) {
            b->sim_->schedule_resume(w, Duration::zero());
          }
          b->waiters_.clear();
          // The last arriver is among the scheduled handles; suspend it too
          // so wake order is uniform.
        }
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  std::size_t waiting() const { return waiters_.size(); }

 private:
  Simulation* sim_;
  std::size_t participants_;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Completion counter: `wait` resumes once `done` has been called `add`-many
// times.  Reusable only after a full cycle.
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : sim_(&sim) {}

  void add(std::size_t n = 1) { pending_ += n; }

  void done() {
    MDWF_ASSERT_MSG(pending_ > 0, "WaitGroup::done without matching add");
    if (--pending_ == 0) {
      for (auto h : waiters_) sim_->schedule_resume(h, Duration::zero());
      waiters_.clear();
    }
  }

  std::size_t pending() const { return pending_; }

  auto wait() {
    struct Awaiter {
      WaitGroup* wg;
      bool await_ready() const noexcept { return wg->pending_ == 0; }
      void await_suspend(std::coroutine_handle<> h) const {
        wg->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  std::size_t pending_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Runs tasks concurrently and completes when all have finished.  The first
// exception (in completion order) is rethrown after every task has settled.
Task<void> all(Simulation& sim, std::vector<Task<void>> tasks);

}  // namespace mdwf::sim
