#include "mdwf/sim/simulation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mdwf::sim {

// Root wrapper coroutine: adapts a user Task<void> into a detached process
// whose completion (or failure) reports back to the kernel.  The wrapper's
// frame owns the user task; both frames are destroyed together.
struct RootTask {
  struct promise_type {
    Simulation* sim = nullptr;
    std::uint64_t id = 0;

    RootTask get_return_object() noexcept {
      return RootTask{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    // Not suspending at the final point lets the frame self-destroy right
    // after we deregister from the kernel.
    std::suspend_never final_suspend() const noexcept {
      sim->internal_root_finished(id);
      return {};
    }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept {
      // Surface the failure from the run loop; the process still counts as
      // finished so teardown does not double-destroy the frame.
      sim->internal_report_error(std::current_exception());
    }
  };

  std::coroutine_handle<promise_type> handle;
};

namespace {

RootTask run_root(Task<void> task) {
  co_await std::move(task);
}

}  // namespace

Simulation::~Simulation() {
  // Destroy still-suspended processes.  Their frames own any child task
  // frames, so destruction cascades.  Pending queue entries may reference
  // destroyed coroutines but are never fired.
  for (auto& [id, rec] : live_roots_) rec.handle.destroy();
}

void Simulation::spawn(Task<void> task) { spawn(std::move(task), {}); }

void Simulation::spawn(Task<void> task, std::string name) {
  MDWF_ASSERT_MSG(task.valid(), "spawn of an empty Task");
  RootTask root = run_root(std::move(task));
  auto& promise = root.handle.promise();
  promise.sim = this;
  promise.id = next_root_id_++;
  live_roots_.emplace(promise.id, RootRecord{root.handle, std::move(name)});
  schedule_resume(root.handle, Duration::zero());
  trace_live_processes();
}

void Simulation::internal_root_finished(std::uint64_t id) {
  const auto erased = live_roots_.erase(id);
  MDWF_ASSERT(erased == 1);
  trace_live_processes();
}

void Simulation::trace_live_processes() {
  if (trace_ == nullptr) return;
  trace_->counter(trace_live_id_, now_,
                  static_cast<std::int64_t>(live_roots_.size()));
}

void Simulation::schedule_resume(std::coroutine_handle<> h, Duration after) {
  queue_.push(now_ + after, next_seq_++, h);
}

TimerId Simulation::call_at(TimePoint t, std::function<void()> fn) {
  MDWF_ASSERT_MSG(t >= now_, "scheduling into the past");
  const std::uint64_t seq = next_seq_++;
  EventSlot* slot = queue_.push(t, seq, std::move(fn));
  return TimerId{slot, seq};
}

TimerId Simulation::call_after(Duration d, std::function<void()> fn) {
  return call_at(now_ + d, std::move(fn));
}

void Simulation::cancel(TimerId id) { queue_.cancel(id.slot, id.seq); }

void Simulation::fire(EventSlot* e) {
  now_ = e->at;
  ++events_fired_;
  MDWF_ASSERT_MSG(events_fired_ <= max_events_,
                  "event budget exceeded (runaway model?)");
  // Detach the payload and recycle the slot *before* invoking: the payload
  // may schedule new events, and the freed slot can then be reissued
  // immediately without growing the pool.
  if (e->resume) {
    const std::coroutine_handle<> h = e->resume;
    queue_.release(e);
    h.resume();
  } else {
    std::function<void()> fn = std::move(e->fn);
    queue_.release(e);
    fn();
  }
  if (pending_error_) {
    auto err = std::exchange(pending_error_, nullptr);
    std::rethrow_exception(err);
  }
}

bool Simulation::step() {
  EventSlot* e = queue_.pop();
  if (e == nullptr) return false;
  fire(e);
  return true;
}

std::uint64_t Simulation::run() {
  const std::uint64_t before = events_fired_;
  while (step()) {
  }
  return events_fired_ - before;
}

std::uint64_t Simulation::run_until(TimePoint limit) {
  const std::uint64_t before = events_fired_;
  // peek() skips cancelled slots, so the bound is checked against the event
  // that would actually fire (the old priority_queue peeked at tombstones,
  // which could overshoot the limit when the top entry was cancelled).
  while (EventSlot* top = queue_.peek()) {
    if (top->at > limit) break;
    step();
  }
  if (now_ < limit) now_ = limit;
  return events_fired_ - before;
}

bool Simulation::deadlocked() const {
  if (!live_roots_.empty() && queue_.empty()) return true;
  return false;
}

std::uint64_t Simulation::run_to_quiescence() {
  const std::uint64_t n = run();
  if (!live_roots_.empty()) {
    // Name every blocked process (sorted for a stable message): a deadlock
    // report that says *who* is stuck — "consumer[1]" waiting on a KVS watch
    // that will never fire — is actionable; a bare count is not.
    std::vector<std::string> blocked;
    blocked.reserve(live_roots_.size());
    for (const auto& [id, rec] : live_roots_) {
      blocked.push_back(rec.name.empty() ? "proc#" + std::to_string(id)
                                         : rec.name);
    }
    std::sort(blocked.begin(), blocked.end());
    std::string msg = "simulation deadlock: " +
                      std::to_string(blocked.size()) +
                      " process(es) blocked with an empty event queue:";
    for (const auto& b : blocked) msg += " " + b;
    throw std::runtime_error(msg);
  }
  return n;
}

}  // namespace mdwf::sim
