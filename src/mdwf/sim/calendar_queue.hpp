// Calendar queue: an alternative event queue for the DES kernel, behind the
// same interface as the 4-ary EventHeap (push / cancel / peek / pop /
// release, pooled EventSlots, O(1) lazy cancellation, FIFO-within-instant).
//
// The structure is R. Brown's calendar queue: N buckets of width w ns each,
// an event at time t filed under bucket (t / w) mod N.  Dequeue walks the
// current "year" — one w-wide window per bucket — and takes the earliest
// event whose timestamp falls inside the window; when a full lap finds
// nothing in-year (a schedule gap), it jumps straight to the global minimum,
// ladder-style.  With the bucket count resized to track the live population
// and the width re-estimated from the live span, both enqueue and dequeue
// are amortized O(1) versus the heap's O(log n) — the question bench/
// queue_bench.cpp answers empirically at 1e5..1e7 pending events is whether
// that asymptotic edge survives the constant factors and cache behaviour of
// the DES mix (tests/heap_property_test.cpp pins the semantics to the same
// oracle as the heap either way).
//
// Buckets hold slot pointers sorted by (at, seq) DESCENDING so the earliest
// candidate is always the vector's back(): in-year checks, cancelled-slot
// pruning, and removal all touch only the tail.
//
// The dequeue scan assumes no live event sits before the current window's
// start; enqueue preserves that invariant by rewinding the calendar position
// whenever a new event lands behind it (Brown's rule), so even past-dated
// pushes — which the DES kernel never issues, but peek/resize interleavings
// can make look that way — stay correctly ordered.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "mdwf/common/assert.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/sim/event_heap.hpp"

namespace mdwf::sim {

class CalendarQueue {
 public:
  CalendarQueue() { reset_calendar(kMinBuckets, kDefaultWidthNs); }
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  std::size_t live() const { return live_; }
  bool empty() const { return live_ == 0; }

  EventSlot* push(TimePoint at, std::uint64_t seq, std::coroutine_handle<> h) {
    EventSlot* s = acquire(at, seq);
    s->resume = h;
    file(s);
    return s;
  }

  EventSlot* push(TimePoint at, std::uint64_t seq, std::function<void()> fn) {
    EventSlot* s = acquire(at, seq);
    s->fn = std::move(fn);
    file(s);
    return s;
  }

  // O(1) lazy cancellation with the same seq-as-ABA-guard contract as the
  // heap: the slot keeps occupying its bucket until dequeue prunes it.
  bool cancel(EventSlot* s, std::uint64_t seq) {
    if (s == nullptr || s->seq != seq || s->cancelled) return false;
    s->cancelled = true;
    s->fn = nullptr;
    s->resume = {};
    MDWF_ASSERT(live_ > 0);
    --live_;
    return true;
  }

  EventSlot* peek() { return find_min(false); }

  EventSlot* pop() {
    EventSlot* s = find_min(true);
    if (s != nullptr) {
      MDWF_ASSERT(live_ > 0);
      --live_;
    }
    return s;
  }

  void release(EventSlot* s) {
    s->fn = nullptr;
    s->resume = {};
    s->cancelled = true;
    s->next_free = free_;
    free_ = s;
  }

 private:
  static constexpr std::size_t kChunk = 256;
  static constexpr std::size_t kMinBuckets = 4;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;
  static constexpr std::int64_t kDefaultWidthNs = 1024;

  static bool before(const EventSlot* a, const EventSlot* b) {
    if (a->at != b->at) return a->at < b->at;
    return a->seq < b->seq;
  }

  static std::int64_t key(const EventSlot* s) {
    return (s->at - TimePoint::origin()).ns();
  }

  std::size_t bucket_of(std::int64_t k) const {
    MDWF_ASSERT(k >= 0);
    return static_cast<std::size_t>(k / width_) & (buckets_.size() - 1);
  }

  EventSlot* acquire(TimePoint at, std::uint64_t seq) {
    if (free_ == nullptr) grow_pool();
    EventSlot* s = free_;
    free_ = s->next_free;
    s->at = at;
    s->seq = seq;
    s->cancelled = false;
    s->next_free = nullptr;
    ++live_;
    return s;
  }

  void grow_pool() {
    chunks_.push_back(std::make_unique<EventSlot[]>(kChunk));
    EventSlot* chunk = chunks_.back().get();
    for (std::size_t i = kChunk; i-- > 0;) {
      chunk[i].next_free = free_;
      free_ = &chunk[i];
    }
  }

  // Insert first, resize after: resize() repositions the calendar at the
  // global minimum, so the new slot must already be filed when it looks.
  void file(EventSlot* s) {
    const std::int64_t k = key(s);
    if (k < bucket_top_ - width_) {
      // Behind the current window: rewind the position so the dequeue scan
      // cannot return a later event first.  Rewinding is always safe — the
      // position is only a lower bound on the pending set.
      last_bucket_ = bucket_of(k);
      bucket_top_ = (k / width_) * width_ + width_;
    }
    insert_sorted(buckets_[bucket_of(k)], s);
    ++total_;
    if (live_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
      resize();
    }
  }

  static void insert_sorted(std::vector<EventSlot*>& b, EventSlot* s) {
    // Descending on (at, seq): the common case — a new event later than the
    // bucket's residents — inserts at the front of a short vector.
    const auto it = std::upper_bound(
        b.begin(), b.end(), s,
        [](const EventSlot* x, const EventSlot* y) { return before(y, x); });
    b.insert(it, s);
  }

  // Drop cancelled slots off the tail so back() is the earliest live entry.
  void prune(std::vector<EventSlot*>& b) {
    while (!b.empty() && b.back()->cancelled) {
      release(b.back());
      b.pop_back();
      --total_;
    }
  }

  EventSlot* find_min(bool remove) {
    if (live_ == 0) {
      // Only cancelled residue (if anything) remains; sweep it so the
      // calendar and the pool agree with the live count again.
      if (total_ != 0) {
        for (auto& b : buckets_) {
          for (EventSlot* s : b) release(s);
          b.clear();
        }
        total_ = 0;
      }
      return nullptr;
    }
    if (live_ < buckets_.size() / 4 && buckets_.size() > kMinBuckets) {
      resize();
    }
    const std::size_t n = buckets_.size();
    for (;;) {
      // One lap of the current year: bucket i owns [top - w, top).
      std::size_t i = last_bucket_;
      std::int64_t top = bucket_top_;
      for (std::size_t lap = 0; lap < n; ++lap) {
        std::vector<EventSlot*>& b = buckets_[i];
        prune(b);
        if (!b.empty() && key(b.back()) < top) {
          EventSlot* s = b.back();
          last_bucket_ = i;
          bucket_top_ = top;
          if (remove) {
            b.pop_back();
            --total_;
          }
          return s;
        }
        i = (i + 1) & (n - 1);
        top += width_;
      }
      // Nothing due this year: jump the calendar to the global minimum.
      EventSlot* best = nullptr;
      for (std::size_t j = 0; j < n; ++j) {
        prune(buckets_[j]);
        EventSlot* cand =
            buckets_[j].empty() ? nullptr : buckets_[j].back();
        if (cand != nullptr && (best == nullptr || before(cand, best))) {
          best = cand;
        }
      }
      MDWF_ASSERT(best != nullptr);  // live_ > 0 guarantees a survivor
      const std::int64_t k = key(best);
      last_bucket_ = bucket_of(k);
      bucket_top_ = (k / width_) * width_ + width_;
    }
  }

  // Rebuild the calendar sized to the live population: bucket count is the
  // next power of two covering it, width the mean inter-event gap across the
  // live span (Brown's rule of thumb).  Cancelled residue is swept in the
  // same pass.
  void resize() {
    std::vector<EventSlot*> survivors;
    survivors.reserve(live_);
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    for (auto& b : buckets_) {
      for (EventSlot* s : b) {
        if (s->cancelled) {
          release(s);
          continue;
        }
        const std::int64_t k = key(s);
        if (survivors.empty()) {
          lo = hi = k;
        } else {
          lo = std::min(lo, k);
          hi = std::max(hi, k);
        }
        survivors.push_back(s);
      }
      b.clear();
    }
    std::size_t want = kMinBuckets;
    while (want < survivors.size() && want < kMaxBuckets) want <<= 1;
    const std::int64_t span = hi - lo;
    const std::int64_t width =
        survivors.empty()
            ? kDefaultWidthNs
            : std::max<std::int64_t>(
                  1, span / static_cast<std::int64_t>(survivors.size() + 1));
    reset_calendar(want, width);
    if (!survivors.empty()) {
      last_bucket_ = bucket_of(lo);
      bucket_top_ = (lo / width_) * width_ + width_;
    }
    for (EventSlot* s : survivors) {
      insert_sorted(buckets_[bucket_of(key(s))], s);
    }
    total_ = survivors.size();
  }

  void reset_calendar(std::size_t nbuckets, std::int64_t width) {
    buckets_.assign(nbuckets, {});
    width_ = width;
    last_bucket_ = 0;
    bucket_top_ = width;
    total_ = 0;
  }

  std::vector<std::vector<EventSlot*>> buckets_;
  std::int64_t width_ = kDefaultWidthNs;
  std::size_t last_bucket_ = 0;
  std::int64_t bucket_top_ = kDefaultWidthNs;  // exclusive end of the window
  std::size_t total_ = 0;  // slots filed in buckets, cancelled included
  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  EventSlot* free_ = nullptr;
  std::size_t live_ = 0;
};

}  // namespace mdwf::sim
