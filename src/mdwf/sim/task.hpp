// Lazy coroutine task type for simulated processes.
//
// `Task<T>` is the unit of simulated control flow: every modelled activity
// (an MD producer, a Lustre RPC, an RDMA transfer) is a coroutine returning
// Task.  Tasks are lazy — they begin executing when first awaited or when
// handed to `Simulation::spawn` — and chain via symmetric transfer, so deep
// await stacks cost no native stack depth.
//
// Ownership: a Task owns its coroutine frame; destroying an un-awaited or
// suspended Task destroys the frame (and, recursively, the frames of any
// child task it is awaiting, since those are owned by locals in the frame).
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "mdwf/common/assert.hpp"

namespace mdwf::sim {

template <typename T = void>
class Task;

namespace detail {

template <typename Promise>
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) const noexcept {
    // Resume whoever awaited us; if nobody did (detached completion), return
    // to the scheduler.
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;

  Task<T> get_return_object() noexcept;
  FinalAwaiter<Promise<T>> final_suspend() const noexcept { return {}; }
  void return_value(T v) { value.emplace(std::move(v)); }

  T take_result() {
    if (error) std::rethrow_exception(error);
    MDWF_ASSERT_MSG(value.has_value(), "task completed without a value");
    return std::move(*value);
  }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  FinalAwaiter<Promise<void>> final_suspend() const noexcept { return {}; }
  void return_void() const noexcept {}

  void take_result() const {
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : h_(h) {}

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return h_ && h_.done(); }

  // Awaiting a task starts it and suspends the awaiter until it completes;
  // the task's return value (or exception) is propagated.
  auto operator co_await() && noexcept {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept {
        // A task may be awaited only once and is lazy, so it cannot be done.
        return false;
      }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer into the child
      }
      T await_resume() const { return h.promise().take_result(); }
    };
    MDWF_ASSERT_MSG(h_, "co_await on an empty Task");
    return Awaiter{h_};
  }

  // Release ownership (used by the scheduler's root-process machinery).
  handle_type release() { return std::exchange(h_, {}); }
  handle_type handle() const { return h_; }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  handle_type h_{};
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace mdwf::sim
