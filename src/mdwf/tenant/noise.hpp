// Synthetic noisy-neighbor tenant: a KVS metadata storm.
//
// The paper's co-tenant interference is background load on shared services;
// the worst neighbor for DYAD is one that hammers the KVS broker with
// lookups (each costs lookup_service of broker time, and the broker has few
// service slots).  A noise tenant owns one compute node and runs
// `intensity` synthetic clients that loop lookup -> think until a horizon,
// queueing behind — and ahead of — every victim's metadata operations.
//
// With per-tenant quotas armed, the noise tenant is bounded to its weighted
// share of the broker's admission queue: excess lookups bounce with
// ServerBusy (counted in NoiseStats::sheds) instead of growing the queue
// underneath the victims.
#pragma once

#include <cstdint>

#include "mdwf/common/rng.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/kvs/kvs.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/sim/simulation.hpp"

namespace mdwf::tenant {

struct NoiseParams {
  // Concurrent synthetic lookup clients.
  std::uint32_t intensity = 64;
  // Mean think time between a client's lookups (exponentially jittered).
  Duration think_time = Duration::microseconds(50);
  // Back-off after a shed (ServerBusy) reply: doubles per consecutive shed
  // from `shed_backoff` up to `shed_backoff_cap`, resets on success.  A
  // quota-bounded storm settles at the cap instead of hammering the broker
  // (and the simulator) with fixed-rate re-offers.
  Duration shed_backoff = Duration::microseconds(400);
  Duration shed_backoff_cap = Duration::milliseconds(8);
  // Distinct keys the storm draws from (all absent: pure lookup cost).
  std::uint64_t key_space = 4096;
};

struct NoiseStats {
  std::uint64_t ops = 0;    // completed lookups
  std::uint64_t sheds = 0;  // ServerBusy bounces (admission or quota)
};

// Runs the storm from `node` until `horizon`; completes when every client
// has observed the horizon.  Deterministic for a given rng.
sim::Task<void> run_kvs_noise(sim::Simulation& sim, kvs::KvsServer& server,
                              net::NodeId node, const NoiseParams& params,
                              Rng rng, TimePoint horizon, NoiseStats& stats);

}  // namespace mdwf::tenant
