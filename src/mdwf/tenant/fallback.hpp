// SLO fallback data plane: per-frame routing onto Lustre.
//
// When a tenant's SloGuard reaches kFallback, *new* frames stop traveling
// the contended primary plane (DYAD's KVS-coordinated path or the stream
// staging plane) and are written/read through Lustre instead — the paper's
// always-available baseline.  Routing is decided once per frame by the
// producer at put time and recorded in a shared RouteBook, so producer and
// consumer always agree even when the guard changes level between the put
// and the matching get (first decision wins; crash re-execution replays the
// original decision, keeping recovery idempotent).
//
// The consumer end resolves a frame's route by awaiting the producer's
// decision announcement; each plane then synchronizes data availability
// with its own mechanism (KVS visibility / stream handshake for the
// primary, the shared ExplicitSync for the Lustre plane).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mdwf/sim/simulation.hpp"
#include "mdwf/tenant/slo.hpp"
#include "mdwf/workflow/connector.hpp"

namespace mdwf::tenant {

// Shared per-tenant routing state: one entry per (pair, frame).  Lives next
// to the rank-set assets (declared before the Testbed; see RankSetAssets)
// and is attached to the simulation once the testbed exists.
class RouteBook {
 public:
  explicit RouteBook(std::uint32_t pairs) : state_(pairs) {}

  void attach(sim::Simulation& sim) { sim_ = &sim; }

  // Producer side, first-decision-wins: records whether `frame` of `pair`
  // travels the fallback plane and announces the decision.  Returns the
  // recorded plane (the original one for a re-executed frame).
  bool decide(std::uint32_t pair, std::uint64_t frame, bool fallback);

  // Consumer side: resolves once the producer has decided `frame`; returns
  // true when the frame travels the fallback plane.
  sim::Task<bool> wait_decision(std::uint32_t pair, std::uint64_t frame);

  // Producer side, after decide(): the recorded plane for a decided frame.
  bool is_fallback(std::uint32_t pair, std::uint64_t frame) const;

  // The pair's shared data sync for the Lustre plane (created on first use;
  // both connector ends of a pair share one instance).
  workflow::ExplicitSync& data_sync(std::uint32_t pair);

  // Frames routed onto the fallback plane (first decisions only).
  std::uint64_t fallback_frames() const { return fallback_frames_; }

 private:
  struct PairState {
    std::vector<std::uint8_t> plane;  // index = frame; 1 = fallback
    std::unique_ptr<workflow::ExplicitSync> decided;
    std::unique_ptr<workflow::ExplicitSync> sync;
  };

  workflow::ExplicitSync& decided_sync(std::uint32_t pair);

  sim::Simulation* sim_ = nullptr;
  std::vector<PairState> state_;
  std::uint64_t fallback_frames_ = 0;
};

// Wraps one rank's primary connector with a Lustre fallback plane, routing
// each frame per the shared RouteBook.  Both of a pair's ends wrap their
// own primary/fallback connectors but share the book (and through it the
// Lustre plane's ExplicitSync).
class FallbackConnector final : public workflow::Connector {
 public:
  FallbackConnector(std::unique_ptr<workflow::Connector> primary,
                    std::unique_ptr<workflow::Connector> fallback,
                    RouteBook& book, SloGuard& guard, std::uint32_t pair)
      : primary_(std::move(primary)),
        fallback_(std::move(fallback)),
        book_(&book),
        guard_(&guard),
        pair_(pair) {}

  sim::Task<void> put(const std::string& path, Bytes size,
                      std::uint64_t frame) override;
  sim::Task<void> producer_sync(std::uint64_t frame) override;
  sim::Task<void> get(const std::string& path, Bytes size,
                      std::uint64_t frame) override;
  void acknowledge(std::uint64_t frame) override;
  const workflow::Connector& stats_target() const override {
    return primary_->stats_target();
  }

 private:
  std::unique_ptr<workflow::Connector> primary_;
  std::unique_ptr<workflow::Connector> fallback_;
  RouteBook* book_;
  SloGuard* guard_;
  std::uint32_t pair_;
};

}  // namespace mdwf::tenant
