// Multi-tenant co-scheduling: N workflow ensembles on one shared testbed.
//
// The classic runner (workflow::run_repetition) gives one workflow the whole
// cluster.  mdwf::tenant places several *tenants* — each its own solution,
// workload, fault plan, and SLO policy — on disjoint compute-node slices of
// a single Testbed.  Node-local resources (NVMe, page cache, local FS) are
// isolated by placement; the shared services (KVS broker, Lustre MDS/OSTs,
// fabric) are where tenants actually meet, and where the isolation
// machinery acts:
//
//   * weighted fair-share quotas (health::TenantQuota) bound each tenant's
//     in-flight requests on every shared service: an overloaded tenant
//     sheds its OWN requests first;
//   * per-tenant SLO guards (SloGuard) degrade a breached tenant gracefully
//     — stagger production, shrink stream credits, fall back to Lustre —
//     instead of letting it thrash the shared queues;
//   * per-tenant fault plans are authored against the tenant's own nodes
//     and shifted onto its slice, so chaos in tenant A is surgically
//     scoped while shared-service faults still hit everyone.
//
// Determinism contract (inherited from mdwf::sweep): each repetition runs
// in an isolated Simulation seeded only by (base_seed, rep); repetitions
// fan across worker threads and fold in repetition order, so the merged
// result — including MultiTenantResult::to_csv() — is byte-identical for
// every thread count.
//
// The solo contract: a single-tenant config with quotas and SLO off runs
// through the identical rank-set builder with empty namespaces and scopes,
// reproducing the classic runner bit-for-bit (tests/tenant_test.cpp pins
// this, which is what makes the solo overhead exactly zero).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mdwf/common/keyval.hpp"
#include "mdwf/health/quota.hpp"
#include "mdwf/tenant/noise.hpp"
#include "mdwf/tenant/slo.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace mdwf::tenant {

enum class TenantKind : std::uint8_t {
  kWorkflow,  // a producer-consumer ensemble (pairs, frames, solution)
  kNoise,     // a synthetic KVS metadata storm (one node, no frames)
};

struct TenantSpec {
  std::string name;
  TenantKind kind = TenantKind::kWorkflow;
  workflow::Solution solution = workflow::Solution::kDyad;
  std::uint32_t pairs = 4;
  std::uint32_t nodes = 2;
  workflow::Placement placement = workflow::Placement::kSplit;
  workflow::WorkloadConfig workload{};
  workflow::CheckpointParams checkpoint{};
  // Per-tenant fault scenario (fault::make_scenario name), instantiated
  // against this tenant's node count and shifted onto its slice.
  std::string faults = "none";
  // Relative fair-share weight on the shared services.
  double weight = 1.0;
  // SLO guard (workflow tenants only).
  bool slo = false;
  SloParams slo_params{};
  // Noise tenants only.
  NoiseParams noise{};
};

struct MultiTenantConfig {
  std::vector<TenantSpec> tenants;
  std::uint32_t repetitions = 5;
  std::uint64_t base_seed = 1;
  // Worker threads fanning the seeded repetitions (0 = all hardware
  // threads); results are byte-identical for every value.
  std::uint32_t threads = 1;
  // Per-tenant fair-share quotas on KVS/MDS/OST admission (multi-tenant
  // runs only; a solo tenant never needs them).
  bool quota = true;
  health::QuotaParams quota_params{};
  bool lustre_interference = false;
  fs::InterferenceParams interference{};
  workflow::TestbedParams testbed{};
  // Rep-0 Chrome trace (as in EnsembleConfig::trace_path); tenant rank
  // lanes land on "<tenant>/node<N>" processes.
  std::string trace_path;
};

// One repetition's outcome, tenant-major.
struct TenantRepOutcome {
  std::vector<workflow::RepOutcome> tenants;  // spec order
  obs::CounterMap shared;  // shared-service totals, counted once
};

struct TenantResult {
  TenantSpec spec;
  workflow::EnsembleResult result;
};

struct MultiTenantResult {
  std::vector<TenantResult> tenants;
  obs::CounterMap shared;

  // Canonical per-tenant CSV (one row per tenant plus a "_shared" totals
  // row).  Fixed %.6f formatting: the byte-compare surface of the
  // thread-count determinism tests.
  std::string to_csv() const;
};

// Extra per-tenant counters (SLO transitions, quota sheds, noise totals)
// registered on top of the standard ensemble set.
void register_tenant_counters(obs::CounterMap& counters);

// Sum of every tenant's node count: the shared testbed's compute_nodes.
std::uint32_t total_nodes(const MultiTenantConfig& config);

// Runs repetition `rep` of the co-tenant schedule in one isolated
// Simulation.  Thread-safe with respect to other calls.
TenantRepOutcome run_tenant_repetition(const MultiTenantConfig& config,
                                       std::uint32_t rep,
                                       obs::TraceSink* trace = nullptr);

// Runs all repetitions across config.threads workers and folds per tenant
// in repetition order (byte-identical for every thread count).
MultiTenantResult run_multi_tenant(const MultiTenantConfig& config);

// key=value binding for the co-tenant driver keys, layered on the classic
// experiment keys (which it parses via parse_ensemble_config and reuses as
// per-tenant defaults):
//
//   tenants      = comma-separated descriptors, each
//                  [<name>@]<solution>/<pairs>/<nodes>[/<faults>[/<weight>]]
//                  or [<name>@]noise[/<intensity>[/<weight>]]
//   slo          = 0|1   arm the SLO guard on every workflow tenant
//   slo_target_us= <us>  fetch-P99 target the guards enforce
//   quota        = 0|1   per-tenant fair-share quotas (default 1)
//
// Throws mdwf::ConfigError on malformed descriptors (one-line diagnostic).
MultiTenantConfig parse_multi_tenant(const KeyValueConfig& cfg,
                                     const workflow::EnsembleConfig& defaults);

}  // namespace mdwf::tenant
