#include "mdwf/tenant/fallback.hpp"

#include "mdwf/common/assert.hpp"

namespace mdwf::tenant {

workflow::ExplicitSync& RouteBook::decided_sync(std::uint32_t pair) {
  MDWF_ASSERT(sim_ != nullptr && pair < state_.size());
  auto& s = state_[pair];
  if (s.decided == nullptr) {
    s.decided = std::make_unique<workflow::ExplicitSync>(*sim_);
  }
  return *s.decided;
}

workflow::ExplicitSync& RouteBook::data_sync(std::uint32_t pair) {
  MDWF_ASSERT(sim_ != nullptr && pair < state_.size());
  auto& s = state_[pair];
  if (s.sync == nullptr) {
    s.sync = std::make_unique<workflow::ExplicitSync>(*sim_);
  }
  return *s.sync;
}

bool RouteBook::decide(std::uint32_t pair, std::uint64_t frame,
                       bool fallback) {
  auto& s = state_[pair];
  if (frame < s.plane.size()) {
    // Re-executed frame after a crash: replay the original route so the
    // consumer (which may already have resolved it) stays coherent.
    return s.plane[frame] != 0;
  }
  // Producers move frame-by-frame; a first decision for frame f implies
  // every earlier frame was decided.
  MDWF_ASSERT_MSG(frame == s.plane.size(),
                  "route decisions must arrive in frame order");
  s.plane.push_back(fallback ? 1 : 0);
  if (fallback) ++fallback_frames_;
  decided_sync(pair).signal_ready(frame);
  return fallback;
}

sim::Task<bool> RouteBook::wait_decision(std::uint32_t pair,
                                         std::uint64_t frame) {
  co_await decided_sync(pair).wait_ready(frame);
  co_return state_[pair].plane[frame] != 0;
}

bool RouteBook::is_fallback(std::uint32_t pair, std::uint64_t frame) const {
  const auto& s = state_[pair];
  MDWF_ASSERT(frame < s.plane.size());
  return s.plane[frame] != 0;
}

sim::Task<void> FallbackConnector::put(const std::string& path, Bytes size,
                                       std::uint64_t frame) {
  const std::uint64_t f = resolve(frame, put_seq_);
  if (book_->decide(pair_, f, guard_->fallback_engaged())) {
    co_await fallback_->put(path, size, f);
  } else {
    co_await primary_->put(path, size, f);
  }
}

sim::Task<void> FallbackConnector::producer_sync(std::uint64_t frame) {
  const std::uint64_t f = resolve(frame, sync_seq_);
  if (book_->is_fallback(pair_, f)) {
    // The Lustre plane keeps the paper's coarse-grained sync: degraded
    // frames serialize producer and consumer — that is the cost the guard
    // traded for predictable latency.
    co_await fallback_->producer_sync(f);
  } else {
    co_await primary_->producer_sync(f);
  }
}

sim::Task<void> FallbackConnector::get(const std::string& path, Bytes size,
                                       std::uint64_t frame) {
  const std::uint64_t f = resolve(frame, get_seq_);
  if (co_await book_->wait_decision(pair_, f)) {
    co_await fallback_->get(path, size, f);
  } else {
    co_await primary_->get(path, size, f);
  }
}

void FallbackConnector::acknowledge(std::uint64_t frame) {
  const std::uint64_t f = resolve(frame, ack_seq_);
  // Acknowledge on both planes: the primary's ack is a no-op, and keeping
  // the Lustre plane's done mark current means a later fallback frame's
  // producer_sync never waits on acks that predate the fallback.
  primary_->acknowledge(f);
  fallback_->acknowledge(f);
}

}  // namespace mdwf::tenant
