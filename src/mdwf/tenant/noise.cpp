#include "mdwf/tenant/noise.hpp"

#include <string>
#include <utility>
#include <vector>

#include "mdwf/health/health.hpp"
#include "mdwf/sim/primitives.hpp"

namespace mdwf::tenant {

namespace {

sim::Task<void> noise_client(sim::Simulation& sim, kvs::KvsServer& server,
                             net::NodeId node, NoiseParams params, Rng rng,
                             TimePoint horizon, NoiseStats& stats) {
  kvs::KvsClient client(sim, server, node);
  Duration backoff = params.shed_backoff;
  while (sim.now() < horizon) {
    const std::string key =
        "noise/k" + std::to_string(rng.next_below(params.key_space));
    bool shed = false;
    try {
      co_await client.lookup(key);
      ++stats.ops;
    } catch (const health::ServerBusy&) {
      shed = true;  // co_await is not permitted inside a handler
    }
    if (shed) {
      ++stats.sheds;
      co_await sim.delay(backoff);
      backoff = backoff * 2;
      if (backoff > params.shed_backoff_cap) backoff = params.shed_backoff_cap;
    } else {
      backoff = params.shed_backoff;
    }
    co_await sim.delay(Duration::seconds(params.think_time.to_seconds() *
                                         rng.exponential(1.0)));
  }
}

}  // namespace

sim::Task<void> run_kvs_noise(sim::Simulation& sim, kvs::KvsServer& server,
                              net::NodeId node, const NoiseParams& params,
                              Rng rng, TimePoint horizon, NoiseStats& stats) {
  std::vector<sim::Task<void>> clients;
  clients.reserve(params.intensity);
  for (std::uint32_t i = 0; i < params.intensity; ++i) {
    clients.push_back(noise_client(sim, server, node, params,
                                   rng.fork("client" + std::to_string(i)),
                                   horizon, stats));
  }
  co_await sim::all(sim, std::move(clients));
}

}  // namespace mdwf::tenant
