#include "mdwf/tenant/slo.hpp"

#include <algorithm>

#include "mdwf/common/assert.hpp"

namespace mdwf::tenant {

std::string_view to_string(SloLevel level) {
  switch (level) {
    case SloLevel::kNominal:
      return "nominal";
    case SloLevel::kStagger:
      return "stagger";
    case SloLevel::kShrinkCredits:
      return "shrink-credits";
    case SloLevel::kFallback:
      return "fallback";
  }
  return "?";
}

SloGuard::SloGuard(sim::Simulation& sim, const SloParams& params,
                   Duration frame_period, std::uint32_t pairs)
    : sim_(&sim),
      params_(params),
      frame_period_(frame_period),
      pairs_(pairs) {
  MDWF_ASSERT(params_.window >= 1);
  MDWF_ASSERT(pairs_ >= 1);
  ring_.assign(params_.window, 0.0);
}

void SloGuard::set_trace(obs::TraceSink* sink, obs::TrackId track) {
  trace_ = sink;
  if (trace_ != nullptr) {
    level_marker_ = trace_->instant_series(track, "slo_level=");
  }
}

double SloGuard::window_p99() const {
  if (ring_count_ == 0) return 0.0;
  std::vector<double> scratch(ring_.begin(),
                              ring_.begin() +
                                  static_cast<std::ptrdiff_t>(ring_count_));
  // Index of the ceil(0.99 * n)-th order statistic.
  const std::size_t idx =
      std::min(ring_count_ - 1, (ring_count_ * 99 + 99) / 100 - 1);
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(idx),
                   scratch.end());
  return scratch[idx];
}

Duration SloGuard::producer_delay(std::uint64_t frame) {
  (void)frame;
  if (!params_.enabled || level_ < SloLevel::kStagger) {
    return Duration::zero();
  }
  ++staggered_frames_;
  return Duration::seconds(frame_period_.to_seconds() *
                           params_.stagger_fraction);
}

void SloGuard::on_fetch(TimePoint now, double latency_us) {
  if (!params_.enabled) return;
  ring_[ring_next_] = latency_us;
  ring_next_ = (ring_next_ + 1) % ring_.size();
  ring_count_ = std::min(ring_count_ + 1, ring_.size());
  evaluate(now);
}

void SloGuard::on_frame_produced(std::uint64_t frame) {
  (void)frame;
  if (!params_.enabled) return;
  ++produced_;
  evaluate(sim_->now());
}

void SloGuard::on_frame_consumed(std::uint64_t frame) {
  (void)frame;
  if (!params_.enabled) return;
  ++consumed_;
  evaluate(sim_->now());
}

void SloGuard::evaluate(TimePoint now) {
  const std::uint64_t lag = produced_ - consumed_;
  const std::uint64_t lag_limit =
      params_.max_lag_per_pair * static_cast<std::uint64_t>(pairs_);
  const bool p99_known = ring_count_ >= params_.min_samples;
  const double p99 = p99_known ? window_p99() : 0.0;
  const bool breached = (p99_known && p99 > params_.fetch_p99_target_us) ||
                        lag > lag_limit;
  const Duration since = now - last_transition_;

  if (breached && level_ < params_.max_level && since >= params_.holdoff) {
    transition(static_cast<SloLevel>(static_cast<std::uint8_t>(level_) + 1),
               now);
    return;
  }
  // Recover only with margin (P99 at half the target) and the lag drained,
  // after a full cooldown — flapping between rungs would trace as noise and
  // thrash the credit scale.
  const bool recovered = p99_known &&
                         p99 * 2.0 <= params_.fetch_p99_target_us &&
                         lag <= static_cast<std::uint64_t>(pairs_);
  if (recovered && level_ > SloLevel::kNominal && since >= params_.cooldown) {
    transition(static_cast<SloLevel>(static_cast<std::uint8_t>(level_) - 1),
               now);
  }
}

void SloGuard::transition(SloLevel to, TimePoint now) {
  const SloLevel from = level_;
  level_ = to;
  last_transition_ = now;
  if (to > from) {
    ++escalations_;
  } else {
    ++deescalations_;
  }
  const bool was_shrunk = from >= SloLevel::kShrinkCredits;
  const bool is_shrunk = to >= SloLevel::kShrinkCredits;
  if (credit_sink_ && was_shrunk != is_shrunk) {
    credit_sink_(is_shrunk ? params_.credit_scale : 1.0);
  }
  if (trace_ != nullptr) {
    trace_->instant(level_marker_, now,
                    static_cast<std::int64_t>(static_cast<std::uint8_t>(to)));
  }
}

}  // namespace mdwf::tenant
