// Per-tenant SLO guard: graceful degradation under noisy neighbors.
//
// A guarded tenant watches its own consumer fetch latencies (windowed P99)
// and its producer/consumer frame lag.  When either breaches the tenant's
// target, the guard walks a degradation ladder, mildest step first:
//
//   kNominal        full speed
//   kStagger        producers insert idle before each frame (offered-load
//                   shaping: the tenant stops contributing to the very
//                   contention that is hurting it)
//   kShrinkCredits  stream tenants halve their staging credits (bounds
//                   buffered frames and the back-pressure they exert)
//   kFallback       new frames route over the Lustre plane instead of the
//                   contended KVS-coordinated primary (see RouteBook)
//
// The ladder de-escalates step by step once the windowed P99 has recovered
// with margin and a cooldown has elapsed.  Every transition is counted and,
// when tracing is on, emitted as an instant ("slo_level=<n>") so a Perfetto
// timeline shows exactly when a tenant degraded and recovered.
//
// Deterministic: decisions depend only on simulation state (virtual time,
// the tenant's own samples), never on wall clock.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "mdwf/common/time.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace mdwf::tenant {

enum class SloLevel : std::uint8_t {
  kNominal = 0,
  kStagger = 1,
  kShrinkCredits = 2,
  kFallback = 3,
};
std::string_view to_string(SloLevel level);

struct SloParams {
  bool enabled = false;
  // Windowed consumer fetch P99 target, microseconds.
  double fetch_p99_target_us = 6000.0;
  // Sliding sample window the P99 is computed over, and the minimum number
  // of samples before the guard trusts it.
  std::size_t window = 64;
  std::size_t min_samples = 16;
  // Escalations are at least `holdoff` apart (no 0 -> 3 jumps on one bad
  // burst); de-escalations wait the longer `cooldown` after any transition.
  Duration holdoff = Duration::milliseconds(500);
  Duration cooldown = Duration::seconds_i(2);
  // Frame-lag breach: produced - consumed > max_lag_per_pair * pairs.
  std::uint64_t max_lag_per_pair = 8;
  // Producer idle inserted per frame while staggered, as a fraction of the
  // frame period.
  double stagger_fraction = 0.25;
  // Stream credit multiplier while at kShrinkCredits or deeper.
  double credit_scale = 0.5;
  // Deepest reachable rung (solutions without a fallback plane stop at
  // kStagger; the runner caps this per solution).
  SloLevel max_level = SloLevel::kFallback;
};

class SloGuard final : public workflow::PacingHook {
 public:
  SloGuard(sim::Simulation& sim, const SloParams& params,
           Duration frame_period, std::uint32_t pairs);

  // Applied with params.credit_scale on entering kShrinkCredits and with
  // 1.0 on leaving it (the runner wires this to the tenant's stream nodes).
  void set_credit_sink(std::function<void(double)> sink) {
    credit_sink_ = std::move(sink);
  }
  void set_trace(obs::TraceSink* sink, obs::TrackId track);

  SloLevel level() const { return level_; }
  bool fallback_engaged() const { return level_ >= SloLevel::kFallback; }
  std::uint64_t escalations() const { return escalations_; }
  std::uint64_t deescalations() const { return deescalations_; }
  std::uint64_t staggered_frames() const { return staggered_frames_; }
  // Windowed P99 over the current sample window (0 when empty).
  double window_p99() const;

  // --- PacingHook ---------------------------------------------------------
  Duration producer_delay(std::uint64_t frame) override;
  void on_fetch(TimePoint now, double latency_us) override;
  void on_frame_produced(std::uint64_t frame) override;
  void on_frame_consumed(std::uint64_t frame) override;

 private:
  void evaluate(TimePoint now);
  void transition(SloLevel to, TimePoint now);

  sim::Simulation* sim_;
  SloParams params_;
  Duration frame_period_;
  std::uint32_t pairs_;

  SloLevel level_ = SloLevel::kNominal;
  TimePoint last_transition_ = TimePoint::origin();
  std::vector<double> ring_;   // window samples, oldest overwritten
  std::size_t ring_next_ = 0;
  std::size_t ring_count_ = 0;
  std::uint64_t produced_ = 0;
  std::uint64_t consumed_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t deescalations_ = 0;
  std::uint64_t staggered_frames_ = 0;
  std::function<void(double)> credit_sink_;
  obs::TraceSink* trace_ = nullptr;
  obs::InstantId level_marker_{};
};

}  // namespace mdwf::tenant
