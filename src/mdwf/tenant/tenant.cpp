#include "mdwf/tenant/tenant.hpp"

#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mdwf/common/assert.hpp"
#include "mdwf/fault/plan.hpp"
#include "mdwf/fs/interference.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/tenant/fallback.hpp"
#include "mdwf/workflow/config.hpp"

namespace mdwf::tenant {

namespace {

using workflow::Placement;
using workflow::Solution;
using workflow::Testbed;
using workflow::TestbedParams;

// Per-tenant counters on top of the standard ensemble set; registration
// order = stable CSV column order.
constexpr const char* kTenantCounterNames[] = {
    "slo_escalations",     "slo_deescalations", "slo_staggered_frames",
    "slo_fallback_frames", "quota_kvs_sheds",   "quota_mds_sheds",
    "quota_ost_sheds",     "quota_admits",      "quota_releases",
    "noise_ops",           "noise_sheds"};

sim::Task<void> run_set_and_mark(sim::Simulation& sim,
                                 std::vector<sim::Task<void>> tasks,
                                 TimePoint& end) {
  co_await sim::all(sim, std::move(tasks));
  end = sim.now();
}

bool has_faults(const TenantSpec& spec) {
  return spec.kind == TenantKind::kWorkflow && !spec.faults.empty() &&
         spec.faults != "none";
}

// A tenant's fault plan, authored against its own node count [0, nodes).
// The seed mixes the tenant index so co-tenant plans draw independent
// windows; like the classic path the plan is identical across repetitions
// (per-rep variation comes from the workload and integrity seeds).
fault::FaultPlan tenant_fault_plan(const TenantSpec& spec, std::size_t index,
                                   std::uint64_t base_seed,
                                   std::uint32_t ost_count) {
  fault::ScenarioShape shape;
  shape.compute_nodes = spec.nodes;
  shape.ost_count = ost_count;
  shape.seed = base_seed + 101 * (static_cast<std::uint64_t>(index) + 1);
  fault::FaultPlan plan;
  try {
    plan = fault::make_scenario(spec.faults, shape);
  } catch (const std::invalid_argument& e) {
    throw ConfigError("tenant '" + spec.name + "': " + e.what());
  }
  // Isolation invariant: a tenant's plan may only strike its own nodes
  // (shared-service windows are allowed — they hit everyone by design).
  for (const auto& w : plan.windows) {
    if (fault::targets_node(w.target) && w.index >= spec.nodes) {
      throw ConfigError("tenant '" + spec.name + "': scenario '" +
                        spec.faults + "' targets node " +
                        std::to_string(w.index) + " outside the tenant's " +
                        std::to_string(spec.nodes) + " node(s)");
    }
  }
  return plan;
}

Duration tenant_frame_span(const TenantSpec& spec) {
  return spec.workload.frame_compute() + spec.workload.analytics_time();
}

}  // namespace

void register_tenant_counters(obs::CounterMap& counters) {
  for (const char* name : kTenantCounterNames) counters.add(name, 0);
}

std::uint32_t total_nodes(const MultiTenantConfig& config) {
  std::uint32_t total = 0;
  for (const auto& spec : config.tenants) total += spec.nodes;
  return total;
}

TenantRepOutcome run_tenant_repetition(const MultiTenantConfig& config,
                                       std::uint32_t rep,
                                       obs::TraceSink* trace) {
  MDWF_ASSERT_MSG(!config.tenants.empty(), "need at least one tenant");
  const std::size_t nt = config.tenants.size();
  const bool multi = nt > 1;

  // Disjoint node slices, in spec order.
  std::vector<std::uint32_t> base(nt, 0);
  std::uint32_t nodes_total = 0;
  for (std::size_t i = 0; i < nt; ++i) {
    MDWF_ASSERT_MSG(config.tenants[i].nodes >= 1,
                    "every tenant needs at least one node");
    base[i] = nodes_total;
    nodes_total += config.tenants[i].nodes;
  }

  TenantRepOutcome out;
  out.tenants.reserve(nt);
  for (std::size_t i = 0; i < nt; ++i) {
    workflow::RepOutcome o;
    workflow::register_ensemble_counters(o.counters);
    register_tenant_counters(o.counters);
    out.tenants.push_back(std::move(o));
  }
  workflow::register_ensemble_counters(out.shared);

  TestbedParams tp = config.testbed;
  tp.compute_nodes = nodes_total;
  // Same per-repetition corruption-seed scheme as the classic runner.
  tp.integrity.seed = config.base_seed + rep * 7919;
  tp.trace = trace;

  // Merge the per-tenant fault plans (authored against tenant-local node
  // indices) onto the shared testbed's plan, shifted onto each slice.
  for (std::size_t i = 0; i < nt; ++i) {
    if (!has_faults(config.tenants[i])) continue;
    fault::FaultPlan plan = tenant_fault_plan(
        config.tenants[i], i, config.base_seed, tp.lustre.ost_count);
    fault::shift_node_targets(plan, base[i]);
    tp.faults.windows.insert(tp.faults.windows.end(), plan.windows.begin(),
                             plan.windows.end());
  }
  tp.faults.seed = config.base_seed;

  // Quotas ride the bounded-admission machinery, so arm it (the limits are
  // filled in by the testbed's with_default_limits wiring).
  const bool quota_on = config.quota && multi;
  if (quota_on) {
    tp.dyad.health.enabled = true;
    tp.stream.health.enabled = true;
  }

  // Declaration order is the unwind-order contract of the classic runner:
  // if a repetition throws, the testbed (and with it every coroutine frame)
  // must be destroyed before the assets, guards, and quota those frames
  // point into.
  std::unique_ptr<health::TenantQuota> quota;
  if (quota_on) {
    health::QuotaParams qp = config.quota_params;
    qp.enabled = true;
    quota = std::make_unique<health::TenantQuota>(qp);
    for (std::size_t i = 0; i < nt; ++i) {
      const std::uint32_t t =
          quota->add_tenant(config.tenants[i].name, config.tenants[i].weight);
      quota->map_nodes(base[i], config.tenants[i].nodes, t);
    }
  }
  std::vector<workflow::RankSetAssets> assets(nt);
  std::vector<std::unique_ptr<SloGuard>> guards(nt);
  std::vector<std::unique_ptr<RouteBook>> books(nt);
  std::vector<NoiseStats> noise_stats(nt);
  std::vector<TimePoint> ends(nt, TimePoint::origin());
  std::vector<workflow::RankSetSpec> specs(nt);

  Testbed tb(tp);
  auto& sim = tb.simulation();
  if (quota != nullptr) {
    tb.kvs().set_quota(quota.get());
    tb.lustre().set_quota(quota.get());
    if (auto* plane = tb.membership()) {
      // A declared-lost node shrinks its tenant's fair share: the dead
      // slice must not keep reserving admission slots the survivors could
      // use (isolation follows capacity, not the original placement).
      health::TenantQuota* q = quota.get();
      plane->add_declare_listener([q](std::uint32_t lost) {
        q->on_node_lost(net::NodeId{lost});
      });
    }
  }
  fault::FaultInjector* injector = tb.fault_injector();
  const Rng rep_rng(config.base_seed + rep);

  // Noise storms outlive the victims a little, never the whole run: twice
  // the longest tenant's serialized span plus slack.
  Duration longest = Duration::zero();
  for (std::size_t i = 0; i < nt; ++i) {
    const TenantSpec& spec = config.tenants[i];
    if (spec.kind != TenantKind::kWorkflow) continue;
    const Duration span = tenant_frame_span(spec) *
                          static_cast<std::int64_t>(spec.workload.frames);
    if (span > longest) longest = span;
  }
  const TimePoint noise_horizon = TimePoint::origin() + longest * 2 +
                                  Duration::seconds_i(10);

  for (std::size_t i = 0; i < nt; ++i) {
    const TenantSpec& spec = config.tenants[i];
    if (spec.kind == TenantKind::kNoise) {
      sim.spawn(run_kvs_noise(sim, tb.kvs(), net::NodeId{base[i]}, spec.noise,
                              rep_rng.fork(spec.name + "/noise"),
                              noise_horizon, noise_stats[i]));
      continue;
    }

    workflow::RankSetSpec& rs = specs[i];
    rs.solution = spec.solution;
    rs.pairs = spec.pairs;
    rs.node_base = base[i];
    rs.nodes = spec.nodes;
    rs.placement = spec.placement;
    rs.workload = spec.workload;
    rs.checkpoint = spec.checkpoint;
    // Only the tenants whose own slice crashes run the crash-aware loops:
    // a healthy neighbor keeps the classic loop shape (and its timings).
    rs.crash_aware =
        injector != nullptr &&
        fault::has_crash_in_nodes(tp.faults, base[i], spec.nodes);
    fault::CrashMonitor* crash =
        rs.crash_aware ? &injector->monitor() : nullptr;
    if (multi) {
      // A solo tenant keeps all three empty and reproduces the classic
      // runner bit-for-bit (same paths, same seed stream, same lanes).
      rs.ns = spec.name + "/";
      rs.rng_scope = spec.name + "/";
      rs.trace_process = spec.name;
    }

    if (spec.slo) {
      SloParams sp = spec.slo_params;
      sp.enabled = true;
      // Solutions without a separate primary plane have nothing to fall
      // back from (and no credits to shrink): their ladder ends at stagger.
      if (spec.solution == Solution::kXfs ||
          spec.solution == Solution::kLustre) {
        if (sp.max_level > SloLevel::kStagger) {
          sp.max_level = SloLevel::kStagger;
        }
      }
      guards[i] = std::make_unique<SloGuard>(
          sim, sp, spec.workload.frame_compute(), spec.pairs);
      if (spec.solution == Solution::kStream) {
        guards[i]->set_credit_sink(
            [&tb, first = base[i], count = spec.nodes](double scale) {
              for (std::uint32_t n = first; n < first + count; ++n) {
                tb.node(n).stream->set_credit_scale(scale);
              }
            });
      }
      if (trace != nullptr) {
        guards[i]->set_trace(
            trace, trace->track(multi ? spec.name : std::string("slo"),
                                "slo_guard"));
      }
      rs.pacing = guards[i].get();
      if (sp.max_level >= SloLevel::kFallback) {
        books[i] = std::make_unique<RouteBook>(spec.pairs);
        books[i]->attach(sim);
        RouteBook* book = books[i].get();
        SloGuard* guard = guards[i].get();
        Testbed* tbp = &tb;
        integrity::Ledger* ledger = tb.integrity_ledger();
        const bool durable =
            injector != nullptr && injector->has_crash_windows();
        rs.connectors = [book, guard, tbp, ledger, durable](
                            const workflow::ConnectorSpec& cs,
                            std::uint32_t pair, bool consumer)
            -> std::unique_ptr<workflow::Connector> {
          (void)consumer;
          auto fallback = std::make_unique<workflow::LustreConnector>(
              tbp->simulation(), tbp->lustre(), net::NodeId{cs.node},
              book->data_sync(pair), *cs.recorder, ledger, durable);
          return std::make_unique<FallbackConnector>(
              workflow::make_connector(cs), std::move(fallback), *book,
              *guard, pair);
        };
      }
    }

    workflow::build_rank_set(tb, rs, rep_rng, crash,
                             &out.tenants[i].cons_fetch_us, assets[i]);
    sim.spawn(run_set_and_mark(sim, std::move(assets[i].tasks), ends[i]));
  }

  if (config.lustre_interference) {
    config.interference.validate();
    // Horizon generously beyond the serialized makespan, as in the classic
    // runner's interference spawn.
    const TimePoint horizon =
        TimePoint::origin() + longest * 3 + Duration::seconds_i(30);
    sim.spawn(fs::run_ost_interference(sim, tb.lustre(), config.interference,
                                       rep_rng.fork("interference"),
                                       horizon));
  }

  const std::uint64_t events_fired = sim.run_to_quiescence();
  if (injector != nullptr) injector->finalize_trace();

  for (std::size_t i = 0; i < nt; ++i) {
    const TenantSpec& spec = config.tenants[i];
    workflow::RepOutcome& o = out.tenants[i];
    if (spec.kind == TenantKind::kWorkflow) {
      perf::Metadata extra;
      if (multi) extra["tenant"] = spec.name;
      workflow::collect_rank_set(tb, specs[i], assets[i], rep, extra, o);
      o.makespan_s = (ends[i] - TimePoint::origin()).to_seconds();
      if (guards[i] != nullptr) {
        o.counters.add("slo_escalations", guards[i]->escalations());
        o.counters.add("slo_deescalations", guards[i]->deescalations());
        o.counters.add("slo_staggered_frames", guards[i]->staggered_frames());
      }
      if (books[i] != nullptr) {
        o.counters.add("slo_fallback_frames", books[i]->fallback_frames());
      }
    } else {
      o.counters.add("noise_ops", noise_stats[i].ops);
      o.counters.add("noise_sheds", noise_stats[i].sheds);
    }
    if (quota != nullptr) {
      const auto t = static_cast<std::uint32_t>(i);
      using health::QuotaResource;
      o.counters.add("quota_kvs_sheds",
                     quota->sheds(QuotaResource::kKvs, t));
      o.counters.add("quota_mds_sheds",
                     quota->sheds(QuotaResource::kMds, t));
      o.counters.add("quota_ost_sheds",
                     quota->sheds(QuotaResource::kOst, t));
      o.counters.add("quota_admits", quota->admits_total(t));
      std::uint64_t releases = 0;
      for (std::size_t r = 0; r < health::kQuotaResources; ++r) {
        const auto res = static_cast<QuotaResource>(r);
        releases += quota->releases(res, t);
        // Conservation: at quiescence every admitted request has released
        // its slot — a leak here would starve the tenant forever after.
        MDWF_ASSERT_MSG(quota->in_flight(res, t) == 0,
                        "quota admission leaked in-flight slots");
      }
      o.counters.add("quota_releases", releases);
    }
  }

  {
    workflow::RepOutcome scratch;
    workflow::collect_shared(tb, events_fired, scratch);
    out.shared.merge(scratch.counters);
  }
  return out;
}

MultiTenantResult run_multi_tenant(const MultiTenantConfig& config) {
  MDWF_ASSERT_MSG(!config.tenants.empty(), "need at least one tenant");
  const std::size_t nt = config.tenants.size();

  // Validate every tenant's fault plan up front: a scenario targeting a
  // node beyond its tenant's slice must surface as a ConfigError, not as a
  // wrapped repetition failure N reps deep.
  for (std::size_t i = 0; i < nt; ++i) {
    if (!has_faults(config.tenants[i])) continue;
    (void)tenant_fault_plan(config.tenants[i], i, config.base_seed,
                            config.testbed.lustre.ost_count);
  }

  MultiTenantResult result;
  result.tenants.reserve(nt);
  for (const TenantSpec& spec : config.tenants) {
    TenantResult tr;
    tr.spec = spec;
    tr.result = workflow::make_ensemble_result();
    register_tenant_counters(tr.result.counters);
    result.tenants.push_back(std::move(tr));
  }
  workflow::register_ensemble_counters(result.shared);

  // Only repetition 0 is traced, as in run_ensemble: every rep is an
  // independent simulation starting at t=0.
  obs::TraceSink trace_sink;
  const bool tracing = !config.trace_path.empty();

  const std::uint32_t reps = config.repetitions;
  std::vector<TenantRepOutcome> slots(reps);
  std::vector<std::string> errors(reps);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(reps);
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    tasks.push_back([&config, &slots, &errors, &trace_sink, tracing, rep] {
      try {
        slots[rep] = run_tenant_repetition(
            config, rep, (tracing && rep == 0) ? &trace_sink : nullptr);
      } catch (const std::exception& e) {
        errors[rep] = e.what();
      } catch (...) {
        errors[rep] = "unknown error";
      }
    });
  }
  sweep::run_tasks(std::move(tasks), config.threads);

  // Rethrow the canonically-first failure, as the serial loop would.
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    if (!errors[rep].empty()) {
      throw std::runtime_error("repetition " + std::to_string(rep) + ": " +
                               errors[rep]);
    }
  }
  // Fold in repetition order: byte-identical for every thread count.
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < nt; ++i) {
      workflow::fold_repetition(result.tenants[i].result,
                                std::move(slots[rep].tenants[i]));
    }
    result.shared.merge(slots[rep].shared);
  }
  if (tracing) {
    result.shared.set("trace_events", trace_sink.event_count());
    trace_sink.write(config.trace_path);
  }
  return result;
}

std::string MultiTenantResult::to_csv() const {
  MDWF_ASSERT(!tenants.empty());
  std::string out =
      "tenant,solution,pairs,nodes,weight,prod_movement_us,prod_idle_us,"
      "cons_movement_us,cons_idle_us,makespan_s,fetch_p99_us";
  for (const auto& [name, value] : tenants.front().result.counters) {
    (void)value;
    out += ",";
    out += name;
  }
  out += "\n";
  char buf[64];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    out += buf;
  };
  for (const TenantResult& t : tenants) {
    const bool noise = t.spec.kind == TenantKind::kNoise;
    out += t.spec.name;
    out += ",";
    out += noise ? "noise" : std::string(workflow::to_string(t.spec.solution));
    out += "," + std::to_string(noise ? 0 : t.spec.pairs);
    out += "," + std::to_string(t.spec.nodes);
    out += ",";
    num(t.spec.weight);
    out += ",";
    num(t.result.prod_movement_us.mean());
    out += ",";
    num(t.result.prod_idle_us.mean());
    out += ",";
    num(t.result.cons_movement_us.mean());
    out += ",";
    num(t.result.cons_idle_us.mean());
    out += ",";
    num(t.result.makespan_s.mean());
    out += ",";
    num(t.result.cons_fetch_us.quantile(0.99));
    for (const auto& [name, value] : t.result.counters) {
      (void)name;
      out += "," + std::to_string(value);
    }
    out += "\n";
  }
  // Shared-service totals, counted once (not attributable to one tenant).
  out += "_shared,-,0,0";
  for (int i = 0; i < 7; ++i) {
    out += ",";
    num(0.0);
  }
  for (const auto& [name, value] : tenants.front().result.counters) {
    (void)value;
    out += "," + std::to_string(shared.get(name));
  }
  out += "\n";
  return out;
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      fields.push_back(s.substr(start));
      return fields;
    }
    fields.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

Solution parse_solution_token(const std::string& tok,
                              const std::string& desc) {
  if (tok == "dyad") return Solution::kDyad;
  if (tok == "xfs") return Solution::kXfs;
  if (tok == "lustre") return Solution::kLustre;
  if (tok == "stream") return Solution::kStream;
  throw ConfigError("bad tenant descriptor '" + desc + "': unknown solution '" +
                    tok + "' (dyad|xfs|lustre|stream|noise)");
}

std::uint64_t parse_uint_token(const std::string& tok,
                               const std::string& desc) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(tok, &used);
    if (used != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("bad tenant descriptor '" + desc + "': '" + tok +
                      "' is not a number");
  }
}

double parse_double_token(const std::string& tok, const std::string& desc) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("bad tenant descriptor '" + desc + "': '" + tok +
                      "' is not a number");
  }
}

}  // namespace

MultiTenantConfig parse_multi_tenant(const KeyValueConfig& cfg,
                                     const workflow::EnsembleConfig& defaults) {
  // Read the co-tenant keys before the base parse so its leftover-key check
  // does not trip over them.
  const std::string tenants_text = cfg.get_string("tenants", "");
  const bool slo = cfg.get_bool("slo", false);
  const double slo_target =
      cfg.get_double("slo_target_us", SloParams{}.fetch_p99_target_us);
  const bool quota = cfg.get_bool("quota", true);

  // Classic experiment keys (model, frames, reps, seed, threads, health,
  // hedge, push, ...) become the per-tenant defaults and the shared testbed.
  const workflow::EnsembleConfig base =
      workflow::parse_ensemble_config(cfg, defaults);
  if (!base.testbed.faults.empty()) {
    throw ConfigError(
        "faults= is global; in co-tenant runs give each tenant its own "
        "scenario inside tenants= (e.g. dyad/4/2/crash:0)");
  }
  if (tenants_text.empty()) {
    throw ConfigError("tenants= needs at least one descriptor");
  }

  MultiTenantConfig mc;
  mc.repetitions = base.repetitions;
  mc.base_seed = base.base_seed;
  mc.threads = base.threads;
  mc.quota = quota;
  mc.lustre_interference = base.lustre_interference;
  mc.interference = base.interference;
  mc.testbed = base.testbed;
  mc.trace_path = base.trace_path;

  SloParams sp;
  sp.enabled = slo;
  sp.fetch_p99_target_us = slo_target;

  std::size_t index = 0;
  for (const std::string& desc : split(tenants_text, ',')) {
    if (desc.empty()) {
      throw ConfigError("tenants= contains an empty descriptor");
    }
    TenantSpec t;
    t.workload = base.workload;
    t.checkpoint = base.checkpoint;
    t.placement = base.placement;
    std::string body = desc;
    if (const std::size_t at = body.find('@'); at != std::string::npos) {
      t.name = body.substr(0, at);
      body = body.substr(at + 1);
      if (t.name.empty()) {
        throw ConfigError("bad tenant descriptor '" + desc +
                          "': empty name before '@'");
      }
    }
    const std::vector<std::string> fields = split(body, '/');
    if (fields.front().empty()) {
      throw ConfigError("bad tenant descriptor '" + desc +
                        "': missing solution");
    }
    if (fields.front() == "noise") {
      t.kind = TenantKind::kNoise;
      t.nodes = 1;
      if (fields.size() > 3) {
        throw ConfigError("bad tenant descriptor '" + desc +
                          "': noise takes at most [intensity[/weight]]");
      }
      if (fields.size() >= 2) {
        t.noise.intensity =
            static_cast<std::uint32_t>(parse_uint_token(fields[1], desc));
      }
      if (fields.size() >= 3) t.weight = parse_double_token(fields[2], desc);
    } else {
      t.solution = parse_solution_token(fields.front(), desc);
      t.pairs = base.pairs;
      t.nodes = t.solution == Solution::kXfs ? 1 : base.nodes;
      if (fields.size() > 5) {
        throw ConfigError(
            "bad tenant descriptor '" + desc +
            "': expected solution[/pairs[/nodes[/faults[/weight]]]]");
      }
      if (fields.size() >= 2) {
        t.pairs = static_cast<std::uint32_t>(parse_uint_token(fields[1], desc));
      }
      if (fields.size() >= 3) {
        t.nodes = static_cast<std::uint32_t>(parse_uint_token(fields[2], desc));
      }
      if (fields.size() >= 4 && !fields[3].empty()) t.faults = fields[3];
      if (fields.size() >= 5) t.weight = parse_double_token(fields[4], desc);
      // XFS cannot move data between nodes: colocated by construction.
      if (t.solution == Solution::kXfs) t.placement = Placement::kColocated;
      t.slo = slo;
      t.slo_params = sp;
    }
    if (t.weight <= 0.0) {
      throw ConfigError("bad tenant descriptor '" + desc +
                        "': weight must be > 0");
    }
    if (t.name.empty()) t.name = "t" + std::to_string(index);
    mc.tenants.push_back(std::move(t));
    ++index;
  }
  for (std::size_t i = 0; i < mc.tenants.size(); ++i) {
    for (std::size_t j = i + 1; j < mc.tenants.size(); ++j) {
      if (mc.tenants[i].name == mc.tenants[j].name) {
        throw ConfigError("duplicate tenant name '" + mc.tenants[i].name +
                          "'");
      }
    }
  }

  // Cross-key rules, mirroring the classic parse but driven by the
  // *per-tenant* scenarios: injected faults default the recovery protocol
  // on, corrupting/tearing plans default end-to-end integrity on.  Explicit
  // retry=/integrity= keys still win.
  bool any_faults = false;
  bool flips = false;
  bool crashes = false;
  for (std::size_t i = 0; i < mc.tenants.size(); ++i) {
    const TenantSpec& t = mc.tenants[i];
    if (!has_faults(t)) continue;
    any_faults = true;
    const fault::FaultPlan plan = tenant_fault_plan(
        t, i, mc.base_seed, mc.testbed.lustre.ost_count);
    for (const auto& w : plan.windows) {
      flips = flips || w.mode == fault::FaultMode::kBitFlip;
      crashes = crashes || w.target == fault::FaultTarget::kNodeCrash;
    }
  }
  const bool retry =
      cfg.get_bool("retry", any_faults || mc.testbed.dyad.retry.enabled);
  mc.testbed.dyad.retry.enabled = retry;
  mc.testbed.dyad.retry.lustre_fallback = retry;
  mc.testbed.integrity.enabled = cfg.get_bool(
      "integrity", flips || crashes || mc.testbed.integrity.enabled);
  return mc;
}

}  // namespace mdwf::tenant
