#include "mdwf/storage/block_device.hpp"

namespace mdwf::storage {

BlockDevice::BlockDevice(sim::Simulation& sim, const BlockDeviceParams& params,
                         std::string name)
    : sim_(&sim),
      params_(params),
      name_(std::move(name)),
      read_channel_(sim, params.read_bandwidth_bps, name_ + ".read"),
      write_channel_(sim, params.write_bandwidth_bps, name_ + ".write"),
      queue_slots_(sim, params.queue_depth) {}

sim::Task<void> BlockDevice::submit(net::FairShareChannel& channel, Bytes n) {
  co_await queue_slots_.acquire();
  sim::SemaphoreGuard slot(queue_slots_);
  co_await sim_->delay(params_.op_latency);
  co_await channel.transfer(n);
}

sim::Task<void> BlockDevice::read(Bytes n) {
  co_await submit(read_channel_, n);
  ++reads_;
}

sim::Task<void> BlockDevice::write(Bytes n) {
  co_await submit(write_channel_, n);
  ++writes_;
}

void BlockDevice::set_background_load(double fraction) {
  read_channel_.set_background_load(fraction);
  write_channel_.set_background_load(fraction);
}

}  // namespace mdwf::storage
