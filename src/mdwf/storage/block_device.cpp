#include "mdwf/storage/block_device.hpp"

namespace mdwf::storage {

BlockDevice::BlockDevice(sim::Simulation& sim, const BlockDeviceParams& params,
                         std::string name)
    : sim_(&sim),
      params_(params),
      name_(std::move(name)),
      read_channel_(sim, params.read_bandwidth_bps, name_ + ".read"),
      write_channel_(sim, params.write_bandwidth_bps, name_ + ".write"),
      queue_slots_(sim, params.queue_depth) {}

sim::Task<void> BlockDevice::submit(net::FairShareChannel& channel, Bytes n) {
  while (offline_) {
    // Hold a local reference: the gate object is replaced on the next
    // offline window, but this waiter belongs to the current one.
    auto gate = online_gate_;
    co_await gate->wait();
  }
  if (lost_) {
    // The hosting node was declared lost while this op was parked (or the
    // caller is a zombie still submitting).  Fail it so the rank loop's
    // crash-epoch check can route into migration instead of waiting for a
    // power-on that never comes.
    ++io_errors_;
    throw IoError(name_ + ": device on a lost node");
  }
  trace_inflight(+1);
  co_await queue_slots_.acquire();
  sim::SemaphoreGuard slot(queue_slots_);
  co_await sim_->delay(params_.op_latency * slowdown_);
  if (io_error_p_ > 0.0 && fault_rng_.bernoulli(io_error_p_)) {
    ++io_errors_;
    trace_inflight(-1);
    throw IoError(name_ + ": simulated I/O error");
  }
  co_await channel.transfer(n);
  trace_inflight(-1);
}

void BlockDevice::set_trace(obs::TraceSink* sink, obs::TrackId track,
                            const std::string& prefix) {
  trace_ = sink;
  trace_inflight_ = sink->counter_id(track, prefix + ".inflight");
  read_channel_.set_trace(sink, sink->counter_id(track, prefix + ".read.flows"));
  write_channel_.set_trace(sink,
                           sink->counter_id(track, prefix + ".write.flows"));
}

void BlockDevice::trace_inflight(int delta) {
  inflight_ += delta;
  if (trace_ == nullptr) return;
  trace_->counter(trace_inflight_, sim_->now(), inflight_);
}

sim::Task<void> BlockDevice::read(Bytes n) {
  co_await submit(read_channel_, n);
  ++reads_;
}

sim::Task<void> BlockDevice::write(Bytes n) {
  co_await submit(write_channel_, n);
  ++writes_;
}

void BlockDevice::set_background_load(double fraction) {
  background_load_ = fraction;
  apply_channel_load();
}

void BlockDevice::set_fault_degradation(double fraction) {
  fault_degradation_ = fraction;
  apply_channel_load();
}

void BlockDevice::apply_channel_load() {
  // Interference and fault windows steal capacity independently; compose
  // the surviving fractions and cap so the channel keeps making progress.
  // A fail-slow window divides what survives; its cap is looser because a
  // 100x-slow device is exactly what the gray-failure model wants.
  const double surviving =
      (1.0 - background_load_) * (1.0 - fault_degradation_) / slowdown_;
  const double combined = 1.0 - surviving;
  const double cap = slowdown_ > 1.0 ? 0.99 : 0.95;
  const double capped = combined > cap ? cap : combined;
  read_channel_.set_background_load(capped);
  write_channel_.set_background_load(capped);
}

void BlockDevice::set_fault_slowdown(double factor) {
  slowdown_ = factor < 1.0 ? 1.0 : factor;
  apply_channel_load();
}

void BlockDevice::set_offline(bool offline) {
  if (offline == offline_) return;
  offline_ = offline;
  if (offline) {
    online_gate_ = std::make_shared<sim::Event>(*sim_);
  } else if (online_gate_ != nullptr) {
    online_gate_->trigger();
  }
}

void BlockDevice::set_io_error_p(double p) { io_error_p_ = p; }

void BlockDevice::set_lost() {
  lost_ = true;
  // Wake parked submitters; they observe lost_ and throw.
  if (offline_) set_offline(false);
}

}  // namespace mdwf::storage
