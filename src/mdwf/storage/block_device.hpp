// Node-local storage device model (NVMe SSD class).
//
// Costs per operation: a fixed submission/completion latency, a queue-depth
// limit (ops beyond it wait FIFO), and byte streaming through per-direction
// fair-share bandwidth channels.  Corona's 3.5 TB node-local NVMe is the
// reference configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "mdwf/common/bytes.hpp"
#include "mdwf/common/rng.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/net/fair_share.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::storage {

// A simulated device-level I/O failure (media error, controller reset).
// Raised by read/write when a fault plan arms a per-op error probability.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

struct BlockDeviceParams {
  double read_bandwidth_bps = 3.2e9;
  double write_bandwidth_bps = 3.0e9;
  Duration op_latency = Duration::microseconds(20);
  std::int64_t queue_depth = 16;
  Bytes capacity = Bytes::gib(3584);  // 3.5 TB
};

class BlockDevice {
 public:
  BlockDevice(sim::Simulation& sim, const BlockDeviceParams& params,
              std::string name = "nvme");

  const BlockDeviceParams& params() const { return params_; }
  const std::string& name() const { return name_; }

  sim::Task<void> read(Bytes n);
  sim::Task<void> write(Bytes n);

  // Interference hook: fraction of device bandwidth consumed by other
  // tenants (applies to both directions).  Composes with fault degradation.
  void set_background_load(double fraction);

  // --- Fault hooks (mdwf::fault) ------------------------------------------
  // Additional capacity loss from an injected fault window; composes
  // multiplicatively with the interference background load.
  void set_fault_degradation(double fraction);
  // While offline, newly submitted ops queue (device-missing semantics);
  // in-flight transfers complete.  They resume when the device returns.
  void set_offline(bool offline);
  bool offline() const { return offline_; }
  // Permanent failure (the node hosting the device was declared lost): ops
  // parked on the offline gate wake and throw IoError, as does every later
  // submission.  There is no way back — a declare is terminal.
  void set_lost();
  bool lost() const { return lost_; }
  // Per-op failure probability; an affected op charges its submission
  // latency then throws IoError without moving bytes.  Draws come from a
  // dedicated stream so p == 0 consumes no randomness.
  void set_io_error_p(double p);
  void reseed_fault_rng(Rng rng) { fault_rng_ = rng; }
  // Fail-slow (gray failure): every op's submission latency stretches by
  // `factor` (>= 1) and both bandwidth channels slow by the same factor.
  // 1.0 restores nominal speed.
  void set_fault_slowdown(double factor);
  double fault_slowdown() const { return slowdown_; }

  std::uint64_t reads_completed() const { return reads_; }
  std::uint64_t writes_completed() const { return writes_; }
  std::uint64_t io_errors() const { return io_errors_; }
  Bytes bytes_read() const { return read_channel_.total_requested(); }
  Bytes bytes_written() const { return write_channel_.total_requested(); }

  // --- Observability (mdwf::obs) ------------------------------------------
  // Samples device queue occupancy ("<prefix>.inflight": submitted ops not
  // yet complete, including those waiting for a queue slot) and the per-
  // direction active-stream counts ("<prefix>.read.flows" / ".write.flows")
  // onto `track` whenever they change.
  void set_trace(obs::TraceSink* sink, obs::TrackId track,
                 const std::string& prefix);

 private:
  sim::Task<void> submit(net::FairShareChannel& channel, Bytes n);
  void apply_channel_load();
  void trace_inflight(int delta);

  sim::Simulation* sim_;
  BlockDeviceParams params_;
  std::string name_;
  net::FairShareChannel read_channel_;
  net::FairShareChannel write_channel_;
  sim::Semaphore queue_slots_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  double background_load_ = 0.0;
  double fault_degradation_ = 0.0;
  double slowdown_ = 1.0;
  bool offline_ = false;
  bool lost_ = false;
  std::shared_ptr<sim::Event> online_gate_;
  double io_error_p_ = 0.0;
  Rng fault_rng_{1};
  std::uint64_t io_errors_ = 0;
  std::int64_t inflight_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::CounterId trace_inflight_{};
};

}  // namespace mdwf::storage
