// Node-local storage device model (NVMe SSD class).
//
// Costs per operation: a fixed submission/completion latency, a queue-depth
// limit (ops beyond it wait FIFO), and byte streaming through per-direction
// fair-share bandwidth channels.  Corona's 3.5 TB node-local NVMe is the
// reference configuration.
#pragma once

#include <cstdint>
#include <string>

#include "mdwf/common/bytes.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/net/fair_share.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::storage {

struct BlockDeviceParams {
  double read_bandwidth_bps = 3.2e9;
  double write_bandwidth_bps = 3.0e9;
  Duration op_latency = Duration::microseconds(20);
  std::int64_t queue_depth = 16;
  Bytes capacity = Bytes::gib(3584);  // 3.5 TB
};

class BlockDevice {
 public:
  BlockDevice(sim::Simulation& sim, const BlockDeviceParams& params,
              std::string name = "nvme");

  const BlockDeviceParams& params() const { return params_; }
  const std::string& name() const { return name_; }

  sim::Task<void> read(Bytes n);
  sim::Task<void> write(Bytes n);

  // Interference hook: fraction of device bandwidth consumed by other
  // tenants (applies to both directions).
  void set_background_load(double fraction);

  std::uint64_t reads_completed() const { return reads_; }
  std::uint64_t writes_completed() const { return writes_; }
  Bytes bytes_read() const { return read_channel_.total_requested(); }
  Bytes bytes_written() const { return write_channel_.total_requested(); }

 private:
  sim::Task<void> submit(net::FairShareChannel& channel, Bytes n);

  sim::Simulation* sim_;
  BlockDeviceParams params_;
  std::string name_;
  net::FairShareChannel read_channel_;
  net::FairShareChannel write_channel_;
  sim::Semaphore queue_slots_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace mdwf::storage
