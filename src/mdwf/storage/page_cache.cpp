#include "mdwf/storage/page_cache.hpp"

#include <iterator>

#include "mdwf/common/assert.hpp"

namespace mdwf::storage {

PageCache::PageCache(sim::Simulation& sim, const PageCacheParams& params,
                     BlockDevice& device)
    : sim_(&sim), params_(params), device_(&device) {
  MDWF_ASSERT(params.page_size.count() > 0);
  max_pages_ = static_cast<std::size_t>(params.capacity / params.page_size);
  MDWF_ASSERT_MSG(max_pages_ >= 1, "cache smaller than one page");
}

PageCache::Key PageCache::make_key(std::uint64_t file_id, std::uint64_t page) {
  MDWF_ASSERT(file_id < (1ull << 32) && page < (1ull << 32));
  return (file_id << 32) | page;
}

void PageCache::touch(Key k, Entry& e) {
  lru_.erase(e.lru_pos);
  lru_.push_front(k);
  e.lru_pos = lru_.begin();
}

Bytes PageCache::evict_one() {
  MDWF_ASSERT(!lru_.empty());
  // Prefer a clean victim near the LRU end (bounded scan); fall back to the
  // true LRU page when everything old is dirty.
  constexpr int kScanLimit = 128;
  auto victim_it = std::prev(lru_.end());
  int scanned = 0;
  for (auto it = std::prev(lru_.end());; --it) {
    const auto page = pages_.find(*it);
    MDWF_ASSERT(page != pages_.end());
    if (!page->second.dirty) {
      victim_it = it;
      break;
    }
    if (++scanned >= kScanLimit || it == lru_.begin()) break;
  }
  const Key victim = *victim_it;
  lru_.erase(victim_it);
  auto it = pages_.find(victim);
  MDWF_ASSERT(it != pages_.end());
  Bytes writeback = Bytes::zero();
  if (it->second.dirty) {
    writeback = params_.page_size;
    --dirty_count_;
  }
  pages_.erase(it);
  ++evictions_;
  return writeback;
}

void PageCache::writeback_async(Bytes n) {
  if (n.is_zero()) return;
  sim_->spawn(writeback_guarded(n));
}

sim::Task<void> PageCache::writeback_guarded(Bytes n) {
  // Background flusher traffic must never abort the run: a write that fails
  // (injected I/O error) or never completes before a crash just means the
  // page content is lost — exactly what the durability model expects.
  try {
    co_await device_->write(n);
  } catch (const IoError&) {
    ++failed_writebacks_;
  }
}

sim::Task<void> PageCache::memcpy_cost(Bytes n) {
  if (n.is_zero()) co_return;
  const double secs = static_cast<double>(n.count()) / params_.memcpy_bps;
  co_await sim_->delay(Duration::seconds(secs));
}

void PageCache::set_trace(obs::TraceSink* sink, obs::TrackId track,
                          const std::string& prefix) {
  trace_ = sink;
  trace_resident_ = sink->counter_id(track, prefix + ".resident_pages");
  trace_dirty_ = sink->counter_id(track, prefix + ".dirty_pages");
  traced_resident_ = -1;
  traced_dirty_ = -1;
}

void PageCache::trace_state() {
  if (trace_ == nullptr) return;
  const auto resident = static_cast<std::int64_t>(pages_.size());
  const auto dirty = static_cast<std::int64_t>(dirty_count_);
  if (resident != traced_resident_) {
    traced_resident_ = resident;
    trace_->counter(trace_resident_, sim_->now(), resident);
  }
  if (dirty != traced_dirty_) {
    traced_dirty_ = dirty;
    trace_->counter(trace_dirty_, sim_->now(), dirty);
  }
}

sim::Task<void> PageCache::write(std::uint64_t file_id, Bytes offset,
                                 Bytes len) {
  if (len.is_zero()) co_return;
  Bytes writeback = Bytes::zero();
  const std::uint64_t lo = first_page(offset);
  const std::uint64_t hi = last_page(offset, len);
  for (std::uint64_t p = lo; p <= hi; ++p) {
    const Key k = make_key(file_id, p);
    auto it = pages_.find(k);
    if (it != pages_.end()) {
      touch(k, it->second);
      if (!it->second.dirty) {
        it->second.dirty = true;
        ++dirty_count_;
      }
      continue;
    }
    ++misses_;
    while (pages_.size() >= max_pages_) writeback += evict_one();
    lru_.push_front(k);
    pages_.emplace(k, Entry{lru_.begin(), true});
    ++dirty_count_;
  }
  trace_state();
  // Evicted dirty victims flush in the background; the buffered write only
  // pays the memory copy.
  writeback_async(writeback);
  co_await memcpy_cost(len);
}

sim::Task<void> PageCache::read(std::uint64_t file_id, Bytes offset,
                                Bytes len) {
  if (len.is_zero()) co_return;
  Bytes writeback = Bytes::zero();
  Bytes to_fetch = Bytes::zero();
  const std::uint64_t lo = first_page(offset);
  const std::uint64_t hi = last_page(offset, len);
  for (std::uint64_t p = lo; p <= hi; ++p) {
    const Key k = make_key(file_id, p);
    auto it = pages_.find(k);
    if (it != pages_.end()) {
      ++hits_;
      touch(k, it->second);
      continue;
    }
    ++misses_;
    to_fetch += params_.page_size;
    while (pages_.size() >= max_pages_) writeback += evict_one();
    lru_.push_front(k);
    pages_.emplace(k, Entry{lru_.begin(), false});
  }
  trace_state();
  writeback_async(writeback);
  if (!to_fetch.is_zero()) co_await device_->read(to_fetch);
  co_await memcpy_cost(len);
}

sim::Task<void> PageCache::flush(std::uint64_t file_id) {
  Bytes writeback = Bytes::zero();
  for (auto& [key, entry] : pages_) {
    if ((key >> 32) == file_id && entry.dirty) {
      entry.dirty = false;
      --dirty_count_;
      writeback += params_.page_size;
    }
  }
  trace_state();
  if (!writeback.is_zero()) co_await device_->write(writeback);
}

void PageCache::drop(std::uint64_t file_id) {
  for (auto it = pages_.begin(); it != pages_.end();) {
    if ((it->first >> 32) == file_id) {
      if (it->second.dirty) --dirty_count_;
      lru_.erase(it->second.lru_pos);
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
  trace_state();
}

std::size_t PageCache::crash_drop_dirty() {
  const std::size_t lost = dirty_count_;
  dirty_dropped_ += lost;
  lru_.clear();
  pages_.clear();
  dirty_count_ = 0;
  trace_state();
  return lost;
}

bool PageCache::resident(std::uint64_t file_id, Bytes offset, Bytes len) const {
  if (len.is_zero()) return true;
  const std::uint64_t lo = first_page(offset);
  const std::uint64_t hi = last_page(offset, len);
  for (std::uint64_t p = lo; p <= hi; ++p) {
    if (!pages_.contains(make_key(file_id, p))) return false;
  }
  return true;
}

}  // namespace mdwf::storage
