// OS page-cache model.
//
// Buffered file I/O hits memory at memcpy speed; misses and evictions of
// dirty pages touch the backing device.  The cache is an LRU over fixed-size
// pages keyed by (file id, page index).  Only timing and residency are
// modelled — file *contents* live in the filesystem layer (or nowhere, for
// byte-count workloads).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "mdwf/common/bytes.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/storage/block_device.hpp"

namespace mdwf::storage {

struct PageCacheParams {
  Bytes capacity = Bytes::gib(8);
  Bytes page_size = Bytes::kib(256);
  // Sustained single-stream memcpy bandwidth.
  double memcpy_bps = 8.0e9;
};

class PageCache {
 public:
  PageCache(sim::Simulation& sim, const PageCacheParams& params,
            BlockDevice& device);

  const PageCacheParams& params() const { return params_; }

  // Buffered write of [offset, offset+len) in file `file_id`: memcpy into
  // cache pages, marking them dirty; evictions may write back to the device.
  sim::Task<void> write(std::uint64_t file_id, Bytes offset, Bytes len);

  // Buffered read: memcpy from resident pages; missing ranges are read from
  // the device first (read-ahead = exactly the requested pages).
  sim::Task<void> read(std::uint64_t file_id, Bytes offset, Bytes len);

  // Writes back all dirty pages of the file (fsync).
  sim::Task<void> flush(std::uint64_t file_id);

  // Drops every page of the file without writeback (unlink).
  void drop(std::uint64_t file_id);

  // Power-loss: every dirty page vanishes without writeback (clean pages
  // survive only as far as the model cares — they are dropped too, as a
  // rebooted node starts cold).  Returns the number of dirty pages lost.
  std::size_t crash_drop_dirty();

  // True when the whole byte range is resident.
  bool resident(std::uint64_t file_id, Bytes offset, Bytes len) const;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t dirty_dropped() const { return dirty_dropped_; }
  std::uint64_t failed_writebacks() const { return failed_writebacks_; }
  std::size_t resident_pages() const { return pages_.size(); }
  std::size_t dirty_pages() const { return dirty_count_; }

  // Samples residency/dirty state ("<prefix>.resident_pages",
  // "<prefix>.dirty_pages") onto `track` after each cache operation that
  // changed them (mdwf::obs).
  void set_trace(obs::TraceSink* sink, obs::TrackId track,
                 const std::string& prefix);

 private:
  // (file_id, page_index) packed; both fit 32 bits for any modelled load.
  using Key = std::uint64_t;
  static Key make_key(std::uint64_t file_id, std::uint64_t page);

  struct Entry {
    std::list<Key>::iterator lru_pos;
    bool dirty = false;
  };

  std::uint64_t first_page(Bytes offset) const {
    return offset.count() / params_.page_size.count();
  }
  std::uint64_t last_page(Bytes offset, Bytes len) const {
    return (offset.count() + len.count() - 1) / params_.page_size.count();
  }

  void touch(Key k, Entry& e);
  // Makes room for one page.  Clean pages are preferred victims; evicting a
  // dirty page returns its size so the caller can launch the write-back.
  Bytes evict_one();
  // Asynchronous write-back of evicted dirty bytes: the device sees the
  // traffic, the foreground operation does not wait (kernel flusher
  // behaviour).
  void writeback_async(Bytes n);
  sim::Task<void> writeback_guarded(Bytes n);
  sim::Task<void> memcpy_cost(Bytes n);
  void trace_state();

  sim::Simulation* sim_;
  PageCacheParams params_;
  BlockDevice* device_;
  std::size_t max_pages_;
  std::list<Key> lru_;  // front = most recent
  std::unordered_map<Key, Entry> pages_;
  std::size_t dirty_count_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t dirty_dropped_ = 0;
  std::uint64_t failed_writebacks_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::CounterId trace_resident_{};
  obs::CounterId trace_dirty_{};
  std::int64_t traced_resident_ = -1;
  std::int64_t traced_dirty_ = -1;
};

}  // namespace mdwf::storage
