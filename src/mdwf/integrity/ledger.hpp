// End-to-end data-integrity model (mdwf::integrity).
//
// Frames are byte ranges, not real payloads, so corruption cannot be
// discovered by hashing actual bytes.  Instead the `Ledger` is the single
// source of truth for which *replica* of which frame is silently corrupt:
// every store of a frame copy (node-local SSD, DYAD staging area, Lustre
// stripes) draws a seeded per-device corruption coin, every fabric traversal
// draws a per-link coin, and consumers "verify" a read by comparing the CRC
// they would have computed (the producer's tag when the replica and flight
// were clean, a perturbed value otherwise) against the tag carried in the
// frame's metadata.  All draws come from one forked `mdwf::Rng`, so a given
// seed yields a bit-identical corruption history.
//
// Baseline rates model media wear / marginal fabrics; `fault::FaultInjector`
// raises them during `FaultMode::kBitFlip` windows via the set_*_rate hooks.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "mdwf/common/bytes.hpp"
#include "mdwf/common/rng.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::integrity {

struct IntegrityParams {
  bool enabled = false;
  // Baseline per-replica-store / per-link-traversal silent-corruption
  // probabilities (fault windows raise them temporarily).
  double device_flip_p = 0.0;
  double link_flip_p = 0.0;
  // CRC32C throughput: producers pay size/checksum_bps to tag a frame,
  // consumers pay it again to verify.
  double checksum_bps = 8.0e9;
  std::uint64_t seed = 42;
};

class Ledger {
 public:
  Ledger(sim::Simulation& sim, const IntegrityParams& params);

  const IntegrityParams& params() const { return params_; }

  // The CRC32C a producer computes for a frame.  Frames carry no real bytes,
  // so the tag is derived deterministically from identity (path) and size —
  // what matters is that producer and verifier agree on the clean value.
  static std::uint32_t tag(std::string_view path, Bytes size);
  // The value a reader computes from a corrupted copy (never equals tag()).
  static std::uint32_t corrupt_tag(std::string_view path, Bytes size);

  // CPU cost of checksumming `size` bytes (charged by producers and
  // verifying consumers).
  sim::Task<void> charge(Bytes size);

  // Canonical replica-location names.
  static std::string ssd_location(std::uint32_t node);
  static constexpr std::string_view kLustreLocation = "lustre";

  // --- Replica tracking ----------------------------------------------------
  // A fresh copy of `path` written to `node`'s SSD: draws that device's
  // corruption coin and records the replica state.
  void store(const std::string& path, const std::string& location,
             std::uint32_t node);
  // A copy striped across the Lustre OSTs by `writer_node` (the payload also
  // crossed the writer's link).
  void store_lustre(const std::string& path, std::uint32_t writer_node);
  // A copy written from an already-corrupt source (propagation, no draw).
  void store_corrupt(const std::string& path, const std::string& location);
  bool corrupt(const std::string& path, const std::string& location) const;
  void drop(const std::string& path, const std::string& location);

  // One fabric traversal between two endpoints: true = payload flipped in
  // flight.
  bool flip_link(std::uint32_t node_a, std::uint32_t node_b);
  // One Lustre bulk read into `reader` (the server side has no per-node
  // link windows; the reader's link is what can flip the payload).
  bool flip_lustre_read(std::uint32_t reader);

  // --- Verification bookkeeping --------------------------------------------
  void count_verify(bool ok);
  void count_refetch() { ++refetches_; }
  void count_unrecovered() { ++unrecovered_; }

  std::uint64_t verified() const { return verified_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t refetches() const { return refetches_; }
  std::uint64_t unrecovered() const { return unrecovered_; }
  std::uint64_t corrupt_stores() const { return corrupt_stores_; }

  // --- Fault-window hooks (mdwf::fault) ------------------------------------
  // Set 0 to clear; the effective rate is max(baseline, window).
  void set_ssd_rate(std::uint32_t node, double p);
  void set_ost_rate(std::uint32_t ost, double p);
  void set_link_rate(std::uint32_t node, double p);

 private:
  double ssd_rate(std::uint32_t node) const;
  double lustre_rate() const;
  double link_rate(std::uint32_t node) const;
  bool draw(double p);
  void record(const std::string& path, const std::string& location,
              bool is_corrupt);

  sim::Simulation* sim_;
  IntegrityParams params_;
  Rng rng_;
  // Replicas currently known corrupt, keyed "path|location".  Clean replicas
  // are not tracked: an unknown replica reads clean.
  std::set<std::string> corrupt_;
  std::map<std::uint32_t, double> ssd_window_;
  std::map<std::uint32_t, double> ost_window_;
  std::map<std::uint32_t, double> link_window_;
  std::uint64_t verified_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t refetches_ = 0;
  std::uint64_t unrecovered_ = 0;
  std::uint64_t corrupt_stores_ = 0;
};

}  // namespace mdwf::integrity
