#include "mdwf/integrity/ledger.hpp"

#include <algorithm>

#include "mdwf/common/crc32c.hpp"

namespace mdwf::integrity {

Ledger::Ledger(sim::Simulation& sim, const IntegrityParams& params)
    : sim_(&sim), params_(params), rng_(Rng(params.seed).fork("integrity")) {}

std::uint32_t Ledger::tag(std::string_view path, Bytes size) {
  std::uint32_t crc = crc32c(path.data(), path.size());
  const std::uint64_t n = size.count();
  return crc32c(&n, sizeof(n), crc);
}

std::uint32_t Ledger::corrupt_tag(std::string_view path, Bytes size) {
  // Any value != tag() detects; flipping all bits keeps it deterministic.
  return ~tag(path, size);
}

sim::Task<void> Ledger::charge(Bytes size) {
  if (size.is_zero()) co_return;
  co_await sim_->delay(Duration::seconds(
      static_cast<double>(size.count()) / params_.checksum_bps));
}

std::string Ledger::ssd_location(std::uint32_t node) {
  return "ssd/node" + std::to_string(node);
}

double Ledger::ssd_rate(std::uint32_t node) const {
  const auto it = ssd_window_.find(node);
  return std::max(params_.device_flip_p,
                  it == ssd_window_.end() ? 0.0 : it->second);
}

double Ledger::lustre_rate() const {
  // A striped file touches some subset of OSTs; charge the worst active
  // window (replica granularity is the file, not the stripe).
  double w = 0.0;
  for (const auto& [ost, p] : ost_window_) w = std::max(w, p);
  return std::max(params_.device_flip_p, w);
}

double Ledger::link_rate(std::uint32_t node) const {
  const auto it = link_window_.find(node);
  return std::max(params_.link_flip_p,
                  it == link_window_.end() ? 0.0 : it->second);
}

bool Ledger::draw(double p) {
  if (p <= 0.0) return false;
  return rng_.bernoulli(p);
}

void Ledger::record(const std::string& path, const std::string& location,
                    bool is_corrupt) {
  const std::string key = path + "|" + location;
  if (is_corrupt) {
    ++corrupt_stores_;
    corrupt_.insert(key);
  } else {
    corrupt_.erase(key);
  }
}

void Ledger::store(const std::string& path, const std::string& location,
                   std::uint32_t node) {
  record(path, location, draw(ssd_rate(node)));
}

void Ledger::store_lustre(const std::string& path, std::uint32_t writer_node) {
  const bool bad = draw(link_rate(writer_node)) || draw(lustre_rate());
  record(path, std::string(kLustreLocation), bad);
}

void Ledger::store_corrupt(const std::string& path,
                           const std::string& location) {
  record(path, location, true);
}

bool Ledger::corrupt(const std::string& path,
                     const std::string& location) const {
  return corrupt_.contains(path + "|" + location);
}

void Ledger::drop(const std::string& path, const std::string& location) {
  corrupt_.erase(path + "|" + location);
}

bool Ledger::flip_link(std::uint32_t node_a, std::uint32_t node_b) {
  if (node_a == node_b) return false;  // loopback never touches the fabric
  return draw(link_rate(node_a)) || draw(link_rate(node_b));
}

bool Ledger::flip_lustre_read(std::uint32_t reader) {
  return draw(link_rate(reader));
}

void Ledger::count_verify(bool ok) {
  ++verified_;
  if (!ok) ++failures_;
}

void Ledger::set_ssd_rate(std::uint32_t node, double p) {
  if (p <= 0.0) {
    ssd_window_.erase(node);
  } else {
    ssd_window_[node] = p;
  }
}

void Ledger::set_ost_rate(std::uint32_t ost, double p) {
  if (p <= 0.0) {
    ost_window_.erase(ost);
  } else {
    ost_window_[ost] = p;
  }
}

void Ledger::set_link_rate(std::uint32_t node, double p) {
  if (p <= 0.0) {
    link_window_.erase(node);
  } else {
    link_window_[node] = p;
  }
}

}  // namespace mdwf::integrity
