#include "mdwf/sweep/sweep.hpp"

#include <chrono>
#include <cstdio>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "mdwf/common/assert.hpp"

namespace mdwf::sweep {
namespace {

// Work-stealing task pool for a fixed batch: tasks are dealt round-robin
// onto per-worker deques up front; an owner pops its own newest task
// (LIFO keeps the deal's cache-warm tail local), a thief takes a victim's
// oldest (FIFO minimizes contention on the victim's hot end).  Tasks never
// spawn tasks, so a worker that finds every deque empty is done for good.
// Determinism needs nothing from the pool — tasks write to pre-sized slots
// and the caller folds slots in canonical order.
class TaskPool {
 public:
  static void run(std::vector<std::function<void()>>&& tasks,
                  unsigned threads) {
    if (threads <= 1 || tasks.size() <= 1) {
      for (auto& t : tasks) t();
      return;
    }
    const auto n = static_cast<unsigned>(
        std::min<std::size_t>(threads, tasks.size()));
    std::vector<Queue> queues(n);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      queues[i % n].tasks.push_back(std::move(tasks[i]));
    }
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
      workers.emplace_back([&queues, n, w] { work(queues, n, w); });
    }
    for (auto& t : workers) t.join();
  }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  static void work(std::vector<Queue>& queues, unsigned n, unsigned self) {
    for (;;) {
      std::function<void()> task;
      {
        Queue& own = queues[self];
        const std::lock_guard<std::mutex> lock(own.mu);
        if (!own.tasks.empty()) {
          task = std::move(own.tasks.back());
          own.tasks.pop_back();
        }
      }
      for (unsigned k = 1; !task && k < n; ++k) {
        Queue& victim = queues[(self + k) % n];
        const std::lock_guard<std::mutex> lock(victim.mu);
        if (!victim.tasks.empty()) {
          task = std::move(victim.tasks.front());
          victim.tasks.pop_front();
        }
      }
      if (!task) return;
      task();
    }
  }
};

// One repetition's landing slot: exactly one of `out`/`err` is set after the
// task ran.
struct RepSlot {
  std::optional<workflow::RepOutcome> out;
  std::exception_ptr err;
};

std::function<void()> make_rep_task(const workflow::EnsembleConfig& config,
                                    std::uint32_t rep, obs::TraceSink* trace,
                                    RepSlot& slot) {
  return [&config, rep, trace, &slot] {
    try {
      slot.out = workflow::run_repetition(config, rep, trace);
    } catch (...) {
      slot.err = std::current_exception();
    }
  };
}

std::string error_message(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

// CSV field hygiene: the summary is one record per line, comma-separated.
std::string csv_safe(std::string s) {
  for (char& c : s) {
    if (c == ',' || c == '\n' || c == '\r') c = ';';
  }
  return s;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

unsigned resolve_threads(std::uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void run_tasks(std::vector<std::function<void()>> tasks,
               std::uint32_t threads) {
  TaskPool::run(std::move(tasks), resolve_threads(threads));
}

workflow::EnsembleResult run_ensemble(const workflow::EnsembleConfig& config) {
  const unsigned threads = resolve_threads(config.threads);
  if (threads <= 1 || config.repetitions <= 1) {
    return workflow::run_ensemble(config);
  }
  obs::TraceSink trace_sink;  // rep 0 only: no cross-thread sharing
  const bool tracing = !config.trace_path.empty();
  std::vector<RepSlot> slots(config.repetitions);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(config.repetitions);
  for (std::uint32_t rep = 0; rep < config.repetitions; ++rep) {
    tasks.push_back(make_rep_task(
        config, rep, (tracing && rep == 0) ? &trace_sink : nullptr,
        slots[rep]));
  }
  TaskPool::run(std::move(tasks), threads);

  workflow::EnsembleResult result = workflow::make_ensemble_result();
  for (RepSlot& slot : slots) {
    // Lowest failing repetition wins, exactly as the serial loop (which
    // would never have reached the later repetitions at all).
    if (slot.err) std::rethrow_exception(slot.err);
    fold_repetition(result, std::move(*slot.out));
  }
  if (tracing) {
    result.counters.set("trace_events", trace_sink.event_count());
    trace_sink.write(config.trace_path);
  }
  return result;
}

SweepResult run_sweep(std::vector<SweepPoint> grid, std::uint32_t threads) {
  const unsigned workers = resolve_threads(threads);
  const auto start = std::chrono::steady_clock::now();

  // Per-point repetition slots plus a per-point trace sink (rep 0 of each
  // point may trace; distinct points never share a sink, so point-level
  // parallelism stays race-free).
  std::vector<std::vector<RepSlot>> slots(grid.size());
  std::deque<obs::TraceSink> sinks(grid.size());
  std::vector<std::function<void()>> tasks;
  for (std::size_t p = 0; p < grid.size(); ++p) {
    const workflow::EnsembleConfig& config = grid[p].config;
    slots[p].resize(config.repetitions);
    const bool tracing = !config.trace_path.empty();
    for (std::uint32_t rep = 0; rep < config.repetitions; ++rep) {
      tasks.push_back(make_rep_task(
          config, rep, (tracing && rep == 0) ? &sinks[p] : nullptr,
          slots[p][rep]));
    }
  }
  TaskPool::run(std::move(tasks), workers);

  SweepResult sweep;
  sweep.points.reserve(grid.size());
  for (std::size_t p = 0; p < grid.size(); ++p) {
    PointResult point;
    point.label = std::move(grid[p].label);
    point.config = std::move(grid[p].config);
    workflow::EnsembleResult folded = workflow::make_ensemble_result();
    for (RepSlot& slot : slots[p]) {
      if (slot.err) {
        // Canonical first failure; later repetitions of a poisoned point
        // are dropped (the serial loop would not have run them).
        point.error_text = error_message(slot.err);
        break;
      }
      fold_repetition(folded, std::move(*slot.out));
    }
    if (!point.failed()) {
      if (!point.config.trace_path.empty()) {
        folded.counters.set("trace_events", sinks[p].event_count());
        sinks[p].write(point.config.trace_path);
      }
      point.sim_events = folded.counters.get("sim_events");
      point.result = std::move(folded);
    }
    sweep.errors += point.failed() ? 1 : 0;
    sweep.total_sim_events += point.sim_events;
    sweep.points.push_back(std::move(point));
  }
  sweep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return sweep;
}

std::string SweepResult::to_csv() const {
  std::string csv =
      "label,solution,model,pairs,nodes,frames,reps,"
      "prod_movement_us,prod_idle_us,cons_movement_us,cons_idle_us,"
      "fetch_p99_us,makespan_s,sim_events,error\n";
  for (const PointResult& point : points) {
    const workflow::EnsembleConfig& c = point.config;
    csv += csv_safe(point.label);
    csv += ',';
    csv += to_string(c.solution);
    csv += ',';
    csv += csv_safe(std::string(c.workload.model.name));
    csv += ',' + std::to_string(c.pairs);
    csv += ',' + std::to_string(c.nodes);
    csv += ',' + std::to_string(c.workload.frames);
    csv += ',' + std::to_string(c.repetitions);
    const workflow::EnsembleResult& r = point.result;
    csv += ',' + fmt(point.failed() ? 0.0 : r.prod_movement_us.mean());
    csv += ',' + fmt(point.failed() ? 0.0 : r.prod_idle_us.mean());
    csv += ',' + fmt(point.failed() ? 0.0 : r.cons_movement_us.mean());
    csv += ',' + fmt(point.failed() ? 0.0 : r.cons_idle_us.mean());
    csv += ',' + fmt(point.failed() ? 0.0 : r.cons_fetch_us.quantile(0.99));
    csv += ',' + fmt(point.failed() ? 0.0 : r.makespan_s.mean());
    csv += ',' + std::to_string(point.sim_events);
    csv += ',' + csv_safe(point.error_text);
    csv += '\n';
  }
  return csv;
}

}  // namespace mdwf::sweep
