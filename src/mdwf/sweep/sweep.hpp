// Deterministic parallel replica runner.
//
// A paper-scale study is a grid — model x pairs x nodes x solution x fault
// plan — with seeded repetitions at every point.  Each repetition already
// runs in its own Simulation with seeds derived only from (base_seed, rep)
// (see workflow::run_repetition), so the grid fans perfectly across cores:
// a work-stealing pool executes every (point, repetition) task on whatever
// worker is free, results land in pre-sized slots, and the fold walks the
// slots in canonical (grid-point, repetition) order.  Merged output is
// therefore byte-identical for every thread count, including threads=1 —
// parallelism changes wall-clock time and nothing else
// (tests/sweep_test.cpp pins this contract).
//
// Error containment: a repetition that throws poisons only its grid point.
// The point reports the canonically-first failing repetition's message; the
// rest of the grid completes normally.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mdwf/workflow/ensemble.hpp"

namespace mdwf::sweep {

// Worker count actually used for a requested `threads` config value
// (0 = all hardware threads; hardware_concurrency() == 0 falls back to 1).
unsigned resolve_threads(std::uint32_t requested);

// Runs a batch of independent tasks on the same work-stealing pool the
// replica runner uses; blocks until every task has completed.  Tasks must
// not throw (wrap and capture) and must not enqueue further tasks.  With
// threads <= 1 the tasks run inline in order.
void run_tasks(std::vector<std::function<void()>> tasks,
               std::uint32_t threads);

// One grid point: a full ensemble configuration plus a label for reports.
struct SweepPoint {
  std::string label;
  workflow::EnsembleConfig config;
};

struct PointResult {
  std::string label;
  workflow::EnsembleConfig config;    // as run
  workflow::EnsembleResult result;    // empty when failed()
  // Non-empty when a repetition threw: the message of the lowest-numbered
  // failing repetition (canonical across thread counts).
  std::string error_text;
  // Simulation events summed over this point's completed repetitions.
  std::uint64_t sim_events = 0;

  bool failed() const { return !error_text.empty(); }
};

struct SweepResult {
  std::vector<PointResult> points;  // grid order, independent of threads
  std::size_t errors = 0;           // points with failed() set
  std::uint64_t total_sim_events = 0;
  double wall_seconds = 0.0;        // real time, the only thread-dependent field

  double events_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(total_sim_events) / wall_seconds
               : 0.0;
  }

  // Canonical per-point summary CSV.  Deliberately excludes wall-clock and
  // thread count so the bytes are identical for every `threads` value.
  std::string to_csv() const;
};

// Runs every (grid point, repetition) across `threads` workers and merges
// in canonical order.  threads as in resolve_threads.
SweepResult run_sweep(std::vector<SweepPoint> grid, std::uint32_t threads);

// Drop-in parallel workflow::run_ensemble honoring config.threads: the
// seeded repetitions fan across workers and fold in repetition order, so
// the result is byte-identical to the serial library call.  A repetition
// failure rethrows the canonically-first error, as the serial loop would.
workflow::EnsembleResult run_ensemble(const workflow::EnsembleConfig& config);

}  // namespace mdwf::sweep
