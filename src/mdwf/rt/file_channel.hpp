// Real-thread, real-filesystem producer-consumer channel.
//
// The simulation models timing; this backend demonstrates the same
// workflow semantics on an actual filesystem with actual threads, and is
// what the in-situ analytics example runs on.  Frames are serialized with
// the md codec (CRC-checked), written to `<dir>/<name>.tmp` and renamed to
// commit — the rename gives atomic visibility, mirroring how DYAD's
// producer makes a file appear only when complete.
//
// Two synchronization protocols mirror the paper's contrast:
//   kCoarse   - the consumer discovers files by polling the directory at a
//               fixed interval (manual, filesystem-only synchronization);
//   kEventful - the producer notifies an in-process registry (the role the
//               Flux KVS plays for DYAD): consumers block on a condition
//               variable and wake as soon as the frame is committed.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "mdwf/md/frame.hpp"

namespace mdwf::rt {

enum class SyncProtocol { kCoarse, kEventful };

struct ChannelStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  // Wall time the consumer spent blocked waiting for data.
  std::chrono::nanoseconds consumer_wait{0};
  // Wall time spent in actual file I/O (producer writes + consumer reads).
  std::chrono::nanoseconds producer_io{0};
  std::chrono::nanoseconds consumer_io{0};
  // End-to-end integrity: channel-level CRC32C checks on the bytes read
  // back (on top of the frame codec's own payload CRC), and how many reads
  // mismatched the producer's tag before the one retry resolved them.
  std::uint64_t crc_checks = 0;
  std::uint64_t crc_failures = 0;
};

class FileChannel {
 public:
  // Creates (and cleans) the staging directory.
  FileChannel(std::filesystem::path dir, SyncProtocol protocol,
              std::chrono::milliseconds poll_interval =
                  std::chrono::milliseconds(2));
  ~FileChannel();

  FileChannel(const FileChannel&) = delete;
  FileChannel& operator=(const FileChannel&) = delete;

  SyncProtocol protocol() const { return protocol_; }
  const std::filesystem::path& dir() const { return dir_; }

  // Producer: serialize and publish a frame under `name` (thread-safe).
  void put(const std::string& name, const md::Frame& frame);

  // Consumer: block until `name` is available, then read and deserialize.
  // Returns nullopt if `close()` was called before the frame appeared.
  std::optional<md::Frame> get(const std::string& name);

  // Unblocks all waiting consumers (end of stream).
  void close();

  ChannelStats stats() const;

 private:
  bool committed_unlocked(const std::string& name) const {
    return committed_.contains(name);
  }

  std::filesystem::path dir_;
  SyncProtocol protocol_;
  std::chrono::milliseconds poll_interval_;

  // Producer-side commit record: what a consumer must see back.
  struct Committed {
    std::uintmax_t size = 0;
    std::uint32_t crc = 0;  // chunked CRC32C over the serialized bytes
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Committed> committed_;
  bool closed_ = false;
  ChannelStats stats_;
};

}  // namespace mdwf::rt
