#include "mdwf/rt/file_channel.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mdwf/common/crc32c.hpp"

namespace mdwf::rt {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

// Chunked/incremental CRC32C, the way a streaming reader would compute it
// (and a direct test of crc32c seed chaining on large buffers).
constexpr std::size_t kCrcChunk = 64 * 1024;

std::uint32_t chunked_crc32c(std::span<const std::byte> data) {
  std::uint32_t crc = 0;
  for (std::size_t off = 0; off < data.size(); off += kCrcChunk) {
    const std::size_t n = std::min(kCrcChunk, data.size() - off);
    crc = crc32c(data.subspan(off, n), crc);
  }
  return crc;
}

}  // namespace

FileChannel::FileChannel(fs::path dir, SyncProtocol protocol,
                         std::chrono::milliseconds poll_interval)
    : dir_(std::move(dir)), protocol_(protocol), poll_interval_(poll_interval) {
  fs::remove_all(dir_);
  fs::create_directories(dir_);
}

FileChannel::~FileChannel() {
  close();
  std::error_code ec;
  fs::remove_all(dir_, ec);  // best-effort cleanup
}

void FileChannel::put(const std::string& name, const md::Frame& frame) {
  const auto t0 = Clock::now();
  const auto buf = frame.serialize();
  const fs::path final_path = dir_ / name;
  const fs::path tmp_path = dir_ / (name + ".tmp");
  fs::create_directories(final_path.parent_path());
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp_path.string());
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    if (!out) throw std::runtime_error("short write to " + tmp_path.string());
  }
  fs::rename(tmp_path, final_path);  // atomic commit
  const auto t1 = Clock::now();

  std::lock_guard lock(mu_);
  committed_[name] = Committed{buf.size(), chunked_crc32c(buf)};
  stats_.frames += 1;
  stats_.bytes += buf.size();
  stats_.producer_io += t1 - t0;
  if (protocol_ == SyncProtocol::kEventful) cv_.notify_all();
}

std::optional<md::Frame> FileChannel::get(const std::string& name) {
  const auto wait_start = Clock::now();
  {
    std::unique_lock lock(mu_);
    if (protocol_ == SyncProtocol::kEventful) {
      cv_.wait(lock, [&] { return closed_ || committed_unlocked(name); });
    } else {
      // Coarse protocol: poll for the committed file at a fixed interval
      // (what a filesystem-only workflow does in the absence of any
      // notification channel).
      while (!closed_ && !committed_unlocked(name)) {
        lock.unlock();
        std::this_thread::sleep_for(poll_interval_);
        lock.lock();
      }
    }
    if (!committed_unlocked(name)) return std::nullopt;  // closed early
    stats_.consumer_wait += Clock::now() - wait_start;
  }
  std::uint32_t expected_crc = 0;
  {
    std::lock_guard lock(mu_);
    expected_crc = committed_.at(name).crc;
  }

  const auto t0 = Clock::now();
  const fs::path path = dir_ / name;
  std::vector<std::byte> buf;
  // End-to-end verification: the bytes read back must match the CRC the
  // producer committed.  One retry absorbs transient read glitches; a
  // second mismatch means the stored copy itself is bad.
  std::uint64_t failures = 0;
  for (int attempt = 0;; ++attempt) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path.string());
    buf.resize(fs::file_size(path));
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    if (!in) throw std::runtime_error("short read from " + path.string());
    if (chunked_crc32c(buf) == expected_crc) break;
    ++failures;
    if (attempt >= 1) {
      std::lock_guard lock(mu_);
      stats_.crc_checks += attempt + 1;
      stats_.crc_failures += failures;
      throw std::runtime_error("checksum mismatch reading " + path.string());
    }
  }
  md::Frame frame = md::Frame::deserialize(buf);
  const auto t1 = Clock::now();
  {
    std::lock_guard lock(mu_);
    stats_.consumer_io += t1 - t0;
    stats_.crc_checks += failures + 1;
    stats_.crc_failures += failures;
  }
  return frame;
}

void FileChannel::close() {
  std::lock_guard lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

ChannelStats FileChannel::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace mdwf::rt
