#include "mdwf/rt/pipeline.hpp"

#include <cstdio>
#include <exception>
#include <thread>

namespace mdwf::rt {

namespace {

std::string frame_name(std::uint64_t f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "frame%05llu",
                static_cast<unsigned long long>(f));
  return buf;
}

}  // namespace

PipelineResult run_insitu_pipeline(const PipelineConfig& config) {
  FileChannel channel(config.staging_dir, config.protocol,
                      config.poll_interval);
  PipelineResult result;
  result.series.resize(config.frames);

  std::exception_ptr producer_error;
  std::exception_ptr consumer_error;
  double final_temperature = 0.0;
  std::uint64_t md_steps = 0;

  const auto t0 = std::chrono::steady_clock::now();

  std::thread producer([&] {
    try {
      md::LjEngine engine(config.lj);
      for (std::uint64_t f = 0; f < config.frames; ++f) {
        engine.step(config.stride);
        channel.put(frame_name(f), engine.snapshot("LJ", f));
      }
      final_temperature = engine.temperature();
      md_steps = engine.steps_done();
      channel.close();
    } catch (...) {
      producer_error = std::current_exception();
      channel.close();
    }
  });

  std::thread consumer([&] {
    try {
      for (std::uint64_t f = 0; f < config.frames; ++f) {
        auto frame = channel.get(frame_name(f));
        if (!frame.has_value()) break;  // producer failed and closed early
        result.series[f] = md::analyze_frame(*frame);
      }
    } catch (...) {
      consumer_error = std::current_exception();
    }
  });

  producer.join();
  consumer.join();

  if (producer_error) std::rethrow_exception(producer_error);
  if (consumer_error) std::rethrow_exception(consumer_error);

  result.wall = std::chrono::steady_clock::now() - t0;
  result.channel = channel.stats();
  result.final_temperature = final_temperature;
  result.md_steps = md_steps;
  return result;
}

}  // namespace mdwf::rt
