// End-to-end real pipeline: a Lennard-Jones MD producer thread streaming
// frames through a FileChannel to an in-situ analytics consumer thread.
//
// This is the workflow of the paper's Fig. 1 made concrete: simulation ->
// frame capture -> staging -> in-situ analytics (gyration-tensor largest
// eigenvalue per frame), running on real threads and a real filesystem.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "mdwf/md/analytics.hpp"
#include "mdwf/md/lj_engine.hpp"
#include "mdwf/rt/file_channel.hpp"

namespace mdwf::rt {

struct PipelineConfig {
  md::LjParams lj{};
  // MD steps between emitted frames and number of frames to stream.
  std::uint64_t stride = 20;
  std::uint64_t frames = 16;
  SyncProtocol protocol = SyncProtocol::kEventful;
  // Directory-poll period for the coarse protocol.
  std::chrono::milliseconds poll_interval{2};
  std::filesystem::path staging_dir = "mdwf_staging";
};

struct PipelineResult {
  // Per-frame in-situ analytics, in frame order.
  std::vector<md::FrameAnalytics> series;
  ChannelStats channel;
  std::chrono::nanoseconds wall{0};
  double final_temperature = 0.0;
  std::uint64_t md_steps = 0;
};

// Runs producer and consumer concurrently to completion.  Exceptions from
// either thread propagate to the caller.
PipelineResult run_insitu_pipeline(const PipelineConfig& config);

}  // namespace mdwf::rt
