#include "mdwf/kvs/kvs.hpp"

#include "mdwf/common/assert.hpp"

namespace mdwf::kvs {

KvsServer::KvsServer(sim::Simulation& sim, const KvsParams& params,
                     net::Network& network, net::NodeId server_node)
    : sim_(&sim), params_(params), network_(&network), node_(server_node) {
  slots_ = std::make_unique<sim::Semaphore>(sim, params.server_concurrency);
}

sim::Task<void> KvsServer::serve(Duration service, net::NodeId client) {
  if (quota_ != nullptr &&
      quota_->at_bound(health::QuotaResource::kKvs, client)) {
    // The tenant already fills its fair share of the broker queue; shed its
    // request before it can crowd out other tenants.
    quota_->count_shed(health::QuotaResource::kKvs, client);
    ++sheds_;
    throw health::ServerBusy("kvs: tenant quota exceeded");
  }
  if (admission_limit_ > 0 &&
      pending_ >= static_cast<std::int64_t>(admission_limit_)) {
    ++sheds_;
    throw health::ServerBusy("kvs: admission queue full");
  }
  health::QuotaAdmission quota_slot(quota_, health::QuotaResource::kKvs,
                                    client);
  trace_pending(+1);
  while (stall_depth_ > 0) {
    // Keep a reference: the gate is replaced by the next stall window.
    auto gate = stall_gate_;
    co_await gate->wait();
  }
  co_await slots_->acquire();
  sim::SemaphoreGuard slot(*slots_);
  co_await sim_->delay(service * dilation_);
  trace_pending(-1);
}

void KvsServer::set_service_dilation(double factor) {
  dilation_ = factor < 1.0 ? 1.0 : factor;
}

void KvsServer::set_trace(obs::TraceSink* sink, obs::TrackId track) {
  trace_ = sink;
  trace_pending_id_ = sink->counter_id(track, "kvs.pending");
  trace_commits_id_ = sink->counter_id(track, "kvs.commits");
  trace_lookups_id_ = sink->counter_id(track, "kvs.lookups");
}

void KvsServer::trace_pending(int delta) {
  pending_ += delta;
  if (trace_ == nullptr) return;
  trace_->counter(trace_pending_id_, sim_->now(), pending_);
}

void KvsServer::trace_total(obs::CounterId id, std::uint64_t value) {
  if (trace_ == nullptr) return;
  trace_->counter(id, sim_->now(), static_cast<std::int64_t>(value));
}

void KvsServer::fault_stall_begin() {
  if (stall_depth_++ == 0) {
    stall_gate_ = std::make_shared<sim::Event>(*sim_);
  }
}

void KvsServer::fault_stall_end() {
  MDWF_ASSERT_MSG(stall_depth_ > 0, "stall end without begin");
  if (--stall_depth_ == 0) stall_gate_->trigger();
}

void KvsServer::fault_outage_begin() {
  fault_stall_begin();
  // The commit pipeline dies with the broker: entries applied but not yet
  // propagated to visibility are lost.  Their already-armed watch wake-ups
  // still fire, but the woken consumers find nothing — exactly the stale
  // namespace a restarted Flux broker presents.
  for (auto it = store_.begin(); it != store_.end();) {
    if (it->second.visible_at > sim_->now()) {
      lost_keys_.push_back(it->first);
      ++lost_commits_;
      it = store_.erase(it);
    } else {
      ++it;
    }
  }
}

void KvsServer::fault_outage_end() {
  auto lost = std::move(lost_keys_);
  lost_keys_.clear();
  fault_stall_end();
  for (const auto& fn : recovery_listeners_) fn(lost);
}

void KvsServer::add_recovery_listener(
    std::function<void(const std::vector<std::string>&)> fn) {
  recovery_listeners_.push_back(std::move(fn));
}

std::size_t KvsServer::visible_entries() const {
  std::size_t n = 0;
  for (const auto& [k, e] : store_) {
    if (e.visible_at <= sim_->now()) ++n;
  }
  return n;
}

void KvsServer::arm_watch_wakeup(const std::string& key, TimePoint when) {
  // Snapshot current watchers; they fire when the committed value becomes
  // visible.  Watchers registered later observe visibility directly.
  auto it = watchers_.find(key);
  if (it == watchers_.end()) return;
  auto pending = std::move(it->second);
  watchers_.erase(it);
  const Duration in = when - sim_->now();
  for (auto& ev : pending) {
    sim_->call_after(in.is_negative() ? Duration::zero() : in,
                     [ev] { ev->trigger(); });
  }
}

KvsClient::KvsClient(sim::Simulation& sim, KvsServer& server, net::NodeId node)
    : sim_(&sim), server_(&server), node_(node) {}

sim::Task<void> KvsClient::rpc_to_server() {
  co_await server_->network_->send_control(node_, server_->node_);
}

sim::Task<void> KvsClient::rpc_from_server() {
  co_await server_->network_->send_control(server_->node_, node_);
}

sim::Task<void> KvsClient::commit(std::string key, std::string value) {
  co_await rpc_to_server();
  std::exception_ptr busy;
  try {
    co_await server_->serve(server_->params_.commit_service, node_);
  } catch (const health::ServerBusy&) {
    busy = std::current_exception();
  }
  if (busy != nullptr) {
    co_await rpc_from_server();  // the busy reply still crosses the wire
    std::rethrow_exception(busy);
  }
  // Incarnation fence: the broker checks the committer's membership epoch
  // before applying.  A stale (declared-lost) incarnation gets its reject
  // reply over the wire and never touches the store.
  if (server_->fences_ != nullptr &&
      server_->fences_->stale(FenceToken{node_.value, 0})) {
    co_await rpc_from_server();
    server_->fences_->reject(FenceToken{node_.value, 0}, "kvs commit");
  }
  ++server_->commits_;
  server_->trace_total(server_->trace_commits_id_, server_->commits_);
  auto& entry = server_->store_[key];
  entry.value.data = std::move(value);
  entry.value.version += 1;
  entry.visible_at = sim_->now() + server_->params_.visibility_delay;
  server_->arm_watch_wakeup(key, entry.visible_at);
  co_await rpc_from_server();
}

sim::Task<std::optional<KvsValue>> KvsClient::lookup(const std::string& key) {
  co_await rpc_to_server();
  std::exception_ptr busy;
  try {
    co_await server_->serve(server_->params_.lookup_service, node_);
  } catch (const health::ServerBusy&) {
    busy = std::current_exception();
  }
  if (busy != nullptr) {
    co_await rpc_from_server();
    std::rethrow_exception(busy);
  }
  ++server_->lookups_;
  server_->trace_total(server_->trace_lookups_id_, server_->lookups_);
  std::optional<KvsValue> result;
  const auto it = server_->store_.find(key);
  if (it != server_->store_.end() && it->second.visible_at <= sim_->now()) {
    result = it->second.value;
  }
  co_await rpc_from_server();
  co_return result;
}

sim::Task<void> KvsClient::watch_until_visible(const std::string& key) {
  const auto it = server_->store_.find(key);
  if (it != server_->store_.end() && it->second.visible_at <= sim_->now()) {
    co_return;
  }
  auto ev = std::make_shared<sim::Event>(*sim_);
  server_->watchers_[key].push_back(ev);
  // A commit may already be in flight (applied but not yet visible); make
  // sure the wake-up for its visibility instant is armed.
  if (it != server_->store_.end()) {
    server_->arm_watch_wakeup(key, it->second.visible_at);
  }
  co_await ev->wait();
}

sim::Task<bool> KvsClient::watch_for(const std::string& key,
                                     Duration timeout) {
  const auto it = server_->store_.find(key);
  if (it != server_->store_.end() && it->second.visible_at <= sim_->now()) {
    co_return true;
  }
  auto ev = std::make_shared<sim::Event>(*sim_);
  server_->watchers_[key].push_back(ev);
  if (it != server_->store_.end()) {
    server_->arm_watch_wakeup(key, it->second.visible_at);
  }
  const sim::TimerId timer = sim_->call_after(timeout, [ev] { ev->trigger(); });
  co_await ev->wait();
  sim_->cancel(timer);
  const auto again = server_->store_.find(key);
  co_return again != server_->store_.end() &&
      again->second.visible_at <= sim_->now();
}

sim::Task<KvsValue> KvsClient::wait_for(const std::string& key,
                                        Duration* idle_out) {
  if (idle_out != nullptr) *idle_out = Duration::zero();
  for (;;) {
    auto found = co_await lookup(key);
    if (found.has_value()) co_return *found;
    const TimePoint blocked_at = sim_->now();
    co_await watch_until_visible(key);
    if (idle_out != nullptr) *idle_out += sim_->now() - blocked_at;
  }
}

}  // namespace mdwf::kvs
